package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimendure/internal/obs"
	"pimendure/pim"
)

// enableObs turns the observability layer on for a test that asserts
// serve.* counter movement (counters are no-ops while disabled).
func enableObs(t *testing.T) {
	t.Helper()
	if obs.Enabled() {
		return
	}
	obs.Enable()
	t.Cleanup(obs.Disable)
}

// smallSweep is the test workload: small enough to sweep in
// milliseconds, large enough to exercise recompile epochs.
func smallSweep() map[string]any {
	return map[string]any{
		"benchmark":       "mult",
		"bits":            8,
		"lanes":           16,
		"rows":            512,
		"iterations":      300,
		"recompile_every": 50,
		"seed":            7,
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body map[string]any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON body: %v", url, err)
	}
	return resp.StatusCode, out
}

func submitJob(t *testing.T, client *http.Client, base string, body map[string]any) string {
	t.Helper()
	code, out := postJSON(t, client, base+"/sweep", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, out)
	}
	id, _ := out["job"].(string)
	if id == "" {
		t.Fatalf("submit: no job id in %v", out)
	}
	return id
}

// pollDone polls GET /jobs/<id> until the job reaches a terminal state.
func pollDone(t *testing.T, client *http.Client, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll %s: bad JSON: %v", id, err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobStatus{}
}

// A served sweep must be bit-identical to a direct pim.Sweep, and a
// second identical request must hit the WearPlan cache and agree with
// the first to the last bit.
func TestSweepEndToEndBitIdentical(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	opt := pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 300, RecompileEvery: 50, Seed: 7}
	cold, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}

	enableObs(t)
	hitsBefore := obs.GetCounter("serve.cache_hits").Value()

	first := pollDone(t, ts.Client(), ts.URL, submitJob(t, ts.Client(), ts.URL, smallSweep()))
	if first.State != "done" {
		t.Fatalf("first job state %q (err %q)", first.State, first.Error)
	}
	if first.Result == nil || len(first.Result.Strategies) != len(cold) {
		t.Fatalf("first job returned %d strategies, want %d", len(first.Result.Strategies), len(cold))
	}
	if first.Result.CacheHit {
		t.Error("first request reported a cache hit on a fresh server")
	}
	for i, r := range cold {
		row := first.Result.Strategies[i]
		if row.Strategy != r.Strategy.Name() {
			t.Fatalf("row %d is %s, want %s", i, row.Strategy, r.Strategy.Name())
		}
		if row.DistFNV != distFNV(r.Dist.Counts) {
			t.Errorf("%s: served distribution differs from cold pim.Sweep", row.Strategy)
		}
		if row.MaxWrites != r.Dist.Max() || row.TotalWrites != r.Dist.Total() ||
			row.MaxWritesPerIteration != r.MaxWritesPerIteration ||
			row.LifetimeSeconds != r.Lifetime.Seconds {
			t.Errorf("%s: served summary differs from cold pim.Sweep", row.Strategy)
		}
	}

	second := pollDone(t, ts.Client(), ts.URL, submitJob(t, ts.Client(), ts.URL, smallSweep()))
	if second.State != "done" {
		t.Fatalf("second job state %q (err %q)", second.State, second.Error)
	}
	if !second.Result.CacheHit {
		t.Error("identical repeat request missed the WearPlan cache")
	}
	if got := obs.GetCounter("serve.cache_hits").Value(); got <= hitsBefore {
		t.Errorf("serve.cache_hits = %d, want > %d", got, hitsBefore)
	}
	for i := range first.Result.Strategies {
		if first.Result.Strategies[i].DistFNV != second.Result.Strategies[i].DistFNV {
			t.Errorf("%s: cached result differs from cold result",
				first.Result.Strategies[i].Strategy)
		}
	}
}

// Identical in-flight requests coalesce onto one job id; distinct
// requests do not.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	enableObs(t)
	coalescedBefore := obs.GetCounter("serve.jobs_coalesced").Value()
	a := submitJob(t, ts.Client(), ts.URL, smallSweep())
	<-started // job a is running (held by the hook)

	b := submitJob(t, ts.Client(), ts.URL, smallSweep())
	if b != a {
		t.Errorf("identical in-flight request got job %s, want coalesced onto %s", b, a)
	}
	code, out := postJSON(t, ts.Client(), ts.URL+"/sweep", smallSweep())
	if code != http.StatusAccepted || out["coalesced"] != true {
		t.Errorf("coalesced submit: status %d, body %v", code, out)
	}
	if got := obs.GetCounter("serve.jobs_coalesced").Value(); got < coalescedBefore+2 {
		t.Errorf("serve.jobs_coalesced = %d, want ≥ %d", got, coalescedBefore+2)
	}

	distinct := smallSweep()
	distinct["seed"] = 99
	c := submitJob(t, ts.Client(), ts.URL, distinct)
	if c == a {
		t.Error("distinct request coalesced onto a different job")
	}

	close(release)
	if st := pollDone(t, ts.Client(), ts.URL, a); st.State != "done" {
		t.Errorf("job %s state %q (err %q)", a, st.State, st.Error)
	}
	if st := pollDone(t, ts.Client(), ts.URL, c); st.State != "done" {
		t.Errorf("job %s state %q (err %q)", c, st.State, st.Error)
	}

	// The coalescing window closed with the job: a fresh identical
	// request gets a new id.
	if d := submitJob(t, ts.Client(), ts.URL, smallSweep()); d == a {
		t.Error("request coalesced onto a finished job")
	}
	close(started) // drain remaining hook sends harmlessly
}

// A full queue sheds with a clean 429 + Retry-After, not a dropped
// connection, and the shed request leaves no trace in the jobs map.
func TestSheddingReturns429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	s.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	enableObs(t)
	shedBefore := obs.GetCounter("serve.jobs_shed").Value()
	reqN := func(seed int) map[string]any {
		m := smallSweep()
		m["seed"] = seed
		return m
	}
	submitJob(t, ts.Client(), ts.URL, reqN(1))
	<-started // worker holds job 1; the queue is empty again
	submitJob(t, ts.Client(), ts.URL, reqN(2))

	data, _ := json.Marshal(reqN(3))
	resp, err := ts.Client().Post(ts.URL+"/sweep", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("shed request dropped the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("429 body not a JSON error: %v / %v", body, err)
	}
	if got := obs.GetCounter("serve.jobs_shed").Value(); got != shedBefore+1 {
		t.Errorf("serve.jobs_shed = %d, want %d", got, shedBefore+1)
	}

	close(release)
}

// Malformed and oversized requests are rejected with 400 before any
// compilation happens; wrong methods get 405; unknown jobs 404.
func TestRequestValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, body := range map[string]map[string]any{
		"missing benchmark": {},
		"unknown benchmark": {"benchmark": "fft"},
		"oversized array":   {"benchmark": "mult", "lanes": 1 << 20},
		"too many iters":    {"benchmark": "mult", "iterations": 1 << 30},
		"bad strategy":      {"benchmark": "mult", "strategies": []string{"XxYy"}},
		"bad technology":    {"benchmark": "mult", "technology": "SRAM"},
		"unknown field":     {"benchmark": "mult", "bogus": 1},
	} {
		if code, out := postJSON(t, ts.Client(), ts.URL+"/sweep", body); code != http.StatusBadRequest || out["error"] == "" {
			t.Errorf("%s: status %d body %v, want 400 with error", name, code, out)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep = %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", resp.StatusCode)
	}
}

// POST /run simulates exactly one strategy and agrees bit-for-bit with
// a direct pim.Run.
func TestRunEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := smallSweep()
	body["strategies"] = []string{"RaxBs+Hw"}
	code, out := postJSON(t, ts.Client(), ts.URL+"/run", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /run: status %d body %v", code, out)
	}
	st := pollDone(t, ts.Client(), ts.URL, out["job"].(string))
	if st.State != "done" {
		t.Fatalf("run job state %q (err %q)", st.State, st.Error)
	}
	if len(st.Result.Strategies) != 1 || st.Result.Strategies[0].Strategy != "RaxBs+Hw" {
		t.Fatalf("run result rows %v, want exactly RaxBs+Hw", st.Result.Strategies)
	}

	opt := pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pim.Run(bench, opt,
		pim.RunConfig{Iterations: 300, RecompileEvery: 50, Seed: 7},
		pim.Strategy{Within: pim.Random, Between: pim.ByteShift, Hw: true}, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Strategies[0].DistFNV != distFNV(want.Dist.Counts) {
		t.Error("served /run distribution differs from direct pim.Run")
	}
}

// A sampled job's wear series are registered under the job's scoped
// prefix while it runs and unregistered at completion; the samples
// survive in the result.
func TestSeriesScopedToJob(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := smallSweep()
	body["sample_every"] = 2
	body["strategies"] = []string{"StxSt", "RaxRa"}
	st := pollDone(t, ts.Client(), ts.URL, submitJob(t, ts.Client(), ts.URL, body))
	if st.State != "done" {
		t.Fatalf("job state %q (err %q)", st.State, st.Error)
	}
	for _, row := range st.Result.Strategies {
		if row.Wear == nil || len(row.Wear.Samples) == 0 {
			t.Errorf("%s: sampled job returned no wear snapshot", row.Strategy)
		}
	}
	for _, series := range obs.AllSeries() {
		if strings.HasPrefix(series.Name(), "serve.") {
			t.Errorf("series %q still registered after job completion", series.Name())
		}
	}
}

// A finished job must expose its trace id and latency breakdown, its
// span events must be filterable at GET /jobs/<id>/trace, and the
// structured log must hold its admission and completion records.
func TestJobTelemetryLifecycle(t *testing.T) {
	enableObs(t)
	obs.EnableEvents(0)
	t.Cleanup(obs.DisableEvents)
	obs.EnableLog(0)
	t.Cleanup(obs.DisableLog)

	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submitJob(t, ts.Client(), ts.URL, smallSweep())
	st := pollDone(t, ts.Client(), ts.URL, id)
	if st.State != "done" {
		t.Fatalf("job state %q (err %q)", st.State, st.Error)
	}
	if st.Trace == "" {
		t.Fatal("finished job carries no trace id")
	}
	if st.TotalMS < 0 || st.QueueMS < 0 || st.ComputeMS < 0 {
		t.Errorf("negative breakdown: queue %d compute %d total %d", st.QueueMS, st.ComputeMS, st.TotalMS)
	}
	if st.FinishedMS < st.EnqueuedMS {
		t.Errorf("finished %d before enqueued %d", st.FinishedMS, st.EnqueuedMS)
	}

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace = %d, want 200", id, resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("per-job trace is empty — trace id did not propagate into the engine spans")
	}
	names := map[string]bool{}
	for _, te := range doc.TraceEvents {
		names[te.Name] = true
		if te.Args["trace"] != st.Trace {
			t.Errorf("event %s stamped %v, want %s", te.Name, te.Args["trace"], st.Trace)
		}
	}
	if !names["pool.queue.job"] {
		t.Errorf("trace lacks the queue pickup span; saw %v", names)
	}

	var admit, complete bool
	for _, rec := range obs.LogRecords(0) {
		if rec.Trace != st.Trace {
			continue
		}
		switch rec.Event {
		case "serve.admit":
			admit = true
			if rec.Fields["job"] != id {
				t.Errorf("admit record names job %v, want %s", rec.Fields["job"], id)
			}
		case "serve.complete":
			complete = true
			if rec.Fields["state"] != "done" {
				t.Errorf("complete record state = %v", rec.Fields["state"])
			}
			if _, ok := rec.Fields["total_ms"]; !ok {
				t.Error("complete record lacks the latency breakdown")
			}
			if rec.Fields["fp"] == "" {
				t.Error("complete record lacks the config fingerprint")
			}
		}
	}
	if !admit || !complete {
		t.Errorf("log missing lifecycle records: admit=%v complete=%v", admit, complete)
	}
}

// Stale and malformed job URLs must return clean JSON 404s: a job
// evicted from the bounded history, and an unknown subresource.
func TestJob404Regressions(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, History: 1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := submitJob(t, ts.Client(), ts.URL, smallSweep())
	pollDone(t, ts.Client(), ts.URL, first)
	second := smallSweep()
	second["seed"] = 99
	pollDone(t, ts.Client(), ts.URL, submitJob(t, ts.Client(), ts.URL, second))

	expect404 := func(path string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q, want application/json", path, ct)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
			t.Errorf("GET %s: 404 body not a JSON error: %v / %v", path, body, err)
		}
	}
	// History 1 keeps only the second job; the first is evicted.
	expect404("/jobs/" + first)
	expect404("/jobs/nonexistent")
	expect404("/jobs/nonexistent/trace")
	expect404("/jobs/" + "j000002" + "/bogus")
}

// The acceptance gate: 1000 concurrent requests against a small queue.
// Every request must get a clean HTTP answer — 202 for admitted or
// coalesced work, 429 for shed work — with zero dropped connections,
// and every accepted job must reach a terminal state. With telemetry
// fully on, the storm also hammers the histogram, trace and log hot
// paths under the race detector, and the structured log's admission
// arithmetic must balance the client-side tallies exactly.
func TestThousandConcurrentRequests(t *testing.T) {
	enableObs(t)
	obs.EnableEvents(0)
	t.Cleanup(obs.DisableEvents)
	obs.EnableLog(0)
	t.Cleanup(obs.DisableLog)
	jobHistBefore := obs.GetDurationHistogram("serve.job").Count()

	s := New(Config{Workers: 4, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	defer client.CloseIdleConnections()

	const n = 1000
	var accepted, shed, other, dropped atomic.Int64
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// 32 distinct request shapes: plenty of coalescing and cache
			// hits, plus enough variety to keep the queue churning.
			body := map[string]any{
				"benchmark":       "mult",
				"bits":            4,
				"lanes":           16,
				"rows":            256,
				"iterations":      60,
				"recompile_every": 20,
				"seed":            i % 32,
				"strategies":      []string{"StxSt"},
			}
			data, _ := json.Marshal(body)
			resp, err := client.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(data))
			if err != nil {
				dropped.Add(1)
				return
			}
			var out map[string]any
			decErr := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			switch {
			case decErr != nil:
				dropped.Add(1)
			case resp.StatusCode == http.StatusAccepted:
				accepted.Add(1)
				if id, _ := out["job"].(string); id != "" {
					ids <- id
				}
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(ids)

	if dropped.Load() != 0 {
		t.Fatalf("%d requests dropped or returned unparseable bodies", dropped.Load())
	}
	if other.Load() != 0 {
		t.Fatalf("%d requests got a status other than 202/429", other.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("no request was accepted")
	}
	t.Logf("accepted %d (incl. coalesced), shed %d", accepted.Load(), shed.Load())

	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		st := pollDone(t, client, ts.URL, id)
		if st.State != "done" {
			t.Errorf("job %s finished %q (err %q)", id, st.State, st.Error)
		}
	}

	// The structured log's admission arithmetic must balance the HTTP
	// tallies exactly: every 202 is an admit or a coalesce record, every
	// 429 a reject record.
	var admits, coalesces, rejects int64
	for _, rec := range obs.LogRecords(0) {
		switch rec.Event {
		case "serve.admit":
			admits++
		case "serve.coalesce":
			coalesces++
		case "serve.reject":
			rejects++
		}
	}
	if st := obs.CaptureLogStats(); st.Dropped != 0 {
		t.Fatalf("log dropped %d records; the balance check needs the full history", st.Dropped)
	}
	if admits+coalesces != accepted.Load() {
		t.Errorf("admit(%d) + coalesce(%d) records != %d accepted requests", admits, coalesces, accepted.Load())
	}
	if rejects != shed.Load() {
		t.Errorf("reject records = %d, want %d (shed requests)", rejects, shed.Load())
	}

	// Every admitted job finished, so the latency histogram must have
	// recorded exactly one observation per admit. The observation lands
	// just after the terminal state becomes pollable; give it a moment.
	wantHist := jobHistBefore + admits
	deadline := time.Now().Add(2 * time.Second)
	for obs.GetDurationHistogram("serve.job").Count() < wantHist && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := obs.GetDurationHistogram("serve.job").Count(); got != wantHist {
		t.Errorf("serve.job histogram count = %d, want %d (one per admitted job)", got, wantHist)
	}
}

// Close cancels still-queued jobs cleanly and refuses new work with
// 503.
func TestCloseCancelsQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	reqN := func(seed int) map[string]any {
		m := smallSweep()
		m["seed"] = seed
		return m
	}
	running := submitJob(t, ts.Client(), ts.URL, reqN(1))
	<-started
	queued := submitJob(t, ts.Client(), ts.URL, reqN(2))

	go func() {
		// Let the running job finish once Close has stopped admission.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	s.Close()

	if st := pollDone(t, ts.Client(), ts.URL, running); st.State != "done" {
		t.Errorf("running job finished %q, want done", st.State)
	}
	if st := pollDone(t, ts.Client(), ts.URL, queued); st.State != "canceled" {
		t.Errorf("queued job finished %q, want canceled", st.State)
	}
	if code, _ := postJSON(t, ts.Client(), ts.URL+"/sweep", reqN(3)); code != http.StatusServiceUnavailable {
		t.Errorf("submit after Close = %d, want 503", code)
	}
}

// GET /jobs lists jobs in id order.
func TestListJobs(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var want []string
	for seed := 0; seed < 3; seed++ {
		body := smallSweep()
		body["seed"] = 40 + seed
		want = append(want, submitJob(t, ts.Client(), ts.URL, body))
	}
	for _, id := range want {
		pollDone(t, ts.Client(), ts.URL, id)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != len(want) {
		t.Fatalf("listed %d jobs, want %d", len(out.Jobs), len(want))
	}
	for i, j := range out.Jobs {
		if j.ID != want[i] || j.State != "done" {
			t.Errorf("job row %d = %+v, want id %s state done", i, j, want[i])
		}
	}
}

// Fingerprints must canonicalize: spelling out a default and omitting
// it coalesce to the same key, while a changed parameter does not.
func TestFingerprintCanonicalization(t *testing.T) {
	implicit := Request{Benchmark: "multiplication"}.normalized()
	explicit := Request{Benchmark: "mult", Lanes: 1024, Rows: 1024, Bits: 32,
		Iterations: 10000, RecompileEvery: 100, Technology: "MRAM"}.normalized()
	if implicit.fingerprint("sweep") != explicit.fingerprint("sweep") {
		t.Error("defaulted and spelled-out requests fingerprint differently")
	}
	if implicit.fingerprint("sweep") == implicit.fingerprint("run") {
		t.Error("/sweep and /run share a fingerprint")
	}
	if implicit.fingerprint("sweep") == implicit.fingerprint("fleet") {
		t.Error("/sweep and /fleet share a fingerprint")
	}
	seeded := implicit
	seeded.Seed = 1
	if implicit.fingerprint("sweep") == seeded.fingerprint("sweep") {
		t.Error("different seeds share a fingerprint")
	}
}

func TestParseStrategy(t *testing.T) {
	for label, want := range map[string]pim.Strategy{
		"StxSt":    {Within: pim.Static, Between: pim.Static},
		"RaxBs+Hw": {Within: pim.Random, Between: pim.ByteShift, Hw: true},
		"BsxRa":    {Within: pim.ByteShift, Between: pim.Random},
	} {
		got, err := parseStrategy(label)
		if err != nil {
			t.Errorf("%s: %v", label, err)
			continue
		}
		if got != want {
			t.Errorf("%s parsed to %+v, want %+v", label, got, want)
		}
		if got.Name() != label {
			t.Errorf("%s round-trips to %s", label, got.Name())
		}
	}
	for _, bad := range []string{"", "St", "StSt", "QqxSt", "Stx"} {
		if _, err := parseStrategy(bad); err == nil {
			t.Errorf("malformed strategy %q accepted", bad)
		}
	}
}

// Technology names resolve case-insensitively to the paper's device
// models.
func TestTechnologyLookup(t *testing.T) {
	for _, name := range []string{"MRAM", "rram", "Pcm", "MRAM-projected"} {
		r := Request{Technology: name}
		if _, err := r.technology(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := (Request{Technology: "SRAM"}).technology(); err == nil {
		t.Error("unknown technology accepted")
	}
}

// Every benchmark name compiles through the request path.
func TestCompileAllBenchmarks(t *testing.T) {
	for _, name := range []string{"mult", "dot", "conv", "add", "bnn"} {
		req := Request{Benchmark: name, Lanes: 16, Rows: 512, Bits: 4}.normalized()
		b, err := req.compile()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if b.Name == "" {
			t.Errorf("%s compiled to an unnamed benchmark", name)
		}
	}
}
