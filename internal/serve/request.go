package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"pimendure/internal/mapping"
	"pimendure/pim"
)

// Request is the JSON body of POST /sweep and POST /run: a named
// benchmark, the array geometry, a pim.RunConfig, a strategy selection
// and a device technology. Zero fields take the paper's §4 defaults, so
// `{"benchmark":"mult"}` is a complete full-scale sweep request.
type Request struct {
	// Benchmark names the kernel: "mult"/"multiplication",
	// "dot"/"dot-product", "conv"/"convolution", "add"/"vector-add",
	// or "bnn".
	Benchmark string `json:"benchmark"`
	// Bits is the operand precision (default 32; convolution 8).
	Bits int `json:"bits,omitempty"`
	// N is the dot-product length (default: the lane count).
	N int `json:"n,omitempty"`
	// GroupLanes and MultsPerLane shape the convolution (default 4×3).
	GroupLanes   int `json:"group_lanes,omitempty"`
	MultsPerLane int `json:"mults_per_lane,omitempty"`
	// Synapses sizes the BNN layer (default 64).
	Synapses int `json:"synapses,omitempty"`

	// Lanes × Rows is the array geometry (default 1024×1024).
	Lanes int `json:"lanes,omitempty"`
	Rows  int `json:"rows,omitempty"`
	// NoPreset disables the CRAM-style output preset write; Mixed2
	// selects the minimum two-input basis over NAND; LowestFirstAlloc
	// switches to the adversarial ablation allocator.
	NoPreset         bool `json:"no_preset,omitempty"`
	Mixed2           bool `json:"mixed2,omitempty"`
	LowestFirstAlloc bool `json:"lowest_first_alloc,omitempty"`

	// Iterations, RecompileEvery, Seed, Workers and SampleEvery mirror
	// pim.RunConfig (defaults 10000, 100, 0, server-budgeted, 0).
	Iterations     int   `json:"iterations,omitempty"`
	RecompileEvery int   `json:"recompile_every,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	Workers        int   `json:"workers,omitempty"`
	SampleEvery    int   `json:"sample_every,omitempty"`

	// Strategies selects load-balancing configurations by paper label
	// ("StxSt", "RaxBs+Hw", …). Empty means all 18 for /sweep and /fleet
	// and the St×St baseline for /run.
	Strategies []string `json:"strategies,omitempty"`
	// Technology names the device model: "MRAM" (default), "RRAM",
	// "PCM", "MRAM-projected".
	Technology string `json:"technology,omitempty"`

	// Devices, Sigmas and Technologies shape POST /fleet (ignored by
	// /run and /sweep): the simulated fleet population per sweep point
	// (default 100 000, capped by Config.MaxDevices), the lognormal
	// endurance shapes (default {0.3}), and the device models to sweep
	// (default: just Technology).
	Devices      int       `json:"devices,omitempty"`
	Sigmas       []float64 `json:"sigmas,omitempty"`
	Technologies []string  `json:"technologies,omitempty"`
}

// normalized returns the request with every defaulted field filled in —
// the canonical form behind coalescing fingerprints, so a request
// relying on defaults and one spelling them out coalesce together.
func (r Request) normalized() Request {
	switch strings.ToLower(r.Benchmark) {
	case "mult", "multiplication":
		r.Benchmark = "mult"
	case "dot", "dot-product", "dotproduct":
		r.Benchmark = "dot"
	case "conv", "convolution":
		r.Benchmark = "conv"
	case "add", "vadd", "vector-add", "vectoradd":
		r.Benchmark = "add"
	case "bnn":
		r.Benchmark = "bnn"
	}
	if r.Lanes <= 0 {
		r.Lanes = 1024
	}
	if r.Rows <= 0 {
		r.Rows = 1024
	}
	if r.Bits <= 0 {
		if r.Benchmark == "conv" {
			r.Bits = 8
		} else {
			r.Bits = 32
		}
	}
	if r.N <= 0 {
		r.N = r.Lanes
	}
	if r.GroupLanes <= 0 {
		r.GroupLanes = 4
	}
	if r.MultsPerLane <= 0 {
		r.MultsPerLane = 3
	}
	if r.Synapses <= 0 {
		r.Synapses = 64
	}
	if r.Iterations <= 0 {
		r.Iterations = 10000
	}
	if r.RecompileEvery == 0 {
		r.RecompileEvery = 100
	}
	if r.Technology == "" {
		r.Technology = "MRAM"
	}
	if r.Devices <= 0 {
		r.Devices = 100_000
	}
	if len(r.Sigmas) == 0 {
		r.Sigmas = []float64{pim.DefaultFleetSigma}
	}
	if len(r.Technologies) == 0 {
		r.Technologies = []string{r.Technology}
	}
	return r
}

// validate checks a normalized request against the server's admission
// caps — the cheap rejection (400) that keeps a hostile or mistyped
// request from ever reaching the compile/simulate pipeline.
func (r Request) validate(cfg Config) error {
	switch r.Benchmark {
	case "mult", "dot", "conv", "add", "bnn":
	case "":
		return fmt.Errorf("missing benchmark (mult, dot, conv, add, bnn)")
	default:
		return fmt.Errorf("unknown benchmark %q (mult, dot, conv, add, bnn)", r.Benchmark)
	}
	if r.Lanes > cfg.MaxLanes || r.Rows > cfg.MaxRows {
		return fmt.Errorf("array %d×%d exceeds the server cap %d×%d", r.Lanes, r.Rows, cfg.MaxLanes, cfg.MaxRows)
	}
	if r.Iterations > cfg.MaxIterations {
		return fmt.Errorf("iterations %d exceeds the server cap %d", r.Iterations, cfg.MaxIterations)
	}
	if r.SampleEvery < 0 {
		return fmt.Errorf("sample_every must be ≥ 0")
	}
	if r.Devices > cfg.MaxDevices {
		return fmt.Errorf("devices %d exceeds the server cap %d", r.Devices, cfg.MaxDevices)
	}
	if len(r.Sigmas) > maxFleetSigmas {
		return fmt.Errorf("%d sigmas exceeds the cap %d", len(r.Sigmas), maxFleetSigmas)
	}
	for _, s := range r.Sigmas {
		if s < 0 {
			return fmt.Errorf("negative sigma %v", s)
		}
	}
	if _, err := r.technology(); err != nil {
		return err
	}
	if _, err := r.technologies(); err != nil {
		return err
	}
	if _, err := parseStrategies(r.Strategies); err != nil {
		return err
	}
	return nil
}

// maxFleetSigmas bounds the σ sweep of one request: each σ costs a
// hazard-table build per strategy plus a full device population, so the
// cap keeps a single request from smuggling in an unbounded study.
const maxFleetSigmas = 16

// technology resolves the named device model.
func (r Request) technology() (pim.Technology, error) {
	for _, t := range pim.Technologies() {
		if strings.EqualFold(t.Name, r.Technology) {
			return t, nil
		}
	}
	return pim.Technology{}, fmt.Errorf("unknown technology %q (MRAM, RRAM, PCM, MRAM-projected)", r.Technology)
}

// technologies resolves the fleet sweep's device-model list (normalized
// to at least the single Technology).
func (r Request) technologies() ([]pim.Technology, error) {
	out := make([]pim.Technology, 0, len(r.Technologies))
	for _, name := range r.Technologies {
		found := false
		for _, t := range pim.Technologies() {
			if strings.EqualFold(t.Name, name) {
				out = append(out, t)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown technology %q (MRAM, RRAM, PCM, MRAM-projected)", name)
		}
	}
	return out, nil
}

// parseStrategies converts paper labels ("RaxBs+Hw") into strategy
// configurations; an empty list returns nil (the caller's default).
func parseStrategies(labels []string) ([]pim.Strategy, error) {
	if len(labels) == 0 {
		return nil, nil
	}
	out := make([]pim.Strategy, 0, len(labels))
	for _, label := range labels {
		s, err := parseStrategy(label)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func parseStrategy(label string) (pim.Strategy, error) {
	var s pim.Strategy
	name := strings.TrimSpace(label)
	if strings.HasSuffix(name, "+Hw") {
		s.Hw = true
		name = strings.TrimSuffix(name, "+Hw")
	}
	parts := strings.SplitN(name, "x", 2)
	if len(parts) != 2 {
		return s, fmt.Errorf("malformed strategy %q (want e.g. \"RaxBs+Hw\")", label)
	}
	var err error
	if s.Within, err = mapping.ParseStrategy(parts[0]); err != nil {
		return s, fmt.Errorf("strategy %q: %v", label, err)
	}
	if s.Between, err = mapping.ParseStrategy(parts[1]); err != nil {
		return s, fmt.Errorf("strategy %q: %v", label, err)
	}
	return s, nil
}

// fingerprint is the coalescing key: two requests with the same
// canonical form (and endpoint kind: "run", "sweep" or "fleet") are the
// same work.
func (r Request) fingerprint(kind string) string {
	data, _ := json.Marshal(r) // struct of plain fields; cannot fail
	return kind + ":" + string(data)
}

// options converts the geometry/compile fields to pim.Options.
func (r Request) options() pim.Options {
	return pim.Options{
		Lanes:            r.Lanes,
		Rows:             r.Rows,
		PresetOutputs:    !r.NoPreset,
		NANDBasis:        !r.Mixed2,
		LowestFirstAlloc: r.LowestFirstAlloc,
	}
}

// compile builds the named benchmark — the expensive half of request
// construction, run on a queue worker rather than the request handler.
func (r Request) compile() (*pim.Benchmark, error) {
	opt := r.options()
	switch r.Benchmark {
	case "mult":
		return pim.NewParallelMult(opt, r.Bits)
	case "dot":
		return pim.NewDotProduct(opt, r.N, r.Bits)
	case "conv":
		return pim.NewConvolution(opt, r.GroupLanes, r.MultsPerLane, r.Bits)
	case "add":
		return pim.NewVectorAdd(opt, r.Bits)
	case "bnn":
		return pim.NewBNNLayer(opt, r.Synapses)
	}
	return nil, fmt.Errorf("unknown benchmark %q", r.Benchmark)
}
