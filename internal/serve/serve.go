// Package serve is the endurance-as-a-service layer: an HTTP job server
// that turns pim.Sweep/pim.Run into POST /sweep and POST /run requests.
//
// Every request is admission-controlled through a bounded pool.Queue —
// when the queue is full the server sheds the request with a clean
// 429 + Retry-After instead of queueing unboundedly or severing the
// connection. Identical in-flight requests (same canonical form) are
// coalesced onto one execution, and the expensive per-benchmark
// core.WearPlan is reused across jobs through a pim.PlanCache, so a
// fleet of clients sweeping the same workloads costs one plan build.
// Accepted requests return a job id that clients poll on GET /jobs/<id>
// for per-epoch wear progress (from the job's scoped obs.Series) and,
// on completion, the full per-strategy results.
//
// The package deliberately does not own an http.Server: it implements
// http.Handler and mounts its routes onto the obs telemetry server via
// Server.Mount(obs.Handle), so /sweep, /run and /jobs share the
// process's -serve listener with /metrics, /series and /wear.png.
package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pimendure/internal/obs"
	"pimendure/internal/pool"
	"pimendure/pim"
)

// Serving counters and gauges, exported on /metrics. cache_hits counts
// jobs whose WearPlan came from the PlanCache; queue_depth is the
// high-water mark of jobs admitted but not yet picked up by a worker.
var (
	obsJobsAccepted  = obs.GetCounter("serve.jobs_accepted")
	obsJobsCompleted = obs.GetCounter("serve.jobs_completed")
	obsJobsFailed    = obs.GetCounter("serve.jobs_failed")
	obsJobsShed      = obs.GetCounter("serve.jobs_shed")
	obsJobsCoalesced = obs.GetCounter("serve.jobs_coalesced")
	obsCacheHits     = obs.GetCounter("serve.cache_hits")
	obsCacheMisses   = obs.GetCounter("serve.cache_misses")
	obsQueueDepth    = obs.GetGauge("serve.queue_depth")
)

// Latency histograms, exported on /metrics as serve_job_seconds,
// serve_queue_wait_seconds and serve_compute_seconds: the full
// admission-to-completion distribution and its queue-wait vs compute
// split, so a load storm's p99 is readable without client-side timing.
var (
	obsJobSeconds       = obs.GetDurationHistogram("serve.job")
	obsQueueWaitSeconds = obs.GetDurationHistogram("serve.queue_wait")
	obsComputeSeconds   = obs.GetDurationHistogram("serve.compute")
)

// Config sizes the serving layer. The zero value selects sensible
// defaults; see each field.
type Config struct {
	// Workers is the number of jobs executed concurrently (default
	// GOMAXPROCS). Each job additionally fans its strategies out over
	// the engine pool, budgeted so the total stays near GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64).
	// Beyond it, requests are shed with 429 + Retry-After.
	QueueDepth int
	// CacheSize bounds the WearPlan LRU (default 32 plans; 0 keeps the
	// default — use a negative value to disable caching).
	CacheSize int
	// Cache, when non-nil, is used instead of a server-owned PlanCache
	// (CacheSize is then ignored). Embedders that already hold a cache
	// share plans — and therefore per-plan scratch arenas — between
	// their own direct simulations and the jobs this server runs.
	Cache *pim.PlanCache
	// History bounds how many finished jobs stay pollable before the
	// oldest are forgotten (default 16384).
	History int
	// RetryAfter is the hint returned with a 429 (default 1s).
	RetryAfter time.Duration
	// MaxLanes, MaxRows and MaxIterations cap what a single request may
	// ask for (defaults 4096, 4096 and 10 000 000) — admission control
	// against accidental or hostile million-lane sweeps.
	MaxLanes      int
	MaxRows       int
	MaxIterations int
	// MaxDevices caps the fleet population of one POST /fleet sweep
	// point (default 10 000 000 — about two seconds of draws per point
	// on one core).
	MaxDevices int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 32
	}
	if c.History <= 0 {
		c.History = 16384
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 4096
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 4096
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 10_000_000
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 10_000_000
	}
	return c
}

// Server is the job server. Create with New, mount with Mount (or use
// it directly as an http.Handler), stop with Close.
type Server struct {
	cfg   Config
	cache *pim.PlanCache
	queue *pool.Queue[*job]

	mu       sync.Mutex
	jobs     map[string]*job // by id, running and finished
	inflight map[string]*job // by request fingerprint, for coalescing
	finished []string        // completion order, for history eviction
	nextID   int
	closed   bool

	// testBeforeRun, when non-nil, runs at the top of exec — the test
	// hook that holds jobs in the running state deterministically. Set
	// before the first request; never touched in production.
	testBeforeRun func(*job)
}

// job is one accepted request moving through queued → running →
// done/failed (or canceled, when Close drains it before a worker runs
// it).
type job struct {
	id  string
	fp  string
	req Request
	// kind is the endpoint the job came from: "run", "sweep" or
	// "fleet".
	kind string
	// trace is the obs trace id assigned at admission; every span the
	// job causes (queue pickup, engine stages, bank fan-out) is stamped
	// with it, and GET /jobs/<id>/trace filters the event ring by it.
	trace string

	mu        sync.Mutex
	state     string
	coalesced int
	err       string
	result    *JobResult
	enqueued  time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// breakdownLocked splits the job's lifecycle into queue-wait (admission
// to worker pickup), compute (pickup to finish) and total. Call with
// j.mu held, after the relevant timestamps are set; a job canceled
// before running reports zero queue-wait and compute.
func (j *job) breakdownLocked() (queueWait, compute, total time.Duration) {
	if !j.finished.IsZero() && !j.enqueued.IsZero() {
		total = j.finished.Sub(j.enqueued)
	}
	if j.started.IsZero() {
		return 0, 0, total
	}
	return j.started.Sub(j.enqueued), j.finished.Sub(j.started), total
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = pim.NewPlanCache(cfg.CacheSize)
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
	}
	s.queue = pool.NewQueue(cfg.Workers, cfg.QueueDepth, s.exec)
	return s
}

// Mount registers the server's routes through the given registrar —
// typically obs.Handle, which grafts them onto the -serve telemetry
// listener next to /metrics.
func (s *Server) Mount(register func(pattern string, h http.Handler)) {
	register("/sweep", s)
	register("/run", s)
	register("/fleet", s)
	register("/jobs", s)
	register("/jobs/", s)
}

// Unmount removes the routes registered by Mount.
func (s *Server) Unmount(register func(pattern string, h http.Handler)) {
	register("/sweep", nil)
	register("/run", nil)
	register("/fleet", nil)
	register("/jobs", nil)
	register("/jobs/", nil)
}

// Close stops admission, waits for running jobs to finish, and marks
// jobs still queued as canceled. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for _, j := range s.queue.Close() {
		s.finish(j, nil, fmt.Errorf("server shut down before the job ran"), "canceled")
	}
}

// ServeHTTP routes POST /sweep, POST /run, POST /fleet, GET /jobs and
// GET /jobs/<id>.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/sweep":
		s.submit(w, r, "sweep")
	case r.URL.Path == "/run":
		s.submit(w, r, "run")
	case r.URL.Path == "/fleet":
		s.submit(w, r, "fleet")
	case r.URL.Path == "/jobs":
		s.listJobs(w, r)
	case strings.HasPrefix(r.URL.Path, "/jobs/"):
		s.getJob(w, r, strings.TrimPrefix(r.URL.Path, "/jobs/"))
	default:
		http.NotFound(w, r)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submit is the admission path: parse, validate, coalesce, enqueue-or-
// shed. Everything here is cheap — compilation and simulation happen on
// a queue worker.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.normalized()
	if err := req.validate(s.cfg); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp := req.fingerprint(kind)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if j, ok := s.inflight[fp]; ok {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.mu.Unlock()
		obsJobsCoalesced.Add(1)
		logServeEvent("serve.coalesce", j.trace, fp, map[string]any{"job": j.id})
		s.accepted(w, j, true)
		return
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("j%06d", s.nextID),
		fp:       fp,
		req:      req,
		kind:     kind,
		trace:    obs.NewTraceID(),
		state:    "queued",
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	// Register and enqueue under one lock: a concurrent identical request
	// must not coalesce onto a job that the shed path is about to retract.
	// TryEnqueue never blocks, so holding the mutex across it is cheap.
	// The trace binding around TryEnqueue is what the queue captures and
	// re-binds on the worker that eventually runs the job.
	s.jobs[j.id] = j
	s.inflight[fp] = j
	restore := obs.SetTrace(j.trace)
	admitted := s.queue.TryEnqueue(j)
	restore()
	if !admitted {
		delete(s.jobs, j.id)
		delete(s.inflight, fp)
		s.mu.Unlock()
		obsJobsShed.Add(1)
		logServeEvent("serve.reject", j.trace, fp, map[string]any{"queue_depth": s.queue.Depth()})
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, "queue full (%d pending); retry later", s.queue.Depth())
		return
	}
	s.mu.Unlock()
	obsJobsAccepted.Add(1)
	obsQueueDepth.Observe(int64(s.queue.Depth()))
	logServeEvent("serve.admit", j.trace, fp, map[string]any{"job": j.id, "kind": kind})
	s.accepted(w, j, false)
}

// logServeEvent records one structured admission-path event, gated so
// the fields map is never built while the log is off.
func logServeEvent(event, trace, fp string, fields map[string]any) {
	if !obs.LogEnabled() {
		return
	}
	if fields == nil {
		fields = map[string]any{}
	}
	fields["fp"] = fp
	obs.LogEvent(event, trace, fields)
}

func (s *Server) accepted(w http.ResponseWriter, j *job, coalesced bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"job":       j.id,
		"coalesced": coalesced,
		"poll":      "/jobs/" + j.id,
	})
}

// exec runs one job on a queue worker: compile the benchmark, fetch or
// build the WearPlan through the cache, simulate, then unregister the
// job's scoped telemetry.
func (s *Server) exec(j *job) {
	j.mu.Lock()
	j.state = "running"
	j.started = time.Now()
	j.mu.Unlock()

	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	result, err := s.run(j)
	s.finish(j, result, err, "")
}

func (s *Server) run(j *job) (*JobResult, error) {
	req := j.req
	bench, err := req.compile()
	if err != nil {
		return nil, err
	}
	tech, err := req.technology()
	if err != nil {
		return nil, err
	}
	strategies, err := parseStrategies(req.Strategies)
	if err != nil {
		return nil, err
	}
	rc := pim.RunConfig{
		Iterations:     req.Iterations,
		RecompileEvery: req.RecompileEvery,
		Seed:           req.Seed,
		Workers:        req.Workers,
		SampleEvery:    req.SampleEvery,
		SeriesPrefix:   "serve." + j.id + ".",
	}
	if rc.Workers <= 0 {
		// Budget the engine pool against the job workers so a full queue
		// does not oversubscribe the CPU cfg.Workers-fold.
		rc.Workers = pool.Share(runtime.GOMAXPROCS(0), s.cfg.Workers)
	}

	var results []*pim.Result
	var hit bool
	switch j.kind {
	case "fleet":
		var out *JobResult
		out, hit, err = s.runFleet(j, bench, rc, strategies)
		if hit {
			obsCacheHits.Add(1)
		} else {
			obsCacheMisses.Add(1)
		}
		return out, err
	case "sweep":
		results, hit, err = s.cache.Sweep(bench, req.options(), rc, strategies, tech)
	default:
		var res *pim.Result
		strat := pim.StaticStrategy
		if len(strategies) > 0 {
			strat = strategies[0]
		}
		res, hit, err = s.cache.Run(bench, req.options(), rc, strat, tech)
		results = []*pim.Result{res}
	}
	if hit {
		obsCacheHits.Add(1)
	} else {
		obsCacheMisses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	defer releaseTelemetry(results)
	return buildResult(j, results, hit), nil
}

// runFleet executes a POST /fleet job: a fleet-survival study through
// the shared PlanCache, with per-draw-batch progress on a job-scoped
// series that GET /jobs/<id> picks up by prefix and that is retired
// with the job.
func (s *Server) runFleet(j *job, bench *pim.Benchmark, rc pim.RunConfig, strategies []pim.Strategy) (*JobResult, bool, error) {
	req := j.req
	techs, err := req.technologies()
	if err != nil {
		return nil, false, err
	}
	series := obs.NewSeries("serve."+j.id+".fleet", "devices")
	defer obs.RemoveSeries(series.Name())
	fc := pim.FleetConfig{
		Devices: req.Devices,
		Sigmas:  req.Sigmas,
		Seed:    req.Seed,
		Series:  series,
	}
	points, hit, err := s.cache.Fleet(bench, req.options(), rc, strategies, techs, fc)
	if err != nil {
		return nil, hit, err
	}
	out := &JobResult{Benchmark: bench.Name, CacheHit: hit}
	for _, p := range points {
		out.Fleet = append(out.Fleet, FleetRow{
			Strategy:                p.Strategy.Name(),
			Technology:              p.Technology.Name,
			Sigma:                   p.Sigma,
			Devices:                 p.Devices,
			Groups:                  p.Groups,
			Cells:                   p.Cells,
			MeanIterations:          p.MeanIterations,
			B1Iterations:            p.Quantiles[0],
			B10Iterations:           p.Quantiles[1],
			B50Iterations:           p.Quantiles[2],
			DeterministicIterations: p.DeterministicIterations,
			B1Seconds:               p.Seconds(p.Quantiles[0]),
			MeanSeconds:             p.Seconds(p.MeanIterations),
		})
	}
	return out, hit, nil
}

// releaseTelemetry retires a finished job's per-run state: the per-cell
// write distributions go back to their plan's arena (the JobResult keeps
// only summaries and a checksum, so steady-state traffic against a cached
// plan recycles counts buffers instead of allocating 8 MB per strategy),
// and the job's scoped series and wear-PNG sources are unregistered — the
// samples live on in the JobResult, and the registry stays bounded no
// matter how many jobs the server has run.
func releaseTelemetry(results []*pim.Result) {
	for _, r := range results {
		if r == nil {
			continue
		}
		r.Dist.Release()
		if r.Wear == nil {
			continue
		}
		obs.RemoveSeries(r.Wear.Name())
		obs.RegisterWearPNG(r.Wear.Name(), nil)
	}
}

// finish moves a job to its terminal state and retires it from the
// coalescing and history maps.
func (s *Server) finish(j *job, result *JobResult, err error, state string) {
	j.mu.Lock()
	switch {
	case state != "":
		j.state = state
	case err != nil:
		j.state = "failed"
	default:
		j.state = "done"
	}
	if err != nil {
		j.err = err.Error()
	}
	j.result = result
	j.finished = time.Now()
	terminal := j.state
	queueWait, compute, total := j.breakdownLocked()
	j.mu.Unlock()
	close(j.done)

	switch terminal {
	case "done":
		obsJobsCompleted.Add(1)
	case "failed":
		obsJobsFailed.Add(1)
	}
	if terminal == "done" || terminal == "failed" {
		obsJobSeconds.ObserveDuration(total)
		obsQueueWaitSeconds.ObserveDuration(queueWait)
		obsComputeSeconds.ObserveDuration(compute)
	}
	if obs.LogEnabled() {
		obs.LogEvent("serve.complete", j.trace, map[string]any{
			"job":        j.id,
			"fp":         j.fp,
			"state":      terminal,
			"queue_ms":   queueWait.Milliseconds(),
			"compute_ms": compute.Milliseconds(),
			"total_ms":   total.Milliseconds(),
		})
	}

	s.mu.Lock()
	if s.inflight[j.fp] == j {
		delete(s.inflight, j.fp)
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.History {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// JobResult is a completed job's outcome: one row per strategy plus the
// cache disposition.
type JobResult struct {
	// Benchmark echoes the compiled kernel name; CacheHit reports
	// whether the job reused a cached WearPlan (results are
	// bit-identical either way).
	Benchmark string `json:"benchmark"`
	CacheHit  bool   `json:"cache_hit"`
	// Strategies holds one row per simulated strategy, in sweep order
	// (empty for /fleet jobs).
	Strategies []StrategyResult `json:"strategies"`
	// Fleet holds one row per strategy × technology × σ sweep point of a
	// POST /fleet job, in study order (nil otherwise).
	Fleet []FleetRow `json:"fleet,omitempty"`
}

// FleetRow is one fleet-survival sweep point, flattened for JSON
// clients: B-life quantiles against the paper's deterministic Eq. 4
// value.
type FleetRow struct {
	Strategy   string  `json:"strategy"`
	Technology string  `json:"technology"`
	Sigma      float64 `json:"sigma"`
	Devices    int     `json:"devices"`
	// Groups vs Cells is the order-statistic collapse factor.
	Groups int `json:"groups"`
	Cells  int `json:"cells"`
	// MeanIterations and the B-lives are fleet first-failure iteration
	// counts; DeterministicIterations is the Fig. 17 ranking metric.
	MeanIterations          float64 `json:"mean_iterations"`
	B1Iterations            float64 `json:"b1_iterations"`
	B10Iterations           float64 `json:"b10_iterations"`
	B50Iterations           float64 `json:"b50_iterations"`
	DeterministicIterations float64 `json:"deterministic_iterations"`
	// B1Seconds and MeanSeconds are wall-clock conversions on the row's
	// technology.
	B1Seconds   float64 `json:"b1_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// StrategyResult is one strategy's endurance outcome, flattened for
// JSON clients.
type StrategyResult struct {
	// Strategy is the paper label ("RaxBs+Hw").
	Strategy string `json:"strategy"`
	// MaxWritesPerIteration, Utilization and Imbalance mirror
	// pim.Result.
	MaxWritesPerIteration float64 `json:"max_writes_per_iteration"`
	Utilization           float64 `json:"utilization"`
	Imbalance             float64 `json:"imbalance"`
	// IterationsToFailure and LifetimeSeconds are the Eq. 4 estimate.
	IterationsToFailure float64 `json:"iterations_to_failure"`
	LifetimeSeconds     float64 `json:"lifetime_seconds"`
	// MaxWrites and TotalWrites summarize the write distribution;
	// DistFNV is an FNV-64a checksum over its per-cell counts, the
	// bit-identity witness for cached-vs-cold comparisons.
	MaxWrites   uint64 `json:"max_writes"`
	TotalWrites uint64 `json:"total_writes"`
	DistFNV     string `json:"dist_fnv"`
	// Improvement is the lifetime factor over the St×St baseline
	// (present only when the job includes that baseline).
	Improvement float64 `json:"improvement,omitempty"`
	// Wear carries the per-epoch telemetry snapshot when the request
	// set sample_every.
	Wear *WearSnapshot `json:"wear,omitempty"`
}

// WearSnapshot is a job-lifetime copy of a wear series: the live
// obs.Series is unregistered when the job completes, so the samples
// move into the result.
type WearSnapshot struct {
	// Columns and Samples mirror obs.Series.
	Columns []string    `json:"columns"`
	Samples [][]float64 `json:"samples"`
}

func distFNV(counts []uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range counts {
		for i := range buf {
			buf[i] = byte(c >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func buildResult(j *job, results []*pim.Result, hit bool) *JobResult {
	out := &JobResult{CacheHit: hit}
	improvements := map[string]float64{}
	if imps, err := pim.Improvements(results); err == nil {
		for _, imp := range imps {
			improvements[imp.Strategy.Name()] = imp.Factor
		}
	}
	for _, r := range results {
		out.Benchmark = r.Benchmark
		row := StrategyResult{
			Strategy:              r.Strategy.Name(),
			MaxWritesPerIteration: r.MaxWritesPerIteration,
			Utilization:           r.Utilization,
			Imbalance:             r.Imbalance,
			IterationsToFailure:   r.Lifetime.IterationsToFailure,
			LifetimeSeconds:       r.Lifetime.Seconds,
			MaxWrites:             r.Dist.Max(),
			TotalWrites:           r.Dist.Total(),
			DistFNV:               distFNV(r.Dist.Counts),
			Improvement:           improvements[r.Strategy.Name()],
		}
		if r.Wear != nil {
			row.Wear = &WearSnapshot{Columns: r.Wear.Columns(), Samples: r.Wear.Samples()}
		}
		out.Strategies = append(out.Strategies, row)
	}
	return out
}

// jobStatus is the GET /jobs/<id> body.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Coalesced int    `json:"coalesced"`
	// Trace is the job's obs trace id; GET /jobs/<id>/trace exports the
	// span events stamped with it as a Chrome trace document.
	Trace string `json:"trace,omitempty"`
	// EnqueuedMS/StartedMS/FinishedMS are Unix milliseconds (0 when the
	// job has not reached that point).
	EnqueuedMS int64 `json:"enqueued_ms"`
	StartedMS  int64 `json:"started_ms,omitempty"`
	FinishedMS int64 `json:"finished_ms,omitempty"`
	// QueueMS/ComputeMS/TotalMS are the finished job's latency breakdown
	// (absent while it is still queued or running).
	QueueMS   int64 `json:"queue_ms,omitempty"`
	ComputeMS int64 `json:"compute_ms,omitempty"`
	TotalMS   int64 `json:"total_ms,omitempty"`
	// Progress lists the job's live wear series while it runs.
	Progress []progressEntry `json:"progress,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   *JobResult      `json:"result,omitempty"`
}

// progressEntry is one live wear series of a running job: its last
// sample, so pollers see per-epoch movement without pulling /series.
type progressEntry struct {
	Series  string    `json:"series"`
	Columns []string  `json:"columns"`
	Epochs  int       `json:"epochs"`
	Last    []float64 `json:"last,omitempty"`
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request, rest string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		// One 404 shape for both never-existed and completed-and-evicted
		// ids: the history ring forgets the oldest finished jobs, so a
		// stale id is indistinguishable from a wrong one.
		httpError(w, http.StatusNotFound, "unknown job %q (never accepted, or evicted from history)", id)
		return
	}
	switch sub {
	case "":
		// fall through to the status body below
	case "trace":
		j.mu.Lock()
		trace := j.trace
		j.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteTraceFor(w, trace)
		return
	default:
		httpError(w, http.StatusNotFound, "unknown job subresource %q (only /jobs/<id> and /jobs/<id>/trace exist)", sub)
		return
	}
	j.mu.Lock()
	st := jobStatus{
		ID:         j.id,
		State:      j.state,
		Coalesced:  j.coalesced,
		Trace:      j.trace,
		EnqueuedMS: unixMS(j.enqueued),
		StartedMS:  unixMS(j.started),
		FinishedMS: unixMS(j.finished),
		Error:      j.err,
		Result:     j.result,
	}
	if !j.finished.IsZero() {
		queueWait, compute, total := j.breakdownLocked()
		st.QueueMS, st.ComputeMS, st.TotalMS = queueWait.Milliseconds(), compute.Milliseconds(), total.Milliseconds()
	}
	running := j.state == "running"
	j.mu.Unlock()
	if running {
		prefix := "serve." + id + "."
		for _, series := range obs.AllSeries() {
			if !strings.HasPrefix(series.Name(), prefix) {
				continue
			}
			st.Progress = append(st.Progress, progressEntry{
				Series:  series.Name(),
				Columns: series.Columns(),
				Epochs:  series.Len(),
				Last:    series.Last(),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	type row struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		rows = append(rows, row{ID: j.id, State: j.state})
		j.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].ID < rows[k].ID })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"jobs": rows})
}
