package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"pimendure/pim"
)

// smallFleet is smallSweep plus a fleet-survival shape: two strategies,
// two technologies, two σ values, 20k devices per point.
func smallFleet() map[string]any {
	m := smallSweep()
	m["strategies"] = []string{"StxSt", "RaxRa+Hw"}
	m["technologies"] = []string{"MRAM", "RRAM"}
	m["sigmas"] = []float64{0.3, 0.6}
	m["devices"] = 20000
	return m
}

func submitFleet(t *testing.T, client *http.Client, base string, body map[string]any) string {
	t.Helper()
	code, out := postJSON(t, client, base+"/fleet", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit fleet: status %d, body %v", code, out)
	}
	id, _ := out["job"].(string)
	if id == "" {
		t.Fatalf("submit fleet: no job id in %v", out)
	}
	return id
}

// A served fleet study must be bit-identical to a direct pim.Fleet call,
// and a second identical request must reuse the cached WearPlan and
// reproduce the rows exactly.
func TestFleetEndToEndBitIdentical(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	opt := pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 300, RecompileEvery: 50, Seed: 7}
	strategies := []pim.Strategy{
		pim.StaticStrategy,
		{Within: pim.Random, Between: pim.Random, Hw: true},
	}
	techs := []pim.Technology{pim.MRAM(), pim.RRAM()}
	// The server threads the request seed into both the simulator and
	// the fleet draws, so the cold call must match it.
	fc := pim.FleetConfig{Devices: 20000, Sigmas: []float64{0.3, 0.6}, Seed: rc.Seed}
	cold, err := pim.Fleet(bench, opt, rc, strategies, techs, fc)
	if err != nil {
		t.Fatal(err)
	}

	first := pollDone(t, ts.Client(), ts.URL, submitFleet(t, ts.Client(), ts.URL, smallFleet()))
	if first.State != "done" {
		t.Fatalf("first fleet job state %q (err %q)", first.State, first.Error)
	}
	if first.Result == nil || len(first.Result.Fleet) != len(cold) {
		t.Fatalf("first fleet job returned %d rows, want %d", len(first.Result.Fleet), len(cold))
	}
	if len(first.Result.Strategies) != 0 {
		t.Error("fleet job carries per-strategy sweep rows")
	}
	for i, p := range cold {
		row := first.Result.Fleet[i]
		if row.Strategy != p.Strategy.Name() || row.Technology != p.Technology.Name || row.Sigma != p.Sigma {
			t.Fatalf("row %d is %s/%s/σ=%v, want %s/%s/σ=%v", i,
				row.Strategy, row.Technology, row.Sigma, p.Strategy.Name(), p.Technology.Name, p.Sigma)
		}
		if row.MeanIterations != p.MeanIterations ||
			row.B1Iterations != p.Quantiles[0] ||
			row.B10Iterations != p.Quantiles[1] ||
			row.B50Iterations != p.Quantiles[2] ||
			row.DeterministicIterations != p.DeterministicIterations {
			t.Errorf("row %d differs from cold pim.Fleet", i)
		}
		if row.Groups != p.Groups || row.Cells != p.Cells || row.Devices != p.Devices {
			t.Errorf("row %d population/collapse differs from cold pim.Fleet", i)
		}
		if row.B1Seconds != p.Seconds(p.Quantiles[0]) {
			t.Errorf("row %d seconds conversion differs", i)
		}
	}

	second := pollDone(t, ts.Client(), ts.URL, submitFleet(t, ts.Client(), ts.URL, smallFleet()))
	if second.State != "done" {
		t.Fatalf("second fleet job state %q (err %q)", second.State, second.Error)
	}
	if !second.Result.CacheHit {
		t.Error("second identical fleet request missed the plan cache")
	}
	for i := range first.Result.Fleet {
		if first.Result.Fleet[i] != second.Result.Fleet[i] {
			t.Errorf("row %d differs between cached and cold fleet jobs", i)
		}
	}
}

// Admission control: over-cap populations, negative sigmas, too many
// sigmas and unknown technologies are rejected with 400 before any
// compute is spent.
func TestFleetAdmission(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxDevices: 50_000})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, mutate := range map[string]func(map[string]any){
		"over-cap devices": func(m map[string]any) { m["devices"] = 50_001 },
		"negative sigma":   func(m map[string]any) { m["sigmas"] = []float64{-0.1} },
		"too many sigmas": func(m map[string]any) {
			m["sigmas"] = make([]float64, maxFleetSigmas+1)
		},
		"unknown technology": func(m map[string]any) { m["technologies"] = []string{"SRAM"} },
	} {
		body := smallFleet()
		mutate(body)
		code, out := postJSON(t, ts.Client(), ts.URL+"/fleet", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %v), want 400", name, code, out)
		}
	}

	// The defaulted request stays admissible under the cap.
	body := smallFleet()
	delete(body, "devices")
	body["devices"] = 10_000
	if code, out := postJSON(t, ts.Client(), ts.URL+"/fleet", body); code != http.StatusAccepted {
		t.Fatalf("in-cap fleet request rejected: %d %v", code, out)
	}
}
