package traceio

import (
	"bytes"
	"strings"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

func sampleTrace(t *testing.T) *workloads.Benchmark {
	t.Helper()
	cfg := workloads.Config{Lanes: 8, Rows: 128, Basis: synth.NAND}
	b, err := workloads.DotProduct(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace(t).Trace
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Lanes != tr.Lanes || back.LaneBits != tr.LaneBits ||
		back.WriteSlots != tr.WriteSlots || back.ReadSlots != tr.ReadSlots {
		t.Fatalf("header mismatch: %+v vs %+v", back, tr)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("op count %d vs %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if back.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: %+v vs %+v", i, back.Ops[i], tr.Ops[i])
		}
	}
	if len(back.Masks) != len(tr.Masks) {
		t.Fatalf("mask count %d vs %d", len(back.Masks), len(tr.Masks))
	}
	for i := range tr.Masks {
		if !back.Masks[i].Equal(tr.Masks[i]) {
			t.Fatalf("mask %d differs", i)
		}
	}
}

// A round-tripped trace must produce the identical wear distribution —
// the end-to-end guarantee serialization exists for.
func TestRoundTrippedTraceSimulatesIdentically(t *testing.T) {
	tr := sampleTrace(t).Trace
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SimConfig{Rows: 128, PresetOutputs: true, Iterations: 20, RecompileEvery: 5, Seed: 9}
	strat := core.StrategyConfig{Within: 1, Between: 2, Hw: true} // RaxBs+Hw
	a, err := core.Simulate(tr, cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Simulate(back, cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("round-tripped trace produced a different distribution")
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	tr := sampleTrace(t).Trace
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"bad version": strings.Replace(good, `"version":1`, `"version":99`, 1),
		"bad lanes":   strings.Replace(good, `"lanes":8`, `"lanes":0`, 1),
		"not json":    "{",
		"bad op kind": strings.Replace(good, "[3,", "[9,", 1),
	}
	for name, payload := range cases {
		if _, err := ReadTrace(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDistRoundTrip(t *testing.T) {
	d := core.NewWriteDist(4, 3)
	for i := range d.Counts {
		d.Counts[i] = uint64(i * 7)
	}
	d.Iterations = 100
	d.StepsPerIteration = 999
	var buf bytes.Buffer
	if err := WriteDist(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) || back.Iterations != 100 || back.StepsPerIteration != 999 {
		t.Error("distribution round trip mismatch")
	}
}

func TestReadDistRejectsCorruption(t *testing.T) {
	d := core.NewWriteDist(2, 2)
	var buf bytes.Buffer
	if err := WriteDist(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"bad version": strings.Replace(good, `"version":1`, `"version":2`, 1),
		"bad shape":   strings.Replace(good, `"rows":2`, `"rows":3`, 1),
		"zero dims":   strings.Replace(good, `"rows":2`, `"rows":0`, 1),
		"not json":    "nope",
	}
	for name, payload := range cases {
		if _, err := ReadDist(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
