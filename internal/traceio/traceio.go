// Package traceio serializes compiled PIM traces and accumulated write
// distributions to a versioned JSON format, so that compilation,
// simulation and rendering can run as separate steps (and experiment
// outputs can be archived and re-plotted without re-simulation).
package traceio

import (
	"encoding/json"
	"fmt"
	"io"

	"pimendure/internal/core"
	"pimendure/internal/gates"
	"pimendure/internal/program"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// opRecord is the compact per-op encoding:
// [kind, gate, out, in0, in1, mask, laneShift, data].
type opRecord [8]int32

type traceJSON struct {
	Version    int        `json:"version"`
	Lanes      int        `json:"lanes"`
	LaneBits   int        `json:"laneBits"`
	WriteSlots int        `json:"writeSlots"`
	ReadSlots  int        `json:"readSlots"`
	Masks      []maskJSON `json:"masks"`
	Ops        []opRecord `json:"ops"`
}

type maskJSON struct {
	Lanes int   `json:"lanes"`
	Full  bool  `json:"full,omitempty"`
	Set   []int `json:"set,omitempty"` // set lanes, ascending, when not full
}

// WriteTrace encodes a trace.
func WriteTrace(w io.Writer, tr *program.Trace) error {
	out := traceJSON{
		Version:    FormatVersion,
		Lanes:      tr.Lanes,
		LaneBits:   tr.LaneBits,
		WriteSlots: tr.WriteSlots,
		ReadSlots:  tr.ReadSlots,
	}
	for _, m := range tr.Masks {
		mj := maskJSON{Lanes: m.Len(), Full: m.Full()}
		if !mj.Full {
			mj.Set = m.Lanes()
		}
		out.Masks = append(out.Masks, mj)
	}
	for _, op := range tr.Ops {
		out.Ops = append(out.Ops, opRecord{
			int32(op.Kind), int32(op.Gate), int32(op.Out), int32(op.In0), int32(op.In1),
			int32(op.Mask), op.LaneShift, op.Data,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadTrace decodes and validates a trace.
func ReadTrace(r io.Reader) (*program.Trace, error) {
	var in traceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("traceio: unsupported trace format version %d (want %d)", in.Version, FormatVersion)
	}
	if in.Lanes <= 0 {
		return nil, fmt.Errorf("traceio: non-positive lane count %d", in.Lanes)
	}
	tr := program.NewTrace(in.Lanes)
	tr.WriteSlots = in.WriteSlots
	tr.ReadSlots = in.ReadSlots
	for i, mj := range in.Masks {
		if mj.Lanes != in.Lanes {
			return nil, fmt.Errorf("traceio: mask %d spans %d lanes, trace has %d", i, mj.Lanes, in.Lanes)
		}
		var m *program.Mask
		if mj.Full {
			m = program.FullMask(in.Lanes)
		} else {
			m = program.NewMask(in.Lanes)
			for _, l := range mj.Set {
				if l < 0 || l >= in.Lanes {
					return nil, fmt.Errorf("traceio: mask %d has lane %d out of range", i, l)
				}
				m.Set(l)
			}
		}
		if got := tr.AddMask(m); int(got) != i {
			return nil, fmt.Errorf("traceio: duplicate mask %d collapses to %d; file corrupt", i, got)
		}
	}
	for i, rec := range in.Ops {
		op := program.Op{
			Kind:      program.OpKind(rec[0]),
			Gate:      gates.Kind(rec[1]),
			Out:       program.Bit(rec[2]),
			In0:       program.Bit(rec[3]),
			In1:       program.Bit(rec[4]),
			Mask:      program.MaskID(rec[5]),
			LaneShift: rec[6],
			Data:      rec[7],
		}
		if op.Kind > program.OpMove {
			return nil, fmt.Errorf("traceio: op %d has unknown kind %d", i, rec[0])
		}
		tr.Append(op)
	}
	if tr.LaneBits < in.LaneBits {
		tr.LaneBits = in.LaneBits
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return tr, nil
}

type distJSON struct {
	Version    int      `json:"version"`
	Rows       int      `json:"rows"`
	Lanes      int      `json:"lanes"`
	Iterations int      `json:"iterations"`
	Steps      int      `json:"stepsPerIteration"`
	Counts     []uint64 `json:"counts"`
}

// WriteDist encodes a write distribution.
func WriteDist(w io.Writer, d *core.WriteDist) error {
	return json.NewEncoder(w).Encode(distJSON{
		Version:    FormatVersion,
		Rows:       d.Rows,
		Lanes:      d.Lanes,
		Iterations: d.Iterations,
		Steps:      d.StepsPerIteration,
		Counts:     d.Counts,
	})
}

// ReadDist decodes and validates a write distribution.
func ReadDist(r io.Reader) (*core.WriteDist, error) {
	var in distJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("traceio: unsupported distribution format version %d (want %d)", in.Version, FormatVersion)
	}
	if in.Rows <= 0 || in.Lanes <= 0 {
		return nil, fmt.Errorf("traceio: non-positive dimensions %dx%d", in.Rows, in.Lanes)
	}
	if len(in.Counts) != in.Rows*in.Lanes {
		return nil, fmt.Errorf("traceio: %d counts do not fill %dx%d", len(in.Counts), in.Rows, in.Lanes)
	}
	d := core.NewWriteDist(in.Rows, in.Lanes)
	copy(d.Counts, in.Counts)
	d.Iterations = in.Iterations
	d.StepsPerIteration = in.Steps
	return d, nil
}
