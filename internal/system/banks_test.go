package system_test

import (
	"runtime"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/device"
	"pimendure/internal/mapping"
	"pimendure/internal/synth"
	"pimendure/internal/system"
	"pimendure/internal/workloads"
)

// bankFixture builds the shared small workload plan.
func bankFixture(t *testing.T) *core.WearPlan {
	t.Helper()
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewWearPlan(mult.Trace, 96, true)
}

func swStrategy() core.StrategyConfig {
	return core.StrategyConfig{Within: mapping.Random, Between: mapping.Static}
}

// Round-robin must stripe blocks in exact flat-id order: 23 iterations in
// blocks of 7 over 3 banks is blocks {7,7,7,2} routed 0,1,2,0.
func TestRoundRobinExactStripeCounts(t *testing.T) {
	plan := bankFixture(t)
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 23, RecompileEvery: 7, Seed: 42,
	}
	res, err := system.Stripe(plan, sim, swStrategy(), system.BankConfig{
		Org: device.FlatOrganization(3), Policy: system.RoundRobin, Endurance: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantIters := []int{9, 7, 7} // bank 0: blocks 0 (7) and 3 (the short tail, 2)
	wantBlocks := []int{2, 1, 1}
	for b, br := range res.Banks {
		if br.Iterations != wantIters[b] || br.Blocks != wantBlocks[b] {
			t.Errorf("bank %d got %d iterations / %d blocks, want %d / %d",
				b, br.Iterations, br.Blocks, wantIters[b], wantBlocks[b])
		}
	}
	if res.BanksTouched != 3 || res.Spills != 0 {
		t.Errorf("touched %d banks with %d spills, want 3 / 0", res.BanksTouched, res.Spills)
	}
	total := 0
	for _, br := range res.Banks {
		total += br.Iterations
	}
	if total != sim.Iterations {
		t.Errorf("assigned %d iterations, want %d", total, sim.Iterations)
	}
}

// Wear-aware routing must keep work off a bank that carries heavy
// pre-existing wear while the fresh banks still have headroom.
func TestWearAwareRoutesAwayFromHotBank(t *testing.T) {
	plan := bankFixture(t)
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 40, RecompileEvery: 10, Seed: 7,
	}
	res, err := system.Stripe(plan, sim, swStrategy(), system.BankConfig{
		Org: device.FlatOrganization(4), Policy: system.WearAware,
		PriorMax:  []uint64{1 << 40, 0, 0, 0}, // bank 0 is nearly worn out
		Endurance: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Banks[0].Iterations != 0 {
		t.Errorf("hot bank 0 still received %d iterations", res.Banks[0].Iterations)
	}
	for b := 1; b < 4; b++ {
		if res.Banks[b].Iterations == 0 {
			t.Errorf("fresh bank %d received no work", b)
		}
	}
	if res.BanksTouched != 3 {
		t.Errorf("touched %d banks, want 3", res.BanksTouched)
	}
}

// With identical fresh banks, wear-aware routing must fall back to an
// even round-robin-like spread (ties break to the lowest id), not pile
// onto one bank.
func TestWearAwareSpreadsFreshBanks(t *testing.T) {
	plan := bankFixture(t)
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 40, RecompileEvery: 10, Seed: 7,
	}
	res, err := system.Stripe(plan, sim, swStrategy(), system.BankConfig{
		Org: device.FlatOrganization(4), Policy: system.WearAware, Endurance: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b, br := range res.Banks {
		if br.Iterations != 10 {
			t.Errorf("bank %d got %d iterations, want 10", b, br.Iterations)
		}
	}
}

// Locality-aware spilling, hand-traced: a 1×2×2 organization, pressure 3
// blocks' worth per active group, 10 single-epoch blocks. Group 1
// activates (one spill) when the first 3 blocks saturate group 0; the
// cursor then round-robins the widened prefix.
func TestLocalitySpillBoundary(t *testing.T) {
	plan := bankFixture(t)
	const r = 10 // recompile period = block size
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 10 * r, RecompileEvery: r, Seed: 3,
	}
	res, err := system.Stripe(plan, sim, swStrategy(), system.BankConfig{
		Org:           system.Organization{Name: "tiny", Channels: 1, BankGroups: 2, Banks: 2},
		Policy:        system.LocalityAware,
		PressureIters: 3 * r,
		Endurance:     1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := []int{4, 3, 1, 2} // blocks {0,2,4,8}, {1,5,9}, {6}, {3,7}
	for b, br := range res.Banks {
		if br.Blocks != wantBlocks[b] || br.Iterations != wantBlocks[b]*r {
			t.Errorf("bank %d got %d blocks / %d iterations, want %d / %d",
				b, br.Blocks, br.Iterations, wantBlocks[b], wantBlocks[b]*r)
		}
	}
	if res.Spills != 1 {
		t.Errorf("spills = %d, want exactly 1", res.Spills)
	}
}

// The load-bearing invariant: every bank's distribution must be
// bit-identical to a standalone serial reference run of its assigned
// iteration count, for software and +Hw strategies and for any worker
// count. (The short final block lands on one bank as its final epochs,
// so each bank's epoch-length sequence is exactly a standalone run's.)
func TestBankBitIdentityVsReference(t *testing.T) {
	plan := bankFixture(t)
	strategies := []core.StrategyConfig{
		{Within: mapping.Random, Between: mapping.Static},
		{Within: mapping.Random, Between: mapping.Static, Hw: true},
	}
	for _, strat := range strategies {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			sim := core.SimConfig{
				Rows: 96, PresetOutputs: true,
				Iterations: 60, RecompileEvery: 7, Seed: 11,
				Workers: workers,
			}
			res, err := system.Stripe(plan, sim, strat, system.BankConfig{
				Org: device.FlatOrganization(8), Policy: system.RoundRobin, Endurance: 1e12,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat.Name(), workers, err)
			}
			for _, br := range res.Banks {
				if br.Iterations == 0 {
					if br.Dist != nil {
						t.Fatalf("%s: untouched bank %d has a distribution", strat.Name(), br.Bank)
					}
					continue
				}
				ref, err := core.SimulateReference(plan.Trace(), core.SimConfig{
					Rows: 96, PresetOutputs: true,
					Iterations: br.Iterations, RecompileEvery: 7,
					Seed: sim.Seed + int64(br.Bank),
				}, strat)
				if err != nil {
					t.Fatalf("%s bank %d reference: %v", strat.Name(), br.Bank, err)
				}
				if !br.Dist.Equal(ref) {
					t.Errorf("%s workers=%d: bank %d diverges from standalone reference (bank max %d, ref max %d)",
						strat.Name(), workers, br.Bank, br.Dist.Max(), ref.Max())
				}
			}
		}
	}
}

// Wear-aware striping must preserve the same per-bank bit-identity: the
// routing steppers are advisory, and phase 2 re-simulates each bank from
// scratch with its own seed.
func TestWearAwareBitIdentityVsReference(t *testing.T) {
	plan := bankFixture(t)
	strat := core.StrategyConfig{Within: mapping.Random, Between: mapping.Static, Hw: true}
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 60, RecompileEvery: 7, Seed: 11,
		Workers: runtime.GOMAXPROCS(0),
	}
	res, err := system.Stripe(plan, sim, strat, system.BankConfig{
		Org: device.FlatOrganization(4), Policy: system.WearAware, Endurance: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range res.Banks {
		if br.Iterations == 0 {
			continue
		}
		ref, err := core.SimulateReference(plan.Trace(), core.SimConfig{
			Rows: 96, PresetOutputs: true,
			Iterations: br.Iterations, RecompileEvery: 7,
			Seed: sim.Seed + int64(br.Bank),
		}, strat)
		if err != nil {
			t.Fatalf("bank %d reference: %v", br.Bank, err)
		}
		if !br.Dist.Equal(ref) {
			t.Errorf("bank %d diverges from standalone reference", br.Bank)
		}
	}
}

// BankEndurances must be reproducible from its seed and exact at σ=0.
func TestBankEndurancesSeeded(t *testing.T) {
	flat := system.BankEndurances(8, 1e12, 0, 99)
	for i, e := range flat {
		if e != 1e12 {
			t.Errorf("σ=0 bank %d endurance %g, want exactly 1e12", i, e)
		}
	}
	a := system.BankEndurances(8, 1e12, 0.25, 99)
	b := system.BankEndurances(8, 1e12, 0.25, 99)
	c := system.BankEndurances(8, 1e12, 0.25, 100)
	varied, differs := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at bank %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] != 1e12 {
			varied = true
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !varied {
		t.Error("σ=0.25 drew no variation")
	}
	if !differs {
		t.Error("different seeds drew identical endurances")
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range system.Policies() {
		got, err := system.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for spelling, want := range map[string]system.Policy{
		"rr": system.RoundRobin, "WEAR": system.WearAware, "Locality-Aware": system.LocalityAware,
	} {
		got, err := system.ParsePolicy(spelling)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := system.ParsePolicy("fifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestStripeRejectsBadConfig(t *testing.T) {
	plan := bankFixture(t)
	sim := core.SimConfig{Rows: 96, PresetOutputs: true, Iterations: 20, RecompileEvery: 10, Seed: 1}
	cases := []struct {
		name string
		sim  core.SimConfig
		cfg  system.BankConfig
	}{
		{"invalid org", sim, system.BankConfig{Org: system.Organization{}}},
		{"prior length", sim, system.BankConfig{Org: device.FlatOrganization(4), PriorMax: []uint64{1, 2}}},
		{"block not multiple", sim, system.BankConfig{Org: device.FlatOrganization(4), BlockIters: 15}},
		{"unknown policy", sim, system.BankConfig{Org: device.FlatOrganization(4), Policy: system.Policy(99)}},
	}
	for _, c := range cases {
		if _, err := system.Stripe(plan, c.sim, swStrategy(), c.cfg); err == nil {
			t.Errorf("%s: Stripe accepted the configuration", c.name)
		}
	}
}
