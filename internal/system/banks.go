// The multi-bank organization model: N banks, each an independent
// core.WearPlan-backed wear engine, and a scheduler that stripes a
// workload's iteration blocks across them. This answers a question the
// paper's single-array analysis cannot — does striping across 16 banks
// buy ~16× lifetime, or does hot-cell correlation eat the gain? — and
// adds the scheduling axis on top: because every bank runs the same
// kernel, the per-cell hot spots repeat in every bank, so naive striping
// scales lifetime by the bank count while wear-aware routing can
// additionally absorb bank-to-bank asymmetry (pre-existing wear,
// endurance variation).
//
// Scheduling is two-phase:
//
//  1. Routing walks the workload's recompile-aligned blocks in order and
//     assigns each to a bank (per the Policy). Only the wear-aware
//     policy needs live feedback; it steps a serial core.Stepper per
//     bank and routes each block to the bank with the lowest
//     prior + live hottest-cell count.
//  2. Simulation runs each bank's assigned iterations as an independent
//     simulation against the one shared WearPlan, banks sharded over
//     internal/pool with the worker budget split pool.Share-style —
//     the embarrassingly parallel axis of the organization.
//
// The phases compose exactly: a bank that received k full blocks plus
// (possibly) the workload's short final block sees the same epoch-length
// sequence as a standalone run of its assigned iteration count, so every
// per-bank distribution is bit-identical to core.SimulateReference over
// that bank's configuration — asserted in banks_test.go.
package system

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"pimendure/internal/core"
	"pimendure/internal/device"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
	"pimendure/internal/stats"
)

// Organization is the bank hierarchy of a multi-bank PIM device —
// channels × bank groups × banks, every bank an independent array. The
// canonical definition (and the DDR4/HBM3 presets) lives in
// internal/device next to the technology models.
type Organization = device.Organization

// Observability handles (no-ops until obs.Enable).
var (
	// obsStripes counts Stripe runs.
	obsStripes = obs.GetCounter("system.stripes")
	// obsBlocks counts iteration blocks routed across banks.
	obsBlocks = obs.GetCounter("system.blocks")
	// obsSpills counts locality-aware bank-group spills.
	obsSpills = obs.GetCounter("system.spills")
	// obsBankSims counts per-bank simulations executed.
	obsBankSims = obs.GetCounter("system.bank_sims")
	// obsBanks is the high-water bank count of any organization striped.
	obsBanks = obs.GetGauge("system.banks")
)

// Policy selects how the bank scheduler stripes iteration blocks across
// the organization.
type Policy int

const (
	// RoundRobin stripes blocks across all banks in flat-id order —
	// the oblivious baseline.
	RoundRobin Policy = iota
	// WearAware routes each block to the bank whose hottest cell
	// (pre-existing wear + live accumulated writes) is lowest, fed by a
	// per-bank incremental engine (core.Stepper); ties break to the
	// lowest flat id.
	WearAware
	// LocalityAware keeps the working set on one bank group and widens
	// to the next group only under pressure: blocks round-robin over the
	// active groups' banks, and another group activates whenever the
	// assigned iterations reach PressureIters per active group.
	LocalityAware
)

// String returns the scheduler flag spelling ("round-robin",
// "wear-aware", "locality-aware").
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case WearAware:
		return "wear-aware"
	case LocalityAware:
		return "locality-aware"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy converts a flag spelling (case-insensitive, with or
// without the hyphen) back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "-", "")) {
	case "roundrobin", "rr":
		return RoundRobin, nil
	case "wearaware", "wear":
		return WearAware, nil
	case "localityaware", "locality":
		return LocalityAware, nil
	}
	return 0, fmt.Errorf("system: unknown policy %q (want round-robin, wear-aware or locality-aware)", s)
}

// Policies lists the scheduling policies in presentation order.
func Policies() []Policy { return []Policy{RoundRobin, WearAware, LocalityAware} }

// BankConfig describes a multi-bank striping run. The simulation
// parameters themselves (iterations, recompile period, seed, worker
// budget, array geometry) ride in the core.SimConfig passed to Stripe;
// bank b's per-bank simulation uses Seed+b so banks draw independent
// random schedules yet stay reproducible from one run seed.
type BankConfig struct {
	// Org is the bank hierarchy.
	Org Organization
	// Policy selects the striping policy.
	Policy Policy
	// BlockIters is the scheduling granularity in iterations. It must be
	// a positive multiple of the recompile period (≤ 0 selects exactly
	// one recompile epoch per block), so a bank's assigned blocks always
	// decompose into full recompile epochs plus at most the workload's
	// short final epoch.
	BlockIters int
	// PressureIters is the locality-aware per-active-group capacity: a
	// new bank group activates when the assigned iterations reach
	// PressureIters × active groups. ≤ 0 selects the fair share,
	// ⌈Iterations / TotalGroups⌉.
	PressureIters int
	// PriorMax is optional pre-existing per-bank wear: flat-bank-indexed
	// hottest-cell write counts carried into routing decisions and
	// lifetime headroom (nil = fresh banks).
	PriorMax []uint64
	// Endurance is the nominal cell endurance (writes to failure) behind
	// per-bank lifetime projections and wear-sampler series; ≤ 0 records
	// NaN projections.
	Endurance float64
	// Sigma is the lognormal shape of bank-to-bank endurance variation;
	// bank endurances are drawn by BankEndurances from the run seed, so
	// variation experiments reproduce (0 = identical banks).
	Sigma float64
	// SampleEvery, when > 0, attaches a core.WearSampler to every
	// simulated bank (cadence in recompile epochs) and records the
	// per-bank summary series — bank-level wear flows into /metrics,
	// /series and /wear.png?name=.
	SampleEvery int
	// SeriesPrefix scopes the telemetry names this run registers
	// ("<prefix>system.<policy>.bank<id>" and
	// "<prefix>system.banks.<policy>").
	SeriesPrefix string
}

// BankResult is one bank's outcome of a striping run.
type BankResult struct {
	// Bank is the flat bank id; Channel, Group and Index its position.
	Bank, Channel, Group, Index int
	// Iterations and Blocks the scheduler assigned to this bank.
	Iterations, Blocks int
	// PriorMax is the pre-existing hottest-cell wear carried in.
	PriorMax uint64
	// Endurance is this bank's drawn cell endurance.
	Endurance float64
	// MaxWrites and MeanWrites summarize the accumulated distribution
	// (this run only, excluding PriorMax); CoV is its coefficient of
	// variation. Zero-iteration banks report zeros.
	MaxWrites  uint64
	MeanWrites float64
	CoV        float64
	// IterationsToFailure is the bank-local Eq. 4 projection: remaining
	// endurance headroom over the observed per-iteration peak rate
	// (+Inf for untouched banks).
	IterationsToFailure float64
	// Dist is the accumulated write distribution (nil for untouched
	// banks).
	Dist *core.WriteDist
	// Wear is the bank's sampled trajectory when SampleEvery > 0.
	Wear *obs.Series
}

// StripeResult is the outcome of striping one workload across an
// organization.
type StripeResult struct {
	// Org and Policy echo the configuration.
	Org    Organization
	Policy Policy
	// TotalIterations and BlockIters echo the resolved workload split.
	TotalIterations, BlockIters int
	// Banks holds one entry per bank, flat-id order.
	Banks []BankResult
	// BanksTouched counts banks that received work; Spills counts
	// locality-aware group activations beyond the first.
	BanksTouched, Spills int
	// BankCoV is the across-bank coefficient of variation of effective
	// hottest-cell wear (PriorMax + MaxWrites) — the "what the mean
	// hides" number: 0 means the stripe left every bank equally worn.
	BankCoV float64
	// SystemIterationsToFailure is the sustainable workload total: the
	// iterations the whole organization absorbs, at this stripe's
	// per-bank proportions, until the first bank's hottest cell crosses
	// its endurance.
	SystemIterationsToFailure float64
}

// BankEndurances draws per-bank cell endurances: lognormal around the
// nominal value with shape sigma (the shared stats.Lognormal model, as
// in ChipLifetime and the fleet engine), from an explicit seed so bank-
// variation experiments are reproducible run to run (the seed lands in
// the CLI manifest). sigma ≤ 0 returns the nominal endurance exactly.
func BankEndurances(banks int, nominal float64, sigma float64, seed int64) []float64 {
	out := make([]float64, banks)
	if sigma <= 0 || nominal <= 0 {
		for i := range out {
			out[i] = nominal
		}
		return out
	}
	stats.LognormalMedian(nominal, sigma).Fill(out, rand.New(rand.NewSource(seed)))
	return out
}

// Stripe runs one workload across a multi-bank organization: routes
// sim.Iterations in recompile-aligned blocks over cfg.Org's banks under
// cfg.Policy, then simulates every touched bank independently against
// the shared plan (banks sharded over the worker pool; per-bank results
// bit-identical to core.SimulateReference for any worker count). sim
// carries the per-bank simulation parameters; bank b simulates with
// seed sim.Seed+b.
func Stripe(plan *core.WearPlan, sim core.SimConfig, strat core.StrategyConfig, cfg BankConfig) (*StripeResult, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	banks := cfg.Org.TotalBanks()
	if cfg.PriorMax != nil && len(cfg.PriorMax) != banks {
		return nil, fmt.Errorf("system: PriorMax has %d entries for %d banks", len(cfg.PriorMax), banks)
	}
	recompile := sim.RecompileEvery
	if recompile <= 0 || recompile > sim.Iterations {
		recompile = sim.Iterations
	}
	block := cfg.BlockIters
	if block <= 0 {
		block = recompile
	}
	if block%recompile != 0 {
		return nil, fmt.Errorf("system: block size %d is not a multiple of the recompile period %d", block, recompile)
	}
	// Validate the per-bank simulation parameters once, up front, against
	// the worst case (a bank receiving everything).
	probe := sim
	probe.RecompileEvery = recompile
	if err := probe.Validate(plan.Trace(), strat.Hw); err != nil {
		return nil, err
	}

	sp := obs.StartSpan("system.stripe")
	defer sp.End()
	obsStripes.Add(1)
	obsBanks.Observe(int64(banks))

	prior := func(b int) uint64 {
		if cfg.PriorMax == nil {
			return 0
		}
		return cfg.PriorMax[b]
	}
	endur := BankEndurances(banks, cfg.Endurance, cfg.Sigma, sim.Seed)

	assigned, blocksPer, spills, err := route(plan, sim, strat, cfg, recompile, block, prior)
	if err != nil {
		return nil, err
	}

	res := &StripeResult{
		Org: cfg.Org, Policy: cfg.Policy,
		TotalIterations: sim.Iterations, BlockIters: block,
		Banks:  make([]BankResult, banks),
		Spills: spills,
	}
	var touched []int
	for b := 0; b < banks; b++ {
		ch, g, i := cfg.Org.Position(b)
		res.Banks[b] = BankResult{
			Bank: b, Channel: ch, Group: g, Index: i,
			Iterations: assigned[b], Blocks: blocksPer[b],
			PriorMax: prior(b), Endurance: endur[b],
			IterationsToFailure: math.Inf(1),
		}
		if assigned[b] > 0 {
			touched = append(touched, b)
		}
	}
	res.BanksTouched = len(touched)

	// Phase 2: independent per-bank simulations against the one shared,
	// immutable plan — the embarrassingly parallel axis.
	bsp := obs.StartSpan("system.stripe/banks")
	errs := make([]error, len(touched))
	workers := pool.Size(sim.Workers, len(touched))
	inner := pool.Share(sim.Workers, workers)
	pool.ForEach(workers, len(touched), func(i int) {
		// One span per bank simulation under a single timer name: with
		// trace propagation through the pool, a serving job's per-bank
		// work shows up in its /jobs/<id>/trace export.
		simSp := obs.StartSpan("system.stripe/banks/sim")
		defer simSp.End()
		b := touched[i]
		bs := sim
		bs.Iterations = assigned[b]
		bs.RecompileEvery = recompile
		bs.Seed = sim.Seed + int64(b)
		bs.Workers = inner
		// A sampler records one trajectory and must not be shared across
		// concurrent banks; per-bank samplers are created below.
		bs.Sampler = nil
		var sampler *core.WearSampler
		if cfg.SampleEvery > 0 {
			name := fmt.Sprintf("%ssystem.%s.bank%03d", cfg.SeriesPrefix, cfg.Policy, b)
			sampler = core.NewWearSampler(name, cfg.SampleEvery, endur[b])
			bs.Sampler = sampler
			obs.RegisterWearPNG(sampler.Series().Name(), sampler.WritePNG)
		}
		dist, err := plan.Simulate(bs, strat)
		if err != nil {
			errs[i] = err
			return
		}
		obsBankSims.Add(1)
		br := &res.Banks[b]
		br.Dist = dist
		// One fused pass for max, mean and CoV — Max + Total + CoV each
		// rescanned the multi-megabyte distribution.
		sum := stats.Summarize(dist.Counts)
		br.MaxWrites = sum.Max
		br.MeanWrites = float64(sum.Total) / float64(sum.N)
		br.CoV = sum.CoV
		if sampler != nil {
			br.Wear = sampler.Series()
		}
	})
	bsp.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res.finishProjections(cfg)
	return res, nil
}

// finishProjections derives the lifetime and imbalance summaries from
// the per-bank distributions: bank-local iterations-to-failure, the
// across-bank CoV of effective wear, and the system-level sustainable
// iteration total (first bank failure at this stripe's proportions).
func (r *StripeResult) finishProjections(cfg BankConfig) {
	sys := math.Inf(1)
	var sum, sumsq float64
	for i := range r.Banks {
		b := &r.Banks[i]
		x := float64(b.PriorMax + b.MaxWrites)
		sum += x
		sumsq += x * x
		if b.MaxWrites == 0 {
			continue
		}
		headroom := b.Endurance - float64(b.PriorMax)
		if headroom < 0 {
			headroom = 0
		}
		perIter := float64(b.MaxWrites) / float64(b.Iterations)
		b.IterationsToFailure = headroom / perIter
		// The whole workload advances TotalIterations for every
		// Iterations this bank absorbs; the system dies when its
		// weakest-headroom bank does.
		if t := headroom / float64(b.MaxWrites) * float64(r.TotalIterations); t < sys {
			sys = t
		}
	}
	r.SystemIterationsToFailure = sys
	n := float64(len(r.Banks))
	if mean := sum / n; mean > 0 {
		variance := sumsq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		r.BankCoV = math.Sqrt(variance) / mean
	}
	if cfg.SampleEvery > 0 {
		s := obs.NewSeries(cfg.SeriesPrefix+"system.banks."+cfg.Policy.String(),
			"bank", "channel", "group", "iterations", "blocks",
			"max_writes", "mean_writes", "cov", "iters_to_failure")
		for i := range r.Banks {
			b := &r.Banks[i]
			s.Add(float64(b.Bank), float64(b.Channel), float64(b.Group),
				float64(b.Iterations), float64(b.Blocks),
				float64(b.MaxWrites), b.MeanWrites, b.CoV, b.IterationsToFailure)
		}
	}
}

// route is phase 1: walk the workload's blocks in order and pick a bank
// for each. Returns per-bank iteration and block tallies plus the
// locality spill count.
func route(plan *core.WearPlan, sim core.SimConfig, strat core.StrategyConfig, cfg BankConfig,
	recompile, block int, prior func(int) uint64) (assigned, blocksPer []int, spills int, err error) {
	banks := cfg.Org.TotalBanks()
	assigned = make([]int, banks)
	blocksPer = make([]int, banks)
	nBlocks := (sim.Iterations + block - 1) / block
	obsBlocks.Add(int64(nBlocks))

	// Wear-aware feedback: one serial incremental engine per bank,
	// created on a bank's first block (untouched banks score by prior
	// wear alone).
	var steppers []*core.Stepper
	if cfg.Policy == WearAware {
		steppers = make([]*core.Stepper, banks)
	}
	liveMax := func(b int) uint64 {
		m := prior(b)
		if steppers != nil && steppers[b] != nil {
			m += steppers[b].MaxWrites()
		}
		return m
	}

	// Locality state: groups activate in flat order; a group's banks are
	// contiguous in flat-id space, so the active set is a prefix.
	pressure := cfg.PressureIters
	if pressure <= 0 {
		pressure = (sim.Iterations + cfg.Org.TotalGroups() - 1) / cfg.Org.TotalGroups()
	}
	activeGroups, cursor := 1, 0

	totalAssigned := 0
	for k := 0; k < nBlocks; k++ {
		n := block
		if rem := sim.Iterations - k*block; rem < n {
			n = rem
		}
		var target int
		switch cfg.Policy {
		case RoundRobin:
			target = k % banks
		case WearAware:
			target = 0
			best := liveMax(0)
			for b := 1; b < banks; b++ {
				if m := liveMax(b); m < best {
					best, target = m, b
				}
			}
		case LocalityAware:
			for totalAssigned >= activeGroups*pressure && activeGroups < cfg.Org.TotalGroups() {
				activeGroups++
				spills++
				obsSpills.Add(1)
			}
			target = cursor % (activeGroups * cfg.Org.Banks)
			cursor++
		default:
			return nil, nil, 0, fmt.Errorf("system: unknown policy %v", cfg.Policy)
		}
		if steppers != nil {
			st := steppers[target]
			if st == nil {
				bc := sim
				bc.RecompileEvery = recompile
				bc.Seed = sim.Seed + int64(target)
				st, err = plan.NewStepper(bc, strat)
				if err != nil {
					return nil, nil, 0, err
				}
				steppers[target] = st
			}
			// A block is whole recompile epochs (plus the workload's short
			// tail inside the final block).
			for off := 0; off < n; off += recompile {
				e := recompile
				if n-off < e {
					e = n - off
				}
				st.Step(e)
			}
		}
		assigned[target] += n
		blocksPer[target]++
		totalAssigned += n
	}
	return assigned, blocksPer, spills, nil
}
