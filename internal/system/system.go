// Package system lifts the single-array endurance analysis to a whole PIM
// accelerator. The paper frames both deployments (§4): an embedded device
// "can only function as long as the PIM arrays persist", and a server
// accelerator "must be replaced once a sufficient number of PIM arrays
// fail"; §2.2 adds that at scale the limiting factors are the number of
// arrays and inter-array communication; §7 notes that low-duty-cycle
// embedded designs live proportionally longer.
//
// The model here: a chip carries identical arrays running the same kernel
// in parallel. Each array's first-cell-failure time comes from the
// single-array analysis (package lifetime); array-to-array variation is
// lognormal. The chip is serviceable while at least a minimum fraction of
// arrays survive, and its throughput degrades as arrays die.
package system

import (
	"fmt"
	"math/rand"
	"sort"

	"pimendure/internal/stats"
)

// Config describes the accelerator.
type Config struct {
	// Arrays is the number of PIM arrays on the chip.
	Arrays int
	// SpareFraction is the fraction of arrays that may fail before the
	// chip must be replaced (0 = first array failure kills the chip).
	SpareFraction float64
	// DutyCycle is the fraction of wall-clock time spent computing
	// (1 = the paper's continuous operation; embedded designs are far
	// lower, §7).
	DutyCycle float64
	// Sigma is the lognormal shape of array-to-array first-failure
	// variation (process variation, workload skew); 0 = identical
	// arrays.
	Sigma float64
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if c.Arrays <= 0 {
		return fmt.Errorf("system: need at least one array, got %d", c.Arrays)
	}
	if c.SpareFraction < 0 || c.SpareFraction >= 1 {
		return fmt.Errorf("system: spare fraction %v outside [0,1)", c.SpareFraction)
	}
	if c.DutyCycle <= 0 || c.DutyCycle > 1 {
		return fmt.Errorf("system: duty cycle %v outside (0,1]", c.DutyCycle)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("system: negative sigma %v", c.Sigma)
	}
	return nil
}

// Estimate is the chip-level replacement-time distribution.
type Estimate struct {
	Trials int
	// MeanSeconds is the expected wall-clock time until the chip drops
	// below its minimum surviving-array count.
	MeanSeconds float64
	// P05 and P95 bound the central 90%.
	P05, P95 float64
	// ArraysTolerated is how many array failures the chip absorbs before
	// replacement.
	ArraysTolerated int
}

// ChipLifetime Monte-Carlo estimates when the chip must be replaced,
// given the median first-failure time of a single array under continuous
// operation (from lifetime.Model.Estimate).
func ChipLifetime(arrayMedianSeconds float64, cfg Config, trials int, seed int64) (Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return Estimate{}, err
	}
	if arrayMedianSeconds <= 0 {
		return Estimate{}, fmt.Errorf("system: non-positive array lifetime %v", arrayMedianSeconds)
	}
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("system: trials must be positive")
	}
	tolerated := int(cfg.SpareFraction * float64(cfg.Arrays))
	// The chip dies at the (tolerated+1)-th array failure.
	kth := tolerated // 0-indexed order statistic
	l := stats.LognormalMedian(arrayMedianSeconds, cfg.Sigma)
	rng := rand.New(rand.NewSource(seed))

	samples := make([]float64, trials)
	lives := make([]float64, cfg.Arrays)
	for t := range samples {
		l.Fill(lives, rng)
		sort.Float64s(lives)
		samples[t] = lives[kth] / cfg.DutyCycle
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	q := func(p float64) float64 {
		i := int(p * float64(trials))
		if i >= trials {
			i = trials - 1
		}
		return samples[i]
	}
	return Estimate{
		Trials:          trials,
		MeanSeconds:     sum / float64(trials),
		P05:             q(0.05),
		P95:             q(0.95),
		ArraysTolerated: tolerated,
	}, nil
}

// Throughput models aggregate kernel throughput: arrays × lanes-parallel
// operations per second, discounted by inter-array communication.
type Throughput struct {
	// OpsPerArrayPerSecond is a single array's kernel completion rate
	// (1 / iteration latency).
	OpsPerArrayPerSecond float64
	// CommOverhead is the fraction of time lost to inter-array data
	// movement when combining results (0 for embarrassingly parallel
	// kernels, §2.2).
	CommOverhead float64
}

// Effective returns chip throughput with the given number of surviving
// arrays.
func (t Throughput) Effective(surviving int) float64 {
	if surviving <= 0 {
		return 0
	}
	return float64(surviving) * t.OpsPerArrayPerSecond * (1 - t.CommOverhead)
}

// DegradationCurve returns effective throughput as arrays fail one by one,
// from all alive down to the serviceability limit.
func DegradationCurve(t Throughput, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tolerated := int(cfg.SpareFraction * float64(cfg.Arrays))
	out := make([]float64, tolerated+1)
	for failed := 0; failed <= tolerated; failed++ {
		out[failed] = t.Effective(cfg.Arrays - failed)
	}
	return out, nil
}
