package system

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Arrays: 16, SpareFraction: 0.25, DutyCycle: 1, Sigma: 0.3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Arrays: 0, DutyCycle: 1},
		{Arrays: 4, SpareFraction: -0.1, DutyCycle: 1},
		{Arrays: 4, SpareFraction: 1, DutyCycle: 1},
		{Arrays: 4, DutyCycle: 0},
		{Arrays: 4, DutyCycle: 1.5},
		{Arrays: 4, DutyCycle: 1, Sigma: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// With no variation and no spares, the chip dies exactly when the arrays
// do, stretched by the duty cycle.
func TestChipLifetimeDeterministic(t *testing.T) {
	cfg := Config{Arrays: 64, SpareFraction: 0, DutyCycle: 1, Sigma: 0}
	est, err := ChipLifetime(1e6, cfg, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MeanSeconds-1e6) > 1 {
		t.Errorf("mean = %g, want 1e6", est.MeanSeconds)
	}
	if est.ArraysTolerated != 0 {
		t.Errorf("tolerated = %d, want 0", est.ArraysTolerated)
	}
	// Duty cycle 10% ⇒ 10× wall-clock life (§7's embedded argument).
	low := cfg
	low.DutyCycle = 0.1
	est2, err := ChipLifetime(1e6, low, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est2.MeanSeconds-1e7) > 10 {
		t.Errorf("duty-cycled mean = %g, want 1e7", est2.MeanSeconds)
	}
}

// Spares extend chip life under variation: tolerating 25% failures moves
// the replacement time from the minimum order statistic to the 25th
// percentile one.
func TestSparesExtendLifetime(t *testing.T) {
	base := Config{Arrays: 64, SpareFraction: 0, DutyCycle: 1, Sigma: 0.5}
	spared := base
	spared.SpareFraction = 0.25
	noSpare, err := ChipLifetime(1e6, base, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	withSpare, err := ChipLifetime(1e6, spared, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if withSpare.MeanSeconds <= noSpare.MeanSeconds {
		t.Errorf("spares should extend life: %g vs %g", withSpare.MeanSeconds, noSpare.MeanSeconds)
	}
	if withSpare.ArraysTolerated != 16 {
		t.Errorf("tolerated = %d, want 16", withSpare.ArraysTolerated)
	}
	// With variation, the first of 64 arrays dies well before the median.
	if noSpare.MeanSeconds >= 1e6 {
		t.Errorf("first-failure of 64 varying arrays (%g) should undercut the median 1e6", noSpare.MeanSeconds)
	}
	if !(noSpare.P05 <= noSpare.MeanSeconds && noSpare.MeanSeconds <= noSpare.P95) {
		t.Error("quantiles disordered")
	}
}

// More arrays with zero spare ⇒ earlier first failure (minimum of more
// draws).
func TestMoreArraysFailSooner(t *testing.T) {
	small := Config{Arrays: 8, SpareFraction: 0, DutyCycle: 1, Sigma: 0.5}
	big := Config{Arrays: 512, SpareFraction: 0, DutyCycle: 1, Sigma: 0.5}
	s, err := ChipLifetime(1e6, small, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChipLifetime(1e6, big, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanSeconds >= s.MeanSeconds {
		t.Errorf("512 arrays (%g) should fail sooner than 8 (%g)", b.MeanSeconds, s.MeanSeconds)
	}
}

func TestChipLifetimeErrors(t *testing.T) {
	cfg := Config{Arrays: 4, DutyCycle: 1}
	if _, err := ChipLifetime(0, cfg, 10, 1); err == nil {
		t.Error("zero array lifetime accepted")
	}
	if _, err := ChipLifetime(1, cfg, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := ChipLifetime(1, Config{}, 10, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{OpsPerArrayPerSecond: 1000, CommOverhead: 0.2}
	if got := tp.Effective(10); math.Abs(got-8000) > 1e-9 {
		t.Errorf("effective = %v, want 8000", got)
	}
	if tp.Effective(0) != 0 || tp.Effective(-1) != 0 {
		t.Error("dead chip should have zero throughput")
	}
}

func TestDegradationCurve(t *testing.T) {
	cfg := Config{Arrays: 8, SpareFraction: 0.5, DutyCycle: 1}
	tp := Throughput{OpsPerArrayPerSecond: 100}
	curve, err := DegradationCurve(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 { // 0..4 failures tolerated
		t.Fatalf("curve length %d, want 5", len(curve))
	}
	if curve[0] != 800 || curve[4] != 400 {
		t.Errorf("curve endpoints %v, %v", curve[0], curve[4])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] >= curve[i-1] {
			t.Error("throughput should strictly degrade")
		}
	}
	if _, err := DegradationCurve(tp, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
