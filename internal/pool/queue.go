package pool

import (
	"sync"

	"pimendure/internal/obs"
)

// Queue observability: accepted and rejected admissions. The depth
// watermark lives with the caller (serving layers track their own
// gauge), since Queue cannot know what one unit of depth means to it.
var (
	obsQueueAccepted = obs.GetCounter("pool.queue.accepted")
	obsQueueRejected = obs.GetCounter("pool.queue.rejected")
)

// Queue is the bounded work queue counterpart of ForEach: a fixed set
// of worker goroutines drains a fixed-depth buffer of items, and
// admission is non-blocking — TryEnqueue refuses instead of stalling
// the caller when the buffer is full. It exists for long-running
// serving layers (accept work forever, shed under load) where ForEach's
// run-to-completion shape does not fit.
//
// Each item carries the trace id bound to its submitter at TryEnqueue
// time, and the worker that picks it up re-binds that trace around run —
// so a job's spans stay attributed to its request even though queue
// workers are long-lived goroutines serving many jobs.
type Queue[T any] struct {
	ch  chan queued[T]
	run func(T)
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// queued pairs an item with the trace id captured at admission.
type queued[T any] struct {
	item  T
	trace string
}

// NewQueue starts `workers` goroutines (clamped to at least 1) draining
// a queue of at most `depth` pending items (clamped to at least 1) and
// calling run on each. Items are processed in admission order, up to
// `workers` concurrently.
func NewQueue[T any](workers, depth int, run func(T)) *Queue[T] {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue[T]{ch: make(chan queued[T], depth), run: run}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for qd := range q.ch {
				q.runOne(qd)
			}
		}()
	}
	return q
}

// runOne executes one dequeued item under its submitter's trace binding.
func (q *Queue[T]) runOne(qd queued[T]) {
	if qd.trace != "" {
		defer obs.SetTrace(qd.trace)()
	}
	sp := obs.StartSpan("pool.queue.job")
	q.run(qd.item)
	sp.End()
}

// TryEnqueue admits an item, or reports false without blocking when the
// queue is full or closed — the admission-control primitive behind a
// serving layer's 429 path.
func (q *Queue[T]) TryEnqueue(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		obsQueueRejected.Add(1)
		return false
	}
	select {
	case q.ch <- queued[T]{item: item, trace: obs.CurrentTrace()}:
		obsQueueAccepted.Add(1)
		return true
	default:
		obsQueueRejected.Add(1)
		return false
	}
}

// Depth returns the number of items admitted but not yet picked up by a
// worker.
func (q *Queue[T]) Depth() int { return len(q.ch) }

// Close stops admission, waits for the workers to finish the items they
// are already running, and returns the items that were still queued —
// the caller decides whether to cancel or complete them. Safe to call
// more than once; later calls wait and return nil.
func (q *Queue[T]) Close() []T {
	q.mu.Lock()
	already := q.closed
	q.closed = true
	q.mu.Unlock()
	if already {
		q.wg.Wait()
		return nil
	}
	// No sender can be in flight past this point (TryEnqueue checks
	// closed under the mutex), so drain what the workers have not taken
	// and close the channel to let them exit.
	var drained []T
	for {
		select {
		case qd := <-q.ch:
			drained = append(drained, qd.item)
			continue
		default:
		}
		break
	}
	close(q.ch)
	q.wg.Wait()
	return drained
}
