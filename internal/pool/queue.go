package pool

import (
	"sync"

	"pimendure/internal/obs"
)

// Queue observability: accepted and rejected admissions. The depth
// watermark lives with the caller (serving layers track their own
// gauge), since Queue cannot know what one unit of depth means to it.
var (
	obsQueueAccepted = obs.GetCounter("pool.queue.accepted")
	obsQueueRejected = obs.GetCounter("pool.queue.rejected")
)

// Queue is the bounded work queue counterpart of ForEach: a fixed set
// of worker goroutines drains a fixed-depth buffer of items, and
// admission is non-blocking — TryEnqueue refuses instead of stalling
// the caller when the buffer is full. It exists for long-running
// serving layers (accept work forever, shed under load) where ForEach's
// run-to-completion shape does not fit.
type Queue[T any] struct {
	ch  chan T
	run func(T)
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewQueue starts `workers` goroutines (clamped to at least 1) draining
// a queue of at most `depth` pending items (clamped to at least 1) and
// calling run on each. Items are processed in admission order, up to
// `workers` concurrently.
func NewQueue[T any](workers, depth int, run func(T)) *Queue[T] {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue[T]{ch: make(chan T, depth), run: run}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for item := range q.ch {
				sp := obs.StartSpan("pool.queue.job")
				q.run(item)
				sp.End()
			}
		}()
	}
	return q
}

// TryEnqueue admits an item, or reports false without blocking when the
// queue is full or closed — the admission-control primitive behind a
// serving layer's 429 path.
func (q *Queue[T]) TryEnqueue(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		obsQueueRejected.Add(1)
		return false
	}
	select {
	case q.ch <- item:
		obsQueueAccepted.Add(1)
		return true
	default:
		obsQueueRejected.Add(1)
		return false
	}
}

// Depth returns the number of items admitted but not yet picked up by a
// worker.
func (q *Queue[T]) Depth() int { return len(q.ch) }

// Close stops admission, waits for the workers to finish the items they
// are already running, and returns the items that were still queued —
// the caller decides whether to cancel or complete them. Safe to call
// more than once; later calls wait and return nil.
func (q *Queue[T]) Close() []T {
	q.mu.Lock()
	already := q.closed
	q.closed = true
	q.mu.Unlock()
	if already {
		q.wg.Wait()
		return nil
	}
	// No sender can be in flight past this point (TryEnqueue checks
	// closed under the mutex), so drain what the workers have not taken
	// and close the channel to let them exit.
	var drained []T
	for {
		select {
		case item := <-q.ch:
			drained = append(drained, item)
			continue
		default:
		}
		break
	}
	close(q.ch)
	q.wg.Wait()
	return drained
}
