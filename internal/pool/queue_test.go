package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// All admitted items run exactly once, across workers.
func TestQueueRunsAll(t *testing.T) {
	var ran atomic.Int64
	var wg sync.WaitGroup
	q := NewQueue[int](4, 64, func(int) {
		ran.Add(1)
		wg.Done()
	})
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if !q.TryEnqueue(i) {
			wg.Done()
			t.Fatalf("item %d rejected below depth", i)
		}
	}
	wg.Wait()
	if left := q.Close(); len(left) != 0 {
		t.Errorf("Close drained %d unprocessed items", len(left))
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d items, want 50", ran.Load())
	}
}

// A full queue sheds instead of blocking, and Close hands back the
// items no worker picked up.
func TestQueueShedsAndDrains(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 3)
	q := NewQueue[int](1, 2, func(int) {
		started <- struct{}{}
		<-block
	})
	if !q.TryEnqueue(0) {
		t.Fatal("first item rejected")
	}
	<-started // worker holds item 0; the buffer is empty again
	if !q.TryEnqueue(1) || !q.TryEnqueue(2) {
		t.Fatal("items rejected below depth")
	}
	if q.TryEnqueue(3) {
		t.Error("item admitted beyond depth")
	}
	if q.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", q.Depth())
	}
	go func() { close(block) }()
	drained := q.Close()
	if q.TryEnqueue(9) {
		t.Error("item admitted after Close")
	}
	// The worker was mid-item 0; items 1 and 2 were either drained by
	// Close or run during shutdown — between them, nothing may be lost.
	if len(drained) > 2 {
		t.Errorf("Close returned %d items, admitted only 2 pending", len(drained))
	}
}
