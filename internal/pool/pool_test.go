package pool_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"pimendure/internal/pool"
)

func TestSize(t *testing.T) {
	cases := []struct{ workers, jobs, want int }{
		{4, 10, 4},
		{10, 4, 4},
		{1, 100, 1},
		{4, 0, 1},
	}
	for _, c := range cases {
		if got := pool.Size(c.workers, c.jobs); got != c.want {
			t.Errorf("Size(%d, %d) = %d, want %d", c.workers, c.jobs, got, c.want)
		}
	}
	if got := pool.Size(0, 1<<30); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size(0, big) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestShare(t *testing.T) {
	if got := pool.Share(8, 4); got != 2 {
		t.Errorf("Share(8, 4) = %d, want 2", got)
	}
	if got := pool.Share(4, 18); got != 1 {
		t.Errorf("Share(4, 18) = %d, want 1", got)
	}
	if got := pool.Share(8, 0); got != 8 {
		t.Errorf("Share(8, 0) = %d, want 8", got)
	}
}

func TestForEachVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var visited [n]atomic.Int32
		pool.ForEach(workers, n, func(i int) {
			visited[i].Add(1)
		})
		for i := range visited {
			if v := visited[i].Load(); v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachWorkerSlotsBounded(t *testing.T) {
	const workers, n = 3, 100
	var used [workers]atomic.Int32
	var sum atomic.Int64
	pool.ForEachWorker(workers, n, func(slot, i int) {
		if slot < 0 || slot >= workers {
			t.Errorf("slot %d out of range", slot)
			return
		}
		used[slot].Add(1)
		sum.Add(int64(i))
	})
	var total int32
	for s := range used {
		total += used[s].Load()
	}
	if total != n {
		t.Errorf("processed %d items, want %d", total, n)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Errorf("item sum %d, want %d", sum.Load(), want)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	pool.ForEach(4, 0, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}
