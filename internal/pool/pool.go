// Package pool provides the bounded worker pool shared by the parallel
// wear engine (internal/core) and the strategy sweep (pim.Sweep). It
// replaces ad-hoc unbounded goroutine fan-out: callers state a worker
// budget, the pool clamps it to the job count, and work items are pulled
// off a shared counter so long items do not stall short ones.
//
// The pool makes no ordering guarantees between items; callers that need
// deterministic results must make each item's effect independent of
// scheduling (the wear engine does this with per-worker accumulation
// buffers merged by commutative uint64 addition).
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pimendure/internal/obs"
)

// Observability handles (no-ops until obs.Enable): how many batches were
// dispatched, how many items they carried, and the deepest queue any
// single dispatch presented to the pool.
var (
	obsDispatches = obs.GetCounter("pool.dispatches")
	obsJobs       = obs.GetCounter("pool.jobs")
	obsQueueDepth = obs.GetGauge("pool.queue_depth")
)

// Size normalizes a requested worker count against a job count: values
// ≤ 0 select runtime.GOMAXPROCS(0), and the result never exceeds jobs
// (and is at least 1).
func Size(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if jobs < workers {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Share divides a total worker budget among outer concurrent tasks,
// granting each at least one worker. Nested parallel stages (a sweep of
// strategies, each running a parallel engine) use it to keep the total
// goroutine count near the budget instead of multiplying.
func Share(total, outer int) int {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if outer < 1 {
		outer = 1
	}
	n := total / outer
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (≤ 0 selects GOMAXPROCS). With an effective pool size of 1
// it runs inline on the calling goroutine, spawning nothing.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachBlock partitions [0, n) into one contiguous block per worker
// (≤ 0 selects GOMAXPROCS; the pool clamps to n) and runs fn(lo, hi) for
// each block. It exists for data-parallel kernels over dense arrays —
// row-block gate execution in internal/array — where contiguous ranges
// keep the per-worker access pattern sequential and a shared work counter
// would only add contention. With an effective size of 1 it runs fn(0, n)
// inline, spawning nothing. Blocks are near-equal (boundaries distributed
// evenly when n does not divide); fn must make block effects independent
// of scheduling, as with ForEach.
func ForEachBlock(workers, n int, fn func(lo, hi int)) {
	w := Size(workers, n)
	obsDispatches.Add(1)
	obsJobs.Add(int64(w))
	obsQueueDepth.Observe(int64(w))
	if w == 1 {
		fn(0, n)
		return
	}
	// Propagate the dispatcher's trace id: the spawned workers belong to
	// the same request-scoped unit of work (trace bindings are
	// per-goroutine, so without this the fan-out would break the trace).
	trace := obs.CurrentTrace()
	var wg sync.WaitGroup
	wg.Add(w)
	for b := 0; b < w; b++ {
		go func(b int) {
			defer wg.Done()
			if trace != "" {
				defer obs.SetTrace(trace)()
			}
			fn(b*n/w, (b+1)*n/w)
		}(b)
	}
	wg.Wait()
}

// ForEachWorker is ForEach with the worker slot id (0..size-1) passed
// alongside each item, so callers can keep per-worker accumulation
// buffers without locking. Slot 0 is always used; when the pool runs
// inline every item sees slot 0.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	w := Size(workers, n)
	obsDispatches.Add(1)
	obsJobs.Add(int64(n))
	obsQueueDepth.Observe(int64(n))
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Same trace propagation as ForEachBlock: workers inherit the
	// dispatcher's request-scoped trace id.
	trace := obs.CurrentTrace()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for slot := 0; slot < w; slot++ {
		go func(slot int) {
			defer wg.Done()
			if trace != "" {
				defer obs.SetTrace(trace)()
			}
			// Span per worker goroutine, not per item: the trace then
			// shows one track per worker with the drain interval, and the
			// per-item overhead stays off the replay hot path.
			sp := obs.StartSpan("pool.worker")
			defer sp.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(slot, i)
			}
		}(slot)
	}
	wg.Wait()
}
