package baseline

// This file makes the paper's Fig. 6 / Algorithm 1 argument executable:
// classic NVM load balancing redirects writes per memory word, which is
// harmless when a CPU computes (data layout is decoupled from
// computation) but corrupts in-memory computation, which requires input
// operands to be physically aligned in their lanes.

// ANDDemoResult compares the Fig. 6(a) and 6(b) scenarios for the
// Algorithm 1 kernel z = x & y.
type ANDDemoResult struct {
	X, Y uint8
	// Want is the correct bitwise AND.
	Want uint8
	// CPU is what a conventional architecture computes when y's row was
	// shifted NVM-style: the CPU reads y back through the address map,
	// so the shift is invisible and the result is correct.
	CPU uint8
	// PIM is what in-memory column-wise AND gates compute on the same
	// shifted layout: operands are misaligned, the result is wrong
	// whenever the shift is nonzero and the data is sensitive to it.
	PIM uint8
	// PIMAware is the result when the remap shifts both operands
	// together (a PIM-aware, alignment-preserving remap): correct.
	PIMAware uint8
}

// MisalignedANDDemo lays x out in row 0 and y in row 1 of a tiny 8-column
// array, applies an NVM-style rotation of y's row by `shift` columns, and
// computes z = x & y three ways (see ANDDemoResult). shift is reduced
// modulo 8.
func MisalignedANDDemo(x, y uint8, shift int) ANDDemoResult {
	shift = ((shift % 8) + 8) % 8
	var row0, row1 [8]bool
	for i := 0; i < 8; i++ {
		row0[i] = x>>uint(i)&1 == 1
		// NVM-style remap: bit i of y is stored at column (i+shift)%8.
		row1[(i+shift)%8] = y>>uint(i)&1 == 1
	}

	res := ANDDemoResult{X: x, Y: y, Want: x & y}

	// Conventional architecture: the memory controller translates
	// addresses on read, so the CPU sees y intact.
	var yBack uint8
	for i := 0; i < 8; i++ {
		if row1[(i+shift)%8] {
			yBack |= 1 << uint(i)
		}
	}
	res.CPU = x & yBack

	// PIM: the AND gate fires column-wise on the physical layout; the
	// gate hardware knows nothing about the per-row remap.
	for i := 0; i < 8; i++ {
		if row0[i] && row1[i] {
			res.PIM |= 1 << uint(i)
		}
	}

	// PIM-aware remap: rotate both rows together, preserving alignment.
	var a0, a1 [8]bool
	for i := 0; i < 8; i++ {
		a0[(i+shift)%8] = x>>uint(i)&1 == 1
		a1[(i+shift)%8] = y>>uint(i)&1 == 1
	}
	var shifted uint8
	for i := 0; i < 8; i++ {
		if a0[i] && a1[i] {
			shifted |= 1 << uint(i)
		}
	}
	// Undo the (known) rotation when reading the result out.
	for i := 0; i < 8; i++ {
		if shifted>>uint((i+shift)%8)&1 == 1 {
			res.PIMAware |= 1 << uint(i)
		}
	}
	return res
}

// CorruptionRate estimates, over all 8-bit operand pairs with the given
// shift, the fraction for which the NVM-style remap yields a wrong PIM
// result. A zero shift never corrupts; any nonzero shift corrupts most
// operand pairs.
func CorruptionRate(shift int) float64 {
	wrong := 0
	for x := 0; x < 256; x++ {
		for y := 0; y < 256; y++ {
			r := MisalignedANDDemo(uint8(x), uint8(y), shift)
			if r.PIM != r.Want {
				wrong++
			}
		}
	}
	return float64(wrong) / (256 * 256)
}
