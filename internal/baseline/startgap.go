package baseline

import (
	"fmt"
	"math/rand"
)

// StartGap is the classic low-overhead wear-leveling scheme for standard
// NVM (Qureshi et al. [27]): N logical lines live in N+1 physical lines;
// a roving gap line absorbs locality by shifting every line one slot over
// a full rotation, using only two registers (start, gap) for the address
// algebra instead of a remap table.
//
// The paper's §3.2 explains why this style of per-line remapping cannot be
// applied to PIM; it is implemented here as the standard-memory baseline
// and used by the Fig. 6 demonstration.
type StartGap struct {
	n     int
	start int
	gap   int
	// GapInterval is ψ: the gap moves one slot every ψ writes.
	gapInterval int
	writesSince int
	lines       []uint64 // physical storage, n+1 lines
	writeCounts []uint64 // physical per-line write counts
}

// NewStartGap returns a leveler over n logical lines moving the gap every
// gapInterval writes (ψ=100 in [27]).
func NewStartGap(n, gapInterval int) (*StartGap, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: need at least 1 line, got %d", n)
	}
	if gapInterval < 1 {
		return nil, fmt.Errorf("baseline: gap interval must be ≥ 1, got %d", gapInterval)
	}
	return &StartGap{
		n:           n,
		gap:         n, // gap starts at the spare top line
		gapInterval: gapInterval,
		lines:       make([]uint64, n+1),
		writeCounts: make([]uint64, n+1),
	}, nil
}

// PhysAddr translates a logical line address using the Start-Gap algebra:
// PA = (LA + start) mod N, incremented by one if it is at or past the gap.
func (s *StartGap) PhysAddr(la int) int {
	if la < 0 || la >= s.n {
		panic(fmt.Sprintf("baseline: logical address %d out of range [0,%d)", la, s.n))
	}
	pa := (la + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return pa
}

// Read returns the value of a logical line.
func (s *StartGap) Read(la int) uint64 { return s.lines[s.PhysAddr(la)] }

// Write stores a value to a logical line and advances the gap after every
// GapInterval writes.
func (s *StartGap) Write(la int, v uint64) {
	pa := s.PhysAddr(la)
	s.lines[pa] = v
	s.writeCounts[pa]++
	s.writesSince++
	if s.writesSince >= s.gapInterval {
		s.writesSince = 0
		s.moveGap()
	}
}

// moveGap shifts the gap one slot down, copying the displaced line into the
// old gap. When the gap reaches the bottom it wraps: the top physical line
// moves into slot 0, the gap teleports to the top, and the start register
// advances — completing one rotation step of the whole array.
func (s *StartGap) moveGap() {
	if s.gap == 0 {
		s.lines[0] = s.lines[s.n]
		s.writeCounts[0]++
		s.gap = s.n
		s.start = (s.start + 1) % s.n
		return
	}
	s.lines[s.gap] = s.lines[s.gap-1]
	s.writeCounts[s.gap]++ // the copy is a real write
	s.gap--
}

// WriteCounts returns a copy of the physical per-line write counts.
func (s *StartGap) WriteCounts() []uint64 {
	out := make([]uint64, len(s.writeCounts))
	copy(out, s.writeCounts)
	return out
}

// Registers exposes the two-register state (start, gap) for inspection.
func (s *StartGap) Registers() (start, gap int) { return s.start, s.gap }

// HotLineImbalance measures max/mean physical write counts after issuing
// `writes` stores that all target logical line 0 — the adversarial
// hot-line workload Start-Gap is designed to survive. Useful as a baseline
// against the PIM distributions.
func HotLineImbalance(n, gapInterval, writes int) (float64, error) {
	s, err := NewStartGap(n, gapInterval)
	if err != nil {
		return 0, err
	}
	for i := 0; i < writes; i++ {
		s.Write(0, uint64(i))
	}
	counts := s.WriteCounts()
	var max, sum uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum == 0 {
		return 0, nil
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean, nil
}

// RandomizedCheck exercises the leveler with a random workload and
// verifies every read returns the last value written to that logical line.
// It returns the first inconsistency.
func RandomizedCheck(n, gapInterval, ops int, seed int64) error {
	s, err := NewStartGap(n, gapInterval)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	shadow := make([]uint64, n)
	for i := 0; i < ops; i++ {
		la := rng.Intn(n)
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			s.Write(la, v)
			shadow[la] = v
		} else if got := s.Read(la); got != shadow[la] {
			return fmt.Errorf("baseline: line %d read %d, want %d (op %d)", la, got, shadow[la], i)
		}
	}
	return nil
}
