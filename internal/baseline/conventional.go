// Package baseline provides the two comparison points the paper argues
// against:
//
//   - the conventional architecture cost model of §3.1 (memory only moves
//     operands; an ALU computes), which shows PIM's >150× write
//     amplification;
//   - standard-NVM wear leveling — Start-Gap [27] — together with an
//     executable demonstration (Fig. 6 / Algorithm 1) of why address
//     remapping that is safe for plain memory corrupts PIM computation.
package baseline

import (
	"fmt"

	"pimendure/internal/synth"
)

// OpCost is the memory traffic of one operation in cell accesses.
type OpCost struct {
	CellReads  int
	CellWrites int
}

// Add accumulates another cost.
func (c OpCost) Add(o OpCost) OpCost {
	return OpCost{CellReads: c.CellReads + o.CellReads, CellWrites: c.CellWrites + o.CellWrites}
}

// Scale multiplies a cost n times.
func (c OpCost) Scale(n int) OpCost {
	return OpCost{CellReads: c.CellReads * n, CellWrites: c.CellWrites * n}
}

// ConvMultiply is a b-bit multiply on a conventional architecture: read two
// b-bit operands, compute in the ALU, write the 2b-bit product (§3.1: "32-
// bit integer multiplication … incurs 64 cell reads and 64 cell writes").
func ConvMultiply(bits int) OpCost {
	return OpCost{CellReads: 2 * bits, CellWrites: 2 * bits}
}

// ConvAdd is a b-bit addition: read two operands, write the (b+1)-bit sum.
func ConvAdd(bits int) OpCost {
	return OpCost{CellReads: 2 * bits, CellWrites: bits + 1}
}

// ConvDotProduct is an n-element b-bit dot product on a conventional
// architecture: n multiplies plus n−1 accumulating adds of the (growing)
// partial sum, counting only memory traffic (operands in, final result
// out; the running sum stays in registers). Reads: 2nb. Writes: the final
// scalar, 2b + log₂n bits.
func ConvDotProduct(n, bits int) OpCost {
	width := 2 * bits
	for m := 1; m < n; m *= 2 {
		width++
	}
	return OpCost{CellReads: 2 * n * bits, CellWrites: width}
}

// PIMMultiply is the in-memory multiply cost in the given basis: every
// gate writes its output cell and reads its inputs (§3.1).
func PIMMultiply(basis synth.Basis, bits int) OpCost {
	gates := synth.MultiplierGates(basis, bits)
	// Reads: all gates are two-input except the unary carry gate in each
	// of the b half adders of the NAND basis.
	reads := 2 * gates
	if basis.Name() == "nand" {
		reads -= bits
	}
	return OpCost{CellReads: reads, CellWrites: gates}
}

// WriteAmplification returns how many times more cell writes the
// in-memory multiply performs than the conventional one — the paper's
// ">150×" headline (9824/64 = 153.5 at 32 bits).
func WriteAmplification(basis synth.Basis, bits int) float64 {
	return float64(PIMMultiply(basis, bits).CellWrites) / float64(ConvMultiply(bits).CellWrites)
}

// PerCellAverages reports the §3.1 per-cell averages when cells
// facilitating the computation number `cells` (1024 in the paper's
// example: 0.0625 reads and writes per cell conventionally, versus 19.16
// reads and 9.59 writes per cell for PIM).
func PerCellAverages(c OpCost, cells int) (reads, writes float64, err error) {
	if cells <= 0 {
		return 0, 0, fmt.Errorf("baseline: cells must be positive")
	}
	return float64(c.CellReads) / float64(cells), float64(c.CellWrites) / float64(cells), nil
}
