package baseline

import (
	"testing"
	"testing/quick"

	"pimendure/internal/synth"
)

// §3.1's conventional costs: 32-bit multiply = 64 reads + 64 writes.
func TestConvMultiplyPaperNumbers(t *testing.T) {
	c := ConvMultiply(32)
	if c.CellReads != 64 || c.CellWrites != 64 {
		t.Errorf("conv 32-bit mult = %+v, want 64/64", c)
	}
}

// §3.1's PIM costs: 9 824 writes and 19 616 reads.
func TestPIMMultiplyPaperNumbers(t *testing.T) {
	c := PIMMultiply(synth.NAND, 32)
	if c.CellWrites != 9824 {
		t.Errorf("PIM writes = %d, want 9824", c.CellWrites)
	}
	if c.CellReads != 19616 {
		t.Errorf("PIM reads = %d, want 19616", c.CellReads)
	}
}

// §1's headline: "over 150× more write operations".
func TestWriteAmplification(t *testing.T) {
	amp := WriteAmplification(synth.NAND, 32)
	if amp <= 150 || amp >= 160 {
		t.Errorf("write amplification = %v, want ≈153.5", amp)
	}
	if amp != 9824.0/64.0 {
		t.Errorf("amplification = %v, want exactly 9824/64", amp)
	}
}

// §3.1's per-cell averages over 1024 facilitating cells: conventional
// 0.0625 r/w per cell; PIM 19.16 reads and 9.59 writes per cell.
func TestPerCellAverages(t *testing.T) {
	r, w, err := PerCellAverages(ConvMultiply(32), 1024)
	if err != nil || r != 0.0625 || w != 0.0625 {
		t.Errorf("conventional per-cell = %v/%v, want 0.0625", r, w)
	}
	r, w, err = PerCellAverages(PIMMultiply(synth.NAND, 32), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r < 19.15 || r > 19.17 {
		t.Errorf("PIM reads/cell = %v, want 19.16", r)
	}
	if w < 9.59 || w > 9.60 {
		t.Errorf("PIM writes/cell = %v, want 9.59", w)
	}
	if _, _, err := PerCellAverages(OpCost{}, 0); err == nil {
		t.Error("zero cells accepted")
	}
}

func TestOpCostArithmetic(t *testing.T) {
	a := OpCost{CellReads: 2, CellWrites: 3}
	b := a.Add(OpCost{CellReads: 1, CellWrites: 1})
	if b.CellReads != 3 || b.CellWrites != 4 {
		t.Error("Add wrong")
	}
	s := a.Scale(4)
	if s.CellReads != 8 || s.CellWrites != 12 {
		t.Error("Scale wrong")
	}
}

func TestConvDotProduct(t *testing.T) {
	c := ConvDotProduct(1024, 32)
	if c.CellReads != 2*1024*32 {
		t.Errorf("dot reads = %d", c.CellReads)
	}
	if c.CellWrites != 74 { // 64-bit products + 10 bits of sum growth
		t.Errorf("dot writes = %d, want 74", c.CellWrites)
	}
	if ConvAdd(32).CellWrites != 33 {
		t.Error("add writes wrong")
	}
}

func TestStartGapAddressAlgebra(t *testing.T) {
	s, err := NewStartGap(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Initially identity: gap at 4 (the spare).
	for la := 0; la < 4; la++ {
		if s.PhysAddr(la) != la {
			t.Fatalf("initial PhysAddr(%d) = %d", la, s.PhysAddr(la))
		}
	}
	start, gap := s.Registers()
	if start != 0 || gap != 4 {
		t.Fatalf("registers %d/%d", start, gap)
	}
}

// Start-Gap must always be a partial bijection: distinct logical lines map
// to distinct physical lines, never to the gap.
func TestStartGapBijectionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s, _ := NewStartGap(16, 3)
		for _, o := range ops {
			s.Write(int(o%16), uint64(o))
			seen := map[int]bool{}
			_, gap := s.Registers()
			for la := 0; la < 16; la++ {
				pa := s.PhysAddr(la)
				if pa == gap || pa < 0 || pa > 16 || seen[pa] {
					return false
				}
				seen[pa] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Data must survive arbitrary interleavings of reads, writes and gap
// movement.
func TestStartGapDataIntegrity(t *testing.T) {
	if err := RandomizedCheck(64, 5, 20000, 17); err != nil {
		t.Error(err)
	}
	if err := RandomizedCheck(1, 1, 100, 3); err != nil {
		t.Error(err)
	}
}

// The scheme's purpose: an adversarial single-hot-line workload ends up
// spread over all physical lines, with bounded imbalance.
func TestStartGapLevelsHotLine(t *testing.T) {
	const n, psi = 64, 2
	imb, err := HotLineImbalance(n, psi, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Without leveling the imbalance factor would be n+1 = 65; Start-Gap
	// at ψ=2 must bring it near (1+ψ)·... — empirically ≲ 3.
	if imb > 5 {
		t.Errorf("hot-line imbalance %v, leveling ineffective", imb)
	}
	// Sanity: larger ψ levels more slowly.
	slow, _ := HotLineImbalance(n, 200, 100000)
	if slow <= imb {
		t.Errorf("ψ=200 imbalance %v should exceed ψ=2's %v", slow, imb)
	}
}

func TestStartGapConstructorErrors(t *testing.T) {
	if _, err := NewStartGap(0, 1); err == nil {
		t.Error("zero lines accepted")
	}
	if _, err := NewStartGap(4, 0); err == nil {
		t.Error("zero interval accepted")
	}
	s, _ := NewStartGap(4, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range address should panic")
		}
	}()
	s.PhysAddr(4)
}

// Fig. 6: the same remap that is invisible to a CPU corrupts PIM.
func TestMisalignedANDDemo(t *testing.T) {
	r := MisalignedANDDemo(5, 6, 3)
	if r.Want != 5&6 {
		t.Fatal("reference broken")
	}
	if r.CPU != r.Want {
		t.Errorf("CPU result %d should be correct (%d)", r.CPU, r.Want)
	}
	if r.PIMAware != r.Want {
		t.Errorf("alignment-preserving remap result %d should be correct (%d)", r.PIMAware, r.Want)
	}
	if r.PIM == r.Want {
		t.Errorf("misaligned PIM result for (5,6,shift 3) should be wrong, got correct %d", r.PIM)
	}
	// Zero shift is harmless.
	r0 := MisalignedANDDemo(5, 6, 0)
	if r0.PIM != r0.Want {
		t.Error("zero shift should not corrupt")
	}
}

// Property: the CPU and the PIM-aware remap are always correct; the
// misaligned PIM result is wrong for most operands at any nonzero shift.
func TestMisalignmentProperty(t *testing.T) {
	f := func(x, y uint8, shift uint8) bool {
		r := MisalignedANDDemo(x, y, int(shift))
		return r.CPU == r.Want && r.PIMAware == r.Want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if rate := CorruptionRate(0); rate != 0 {
		t.Errorf("shift 0 corruption rate %v", rate)
	}
	if rate := CorruptionRate(1); rate < 0.5 {
		t.Errorf("shift 1 corruption rate %v, expected majority corrupted", rate)
	}
}
