package mapping

import "fmt"

// HwRenamer is the paper's hardware load-balancing scheme (§3.2 "(Hardware)
// Load Balancing Within Lanes"): a register-renaming-style redirector with
// one spare bit address per lane. A lane with N physical bits exposes N−1
// logical bit addresses plus 1 free address. On every qualifying write the
// hardware redirects the write to the free physical address, marks it as
// the written logical address, and recycles the previous physical address
// as the new free one.
//
// Renaming state is shared by all lanes — the redirect applies uniformly —
// which is why the evaluation applies it only on operations that use all
// lanes (§4: "re-mapping on every gate that uses all lanes"): renaming on a
// partial mask would desynchronize the untouched lanes.
type HwRenamer struct {
	a2p  []int32 // architectural row -> physical row
	free int32
	rows int
}

// NewHwRenamer returns a renamer for a lane with rows physical bit
// addresses: rows−1 architectural addresses (0..rows−2) and one spare.
func NewHwRenamer(rows int) *HwRenamer {
	if rows < 2 {
		panic("mapping: HwRenamer needs at least 2 rows")
	}
	h := &HwRenamer{a2p: make([]int32, rows-1), rows: rows}
	h.Reset()
	return h
}

// Reset restores the identity mapping with the top physical row spare.
// Called at recompile boundaries, when software re-mapping re-baselines
// the layout.
func (h *HwRenamer) Reset() {
	for i := range h.a2p {
		h.a2p[i] = int32(i)
	}
	h.free = int32(h.rows - 1)
}

// ArchRows returns the number of architectural addresses (rows − 1).
func (h *HwRenamer) ArchRows() int { return len(h.a2p) }

// Lookup returns the physical row currently holding an architectural row.
func (h *HwRenamer) Lookup(arch int) int {
	return int(h.a2p[arch])
}

// RenameOnWrite redirects a write of architectural row arch to the free
// physical row, swaps the mapping, and returns the physical row actually
// written.
func (h *HwRenamer) RenameOnWrite(arch int) int {
	phys := h.free
	h.free = h.a2p[arch]
	h.a2p[arch] = phys
	return int(phys)
}

// FreeRow returns the current spare physical row.
func (h *HwRenamer) FreeRow() int { return int(h.free) }

// AtReset reports whether the renamer is in its Reset state (identity
// mapping, top row spare). The cycle-accelerated wear engine asserts this
// after replaying one full period: the state must have closed its cycle.
func (h *HwRenamer) AtReset() bool {
	if h.free != int32(h.rows-1) {
		return false
	}
	for i, p := range h.a2p {
		if p != int32(i) {
			return false
		}
	}
	return true
}

// StateFingerprint returns a 64-bit FNV-1a hash of the full renamer state
// (mapping plus free row). Equal states share a fingerprint; tests use it
// to detect state recurrence cheaply.
func (h *HwRenamer) StateFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fp := uint64(offset64)
	for _, p := range h.a2p {
		fp ^= uint64(uint32(p))
		fp *= prime64
	}
	fp ^= uint64(uint32(h.free))
	fp *= prime64
	return fp
}

// Validate checks that the mapping plus the free row form a bijection over
// the physical rows.
func (h *HwRenamer) Validate() error {
	seen := make([]bool, h.rows)
	mark := func(p int32) error {
		if p < 0 || int(p) >= h.rows {
			return fmt.Errorf("mapping: physical row %d out of range", p)
		}
		if seen[p] {
			return fmt.Errorf("mapping: physical row %d mapped twice", p)
		}
		seen[p] = true
		return nil
	}
	for _, p := range h.a2p {
		if err := mark(p); err != nil {
			return err
		}
	}
	return mark(h.free)
}
