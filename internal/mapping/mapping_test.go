package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrategyStrings(t *testing.T) {
	cases := map[Strategy]string{Static: "St", Random: "Ra", ByteShift: "Bs"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy string")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("zz"); err == nil {
		t.Error("ParseStrategy should reject unknown names")
	}
}

func TestIdentityPerm(t *testing.T) {
	p := Identity(16)
	for i := 0; i < 16; i++ {
		if p.Apply(i) != i {
			t.Fatalf("identity maps %d to %d", i, p.Apply(i))
		}
	}
	if !p.IsBijection() {
		t.Error("identity not a bijection")
	}
}

func TestShiftPerm(t *testing.T) {
	p := ShiftPerm(10, 3)
	if p.Apply(0) != 3 || p.Apply(9) != 2 {
		t.Errorf("shift wrong: 0->%d 9->%d", p.Apply(0), p.Apply(9))
	}
	if !p.IsBijection() {
		t.Error("shift not a bijection")
	}
	// negative and over-length shifts wrap
	if ShiftPerm(10, -3).Apply(0) != 7 {
		t.Error("negative shift wrong")
	}
	if ShiftPerm(10, 23).Apply(0) != 3 {
		t.Error("over-length shift wrong")
	}
}

func TestRandomPermIsBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		if !RandomPerm(100, rng).IsBijection() {
			t.Fatal("random perm not a bijection")
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomPerm(64, rng)
	inv := p.Inverse()
	for i := 0; i < 64; i++ {
		if inv.Apply(p.Apply(i)) != i {
			t.Fatalf("inverse broken at %d", i)
		}
	}
}

func TestScheduleDeterminism(t *testing.T) {
	s := Schedule{Rows: 128, Lanes: 64, Within: Random, Between: Random, Seed: 7}
	for epoch := 0; epoch < 5; epoch++ {
		a := s.EpochWithin(epoch)
		b := s.EpochWithin(epoch)
		for i := 0; i < 128; i++ {
			if a.Apply(i) != b.Apply(i) {
				t.Fatalf("epoch %d within perm not deterministic", epoch)
			}
		}
	}
}

func TestScheduleEpochZeroIsIdentity(t *testing.T) {
	// Epoch 0 is the as-compiled layout for every strategy so that all
	// configurations start from the same baseline distribution.
	for _, st := range Strategies() {
		s := Schedule{Rows: 32, Lanes: 32, Within: st, Between: st, Seed: 3}
		w := s.EpochWithin(0)
		for i := 0; i < 32; i++ {
			if w.Apply(i) != i {
				t.Errorf("%v epoch-0 within perm not identity", st)
			}
		}
	}
}

func TestScheduleStrategies(t *testing.T) {
	s := Schedule{Rows: 64, Lanes: 32, Within: ByteShift, Between: Static, Seed: 1}
	w := s.EpochWithin(2)
	if w.Apply(0) != 16 { // 2 epochs × 8 bits
		t.Errorf("byte shift epoch 2 maps 0 to %d, want 16", w.Apply(0))
	}
	b := s.EpochBetween(5)
	for i := 0; i < 32; i++ {
		if b.Apply(i) != i {
			t.Fatal("static between perm should stay identity")
		}
	}
	if (Schedule{Within: Random, Between: ByteShift}).Name() != "RaxBs" {
		t.Error("schedule name wrong")
	}
}

func TestScheduleWithinBetweenIndependent(t *testing.T) {
	s := Schedule{Rows: 64, Lanes: 64, Within: Random, Between: Random, Seed: 9}
	w, b := s.EpochWithin(1), s.EpochBetween(1)
	same := true
	for i := 0; i < 64; i++ {
		if w.Apply(i) != b.Apply(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("within and between perms should be decorrelated")
	}
}

func TestScheduleRandomVariesByEpoch(t *testing.T) {
	s := Schedule{Rows: 256, Lanes: 4, Within: Random, Between: Static, Seed: 11}
	a, b := s.EpochWithin(1), s.EpochWithin(2)
	same := true
	for i := 0; i < 256; i++ {
		if a.Apply(i) != b.Apply(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("random perms should differ between epochs")
	}
}

// Fig. 8: byte-shifting keeps a byte-aligned operand byte-compact and in
// order; random shuffling scatters it.
func TestByteAccessCost(t *testing.T) {
	operand := make([]int, 32)
	for i := range operand {
		operand[i] = 64 + i // byte-aligned 32-bit variable
	}
	// Identity: 4 bytes, ordered.
	bytes, ordered := ByteAccessCost(Identity(1024), operand)
	if bytes != 4 || !ordered {
		t.Errorf("identity: %d bytes ordered=%v, want 4 true", bytes, ordered)
	}
	// Byte shift (non-wrapping): still 4 bytes, ordered.
	bytes, ordered = ByteAccessCost(ShiftPerm(1024, 8), operand)
	if bytes != 4 || !ordered {
		t.Errorf("byte shift: %d bytes ordered=%v, want 4 true", bytes, ordered)
	}
	// Non-byte shift keeps order but straddles an extra byte.
	bytes, ordered = ByteAccessCost(ShiftPerm(1024, 3), operand)
	if bytes != 5 || !ordered {
		t.Errorf("bit shift: %d bytes ordered=%v, want 5 true", bytes, ordered)
	}
	// Random scatters: far more bytes, order lost (overwhelmingly).
	rng := rand.New(rand.NewSource(2))
	bytes, ordered = ByteAccessCost(RandomPerm(1024, rng), operand)
	if bytes < 16 || ordered {
		t.Errorf("random: %d bytes ordered=%v, want scattered and unordered", bytes, ordered)
	}
}

func TestHwRenamerBasics(t *testing.T) {
	h := NewHwRenamer(8)
	if h.ArchRows() != 7 || h.FreeRow() != 7 {
		t.Fatalf("init: arch %d free %d", h.ArchRows(), h.FreeRow())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	phys := h.RenameOnWrite(3)
	if phys != 7 {
		t.Errorf("first rename wrote %d, want 7 (old free)", phys)
	}
	if h.FreeRow() != 3 {
		t.Errorf("free = %d, want 3 (previous home of arch 3)", h.FreeRow())
	}
	if h.Lookup(3) != 7 {
		t.Errorf("arch 3 now at %d, want 7", h.Lookup(3))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHwRenamerReset(t *testing.T) {
	h := NewHwRenamer(16)
	for i := 0; i < 100; i++ {
		h.RenameOnWrite(i % 15)
	}
	h.Reset()
	for i := 0; i < 15; i++ {
		if h.Lookup(i) != i {
			t.Fatal("reset did not restore identity")
		}
	}
	if h.FreeRow() != 15 {
		t.Fatal("reset did not restore spare row")
	}
}

// Property: any write sequence keeps the renamer a bijection, and a
// rename immediately followed by a lookup agrees.
func TestHwRenamerBijectionProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		h := NewHwRenamer(32)
		for _, w := range writes {
			arch := int(w) % 31
			phys := h.RenameOnWrite(arch)
			if h.Lookup(arch) != phys {
				return false
			}
		}
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHwRenamerTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 1-row renamer")
		}
	}()
	NewHwRenamer(1)
}

func TestPermEqual(t *testing.T) {
	a := ShiftPerm(16, 8)
	b := ShiftPerm(16, 24) // 24 mod 16 == 8
	if !a.Equal(b) {
		t.Error("identical rotations reported unequal")
	}
	if !a.Equal(a) {
		t.Error("perm not equal to itself")
	}
	if a.Equal(nil) {
		t.Error("perm equal to nil")
	}
	if a.Equal(ShiftPerm(16, 1)) {
		t.Error("distinct rotations reported equal")
	}
	if a.Equal(ShiftPerm(8, 0)) {
		t.Error("different domain sizes reported equal")
	}
}

func TestPermFingerprint(t *testing.T) {
	a := ShiftPerm(64, 8)
	b := ShiftPerm(64, 8+64)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal perms have different fingerprints")
	}
	// All 64 rotations of a 64-address domain must fingerprint uniquely
	// (no collision in the exact family the Bs memoization relies on).
	seen := map[uint64]int{}
	for k := 0; k < 64; k++ {
		fp := ShiftPerm(64, k).Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("rotation %d collides with rotation %d", k, prev)
		}
		seen[fp] = k
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := RandomPerm(32, rng)
		q := RandomPerm(32, rng)
		if p.Equal(q) != (p.Fingerprint() == q.Fingerprint()) && p.Equal(q) {
			t.Error("equal perms must share fingerprints")
		}
	}
}
