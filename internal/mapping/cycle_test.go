package mapping_test

import (
	"testing"

	"pimendure/internal/mapping"
)

// replayCycle runs the write sequence against a fresh renamer n times and
// reports whether the state returned to reset.
func replayCycle(rows int, writes []int32, n int) *mapping.HwRenamer {
	h := mapping.NewHwRenamer(rows)
	for i := 0; i < n; i++ {
		for _, a := range writes {
			h.RenameOnWrite(int(a))
		}
	}
	return h
}

// A repeat-free write sequence is a product of transpositions all moving
// the free slot: one single cycle of length distinct+1.
func TestRenamerCycleNoRepeats(t *testing.T) {
	c := mapping.AnalyzeRenamerCycle(8, []int32{0, 1, 2})
	if !c.SingleCycle {
		t.Error("repeat-free sequence should form a single cycle")
	}
	if c.Distinct != 3 || c.Support != 4 || c.Period != 4 {
		t.Errorf("got distinct=%d support=%d period=%d, want 3/4/4", c.Distinct, c.Support, c.Period)
	}
}

// Workspace reuse breaks the single-cycle shape: the sequence a,b,c,b
// composes to (a F)(b c) — two disjoint transpositions — so the period is
// the lcm of the cycle lengths, not distinct+1. This is the counterexample
// behind cycle.go's "in general the order of the permutation" caveat.
func TestRenamerCycleRepeats(t *testing.T) {
	c := mapping.AnalyzeRenamerCycle(4, []int32{0, 1, 2, 1})
	if c.SingleCycle {
		t.Error("a,b,c,b must split into two cycles")
	}
	if c.Distinct != 3 || c.Support != 4 || c.Period != 2 {
		t.Errorf("got distinct=%d support=%d period=%d, want 3/4/2", c.Distinct, c.Support, c.Period)
	}
}

// No full-mask writes: the iteration permutation is the identity and the
// state sequence is constant — period 1.
func TestRenamerCycleNoWrites(t *testing.T) {
	c := mapping.AnalyzeRenamerCycle(16, nil)
	if c.Period != 1 || c.Support != 0 || c.Distinct != 0 || !c.SingleCycle {
		t.Errorf("empty sequence: got %+v, want period 1, support 0", c)
	}
}

// The computed period must be exact: replaying the sequence Period times
// returns the renamer to reset, and no smaller positive count does.
func TestRenamerCyclePeriodIsMinimal(t *testing.T) {
	seqs := [][]int32{
		{0, 1, 2},          // single cycle
		{0, 1, 2, 1},       // two 2-cycles
		{0, 1, 0, 2},       // another reuse pattern
		{4, 4},             // double write to one row
		{0, 1, 2, 3, 1, 2}, // heavier reuse
	}
	const rows = 6
	reset := mapping.NewHwRenamer(rows).StateFingerprint()
	for _, seq := range seqs {
		c := mapping.AnalyzeRenamerCycle(rows, seq)
		for n := 1; n < c.Period; n++ {
			if h := replayCycle(rows, seq, n); h.AtReset() {
				t.Errorf("%v: state already back at reset after %d < period %d iterations", seq, n, c.Period)
			}
		}
		h := replayCycle(rows, seq, c.Period)
		if !h.AtReset() {
			t.Errorf("%v: state not back at reset after the analytic period %d", seq, c.Period)
		}
		if h.StateFingerprint() != reset {
			t.Errorf("%v: fingerprint after period %d differs from reset", seq, c.Period)
		}
	}
}

// Relabelling the architectural rows (a different within-lane permutation)
// conjugates the iteration permutation and must preserve its cycle type —
// the invariance that lets one trace-level analysis serve every epoch.
func TestRenamerCycleConjugationInvariant(t *testing.T) {
	const rows = 9
	seq := []int32{0, 3, 1, 3, 5, 2, 1}
	base := mapping.AnalyzeRenamerCycle(rows, seq)
	relabel := []int32{7, 2, 5, 0, 6, 1, 3, 4} // a permutation of arch rows 0..7
	mapped := make([]int32, len(seq))
	for i, a := range seq {
		mapped[i] = relabel[a]
	}
	got := mapping.AnalyzeRenamerCycle(rows, mapped)
	if got.Period != base.Period || got.Support != base.Support || got.SingleCycle != base.SingleCycle {
		t.Errorf("relabelled sequence changed the cycle type: %+v vs %+v", got, base)
	}
}
