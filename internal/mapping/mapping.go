// Package mapping implements the paper's load-balancing strategies (§3.2):
// software logical-to-physical address re-mapping — Static (St), Random
// shuffling (Ra) and Byte-shifting (Bs), applied independently within lanes
// (bit addresses) and between lanes — plus the hardware free-bit renaming
// scheme (Hw) modelled on register renaming.
//
// Software maps are bijections refreshed at recompile epochs; the Schedule
// type derives each epoch's permutations deterministically from a seed so
// the fast wear engine and the brute-force functional simulator see
// byte-identical mapping sequences.
package mapping

import (
	"fmt"
	"math/rand"
)

// Strategy is a software re-mapping policy.
type Strategy uint8

const (
	// Static applies no re-mapping (the paper's St).
	Static Strategy = iota
	// Random draws a fresh uniform permutation every recompile epoch
	// (the paper's Ra).
	Random
	// ByteShift rotates the mapping by a whole number of bytes each
	// epoch (the paper's Bs), keeping byte-addressable accesses aligned.
	ByteShift
)

// String returns the paper's abbreviation for the strategy.
func (s Strategy) String() string {
	switch s {
	case Static:
		return "St"
	case Random:
		return "Ra"
	case ByteShift:
		return "Bs"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Strategies lists all software strategies in the paper's order.
func Strategies() []Strategy { return []Strategy{Static, Random, ByteShift} }

// ParseStrategy converts the paper abbreviation ("St", "Ra", "Bs") to a
// Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "St", "st", "static":
		return Static, nil
	case "Ra", "ra", "random":
		return Random, nil
	case "Bs", "bs", "byteshift":
		return ByteShift, nil
	}
	return Static, fmt.Errorf("mapping: unknown strategy %q", s)
}

// Perm is a bijection of n addresses; Apply maps logical to physical.
type Perm struct {
	l2p []int32
}

// Identity returns the identity permutation over n addresses.
func Identity(n int) *Perm {
	p := &Perm{l2p: make([]int32, n)}
	for i := range p.l2p {
		p.l2p[i] = int32(i)
	}
	return p
}

// RandomPerm returns a uniform permutation drawn from rng.
func RandomPerm(n int, rng *rand.Rand) *Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) {
		p.l2p[i], p.l2p[j] = p.l2p[j], p.l2p[i]
	})
	return p
}

// NewPerm allocates an uninitialized permutation over n addresses for use
// as reusable scratch with the Set* fill methods and the Schedule's
// EpochWithinInto/EpochBetweenInto.
func NewPerm(n int) *Perm { return &Perm{l2p: make([]int32, n)} }

// SetIdentity fills p with the identity mapping in place.
func (p *Perm) SetIdentity() {
	for i := range p.l2p {
		p.l2p[i] = int32(i)
	}
}

// SetShift fills p with the rotation i → (i + k) mod n in place.
func (p *Perm) SetShift(k int) {
	n := len(p.l2p)
	k = ((k % n) + n) % n
	for i := range p.l2p {
		p.l2p[i] = int32((i + k) % n)
	}
}

// SetRandom fills p with a uniform permutation drawn from rng in place —
// the same Fisher–Yates sequence as RandomPerm, so a reused scratch
// permutation is bit-identical to a freshly allocated one.
func (p *Perm) SetRandom(rng *rand.Rand) {
	p.SetIdentity()
	rng.Shuffle(len(p.l2p), func(i, j int) {
		p.l2p[i], p.l2p[j] = p.l2p[j], p.l2p[i]
	})
}

// ShiftPerm returns the rotation i → (i + k) mod n.
func ShiftPerm(n, k int) *Perm {
	p := &Perm{l2p: make([]int32, n)}
	k = ((k % n) + n) % n
	for i := range p.l2p {
		p.l2p[i] = int32((i + k) % n)
	}
	return p
}

// Len returns the domain size.
func (p *Perm) Len() int { return len(p.l2p) }

// Apply maps a logical address to its physical address.
func (p *Perm) Apply(i int) int { return int(p.l2p[i]) }

// Inverse returns the physical-to-logical inverse permutation.
func (p *Perm) Inverse() *Perm {
	inv := &Perm{l2p: make([]int32, len(p.l2p))}
	for l, ph := range p.l2p {
		inv.l2p[ph] = int32(l)
	}
	return inv
}

// Equal reports whether two permutations are the same bijection.
func (p *Perm) Equal(o *Perm) bool {
	if p == o {
		return true
	}
	if o == nil || len(p.l2p) != len(o.l2p) {
		return false
	}
	for i, v := range p.l2p {
		if o.l2p[i] != v {
			return false
		}
	}
	return true
}

// Fingerprint returns a 64-bit FNV-1a hash of the mapping. The wear
// engine keys its per-epoch histogram cache on it; equal permutations
// share a fingerprint, and colliding fingerprints must be resolved with
// Equal before a cached result is reused.
func (p *Perm) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range p.l2p {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	return h
}

// IsBijection verifies the permutation hits every address exactly once.
func (p *Perm) IsBijection() bool {
	seen := make([]bool, len(p.l2p))
	for _, ph := range p.l2p {
		if ph < 0 || int(ph) >= len(p.l2p) || seen[ph] {
			return false
		}
		seen[ph] = true
	}
	return true
}

// DefaultShiftStep is one byte: the Bs strategy shifts mappings by whole
// bytes so that byte-addressable reads and writes stay aligned (§3.2).
const DefaultShiftStep = 8

// Schedule deterministically generates the software mapping pair for every
// recompile epoch. Rows is the physical bit-address domain within a lane
// (the array dimension software can spread workspace over); Lanes is the
// lane domain.
type Schedule struct {
	Rows, Lanes int
	// Within re-maps bit addresses inside each lane; Between re-maps
	// lanes (§3.2 "Load Balancing within Lanes" / "Between Lanes").
	Within, Between Strategy
	// Seed makes the random permutation sequence reproducible.
	Seed int64
	// ShiftStep is the Bs rotation per epoch; 0 means DefaultShiftStep.
	ShiftStep int
}

// Name returns the paper's configuration label, e.g. "RaxBs".
func (s Schedule) Name() string {
	return s.Within.String() + "x" + s.Between.String()
}

func (s Schedule) step() int {
	if s.ShiftStep == 0 {
		return DefaultShiftStep
	}
	return s.ShiftStep
}

// Salts separating the within-lane and between-lane random streams.
const (
	saltWithin  = 0x5749544849
	saltBetween = 0x42455457
)

// EpochWithin returns the within-lane permutation for a recompile epoch.
func (s Schedule) EpochWithin(epoch int) *Perm {
	return epochPermInto(s.Within, s.Rows, epoch, s.Seed, saltWithin, s.step(), nil, nil)
}

// EpochBetween returns the between-lane permutation for a recompile epoch.
func (s Schedule) EpochBetween(epoch int) *Perm {
	return epochPermInto(s.Between, s.Lanes, epoch, s.Seed, saltBetween, s.step(), nil, nil)
}

// EpochWithinInto is EpochWithin with caller-owned scratch: p is filled in
// place when its size matches (reallocated otherwise) and rng, when
// non-nil, is re-seeded instead of allocating a fresh source per epoch.
// The filled permutation — always returned — is bit-identical to
// EpochWithin's for every epoch.
func (s Schedule) EpochWithinInto(epoch int, p *Perm, rng *rand.Rand) *Perm {
	return epochPermInto(s.Within, s.Rows, epoch, s.Seed, saltWithin, s.step(), p, rng)
}

// EpochBetweenInto is EpochBetween with caller-owned scratch, with the
// same reuse and bit-identity contract as EpochWithinInto.
func (s Schedule) EpochBetweenInto(epoch int, p *Perm, rng *rand.Rand) *Perm {
	return epochPermInto(s.Between, s.Lanes, epoch, s.Seed, saltBetween, s.step(), p, rng)
}

func epochPermInto(st Strategy, n, epoch int, seed, salt int64, step int, p *Perm, rng *rand.Rand) *Perm {
	if p == nil || len(p.l2p) != n {
		p = NewPerm(n)
	}
	switch st {
	case Static:
		p.SetIdentity()
		return p
	case Random:
		if epoch == 0 {
			// Epoch 0 is the as-compiled layout for every strategy,
			// so all configurations share the same first epoch.
			p.SetIdentity()
			return p
		}
		// Re-seeding a reused rand.Rand replays the exact stream a fresh
		// rand.New(rand.NewSource(seed)) would produce, so scratch reuse
		// cannot change any permutation.
		if rng == nil {
			rng = rand.New(rand.NewSource(mix(seed, salt, int64(epoch))))
		} else {
			rng.Seed(mix(seed, salt, int64(epoch)))
		}
		p.SetRandom(rng)
		return p
	case ByteShift:
		p.SetShift(epoch * step)
		return p
	}
	panic(fmt.Sprintf("mapping: unknown strategy %d", st))
}

// ByteAccessCost quantifies the paper's Fig. 8: after within-lane
// re-mapping, how expensive is a standard byte-addressable access to an
// operand whose logical bits are `bits`? For a row-parallel architecture a
// read returns whole bytes of physical addresses, so the cost is the
// number of distinct physical bytes touched; `ordered` additionally
// reports whether the physical addresses preserve the logical order
// (otherwise external post-processing must re-permute the bits).
//
// Byte-shifting keeps cost minimal (⌈b/8⌉ bytes, ordered, when the operand
// is byte-aligned); random shuffling scatters the operand across many
// bytes in arbitrary order.
func ByteAccessCost(p *Perm, bits []int) (bytesTouched int, ordered bool) {
	seen := map[int]bool{}
	ordered = true
	prev := -1
	for _, b := range bits {
		phys := p.Apply(b)
		seen[phys/8] = true
		if phys <= prev {
			ordered = false
		}
		prev = phys
	}
	return len(seen), ordered
}

// mix combines seed, salt and epoch into an rng seed (splitmix64 finalizer).
func mix(seed, salt, epoch int64) int64 {
	z := uint64(seed) ^ uint64(salt)*0x9E3779B97F4A7C15 ^ uint64(epoch)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
