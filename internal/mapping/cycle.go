package mapping

// This file is the closed-form side of the +Hw wear engine's cycle
// acceleration. One iteration of a trace applies a *fixed* permutation to
// the renamer state: every full-mask write RenameOnWrite(a) swaps the
// contents of architectural slot a with the free slot, i.e. it is a
// transposition (a, F) of state slots, and the iteration's op sequence is
// therefore a product of transpositions all sharing the free slot F. When
// no written row repeats within the iteration that product is a single
// cycle of length d+1 (d = distinct full-mask output rows): the free
// slot's content chases through the written rows one hop per iteration.
// Workspace reuse (a row written more than once per iteration) can split
// the product into several disjoint cycles — see TestRenamerCycleRepeats —
// so the iteration period is, in general, the *order* of the permutation:
// the least common multiple of its cycle lengths. Either way the renamer
// state sequence S_t = S_0 ∘ ρ^t is purely periodic from t = 0. The wear
// engine exploits the per-cycle structure directly (each op walks one
// σ-orbit; internal/core's accumulateClosedCycle) and uses the global
// period computed here as a runtime cross-check on every replay job.
//
// The period is invariant under the software within-lane permutation: a
// different within map conjugates ρ (it relabels the architectural slots,
// never the free slot), and conjugate permutations have equal cycle type.
// One analysis therefore serves every epoch of a simulation.

// RenamerCycle describes the permutation one iteration of full-mask
// renamed writes induces on the HwRenamer state, as computed by
// AnalyzeRenamerCycle.
type RenamerCycle struct {
	// Period is the order of the iteration permutation: after Period
	// iterations the renamer state returns to its starting value, and the
	// per-iteration physical-row histogram sequence repeats.
	Period int
	// Support is the number of state slots (architectural rows plus the
	// free slot) the permutation actually moves; 0 when the iteration
	// leaves the renamer untouched.
	Support int
	// Distinct is the number of distinct architectural rows receiving
	// full-mask writes in one iteration.
	Distinct int
	// SingleCycle reports whether the permutation is one cycle, in which
	// case Period == Support ≤ Distinct+1 (always the case when no row
	// repeats within the iteration).
	SingleCycle bool
}

// AnalyzeRenamerCycle computes the RenamerCycle of the architectural-row
// write sequence one iteration issues (full-mask renamed writes only, in
// op order; rows may repeat). rows is the physical row count of the
// renamer the sequence will run on. The rows in writes may be expressed
// in any fixed labelling — logical or within-mapped — because the period
// is conjugation-invariant.
func AnalyzeRenamerCycle(rows int, writes []int32) RenamerCycle {
	h := NewHwRenamer(rows)
	seen := make(map[int32]bool, len(writes))
	for _, a := range writes {
		h.RenameOnWrite(int(a))
		seen[a] = true
	}
	// Read the iteration permutation off the final state. Identify value v
	// with the slot that held it at reset (arch slot v for v < rows-1, the
	// free slot for v = rows-1): then slot s's content moved to the slot
	// now holding value s, i.e. p[s] = position of value s — and the order
	// of p equals the order of its inverse, so cycle lengths can be read
	// from p[s] = "value now at slot s" directly.
	n := rows // slots: arch rows 0..rows-2, free slot at index rows-1
	p := make([]int32, n)
	for s := 0; s < n-1; s++ {
		p[s] = int32(h.Lookup(s))
	}
	p[n-1] = int32(h.FreeRow())

	c := RenamerCycle{Period: 1, Distinct: len(seen)}
	visited := make([]bool, n)
	cycles := 0
	for s := 0; s < n; s++ {
		if visited[s] || int(p[s]) == s {
			continue
		}
		length := 0
		for t := s; !visited[t]; t = int(p[t]) {
			visited[t] = true
			length++
		}
		c.Support += length
		c.Period = lcm(c.Period, length)
		cycles++
	}
	c.SingleCycle = cycles <= 1
	return c
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
