package synth_test

import (
	"math/rand"
	"testing"

	"pimendure/internal/program"
	"pimendure/internal/synth"
)

// ShuffledMult (Fig. 10) must compute the exact product while touching the
// caller's destination bits only through its final COPY gates.
func TestShuffledMultFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, b := range []int{2, 4, 8} {
		for trial := 0; trial < 8; trial++ {
			x := rng.Uint64() & (1<<uint(b) - 1)
			y := rng.Uint64() & (1<<uint(b) - 1)
			var slot int
			r := runLanes(t, 1, 4096, func(bld *program.Builder) {
				xb, _ := bld.WriteVector(b)
				yb, _ := bld.WriteVector(b)
				out := bld.AllocN(2 * b)
				synth.ShuffledMult(bld, synth.NAND, xb, yb, out)
				slot = bld.ReadVector(out)
			}, wordData(b, [][]uint64{{x, y}}))
			if got := r.OutWord(slot, 2*b, 0); got != x*y {
				t.Errorf("b=%d: shuffled %d×%d = %d, want %d", b, x, y, got, x*y)
			}
		}
	}
}

// The executable shuffle's gate overhead must equal the Table 2 model:
// exactly 4b extra COPY gates over the bare multiplication.
func TestShuffledMultOverheadMatchesTable2(t *testing.T) {
	for _, b := range []int{4, 8, 16, 32} {
		count := func(shuffled bool) int {
			bld := program.NewBuilder(1, 1<<16)
			x := bld.AllocN(b)
			y := bld.AllocN(b)
			if shuffled {
				out := bld.AllocN(2 * b)
				synth.ShuffledMult(bld, synth.Mixed2, x, y, out)
			} else {
				synth.Dadda(bld, synth.Mixed2, x, y)
			}
			n := 0
			for _, op := range bld.Trace().Ops {
				if op.Kind == program.OpGate {
					n++
				}
			}
			return n
		}
		extra := count(true) - count(false)
		if want := synth.ShuffleCopyGates(synth.ShuffleMult, b); extra != want {
			t.Errorf("b=%d: shuffle overhead %d gates, want %d", b, extra, want)
		}
	}
}

func TestShuffledMultRejectsBadDestination(t *testing.T) {
	bld := program.NewBuilder(1, 1024)
	x := bld.AllocN(4)
	y := bld.AllocN(4)
	out := bld.AllocN(7)
	defer func() {
		if recover() == nil {
			t.Error("wrong-size destination should panic")
		}
	}()
	synth.ShuffledMult(bld, synth.NAND, x, y, out)
}

// ShuffledMult must not leak workspace: live bits return to inputs+output.
func TestShuffledMultFreesIntermediates(t *testing.T) {
	bld := program.NewBuilder(1, 1<<16)
	x := bld.AllocN(8)
	y := bld.AllocN(8)
	out := bld.AllocN(16)
	base := bld.Live()
	synth.ShuffledMult(bld, synth.NAND, x, y, out)
	if bld.Live() != base {
		t.Errorf("leaked %d bits", bld.Live()-base)
	}
}
