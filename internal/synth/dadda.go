package synth

import (
	"fmt"

	"pimendure/internal/program"
)

// Dadda emits a b×b-bit Dadda multiplier and returns the 2b-bit product,
// least significant bit first. The construction is the classical one the
// paper cites [36]: b² AND partial products, staged reduction to height 2
// following the Dadda height sequence (2, 3, 4, 6, 9, 13, …), and a final
// carry-propagate addition — totalling b²−2b full adders and b half adders
// (§2.2), i.e. 10b²−13b gates in the NAND basis (9 824 for b = 32, the
// §3.1 number) and 6b²−8b in the Mixed2 basis (the Table 2 model).
//
// Partial products are materialized lazily — each AND gate is emitted
// immediately before the adder that consumes its output — so the live
// workspace stays far below b² bits and the multiplier fits the paper's
// lanes ("practical array sizes can easily accommodate the multiplication
// of 64-bit integer operands", §3.1 fn. 3). Gate counts are unaffected:
// every partial product is materialized exactly once.
//
// Operand width must be at least 2. Input bits remain owned by the caller;
// product bits transfer to the caller; all intermediates are freed.
func Dadda(bld *program.Builder, basis Basis, x, y []program.Bit) []program.Bit {
	if len(x) != len(y) {
		panic("synth: Dadda operand width mismatch")
	}
	b := len(x)
	if b < 2 {
		panic("synth: Dadda requires operands of at least 2 bits")
	}

	d := &daddaState{bld: bld, basis: basis, x: x, y: y, cols: make([][]ppEntry, 2*b)}
	// Partial product pp(i,j) = x_i AND y_j belongs to column i+j; record
	// it as a pending thunk, materialized on consumption.
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			d.cols[i+j] = append(d.cols[i+j], ppEntry{bit: program.NoBit, i: int16(i), j: int16(j)})
		}
	}

	// Reduce through the Dadda height targets, largest first.
	for _, t := range daddaTargets(b) {
		d.reduceStage(t)
	}

	// Final carry-propagate addition over the (height ≤ 2) columns.
	prod := make([]program.Bit, 2*b)
	carry := program.NoBit
	for c := range d.cols {
		bits := d.cols[c]
		if carry != program.NoBit {
			bits = append(bits, concrete(carry))
			carry = program.NoBit
		}
		switch len(bits) {
		case 1:
			prod[c] = d.take(&bits[0])
		case 2:
			s, cy := basis.HalfAdder(bld, d.take(&bits[0]), d.take(&bits[1]))
			d.release(bits[:2])
			prod[c], carry = s, cy
		case 3:
			s, cy := basis.FullAdder(bld, d.take(&bits[0]), d.take(&bits[1]), d.take(&bits[2]))
			d.release(bits[:3])
			prod[c], carry = s, cy
		default:
			panic(fmt.Sprintf("synth: Dadda column %d has height %d after reduction", c, len(bits)))
		}
	}
	if carry != program.NoBit {
		panic("synth: Dadda carry out of top column")
	}
	return prod
}

// ppEntry is either a pending partial product (i ≥ 0, ANDing x[i]·y[j] on
// demand) or a concrete allocated bit (i < 0).
type ppEntry struct {
	bit  program.Bit
	i, j int16
}

func concrete(b program.Bit) ppEntry { return ppEntry{bit: b, i: -1, j: -1} }

type daddaState struct {
	bld   *program.Builder
	basis Basis
	x, y  []program.Bit
	cols  [][]ppEntry
}

// take materializes an entry's bit, emitting its AND gate if pending.
func (d *daddaState) take(e *ppEntry) program.Bit {
	if e.i >= 0 {
		e.bit = d.basis.And(d.bld, d.x[e.i], d.y[e.j])
		e.i, e.j = -1, -1
	}
	return e.bit
}

// release frees consumed entries' bits.
func (d *daddaState) release(es []ppEntry) {
	for i := range es {
		d.bld.Free(es[i].bit)
	}
}

// reduceStage compresses every column to height ≤ t using full and half
// adders, processing columns low to high so that same-stage carries are
// themselves compressed (the standard Dadda schedule).
func (d *daddaState) reduceStage(t int) {
	for c := 0; c < len(d.cols); c++ {
		bits := d.cols[c]
		i := 0 // bits[:i] are consumed
		for len(bits)-i > t {
			if len(bits)-i-t >= 2 {
				s, cy := d.basis.FullAdder(d.bld, d.take(&bits[i]), d.take(&bits[i+1]), d.take(&bits[i+2]))
				d.release(bits[i : i+3])
				i += 3
				bits = append(bits, concrete(s))
				d.carryTo(c+1, cy)
			} else {
				s, cy := d.basis.HalfAdder(d.bld, d.take(&bits[i]), d.take(&bits[i+1]))
				d.release(bits[i : i+2])
				i += 2
				bits = append(bits, concrete(s))
				d.carryTo(c+1, cy)
			}
		}
		d.cols[c] = bits[i:]
	}
}

func (d *daddaState) carryTo(c int, bit program.Bit) {
	if c >= len(d.cols) {
		panic("synth: Dadda carry beyond product width")
	}
	d.cols[c] = append(d.cols[c], concrete(bit))
}

// daddaTargets returns the Dadda stage height targets below b, in
// descending order: the sequence d₁=2, dⱼ₊₁=⌊3dⱼ/2⌋ truncated to values
// < b.
func daddaTargets(b int) []int {
	seq := []int{2}
	for {
		next := seq[len(seq)-1] * 3 / 2
		if next >= b {
			break
		}
		seq = append(seq, next)
	}
	// Reverse to descending.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

// MultiplierGates returns the analytic total gate count of a b-bit Dadda
// multiply in the given basis: FA·(b²−2b) + HA·b + b² AND gates.
func MultiplierGates(basis Basis, b int) int {
	return fullAdderGates(basis)*(b*b-2*b) + halfAdderGates(basis)*b + b*b
}

// MultiplierWorkspace returns the peak number of simultaneously live
// logical bits a b-bit multiply needs beyond its operands and product
// (measured by synthesis).
func MultiplierWorkspace(basis Basis, b int) int {
	bld := program.NewBuilder(1, 1<<20)
	x := bld.AllocN(b)
	y := bld.AllocN(b)
	Dadda(bld, basis, x, y)
	return bld.MaxLive() - 2*b
}

// CircuitCounts reports how many full adders, half adders and AND partial
// products a synthesized circuit used.
type CircuitCounts struct {
	FullAdders int
	HalfAdders int
	Ands       int
}

// MultiplierCounts builds a b-bit Dadda multiplier on a scratch lane and
// returns its adder-cell composition. Used to verify the b²−2b / b / b²
// identity from the paper.
func MultiplierCounts(basis Basis, b int) CircuitCounts {
	cb := &countingBasis{inner: basis}
	bld := program.NewBuilder(1, 1<<20)
	x := bld.AllocN(b)
	y := bld.AllocN(b)
	Dadda(bld, cb, x, y)
	return cb.counts
}

// countingBasis wraps a basis and tallies the adder cells requested.
type countingBasis struct {
	inner  Basis
	counts CircuitCounts
}

func (c *countingBasis) Name() string { return c.inner.Name() }

func (c *countingBasis) FullAdder(bld *program.Builder, a, b, cin program.Bit) (program.Bit, program.Bit) {
	c.counts.FullAdders++
	return c.inner.FullAdder(bld, a, b, cin)
}

func (c *countingBasis) HalfAdder(bld *program.Builder, a, b program.Bit) (program.Bit, program.Bit) {
	c.counts.HalfAdders++
	return c.inner.HalfAdder(bld, a, b)
}

func (c *countingBasis) And(bld *program.Builder, a, b program.Bit) program.Bit {
	c.counts.Ands++
	return c.inner.And(bld, a, b)
}

func (c *countingBasis) Or(bld *program.Builder, a, b program.Bit) program.Bit {
	return c.inner.Or(bld, a, b)
}

func (c *countingBasis) Xor(bld *program.Builder, a, b program.Bit) program.Bit {
	return c.inner.Xor(bld, a, b)
}
