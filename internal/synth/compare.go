package synth

import (
	"pimendure/internal/program"
)

// GreaterEqual emits a comparator returning a single bit that is 1 iff
// x ≥ y (both unsigned, equal width, LSB first). It is the "simple
// comparison operation" the paper uses as the binary-neural-network
// threshold (§4): x − y is computed as x + ¬y + 1 and the final carry is
// the result. Only the carry chain's sums are synthesized as part of the
// full adders; the comparator costs b NOT gates, one OR, and b−1 full
// adders.
//
// Input bits stay owned by the caller; the returned bit transfers.
func GreaterEqual(bld *program.Builder, basis Basis, x, y []program.Bit) program.Bit {
	if len(x) != len(y) {
		panic("synth: GreaterEqual operand width mismatch")
	}
	if len(x) == 0 {
		panic("synth: GreaterEqual on empty operands")
	}
	// Stage 0 with carry-in 1: carry = x₀ + ¬y₀ + 1 ≥ 2 ⟺ x₀ ∨ ¬y₀.
	ny := bld.Not(y[0])
	carry := basis.Or(bld, x[0], ny)
	bld.Free(ny)
	for i := 1; i < len(x); i++ {
		ny = bld.Not(y[i])
		sum, c := basis.FullAdder(bld, x[i], ny, carry)
		bld.Free(ny, sum, carry)
		carry = c
	}
	return carry
}

// Equal emits an equality comparator: 1 iff x == y. It XNORs each bit pair
// and ANDs the results down; cost is b XNOR-equivalents plus b−1 ANDs.
func Equal(bld *program.Builder, basis Basis, x, y []program.Bit) program.Bit {
	if len(x) != len(y) {
		panic("synth: Equal operand width mismatch")
	}
	if len(x) == 0 {
		panic("synth: Equal on empty operands")
	}
	var acc program.Bit = program.NoBit
	for i := range x {
		xo := basis.Xor(bld, x[i], y[i])
		eq := bld.Not(xo)
		bld.Free(xo)
		if acc == program.NoBit {
			acc = eq
		} else {
			next := basis.And(bld, acc, eq)
			bld.Free(acc, eq)
			acc = next
		}
	}
	return acc
}
