// Package synth synthesizes arithmetic circuits — adders, Dadda
// multipliers, comparators, COPY-shuffles — into sequential PIM gate
// programs (§2.2 of the paper: complex operations decompose into a series
// of logic gates that execute one at a time within a lane).
//
// Two gate bases are provided, matching the two counting models the paper
// uses:
//
//   - NAND: the Fig. 2 decomposition — a full adder is 9 two-input NANDs, a
//     half adder is 5 gates (one of them unary), an AND is native. A 32-bit
//     Dadda multiply costs 10b²−13b = 9 824 gates and 19 616 cell reads,
//     the §3.1 numbers.
//   - Mixed2: the minimum-gate two-input model used for Table 2 — a full
//     adder is 5 gates (XOR/AND/XOR/AND/OR), a half adder is 2, so a
//     multiply costs 6b²−8b gates and a ripple-carry add costs 5b−3.
package synth

import (
	"pimendure/internal/gates"
	"pimendure/internal/program"
)

// Basis is a gate-level implementation style for the arithmetic building
// blocks. Implementations must free every intermediate bit they allocate;
// input bits remain owned by the caller, output bits transfer to the
// caller.
type Basis interface {
	// Name identifies the basis in reports.
	Name() string
	// FullAdder emits sum and carry of a+b+cin.
	FullAdder(bld *program.Builder, a, b, cin program.Bit) (sum, cout program.Bit)
	// HalfAdder emits sum and carry of a+b.
	HalfAdder(bld *program.Builder, a, b program.Bit) (sum, cout program.Bit)
	// And emits a AND b.
	And(bld *program.Builder, a, b program.Bit) program.Bit
	// Or emits a OR b.
	Or(bld *program.Builder, a, b program.Bit) program.Bit
	// Xor emits a XOR b.
	Xor(bld *program.Builder, a, b program.Bit) program.Bit
}

// NAND is the NAND-oriented basis of Fig. 2 (native set: NAND, AND, NOT,
// COPY), reproducing the paper's §3.1 endurance arithmetic.
var NAND Basis = nandBasis{}

// Mixed2 is the minimum two-input-gate basis used for the Table 2 overhead
// model (native set: all one- and two-input gates).
var Mixed2 Basis = mixed2Basis{}

// NOR is the NOR-oriented basis, matching MAGIC-style architectures
// [20, 22] whose native in-memory gate is NOR: a full adder is the
// classical 9-NOR network, a half adder 6 gates (one unary — one more
// than NAND, see HalfAdder), and AND is native. A b-bit multiply costs
// 10b²−12b gates, one extra gate per half adder over the NAND basis's
// 10b²−13b, leaving the §3.1 endurance arithmetic essentially unchanged.
var NOR Basis = norBasis{}

// Bases lists all provided bases.
func Bases() []Basis { return []Basis{NAND, Mixed2, NOR} }

type nandBasis struct{}

func (nandBasis) Name() string { return "nand" }

// FullAdder is the classical 9-NAND full adder of the paper's Fig. 2.
func (nandBasis) FullAdder(bld *program.Builder, a, b, cin program.Bit) (program.Bit, program.Bit) {
	n1 := bld.Gate(gates.NAND, a, b)
	n2 := bld.Gate(gates.NAND, a, n1)
	n3 := bld.Gate(gates.NAND, b, n1)
	s1 := bld.Gate(gates.NAND, n2, n3) // a XOR b
	bld.Free(n2, n3)
	n4 := bld.Gate(gates.NAND, s1, cin)
	n5 := bld.Gate(gates.NAND, s1, n4)
	bld.Free(s1)
	n6 := bld.Gate(gates.NAND, cin, n4)
	sum := bld.Gate(gates.NAND, n5, n6)
	bld.Free(n5, n6)
	cout := bld.Gate(gates.NAND, n1, n4)
	bld.Free(n1, n4)
	return sum, cout
}

// HalfAdder uses 5 gates, exactly one of them single-input (the carry is
// NOT of a⊼b). This is the decomposition that makes the 32-bit multiply
// cost come out to the paper's 9 824 writes and 19 616 reads.
func (nandBasis) HalfAdder(bld *program.Builder, a, b program.Bit) (program.Bit, program.Bit) {
	n1 := bld.Gate(gates.NAND, a, b)
	n2 := bld.Gate(gates.NAND, a, n1)
	n3 := bld.Gate(gates.NAND, b, n1)
	sum := bld.Gate(gates.NAND, n2, n3) // a XOR b
	bld.Free(n2, n3)
	cout := bld.Gate(gates.NOT, n1, program.NoBit)
	bld.Free(n1)
	return sum, cout
}

func (nandBasis) And(bld *program.Builder, a, b program.Bit) program.Bit {
	return bld.Gate(gates.AND, a, b)
}

func (nandBasis) Or(bld *program.Builder, a, b program.Bit) program.Bit {
	na := bld.Gate(gates.NOT, a, program.NoBit)
	nb := bld.Gate(gates.NOT, b, program.NoBit)
	out := bld.Gate(gates.NAND, na, nb)
	bld.Free(na, nb)
	return out
}

func (nandBasis) Xor(bld *program.Builder, a, b program.Bit) program.Bit {
	n1 := bld.Gate(gates.NAND, a, b)
	n2 := bld.Gate(gates.NAND, a, n1)
	n3 := bld.Gate(gates.NAND, b, n1)
	out := bld.Gate(gates.NAND, n2, n3)
	bld.Free(n1, n2, n3)
	return out
}

type norBasis struct{}

func (norBasis) Name() string { return "nor" }

// FullAdder is the 9-NOR full adder, structurally mirroring Fig. 2's
// 9-NAND network: the inner NOR tree NOR(NOR(a,t),NOR(b,t)) with
// t = NOR(a,b) yields XNOR(a,b), and XNOR(XNOR(a,b),cin) is the same
// parity as the sum; the carry falls out as NOR(t, NOR(xnor,cin)) =
// (a∨b) ∧ (XNOR(a,b) ∨ cin) = majority(a,b,cin).
func (norBasis) FullAdder(bld *program.Builder, a, b, cin program.Bit) (program.Bit, program.Bit) {
	n1 := bld.Gate(gates.NOR, a, b)
	n2 := bld.Gate(gates.NOR, a, n1)
	n3 := bld.Gate(gates.NOR, b, n1)
	s1 := bld.Gate(gates.NOR, n2, n3) // XNOR(a,b)
	bld.Free(n2, n3)
	n4 := bld.Gate(gates.NOR, s1, cin)
	n5 := bld.Gate(gates.NOR, s1, n4)
	bld.Free(s1)
	n6 := bld.Gate(gates.NOR, cin, n4)
	sum := bld.Gate(gates.NOR, n5, n6) // XNOR(XNOR(a,b),cin) = a⊕b⊕cin
	bld.Free(n5, n6)
	cout := bld.Gate(gates.NOR, n1, n4)
	bld.Free(n1, n4)
	return sum, cout
}

// HalfAdder costs 6 gates in the NOR basis (one unary) — one more than
// the NAND basis, because the NOR tree produces XNOR and the sum needs
// one inversion, after which carry = NOR(sum, NOR(a,b)) = a∧b.
func (norBasis) HalfAdder(bld *program.Builder, a, b program.Bit) (program.Bit, program.Bit) {
	n1 := bld.Gate(gates.NOR, a, b)
	n2 := bld.Gate(gates.NOR, a, n1)
	n3 := bld.Gate(gates.NOR, b, n1)
	xnor := bld.Gate(gates.NOR, n2, n3)
	bld.Free(n2, n3)
	sum := bld.Gate(gates.NOT, xnor, program.NoBit)
	bld.Free(xnor)
	carry := bld.Gate(gates.NOR, sum, n1)
	bld.Free(n1)
	return sum, carry
}

func (norBasis) And(bld *program.Builder, a, b program.Bit) program.Bit {
	return bld.Gate(gates.AND, a, b)
}

func (norBasis) Or(bld *program.Builder, a, b program.Bit) program.Bit {
	n := bld.Gate(gates.NOR, a, b)
	out := bld.Gate(gates.NOT, n, program.NoBit)
	bld.Free(n)
	return out
}

func (norBasis) Xor(bld *program.Builder, a, b program.Bit) program.Bit {
	n1 := bld.Gate(gates.NOR, a, b)
	n2 := bld.Gate(gates.NOR, a, n1)
	n3 := bld.Gate(gates.NOR, b, n1)
	xnor := bld.Gate(gates.NOR, n2, n3)
	out := bld.Gate(gates.NOT, xnor, program.NoBit)
	bld.Free(n1, n2, n3, xnor)
	return out
}

type mixed2Basis struct{}

func (mixed2Basis) Name() string { return "mixed2" }

// FullAdder is the 5-gate minimum two-input decomposition (§3.2: "Using
// 2-input logic gates, a full-add requires a minimum of 5 gates").
func (mixed2Basis) FullAdder(bld *program.Builder, a, b, cin program.Bit) (program.Bit, program.Bit) {
	s1 := bld.Gate(gates.XOR, a, b)
	c1 := bld.Gate(gates.AND, a, b)
	sum := bld.Gate(gates.XOR, s1, cin)
	c2 := bld.Gate(gates.AND, s1, cin)
	bld.Free(s1)
	cout := bld.Gate(gates.OR, c1, c2)
	bld.Free(c1, c2)
	return sum, cout
}

// HalfAdder is the 2-gate decomposition ("a half-add requires 2 gates").
func (mixed2Basis) HalfAdder(bld *program.Builder, a, b program.Bit) (program.Bit, program.Bit) {
	sum := bld.Gate(gates.XOR, a, b)
	cout := bld.Gate(gates.AND, a, b)
	return sum, cout
}

func (mixed2Basis) And(bld *program.Builder, a, b program.Bit) program.Bit {
	return bld.Gate(gates.AND, a, b)
}

func (mixed2Basis) Or(bld *program.Builder, a, b program.Bit) program.Bit {
	return bld.Gate(gates.OR, a, b)
}

func (mixed2Basis) Xor(bld *program.Builder, a, b program.Bit) program.Bit {
	return bld.Gate(gates.XOR, a, b)
}
