package synth

import (
	"pimendure/internal/gates"
	"pimendure/internal/program"
)

// CopyVector emits one COPY gate per bit, duplicating a vector into freshly
// allocated bits. It is the shuffle primitive of the paper's
// memory-access-aware re-mapping (§3.2, Fig. 10): operands are moved to new
// physical locations with in-array gates so that standard memory read and
// write access patterns stay untouched.
func CopyVector(bld *program.Builder, src []program.Bit) []program.Bit {
	dst := make([]program.Bit, len(src))
	for i, s := range src {
		dst[i] = bld.Copy(s)
	}
	return dst
}

// DoubleNotVector is the fallback for architectures without a native COPY
// (§3.2 footnote 5): two sequential NOT gates per bit.
func DoubleNotVector(bld *program.Builder, src []program.Bit) []program.Bit {
	dst := make([]program.Bit, len(src))
	for i, s := range src {
		inv := bld.Not(s)
		dst[i] = bld.Not(inv)
		bld.Free(inv)
	}
	return dst
}

// ShuffledMult makes §3.2's memory-access-aware re-mapping executable
// (Fig. 10): the two input operands are first copied to freshly allocated
// workspace locations with COPY gates (2b gates — this is the shuffle: the
// fresh bits land wherever the allocator's current state puts them), the
// multiplication runs on the copies, and the 2b-bit product is copied back
// into caller-provided output bits (2b more gates) so that standard memory
// reads and writes observe the original layout. Total overhead is exactly
// ShuffleCopyGates(ShuffleMult, b) = 4b COPY gates on top of the
// multiplication.
//
// out must hold 2·len(x) pre-allocated bits (the "expected destination").
func ShuffledMult(bld *program.Builder, basis Basis, x, y, out []program.Bit) {
	if len(out) != 2*len(x) {
		panic("synth: ShuffledMult needs a 2b-bit destination")
	}
	sx := CopyVector(bld, x)
	sy := CopyVector(bld, y)
	prod := Dadda(bld, basis, sx, sy)
	bld.Free(sx...)
	bld.Free(sy...)
	for i, p := range prod {
		bld.GateInto(gates.COPY, p, program.NoBit, out[i])
	}
	bld.Free(prod...)
}

// ShuffleOp identifies the arithmetic operation whose shuffle overhead is
// being modelled in Table 2.
type ShuffleOp int

const (
	// ShuffleMult is b-bit multiplication (Dadda): inputs 2·b bits moved
	// in, output 2·b bits moved back ⇒ 4b COPY gates on top of 6b²−8b
	// computation gates.
	ShuffleMult ShuffleOp = iota
	// ShuffleAdd is b-bit ripple-carry addition: inputs 2·b bits, output
	// b+1 bits ⇒ 3b+1 COPY gates on top of 5b−3 computation gates.
	ShuffleAdd
)

// ShuffleCopyGates returns the number of COPY gates memory-access-aware
// shuffling adds for a b-bit operation: 2b to place the two input operands
// plus the output width to restore the result (2b for multiplication,
// b+1 for addition).
func ShuffleCopyGates(op ShuffleOp, b int) int {
	switch op {
	case ShuffleMult:
		return 4 * b
	case ShuffleAdd:
		return 3*b + 1
	}
	panic("synth: unknown shuffle op")
}

// ComputeGates returns the Mixed2-basis computation gate count Table 2 is
// normalized against: 6b²−8b for multiplication, 5b−3 for addition.
func ComputeGates(op ShuffleOp, b int) int {
	switch op {
	case ShuffleMult:
		return MultiplierGates(Mixed2, b)
	case ShuffleAdd:
		return RippleCarryGates(Mixed2, b)
	}
	panic("synth: unknown shuffle op")
}

// ShuffleOverhead returns Table 2's relative overhead — extra COPY gates
// divided by computation gates — for a b-bit operation. The overhead
// corresponds directly to extra latency and energy because all gates are
// sequential.
func ShuffleOverhead(op ShuffleOp, b int) float64 {
	return float64(ShuffleCopyGates(op, b)) / float64(ComputeGates(op, b))
}
