package synth

import "pimendure/internal/program"

// RippleCarryAdd emits a ripple-carry addition of two equal-width operands
// and returns the (width+1)-bit sum, least significant bit first. The paper
// notes (§2.2) that while ripple-carry is slow in parallel CMOS, it is
// optimal for PIM because it uses the fewest gates and all gates in a lane
// are sequential anyway: b−1 full adders plus 1 half adder.
//
// Input bits remain owned by the caller; the returned sum bits transfer to
// the caller.
func RippleCarryAdd(bld *program.Builder, basis Basis, x, y []program.Bit) []program.Bit {
	if len(x) != len(y) {
		panic("synth: RippleCarryAdd operand width mismatch")
	}
	if len(x) == 0 {
		panic("synth: RippleCarryAdd on empty operands")
	}
	b := len(x)
	sum := make([]program.Bit, b+1)
	var carry program.Bit
	sum[0], carry = basis.HalfAdder(bld, x[0], y[0])
	for i := 1; i < b; i++ {
		var c program.Bit
		sum[i], c = basis.FullAdder(bld, x[i], y[i], carry)
		bld.Free(carry)
		carry = c
	}
	sum[b] = carry
	return sum
}

// AddUneven adds operands of different widths by treating the shorter one
// as zero-extended: the low bits use full/half adders, the high bits
// propagate the carry with half adders. Returns max(len(x),len(y))+1 bits.
// This is what the dot-product reduction uses as partial sums grow.
func AddUneven(bld *program.Builder, basis Basis, x, y []program.Bit) []program.Bit {
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(y) == 0 {
		panic("synth: AddUneven on empty operand")
	}
	w := len(x)
	sum := make([]program.Bit, w+1)
	var carry program.Bit
	sum[0], carry = basis.HalfAdder(bld, x[0], y[0])
	for i := 1; i < w; i++ {
		var c program.Bit
		if i < len(y) {
			sum[i], c = basis.FullAdder(bld, x[i], y[i], carry)
		} else {
			sum[i], c = basis.HalfAdder(bld, x[i], carry)
		}
		bld.Free(carry)
		carry = c
	}
	sum[w] = carry
	return sum
}

// RippleCarryGates returns the gate count of a b-bit ripple-carry addition
// in the given basis without building it: (b−1)·FA + 1·HA. For Mixed2 this
// is the paper's 5b−3.
func RippleCarryGates(basis Basis, b int) int {
	return (b-1)*fullAdderGates(basis) + halfAdderGates(basis)
}

func fullAdderGates(basis Basis) int {
	switch basis.Name() {
	case "nand":
		return 9
	case "mixed2":
		return 5
	}
	return countGates(func(bld *program.Builder) {
		in := bld.AllocN(3)
		basis.FullAdder(bld, in[0], in[1], in[2])
	})
}

func halfAdderGates(basis Basis) int {
	switch basis.Name() {
	case "nand":
		return 5
	case "mixed2":
		return 2
	}
	return countGates(func(bld *program.Builder) {
		in := bld.AllocN(2)
		basis.HalfAdder(bld, in[0], in[1])
	})
}

// countGates builds a scratch program and counts its gate ops.
func countGates(fn func(*program.Builder)) int {
	bld := program.NewBuilder(1, 1<<16)
	fn(bld)
	n := 0
	for _, op := range bld.Trace().Ops {
		if op.Kind == program.OpGate {
			n++
		}
	}
	return n
}
