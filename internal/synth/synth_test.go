package synth_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimendure/internal/array"
	"pimendure/internal/program"
	"pimendure/internal/synth"
)

// runLanes builds a circuit with build, feeds per-lane operand bits from
// data, executes one iteration on an identity-mapped array, and returns the
// runner for output inspection.
func runLanes(t *testing.T, lanes, capacity int, build func(b *program.Builder), data array.DataFunc) *array.Runner {
	t.Helper()
	bld := program.NewBuilder(lanes, capacity)
	build(bld)
	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	arr := array.New(array.Config{BitsPerLane: capacity, Lanes: lanes})
	r, err := array.NewRunner(arr, tr, array.IdentityMapper(capacity, lanes), data)
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	return r
}

// wordData serves operand words (LSB-first across consecutive slots) from a
// matrix words[lane][operand].
func wordData(width int, words [][]uint64) array.DataFunc {
	return func(slot, lane int) bool {
		op := slot / width
		bit := uint(slot % width)
		return words[lane][op]>>bit&1 == 1
	}
}

func TestFullAdderFunctional(t *testing.T) {
	for _, basis := range synth.Bases() {
		for v := 0; v < 8; v++ {
			a, b, c := v&1 == 1, v&2 == 2, v&4 == 4
			var sumSlot int
			r := runLanes(t, 1, 64, func(bld *program.Builder) {
				in, _ := bld.WriteVector(3)
				s, co := basis.FullAdder(bld, in[0], in[1], in[2])
				sumSlot = bld.Read(s)
				bld.Read(co)
			}, func(slot, lane int) bool {
				return []bool{a, b, c}[slot]
			})
			n := 0
			for _, x := range []bool{a, b, c} {
				if x {
					n++
				}
			}
			if got := int(r.OutWord(sumSlot, 2, 0)); got != n {
				t.Errorf("%s FA(%v,%v,%v) = %d, want %d", basis.Name(), a, b, c, got, n)
			}
		}
	}
}

func TestHalfAdderFunctional(t *testing.T) {
	for _, basis := range synth.Bases() {
		for v := 0; v < 4; v++ {
			a, b := v&1 == 1, v&2 == 2
			var slot int
			r := runLanes(t, 1, 64, func(bld *program.Builder) {
				in, _ := bld.WriteVector(2)
				s, co := basis.HalfAdder(bld, in[0], in[1])
				slot = bld.Read(s)
				bld.Read(co)
			}, func(s, _ int) bool { return []bool{a, b}[s] })
			n := 0
			if a {
				n++
			}
			if b {
				n++
			}
			if got := int(r.OutWord(slot, 2, 0)); got != n {
				t.Errorf("%s HA(%v,%v) = %d, want %d", basis.Name(), a, b, got, n)
			}
		}
	}
}

func TestBasisGateHelpersFunctional(t *testing.T) {
	for _, basis := range synth.Bases() {
		for v := 0; v < 4; v++ {
			a, b := v&1 == 1, v&2 == 2
			var orSlot, xorSlot, andSlot int
			r := runLanes(t, 1, 64, func(bld *program.Builder) {
				in, _ := bld.WriteVector(2)
				orSlot = bld.Read(basis.Or(bld, in[0], in[1]))
				xorSlot = bld.Read(basis.Xor(bld, in[0], in[1]))
				andSlot = bld.Read(basis.And(bld, in[0], in[1]))
			}, func(s, _ int) bool { return []bool{a, b}[s] })
			if r.Out(orSlot, 0) != (a || b) {
				t.Errorf("%s Or(%v,%v) wrong", basis.Name(), a, b)
			}
			if r.Out(xorSlot, 0) != (a != b) {
				t.Errorf("%s Xor(%v,%v) wrong", basis.Name(), a, b)
			}
			if r.Out(andSlot, 0) != (a && b) {
				t.Errorf("%s And(%v,%v) wrong", basis.Name(), a, b)
			}
		}
	}
}

// The Fig. 2 decomposition: a NAND-basis full adder is exactly 9 gates and
// a half adder 5 gates (one unary); Mixed2 uses the 5/2 minimum.
func TestAdderGateCounts(t *testing.T) {
	count := func(basis synth.Basis, full bool) (gates, unary int) {
		bld := program.NewBuilder(1, 64)
		in := bld.AllocN(3)
		if full {
			basis.FullAdder(bld, in[0], in[1], in[2])
		} else {
			basis.HalfAdder(bld, in[0], in[1])
		}
		for _, op := range bld.Trace().Ops {
			if op.Kind == program.OpGate {
				gates++
				if op.Gate.Arity() == 1 {
					unary++
				}
			}
		}
		return
	}
	if g, u := count(synth.NAND, true); g != 9 || u != 0 {
		t.Errorf("NAND FA: %d gates (%d unary), want 9 (0)", g, u)
	}
	if g, u := count(synth.NAND, false); g != 5 || u != 1 {
		t.Errorf("NAND HA: %d gates (%d unary), want 5 (1)", g, u)
	}
	if g, _ := count(synth.Mixed2, true); g != 5 {
		t.Errorf("Mixed2 FA: %d gates, want 5", g)
	}
	if g, _ := count(synth.Mixed2, false); g != 2 {
		t.Errorf("Mixed2 HA: %d gates, want 2", g)
	}
	if g, u := count(synth.NOR, true); g != 9 || u != 0 {
		t.Errorf("NOR FA: %d gates (%d unary), want 9 (0)", g, u)
	}
	if g, u := count(synth.NOR, false); g != 6 || u != 1 {
		t.Errorf("NOR HA: %d gates (%d unary), want 6 (1)", g, u)
	}
}

// The NOR basis (MAGIC-style) costs one extra gate per half adder: a
// 32-bit multiply is 10b²−12b = 9 856 gates vs the NAND basis's 9 824.
func TestNORBasisMultiplierGates(t *testing.T) {
	if got, want := synth.MultiplierGates(synth.NOR, 32), 10*32*32-12*32; got != want {
		t.Errorf("NOR 32-bit multiply = %d gates, want %d", got, want)
	}
}

func TestRippleCarryAddFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, basis := range synth.Bases() {
		for trial := 0; trial < 25; trial++ {
			b := 1 + rng.Intn(16)
			x := rng.Uint64() & (1<<uint(b) - 1)
			y := rng.Uint64() & (1<<uint(b) - 1)
			var slot int
			r := runLanes(t, 1, 16*b+32, func(bld *program.Builder) {
				xb, _ := bld.WriteVector(b)
				yb, _ := bld.WriteVector(b)
				sum := synth.RippleCarryAdd(bld, basis, xb, yb)
				slot = bld.ReadVector(sum)
			}, wordData(b, [][]uint64{{x, y}}))
			if got := r.OutWord(slot, b+1, 0); got != x+y {
				t.Errorf("%s: %d+%d = %d, want %d (b=%d)", basis.Name(), x, y, got, x+y, b)
			}
		}
	}
}

func TestRippleCarryGateCount(t *testing.T) {
	for _, b := range []int{4, 8, 16, 32, 64} {
		// Mixed2: the paper's 5b−3 (§3.2).
		if got, want := synth.RippleCarryGates(synth.Mixed2, b), 5*b-3; got != want {
			t.Errorf("mixed2 add b=%d: %d gates, want %d", b, got, want)
		}
		// NAND: 9(b−1)+5.
		if got, want := synth.RippleCarryGates(synth.NAND, b), 9*(b-1)+5; got != want {
			t.Errorf("nand add b=%d: %d gates, want %d", b, got, want)
		}
		// Analytic matches synthesized.
		bld := program.NewBuilder(1, 32*b)
		xb := bld.AllocN(b)
		yb := bld.AllocN(b)
		synth.RippleCarryAdd(bld, synth.Mixed2, xb, yb)
		gates := 0
		for _, op := range bld.Trace().Ops {
			if op.Kind == program.OpGate {
				gates++
			}
		}
		if gates != 5*b-3 {
			t.Errorf("synthesized mixed2 add b=%d: %d gates, want %d", b, gates, 5*b-3)
		}
	}
}

func TestAddUnevenFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		wx := 2 + rng.Intn(12)
		wy := 1 + rng.Intn(wx)
		x := rng.Uint64() & (1<<uint(wx) - 1)
		y := rng.Uint64() & (1<<uint(wy) - 1)
		var slot int
		r := runLanes(t, 1, 32*wx+32, func(bld *program.Builder) {
			xb, _ := bld.WriteVector(wx)
			yb, _ := bld.WriteVector(wy)
			sum := synth.AddUneven(bld, synth.NAND, xb, yb)
			slot = bld.ReadVector(sum)
		}, func(slot, _ int) bool {
			if slot < wx {
				return x>>uint(slot)&1 == 1
			}
			return y>>uint(slot-wx)&1 == 1
		})
		if got := r.OutWord(slot, wx+1, 0); got != x+y {
			t.Errorf("AddUneven %d+%d = %d, want %d (wx=%d wy=%d)", x, y, got, x+y, wx, wy)
		}
	}
}

// The Dadda composition identity from §2.2: b²−2b full adds, b half adds,
// b² AND gates — for every precision the paper sweeps.
func TestDaddaCellCounts(t *testing.T) {
	for _, b := range []int{2, 4, 8, 16, 32, 64} {
		c := synth.MultiplierCounts(synth.NAND, b)
		if c.FullAdders != b*b-2*b {
			t.Errorf("b=%d: %d FAs, want %d", b, c.FullAdders, b*b-2*b)
		}
		if c.HalfAdders != b {
			t.Errorf("b=%d: %d HAs, want %d", b, c.HalfAdders, b)
		}
		if c.Ands != b*b {
			t.Errorf("b=%d: %d ANDs, want %d", b, c.Ands, b*b)
		}
	}
}

// §3.1's headline numbers: a 32-bit in-memory multiply is 9 824 gates ⇒
// 9 824 cell writes and 19 616 cell reads in the NAND basis.
func TestDaddaPaperCalibration(t *testing.T) {
	bld := program.NewBuilder(1, 4096)
	x := bld.AllocN(32)
	y := bld.AllocN(32)
	synth.Dadda(bld, synth.NAND, x, y)
	tr := bld.Trace()
	gates := 0
	for _, op := range tr.Ops {
		if op.Kind == program.OpGate {
			gates++
		}
	}
	if gates != 9824 {
		t.Errorf("32-bit NAND multiply: %d gates, want 9824", gates)
	}
	if w := tr.CellWrites(false); w != 9824 {
		t.Errorf("cell writes = %d, want 9824", w)
	}
	if r := tr.CellReads(); r != 19616 {
		t.Errorf("cell reads = %d, want 19616", r)
	}
	if got, want := synth.MultiplierGates(synth.NAND, 32), 9824; got != want {
		t.Errorf("analytic NAND gates = %d, want %d", got, want)
	}
	if got, want := synth.MultiplierGates(synth.Mixed2, 32), 6*32*32-8*32; got != want {
		t.Errorf("analytic Mixed2 gates = %d, want %d", got, want)
	}
}

func TestDaddaFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, basis := range synth.Bases() {
		for _, b := range []int{2, 3, 4, 8} {
			for trial := 0; trial < 10; trial++ {
				x := rng.Uint64() & (1<<uint(b) - 1)
				y := rng.Uint64() & (1<<uint(b) - 1)
				var slot int
				r := runLanes(t, 1, 16*b*b+64, func(bld *program.Builder) {
					xb, _ := bld.WriteVector(b)
					yb, _ := bld.WriteVector(b)
					prod := synth.Dadda(bld, basis, xb, yb)
					slot = bld.ReadVector(prod)
				}, wordData(b, [][]uint64{{x, y}}))
				if got := r.OutWord(slot, 2*b, 0); got != x*y {
					t.Errorf("%s b=%d: %d×%d = %d, want %d", basis.Name(), b, x, y, got, x*y)
				}
			}
		}
	}
}

// Property: 8-bit NAND-basis multiplication is exact for all operand pairs
// quick generates.
func TestDaddaProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		var slot int
		r := runLanes(t, 1, 2048, func(bld *program.Builder) {
			xb, _ := bld.WriteVector(8)
			yb, _ := bld.WriteVector(8)
			prod := synth.Dadda(bld, synth.NAND, xb, yb)
			slot = bld.ReadVector(prod)
		}, wordData(8, [][]uint64{{uint64(x), uint64(y)}}))
		return r.OutWord(slot, 16, 0) == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The multiplier is SIMD: every lane computes its own product in one pass.
func TestDaddaMultiLane(t *testing.T) {
	const lanes, b = 8, 6
	rng := rand.New(rand.NewSource(8))
	words := make([][]uint64, lanes)
	for l := range words {
		words[l] = []uint64{rng.Uint64() & 63, rng.Uint64() & 63}
	}
	var slot int
	r := runLanes(t, lanes, 1024, func(bld *program.Builder) {
		xb, _ := bld.WriteVector(b)
		yb, _ := bld.WriteVector(b)
		prod := synth.Dadda(bld, synth.NAND, xb, yb)
		slot = bld.ReadVector(prod)
	}, wordData(b, words))
	for l := 0; l < lanes; l++ {
		want := words[l][0] * words[l][1]
		if got := r.OutWord(slot, 2*b, l); got != want {
			t.Errorf("lane %d: got %d, want %d", l, got, want)
		}
	}
}

func TestDaddaRejectsBadWidths(t *testing.T) {
	bld := program.NewBuilder(1, 64)
	x := bld.AllocN(2)
	y := bld.AllocN(3)
	for _, fn := range []func(){
		func() { synth.Dadda(bld, synth.NAND, x, y) },
		func() { synth.Dadda(bld, synth.NAND, x[:1], y[:1]) },
		func() { synth.RippleCarryAdd(bld, synth.NAND, x, y) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGreaterEqualFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, basis := range synth.Bases() {
		for trial := 0; trial < 40; trial++ {
			b := 1 + rng.Intn(12)
			x := rng.Uint64() & (1<<uint(b) - 1)
			y := rng.Uint64() & (1<<uint(b) - 1)
			var slot int
			r := runLanes(t, 1, 32*b+64, func(bld *program.Builder) {
				xb, _ := bld.WriteVector(b)
				yb, _ := bld.WriteVector(b)
				slot = bld.Read(synth.GreaterEqual(bld, basis, xb, yb))
			}, wordData(b, [][]uint64{{x, y}}))
			if got := r.Out(slot, 0); got != (x >= y) {
				t.Errorf("%s b=%d: GE(%d,%d) = %v", basis.Name(), b, x, y, got)
			}
		}
	}
}

func TestEqualFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		b := 1 + rng.Intn(10)
		x := rng.Uint64() & (1<<uint(b) - 1)
		y := x
		if trial%2 == 0 {
			y = rng.Uint64() & (1<<uint(b) - 1)
		}
		var slot int
		r := runLanes(t, 1, 32*b+64, func(bld *program.Builder) {
			xb, _ := bld.WriteVector(b)
			yb, _ := bld.WriteVector(b)
			slot = bld.Read(synth.Equal(bld, synth.Mixed2, xb, yb))
		}, wordData(b, [][]uint64{{x, y}}))
		if got := r.Out(slot, 0); got != (x == y) {
			t.Errorf("EQ(%d,%d) = %v (b=%d)", x, y, got, b)
		}
	}
}

func TestCopyAndDoubleNotVectors(t *testing.T) {
	const b = 8
	x := uint64(0xA5)
	var copySlot, dnSlot int
	r := runLanes(t, 1, 256, func(bld *program.Builder) {
		xb, _ := bld.WriteVector(b)
		copySlot = bld.ReadVector(synth.CopyVector(bld, xb))
		dnSlot = bld.ReadVector(synth.DoubleNotVector(bld, xb))
	}, wordData(b, [][]uint64{{x}}))
	if got := r.OutWord(copySlot, b, 0); got != x {
		t.Errorf("CopyVector = %#x, want %#x", got, x)
	}
	if got := r.OutWord(dnSlot, b, 0); got != x {
		t.Errorf("DoubleNotVector = %#x, want %#x", got, x)
	}
}

// Table 2 of the paper, exactly.
func TestShuffleOverheadTable2(t *testing.T) {
	cases := []struct {
		b         int
		mult, add float64 // percent, as printed in the paper
	}{
		{4, 25, 76.47},
		{8, 10, 67.57},
		{16, 4.55, 63.64},
		{32, 2.17, 61.78},
		{64, 1.06, 60.88},
	}
	for _, c := range cases {
		gotM := synth.ShuffleOverhead(synth.ShuffleMult, c.b) * 100
		gotA := synth.ShuffleOverhead(synth.ShuffleAdd, c.b) * 100
		if gotM-c.mult > 0.005 || c.mult-gotM > 0.005 {
			t.Errorf("b=%d mult overhead = %.2f%%, want %.2f%%", c.b, gotM, c.mult)
		}
		if gotA-c.add > 0.005 || c.add-gotA > 0.005 {
			t.Errorf("b=%d add overhead = %.2f%%, want %.2f%%", c.b, gotA, c.add)
		}
	}
}

func TestShuffleCopyGates(t *testing.T) {
	if got := synth.ShuffleCopyGates(synth.ShuffleMult, 32); got != 128 {
		t.Errorf("mult shuffle gates = %d, want 128", got)
	}
	if got := synth.ShuffleCopyGates(synth.ShuffleAdd, 32); got != 97 {
		t.Errorf("add shuffle gates = %d, want 97", got)
	}
}

// All circuits must free every intermediate: after building and freeing the
// declared outputs, live bits return to the inputs only.
func TestCircuitsFreeIntermediates(t *testing.T) {
	bld := program.NewBuilder(1, 8192)
	x := bld.AllocN(16)
	y := bld.AllocN(16)
	base := bld.Live()
	prod := synth.Dadda(bld, synth.NAND, x, y)
	bld.Free(prod...)
	if bld.Live() != base {
		t.Errorf("Dadda leaked %d bits", bld.Live()-base)
	}
	sum := synth.RippleCarryAdd(bld, synth.Mixed2, x, y)
	bld.Free(sum...)
	if bld.Live() != base {
		t.Errorf("RippleCarryAdd leaked %d bits", bld.Live()-base)
	}
	ge := synth.GreaterEqual(bld, synth.NAND, x, y)
	bld.Free(ge)
	if bld.Live() != base {
		t.Errorf("GreaterEqual leaked %d bits", bld.Live()-base)
	}
	eq := synth.Equal(bld, synth.Mixed2, x, y)
	bld.Free(eq)
	if bld.Live() != base {
		t.Errorf("Equal leaked %d bits", bld.Live()-base)
	}
}
