package stats

import (
	"math"
	"sort"
	"testing"
)

func TestMaxMean(t *testing.T) {
	c := []uint64{1, 5, 3}
	if Max(c) != 5 {
		t.Error("max wrong")
	}
	if Mean(c) != 3 {
		t.Error("mean wrong")
	}
	if Max(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty handling wrong")
	}
}

func TestMaxOverMean(t *testing.T) {
	if got := MaxOverMean([]uint64{2, 2, 2}); got != 1 {
		t.Errorf("balanced = %v, want 1", got)
	}
	if got := MaxOverMean([]uint64{0, 0, 6}); got != 3 {
		t.Errorf("concentrated = %v, want 3", got)
	}
	if !math.IsNaN(MaxOverMean([]uint64{0, 0})) {
		t.Error("zero distribution should be NaN")
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]uint64{4, 4, 4, 4}); got != 0 {
		t.Errorf("uniform CoV = %v", got)
	}
	got := CoV([]uint64{0, 8})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("CoV = %v, want 1", got)
	}
	if !math.IsNaN(CoV(nil)) {
		t.Error("empty CoV should be NaN")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]uint64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	// All mass on one of n cells: Gini = (n−1)/n.
	g := Gini([]uint64{0, 0, 0, 100})
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated Gini = %v, want 0.75", g)
	}
	if !math.IsNaN(Gini(nil)) || !math.IsNaN(Gini([]uint64{0, 0})) {
		t.Error("degenerate Gini should be NaN")
	}
	// Order invariance.
	if Gini([]uint64{1, 2, 3, 4}) != Gini([]uint64{4, 3, 2, 1}) {
		t.Error("Gini not order invariant")
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(2, 3)
	g.Set(1, 2, 7)
	if g.At(1, 2) != 7 || g.Max() != 7 {
		t.Error("grid accessors wrong")
	}
	fromCounts, err := FromCounts([]uint64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fromCounts.At(1, 0) != 4 {
		t.Error("FromCounts layout wrong")
	}
	if _, err := FromCounts([]uint64{1, 2}, 2, 3); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestNormalized(t *testing.T) {
	g := NewGrid(1, 4)
	copy(g.Data, []float64{0, 1, 2, 4})
	n := g.Normalized()
	want := []float64{0, 0.25, 0.5, 1}
	for i := range want {
		if n.Data[i] != want[i] {
			t.Errorf("normalized[%d] = %v, want %v", i, n.Data[i], want[i])
		}
	}
	// Zero grid unchanged, no division by zero.
	z := NewGrid(2, 2).Normalized()
	for _, v := range z.Data {
		if v != 0 {
			t.Error("zero grid should stay zero")
		}
	}
}

func TestDownsample(t *testing.T) {
	g := NewGrid(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			g.Set(r, c, float64(r*4+c))
		}
	}
	d, err := g.Downsample(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Top-left block {0,1,4,5} means 2.5.
	if d.At(0, 0) != 2.5 {
		t.Errorf("block mean = %v, want 2.5", d.At(0, 0))
	}
	if d.At(1, 1) != 12.5 {
		t.Errorf("block mean = %v, want 12.5", d.At(1, 1))
	}
	// Total mass preserved (means of equal blocks).
	if _, err := g.Downsample(8, 2); err == nil {
		t.Error("upsample accepted")
	}
	if _, err := g.Downsample(0, 2); err == nil {
		t.Error("zero dims accepted")
	}
	// Non-dividing sizes still cover everything.
	d2, err := g.Downsample(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Rows != 3 || d2.Cols != 3 {
		t.Error("output shape wrong")
	}
}

func TestTranspose(t *testing.T) {
	g := NewGrid(2, 3)
	g.Set(0, 2, 9)
	tr := g.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 9 {
		t.Error("transpose wrong")
	}
}

// Percentile is nearest-rank against a full sort, on adversarial shapes
// for the quickselect (sorted, reverse-sorted, constant, single).
func TestPercentile(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	cases := [][]uint64{
		{7},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3},
	}
	for _, counts := range cases {
		sorted := make([]uint64, len(counts))
		copy(sorted, counts)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			k := int(q * float64(len(counts)-1))
			if got, want := Percentile(counts, q), float64(sorted[k]); got != want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", counts, q, got, want)
			}
		}
	}
	// Out-of-range quantiles clamp; the input must not be mutated.
	in := []uint64{9, 1, 5}
	if got := Percentile(in, -1); got != 1 {
		t.Errorf("q<0 = %v, want min", got)
	}
	if got := Percentile(in, 2); got != 9 {
		t.Errorf("q>1 = %v, want max", got)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileRadix(t *testing.T) {
	if v, _ := PercentileRadix(nil, 0.5, 0, nil); !math.IsNaN(v) {
		t.Error("empty radix percentile should be NaN")
	}
	if v, _ := PercentileRadix([]uint64{0, 0, 0}, 0.9, 0, nil); v != 0 {
		t.Errorf("all-zero radix percentile = %v, want 0", v)
	}
	// Adversarial shapes across bucket-shift regimes: values below the
	// bucket count (shift 0), far above it (wide shift), and a max hint
	// smaller than the true max (top-bucket clamping).
	big := make([]uint64, 10_000)
	for i := range big {
		big[i] = uint64(i*i) % 1_000_003
	}
	cases := [][]uint64{
		{7},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{1 << 40, 3, 1 << 62, 9, 1 << 20, 1 << 20},
		big,
	}
	var work []uint64
	for _, counts := range cases {
		sorted := make([]uint64, len(counts))
		copy(sorted, counts)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		max := sorted[len(sorted)-1]
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			k := int(q * float64(len(counts)-1))
			want := float64(sorted[k])
			var got float64
			got, work = PercentileRadix(counts, q, max, work)
			if got != want {
				t.Errorf("PercentileRadix(len %d, %v) = %v, want %v", len(counts), q, got, want)
			}
			// An understated max clamps large values into the top bucket
			// but must not change the result.
			if got, _ := PercentileRadix(counts, q, max/16+1, nil); got != want {
				t.Errorf("PercentileRadix(len %d, %v) with low max = %v, want %v", len(counts), q, got, want)
			}
		}
	}
	in := []uint64{9, 1, 5}
	if _, _ = PercentileRadix(in, 0.5, 9, nil); in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("PercentileRadix mutated its input")
	}
}
