package stats

import "math"

// PercentileRadixFloat is PercentileRadix for non-negative float64
// samples — the fleet engine's quantile extractor, replacing the full
// sort.Float64s the variability model used to pay per call. It exploits
// the IEEE-754 ordering property: for non-negative finite floats the
// raw bit patterns order identically to the values, so one radix
// bucketing pass on Float64bits locates the bucket holding the target
// rank and a second pass collects only that bucket for a tiny exact
// select. Bucketing is offset by the stated minimum so that samples
// concentrated in a narrow range (the common case for first-failure
// lifetimes, which span a few octaves at most) still spread across the
// 4096 buckets instead of collapsing into a handful of exponent bins.
//
// min and max must bound the samples (stale bounds are safe: values
// outside clamp into the edge buckets, which the final select still
// resolves exactly). Negative values and NaNs are not supported. The
// input is never mutated; work is scratch as in PercentileReuse.
func PercentileRadixFloat(samples []float64, q, min, max float64, work []float64) (float64, []float64) {
	n := len(samples)
	if n == 0 {
		return math.NaN(), work
	}
	lo := math.Float64bits(min)
	shift := RadixShift(math.Float64bits(max) - lo)
	bucket := func(v float64) uint64 {
		bits := math.Float64bits(v)
		if bits <= lo {
			return 0
		}
		b := (bits - lo) >> shift
		if b >= RadixBuckets {
			b = RadixBuckets - 1
		}
		return b
	}
	var hist [RadixBuckets]uint32
	for _, v := range samples {
		hist[bucket(v)]++
	}
	k := quantileRank(q, n)
	cum, target := 0, 0
	for ; target < RadixBuckets-1; target++ {
		next := cum + int(hist[target])
		if next > k {
			break
		}
		cum = next
	}
	work = work[:0]
	for _, v := range samples {
		if int(bucket(v)) == target {
			work = append(work, v)
		}
	}
	return quickselectFloat(work, k-cum), work
}

// quickselectFloat partitions work in place until its k-th smallest
// element (0-based) is at index k, and returns it — the float64 twin of
// quickselect.
func quickselectFloat(work []float64, k int) float64 {
	lo, hi := 0, len(work)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if work[mid] < work[lo] {
			work[mid], work[lo] = work[lo], work[mid]
		}
		if work[hi] < work[lo] {
			work[hi], work[lo] = work[lo], work[hi]
		}
		if work[hi] < work[mid] {
			work[hi], work[mid] = work[mid], work[hi]
		}
		pivot := work[mid]
		i, j := lo, hi
		for i <= j {
			for work[i] < pivot {
				i++
			}
			for work[j] > pivot {
				j--
			}
			if i <= j {
				work[i], work[j] = work[j], work[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return work[k]
}
