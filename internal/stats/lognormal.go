package stats

import (
	"math"
	"math/rand"
)

// Lognormal is the one audited lognormal endurance model shared by every
// variability consumer in the tree: the fleet survival engine
// (internal/fleet), the chip-level Monte Carlo and per-bank endurance
// draws (internal/system), and the per-cell first-failure reference
// (internal/lifetime). It is parameterized by the log-space location and
// shape — a draw is exp(Mu + Sigma·N(0,1)), so exp(Mu) is the median.
//
// Sigma = 0 degenerates to the point mass at the median: Draw and Fill
// return exactly exp(Mu), Quantile returns the median for every p in
// (0, 1), and CDF/SF become the step function at the median.
type Lognormal struct {
	// Mu is the mean of ln X (ln of the median).
	Mu float64
	// Sigma is the standard deviation of ln X (≥ 0).
	Sigma float64
}

// LognormalMedian builds the model from its median (exp(Mu)) and shape.
func LognormalMedian(median, sigma float64) Lognormal {
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// Median returns exp(Mu).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Draw returns one lognormal sample from the given source. Every caller
// threads an explicit seeded source so draws are reproducible and the
// seed lands in run manifests.
func (l Lognormal) Draw(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Fill fills dst with independent draws from the given source.
func (l Lognormal) Fill(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = l.Draw(rng)
	}
}

// CDF returns P(X ≤ x). Non-positive x has probability 0.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if l.Sigma == 0 {
		if math.Log(x) < l.Mu {
			return 0
		}
		return 1
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SF returns the survival function P(X > x) = 1 − CDF(x), computed
// through erfc directly so the deep upper tail keeps full precision
// (1 − CDF cancels to 0 long before erfc underflows).
func (l Lognormal) SF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	if l.Sigma == 0 {
		if math.Log(x) < l.Mu {
			return 1
		}
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Quantile returns the p-quantile exp(Mu + Sigma·Φ⁻¹(p)). p outside
// (0, 1) returns 0 (p ≤ 0) or +Inf (p ≥ 1) for Sigma > 0.
func (l Lognormal) Quantile(p float64) float64 {
	if l.Sigma == 0 {
		return math.Exp(l.Mu)
	}
	return math.Exp(l.Mu + l.Sigma*NormQuantile(p))
}

// QuantileMin returns the p-quantile of the MINIMUM of n independent
// copies of X: with F_min(x) = 1 − (1 − F(x))ⁿ, the inverse is
// F⁻¹(1 − (1 − p)^{1/n}). This is the order-statistic collapse behind
// the fleet engine — sampling the weakest of n identically-worn cells
// in O(1) instead of n draws. Computed through expm1/log1p so p values
// down to the subnormal range map to accurate deep-tail quantiles.
// n need not be integral (it is a float for callers that merge groups).
func (l Lognormal) QuantileMin(p, n float64) float64 {
	if l.Sigma == 0 {
		return math.Exp(l.Mu)
	}
	// pc = 1 − (1−p)^{1/n}, kept accurate for tiny p and huge n where
	// the naive form rounds to 0.
	pc := -math.Expm1(math.Log1p(-p) / n)
	return math.Exp(l.Mu + l.Sigma*NormQuantile(pc))
}

// MinCDF returns P(min of n iid copies ≤ x) = 1 − (1 − F(x))ⁿ, through
// the survival function so the deep tail stays exact.
func (l Lognormal) MinCDF(x, n float64) float64 {
	sf := l.SF(x)
	if sf == 0 {
		return 1
	}
	// 1 − sfⁿ = −expm1(n·ln(sf))
	return -math.Expm1(n * math.Log(sf))
}

// MinHazard returns −ln P(min of n iid copies > x) = −n·ln SF(x) — the
// cumulative-hazard form of MinCDF the fleet engine sums across groups.
// The deep lower tail is computed from the CDF as −n·log1p(−F), because
// −ln SF quantizes at one ulp of 1 (≈1.1e−16) exactly where the fleet
// engine needs hazard resolution down to ~5e−17; the F route keeps full
// relative precision to subnormal F. +Inf when x is beyond the
// survivable range.
func (l Lognormal) MinHazard(x, n float64) float64 {
	f := l.CDF(x)
	if f == 0 {
		return 0
	}
	if f < 0.5 {
		return -n * math.Log1p(-f)
	}
	sf := l.SF(x)
	if sf == 0 {
		return math.Inf(1)
	}
	return -n * math.Log(sf)
}

// NormQuantile returns Φ⁻¹(p), the standard normal quantile, via
// Wichura's AS241 PPND16 rational approximations — accurate to full
// double precision over the entire open interval, including tails down
// to p ≈ 5e−324 where the erfinv route (Erfinv(2p−1)) loses the
// argument to rounding against ±1. p ≤ 0 returns −Inf, p ≥ 1 returns
// +Inf.
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		// Central region: rational in r = 0.180625 − q².
		r := 0.180625 - q*q
		num := ((((((2.5090809287301226727e3*r+3.3430575583588128105e4)*r+
			6.7265770927008700853e4)*r+4.5921953931549871457e4)*r+
			1.3731693765509461125e4)*r+1.9715909503065514427e3)*r+
			1.3314166789178437745e2)*r + 3.3871328727963666080e0
		den := ((((((5.2264952788528545610e3*r+2.8729085735721942674e4)*r+
			3.9307895800092710610e4)*r+2.1213794301586595867e4)*r+
			5.3941960214247511077e3)*r+6.8718700749205790830e2)*r+
			4.2313330701600911252e1)*r + 1
		return q * num / den
	}
	// Tail regions: rational in r = sqrt(−ln(min(p, 1−p))).
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var v float64
	if r <= 5 {
		r -= 1.6
		num := ((((((7.74545014278341407640e-4*r+2.27238449892691845833e-2)*r+
			2.41780725177450611770e-1)*r+1.27045825245236838258e0)*r+
			3.64784832476320460504e0)*r+5.76949722146069140550e0)*r+
			4.63033784615654529590e0)*r + 1.42343711074968357734e0
		den := ((((((1.05075007164441684324e-9*r+5.47593808499534494600e-4)*r+
			1.51986665636164571966e-2)*r+1.48103976427480074590e-1)*r+
			6.89767334985100004550e-1)*r+1.67638483018380384940e0)*r+
			2.05319162663775882187e0)*r + 1
		v = num / den
	} else {
		r -= 5
		num := ((((((2.01033439929228813265e-7*r+2.71155556874348757815e-5)*r+
			1.24266094738807843860e-3)*r+2.65321895265761230930e-2)*r+
			2.96560571828504891230e-1)*r+1.78482653991729133580e0)*r+
			5.46378491116411436990e0)*r + 6.65790464350110377720e0
		den := ((((((2.04426310338993978564e-15*r+1.42151175831644588870e-7)*r+
			1.84631831751005468180e-5)*r+7.86869131145613259100e-4)*r+
			1.48753612908506148525e-2)*r+1.36929880922735805310e-1)*r+
			5.99832206555887937690e-1)*r + 1
		v = num / den
	}
	if q < 0 {
		return -v
	}
	return v
}
