// Package stats provides the distribution summaries and grid operations
// the evaluation uses: max/mean, coefficient of variation and Gini index
// of write-count imbalance, and mean-pooling downsampling for heatmaps.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Max returns the largest count.
func Max(counts []uint64) uint64 {
	var m uint64
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func Mean(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var s float64
	for _, c := range counts {
		s += float64(c)
	}
	return s / float64(len(counts))
}

// MaxOverMean is the imbalance factor that directly determines lifetime
// loss: a perfectly balanced distribution has factor 1.
func MaxOverMean(counts []uint64) float64 {
	m := Mean(counts)
	if m == 0 {
		return math.NaN()
	}
	return float64(Max(counts)) / m
}

// CoV returns the coefficient of variation (σ/µ).
func CoV(counts []uint64) float64 {
	µ := Mean(counts)
	if µ == 0 || len(counts) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - µ
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(counts))) / µ
}

// Gini returns the Gini index of the counts (0 = perfectly even, →1 =
// concentrated on few cells).
func Gini(counts []uint64) float64 {
	n := len(counts)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	for i, c := range counts {
		sorted[i] = float64(c)
	}
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(i+1)
		total += v
	}
	if total == 0 {
		return math.NaN()
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// Grid is a dense row-major float matrix.
type Grid struct {
	Rows, Cols int
	Data       []float64 // [r*Cols+c]
}

// NewGrid allocates a zero grid.
func NewGrid(rows, cols int) *Grid {
	return &Grid{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[r*g.Cols+c] }

// Set assigns element (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[r*g.Cols+c] = v }

// Max returns the largest element.
func (g *Grid) Max() float64 {
	m := math.Inf(-1)
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// FromCounts converts a count matrix into a grid.
func FromCounts(counts []uint64, rows, cols int) (*Grid, error) {
	if rows*cols != len(counts) {
		return nil, fmt.Errorf("stats: %d counts do not fill %dx%d", len(counts), rows, cols)
	}
	g := NewGrid(rows, cols)
	for i, c := range counts {
		g.Data[i] = float64(c)
	}
	return g, nil
}

// Normalized returns the grid scaled so its maximum is 1 (the paper's
// heatmaps are normalized to maximum utilization = 1). A zero grid is
// returned unchanged.
func (g *Grid) Normalized() *Grid {
	out := NewGrid(g.Rows, g.Cols)
	m := g.Max()
	if m <= 0 {
		copy(out.Data, g.Data)
		return out
	}
	for i, v := range g.Data {
		out.Data[i] = v / m
	}
	return out
}

// Downsample mean-pools the grid to outRows×outCols. Output dimensions
// must not exceed the input's; block boundaries are distributed evenly
// when sizes do not divide.
func (g *Grid) Downsample(outRows, outCols int) (*Grid, error) {
	if outRows <= 0 || outCols <= 0 || outRows > g.Rows || outCols > g.Cols {
		return nil, fmt.Errorf("stats: cannot downsample %dx%d to %dx%d", g.Rows, g.Cols, outRows, outCols)
	}
	out := NewGrid(outRows, outCols)
	for or := 0; or < outRows; or++ {
		r0, r1 := or*g.Rows/outRows, (or+1)*g.Rows/outRows
		for oc := 0; oc < outCols; oc++ {
			c0, c1 := oc*g.Cols/outCols, (oc+1)*g.Cols/outCols
			var sum float64
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					sum += g.At(r, c)
				}
			}
			out.Set(or, oc, sum/float64((r1-r0)*(c1-c0)))
		}
	}
	return out, nil
}

// Transpose returns the grid with axes swapped (for row-parallel
// presentation).
func (g *Grid) Transpose() *Grid {
	out := NewGrid(g.Cols, g.Rows)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			out.Set(c, r, g.At(r, c))
		}
	}
	return out
}
