// Package stats provides the distribution summaries and grid operations
// the evaluation uses: max/mean, coefficient of variation and Gini index
// of write-count imbalance, and mean-pooling downsampling for heatmaps.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Max returns the largest count.
func Max(counts []uint64) uint64 {
	var m uint64
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func Mean(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var s float64
	for _, c := range counts {
		s += float64(c)
	}
	return s / float64(len(counts))
}

// MaxOverMean is the imbalance factor that directly determines lifetime
// loss: a perfectly balanced distribution has factor 1.
func MaxOverMean(counts []uint64) float64 {
	m := Mean(counts)
	if m == 0 {
		return math.NaN()
	}
	return float64(Max(counts)) / m
}

// CoV returns the coefficient of variation (σ/µ).
func CoV(counts []uint64) float64 {
	µ := Mean(counts)
	if µ == 0 || len(counts) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - µ
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(counts))) / µ
}

// Summary is a one-pass digest of a count distribution: the fused
// uint64→float64 statistics pass behind Summarize, carrying everything
// the report and serving paths previously derived from three or four
// separate full scans (Max, Mean, MaxOverMean, CoV).
type Summary struct {
	// N is the cell count.
	N int
	// Max is the largest count.
	Max uint64
	// Total is the sum of all counts.
	Total uint64
	// Mean is the arithmetic mean.
	Mean float64
	// CoV is the coefficient of variation σ/µ (NaN for empty or all-zero
	// input), computed with Welford's recurrence — numerically stable even
	// when σ ≪ µ, unlike the E[x²]−µ² shortcut.
	CoV float64
}

// MaxOverMean is the imbalance factor Max/Mean — the quantity that
// directly determines lifetime loss (NaN when the mean is zero).
func (s Summary) MaxOverMean() float64 {
	if s.Mean == 0 {
		return math.NaN()
	}
	return float64(s.Max) / s.Mean
}

// Summarize computes max, total, mean and the coefficient of variation
// in a single pass over the counts. It exists so summary consumers stop
// copying or rescanning multi-megabyte distributions once per statistic:
// one Summarize call replaces a Max + Mean + CoV (two-pass) cascade.
func Summarize(counts []uint64) Summary {
	s := Summary{N: len(counts)}
	var mean, m2 float64
	for i, c := range counts {
		if c > s.Max {
			s.Max = c
		}
		s.Total += c
		f := float64(c)
		d := f - mean
		mean += d / float64(i+1)
		m2 += d * (f - mean)
	}
	if s.N == 0 {
		s.CoV = math.NaN()
		return s
	}
	s.Mean = mean
	if mean == 0 {
		s.CoV = math.NaN()
	} else {
		s.CoV = math.Sqrt(m2/float64(s.N)) / mean
	}
	return s
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of the counts by
// nearest-rank on a quickselect partition — O(n) expected, no full sort,
// so the telemetry sampler can afford it per epoch on paper-scale
// (1024×1024) distributions. NaN on empty input.
func Percentile(counts []uint64, q float64) float64 {
	v, _ := PercentileReuse(counts, q, nil)
	return v
}

// PercentileReuse is Percentile with a caller-provided scratch slice, so
// per-epoch samplers avoid one allocation per call: work is grown when
// too small and handed back for the next call. The input is never
// mutated.
func PercentileReuse(counts []uint64, q float64, work []uint64) (float64, []uint64) {
	n := len(counts)
	if n == 0 {
		return math.NaN(), work
	}
	if cap(work) < n {
		work = make([]uint64, n)
	}
	work = work[:n]
	copy(work, counts)
	return float64(quickselect(work, quantileRank(q, n))), work
}

// RadixBuckets is the histogram width of PercentileRadix and
// PercentileFromHist: 4096 buckets resolve 12 bits per pass, and the
// bucket array stays a cache-resident 16 KB.
const RadixBuckets = 4096

// RadixShift returns the smallest shift mapping values in [0, max] into
// RadixBuckets buckets. Callers fusing histogram construction into a
// pass of their own may use a stale (understated) max — values beyond it
// clamp into the top bucket, which PercentileFromHist still resolves
// exactly.
func RadixShift(max uint64) uint {
	var shift uint
	for max>>shift >= RadixBuckets {
		shift++
	}
	return shift
}

// PercentileRadix returns the same exact nearest-rank quantile as
// Percentile, given the slice's maximum (which telemetry callers already
// have from a fused statistics pass): one bucketing pass finds the
// bucket holding the target rank, a second collects only that bucket's
// elements — typically n/4096 of them — for a tiny final select. The
// input is never mutated; work is scratch as in PercentileReuse.
func PercentileRadix(counts []uint64, q float64, max uint64, work []uint64) (float64, []uint64) {
	if len(counts) == 0 {
		return math.NaN(), work
	}
	shift := RadixShift(max)
	var hist [RadixBuckets]uint32
	for _, c := range counts {
		b := c >> shift
		if b >= RadixBuckets {
			b = RadixBuckets - 1 // counts above the stated max
		}
		hist[b]++
	}
	return PercentileFromHist(counts, q, &hist, shift, work)
}

// PercentileFromHist is the resolution half of PercentileRadix, for
// callers that built the radix histogram inside a fused pass over the
// same counts: hist[min(c>>shift, RadixBuckets-1)] must count every
// element. It scans the histogram for the bucket holding the target
// rank, collects that bucket's elements from counts, and selects the
// exact value. The input is never mutated; work is scratch as in
// PercentileReuse.
func PercentileFromHist(counts []uint64, q float64, hist *[RadixBuckets]uint32, shift uint, work []uint64) (float64, []uint64) {
	n := len(counts)
	if n == 0 {
		return math.NaN(), work
	}
	k := quantileRank(q, n)
	cum, target := 0, 0
	for ; target < RadixBuckets-1; target++ {
		next := cum + int(hist[target])
		if next > k {
			break
		}
		cum = next
	}
	work = work[:0]
	for _, c := range counts {
		b := c >> shift
		if b >= RadixBuckets {
			b = RadixBuckets - 1
		}
		if int(b) == target {
			work = append(work, c)
		}
	}
	return float64(quickselect(work, k-cum)), work
}

// quantileRank maps a quantile to its nearest-rank index, clamping q
// into [0, 1].
func quantileRank(q float64, n int) int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return int(q * float64(n-1))
}

// quickselect partitions work in place until its k-th smallest element
// (0-based) is at index k, and returns it.
func quickselect(work []uint64, k int) uint64 {
	lo, hi := 0, len(work)-1
	for lo < hi {
		// Median-of-three pivot guards against the sorted/constant
		// inputs wear distributions often are.
		mid := lo + (hi-lo)/2
		if work[mid] < work[lo] {
			work[mid], work[lo] = work[lo], work[mid]
		}
		if work[hi] < work[lo] {
			work[hi], work[lo] = work[lo], work[hi]
		}
		if work[hi] < work[mid] {
			work[hi], work[mid] = work[mid], work[hi]
		}
		pivot := work[mid]
		i, j := lo, hi
		for i <= j {
			for work[i] < pivot {
				i++
			}
			for work[j] > pivot {
				j--
			}
			if i <= j {
				work[i], work[j] = work[j], work[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return work[k]
}

// Gini returns the Gini index of the counts (0 = perfectly even, →1 =
// concentrated on few cells).
func Gini(counts []uint64) float64 {
	v, _ := GiniReuse(counts, nil)
	return v
}

// GiniReuse is Gini with a caller-provided float64 scratch slice (grown
// when too small and handed back for the next call), so summary loops
// over many distributions sort in one reused buffer instead of
// allocating a full float64 copy per call. The input is never mutated.
func GiniReuse(counts []uint64, work []float64) (float64, []float64) {
	n := len(counts)
	if n == 0 {
		return math.NaN(), work
	}
	if cap(work) < n {
		work = make([]float64, n)
	}
	work = work[:n]
	for i, c := range counts {
		work[i] = float64(c)
	}
	sort.Float64s(work)
	var cum, total float64
	for i, v := range work {
		cum += v * float64(i+1)
		total += v
	}
	if total == 0 {
		return math.NaN(), work
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n), work
}

// Grid is a dense row-major float matrix.
type Grid struct {
	Rows, Cols int
	Data       []float64 // [r*Cols+c]
}

// NewGrid allocates a zero grid.
func NewGrid(rows, cols int) *Grid {
	return &Grid{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[r*g.Cols+c] }

// Set assigns element (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[r*g.Cols+c] = v }

// Max returns the largest element.
func (g *Grid) Max() float64 {
	m := math.Inf(-1)
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// FromCounts converts a count matrix into a grid.
func FromCounts(counts []uint64, rows, cols int) (*Grid, error) {
	if rows*cols != len(counts) {
		return nil, fmt.Errorf("stats: %d counts do not fill %dx%d", len(counts), rows, cols)
	}
	g := NewGrid(rows, cols)
	for i, c := range counts {
		g.Data[i] = float64(c)
	}
	return g, nil
}

// Normalized returns the grid scaled so its maximum is 1 (the paper's
// heatmaps are normalized to maximum utilization = 1). A zero grid is
// returned unchanged.
func (g *Grid) Normalized() *Grid {
	out := NewGrid(g.Rows, g.Cols)
	m := g.Max()
	if m <= 0 {
		copy(out.Data, g.Data)
		return out
	}
	for i, v := range g.Data {
		out.Data[i] = v / m
	}
	return out
}

// Downsample mean-pools the grid to outRows×outCols. Output dimensions
// must not exceed the input's; block boundaries are distributed evenly
// when sizes do not divide.
func (g *Grid) Downsample(outRows, outCols int) (*Grid, error) {
	if outRows <= 0 || outCols <= 0 || outRows > g.Rows || outCols > g.Cols {
		return nil, fmt.Errorf("stats: cannot downsample %dx%d to %dx%d", g.Rows, g.Cols, outRows, outCols)
	}
	out := NewGrid(outRows, outCols)
	for or := 0; or < outRows; or++ {
		r0, r1 := or*g.Rows/outRows, (or+1)*g.Rows/outRows
		for oc := 0; oc < outCols; oc++ {
			c0, c1 := oc*g.Cols/outCols, (oc+1)*g.Cols/outCols
			var sum float64
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					sum += g.At(r, c)
				}
			}
			out.Set(or, oc, sum/float64((r1-r0)*(c1-c0)))
		}
	}
	return out, nil
}

// Transpose returns the grid with axes swapped (for row-parallel
// presentation).
func (g *Grid) Transpose() *Grid {
	out := NewGrid(g.Cols, g.Rows)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			out.Set(c, r, g.At(r, c))
		}
	}
	return out
}
