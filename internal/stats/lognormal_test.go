package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want, tol float64 }{
		{0.5, 0, 0},
		{0.975, 1.9599639845400545, 1e-14},
		{0.025, -1.9599639845400545, 1e-14},
		{0.84134474606854293, 1, 1e-13}, // Φ(1)
		{1e-10, -6.3613409024040557, 1e-12},
		{0.9, 1.2815515655446004, 1e-14},
	}
	for _, c := range cases {
		got := NormQuantile(c.p)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("boundary quantiles should be ±Inf")
	}
}

func TestNormQuantileAgreesWithErfinv(t *testing.T) {
	// Mid-range, where Erfinv(2p−1) is itself accurate: the two routes
	// must agree to near machine precision.
	for p := 0.001; p < 1; p += 0.0017 {
		want := math.Sqrt2 * math.Erfinv(2*p-1)
		got := NormQuantile(p)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("NormQuantile(%v) = %v, erfinv route = %v", p, got, want)
		}
	}
}

func TestNormQuantileDeepTail(t *testing.T) {
	// The erfinv route collapses to −Inf below p ≈ 1e−17; AS241 must keep
	// returning finite, monotone quantiles all the way down.
	prev := math.Inf(-1)
	for _, p := range []float64{1e-300, 1e-100, 1e-50, 1e-20, 1e-17, 1e-10, 1e-5} {
		z := NormQuantile(p)
		if math.IsInf(z, 0) || math.IsNaN(z) {
			t.Fatalf("NormQuantile(%g) = %v, want finite", p, z)
		}
		if z <= prev {
			t.Fatalf("NormQuantile not monotone at p=%g: %v <= %v", p, z, prev)
		}
		prev = z
	}
	// Round-trip through the normal CDF where erfc still resolves it.
	for _, p := range []float64{1e-10, 1e-6, 1e-3} {
		z := NormQuantile(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		if math.Abs(back-p) > 1e-12*p {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
}

func TestLognormalCDFQuantileRoundTrip(t *testing.T) {
	l := LognormalMedian(1e6, 0.45)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := l.Quantile(p)
		if got := l.CDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
		if got := l.SF(x); math.Abs(got-(1-p)) > 1e-12 {
			t.Errorf("SF(Quantile(%v)) = %v", p, got)
		}
	}
	if got := l.Quantile(0.5); math.Abs(got-1e6) > 1e-6 {
		t.Errorf("median quantile = %v, want 1e6", got)
	}
	if l.CDF(0) != 0 || l.CDF(-3) != 0 || l.SF(0) != 1 {
		t.Error("non-positive support handling wrong")
	}
}

func TestLognormalSigmaZero(t *testing.T) {
	l := LognormalMedian(5000, 0)
	rng := rand.New(rand.NewSource(1))
	med := l.Median()
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := l.Quantile(p); got != med {
			t.Errorf("Quantile(%v) = %v, want the point mass %v", p, got, med)
		}
		if got := l.QuantileMin(p, 1e6); got != med {
			t.Errorf("QuantileMin(%v) = %v, want the point mass %v", p, got, med)
		}
	}
	if got := l.Draw(rng); got != med {
		t.Errorf("Draw = %v, want the point mass %v", got, med)
	}
	if math.Abs(med-5000) > 1e-9 {
		t.Errorf("Median = %v, want ≈5000", med)
	}
	if l.CDF(4999) != 0 || l.CDF(5000) != 1 || l.SF(4999) != 1 || l.SF(5000) != 0 {
		t.Error("σ=0 step function wrong")
	}
}

func TestLognormalQuantileMin(t *testing.T) {
	l := LognormalMedian(1e6, 0.3)
	// n = 1 degenerates to the plain quantile.
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got, want := l.QuantileMin(p, 1), l.Quantile(p); math.Abs(got-want) > 1e-9*want {
			t.Errorf("QuantileMin(%v, 1) = %v, want %v", p, got, want)
		}
	}
	// Inverse relationship: MinCDF(QuantileMin(p, n), n) = p.
	for _, n := range []float64{2, 100, 1e6} {
		for _, p := range []float64{0.01, 0.5, 0.99} {
			x := l.QuantileMin(p, n)
			if got := l.MinCDF(x, n); math.Abs(got-p) > 1e-9 {
				t.Errorf("MinCDF(QuantileMin(%v, %v), %v) = %v", p, n, n, got)
			}
		}
	}
	// The minimum of more copies is stochastically smaller.
	if l.QuantileMin(0.5, 1000) >= l.QuantileMin(0.5, 10) {
		t.Error("min over more cells should shift the quantile down")
	}
	// Monte Carlo check: the q-quantile of min over n draws matches.
	const n, trials = 50, 4000
	rng := rand.New(rand.NewSource(7))
	mins := make([]float64, trials)
	for i := range mins {
		m := math.Inf(1)
		for k := 0; k < n; k++ {
			if v := l.Draw(rng); v < m {
				m = v
			}
		}
		mins[i] = m
	}
	sort.Float64s(mins)
	for _, p := range []float64{0.25, 0.5, 0.75} {
		got := mins[int(p*float64(trials))]
		want := l.QuantileMin(p, n)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("empirical min quantile(%v) = %v, closed form %v", p, got, want)
		}
	}
}

func TestLognormalMinHazard(t *testing.T) {
	l := LognormalMedian(1e6, 0.4)
	// −expm1(−H) must reproduce MinCDF.
	for _, n := range []float64{1, 37, 1e5} {
		for _, x := range []float64{1e5, 5e5, 1e6, 2e6} {
			h := l.MinHazard(x, n)
			want := l.MinCDF(x, n)
			if got := -math.Expm1(-h); math.Abs(got-want) > 1e-12 {
				t.Errorf("hazard/CDF mismatch at x=%v n=%v: %v vs %v", x, n, got, want)
			}
		}
	}
	if l.MinHazard(0, 10) != 0 {
		t.Error("hazard below support should be 0")
	}
}

func TestLognormalDrawDistribution(t *testing.T) {
	// Fill must be distributed as exp(µ + σN): check median and the σ
	// recovered from log-samples.
	l := LognormalMedian(2e6, 0.5)
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 20000)
	l.Fill(samples, rng)
	logs := make([]float64, len(samples))
	var mean float64
	for i, v := range samples {
		logs[i] = math.Log(v)
		mean += logs[i]
	}
	mean /= float64(len(logs))
	if math.Abs(mean-l.Mu) > 0.02 {
		t.Errorf("log-mean = %v, want %v", mean, l.Mu)
	}
	var ss float64
	for _, v := range logs {
		d := v - mean
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(logs)))
	if math.Abs(sigma-0.5) > 0.02 {
		t.Errorf("log-σ = %v, want 0.5", sigma)
	}
	// Same seed, same stream: draws are reproducible.
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if l.Draw(a) != l.Draw(b) {
			t.Fatal("identically seeded draws diverged")
		}
	}
}

func TestPercentileRadixFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := LognormalMedian(1e6, 0.4)
	samples := make([]float64, 30001)
	l.Fill(samples, rng)
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	ref := append([]float64(nil), samples...)
	sort.Float64s(ref)
	var work []float64
	for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 1} {
		var got float64
		got, work = PercentileRadixFloat(samples, q, min, max, work)
		want := ref[quantileRank(q, len(ref))]
		if got != want {
			t.Errorf("q=%v: radix %v, sorted nearest-rank %v", q, got, want)
		}
	}
	// Stale bounds clamp instead of corrupting ranks.
	got, _ := PercentileRadixFloat(samples, 0.5, min*2, max/2, work)
	want := ref[quantileRank(0.5, len(ref))]
	if got != want {
		t.Errorf("stale bounds: radix %v, want %v", got, want)
	}
	// Constant input (the σ=0 fleet case) collapses into one bucket.
	flat := []float64{7, 7, 7, 7}
	if got, _ := PercentileRadixFloat(flat, 0.9, 7, 7, nil); got != 7 {
		t.Errorf("constant input percentile = %v, want 7", got)
	}
	if got, _ := PercentileRadixFloat(nil, 0.5, 0, 0, nil); !math.IsNaN(got) {
		t.Error("empty input should be NaN")
	}
}
