package lifetime

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The paper assumes identical endurance for every cell and notes this is
// pessimistic: "the actual endurance is more likely to vary across cells
// (our approach can be thought of as using the average endurance for the
// expected lifetime)" (§4). This file quantifies that caveat: cell
// endurance is drawn from a lognormal distribution around the nominal
// value and the first-failure time becomes a random variable whose
// quantiles we estimate by Monte Carlo.

// VarModel is a lifetime model with lognormal per-cell endurance
// variability.
type VarModel struct {
	// MedianEndurance is the nominal writes-to-failure (the lognormal's
	// median, exp(µ)).
	MedianEndurance float64
	// Sigma is the lognormal shape parameter (σ of ln endurance); 0.3–1
	// covers reported NVM endurance spreads.
	Sigma float64
	// StepSeconds is the device time per sequential operation.
	StepSeconds float64
}

// VarResult summarizes the Monte Carlo first-failure distribution, in
// benchmark iterations.
type VarResult struct {
	Trials int
	// MeanIterations is the expected iterations to first cell failure.
	MeanIterations float64
	// P05 and P95 bound the central 90% of the distribution.
	P05, P95 float64
	// DeterministicIterations is the uniform-endurance (Eq. 4) value for
	// comparison: MedianEndurance / max writes-per-iteration.
	DeterministicIterations float64
}

// FirstFailure Monte-Carlo samples the iterations until the first cell
// failure for a write distribution accumulated over `iterations`
// iterations: each trial draws an endurance for every written cell and
// takes min over cells of endurance/writesPerIteration. Unwritten cells
// never fail.
func (m VarModel) FirstFailure(counts []uint64, iterations, trials int, seed int64) (VarResult, error) {
	if m.MedianEndurance <= 0 || m.StepSeconds <= 0 {
		return VarResult{}, fmt.Errorf("lifetime: non-positive model parameters %+v", m)
	}
	if m.Sigma < 0 {
		return VarResult{}, fmt.Errorf("lifetime: negative sigma %v", m.Sigma)
	}
	if iterations <= 0 || trials <= 0 {
		return VarResult{}, fmt.Errorf("lifetime: iterations and trials must be positive")
	}
	// Per-iteration write rates of the written cells only.
	rates := make([]float64, 0, len(counts))
	var maxRate float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		r := float64(c) / float64(iterations)
		rates = append(rates, r)
		if r > maxRate {
			maxRate = r
		}
	}
	if len(rates) == 0 {
		return VarResult{}, fmt.Errorf("lifetime: distribution has no written cells")
	}

	mu := math.Log(m.MedianEndurance)
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, trials)
	for t := range samples {
		first := math.Inf(1)
		for _, r := range rates {
			endurance := math.Exp(mu + m.Sigma*rng.NormFloat64())
			if life := endurance / r; life < first {
				first = life
			}
		}
		samples[t] = first
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	q := func(p float64) float64 {
		i := int(p * float64(trials))
		if i >= trials {
			i = trials - 1
		}
		return samples[i]
	}
	return VarResult{
		Trials:                  trials,
		MeanIterations:          sum / float64(trials),
		P05:                     q(0.05),
		P95:                     q(0.95),
		DeterministicIterations: m.MedianEndurance / maxRate,
	}, nil
}

// Seconds converts an iteration count to wall-clock time for a benchmark
// with the given sequential step count.
func (m VarModel) Seconds(iterations float64, stepsPerIteration int) float64 {
	return iterations * float64(stepsPerIteration) * m.StepSeconds
}
