package lifetime

import (
	"fmt"
	"math"
	"math/rand"

	"pimendure/internal/fleet"
	"pimendure/internal/stats"
)

// The paper assumes identical endurance for every cell and notes this is
// pessimistic: "the actual endurance is more likely to vary across cells
// (our approach can be thought of as using the average endurance for the
// expected lifetime)" (§4). This file quantifies that caveat: cell
// endurance is drawn from a lognormal distribution around the nominal
// value and the first-failure time becomes a random variable whose
// quantiles we estimate by Monte Carlo — through the order-statistic
// fleet engine (internal/fleet), which collapses the per-cell draw loop
// into O(1) hazard inversions per trial. The original per-cell sampler
// survives as FirstFailureReference, the cross-validation baseline the
// fleet engine's KS acceptance tests run against.

// VarModel is a lifetime model with lognormal per-cell endurance
// variability.
type VarModel struct {
	// MedianEndurance is the nominal writes-to-failure (the lognormal's
	// median, exp(µ)).
	MedianEndurance float64
	// Sigma is the lognormal shape parameter (σ of ln endurance); 0.3–1
	// covers reported NVM endurance spreads.
	Sigma float64
	// StepSeconds is the device time per sequential operation.
	StepSeconds float64
}

// VarResult summarizes the Monte Carlo first-failure distribution, in
// benchmark iterations.
type VarResult struct {
	Trials int
	// MeanIterations is the expected iterations to first cell failure.
	MeanIterations float64
	// P05 and P95 bound the central 90% of the distribution.
	P05, P95 float64
	// DeterministicIterations is the uniform-endurance (Eq. 4) value for
	// comparison: MedianEndurance / max writes-per-iteration.
	DeterministicIterations float64
}

// validate checks the model and call parameters shared by both
// samplers.
func (m VarModel) validate(iterations, trials int) error {
	if m.MedianEndurance <= 0 || m.StepSeconds <= 0 {
		return fmt.Errorf("lifetime: non-positive model parameters %+v", m)
	}
	if m.Sigma < 0 {
		return fmt.Errorf("lifetime: negative sigma %v", m.Sigma)
	}
	if iterations <= 0 || trials <= 0 {
		return fmt.Errorf("lifetime: iterations and trials must be positive")
	}
	return nil
}

// FirstFailure Monte-Carlo samples the iterations until the first cell
// failure for a write distribution accumulated over `iterations`
// iterations: each trial is one simulated device whose every written
// cell draws an endurance, and the trial value is min over cells of
// endurance/writesPerIteration. Unwritten cells never fail.
//
// Trials run on the fleet engine: cells are collapsed into
// distinct-count groups and each device is a single inversion of the
// closed-form minimum distribution — no per-cell draws, no sort, no
// per-call allocation churn (the sample buffer is pooled, quantiles
// come from a radix select). FirstFailureReference keeps the original
// per-cell loop for cross-validation.
func (m VarModel) FirstFailure(counts []uint64, iterations, trials int, seed int64) (VarResult, error) {
	if err := m.validate(iterations, trials); err != nil {
		return VarResult{}, err
	}
	g, err := fleet.GroupCounts(counts, iterations)
	if err != nil {
		return VarResult{}, fmt.Errorf("lifetime: %w", err)
	}
	fm := fleet.Model{MedianEndurance: m.MedianEndurance, Sigma: m.Sigma}
	res, err := fm.Survive(g, fleet.Params{
		Devices:   trials,
		Seed:      seed,
		Workers:   1,
		Quantiles: []float64{0.05, 0.95},
	})
	if err != nil {
		return VarResult{}, fmt.Errorf("lifetime: %w", err)
	}
	return VarResult{
		Trials:                  trials,
		MeanIterations:          res.Mean,
		P05:                     res.Quantiles[0],
		P95:                     res.Quantiles[1],
		DeterministicIterations: res.DeterministicIterations,
	}, nil
}

// FirstFailureReference is the original O(cells × trials) per-cell
// sampler: one lognormal endurance draw for every written cell of every
// trial. It is kept as the statistical baseline the fleet engine is
// cross-validated against (KS acceptance in internal/fleet) and is far
// too slow for fleet-scale populations — use FirstFailure.
func (m VarModel) FirstFailureReference(counts []uint64, iterations, trials int, seed int64) (VarResult, error) {
	if err := m.validate(iterations, trials); err != nil {
		return VarResult{}, err
	}
	// Per-iteration write rates of the written cells only.
	rates := make([]float64, 0, len(counts))
	var maxRate float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		r := float64(c) / float64(iterations)
		rates = append(rates, r)
		if r > maxRate {
			maxRate = r
		}
	}
	if len(rates) == 0 {
		return VarResult{}, fmt.Errorf("lifetime: distribution has no written cells")
	}

	l := stats.LognormalMedian(m.MedianEndurance, m.Sigma)
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, trials)
	gmin, gmax := math.Inf(1), math.Inf(-1)
	var sum float64
	for t := range samples {
		first := math.Inf(1)
		for _, r := range rates {
			if life := l.Draw(rng) / r; life < first {
				first = life
			}
		}
		samples[t] = first
		sum += first
		gmin = math.Min(gmin, first)
		gmax = math.Max(gmax, first)
	}
	p05, work := stats.PercentileRadixFloat(samples, 0.05, gmin, gmax, nil)
	p95, _ := stats.PercentileRadixFloat(samples, 0.95, gmin, gmax, work)
	return VarResult{
		Trials:                  trials,
		MeanIterations:          sum / float64(trials),
		P05:                     p05,
		P95:                     p95,
		DeterministicIterations: m.MedianEndurance / maxRate,
	}, nil
}

// Seconds converts an iteration count to wall-clock time for a benchmark
// with the given sequential step count.
func (m VarModel) Seconds(iterations float64, stepsPerIteration int) float64 {
	return iterations * float64(stepsPerIteration) * m.StepSeconds
}
