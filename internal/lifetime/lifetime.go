// Package lifetime implements the paper's array lifetime model: Eq. 4
// (time to first cell failure given a write distribution), and the Eq. 1 /
// Eq. 2 perfectly-balanced upper bounds of §3.1.
//
// The model deliberately assumes identical endurance for every cell, which
// the paper notes is pessimistic (it is equivalent to using the mean of
// the real endurance distribution), and treats the first cell failure as
// the failure of the whole array, because even a few failed cells disrupt
// operation severely (§3.3).
package lifetime

import (
	"fmt"
	"math"
)

// SecondsPerDay converts the model's seconds into the paper's headline
// unit.
const SecondsPerDay = 86400

// Model carries the two device scalars lifetime depends on.
type Model struct {
	// Endurance is writes-to-failure per cell (10¹² for the paper's MTJ
	// assumption).
	Endurance float64
	// StepSeconds is the device time per sequential array operation
	// (3 ns in the paper).
	StepSeconds float64
}

// Result is a lifetime estimate for a benchmark running back to back.
type Result struct {
	// IterationsToFailure is Endurance / max writes-per-iteration: how
	// many benchmark repetitions complete before the hottest cell dies.
	IterationsToFailure float64
	// Seconds = IterationsToFailure × iteration latency (Eq. 4).
	Seconds float64
}

// Days returns the lifetime in days.
func (r Result) Days() float64 { return r.Seconds / SecondsPerDay }

// String formats the estimate.
func (r Result) String() string {
	return fmt.Sprintf("%.3g iterations, %.3g days", r.IterationsToFailure, r.Days())
}

// Estimate applies Eq. 4: Lifetime = CellEndurance / max(WriteCount) ×
// ApplicationLatency, where maxWritesPerIteration is the hottest cell's
// writes per benchmark iteration and stepsPerIteration is the benchmark's
// sequential operation count.
func (m Model) Estimate(maxWritesPerIteration float64, stepsPerIteration int) (Result, error) {
	if m.Endurance <= 0 || m.StepSeconds <= 0 {
		return Result{}, fmt.Errorf("lifetime: non-positive model parameters %+v", m)
	}
	if maxWritesPerIteration <= 0 {
		return Result{}, fmt.Errorf("lifetime: benchmark writes no cells (max writes/iteration = %v)", maxWritesPerIteration)
	}
	if stepsPerIteration <= 0 {
		return Result{}, fmt.Errorf("lifetime: non-positive iteration latency %d", stepsPerIteration)
	}
	iters := m.Endurance / maxWritesPerIteration
	return Result{
		IterationsToFailure: iters,
		Seconds:             iters * float64(stepsPerIteration) * m.StepSeconds,
	}, nil
}

// ProjectIterations extrapolates a live wear sample to Eq. 4's
// iterations-to-failure: given the hottest cell's accumulated writes
// after some iterations, it assumes the current per-iteration wear rate
// holds and returns endurance / (maxWrites/iterations) — the quantity a
// telemetry sampler can report while a simulation is still running. It
// returns +Inf when nothing has been written yet (no wear, no failure)
// and NaN on non-positive iterations or endurance.
func ProjectIterations(maxWrites float64, iterations int64, endurance float64) float64 {
	if iterations <= 0 || endurance <= 0 {
		return math.NaN()
	}
	if maxWrites <= 0 {
		return math.Inf(1)
	}
	return endurance / (maxWrites / float64(iterations))
}

// Improvement returns how much longer a balanced configuration lives than
// a baseline with the same latency: maxBaseline / maxBalanced (Fig. 17's
// y-axis). It is NaN if either distribution is empty.
func Improvement(maxWritesBaseline, maxWritesBalanced float64) float64 {
	if maxWritesBaseline <= 0 || maxWritesBalanced <= 0 {
		return math.NaN()
	}
	return maxWritesBaseline / maxWritesBalanced
}

// UpperBoundOps is Eq. 1: the total number of operations an R×L array
// sustains under perfect load balancing, when each operation costs
// writesPerOp cell writes: R·L·Endurance / writesPerOp. For the paper's
// example (1024², 10¹², a 9 824-write multiplication) this is 1.07×10¹⁴.
func UpperBoundOps(rows, lanes int, endurance, writesPerOp float64) float64 {
	return float64(rows) * float64(lanes) * endurance / writesPerOp
}

// UpperBoundSeconds is Eq. 2: time to total break-down at full utilization
// — R·L·Endurance total writes consumed by `lanes` parallel lanes, each
// writing one cell per step: R·L·E / (lanes / step) seconds. For the
// paper's example (1024², 10¹², 3 ns) this is 3 072 000 s ≈ 35.56 days.
func UpperBoundSeconds(rows, lanes int, endurance, stepSeconds float64) float64 {
	writesPerSecond := float64(lanes) / stepSeconds
	return float64(rows) * float64(lanes) * endurance / writesPerSecond
}
