package lifetime

import (
	"math"
	"testing"
)

func TestVarModelZeroSigmaMatchesDeterministic(t *testing.T) {
	m := VarModel{MedianEndurance: 1e6, Sigma: 0, StepSeconds: 3e-9}
	counts := []uint64{100, 50, 0, 10}
	res, err := m.FirstFailure(counts, 10, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With no variability every trial equals endurance / max rate.
	want := 1e6 / 10.0
	if math.Abs(res.MeanIterations-want) > 1e-6*want {
		t.Errorf("mean = %g, want %g", res.MeanIterations, want)
	}
	if res.P05 != res.P95 {
		t.Error("zero-sigma quantiles should coincide")
	}
	if math.Abs(res.DeterministicIterations-want) > 1e-9 {
		t.Errorf("deterministic = %g, want %g", res.DeterministicIterations, want)
	}
}

// Variability across many competing cells makes the *minimum* fail
// earlier than the uniform-endurance model — the paper's pessimism caveat
// actually cuts the other way for first-failure.
func TestVariabilityShortensFirstFailure(t *testing.T) {
	m := VarModel{MedianEndurance: 1e6, Sigma: 0.7, StepSeconds: 3e-9}
	counts := make([]uint64, 1000)
	for i := range counts {
		counts[i] = 100 // perfectly balanced: 1000 competing cells
	}
	res, err := m.FirstFailure(counts, 10, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIterations >= res.DeterministicIterations {
		t.Errorf("min over varying cells (%g) should undercut deterministic (%g)",
			res.MeanIterations, res.DeterministicIterations)
	}
	if !(res.P05 < res.MeanIterations && res.MeanIterations < res.P95) {
		t.Errorf("quantiles disordered: %g %g %g", res.P05, res.MeanIterations, res.P95)
	}
}

// More spread ⇒ earlier first failure (stochastic ordering of minima).
func TestSigmaMonotonicity(t *testing.T) {
	counts := make([]uint64, 500)
	for i := range counts {
		counts[i] = 10
	}
	prev := math.Inf(1)
	for _, sigma := range []float64{0.2, 0.5, 1.0} {
		m := VarModel{MedianEndurance: 1e8, Sigma: sigma, StepSeconds: 3e-9}
		res, err := m.FirstFailure(counts, 10, 150, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanIterations >= prev {
			t.Errorf("sigma %v: mean %g did not decrease (prev %g)", sigma, res.MeanIterations, prev)
		}
		prev = res.MeanIterations
	}
}

// Unwritten cells must never fail: a distribution with one written cell
// behaves like a single lognormal draw whose mean exceeds the median.
func TestSingleHotCell(t *testing.T) {
	m := VarModel{MedianEndurance: 1e6, Sigma: 0.5, StepSeconds: 3e-9}
	counts := []uint64{0, 0, 1000, 0}
	res, err := m.FirstFailure(counts, 10, 4000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// E[lognormal] = median·exp(σ²/2) > median: the mean over trials of a
	// single cell's life should exceed the deterministic value.
	if res.MeanIterations <= res.DeterministicIterations {
		t.Errorf("single-cell mean %g should exceed deterministic %g (lognormal mean > median)",
			res.MeanIterations, res.DeterministicIterations)
	}
}

// TestFleetMatchesReference cross-validates the fleet-backed sampler
// against the kept per-cell reference loop: same model, same
// distribution, statistically indistinguishable mean and quantiles.
// (The distribution-level KS acceptance lives in internal/fleet; this
// pins the wiring through VarModel.)
func TestFleetMatchesReference(t *testing.T) {
	m := VarModel{MedianEndurance: 1e6, Sigma: 0.5, StepSeconds: 3e-9}
	counts := make([]uint64, 200)
	for i := range counts {
		counts[i] = uint64(10 + i%17)
	}
	const trials = 20000
	fast, err := m.FirstFailure(counts, 10, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.FirstFailureReference(counts, 10, trials, 2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b float64) {
		if math.Abs(a-b) > 0.03*b {
			t.Errorf("%s: fleet %g vs reference %g", name, a, b)
		}
	}
	check("mean", fast.MeanIterations, ref.MeanIterations)
	check("p05", fast.P05, ref.P05)
	check("p95", fast.P95, ref.P95)
	if fast.DeterministicIterations != ref.DeterministicIterations {
		t.Errorf("deterministic: %g vs %g", fast.DeterministicIterations, ref.DeterministicIterations)
	}
	if fast.Trials != trials || ref.Trials != trials {
		t.Error("trial counts not reported")
	}
}

// The reference sampler must enforce the same validation envelope as
// the fast path.
func TestReferenceValidation(t *testing.T) {
	good := VarModel{MedianEndurance: 1e6, Sigma: 0.5, StepSeconds: 3e-9}
	if _, err := (VarModel{Sigma: 0.5, StepSeconds: 1}).FirstFailureReference([]uint64{1}, 1, 1, 1); err == nil {
		t.Error("zero endurance accepted")
	}
	if _, err := good.FirstFailureReference([]uint64{0}, 1, 1, 1); err == nil {
		t.Error("unwritten distribution accepted")
	}
}

func TestVarModelValidation(t *testing.T) {
	good := VarModel{MedianEndurance: 1e6, Sigma: 0.5, StepSeconds: 3e-9}
	if _, err := (VarModel{Sigma: 0.5, StepSeconds: 1}).FirstFailure([]uint64{1}, 1, 1, 1); err == nil {
		t.Error("zero endurance accepted")
	}
	if _, err := (VarModel{MedianEndurance: 1, Sigma: -1, StepSeconds: 1}).FirstFailure([]uint64{1}, 1, 1, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := good.FirstFailure([]uint64{1}, 0, 1, 1); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := good.FirstFailure([]uint64{0, 0}, 1, 1, 1); err == nil {
		t.Error("unwritten distribution accepted")
	}
	if s := good.Seconds(100, 1000); math.Abs(s-100*1000*3e-9) > 1e-12 {
		t.Errorf("Seconds = %g", s)
	}
}
