package lifetime

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Abs(b)
}

// Eq. 1 of the paper: a 1024×1024 array at 10¹² endurance performs at most
// 1.07×10¹⁴ 32-bit multiplications (9 824 writes each).
func TestEq1UpperBoundOps(t *testing.T) {
	got := UpperBoundOps(1024, 1024, 1e12, 9824)
	if !almost(got, 1.07e14, 0.005) {
		t.Errorf("Eq.1 = %.4g, want 1.07e14", got)
	}
}

// Eq. 2: at full utilization and 3 ns per gate, total break-down takes
// 3 072 000 s = 35.56 days.
func TestEq2UpperBoundSeconds(t *testing.T) {
	got := UpperBoundSeconds(1024, 1024, 1e12, 3e-9)
	if !almost(got, 3072000, 1e-9) {
		t.Errorf("Eq.2 = %v s, want 3072000", got)
	}
	days := got / SecondsPerDay
	if !almost(days, 35.56, 0.001) {
		t.Errorf("Eq.2 = %.2f days, want 35.56", days)
	}
}

// §3.1: with RRAM endurance of ~10⁸, time to failure is just over 5
// minutes.
func TestRRAMFiveMinutes(t *testing.T) {
	got := UpperBoundSeconds(1024, 1024, 1e8, 3e-9)
	if got < 300 || got > 330 {
		t.Errorf("RRAM upper bound = %v s, want just over 5 minutes", got)
	}
}

func TestEstimateEq4(t *testing.T) {
	m := Model{Endurance: 1e12, StepSeconds: 3e-9}
	// A benchmark writing its hottest cell 10 times per iteration with a
	// 1000-step latency: 1e11 iterations × 3 µs = 3e5 s.
	r, err := m.Estimate(10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.IterationsToFailure, 1e11, 1e-12) {
		t.Errorf("iterations = %g", r.IterationsToFailure)
	}
	if !almost(r.Seconds, 3e5, 1e-12) {
		t.Errorf("seconds = %g", r.Seconds)
	}
	if !almost(r.Days(), 3e5/86400, 1e-12) {
		t.Errorf("days = %g", r.Days())
	}
	if r.String() == "" {
		t.Error("empty string form")
	}
}

func TestEstimateErrors(t *testing.T) {
	good := Model{Endurance: 1e12, StepSeconds: 3e-9}
	if _, err := (Model{Endurance: 0, StepSeconds: 1}).Estimate(1, 1); err == nil {
		t.Error("zero endurance accepted")
	}
	if _, err := good.Estimate(0, 1); err == nil {
		t.Error("zero writes accepted")
	}
	if _, err := good.Estimate(1, 0); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 50); got != 2 {
		t.Errorf("improvement = %v, want 2", got)
	}
	if !math.IsNaN(Improvement(0, 5)) || !math.IsNaN(Improvement(5, 0)) {
		t.Error("degenerate improvements should be NaN")
	}
}

// Lifetime scales linearly with endurance and inversely with the hottest
// cell's write rate — the two levers the paper's conclusion discusses.
func TestScalingProperties(t *testing.T) {
	m := Model{Endurance: 1e9, StepSeconds: 3e-9}
	base, _ := m.Estimate(20, 500)
	double, _ := Model{Endurance: 2e9, StepSeconds: 3e-9}.Estimate(20, 500)
	if !almost(double.Seconds, 2*base.Seconds, 1e-12) {
		t.Error("lifetime not linear in endurance")
	}
	balanced, _ := m.Estimate(10, 500)
	if !almost(balanced.Seconds, 2*base.Seconds, 1e-12) {
		t.Error("lifetime not inverse in max write rate")
	}
}

// ProjectIterations extrapolates live wear samples onto Eq. 4: halfway
// through a run it must predict the same iterations-to-failure as the
// final estimate when wear accrues linearly.
func TestProjectIterations(t *testing.T) {
	// 20 writes to the hottest cell per iteration, endurance 1e9: Eq. 4
	// gives 5e7 iterations regardless of when we look.
	if got := ProjectIterations(20*500, 500, 1e9); !almost(got, 5e7, 1e-12) {
		t.Errorf("mid-run projection = %v, want 5e7", got)
	}
	if got := ProjectIterations(20*1000, 1000, 1e9); !almost(got, 5e7, 1e-12) {
		t.Errorf("end-of-run projection = %v, want 5e7", got)
	}
	if got := ProjectIterations(0, 100, 1e9); !math.IsInf(got, 1) {
		t.Errorf("no wear should project +Inf, got %v", got)
	}
	if !math.IsNaN(ProjectIterations(5, 0, 1e9)) || !math.IsNaN(ProjectIterations(5, 10, 0)) {
		t.Error("degenerate inputs should be NaN")
	}
}
