package program

import (
	"testing"
	"testing/quick"

	"pimendure/internal/gates"
)

func TestAllocLowestFirst(t *testing.T) {
	b := NewBuilder(1, 64)
	b.SetAllocPolicy(LowestFirst)
	bits := b.AllocN(4)
	for i, bit := range bits {
		if bit != Bit(i) {
			t.Fatalf("alloc %d = %d, want %d", i, bit, i)
		}
	}
	b.Free(bits[1])
	b.Free(bits[3])
	// Lowest freed address must be reused first.
	if got := b.Alloc(); got != 1 {
		t.Errorf("reuse = %d, want 1", got)
	}
	if got := b.Alloc(); got != 3 {
		t.Errorf("reuse = %d, want 3", got)
	}
	// Then fresh addresses.
	if got := b.Alloc(); got != 4 {
		t.Errorf("fresh = %d, want 4", got)
	}
}

func TestAllocNextFitRotates(t *testing.T) {
	b := NewBuilder(1, 8)
	if b.AllocPolicy() != NextFit {
		t.Fatal("default policy should be next-fit")
	}
	bits := b.AllocN(4) // 0,1,2,3
	b.Free(bits[0], bits[1], bits[2], bits[3])
	// Next-fit continues past the freed region rather than reusing it.
	if got := b.Alloc(); got != 4 {
		t.Errorf("next-fit alloc = %d, want 4", got)
	}
	b.AllocN(3) // 5,6,7
	// Wraps to the freed low addresses.
	if got := b.Alloc(); got != 0 {
		t.Errorf("wrapped alloc = %d, want 0", got)
	}
	if got := b.Alloc(); got != 1 {
		t.Errorf("wrapped alloc = %d, want 1", got)
	}
}

func TestAllocNextFitSkipsLive(t *testing.T) {
	b := NewBuilder(1, 4)
	bits := b.AllocN(4)
	b.Free(bits[1]) // only bit 1 free; cursor at wrap
	if got := b.Alloc(); got != 1 {
		t.Errorf("alloc = %d, want the only free bit 1", got)
	}
}

func TestAllocPolicyString(t *testing.T) {
	if NextFit.String() == LowestFirst.String() {
		t.Error("policy names collide")
	}
}

func TestLiveAndMaxLive(t *testing.T) {
	b := NewBuilder(1, 64)
	x := b.AllocN(5)
	if b.Live() != 5 || b.MaxLive() != 5 {
		t.Fatalf("live %d maxlive %d", b.Live(), b.MaxLive())
	}
	b.Free(x[0], x[1], x[2])
	if b.Live() != 2 || b.MaxLive() != 5 {
		t.Fatalf("after free: live %d maxlive %d", b.Live(), b.MaxLive())
	}
	b.AllocN(2)
	if b.MaxLive() != 5 {
		t.Fatalf("maxlive should still be 5, got %d", b.MaxLive())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	b := NewBuilder(1, 8)
	x := b.Alloc()
	b.Free(x)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	b.Free(x)
}

func TestCapacityExhaustionPanics(t *testing.T) {
	b := NewBuilder(1, 3)
	b.AllocN(3)
	defer func() {
		if recover() == nil {
			t.Error("capacity exhaustion should panic")
		}
	}()
	b.Alloc()
}

func TestUseOfUnallocatedBitPanics(t *testing.T) {
	b := NewBuilder(1, 8)
	x := b.Alloc()
	y := b.Alloc()
	b.Free(y)
	defer func() {
		if recover() == nil {
			t.Error("gate on freed bit should panic")
		}
	}()
	b.Gate(gates.AND, x, y)
}

func TestGateEmission(t *testing.T) {
	b := NewBuilder(8, 32)
	x := b.Alloc()
	y := b.Alloc()
	out := b.Gate(gates.NAND, x, y)
	n := b.Not(out)
	c := b.Copy(n)
	tr := b.Trace()
	if len(tr.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(tr.Ops))
	}
	if tr.Ops[0].Gate != gates.NAND || tr.Ops[0].Out != out {
		t.Error("NAND op malformed")
	}
	if tr.Ops[1].Gate != gates.NOT || tr.Ops[1].In1 != NoBit {
		t.Error("NOT op should have no second input")
	}
	if tr.Ops[2].Gate != gates.COPY || tr.Ops[2].Out != c {
		t.Error("COPY op malformed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadVectors(t *testing.T) {
	b := NewBuilder(4, 64)
	bits, slot0 := b.WriteVector(8)
	if len(bits) != 8 || slot0 != 0 {
		t.Fatalf("WriteVector: %d bits, slot %d", len(bits), slot0)
	}
	r0 := b.ReadVector(bits)
	if r0 != 0 {
		t.Fatalf("ReadVector first slot = %d", r0)
	}
	tr := b.Trace()
	if tr.WriteSlots != 8 || tr.ReadSlots != 8 {
		t.Fatalf("slots: w%d r%d", tr.WriteSlots, tr.ReadSlots)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveVectorAllocates(t *testing.T) {
	b := NewBuilder(8, 64)
	src := b.AllocN(4)
	b.SetMask(RangeMask(8, 0, 4))
	dst := b.MoveVector(src, nil, 4)
	if len(dst) != 4 {
		t.Fatalf("dst len = %d", len(dst))
	}
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, op := range tr.Ops {
		if op.Kind == OpMove {
			moves++
			if op.LaneShift != 4 {
				t.Errorf("lane shift = %d, want 4", op.LaneShift)
			}
		}
	}
	if moves != 4 {
		t.Errorf("moves = %d, want 4", moves)
	}
}

func TestMoveVectorLengthMismatchPanics(t *testing.T) {
	b := NewBuilder(8, 64)
	src := b.AllocN(4)
	dst := b.AllocN(3)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	b.MoveVector(src, dst, 0)
}

func TestSetMaskAffectsOps(t *testing.T) {
	b := NewBuilder(16, 16)
	x := b.Alloc()
	b.Write(x)
	half := RangeMask(16, 0, 8)
	b.SetMask(half)
	b.Write(x)
	b.SetFullMask()
	b.Write(x)
	tr := b.Trace()
	if !tr.Mask(tr.Ops[0].Mask).Full() {
		t.Error("first op should be full-mask")
	}
	if tr.Mask(tr.Ops[1].Mask).Count() != 8 {
		t.Error("second op should be half-mask")
	}
	if !tr.Mask(tr.Ops[2].Mask).Full() {
		t.Error("third op should be full-mask again")
	}
	if len(tr.Masks) != 2 {
		t.Errorf("mask table = %d entries, want 2 (full deduped)", len(tr.Masks))
	}
}

// Property: after any interleaving of allocs and frees, the set of
// addresses handed out and not yet freed is exactly the builder's live set,
// and no address is ever handed out twice while live.
func TestAllocatorNoAliasingProperty(t *testing.T) {
	f := func(script []byte, lowestFirst bool) bool {
		b := NewBuilder(1, 512)
		if lowestFirst {
			b.SetAllocPolicy(LowestFirst)
		}
		live := map[Bit]bool{}
		order := []Bit{}
		for _, cmd := range script {
			if cmd%3 == 0 && len(order) > 0 {
				// free the oldest live bit
				var victim Bit = -1
				for _, bit := range order {
					if live[bit] {
						victim = bit
						break
					}
				}
				if victim >= 0 {
					b.Free(victim)
					delete(live, victim)
				}
			} else {
				bit := b.Alloc()
				if live[bit] {
					return false // aliasing!
				}
				live[bit] = true
				order = append(order, bit)
			}
		}
		return b.Live() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
