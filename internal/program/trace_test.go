package program

import (
	"strings"
	"testing"

	"pimendure/internal/gates"
)

func TestOpSteps(t *testing.T) {
	gate := Op{Kind: OpGate, Gate: gates.NAND}
	if gate.Steps(false) != 1 || gate.Steps(true) != 2 {
		t.Error("gate steps wrong")
	}
	mv := Op{Kind: OpMove}
	if mv.Steps(false) != 2 || mv.Steps(true) != 2 {
		t.Error("move steps wrong")
	}
	for _, k := range []OpKind{OpWrite, OpRead} {
		op := Op{Kind: k}
		if op.Steps(false) != 1 || op.Steps(true) != 1 {
			t.Errorf("%v steps wrong", k)
		}
	}
}

func TestOpCellCosts(t *testing.T) {
	cases := []struct {
		op                       Op
		writes, writesPre, reads int
	}{
		{Op{Kind: OpGate, Gate: gates.NAND}, 1, 2, 2},
		{Op{Kind: OpGate, Gate: gates.NOT}, 1, 2, 1},
		{Op{Kind: OpWrite}, 1, 1, 0},
		{Op{Kind: OpRead}, 0, 0, 1},
		{Op{Kind: OpMove}, 1, 1, 1},
	}
	for _, c := range cases {
		if got := c.op.WritesPerLane(false); got != c.writes {
			t.Errorf("%v writes = %d, want %d", c.op.Kind, got, c.writes)
		}
		if got := c.op.WritesPerLane(true); got != c.writesPre {
			t.Errorf("%v writes(preset) = %d, want %d", c.op.Kind, got, c.writesPre)
		}
		if got := c.op.ReadsPerLane(); got != c.reads {
			t.Errorf("%v reads = %d, want %d", c.op.Kind, got, c.reads)
		}
	}
}

func TestTraceMaskDedup(t *testing.T) {
	tr := NewTrace(64)
	a := tr.AddMask(RangeMask(64, 0, 32))
	b := tr.AddMask(RangeMask(64, 0, 32))
	c := tr.AddMask(RangeMask(64, 32, 64))
	if a != b {
		t.Error("identical masks got different ids")
	}
	if a == c {
		t.Error("distinct masks share an id")
	}
	if len(tr.Masks) != 2 {
		t.Errorf("mask table has %d entries, want 2", len(tr.Masks))
	}
}

func TestTraceMaskSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic adding wrong-size mask")
		}
	}()
	NewTrace(8).AddMask(FullMask(16))
}

// A tiny hand-built trace: write two bits, NAND them, read result, move it.
func buildTinyTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder(4, 16)
	x := b.Alloc()
	y := b.Alloc()
	b.Write(x)
	b.Write(y)
	out := b.Gate(gates.NAND, x, y)
	b.SetMask(RangeMask(4, 0, 2))
	b.Move(out, x, 2) // lanes 0,1 receive from lanes 2,3
	b.Read(x)
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("tiny trace invalid: %v", err)
	}
	return tr
}

func TestTraceCounts(t *testing.T) {
	tr := buildTinyTrace(t)
	// writes: 2 OpWrite×4 lanes + 1 gate×4 + 1 move×2 = 14 (no preset)
	if got := tr.CellWrites(false); got != 14 {
		t.Errorf("CellWrites(false) = %d, want 14", got)
	}
	// preset adds 1 more write per gate per lane: +4
	if got := tr.CellWrites(true); got != 18 {
		t.Errorf("CellWrites(true) = %d, want 18", got)
	}
	// reads: gate 2×4 + move 1×2 + read 1×2 = 12
	if got := tr.CellReads(); got != 12 {
		t.Errorf("CellReads = %d, want 12", got)
	}
	// steps: 2 writes + 1 gate + 2 (move) + 1 read = 6
	if got := tr.Steps(false); got != 6 {
		t.Errorf("Steps(false) = %d, want 6", got)
	}
	if got := tr.Steps(true); got != 7 {
		t.Errorf("Steps(true) = %d, want 7", got)
	}
}

func TestTraceStats(t *testing.T) {
	tr := buildTinyTrace(t)
	st := tr.ComputeStats(false)
	if st.Gates != 1 || st.Writes != 2 || st.Reads != 1 || st.Moves != 1 {
		t.Errorf("stats op counts wrong: %+v", st)
	}
	if st.Steps != 6 || st.CellWrites != 14 || st.CellReads != 12 {
		t.Errorf("stats totals wrong: %+v", st)
	}
	// utilization: (3 steps full ×4 lanes + 3 steps ×2 lanes) / (6×4)
	want := (3.0*4 + 3.0*2) / (6.0 * 4)
	if diff := st.Utilization - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("utilization = %v, want %v", st.Utilization, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Trace { return buildTinyTrace(t) }

	tr := mk()
	tr.Ops[2].Gate = gates.Kind(99)
	if err := tr.Validate(); err == nil {
		t.Error("invalid gate kind not caught")
	}

	tr = mk()
	tr.Ops[2].In1 = Bit(tr.LaneBits + 5)
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range operand not caught")
	}

	tr = mk()
	tr.Ops[3].LaneShift = 100
	if err := tr.Validate(); err == nil {
		t.Error("out-of-array move source not caught")
	}

	tr = mk()
	tr.Ops[0].Data = 99
	if err := tr.Validate(); err == nil {
		t.Error("bad write slot not caught")
	}

	tr = mk()
	tr.Ops[2].Mask = 57
	if err := tr.Validate(); err == nil {
		t.Error("bad mask id not caught")
	}
}

func TestOpString(t *testing.T) {
	tr := buildTinyTrace(t)
	for _, op := range tr.Ops {
		if s := op.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("op %v has bad string %q", op.Kind, s)
		}
	}
	kinds := []OpKind{OpGate, OpWrite, OpRead, OpMove}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k.String())
		}
		seen[k.String()] = true
	}
}
