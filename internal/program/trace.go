package program

import (
	"fmt"
)

// Trace is a compiled PIM program: a strictly sequential list of array
// operations, the lane masks they use, and the logical bit footprint per
// lane. A trace is structural — operand values are supplied at execution
// time through data slots — so the same trace is re-executed for every
// iteration of a benchmark.
type Trace struct {
	// Lanes is the number of lanes the program spans (the array dimension
	// perpendicular to the bit addresses).
	Lanes int
	// LaneBits is the number of logical bit addresses used per lane (the
	// program's footprint in the other array dimension).
	LaneBits int
	// Masks is the deduplicated lane-mask table referenced by ops.
	Masks []*Mask
	// Ops is the sequential operation list.
	Ops []Op
	// WriteSlots and ReadSlots are the number of external data slots
	// consumed by OpWrite and produced by OpRead ops.
	WriteSlots int
	ReadSlots  int

	maskIndex map[string]MaskID
}

// NewTrace returns an empty trace over the given number of lanes.
func NewTrace(lanes int) *Trace {
	if lanes <= 0 {
		panic("program: trace must have at least one lane")
	}
	return &Trace{Lanes: lanes, maskIndex: make(map[string]MaskID)}
}

// AddMask interns a mask and returns its ID. Masks with identical
// membership share one ID, which the wear engine exploits: ops sharing a
// mask form a "phase" with a rank-1 write-count contribution.
func (t *Trace) AddMask(m *Mask) MaskID {
	if m.Len() != t.Lanes {
		panic(fmt.Sprintf("program: mask over %d lanes added to %d-lane trace", m.Len(), t.Lanes))
	}
	if t.maskIndex == nil {
		t.maskIndex = make(map[string]MaskID)
		for i, em := range t.Masks {
			t.maskIndex[em.key()] = MaskID(i)
		}
	}
	k := m.key()
	if id, ok := t.maskIndex[k]; ok {
		return id
	}
	id := MaskID(len(t.Masks))
	t.Masks = append(t.Masks, m.Clone())
	t.maskIndex[k] = id
	return id
}

// Mask returns the mask for an ID.
func (t *Trace) Mask(id MaskID) *Mask {
	return t.Masks[id]
}

// Append adds an op, growing LaneBits to cover its addresses.
func (t *Trace) Append(op Op) {
	for _, b := range [...]Bit{op.Out, op.In0, op.In1} {
		if b != NoBit && int(b) >= t.LaneBits {
			t.LaneBits = int(b) + 1
		}
	}
	t.Ops = append(t.Ops, op)
}

// Steps returns total sequential latency in time steps. With a fixed
// per-step device time (3 ns in the paper) this is the application latency
// of Eq. 4.
func (t *Trace) Steps(presetOutputs bool) int {
	s := 0
	for _, op := range t.Ops {
		s += op.Steps(presetOutputs)
	}
	return s
}

// CellWrites returns the total number of memory-cell write operations one
// execution of the trace performs, summed over all lanes.
func (t *Trace) CellWrites(presetOutputs bool) int64 {
	var n int64
	for _, op := range t.Ops {
		n += int64(op.WritesPerLane(presetOutputs)) * int64(t.Masks[op.Mask].Count())
	}
	return n
}

// CellReads returns the total number of memory-cell read operations one
// execution of the trace performs, summed over all lanes.
func (t *Trace) CellReads() int64 {
	var n int64
	for _, op := range t.Ops {
		n += int64(op.ReadsPerLane()) * int64(t.Masks[op.Mask].Count())
	}
	return n
}

// Stats summarizes a trace.
type Stats struct {
	Ops        int
	Gates      int
	Writes     int
	Reads      int
	Moves      int
	Steps      int
	CellWrites int64
	CellReads  int64
	LaneBits   int
	// Utilization is the time-weighted fraction of lanes active
	// (Table 3's "Avg Lane Utilization").
	Utilization float64
}

// ComputeStats derives summary statistics for one execution of the trace.
func (t *Trace) ComputeStats(presetOutputs bool) Stats {
	st := Stats{Ops: len(t.Ops), LaneBits: t.LaneBits}
	var weighted float64
	for _, op := range t.Ops {
		steps := op.Steps(presetOutputs)
		st.Steps += steps
		weighted += float64(steps) * float64(t.Masks[op.Mask].Count())
		switch op.Kind {
		case OpGate:
			st.Gates++
		case OpWrite:
			st.Writes++
		case OpRead:
			st.Reads++
		case OpMove:
			st.Moves++
		}
	}
	st.CellWrites = t.CellWrites(presetOutputs)
	st.CellReads = t.CellReads()
	if st.Steps > 0 && t.Lanes > 0 {
		st.Utilization = weighted / (float64(st.Steps) * float64(t.Lanes))
	}
	return st
}

// Validate checks structural invariants: operand addresses in range, masks
// resolvable, gate arity consistent, move shifts that stay inside the
// array. It returns the first violation found.
func (t *Trace) Validate() error {
	for i, op := range t.Ops {
		if op.Mask < 0 || int(op.Mask) >= len(t.Masks) {
			return fmt.Errorf("op %d (%v): mask id %d out of range", i, op, op.Mask)
		}
		mask := t.Masks[op.Mask]
		inRange := func(b Bit) bool { return b >= 0 && int(b) < t.LaneBits }
		switch op.Kind {
		case OpGate:
			if !op.Gate.Valid() {
				return fmt.Errorf("op %d: invalid gate kind %d", i, op.Gate)
			}
			if !inRange(op.Out) || !inRange(op.In0) {
				return fmt.Errorf("op %d (%v): operand out of range", i, op)
			}
			if op.Gate.Arity() == 2 && !inRange(op.In1) {
				return fmt.Errorf("op %d (%v): missing second input", i, op)
			}
			if op.Gate.Arity() == 1 && op.In1 != NoBit {
				return fmt.Errorf("op %d (%v): unary gate has second input", i, op)
			}
		case OpWrite:
			if !inRange(op.Out) {
				return fmt.Errorf("op %d (%v): write address out of range", i, op)
			}
			if op.Data < 0 || int(op.Data) >= t.WriteSlots {
				return fmt.Errorf("op %d (%v): write slot %d out of range", i, op, op.Data)
			}
		case OpRead:
			if !inRange(op.In0) {
				return fmt.Errorf("op %d (%v): read address out of range", i, op)
			}
			if op.Data < 0 || int(op.Data) >= t.ReadSlots {
				return fmt.Errorf("op %d (%v): read slot %d out of range", i, op, op.Data)
			}
		case OpMove:
			if !inRange(op.Out) || !inRange(op.In0) {
				return fmt.Errorf("op %d (%v): move address out of range", i, op)
			}
			bad := false
			mask.ForEach(func(l int) {
				src := l + int(op.LaneShift)
				if src < 0 || src >= t.Lanes {
					bad = true
				}
			})
			if bad {
				return fmt.Errorf("op %d (%v): source lane outside array", i, op)
			}
		default:
			return fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}
