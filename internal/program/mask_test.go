package program

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if m.Len() != 130 || m.Count() != 0 {
		t.Fatalf("new mask: len %d count %d", m.Len(), m.Count())
	}
	m.Set(0)
	m.Set(64)
	m.Set(129)
	m.Set(129) // idempotent
	if m.Count() != 3 {
		t.Fatalf("count = %d, want 3", m.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !m.Get(i) {
			t.Errorf("lane %d should be set", i)
		}
	}
	if m.Get(1) || m.Get(128) {
		t.Error("unset lanes reported set")
	}
	m.Clear(64)
	m.Clear(64) // idempotent
	if m.Count() != 2 || m.Get(64) {
		t.Error("clear failed")
	}
}

func TestMaskFull(t *testing.T) {
	m := FullMask(100)
	if !m.Full() || m.Count() != 100 {
		t.Fatalf("FullMask: full=%v count=%d", m.Full(), m.Count())
	}
	m.Clear(50)
	if m.Full() {
		t.Error("mask with cleared lane reported full")
	}
}

func TestRangeMask(t *testing.T) {
	m := RangeMask(64, 16, 48)
	if m.Count() != 32 {
		t.Fatalf("count = %d, want 32", m.Count())
	}
	for i := 0; i < 64; i++ {
		want := i >= 16 && i < 48
		if m.Get(i) != want {
			t.Errorf("lane %d = %v, want %v", i, m.Get(i), want)
		}
	}
}

func TestStrideMask(t *testing.T) {
	m := StrideMask(16, 4, 1)
	want := []int{1, 5, 9, 13}
	got := m.Lanes()
	if len(got) != len(want) {
		t.Fatalf("lanes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", got, want)
		}
	}
}

func TestMaskForEachOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewMask(512)
	set := map[int]bool{}
	for i := 0; i < 100; i++ {
		l := r.Intn(512)
		m.Set(l)
		set[l] = true
	}
	prev := -1
	n := 0
	m.ForEach(func(l int) {
		if l <= prev {
			t.Fatalf("ForEach out of order: %d after %d", l, prev)
		}
		if !set[l] {
			t.Fatalf("ForEach visited unset lane %d", l)
		}
		prev = l
		n++
	})
	if n != len(set) {
		t.Fatalf("visited %d lanes, want %d", n, len(set))
	}
}

func TestMaskCloneEqual(t *testing.T) {
	m := RangeMask(200, 3, 77)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(100)
	if m.Equal(c) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if m.Get(100) {
		t.Fatal("clone shares storage with original")
	}
	if m.Equal(RangeMask(201, 3, 77)) {
		t.Fatal("masks of different sizes reported equal")
	}
}

func TestMaskKeyDistinguishes(t *testing.T) {
	a := RangeMask(64, 0, 32)
	b := RangeMask(64, 32, 64)
	if a.key() == b.key() {
		t.Fatal("distinct masks share key")
	}
	if a.key() != RangeMask(64, 0, 32).key() {
		t.Fatal("equal masks have different keys")
	}
}

func TestMaskOutOfRangePanics(t *testing.T) {
	m := NewMask(8)
	for _, fn := range []func(){
		func() { m.Set(8) },
		func() { m.Get(-1) },
		func() { m.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range lane")
				}
			}()
			fn()
		}()
	}
}

// Property: Count always equals the number of lanes ForEach visits,
// whatever sequence of sets and clears was applied.
func TestMaskCountProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMask(256)
		for _, o := range ops {
			lane := int(o % 256)
			if o&0x8000 != 0 {
				m.Clear(lane)
			} else {
				m.Set(lane)
			}
		}
		n := 0
		m.ForEach(func(int) { n++ })
		return n == m.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaskString(t *testing.T) {
	if s := FullMask(8).String(); s != "all(8)" {
		t.Errorf("full mask string = %q", s)
	}
	if s := RangeMask(8, 0, 3).String(); s != "3/8 lanes" {
		t.Errorf("partial mask string = %q", s)
	}
}
