package program

import (
	"container/heap"
	"fmt"

	"pimendure/internal/gates"
)

// AllocPolicy selects how freed logical bits are reused. The policy shapes
// the static write distribution within a lane and is therefore
// load-bearing for the endurance results (an ablation in the benchmark
// suite quantifies it).
type AllocPolicy uint8

const (
	// NextFit hands out the next free address after the last allocation,
	// wrapping around the lane. This matches the paper's simulator ("for
	// each gate in the program, 1 new bit of logical memory is
	// allocated for the output"): workspace traffic rotates through the
	// lane, so even the static layout is only mildly imbalanced.
	NextFit AllocPolicy = iota
	// LowestFirst always reuses the lowest freed address, concentrating
	// workspace traffic in a few hot cells — the adversarial allocator.
	LowestFirst
)

// String names the policy.
func (p AllocPolicy) String() string {
	if p == NextFit {
		return "next-fit"
	}
	return "lowest-first"
}

// bitHeap is a min-heap of freed logical bit addresses for LowestFirst.
type bitHeap []Bit

func (h bitHeap) Len() int            { return len(h) }
func (h bitHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h bitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bitHeap) Push(x interface{}) { *h = append(*h, x.(Bit)) }
func (h *bitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Builder constructs a Trace while managing the logical bit space of a
// lane. Following the paper's simulator (§4): one new logical bit is
// allocated per gate output, and logical bits are freed once no longer
// needed.
type Builder struct {
	trace    *Trace
	capacity int
	policy   AllocPolicy
	free     bitHeap // LowestFirst reuse pool
	inUse    []bool
	high     int // LowestFirst high-water mark for fresh addresses
	cursor   int // NextFit scan position
	maxLive  int
	live     int
	curMask  MaskID
}

// NewBuilder returns a builder over the given number of lanes with the
// given per-lane logical bit capacity (e.g. 1023 on a 1024-row array with
// a spare row for hardware renaming). The allocation policy defaults to
// NextFit and the current mask starts full.
func NewBuilder(lanes, capacity int) *Builder {
	if capacity <= 0 {
		panic("program: capacity must be positive")
	}
	b := &Builder{
		trace:    NewTrace(lanes),
		capacity: capacity,
		inUse:    make([]bool, capacity),
	}
	b.curMask = b.trace.AddMask(FullMask(lanes))
	return b
}

// SetAllocPolicy switches the reuse policy for subsequent allocations.
func (b *Builder) SetAllocPolicy(p AllocPolicy) { b.policy = p }

// AllocPolicy returns the current policy.
func (b *Builder) AllocPolicy() AllocPolicy { return b.policy }

// SetMask makes subsequent ops execute in the given lanes.
func (b *Builder) SetMask(m *Mask) {
	b.curMask = b.trace.AddMask(m)
}

// SetFullMask makes subsequent ops execute in all lanes.
func (b *Builder) SetFullMask() {
	b.curMask = b.trace.AddMask(FullMask(b.trace.Lanes))
}

// CurrentMask returns the mask applied to subsequently emitted ops.
func (b *Builder) CurrentMask() *Mask { return b.trace.Mask(b.curMask) }

// Alloc reserves a free logical bit address according to the policy.
func (b *Builder) Alloc() Bit {
	if b.live >= b.capacity {
		panic(fmt.Sprintf("program: lane capacity %d exhausted", b.capacity))
	}
	var bit Bit
	switch b.policy {
	case NextFit:
		for i := 0; ; i++ {
			idx := (b.cursor + i) % b.capacity
			if !b.inUse[idx] {
				bit = Bit(idx)
				b.cursor = (idx + 1) % b.capacity
				break
			}
		}
	default: // LowestFirst
		if len(b.free) > 0 {
			bit = heap.Pop(&b.free).(Bit)
		} else {
			bit = Bit(b.high)
			b.high++
		}
	}
	b.inUse[bit] = true
	b.live++
	if b.live > b.maxLive {
		b.maxLive = b.live
	}
	return bit
}

// AllocN reserves n bits.
func (b *Builder) AllocN(n int) []Bit {
	out := make([]Bit, n)
	for i := range out {
		out[i] = b.Alloc()
	}
	return out
}

// Free releases logical bits for reuse. Freeing an unallocated bit panics:
// it would silently corrupt the wear analysis.
func (b *Builder) Free(bits ...Bit) {
	for _, bit := range bits {
		if bit < 0 || int(bit) >= b.capacity || !b.inUse[bit] {
			panic(fmt.Sprintf("program: double free or invalid free of bit %d", bit))
		}
		b.inUse[bit] = false
		b.live--
		if b.policy == LowestFirst {
			heap.Push(&b.free, bit)
		}
	}
}

// Live returns the number of currently allocated bits.
func (b *Builder) Live() int { return b.live }

// MaxLive returns the high-water mark of simultaneously allocated bits
// (the minimum workspace a lane must provide).
func (b *Builder) MaxLive() int { return b.maxLive }

// Gate emits a gate reading in0 (and in1 for binary gates) into a freshly
// allocated output bit, which it returns.
func (b *Builder) Gate(k gates.Kind, in0, in1 Bit) Bit {
	b.checkAllocated(in0)
	if k.Arity() == 2 {
		b.checkAllocated(in1)
	}
	out := b.Alloc()
	b.GateInto(k, in0, in1, out)
	return out
}

// GateInto emits a gate writing into an existing allocated bit.
func (b *Builder) GateInto(k gates.Kind, in0, in1, out Bit) {
	if k.Arity() == 1 {
		in1 = NoBit
	}
	b.checkAllocated(in0)
	if k.Arity() == 2 {
		b.checkAllocated(in1)
	}
	b.checkAllocated(out)
	b.trace.Append(Op{Kind: OpGate, Gate: k, Out: out, In0: in0, In1: in1, Mask: b.curMask})
}

// Not emits a NOT gate into a fresh bit.
func (b *Builder) Not(in Bit) Bit { return b.Gate(gates.NOT, in, NoBit) }

// Copy emits a COPY gate into a fresh bit.
func (b *Builder) Copy(in Bit) Bit { return b.Gate(gates.COPY, in, NoBit) }

// Write emits a standard memory write of external data slot (returned) into
// the given bit in the current mask's lanes.
func (b *Builder) Write(addr Bit) int {
	b.checkAllocated(addr)
	slot := b.trace.WriteSlots
	b.trace.WriteSlots++
	b.trace.Append(Op{Kind: OpWrite, Out: addr, In0: NoBit, In1: NoBit, Mask: b.curMask, Data: int32(slot)})
	return slot
}

// WriteVector writes external data into each bit of a freshly allocated
// vector of n bits (an operand), returning the bits and the first data
// slot. Slots are consecutive, least-significant bit first.
func (b *Builder) WriteVector(n int) (bitsOut []Bit, firstSlot int) {
	bitsOut = b.AllocN(n)
	firstSlot = b.trace.WriteSlots
	for _, bit := range bitsOut {
		b.Write(bit)
	}
	return bitsOut, firstSlot
}

// Read emits a standard memory read of the given bit, returning the output
// data slot it lands in.
func (b *Builder) Read(addr Bit) int {
	b.checkAllocated(addr)
	slot := b.trace.ReadSlots
	b.trace.ReadSlots++
	b.trace.Append(Op{Kind: OpRead, Out: NoBit, In0: addr, In1: NoBit, Mask: b.curMask, Data: int32(slot)})
	return slot
}

// ReadVector reads each bit of a vector, returning the first output slot.
func (b *Builder) ReadVector(bitsIn []Bit) (firstSlot int) {
	firstSlot = b.trace.ReadSlots
	for _, bit := range bitsIn {
		b.Read(bit)
	}
	return firstSlot
}

// Move emits an inter-lane transfer: for every lane l in the current mask,
// bit src of lane l+laneShift is read and written into bit dst of lane l.
func (b *Builder) Move(src, dst Bit, laneShift int) {
	b.checkAllocated(src)
	b.checkAllocated(dst)
	b.trace.Append(Op{Kind: OpMove, Out: dst, In0: src, In1: NoBit, Mask: b.curMask, LaneShift: int32(laneShift)})
}

// MoveVector transfers a whole bit vector between lanes, allocating
// destination bits when dst is nil and returning them.
func (b *Builder) MoveVector(src []Bit, dst []Bit, laneShift int) []Bit {
	if dst == nil {
		dst = b.AllocN(len(src))
	}
	if len(dst) != len(src) {
		panic("program: MoveVector length mismatch")
	}
	for i := range src {
		b.Move(src[i], dst[i], laneShift)
	}
	return dst
}

func (b *Builder) checkAllocated(bit Bit) {
	if bit < 0 || int(bit) >= b.capacity || !b.inUse[bit] {
		panic(fmt.Sprintf("program: use of unallocated bit %d", bit))
	}
}

// Trace finalizes and returns the built trace.
func (b *Builder) Trace() *Trace { return b.trace }
