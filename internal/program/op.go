package program

import (
	"fmt"

	"pimendure/internal/gates"
)

// Bit is a logical bit address within a lane. The software stack operates on
// logical bits; mapping strategies translate them to physical bit addresses
// (rows, in a column-parallel architecture) at simulation time.
type Bit int32

// NoBit marks an unused operand slot.
const NoBit Bit = -1

// MaskID indexes a Trace's mask table.
type MaskID int32

// OpKind distinguishes the four primitive operations a PIM array performs.
type OpKind uint8

const (
	// OpGate executes a logic gate: reads In0 (and In1 for two-input
	// gates) and writes Out, in every lane of the mask simultaneously.
	OpGate OpKind = iota
	// OpWrite is a standard memory write of external data into bit Out of
	// every masked lane (operand loading).
	OpWrite
	// OpRead is a standard memory read of bit In0 from every masked lane
	// (result readout).
	OpRead
	// OpMove transfers bit In0 of lane (l + LaneShift) into bit Out of
	// lane l, for every masked lane l. It models the read+write pair used
	// to combine partial results across lanes (§4: "a single data
	// transfer takes 2 sequential operations").
	OpMove
)

// String returns the op kind name.
func (k OpKind) String() string {
	switch k {
	case OpGate:
		return "gate"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpMove:
		return "move"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one primitive PIM array operation. All lanes in Mask execute it
// simultaneously; ops themselves are strictly sequential (§2.2: the
// periphery hardware is shared by all cells of a lane, so gates in the same
// lane cannot overlap even when logically independent).
type Op struct {
	Kind      OpKind
	Gate      gates.Kind // valid when Kind == OpGate
	Out       Bit        // written bit (OpGate, OpWrite, OpMove)
	In0       Bit        // first read bit (OpGate, OpRead, OpMove)
	In1       Bit        // second read bit (two-input OpGate only)
	Mask      MaskID     // participating lanes (destination lanes for OpMove)
	LaneShift int32      // OpMove: source lane = destination lane + LaneShift
	Data      int32      // OpWrite: input slot id; OpRead: output slot id
}

// Steps returns the number of sequential time steps the op occupies.
// presetOutputs models CRAM-style architectures that must write the output
// cell to a known state before a gate fires (§4).
func (o Op) Steps(presetOutputs bool) int {
	switch o.Kind {
	case OpGate:
		if presetOutputs {
			return 2
		}
		return 1
	case OpMove:
		return 2
	default:
		return 1
	}
}

// WritesPerLane returns how many times the op writes its output cell in
// each active lane.
func (o Op) WritesPerLane(presetOutputs bool) int {
	switch o.Kind {
	case OpGate:
		if presetOutputs {
			return 2 // preset + conditional switch
		}
		return 1
	case OpWrite, OpMove:
		return 1
	default:
		return 0
	}
}

// ReadsPerLane returns how many cell reads the op performs in each active
// lane (for OpMove the read lands in the shifted source lane).
func (o Op) ReadsPerLane() int {
	switch o.Kind {
	case OpGate:
		return o.Gate.Arity()
	case OpRead, OpMove:
		return 1
	default:
		return 0
	}
}

// String renders the op for debugging.
func (o Op) String() string {
	switch o.Kind {
	case OpGate:
		if o.Gate.Arity() == 1 {
			return fmt.Sprintf("%v b%d -> b%d [m%d]", o.Gate, o.In0, o.Out, o.Mask)
		}
		return fmt.Sprintf("%v b%d,b%d -> b%d [m%d]", o.Gate, o.In0, o.In1, o.Out, o.Mask)
	case OpWrite:
		return fmt.Sprintf("write d%d -> b%d [m%d]", o.Data, o.Out, o.Mask)
	case OpRead:
		return fmt.Sprintf("read b%d -> d%d [m%d]", o.In0, o.Data, o.Mask)
	case OpMove:
		return fmt.Sprintf("move b%d(l%+d) -> b%d [m%d]", o.In0, o.LaneShift, o.Out, o.Mask)
	}
	return "op(?)"
}
