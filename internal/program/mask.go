package program

import (
	"fmt"
	"math/bits"
	"strings"
)

// Mask is a set of lanes (columns in a column-parallel architecture, rows in
// a row-parallel one) that participate in an operation. PIM operations are
// SIMD across lanes: one gate executes simultaneously in every lane of the
// mask, at the same bit addresses (§2.2 of the paper).
type Mask struct {
	words []uint64
	n     int
	count int
}

// NewMask returns an empty mask over n lanes.
func NewMask(n int) *Mask {
	if n < 0 {
		panic("program: negative mask size")
	}
	return &Mask{words: make([]uint64, (n+63)/64), n: n}
}

// FullMask returns a mask with all n lanes set.
func FullMask(n int) *Mask {
	m := NewMask(n)
	for i := 0; i < n; i++ {
		m.Set(i)
	}
	return m
}

// RangeMask returns a mask with lanes [lo, hi) set.
func RangeMask(n, lo, hi int) *Mask {
	m := NewMask(n)
	for i := lo; i < hi; i++ {
		m.Set(i)
	}
	return m
}

// StrideMask returns a mask over n lanes with every lane i set where
// i % stride == offset. It models layouts such as "one lane in four holds
// the final sum" in the convolution benchmark.
func StrideMask(n, stride, offset int) *Mask {
	if stride <= 0 {
		panic("program: stride must be positive")
	}
	m := NewMask(n)
	for i := offset; i < n; i += stride {
		m.Set(i)
	}
	return m
}

// Len returns the number of lanes the mask ranges over.
func (m *Mask) Len() int { return m.n }

// Count returns the number of set lanes.
func (m *Mask) Count() int { return m.count }

// Set marks lane i as participating.
func (m *Mask) Set(i int) {
	m.check(i)
	w, b := i/64, uint(i%64)
	if m.words[w]&(1<<b) == 0 {
		m.words[w] |= 1 << b
		m.count++
	}
}

// Clear removes lane i.
func (m *Mask) Clear(i int) {
	m.check(i)
	w, b := i/64, uint(i%64)
	if m.words[w]&(1<<b) != 0 {
		m.words[w] &^= 1 << b
		m.count--
	}
}

// Get reports whether lane i is set.
func (m *Mask) Get(i int) bool {
	m.check(i)
	return m.words[i/64]&(1<<uint(i%64)) != 0
}

func (m *Mask) check(i int) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("program: lane %d out of range [0,%d)", i, m.n))
	}
}

// Full reports whether every lane is set.
func (m *Mask) Full() bool { return m.count == m.n }

// ForEach calls fn for every set lane in ascending order.
func (m *Mask) ForEach(fn func(lane int)) {
	for w, word := range m.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &= word - 1
		}
	}
}

// Lanes returns the set lanes in ascending order.
func (m *Mask) Lanes() []int {
	out := make([]int, 0, m.count)
	m.ForEach(func(l int) { out = append(out, l) })
	return out
}

// Clone returns an independent copy of the mask.
func (m *Mask) Clone() *Mask {
	c := &Mask{words: make([]uint64, len(m.words)), n: m.n, count: m.count}
	copy(c.words, m.words)
	return c
}

// Subset reports whether every lane of m is also set in o.
func (m *Mask) Subset(o *Mask) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.words {
		if m.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two masks have identical size and membership.
func (m *Mask) Equal(o *Mask) bool {
	if m.n != o.n || m.count != o.count {
		return false
	}
	for i := range m.words {
		if m.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// key returns a canonical string representation used for mask deduplication
// inside traces.
func (m *Mask) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", m.n)
	for _, w := range m.words {
		fmt.Fprintf(&sb, "%016x", w)
	}
	return sb.String()
}

// String renders the mask compactly for debugging.
func (m *Mask) String() string {
	if m.Full() {
		return fmt.Sprintf("all(%d)", m.n)
	}
	return fmt.Sprintf("%d/%d lanes", m.count, m.n)
}
