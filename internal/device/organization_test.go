package device

import "testing"

func TestOrganizationPresets(t *testing.T) {
	if n := DDR4Organization().TotalBanks(); n != 16 {
		t.Errorf("DDR4 has %d banks, want 16", n)
	}
	if n := HBM3Organization().TotalBanks(); n != 256 {
		t.Errorf("HBM3 has %d banks, want 256", n)
	}
	if n := SingleBank().TotalBanks(); n != 1 {
		t.Errorf("single-bank organization has %d banks", n)
	}
	if n := FlatOrganization(7).TotalBanks(); n != 7 {
		t.Errorf("flat(7) has %d banks", n)
	}
	for _, o := range Organizations() {
		if err := o.Validate(); err != nil {
			t.Errorf("%s: %v", o.Name, err)
		}
		if o.String() == "" || o.Notes == "" {
			t.Errorf("%s missing documentation", o.Name)
		}
	}
}

func TestOrganizationValidate(t *testing.T) {
	bad := []Organization{
		{Name: "no-channels", Channels: 0, BankGroups: 4, Banks: 4},
		{Name: "no-groups", Channels: 1, BankGroups: 0, Banks: 4},
		{Name: "no-banks", Channels: 1, BankGroups: 4, Banks: 0},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%s validated", o.Name)
		}
	}
}

// BankID and Position must be inverse bijections over the group-major
// flat id space.
func TestBankIDPositionRoundTrip(t *testing.T) {
	o := HBM3Organization()
	next := 0
	for ch := 0; ch < o.Channels; ch++ {
		for g := 0; g < o.BankGroups; g++ {
			for b := 0; b < o.Banks; b++ {
				id := o.BankID(ch, g, b)
				if id != next {
					t.Fatalf("BankID(%d,%d,%d) = %d, want group-major %d", ch, g, b, id, next)
				}
				gotCh, gotG, gotB := o.Position(id)
				if gotCh != ch || gotG != g || gotB != b {
					t.Fatalf("Position(%d) = (%d,%d,%d), want (%d,%d,%d)", id, gotCh, gotG, gotB, ch, g, b)
				}
				next++
			}
		}
	}
	if next != o.TotalBanks() {
		t.Fatalf("enumerated %d banks, TotalBanks says %d", next, o.TotalBanks())
	}
}
