// The physical bank hierarchy of a PIM memory device. The paper models
// endurance on one 1024×1024 array, but real PIM substrates are
// hierarchies — channel → bank group → bank, each bank its own array
// (the Ramulator PIM_DDR4/PIM_HBM3 device models use exactly this
// shape). Organization captures that geometry as data; the scheduling
// of work across it lives in internal/system.
package device

import "fmt"

// Organization describes the bank hierarchy of a multi-bank PIM device:
// Channels × BankGroups (per channel) × Banks (per group), every bank an
// independent PIM array with its own wear state. The flat bank id space
// is group-major: banks of one group are contiguous, groups of one
// channel are contiguous (see BankID/Position).
type Organization struct {
	// Name identifies the organization ("DDR4", "HBM3", …).
	Name string
	// Channels is the number of independent channels.
	Channels int
	// BankGroups is the number of bank groups per channel.
	BankGroups int
	// Banks is the number of banks per bank group.
	Banks int
	// Notes carries the sizing provenance.
	Notes string
}

// Validate reports malformed organizations.
func (o Organization) Validate() error {
	if o.Channels <= 0 || o.BankGroups <= 0 || o.Banks <= 0 {
		return fmt.Errorf("device: organization %q needs positive channels×groups×banks, got %d×%d×%d",
			o.Name, o.Channels, o.BankGroups, o.Banks)
	}
	return nil
}

// TotalBanks is the flat bank count, Channels × BankGroups × Banks.
func (o Organization) TotalBanks() int { return o.Channels * o.BankGroups * o.Banks }

// TotalGroups is the flat bank-group count, Channels × BankGroups.
func (o Organization) TotalGroups() int { return o.Channels * o.BankGroups }

// BankID flattens a (channel, group, bank) position into the group-major
// flat id space [0, TotalBanks).
func (o Organization) BankID(channel, group, bank int) int {
	return (channel*o.BankGroups+group)*o.Banks + bank
}

// Position is the inverse of BankID.
func (o Organization) Position(id int) (channel, group, bank int) {
	bank = id % o.Banks
	g := id / o.Banks
	return g / o.BankGroups, g % o.BankGroups, bank
}

// String formats the organization compactly.
func (o Organization) String() string {
	return fmt.Sprintf("%s (%d ch × %d groups × %d banks = %d banks)",
		o.Name, o.Channels, o.BankGroups, o.Banks, o.TotalBanks())
}

// DDR4Organization returns a DDR4-sized hierarchy: one channel of 4 bank
// groups × 4 banks (the JEDEC x4/x8 organization), 16 banks total.
func DDR4Organization() Organization {
	return Organization{
		Name:       "DDR4",
		Channels:   1,
		BankGroups: 4,
		Banks:      4,
		Notes:      "JEDEC DDR4 x4/x8: 4 bank groups × 4 banks per channel",
	}
}

// HBM3Organization returns an HBM3-sized hierarchy: 16 independent
// channels, each 4 bank groups × 4 banks — 256 banks per stack.
func HBM3Organization() Organization {
	return Organization{
		Name:       "HBM3",
		Channels:   16,
		BankGroups: 4,
		Banks:      4,
		Notes:      "HBM3 stack: 16 channels × 4 bank groups × 4 banks",
	}
}

// SingleBank returns the degenerate one-bank organization — the paper's
// single-array baseline every scaling curve is measured against.
func SingleBank() Organization {
	return Organization{Name: "single", Channels: 1, BankGroups: 1, Banks: 1,
		Notes: "the paper's single-array baseline"}
}

// FlatOrganization returns n banks in one bank group of one channel —
// bank-count sweeps that do not exercise the group hierarchy.
func FlatOrganization(n int) Organization {
	return Organization{Name: fmt.Sprintf("flat%d", n), Channels: 1, BankGroups: 1, Banks: n,
		Notes: "flat bank-count sweep point"}
}

// Organizations lists the named presets in a stable presentation order.
func Organizations() []Organization {
	return []Organization{SingleBank(), DDR4Organization(), HBM3Organization()}
}
