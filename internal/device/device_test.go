package device

import "testing"

func TestTechnologyCatalogue(t *testing.T) {
	techs := Technologies()
	if len(techs) != 4 {
		t.Fatalf("catalogue has %d entries", len(techs))
	}
	names := map[string]bool{}
	for _, tech := range techs {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
		if names[tech.Name] {
			t.Errorf("duplicate technology %s", tech.Name)
		}
		names[tech.Name] = true
		if tech.Endurance < tech.EnduranceMin || tech.Endurance > tech.EnduranceMax {
			t.Errorf("%s nominal endurance %g outside range [%g, %g]",
				tech.Name, tech.Endurance, tech.EnduranceMin, tech.EnduranceMax)
		}
		if tech.SwitchSeconds != DefaultSwitchSeconds {
			t.Errorf("%s switch time %g, want paper's 3 ns", tech.Name, tech.SwitchSeconds)
		}
		if tech.String() == "" || tech.Notes == "" {
			t.Errorf("%s missing documentation", tech.Name)
		}
	}
}

// §2.1's cited figures.
func TestPaperEnduranceValues(t *testing.T) {
	if MRAM().Endurance != 1e12 {
		t.Errorf("MRAM endurance %g, want 1e12 [23,34]", MRAM().Endurance)
	}
	if RRAM().EnduranceMin != 1e8 || RRAM().EnduranceMax != 1e9 {
		t.Errorf("RRAM range [%g,%g], want [1e8,1e9]", RRAM().EnduranceMin, RRAM().EnduranceMax)
	}
	if PCM().EnduranceMin != 1e6 || PCM().EnduranceMax != 1e9 {
		t.Errorf("PCM range [%g,%g], want [1e6,1e9]", PCM().EnduranceMin, PCM().EnduranceMax)
	}
	if ProjectedMRAM().Endurance <= MRAM().Endurance {
		t.Error("projected MRAM should exceed current MRAM")
	}
}

func TestWithEndurance(t *testing.T) {
	m := MRAM().WithEndurance(5e11)
	if m.Endurance != 5e11 {
		t.Error("WithEndurance did not apply")
	}
	if MRAM().Endurance != 1e12 {
		t.Error("WithEndurance mutated the constructor result")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Technology{
		{Name: "x", Endurance: 0, SwitchSeconds: 1e-9},
		{Name: "x", Endurance: 1e9, SwitchSeconds: 0},
		{Name: "x", Endurance: 1e9, SwitchSeconds: 1e-9, EnduranceMin: 10, EnduranceMax: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}
