// Package device models the nonvolatile memory technologies the paper
// surveys (§2.1): their write endurance ranges, switching times, and
// projected improvements. The endurance study only needs two scalars per
// technology — writes-to-failure per cell and seconds per array operation —
// so the models are deliberately parametric; the cited ranges are encoded
// so experiments can sweep them.
package device

import "fmt"

// Technology describes an NVM cell technology for endurance analysis.
type Technology struct {
	// Name identifies the technology ("MRAM", "RRAM", "PCM", …).
	Name string
	// EnduranceMin and EnduranceMax bound the writes-to-failure per cell
	// reported in the paper's cited literature.
	EnduranceMin, EnduranceMax float64
	// Endurance is the nominal value the paper's analysis assumes.
	Endurance float64
	// SwitchSeconds is the per-operation device time (the paper assumes
	// 3 ns per read, write, or gate [29, 32]).
	SwitchSeconds float64
	// Notes carries the provenance from §2.1.
	Notes string
}

// String formats the technology compactly.
func (t Technology) String() string {
	return fmt.Sprintf("%s (endurance %.0e, %.1f ns/op)", t.Name, t.Endurance, t.SwitchSeconds*1e9)
}

// Validate reports malformed parameters.
func (t Technology) Validate() error {
	if t.Endurance <= 0 || t.SwitchSeconds <= 0 {
		return fmt.Errorf("device: %s has non-positive endurance or switch time", t.Name)
	}
	if t.EnduranceMin > t.EnduranceMax {
		return fmt.Errorf("device: %s endurance range inverted", t.Name)
	}
	return nil
}

// DefaultSwitchSeconds is the paper's 3 ns per operation assumption
// ([29, 32], §3.1 and §4).
const DefaultSwitchSeconds = 3e-9

// MRAM returns the magnetic-tunnel-junction model: current MTJs switch up
// to 10¹² times before permanent failure [23, 34]; writes move no atoms,
// so endurance is expected to keep improving [18].
func MRAM() Technology {
	return Technology{
		Name:          "MRAM",
		EnduranceMin:  1e11,
		EnduranceMax:  1e12,
		Endurance:     1e12,
		SwitchSeconds: DefaultSwitchSeconds,
		Notes:         "MTJ; 10^12 writes [23,34]; no moving atoms, improvement expected [18]",
	}
}

// RRAM returns the resistive-RAM model: roughly 10⁸–10⁹ writes before
// failure [18, 35, 46].
func RRAM() Technology {
	return Technology{
		Name:          "RRAM",
		EnduranceMin:  1e8,
		EnduranceMax:  1e9,
		Endurance:     1e8,
		SwitchSeconds: DefaultSwitchSeconds,
		Notes:         "metal-insulator-metal filament; 10^8-10^9 writes [18,35,46]",
	}
}

// PCM returns the phase-change-memory model: around 10⁶–10⁹ writes before
// failure [18, 19].
func PCM() Technology {
	return Technology{
		Name:          "PCM",
		EnduranceMin:  1e6,
		EnduranceMax:  1e9,
		Endurance:     1e7,
		SwitchSeconds: DefaultSwitchSeconds,
		Notes:         "amorphous/crystalline channel; 10^6-10^9 writes [18,19]",
	}
}

// ProjectedMRAM returns a forward-looking MTJ model: numerous works
// predict orders-of-magnitude endurance improvements [18, 37]; the paper's
// conclusion calls for exactly this device-level progress.
func ProjectedMRAM() Technology {
	return Technology{
		Name:          "MRAM-projected",
		EnduranceMin:  1e13,
		EnduranceMax:  1e15,
		Endurance:     1e14,
		SwitchSeconds: DefaultSwitchSeconds,
		Notes:         "projected 100x endurance improvement [18,37]",
	}
}

// Technologies lists the models in a stable presentation order.
func Technologies() []Technology {
	return []Technology{MRAM(), RRAM(), PCM(), ProjectedMRAM()}
}

// WithEndurance returns a copy of t with the nominal endurance replaced
// (for sweeps across a technology's cited range).
func (t Technology) WithEndurance(e float64) Technology {
	t.Endurance = e
	return t
}
