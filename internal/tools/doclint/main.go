// Command doclint is the repository's documentation linter: it fails
// when a package directory contains an exported symbol without a doc
// comment. `make ci` runs it over the public API surface (pim,
// pim/kernel) and the instrumented engine packages (internal/core,
// internal/pool, internal/obs) so godoc coverage is enforced, not
// aspirational — the go vet-style stand-in for revive's `exported`
// rule, with zero dependencies.
//
//	go run ./internal/tools/doclint ./pim ./internal/obs ...
//
// Rules (mirroring go/doc's association rules):
//
//   - An exported func or method needs a doc comment; methods on
//     unexported receivers are exempt (they are not part of godoc).
//   - An exported type, var or const needs a doc comment either on its
//     own spec, as a trailing line comment, or on the enclosing
//     parenthesized declaration group.
//   - _test.go files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported symbol(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns one line per
// undocumented exported symbol.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, report)
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintFunc flags exported functions, and exported methods on exported
// receivers, that carry no doc comment.
func lintFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "function", d.Name.Name
	if d.Recv != nil {
		recv := receiverName(d.Recv)
		if !ast.IsExported(recv) {
			return // methods on unexported types are not godoc surface
		}
		kind, name = "method", recv+"."+d.Name.Name
	}
	report(d.Name.Pos(), kind, name)
}

// lintGen flags exported names in type/var/const declarations that are
// covered by no doc comment at any level (group, spec, or trailing line
// comment).
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return // a group-level comment documents every spec in the block
	}
	kind := map[token.Token]string{token.TYPE: "type", token.VAR: "var", token.CONST: "const"}[d.Tok]
	if kind == "" {
		return // import declarations
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Name.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name, unwrapping
// pointers and generic instantiations.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
