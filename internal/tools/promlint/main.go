// Command promlint lints a Prometheus text-format (0.0.4) exposition:
// every family must carry # HELP and # TYPE, metric names must stay in
// the [a-zA-Z_:][a-zA-Z0-9_:]* alphabet, and histogram families must
// emit strictly increasing le bounds with non-decreasing cumulative
// counts closed by an le="+Inf" bucket equal to _count. With no
// arguments it self-tests the repository's own exposition — it enables
// the obs layer, exercises a counter, a gauge-bearing timer, a value
// histogram and a duration histogram, and lints what WritePrometheus
// produces — which is how `make ci` gates the /metrics contract without
// a live server. Zero dependencies, like the sibling doclint.
//
//	go run ./internal/tools/promlint                      # self-test
//	go run ./internal/tools/promlint -target http://localhost:8090
//	go run ./internal/tools/promlint exposition.txt ...
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"pimendure/internal/obs"
)

func main() {
	target := flag.String("target", "", "lint a live server's <target>/metrics instead of self-testing")
	flag.Parse()

	var failed bool
	lintNamed := func(name string, problems []string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
			failed = true
			return
		}
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "promlint: %s: %s\n", name, p)
		}
		if len(problems) > 0 {
			failed = true
		}
	}

	switch {
	case *target != "":
		resp, err := http.Get(*target + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "promlint: %s/metrics returned %d\n", *target, resp.StatusCode)
			os.Exit(1)
		}
		problems, err := Lint(resp.Body)
		lintNamed(*target, problems, err)
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				lintNamed(path, nil, err)
				continue
			}
			problems, err := Lint(f)
			f.Close()
			lintNamed(path, problems, err)
		}
	default:
		problems, err := Lint(bytes.NewReader(selfExposition()))
		lintNamed("self-test", problems, err)
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}

// selfExposition exercises every metric kind the obs layer exports and
// returns the resulting Prometheus text, so the linter checks the
// repository's real exposition code rather than a hand-written fixture.
func selfExposition() []byte {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.EnableLog(16)
	defer obs.DisableLog()

	obs.GetCounter("promlint.self.events").Add(3)
	obs.StartSpan("promlint.self.stage").End()
	h := obs.GetHistogram("promlint.self.bytes")
	for _, v := range []int64{0, 1, 7, 300, 9001} {
		h.Observe(v)
	}
	obs.GetDurationHistogram("promlint.self.lat").ObserveDuration(3 * time.Millisecond)
	obs.LogEvent("promlint.self", "", nil)

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
