package main

import (
	"bytes"
	"strings"
	"testing"
)

// lintString runs the linter over a literal exposition.
func lintString(t *testing.T, s string) []string {
	t.Helper()
	problems, err := Lint(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

// wantProblem asserts exactly one problem containing each fragment.
func wantProblem(t *testing.T, problems []string, fragments ...string) {
	t.Helper()
	if len(problems) != len(fragments) {
		t.Fatalf("problems = %v, want %d", problems, len(fragments))
	}
	for i, frag := range fragments {
		if !strings.Contains(problems[i], frag) {
			t.Errorf("problem %d = %q, want it to mention %q", i, problems[i], frag)
		}
	}
}

const goodHistogram = `# HELP demo_seconds latency
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.001"} 2
demo_seconds_bucket{le="0.01"} 5
demo_seconds_bucket{le="+Inf"} 7
demo_seconds_sum 0.25
demo_seconds_count 7
`

func TestLintCleanExposition(t *testing.T) {
	exposition := `# HELP demo_total events
# TYPE demo_total counter
demo_total 42
` + goodHistogram
	if problems := lintString(t, exposition); len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func TestLintMissingHelpAndType(t *testing.T) {
	wantProblem(t, lintString(t, "demo_total 1\n"),
		"missing # HELP", "missing # TYPE")
	wantProblem(t, lintString(t, "# TYPE demo_total counter\ndemo_total 1\n"),
		"missing # HELP")
	wantProblem(t, lintString(t, "# HELP demo_total x\ndemo_total 1\n"),
		"missing # TYPE")
}

func TestLintInvalidName(t *testing.T) {
	wantProblem(t, lintString(t, "# HELP 0bad x\n# TYPE 0bad counter\n0bad 1\n"),
		"invalid metric name", "no samples")
}

func TestLintNonMonotonicBuckets(t *testing.T) {
	bad := strings.Replace(goodHistogram, `demo_seconds_bucket{le="0.01"} 5`,
		`demo_seconds_bucket{le="0.01"} 1`, 1)
	wantProblem(t, lintString(t, bad), "cumulative bucket count decreases")
}

func TestLintLEOutOfOrder(t *testing.T) {
	bad := strings.Replace(goodHistogram, `le="0.01"`, `le="0.0001"`, 1)
	wantProblem(t, lintString(t, bad), "le bounds not increasing")
}

func TestLintInfDisagreesWithCount(t *testing.T) {
	bad := strings.Replace(goodHistogram, "demo_seconds_count 7", "demo_seconds_count 9", 1)
	wantProblem(t, lintString(t, bad), `le="+Inf" bucket 7 != _count 9`)
}

func TestLintMissingInf(t *testing.T) {
	bad := strings.Replace(goodHistogram, "demo_seconds_bucket{le=\"+Inf\"} 7\n", "", 1)
	wantProblem(t, lintString(t, bad), `missing closing le="+Inf"`)
}

func TestLintLabeledNonHistogram(t *testing.T) {
	exposition := `# HELP demo_total x
# TYPE demo_total counter
demo_total{shard="a"} 1
`
	wantProblem(t, lintString(t, exposition), "labeled sample")
}

// The repository's own exposition — every metric kind the obs layer
// emits — must lint clean. This is the same path `make ci` runs.
func TestLintSelfExposition(t *testing.T) {
	exposition := selfExposition()
	problems, err := Lint(bytes.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("self exposition flagged:\n%s\nproblems: %v", exposition, problems)
	}
	for _, want := range []string{
		"promlint_self_events", "promlint_self_stage_seconds_bucket",
		"promlint_self_bytes_bucket", "promlint_self_lat_seconds_bucket",
		"obs_log_recorded_total",
	} {
		if !bytes.Contains(exposition, []byte(want)) {
			t.Errorf("self exposition missing %s", want)
		}
	}
}
