package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricName is the Prometheus metric-name alphabet.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// family collects everything the linter saw for one metric family.
type family struct {
	help, typ string
	samples   int
	buckets   []bucket // only for TYPE histogram, in exposition order
	count     float64
	hasCount  bool
}

// bucket is one cumulative _bucket sample.
type bucket struct {
	le    float64
	isInf bool
	cum   float64
	line  int
}

// Lint checks a Prometheus text-format (0.0.4) exposition and returns
// one problem string per violation: families missing # HELP or # TYPE,
// metric names outside the [a-zA-Z_:][a-zA-Z0-9_:]* alphabet,
// unparseable samples, and histogram families whose cumulative buckets
// decrease, whose le bounds are out of order, or whose +Inf bucket is
// missing or disagrees with _count.
func Lint(r io.Reader) ([]string, error) {
	fams := map[string]*family{}
	order := []string{}
	get := func(name string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			f := get(fields[2])
			if fields[1] == "HELP" {
				f.help = strings.Join(fields[3:], " ")
				if f.help == "" {
					addf("line %d: empty HELP text for %s", lineNo, fields[2])
				}
			} else {
				if f.typ != "" {
					addf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				f.typ = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !metricName.MatchString(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
			continue
		}
		famName, kind := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && fams[base] != nil && fams[base].typ == "histogram" {
				famName, kind = base, suffix
				break
			}
		}
		f := get(famName)
		f.samples++
		switch kind {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				addf("line %d: histogram bucket without le label: %s", lineNo, line)
				continue
			}
			b := bucket{cum: value, line: lineNo}
			if le == "+Inf" {
				b.isInf = true
			} else if b.le, err = strconv.ParseFloat(le, 64); err != nil {
				addf("line %d: unparseable le=%q", lineNo, le)
				continue
			}
			f.buckets = append(f.buckets, b)
		case "_count":
			f.count, f.hasCount = value, true
		case "":
			if len(labels) > 0 {
				addf("line %d: labeled sample %s outside a histogram family", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if f.samples == 0 && f.typ == "" && f.help == "" {
			continue
		}
		if f.help == "" {
			addf("family %s: missing # HELP", name)
		}
		if f.typ == "" {
			addf("family %s: missing # TYPE", name)
		} else if f.samples == 0 {
			addf("family %s: HELP/TYPE but no samples", name)
		}
		if f.typ != "histogram" {
			continue
		}
		if len(f.buckets) == 0 {
			addf("family %s: histogram with no _bucket samples", name)
			continue
		}
		prevLE, prevCum := -1.0, -1.0
		for i, b := range f.buckets {
			if b.isInf && i != len(f.buckets)-1 {
				addf("family %s: le=\"+Inf\" bucket is not last (line %d)", name, b.line)
			}
			if !b.isInf && b.le <= prevLE {
				addf("family %s: le bounds not increasing at line %d", name, b.line)
			}
			if b.cum < prevCum {
				addf("family %s: cumulative bucket count decreases at line %d (%g after %g)",
					name, b.line, b.cum, prevCum)
			}
			prevLE, prevCum = b.le, b.cum
		}
		last := f.buckets[len(f.buckets)-1]
		switch {
		case !last.isInf:
			addf("family %s: missing closing le=\"+Inf\" bucket", name)
		case !f.hasCount:
			addf("family %s: histogram without _count sample", name)
		case last.cum != f.count:
			addf("family %s: le=\"+Inf\" bucket %g != _count %g", name, last.cum, f.count)
		}
	}
	return problems, nil
}

// parseSample splits a text-format sample into name, label map and
// value. Label values are the only place a '}' or ',' may hide, and
// the obs exposition never emits escaped quotes, so a quote-aware
// scan is sufficient.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	var name string
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		end := -1
		inQuote := false
		for k := 0; k < len(rest); k++ {
			switch rest[k] {
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = k
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set: %s", line)
		}
		labels := map[string]string{}
		for _, pair := range splitLabels(rest[:end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", pair)
			}
			labels[strings.TrimSpace(pair[:eq])] = v[1 : len(v)-1]
		}
		value, err := strconv.ParseFloat(strings.TrimSpace(rest[end+1:]), 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("unparseable value in %q", line)
		}
		return name, labels, value, nil
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", nil, 0, fmt.Errorf("sample without value: %q", line)
	}
	name = rest[:sp]
	value, err := strconv.ParseFloat(strings.TrimSpace(rest[sp+1:]), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value in %q", line)
	}
	return name, nil, value, nil
}

// splitLabels splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" {
		out = append(out, s[start:])
	}
	return out
}
