// Command benchdiff compares two benchjson documents (see
// internal/tools/benchjson) and reports per-benchmark ns/op deltas — the
// repo's benchmark regression gate.
//
// Usage:
//
//	make bench-current
//	go run ./internal/tools/benchdiff -new out/bench_current.json
//	go run ./internal/tools/benchdiff -new out/bench_current.json -strict
//
// The base defaults to the committed BENCH_engine.json snapshot; -new
// defaults to stdin so fresh results can be piped straight from
// benchjson. A benchmark regresses when it is slower than the base by
// more than -threshold percent and its base timing is at least -min-ns
// (faster benchmarks are noise-dominated at -benchtime=1x and are only
// reported). Benchmarks recorded with -benchmem are additionally gated
// on allocation growth: more than -alloc-threshold percent additional
// allocs/op over the base is a regression (bases under 64 allocs/op are
// report-only). By default the report is advisory (exit 0); with -strict
// a regression, or a benchmark missing from the new run, exits 1. IO and
// decode failures exit 2 in both modes.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	base := flag.String("base", "BENCH_engine.json", "baseline benchjson document")
	newPath := flag.String("new", "-", "fresh benchjson document (\"-\" = stdin)")
	threshold := flag.Float64("threshold", 25, "regression threshold in percent ns/op increase")
	minNs := flag.Float64("min-ns", 50000, "ignore regressions on benchmarks faster than this base ns/op")
	allocThreshold := flag.Float64("alloc-threshold", 25, "regression threshold in percent allocs/op increase")
	strict := flag.Bool("strict", false, "exit 1 on regression or missing benchmark (default: advisory)")
	flag.Parse()

	baseDoc, err := readDocument(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := readDocument(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rep := compare(baseDoc, newDoc, *threshold, *minNs, *allocThreshold)
	if err := rep.write(os.Stdout, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if *strict && (len(rep.regressions()) > 0 || len(rep.Missing) > 0) {
		os.Exit(1)
	}
}
