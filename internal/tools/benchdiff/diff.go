package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// document mirrors the benchjson output shape (internal/tools/benchjson):
// normalized benchmark name → measurements. Only the fields the diff
// needs are decoded.
type document struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// result is one benchmark's measurements in a benchjson document.
type result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// readDocument loads a benchjson document from a file, or from stdin
// when path is "-".
func readDocument(path string) (*document, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// minGatedAllocs is the smallest base allocs/op the allocation gate acts
// on: below it a handful of pool-timing-dependent allocations swings the
// percentage wildly, so small-footprint benchmarks are reported but never
// gated — the timing gate's min-ns guard, applied to allocations.
const minGatedAllocs = 64

// delta is one benchmark's base-vs-new comparison.
type delta struct {
	Name      string
	BaseNs    float64
	NewNs     float64
	Percent   float64 // (new-base)/base × 100; positive = slower
	Regressed bool

	// Allocation comparison, populated when both documents carry a
	// -benchmem allocs/op metric for the benchmark.
	HasAllocs      bool
	BaseAllocs     float64
	NewAllocs      float64
	AllocPercent   float64 // (new-base)/base × 100; positive = more allocations
	AllocRegressed bool
}

// report is the outcome of comparing two documents.
type report struct {
	// Deltas covers benchmarks present in both documents with a non-zero
	// base timing, sorted by percent change, worst first.
	Deltas []delta
	// Missing names benchmarks in base that the new document lacks —
	// a silently dropped benchmark must not read as "no regression".
	Missing []string
	// Added names benchmarks only the new document has.
	Added []string
}

// regressions returns the deltas that crossed either the timing or the
// allocation threshold.
func (r report) regressions() []delta {
	var out []delta
	for _, d := range r.Deltas {
		if d.Regressed || d.AllocRegressed {
			out = append(out, d)
		}
	}
	return out
}

// compare diffs new against base. A benchmark regresses when it is
// slower by more than thresholdPct percent AND its base timing is at
// least minNs nanoseconds — sub-minNs benchmarks are noise-dominated at
// -benchtime=1x and only ever reported, never gated on. Benchmarks with
// a -benchmem allocs/op metric in both documents are additionally gated
// on allocation growth beyond allocThresholdPct percent (bases under
// minGatedAllocs are report-only, as with minNs).
func compare(base, new *document, thresholdPct, minNs, allocThresholdPct float64) report {
	var rep report
	for name, b := range base.Benchmarks {
		n, ok := new.Benchmarks[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		pct := (n.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		d := delta{
			Name:      name,
			BaseNs:    b.NsPerOp,
			NewNs:     n.NsPerOp,
			Percent:   pct,
			Regressed: pct > thresholdPct && b.NsPerOp >= minNs,
		}
		ba, bok := b.Metrics["allocs/op"]
		na, nok := n.Metrics["allocs/op"]
		if bok && nok && ba > 0 {
			d.HasAllocs = true
			d.BaseAllocs, d.NewAllocs = ba, na
			d.AllocPercent = (na - ba) / ba * 100
			d.AllocRegressed = d.AllocPercent > allocThresholdPct && ba >= minGatedAllocs
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for name := range new.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Percent > rep.Deltas[j].Percent })
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	return rep
}

// write renders the report as an aligned table.
func (r report) write(w io.Writer, thresholdPct float64) error {
	if _, err := fmt.Fprintf(w, "%-60s %14s %14s %9s %11s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		allocs := ""
		if d.HasAllocs {
			allocs = fmt.Sprintf(" %+10.1f%%", d.AllocPercent)
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		}
		if d.AllocRegressed {
			mark += "  ALLOC-REGRESSION"
		}
		if _, err := fmt.Fprintf(w, "%-60s %14.0f %14.0f %+8.1f%%%s%s\n",
			d.Name, d.BaseNs, d.NewNs, d.Percent, allocs, mark); err != nil {
			return err
		}
	}
	for _, name := range r.Missing {
		if _, err := fmt.Fprintf(w, "%-60s missing from new run\n", name); err != nil {
			return err
		}
	}
	for _, name := range r.Added {
		if _, err := fmt.Fprintf(w, "%-60s new benchmark (no baseline)\n", name); err != nil {
			return err
		}
	}
	if n := len(r.regressions()); n > 0 {
		_, err := fmt.Fprintf(w, "%d benchmark(s) regressed more than %.0f%%\n", n, thresholdPct)
		return err
	}
	_, err := fmt.Fprintf(w, "no regressions beyond %.0f%%\n", thresholdPct)
	return err
}
