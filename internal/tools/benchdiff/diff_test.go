package main

import (
	"bytes"
	"strings"
	"testing"
)

func doc(benches map[string]float64) *document {
	d := &document{Benchmarks: map[string]result{}}
	for name, ns := range benches {
		d.Benchmarks[name] = result{Iterations: 1, NsPerOp: ns}
	}
	return d
}

// A document compared against itself is clean, whatever the threshold.
func TestCompareSelfClean(t *testing.T) {
	d := doc(map[string]float64{"BenchmarkA": 1e6, "BenchmarkB": 2e5})
	rep := compare(d, d, 25, 50000, 25)
	if len(rep.regressions()) != 0 || len(rep.Missing) != 0 || len(rep.Added) != 0 {
		t.Errorf("self-compare not clean: %+v", rep)
	}
	if len(rep.Deltas) != 2 {
		t.Errorf("got %d deltas, want 2", len(rep.Deltas))
	}
	for _, d := range rep.Deltas {
		if d.Percent != 0 {
			t.Errorf("%s: self delta %v%%", d.Name, d.Percent)
		}
	}
}

// A synthetic 2× slowdown must be flagged; improvements and sub-threshold
// drift must not.
func TestCompareFlagsRegression(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkSlow":  1e6,
		"BenchmarkDrift": 1e6,
		"BenchmarkFast":  1e6,
	})
	fresh := doc(map[string]float64{
		"BenchmarkSlow":  2e6,   // 2×: regression
		"BenchmarkDrift": 1.1e6, // +10%: under the 25% gate
		"BenchmarkFast":  5e5,   // improvement
	})
	rep := compare(base, fresh, 25, 50000, 25)
	regs := rep.regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("regressions = %+v, want only BenchmarkSlow", regs)
	}
	if regs[0].Percent != 100 {
		t.Errorf("2x slowdown reported as %+.1f%%, want +100%%", regs[0].Percent)
	}
	// Worst first.
	if rep.Deltas[0].Name != "BenchmarkSlow" || rep.Deltas[len(rep.Deltas)-1].Name != "BenchmarkFast" {
		t.Errorf("deltas not sorted worst-first: %+v", rep.Deltas)
	}
}

// Benchmarks faster than -min-ns never gate: at -benchtime=1x their
// timings are noise.
func TestCompareMinNsFilter(t *testing.T) {
	base := doc(map[string]float64{"BenchmarkTiny": 1000})
	fresh := doc(map[string]float64{"BenchmarkTiny": 5000}) // 5× but tiny
	rep := compare(base, fresh, 25, 50000, 25)
	if len(rep.regressions()) != 0 {
		t.Errorf("sub-min-ns benchmark gated: %+v", rep.regressions())
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Percent != 400 {
		t.Errorf("delta still reported: %+v", rep.Deltas)
	}
}

// Dropped and new benchmarks are surfaced by name.
func TestCompareMissingAndAdded(t *testing.T) {
	base := doc(map[string]float64{"BenchmarkGone": 1e6, "BenchmarkKept": 1e6})
	fresh := doc(map[string]float64{"BenchmarkKept": 1e6, "BenchmarkNew": 1e6})
	rep := compare(base, fresh, 25, 50000, 25)
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkGone" {
		t.Errorf("missing = %v", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkNew" {
		t.Errorf("added = %v", rep.Added)
	}
}

// The committed snapshot must load and self-compare clean — the exact
// invocation `make ci` runs in advisory mode.
func TestCommittedBaselineSelfCompare(t *testing.T) {
	d, err := readDocument("../../../BENCH_engine.json")
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(d.Benchmarks) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
	rep := compare(d, d, 25, 50000, 25)
	if n := len(rep.regressions()); n != 0 {
		t.Errorf("baseline self-compare reports %d regressions", n)
	}
	var buf bytes.Buffer
	if err := rep.write(&buf, 25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no regressions beyond 25%") {
		t.Errorf("report footer missing:\n%s", buf.String())
	}
}

// allocDoc builds a document with ns/op and allocs/op per benchmark.
func allocDoc(benches map[string][2]float64) *document {
	d := &document{Benchmarks: map[string]result{}}
	for name, v := range benches {
		d.Benchmarks[name] = result{
			Iterations: 1, NsPerOp: v[0],
			Metrics: map[string]float64{"allocs/op": v[1]},
		}
	}
	return d
}

// Allocation growth beyond the threshold gates even when timing is flat;
// sub-minGatedAllocs bases and alloc-free drift never do.
func TestCompareFlagsAllocRegression(t *testing.T) {
	base := allocDoc(map[string][2]float64{
		"BenchmarkBloat": {1e6, 1000},
		"BenchmarkDrift": {1e6, 1000},
		"BenchmarkTiny":  {1e6, 8},
	})
	fresh := allocDoc(map[string][2]float64{
		"BenchmarkBloat": {1e6, 2000}, // 2× allocations at flat timing
		"BenchmarkDrift": {1e6, 1100}, // +10%: under the 25% gate
		"BenchmarkTiny":  {1e6, 40},   // 5× but under minGatedAllocs
	})
	rep := compare(base, fresh, 25, 50000, 25)
	regs := rep.regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkBloat" {
		t.Fatalf("regressions = %+v, want only BenchmarkBloat", regs)
	}
	if !regs[0].AllocRegressed || regs[0].Regressed {
		t.Errorf("BenchmarkBloat should gate on allocations only: %+v", regs[0])
	}
	if regs[0].AllocPercent != 100 {
		t.Errorf("2x allocation growth reported as %+.1f%%, want +100%%", regs[0].AllocPercent)
	}
	var buf bytes.Buffer
	if err := rep.write(&buf, 25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ALLOC-REGRESSION") {
		t.Errorf("report does not mark the allocation regression:\n%s", buf.String())
	}
}

// Documents without -benchmem metrics (the pre-gate snapshot shape)
// still compare cleanly on timing alone.
func TestCompareNoAllocMetrics(t *testing.T) {
	d := doc(map[string]float64{"BenchmarkA": 1e6})
	rep := compare(d, d, 25, 50000, 25)
	if len(rep.regressions()) != 0 || rep.Deltas[0].HasAllocs {
		t.Errorf("metric-free compare not clean: %+v", rep.Deltas)
	}
}

// The report marks regressed rows so the advisory output reads at a
// glance.
func TestReportMarksRegressions(t *testing.T) {
	base := doc(map[string]float64{"BenchmarkSlow": 1e6})
	fresh := doc(map[string]float64{"BenchmarkSlow": 2e6})
	rep := compare(base, fresh, 25, 50000, 25)
	var buf bytes.Buffer
	if err := rep.write(&buf, 25); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Errorf("report does not mark the regression:\n%s", out)
	}
}
