package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Document is the JSON shape benchjson emits.
type Document struct {
	// Context captures the `key: value` header lines `go test -bench`
	// prints before the results (goos, goarch, pkg, cpu).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks maps normalized benchmark name → result.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is one benchmark's measurements.
type Result struct {
	// Iterations is the b.N the timing was averaged over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries every other `value unit` pair on the line:
	// -benchmem's B/op and allocs/op plus custom b.ReportMetric units
	// (speedup_x, obs_overhead_x, ...), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// normalizeName strips the -GOMAXPROCS suffix Go appends to benchmark
// names, so documents from machines with different core counts share keys.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse consumes `go test -bench` text output and collects benchmark
// result lines and context headers. Unrecognized lines (PASS, ok, test
// log output) are ignored. A benchmark appearing more than once keeps its
// last measurement.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if res != nil {
				doc.Benchmarks[name] = *res
			}
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			if doc.Context == nil {
				doc.Context = map[string]string{}
			}
			doc.Context[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseBenchLine splits one result line:
//
//	BenchmarkName-8  20  123456 ns/op  28.84 speedup_x  16 B/op  2 allocs/op
//
// Returns (name, nil, nil) for lines that start with "Benchmark" but are
// not results (e.g. a bare name printed before a hung run).
func parseBenchLine(line string) (string, *Result, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return "", nil, nil
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", nil, nil // "BenchmarkX ..." log output, not a result line
	}
	res := &Result{Iterations: n}
	if len(f)%2 != 0 {
		return "", nil, fmt.Errorf("malformed bench line (odd value/unit pairs): %q", line)
	}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad value %q in bench line %q", f[i], line)
		}
		unit := f[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		res.Metrics[unit] = v
	}
	return normalizeName(f[0]), res, nil
}
