package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: pimendure
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHwEngine/long-epoch-8         	       2	 532335946 ns/op	        28.84 speedup_x
BenchmarkArrayIteration/speedup        	       2	  28752564 ns/op	        20.23 speedup_x	      16 B/op	       2 allocs/op
BenchmarkE1MultSynthesis               	     100	    123456 ns/op	      9824 writes/mult	      42.5 amplification
PASS
ok  	pimendure	2.944s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["pkg"] != "pimendure" {
		t.Errorf("context not captured: %+v", doc.Context)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// The -8 GOMAXPROCS suffix must be stripped; sub-benchmark slashes kept.
	long, ok := doc.Benchmarks["BenchmarkHwEngine/long-epoch"]
	if !ok {
		t.Fatalf("long-epoch missing (keys: %v)", keys(doc))
	}
	if long.Iterations != 2 || long.NsPerOp != 532335946 || long.Metrics["speedup_x"] != 28.84 {
		t.Errorf("long-epoch parsed wrong: %+v", long)
	}
	arr := doc.Benchmarks["BenchmarkArrayIteration/speedup"]
	if arr.Metrics["B/op"] != 16 || arr.Metrics["allocs/op"] != 2 || arr.Metrics["speedup_x"] != 20.23 {
		t.Errorf("benchmem metrics parsed wrong: %+v", arr)
	}
	mult := doc.Benchmarks["BenchmarkE1MultSynthesis"]
	if mult.Metrics["writes/mult"] != 9824 || mult.Metrics["amplification"] != 42.5 {
		t.Errorf("custom metrics parsed wrong: %+v", mult)
	}
}

func TestParseRejectsMalformedPairs(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX 10 123 ns/op 4.5\n")); err == nil {
		t.Error("odd value/unit pairing accepted")
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkHung\nsome log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("non-result lines produced benchmarks: %v", keys(doc))
	}
}

func keys(d *Document) []string {
	var out []string
	for k := range d.Benchmarks {
		out = append(out, k)
	}
	return out
}
