// Command benchjson converts `go test -bench` text output into a stable,
// machine-readable JSON document, so benchmark numbers — including the
// repo's custom metrics (speedup_x, obs_overhead_x, improvement factors)
// — can be committed, diffed and regressed against without scraping.
//
//	go test -run '^$' -bench=. -benchmem -benchtime=1x . | \
//	    go run ./internal/tools/benchjson -o BENCH_engine.json
//
// The output maps benchmark name → {iterations, ns_per_op, metrics},
// where metrics carries every additional `value unit` pair the benchmark
// reported (ReportMetric units as well as -benchmem's B/op and
// allocs/op). Names are normalized by stripping the trailing
// -GOMAXPROCS suffix so documents generated on different machines diff
// cleanly, and JSON object keys are emitted in sorted order (a property
// of encoding/json maps), making the document deterministic for a given
// set of measurements.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}
