package array

// This file is the word-parallel execution path behind NewRunner. Two
// structural facts of the simulated machine make it possible:
//
//  1. PIM ops are SIMD across lanes (§2.2): one gate executes the same
//     (in0, in1) → out cell addresses in every masked lane. With the array
//     state bit-packed 64 lanes per uint64 word (see Array), a gate over
//     all lanes of a word is one truth-table expression on three words
//     (gates.Kind.EvalWord) merged under the mask's lane-word bitmap.
//
//  2. Access counts are rank-1 per op: every active lane of an op receives
//     the same per-cell increment at the same physical rows. Counting can
//     therefore be deferred into tiny histograms indexed by
//     (mask, physical row) and expanded over the mask's physical lane list
//     only when a counter accessor actually needs per-cell totals — the
//     same trick internal/core's wear engine uses at the epoch level,
//     applied here inside the functional simulator.
//
// OpMove is the one op whose reads land in *shifted* source lanes — a
// different lane set than its mask — so it stays on the scalar per-cell
// path with immediate counters (moves are a vanishing fraction of trace
// ops). Deferred and immediate counts are both pure additions, so the mix
// is exact regardless of flush timing.

import (
	"pimendure/internal/mapping"
	"pimendure/internal/program"
)

// packedState carries the word-parallel runner's per-mask lane bitmaps and
// deferred access-count histograms.
type packedState struct {
	// physMask is, per trace mask, the bitmap of *physical* lanes (the
	// mask's logical lanes pushed through the between-lane permutation),
	// packed in the array's lane-word layout.
	physMask [][]uint64
	// physLanes lists the same physical lanes explicitly, for expanding
	// histograms into per-cell counters at flush time.
	physLanes [][]int32
	// wHist and rHist accumulate deferred write/read counts, indexed
	// [maskID*BitsPerLane + physicalRow].
	wHist []uint64
	rHist []uint64
}

func newPackedState(arr *Array, tr *program.Trace, between *mapping.Perm) *packedState {
	pk := &packedState{
		wHist: make([]uint64, len(tr.Masks)*arr.cfg.BitsPerLane),
		rHist: make([]uint64, len(tr.Masks)*arr.cfg.BitsPerLane),
	}
	pk.rebuildLanes(tr, between)
	return pk
}

// rebuildLanes recomputes the physical-lane bitmaps and lists for a
// between-lane permutation. Callers must flush deferred counts under the
// old permutation first (Runner.Remap does).
func (pk *packedState) rebuildLanes(tr *program.Trace, between *mapping.Perm) {
	words := (tr.Lanes + 63) / 64
	pk.physMask = make([][]uint64, len(tr.Masks))
	pk.physLanes = make([][]int32, len(tr.Masks))
	for i, m := range tr.Masks {
		bitmap := make([]uint64, words)
		lanes := make([]int32, 0, m.Count())
		m.ForEach(func(l int) {
			pl := between.Apply(l)
			bitmap[pl>>6] |= 1 << uint(pl&63)
			lanes = append(lanes, int32(pl))
		})
		pk.physMask[i] = bitmap
		pk.physLanes[i] = lanes
	}
}

// flushCounts expands the deferred histograms into the array's per-cell
// counters and clears them. Installed on the array as its flush hook.
func (r *Runner) flushCounts() {
	pk := r.pk
	bits := r.arr.cfg.BitsPerLane
	lanes := r.arr.cfg.Lanes
	for m, pls := range pk.physLanes {
		base := m * bits
		for row := 0; row < bits; row++ {
			w, rd := pk.wHist[base+row], pk.rHist[base+row]
			if w == 0 && rd == 0 {
				continue
			}
			pk.wHist[base+row], pk.rHist[base+row] = 0, 0
			cell := row * lanes
			for _, pl := range pls {
				r.arr.writes[cell+int(pl)] += w
				r.arr.reads[cell+int(pl)] += rd
			}
		}
	}
}

// runPackedIteration is RunIteration's word-parallel body. It issues the
// exact same mapper calls in the exact same order as the scalar path —
// renameForWrite once per writing op — so hardware renaming state evolves
// bit-identically.
func (r *Runner) runPackedIteration() {
	tr := r.trace
	arr := r.arr
	pk := r.pk
	bits := arr.cfg.BitsPerLane
	preset := arr.cfg.PresetOutputs
	for _, op := range tr.Ops {
		mid := int(op.Mask)
		mask := tr.Mask(op.Mask)
		switch op.Kind {
		case program.OpGate:
			in0 := r.mapper.BitAddr(op.In0)
			in1 := in0 // unary gates ignore the second operand word
			binary := op.Gate.Arity() == 2
			if binary {
				in1 = r.mapper.BitAddr(op.In1)
			}
			out := r.mapper.renameForWrite(op.Out, mask.Full())
			base := mid * bits
			pk.rHist[base+in0]++
			if binary {
				pk.rHist[base+in1]++
			}
			if preset {
				// Preset writes the output cell twice (preset +
				// conditional switch); state-wise the gate value wins,
				// so only the count differs from the plain write.
				pk.wHist[base+out] += 2
			} else {
				pk.wHist[base+out]++
			}
			s0, s1, so := arr.row(in0), arr.row(in1), arr.row(out)
			g := op.Gate
			for wi, lm := range pk.physMask[mid] {
				if lm == 0 {
					continue
				}
				v := g.EvalWord(s0[wi], s1[wi])
				so[wi] = (so[wi] &^ lm) | (v & lm)
			}
		case program.OpWrite:
			phys := r.mapper.renameForWrite(op.Out, mask.Full())
			pk.wHist[mid*bits+phys]++
			slot := int(op.Data)
			mask.ForEach(func(l int) {
				arr.setBit(phys, r.mapper.Lane(l), r.data(slot, l))
			})
		case program.OpRead:
			src := r.mapper.BitAddr(op.In0)
			pk.rHist[mid*bits+src]++
			mask.ForEach(func(l int) {
				r.out[op.Data][l] = arr.bit(src, r.mapper.Lane(l))
			})
		case program.OpMove:
			// Scalar with immediate counters: the read lanes are the
			// mask's lanes shifted, not the mask's physical lane set.
			src := r.mapper.BitAddr(op.In0)
			dst := r.mapper.renameForWrite(op.Out, mask.Full())
			shift := int(op.LaneShift)
			mask.ForEach(func(l int) {
				v := arr.read(src, r.mapper.Lane(l+shift))
				arr.write(dst, r.mapper.Lane(l), v)
			})
		}
	}
}
