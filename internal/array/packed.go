package array

// This file is the word-parallel execution path behind NewRunner. Two
// structural facts of the simulated machine make it possible:
//
//  1. PIM ops are SIMD across lanes (§2.2): one gate executes the same
//     (in0, in1) → out cell addresses in every masked lane. With the array
//     state bit-packed 64 lanes per uint64 word (see Array), a gate over
//     all lanes of a word is one truth-table expression on three words
//     merged under the mask's lane-word bitmap, evaluated through the
//     fused per-gate kernel gates.Kind.EvalWords. When the runner has a
//     worker budget and the array is wide enough (Runner.SetWorkers,
//     packedParallelMinWords), back-to-back gates are instead batched and
//     executed as row passes sharded into contiguous word blocks across
//     the worker pool (flushGateBatch).
//
//  2. Access counts are rank-1 per op: every active lane of an op receives
//     the same per-cell increment at the same physical rows. Counting can
//     therefore be deferred into tiny histograms indexed by
//     (mask, physical row) and expanded over the mask's physical lane list
//     only when a counter accessor actually needs per-cell totals — the
//     same trick internal/core's wear engine uses at the epoch level,
//     applied here inside the functional simulator.
//
// OpMove is the one op whose reads land in *shifted* source lanes — a
// different lane set than its mask — so it stays on the scalar per-cell
// path with immediate counters (moves are a vanishing fraction of trace
// ops). Deferred and immediate counts are both pure additions, so the mix
// is exact regardless of flush timing.

import (
	"pimendure/internal/gates"
	"pimendure/internal/mapping"
	"pimendure/internal/pool"
	"pimendure/internal/program"
)

// packedParallelMinWords gates word-block parallelism: below this many
// lane words per row (64 lanes each), dispatch overhead dwarfs the work
// and gate batches execute inline even when the runner has a worker
// budget. The paper's 1024-lane arrays are 16 words wide — far under the
// bar; block parallelism targets wide synthetic arrays.
const packedParallelMinWords = 256

// gateOp is one deferred gate execution: the packed row slices and the
// mask's lane-word bitmap, captured at build time (after the op's mapper
// renaming and histogram updates ran in program order). Each word index
// of a gateOp depends only on that same word index of its inputs, which
// is what lets a batch shard by word range.
type gateOp struct {
	s0, s1, so []uint64
	pm         []uint64
	kind       gates.Kind
}

// packedState carries the word-parallel runner's per-mask lane bitmaps and
// deferred access-count histograms.
type packedState struct {
	// physMask is, per trace mask, the bitmap of *physical* lanes (the
	// mask's logical lanes pushed through the between-lane permutation),
	// packed in the array's lane-word layout.
	physMask [][]uint64
	// physLanes lists the same physical lanes explicitly, for expanding
	// histograms into per-cell counters at flush time.
	physLanes [][]int32
	// wHist and rHist accumulate deferred write/read counts, indexed
	// [maskID*BitsPerLane + physicalRow].
	wHist []uint64
	rHist []uint64
	// batch is the pending run of back-to-back gate ops, reused across
	// flushes; see flushGateBatch.
	batch []gateOp
}

func newPackedState(arr *Array, tr *program.Trace, between *mapping.Perm) *packedState {
	pk := &packedState{
		wHist: make([]uint64, len(tr.Masks)*arr.cfg.BitsPerLane),
		rHist: make([]uint64, len(tr.Masks)*arr.cfg.BitsPerLane),
	}
	pk.rebuildLanes(tr, between)
	return pk
}

// ensureBatch sizes the deferred-gate batch for the longest run of
// back-to-back gates in the trace, so the word-parallel path never
// regrows it mid-iteration. Called only when a runner actually enters
// batching mode — inline runners never pay for the buffer.
func (pk *packedState) ensureBatch(tr *program.Trace) {
	if cap(pk.batch) > 0 {
		return
	}
	run, maxRun := 0, 0
	for _, op := range tr.Ops {
		if op.Kind == program.OpGate {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	pk.batch = make([]gateOp, 0, maxRun)
}

// rebuildLanes recomputes the physical-lane bitmaps and lists for a
// between-lane permutation. Callers must flush deferred counts under the
// old permutation first (Runner.Remap does).
func (pk *packedState) rebuildLanes(tr *program.Trace, between *mapping.Perm) {
	words := (tr.Lanes + 63) / 64
	pk.physMask = make([][]uint64, len(tr.Masks))
	pk.physLanes = make([][]int32, len(tr.Masks))
	for i, m := range tr.Masks {
		bitmap := make([]uint64, words)
		lanes := make([]int32, 0, m.Count())
		m.ForEach(func(l int) {
			pl := between.Apply(l)
			bitmap[pl>>6] |= 1 << uint(pl&63)
			lanes = append(lanes, int32(pl))
		})
		pk.physMask[i] = bitmap
		pk.physLanes[i] = lanes
	}
}

// flushCounts expands the deferred histograms into the array's per-cell
// counters and clears them. Installed on the array as its flush hook.
func (r *Runner) flushCounts() {
	pk := r.pk
	bits := r.arr.cfg.BitsPerLane
	lanes := r.arr.cfg.Lanes
	for m, pls := range pk.physLanes {
		base := m * bits
		for row := 0; row < bits; row++ {
			w, rd := pk.wHist[base+row], pk.rHist[base+row]
			if w == 0 && rd == 0 {
				continue
			}
			pk.wHist[base+row], pk.rHist[base+row] = 0, 0
			cell := row * lanes
			for _, pl := range pls {
				r.arr.writes[cell+int(pl)] += w
				r.arr.reads[cell+int(pl)] += rd
			}
		}
	}
}

// flushGateBatch executes the pending run of gate ops. The batch was
// built in program order and executes in program order per word index, so
// data dependencies between batched gates (a gate reading a row an
// earlier gate wrote) resolve exactly as in eager execution: a word's
// value after the batch is the same fold either way, because every gate's
// word i reads only word i. That independence also makes word-range
// sharding race-free — with a worker budget (Runner.SetWorkers) and a
// wide enough array, the batch runs once per contiguous word block on the
// pool, each block folding the whole gate list over its own words. Either
// way each gate evaluates through gates.Kind.EvalWords, which hoists the
// truth-table dispatch out of the word loop. Without a worker budget the
// iteration body never defers gates, so the batch is empty and flushing
// is free.
func (r *Runner) flushGateBatch() {
	batch := r.pk.batch
	if len(batch) == 0 {
		return
	}
	if words := r.arr.words; r.workers > 1 && words >= packedParallelMinWords {
		pool.ForEachBlock(r.workers, words, func(lo, hi int) {
			for _, g := range batch {
				g.kind.EvalWords(g.so[lo:hi], g.s0[lo:hi], g.s1[lo:hi], g.pm[lo:hi])
			}
		})
	} else {
		for _, g := range batch {
			g.kind.EvalWords(g.so, g.s0, g.s1, g.pm)
		}
	}
	r.pk.batch = batch[:0]
}

// runPackedIteration is RunIteration's word-parallel body. It issues the
// exact same mapper calls in the exact same order as the scalar path —
// renameForWrite once per writing op — so hardware renaming state evolves
// bit-identically. With a worker budget on a wide array, gate state
// updates are deferred into a batch (flushGateBatch) so back-to-back
// gates execute as one word-block-parallel pass; ops that read or write
// state through other paths (OpWrite's data callback, OpRead, OpMove) are
// batch barriers, as is the end of the iteration — state is always
// current when control leaves this function.
func (r *Runner) runPackedIteration() {
	tr := r.trace
	arr := r.arr
	pk := r.pk
	bits := arr.cfg.BitsPerLane
	preset := arr.cfg.PresetOutputs
	// Gate batching only pays when the batch will shard across workers;
	// otherwise each gate evaluates eagerly through the same fused kernel
	// and the batch stays empty (every flush below is then a no-op).
	batching := r.workers > 1 && arr.words >= packedParallelMinWords
	for _, op := range tr.Ops {
		mid := int(op.Mask)
		mask := tr.Mask(op.Mask)
		switch op.Kind {
		case program.OpGate:
			in0 := r.mapper.BitAddr(op.In0)
			in1 := in0 // unary gates ignore the second operand word
			binary := op.Gate.Arity() == 2
			if binary {
				in1 = r.mapper.BitAddr(op.In1)
			}
			out := r.mapper.renameForWrite(op.Out, mask.Full())
			base := mid * bits
			pk.rHist[base+in0]++
			if binary {
				pk.rHist[base+in1]++
			}
			if preset {
				// Preset writes the output cell twice (preset +
				// conditional switch); state-wise the gate value wins,
				// so only the count differs from the plain write.
				pk.wHist[base+out] += 2
			} else {
				pk.wHist[base+out]++
			}
			s0, s1, so := arr.row(in0), arr.row(in1), arr.row(out)
			pm := pk.physMask[mid]
			if batching {
				pk.batch = append(pk.batch, gateOp{s0: s0, s1: s1, so: so, pm: pm, kind: op.Gate})
			} else {
				op.Gate.EvalWords(so, s0, s1, pm)
			}
		case program.OpWrite:
			r.flushGateBatch()
			phys := r.mapper.renameForWrite(op.Out, mask.Full())
			pk.wHist[mid*bits+phys]++
			slot := int(op.Data)
			mask.ForEach(func(l int) {
				arr.setBit(phys, r.mapper.Lane(l), r.data(slot, l))
			})
		case program.OpRead:
			r.flushGateBatch()
			src := r.mapper.BitAddr(op.In0)
			pk.rHist[mid*bits+src]++
			mask.ForEach(func(l int) {
				r.out[op.Data][l] = arr.bit(src, r.mapper.Lane(l))
			})
		case program.OpMove:
			// Scalar with immediate counters: the read lanes are the
			// mask's lanes shifted, not the mask's physical lane set.
			r.flushGateBatch()
			src := r.mapper.BitAddr(op.In0)
			dst := r.mapper.renameForWrite(op.Out, mask.Full())
			shift := int(op.LaneShift)
			mask.ForEach(func(l int) {
				v := arr.read(src, r.mapper.Lane(l+shift))
				arr.write(dst, r.mapper.Lane(l), v)
			})
		}
	}
	r.flushGateBatch()
}
