package array

import (
	"fmt"

	"pimendure/internal/mapping"
	"pimendure/internal/program"
)

// Mapper is the composed logical-to-physical translation applied during
// execution: logical bit → Within permutation → (optional) hardware
// renamer → physical bit address, and logical lane → Between permutation →
// physical lane (§3.2). Hw sits closest to the cells: it renames the
// software-visible addresses the compiler produced.
type Mapper struct {
	Within  *mapping.Perm      // logical bit address -> architectural bit address
	Between *mapping.Perm      // logical lane -> physical lane
	Hw      *mapping.HwRenamer // optional architectural -> physical renaming
}

// IdentityMapper returns a pass-through mapper for an array.
func IdentityMapper(bitsPerLane, lanes int) Mapper {
	return Mapper{Within: mapping.Identity(bitsPerLane), Between: mapping.Identity(lanes)}
}

// BitAddr translates a logical bit address for a read.
func (m Mapper) BitAddr(b program.Bit) int {
	arch := m.Within.Apply(int(b))
	if m.Hw != nil {
		return m.Hw.Lookup(arch)
	}
	return arch
}

// Lane translates a logical lane index.
func (m Mapper) Lane(l int) int { return m.Between.Apply(l) }

// renameForWrite applies hardware renaming (when enabled and the op spans
// all lanes) and returns the physical bit address to write.
func (m Mapper) renameForWrite(b program.Bit, fullMask bool) int {
	arch := m.Within.Apply(int(b))
	if m.Hw == nil {
		return arch
	}
	if fullMask {
		return m.Hw.RenameOnWrite(arch)
	}
	return m.Hw.Lookup(arch)
}

// DataFunc supplies operand values at execution time: the value external
// hardware writes into write-slot slot of logical lane lane.
type DataFunc func(slot, lane int) bool

// Runner executes a trace on an array under a mapper, iteration after
// iteration. Read-slot results of the latest iteration are available via
// Out.
//
// Runners come in two flavours with bit-identical observable behaviour:
// the default word-parallel runner (NewRunner) evaluates gates 64 lanes at
// a time over the array's packed state and defers access counting into
// per-(mask, physical row) histograms, while the scalar runner
// (NewScalarRunner) walks lanes one cell at a time with immediate
// counters. The scalar path is the executable specification the packed
// path is tested against, and the baseline its speedup is measured from.
type Runner struct {
	arr    *Array
	trace  *program.Trace
	mapper Mapper
	data   DataFunc
	out    [][]bool     // [readSlot][logical lane]
	pk     *packedState // nil on scalar runners

	// workers is the budget for word-block-parallel gate batches; ≤ 1
	// (the default) executes inline. See SetWorkers.
	workers int
}

// SetWorkers grants the runner a worker budget for executing batched gate
// runs as contiguous word blocks on the shared pool (≤ 1 restores inline
// execution, the default). It only affects the word-parallel runner, and
// only on arrays wide enough that a row spans at least
// packedParallelMinWords lane words — narrower arrays always execute
// inline, where the fused per-gate kernel is already the fast path.
// Results are bit-identical at every budget: blocks shard by word index,
// and a gate's word depends only on that word of its inputs. The runner
// itself remains serial — the budget only fans out work inside a single
// RunIteration call.
func (r *Runner) SetWorkers(n int) {
	r.workers = n
	if n > 1 && r.pk != nil && r.arr.words >= packedParallelMinWords {
		r.pk.ensureBatch(r.trace)
	}
}

// validateMapper checks that a mapper's dimensions agree with the trace
// and the array. It is shared by runner construction and Remap (which must
// not construct a throwaway runner: runners install counter-flush hooks on
// the array).
func validateMapper(cfg Config, tr *program.Trace, m Mapper) error {
	if tr.Lanes != cfg.Lanes {
		return fmt.Errorf("array: trace spans %d lanes, array has %d", tr.Lanes, cfg.Lanes)
	}
	if m.Between.Len() != cfg.Lanes {
		return fmt.Errorf("array: between-lane perm over %d lanes, array has %d", m.Between.Len(), cfg.Lanes)
	}
	archBits := cfg.BitsPerLane
	if m.Hw != nil {
		if m.Hw.ArchRows() != cfg.BitsPerLane-1 {
			return fmt.Errorf("array: Hw renamer over %d+1 rows, array has %d", m.Hw.ArchRows(), cfg.BitsPerLane)
		}
		archBits = cfg.BitsPerLane - 1
	}
	if m.Within.Len() != archBits {
		return fmt.Errorf("array: within-lane perm over %d addresses, want %d", m.Within.Len(), archBits)
	}
	if tr.LaneBits > archBits {
		return fmt.Errorf("array: trace uses %d bit addresses, only %d available", tr.LaneBits, archBits)
	}
	return nil
}

func newRunner(arr *Array, tr *program.Trace, m Mapper, data DataFunc) (*Runner, error) {
	if err := validateMapper(arr.Config(), tr, m); err != nil {
		return nil, err
	}
	if data == nil {
		data = func(int, int) bool { return false }
	}
	out := make([][]bool, tr.ReadSlots)
	for i := range out {
		out[i] = make([]bool, tr.Lanes)
	}
	return &Runner{arr: arr, trace: tr, mapper: m, data: data, out: out}, nil
}

// NewRunner validates dimensions and binds trace, array, mapper and data.
// The returned runner uses the word-parallel execution path and installs a
// flush hook on the array so its counter accessors transparently include
// counts the runner has deferred.
func NewRunner(arr *Array, tr *program.Trace, m Mapper, data DataFunc) (*Runner, error) {
	r, err := newRunner(arr, tr, m, data)
	if err != nil {
		return nil, err
	}
	r.pk = newPackedState(arr, tr, m.Between)
	prev := arr.flush
	arr.flush = func() {
		if prev != nil {
			prev()
		}
		r.flushCounts()
	}
	return r, nil
}

// NewScalarRunner is NewRunner's cell-at-a-time reference twin: every
// access updates the per-cell counters immediately and no word-level
// shortcuts are taken. It is retained as the ground truth for the packed
// path's bit-identity tests and as the baseline for its benchmarks.
func NewScalarRunner(arr *Array, tr *program.Trace, m Mapper, data DataFunc) (*Runner, error) {
	return newRunner(arr, tr, m, data)
}

// Array returns the underlying array.
func (r *Runner) Array() *Array { return r.arr }

// Mapper returns the current mapper (including live Hw state).
func (r *Runner) Mapper() Mapper { return r.mapper }

// Out returns the value the latest iteration read into a read slot from a
// logical lane.
func (r *Runner) Out(slot, lane int) bool { return r.out[slot][lane] }

// OutWord assembles an unsigned integer from consecutive read slots
// (LSB-first) of one logical lane.
func (r *Runner) OutWord(firstSlot, width, lane int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if r.out[firstSlot+i][lane] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// RunIteration executes the trace once, updating cell state, access
// counters, hardware renaming state and read-slot outputs.
func (r *Runner) RunIteration() {
	if r.pk != nil {
		r.runPackedIteration()
		return
	}
	tr := r.trace
	for _, op := range tr.Ops {
		mask := tr.Mask(op.Mask)
		switch op.Kind {
		case program.OpGate:
			r.execGate(op, mask)
		case program.OpWrite:
			phys := r.mapper.renameForWrite(op.Out, mask.Full())
			mask.ForEach(func(l int) {
				r.arr.write(phys, r.mapper.Lane(l), r.data(int(op.Data), l))
			})
		case program.OpRead:
			src := r.mapper.BitAddr(op.In0)
			mask.ForEach(func(l int) {
				r.out[op.Data][l] = r.arr.read(src, r.mapper.Lane(l))
			})
		case program.OpMove:
			src := r.mapper.BitAddr(op.In0)
			// Inter-lane moves are read-then-write; the destination
			// mask is partial in every workload, so Hw renaming
			// never applies (and must not: it would desynchronize
			// inactive lanes).
			dst := r.mapper.renameForWrite(op.Out, mask.Full())
			shift := int(op.LaneShift)
			mask.ForEach(func(l int) {
				v := r.arr.read(src, r.mapper.Lane(l+shift))
				r.arr.write(dst, r.mapper.Lane(l), v)
			})
		}
	}
}

func (r *Runner) execGate(op program.Op, mask *program.Mask) {
	in0 := r.mapper.BitAddr(op.In0)
	in1 := -1
	binary := op.Gate.Arity() == 2
	if binary {
		in1 = r.mapper.BitAddr(op.In1)
	}
	out := r.mapper.renameForWrite(op.Out, mask.Full())
	preset := r.arr.Config().PresetOutputs
	mask.ForEach(func(l int) {
		pl := r.mapper.Lane(l)
		a := r.arr.read(in0, pl)
		b := false
		if binary {
			b = r.arr.read(in1, pl)
		}
		if preset {
			// CRAM-style architectures write the output cell to a
			// known state before the gate fires (§4).
			r.arr.write(out, pl, false)
		}
		r.arr.write(out, pl, op.Gate.Eval(a, b))
	})
}

// Remap installs a new software mapping, migrating logical state to its new
// physical locations without counting accesses — the paper's oracular
// recompile (§4: re-mapping is idealized to isolate the upper limit of its
// benefit). The hardware renamer, if present, is reset: recompilation
// re-baselines the layout.
func (r *Runner) Remap(within, between *mapping.Perm) error {
	tr := r.trace
	// Deferred counts refer to the outgoing between-lane permutation's
	// physical lane sets; materialize them before those sets change.
	if r.pk != nil {
		r.flushCounts()
	}
	// Snapshot logical contents under the old mapping.
	snap := make([]bool, tr.LaneBits*tr.Lanes)
	for b := 0; b < tr.LaneBits; b++ {
		pb := r.mapper.BitAddr(program.Bit(b))
		for l := 0; l < tr.Lanes; l++ {
			snap[b*tr.Lanes+l] = r.arr.Peek(pb, r.mapper.Lane(l))
		}
	}
	next := Mapper{Within: within, Between: between, Hw: r.mapper.Hw}
	if next.Hw != nil {
		next.Hw.Reset()
	}
	// Validate the new maps against the array before installing.
	if err := validateMapper(r.arr.Config(), tr, next); err != nil {
		return err
	}
	r.mapper = next
	if r.pk != nil {
		r.pk.rebuildLanes(tr, between)
	}
	// Restore logical contents under the new mapping.
	for b := 0; b < tr.LaneBits; b++ {
		pb := r.mapper.BitAddr(program.Bit(b))
		for l := 0; l < tr.Lanes; l++ {
			r.arr.Poke(pb, r.mapper.Lane(l), snap[b*tr.Lanes+l])
		}
	}
	return nil
}
