// Package array is a bit-accurate functional simulator of a nonvolatile
// PIM array. It executes compiled traces (package program) under a
// logical-to-physical mapping (package mapping), computing real Boolean
// values — so synthesized circuits are verifiable end to end — while
// counting every cell read and write, which is the quantity the paper's
// endurance analysis is built on (§4: "The simulation is instruction-level
// accurate, and each write to each memory cell is counted").
package array

import (
	"fmt"
)

// Orientation distinguishes the two parallelism styles of §2.2. The
// simulator always works in (bit-address, lane) space; orientation only
// controls how that space maps onto the die's (row, column) axes for
// rendering and byte-alignment semantics.
type Orientation uint8

const (
	// ColumnParallel: a lane is a column; bit addresses are rows. This
	// is the configuration the paper evaluates (§4: "a more realistic
	// hardware implementation, requiring few modifications to existing
	// NVM designs").
	ColumnParallel Orientation = iota
	// RowParallel: a lane is a row; bit addresses are columns.
	RowParallel
)

// String names the orientation.
func (o Orientation) String() string {
	if o == ColumnParallel {
		return "column-parallel"
	}
	return "row-parallel"
}

// Config sizes and parameterizes an array.
type Config struct {
	// BitsPerLane is the number of physical bit addresses in each lane
	// (rows, in a column-parallel array).
	BitsPerLane int
	// Lanes is the number of lanes (columns, in a column-parallel
	// array). The paper's evaluation uses 1024×1024.
	Lanes int
	// PresetOutputs models CRAM-style architectures that must write the
	// output cell to a known state before each gate (§4); it doubles the
	// write count of gate outputs and adds one step of latency per gate.
	PresetOutputs bool
	Orientation   Orientation
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitsPerLane <= 0 || c.Lanes <= 0 {
		return fmt.Errorf("array: dimensions must be positive, got %dx%d", c.BitsPerLane, c.Lanes)
	}
	return nil
}

// Array holds the physical cell state and per-cell access counters. Cells
// are addressed as (bit, lane); index = bit*Lanes + lane.
type Array struct {
	cfg    Config
	state  []bool
	writes []uint64
	reads  []uint64
}

// New allocates an array with all cells zero and counters cleared.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.BitsPerLane * cfg.Lanes
	return &Array{
		cfg:    cfg,
		state:  make([]bool, n),
		writes: make([]uint64, n),
		reads:  make([]uint64, n),
	}
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

func (a *Array) idx(bit, lane int) int {
	if bit < 0 || bit >= a.cfg.BitsPerLane || lane < 0 || lane >= a.cfg.Lanes {
		panic(fmt.Sprintf("array: cell (%d,%d) outside %dx%d", bit, lane, a.cfg.BitsPerLane, a.cfg.Lanes))
	}
	return bit*a.cfg.Lanes + lane
}

// read senses a cell, counting the access.
func (a *Array) read(bit, lane int) bool {
	i := a.idx(bit, lane)
	a.reads[i]++
	return a.state[i]
}

// write programs a cell, counting the access.
func (a *Array) write(bit, lane int, v bool) {
	i := a.idx(bit, lane)
	a.writes[i]++
	a.state[i] = v
}

// Peek returns a cell's value without counting an access (test/diagnostic
// use and oracular data migration).
func (a *Array) Peek(bit, lane int) bool { return a.state[a.idx(bit, lane)] }

// Poke sets a cell's value without counting an access (oracular data
// migration at recompile boundaries, §4's zero-overhead re-mapping
// assumption).
func (a *Array) Poke(bit, lane int, v bool) { a.state[a.idx(bit, lane)] = v }

// Writes returns the write count of one cell.
func (a *Array) Writes(bit, lane int) uint64 { return a.writes[a.idx(bit, lane)] }

// Reads returns the read count of one cell.
func (a *Array) Reads(bit, lane int) uint64 { return a.reads[a.idx(bit, lane)] }

// WriteCounts returns the full write-count matrix indexed
// [bit*Lanes+lane]. The returned slice is a copy.
func (a *Array) WriteCounts() []uint64 {
	out := make([]uint64, len(a.writes))
	copy(out, a.writes)
	return out
}

// ReadCounts returns the full read-count matrix as a copy.
func (a *Array) ReadCounts() []uint64 {
	out := make([]uint64, len(a.reads))
	copy(out, a.reads)
	return out
}

// TotalWrites sums write counts over all cells.
func (a *Array) TotalWrites() uint64 {
	var n uint64
	for _, w := range a.writes {
		n += w
	}
	return n
}

// TotalReads sums read counts over all cells.
func (a *Array) TotalReads() uint64 {
	var n uint64
	for _, r := range a.reads {
		n += r
	}
	return n
}

// MaxWrites returns the hottest cell's write count — the denominator of the
// paper's lifetime equation (Eq. 4).
func (a *Array) MaxWrites() uint64 {
	var m uint64
	for _, w := range a.writes {
		if w > m {
			m = w
		}
	}
	return m
}

// ResetCounters clears access counters but keeps cell state.
func (a *Array) ResetCounters() {
	for i := range a.writes {
		a.writes[i] = 0
		a.reads[i] = 0
	}
}
