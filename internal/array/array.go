// Package array is a bit-accurate functional simulator of a nonvolatile
// PIM array. It executes compiled traces (package program) under a
// logical-to-physical mapping (package mapping), computing real Boolean
// values — so synthesized circuits are verifiable end to end — while
// counting every cell read and write, which is the quantity the paper's
// endurance analysis is built on (§4: "The simulation is instruction-level
// accurate, and each write to each memory cell is counted").
package array

import (
	"fmt"
)

// Orientation distinguishes the two parallelism styles of §2.2. The
// simulator always works in (bit-address, lane) space; orientation only
// controls how that space maps onto the die's (row, column) axes for
// rendering and byte-alignment semantics.
type Orientation uint8

const (
	// ColumnParallel: a lane is a column; bit addresses are rows. This
	// is the configuration the paper evaluates (§4: "a more realistic
	// hardware implementation, requiring few modifications to existing
	// NVM designs").
	ColumnParallel Orientation = iota
	// RowParallel: a lane is a row; bit addresses are columns.
	RowParallel
)

// String names the orientation.
func (o Orientation) String() string {
	if o == ColumnParallel {
		return "column-parallel"
	}
	return "row-parallel"
}

// Config sizes and parameterizes an array.
type Config struct {
	// BitsPerLane is the number of physical bit addresses in each lane
	// (rows, in a column-parallel array).
	BitsPerLane int
	// Lanes is the number of lanes (columns, in a column-parallel
	// array). The paper's evaluation uses 1024×1024.
	Lanes int
	// PresetOutputs models CRAM-style architectures that must write the
	// output cell to a known state before each gate (§4); it doubles the
	// write count of gate outputs and adds one step of latency per gate.
	PresetOutputs bool
	Orientation   Orientation
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitsPerLane <= 0 || c.Lanes <= 0 {
		return fmt.Errorf("array: dimensions must be positive, got %dx%d", c.BitsPerLane, c.Lanes)
	}
	return nil
}

// Array holds the physical cell state and per-cell access counters. Cells
// are addressed as (bit, lane); counters are indexed bit*Lanes + lane.
// Cell state is bit-packed: each bit address stores its lanes as a run of
// uint64 words (64 lanes per word), which is what lets the packed runner
// evaluate a gate across all lanes of a mask with a handful of word ops.
type Array struct {
	cfg    Config
	words  int      // words per bit address: ceil(Lanes/64)
	state  []uint64 // [bit*words + lane/64], lane bit = lane%64
	writes []uint64
	reads  []uint64
	// flush drains counts a packed runner has deferred into writes/reads;
	// installed by NewRunner, nil when only the scalar path touches the
	// array.
	flush func()
}

// New allocates an array with all cells zero and counters cleared.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.BitsPerLane * cfg.Lanes
	words := (cfg.Lanes + 63) / 64
	return &Array{
		cfg:    cfg,
		words:  words,
		state:  make([]uint64, cfg.BitsPerLane*words),
		writes: make([]uint64, n),
		reads:  make([]uint64, n),
	}
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

func (a *Array) idx(bit, lane int) int {
	if bit < 0 || bit >= a.cfg.BitsPerLane || lane < 0 || lane >= a.cfg.Lanes {
		panic(fmt.Sprintf("array: cell (%d,%d) outside %dx%d", bit, lane, a.cfg.BitsPerLane, a.cfg.Lanes))
	}
	return bit*a.cfg.Lanes + lane
}

// bit returns a cell's value from the packed state (no bounds check
// beyond the slice's own).
func (a *Array) bit(bit, lane int) bool {
	return a.state[bit*a.words+lane>>6]&(1<<uint(lane&63)) != 0
}

// setBit programs a cell's value in the packed state.
func (a *Array) setBit(bit, lane int, v bool) {
	w := &a.state[bit*a.words+lane>>6]
	m := uint64(1) << uint(lane&63)
	if v {
		*w |= m
	} else {
		*w &^= m
	}
}

// row returns the packed lane words of one bit address.
func (a *Array) row(bit int) []uint64 {
	return a.state[bit*a.words : (bit+1)*a.words]
}

// read senses a cell, counting the access.
func (a *Array) read(bit, lane int) bool {
	i := a.idx(bit, lane)
	a.reads[i]++
	return a.bit(bit, lane)
}

// write programs a cell, counting the access.
func (a *Array) write(bit, lane int, v bool) {
	i := a.idx(bit, lane)
	a.writes[i]++
	a.setBit(bit, lane, v)
}

// Peek returns a cell's value without counting an access (test/diagnostic
// use and oracular data migration).
func (a *Array) Peek(bit, lane int) bool {
	a.idx(bit, lane)
	return a.bit(bit, lane)
}

// Poke sets a cell's value without counting an access (oracular data
// migration at recompile boundaries, §4's zero-overhead re-mapping
// assumption).
func (a *Array) Poke(bit, lane int, v bool) {
	a.idx(bit, lane)
	a.setBit(bit, lane, v)
}

// Flush materializes any access counts a packed runner has deferred, so
// the per-cell counters are exact. Counter accessors call it implicitly;
// it is exported for callers that read the counter slices around custom
// checkpoints.
func (a *Array) Flush() {
	if a.flush != nil {
		a.flush()
	}
}

// Writes returns the write count of one cell.
func (a *Array) Writes(bit, lane int) uint64 {
	a.Flush()
	return a.writes[a.idx(bit, lane)]
}

// Reads returns the read count of one cell.
func (a *Array) Reads(bit, lane int) uint64 {
	a.Flush()
	return a.reads[a.idx(bit, lane)]
}

// WriteCounts returns the full write-count matrix indexed
// [bit*Lanes+lane]. The returned slice is a copy.
func (a *Array) WriteCounts() []uint64 {
	a.Flush()
	out := make([]uint64, len(a.writes))
	copy(out, a.writes)
	return out
}

// ReadCounts returns the full read-count matrix as a copy.
func (a *Array) ReadCounts() []uint64 {
	a.Flush()
	out := make([]uint64, len(a.reads))
	copy(out, a.reads)
	return out
}

// WriteCountsInto copies the full write-count matrix into dst, which must
// hold BitsPerLane×Lanes elements. It is WriteCounts for callers that own
// a reusable buffer (the wear engine's brute-force reference lands counts
// straight into an arena-drawn distribution), avoiding the intermediate
// copy WriteCounts allocates.
func (a *Array) WriteCountsInto(dst []uint64) {
	if len(dst) != len(a.writes) {
		panic(fmt.Sprintf("array: count buffer holds %d cells, want %d", len(dst), len(a.writes)))
	}
	a.Flush()
	copy(dst, a.writes)
}

// ReadCountsInto is WriteCountsInto for the read-count matrix.
func (a *Array) ReadCountsInto(dst []uint64) {
	if len(dst) != len(a.reads) {
		panic(fmt.Sprintf("array: count buffer holds %d cells, want %d", len(dst), len(a.reads)))
	}
	a.Flush()
	copy(dst, a.reads)
}

// TotalWrites sums write counts over all cells.
func (a *Array) TotalWrites() uint64 {
	a.Flush()
	var n uint64
	for _, w := range a.writes {
		n += w
	}
	return n
}

// TotalReads sums read counts over all cells.
func (a *Array) TotalReads() uint64 {
	a.Flush()
	var n uint64
	for _, r := range a.reads {
		n += r
	}
	return n
}

// MaxWrites returns the hottest cell's write count — the denominator of the
// paper's lifetime equation (Eq. 4).
func (a *Array) MaxWrites() uint64 {
	a.Flush()
	var m uint64
	for _, w := range a.writes {
		if w > m {
			m = w
		}
	}
	return m
}

// ResetCounters clears access counters but keeps cell state. Deferred
// packed-runner counts are discarded along with the materialized ones.
func (a *Array) ResetCounters() {
	a.Flush()
	for i := range a.writes {
		a.writes[i] = 0
		a.reads[i] = 0
	}
}
