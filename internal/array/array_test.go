package array_test

import (
	"math/rand"
	"testing"

	"pimendure/internal/array"
	"pimendure/internal/gates"
	"pimendure/internal/mapping"
	"pimendure/internal/program"
	"pimendure/internal/synth"
)

func TestConfigValidate(t *testing.T) {
	if err := (array.Config{BitsPerLane: 4, Lanes: 4}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (array.Config{BitsPerLane: 0, Lanes: 4}).Validate(); err == nil {
		t.Error("zero dimension accepted")
	}
	if array.ColumnParallel.String() == array.RowParallel.String() {
		t.Error("orientation strings collide")
	}
}

func TestPeekPokeDontCount(t *testing.T) {
	a := array.New(array.Config{BitsPerLane: 4, Lanes: 4})
	a.Poke(1, 2, true)
	if !a.Peek(1, 2) {
		t.Error("poke lost")
	}
	if a.TotalWrites() != 0 || a.TotalReads() != 0 {
		t.Error("peek/poke counted as accesses")
	}
}

func TestOutOfRangeCellPanics(t *testing.T) {
	a := array.New(array.Config{BitsPerLane: 4, Lanes: 4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Peek(4, 0)
}

// A one-gate trace checks the execution counters precisely.
func TestGateExecutionCounts(t *testing.T) {
	for _, preset := range []bool{false, true} {
		bld := program.NewBuilder(3, 8)
		in, _ := bld.WriteVector(2)
		out := bld.Gate(gates.NAND, in[0], in[1])
		bld.Read(out)
		tr := bld.Trace()

		a := array.New(array.Config{BitsPerLane: 8, Lanes: 3, PresetOutputs: preset})
		r, err := array.NewRunner(a, tr, array.IdentityMapper(8, 3), func(slot, lane int) bool {
			return slot == 0 // in0=1, in1=0 -> NAND = 1
		})
		if err != nil {
			t.Fatal(err)
		}
		r.RunIteration()
		for l := 0; l < 3; l++ {
			if !r.Out(0, l) {
				t.Errorf("lane %d: NAND(1,0) should be 1", l)
			}
		}
		// Writes: 2 operand writes + gate (1 or 2 with preset), per lane.
		wantGateWrites := uint64(1)
		if preset {
			wantGateWrites = 2
		}
		if got := a.Writes(2, 0); got != wantGateWrites {
			t.Errorf("preset=%v: output cell writes = %d, want %d", preset, got, wantGateWrites)
		}
		if got := a.Writes(0, 1); got != 1 {
			t.Errorf("operand cell writes = %d, want 1", got)
		}
		// Reads: each input read once by the gate; output read once.
		if got := a.Reads(0, 0); got != 1 {
			t.Errorf("input reads = %d, want 1", got)
		}
		if got := a.Reads(2, 2); got != 1 {
			t.Errorf("output reads = %d, want 1", got)
		}
		wantTotal := uint64(3 * (2 + int(wantGateWrites)))
		if got := a.TotalWrites(); got != wantTotal {
			t.Errorf("total writes = %d, want %d", got, wantTotal)
		}
	}
}

func TestMoveBetweenLanes(t *testing.T) {
	bld := program.NewBuilder(4, 8)
	src := bld.Alloc()
	bld.Write(src) // all lanes
	dst := bld.Alloc()
	bld.SetMask(program.RangeMask(4, 0, 2))
	bld.Move(src, dst, 2)
	bld.Read(dst)
	tr := bld.Trace()

	a := array.New(array.Config{BitsPerLane: 8, Lanes: 4})
	r, err := array.NewRunner(a, tr, array.IdentityMapper(8, 4), func(slot, lane int) bool {
		return lane >= 2 // only upper lanes hold 1
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	for l := 0; l < 2; l++ {
		if !r.Out(0, l) {
			t.Errorf("lane %d should have received 1 from lane %d", l, l+2)
		}
	}
	// Source cells read in lanes 2,3; destination written in lanes 0,1.
	if a.Reads(0, 2) != 1 || a.Reads(0, 3) != 1 {
		t.Error("move did not read shifted source lanes")
	}
	if a.Writes(1, 0) != 1 || a.Writes(1, 1) != 1 {
		t.Error("move did not write destination lanes")
	}
	if a.Writes(1, 2) != 0 {
		t.Error("move wrote outside destination mask")
	}
}

func TestRunnerValidation(t *testing.T) {
	bld := program.NewBuilder(4, 8)
	v, _ := bld.WriteVector(4)
	_ = v
	tr := bld.Trace()
	a := array.New(array.Config{BitsPerLane: 8, Lanes: 4})

	cases := []array.Mapper{
		{Within: mapping.Identity(7), Between: mapping.Identity(4)},                               // wrong rows
		{Within: mapping.Identity(8), Between: mapping.Identity(5)},                               // wrong lanes
		{Within: mapping.Identity(8), Between: mapping.Identity(4), Hw: mapping.NewHwRenamer(8)},  // perm must shrink to 7 with Hw
		{Within: mapping.Identity(7), Between: mapping.Identity(4), Hw: mapping.NewHwRenamer(16)}, // Hw wrong size
	}
	for i, m := range cases {
		if _, err := array.NewRunner(a, tr, m, nil); err == nil {
			t.Errorf("case %d: invalid mapper accepted", i)
		}
	}
	// Trace wider than arch space.
	bld2 := program.NewBuilder(4, 8)
	bld2.WriteVector(8)
	tr2 := bld2.Trace()
	m := array.Mapper{Within: mapping.Identity(7), Between: mapping.Identity(4), Hw: mapping.NewHwRenamer(8)}
	if _, err := array.NewRunner(a, tr2, m, nil); err == nil {
		t.Error("trace exceeding arch bits accepted with Hw")
	}
	// Lanes mismatch between trace and array.
	bld3 := program.NewBuilder(2, 8)
	bld3.WriteVector(2)
	if _, err := array.NewRunner(a, bld3.Trace(), array.IdentityMapper(8, 2), nil); err == nil {
		t.Error("trace/array lane mismatch accepted")
	}
}

// buildMult returns an 4-bit multiply trace over the given lanes and the
// product's first read slot.
func buildMult(lanes, capacity int) (*program.Trace, int) {
	bld := program.NewBuilder(lanes, capacity)
	xb, _ := bld.WriteVector(4)
	yb, _ := bld.WriteVector(4)
	prod := synth.Dadda(bld, synth.NAND, xb, yb)
	slot := bld.ReadVector(prod)
	return bld.Trace(), slot
}

func multData(words [][2]uint64) array.DataFunc {
	return func(slot, lane int) bool {
		return words[lane][slot/4]>>uint(slot%4)&1 == 1
	}
}

// The central invariant of §3.2: re-mapping must never change computed
// values. Run a multiply under arbitrary permutations, with and without
// hardware renaming, remapping between iterations — results stay exact.
func TestMappingInvariance(t *testing.T) {
	const lanes, rows = 8, 96
	rng := rand.New(rand.NewSource(21))
	words := make([][2]uint64, lanes)
	for l := range words {
		words[l] = [2]uint64{rng.Uint64() & 15, rng.Uint64() & 15}
	}
	tr, slot := buildMult(lanes, rows-1)

	for _, useHw := range []bool{false, true} {
		archRows := rows
		var hw *mapping.HwRenamer
		if useHw {
			hw = mapping.NewHwRenamer(rows)
			archRows = rows - 1
		}
		a := array.New(array.Config{BitsPerLane: rows, Lanes: lanes})
		m := array.Mapper{Within: mapping.RandomPerm(archRows, rng), Between: mapping.RandomPerm(lanes, rng), Hw: hw}
		r, err := array.NewRunner(a, tr, m, multData(words))
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 6; iter++ {
			r.RunIteration()
			for l := 0; l < lanes; l++ {
				want := words[l][0] * words[l][1]
				if got := r.OutWord(slot, 8, l); got != want {
					t.Fatalf("hw=%v iter %d lane %d: got %d, want %d", useHw, iter, l, got, want)
				}
			}
			if err := r.Remap(mapping.RandomPerm(archRows, rng), mapping.RandomPerm(lanes, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Remap must preserve values that were written before the remap (oracular
// data migration): write operands, remap, then compute.
func TestRemapMigratesState(t *testing.T) {
	const lanes, rows = 4, 64
	rng := rand.New(rand.NewSource(33))

	bld := program.NewBuilder(lanes, rows)
	xb, _ := bld.WriteVector(4)
	yb, _ := bld.WriteVector(4)
	prodSlotStart := len(bld.Trace().Ops) // marker: ops after this compute
	_ = prodSlotStart
	prod := synth.Dadda(bld, synth.NAND, xb, yb)
	slot := bld.ReadVector(prod)
	tr := bld.Trace()

	words := make([][2]uint64, lanes)
	for l := range words {
		words[l] = [2]uint64{uint64(l + 3), uint64(2*l + 1)}
	}

	a := array.New(array.Config{BitsPerLane: rows, Lanes: lanes})
	r, err := array.NewRunner(a, tr, array.IdentityMapper(rows, lanes), multData(words))
	if err != nil {
		t.Fatal(err)
	}
	// First iteration under identity, then remap and rerun several times;
	// every rerun re-writes operands, but the remap between RunIteration
	// calls must carry all live state across.
	r.RunIteration()
	for i := 0; i < 4; i++ {
		if err := r.Remap(mapping.RandomPerm(rows, rng), mapping.RandomPerm(lanes, rng)); err != nil {
			t.Fatal(err)
		}
		r.RunIteration()
		for l := 0; l < lanes; l++ {
			want := words[l][0] * words[l][1]
			if got := r.OutWord(slot, 8, l); got != want {
				t.Fatalf("after remap %d, lane %d: got %d, want %d", i, l, got, want)
			}
		}
	}
}

// Hardware renaming spreads gate-output writes across rows: with Hw on,
// strictly more distinct cells receive writes than with Hw off for a
// workspace-heavy program.
func TestHwSpreadsWrites(t *testing.T) {
	const lanes, rows = 2, 64
	tr, _ := buildMult(lanes, rows-1)

	touched := func(useHw bool) int {
		a := array.New(array.Config{BitsPerLane: rows, Lanes: lanes})
		m := array.IdentityMapper(rows-1, lanes)
		if useHw {
			m.Hw = mapping.NewHwRenamer(rows)
		} else {
			m.Within = mapping.Identity(rows)
		}
		r, err := array.NewRunner(a, tr, m, multData([][2]uint64{{3, 5}, {7, 9}}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			r.RunIteration()
		}
		n := 0
		for bit := 0; bit < rows; bit++ {
			if a.Writes(bit, 0) > 0 {
				n++
			}
		}
		return n
	}
	with, without := touched(true), touched(false)
	if with <= without {
		t.Errorf("Hw should touch more rows: with=%d without=%d", with, without)
	}
}

func TestCountersAndReset(t *testing.T) {
	const lanes = 2
	tr, _ := buildMult(lanes, 63)
	a := array.New(array.Config{BitsPerLane: 63, Lanes: lanes})
	r, err := array.NewRunner(a, tr, array.IdentityMapper(63, lanes), multData([][2]uint64{{1, 2}, {3, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	// Trace-level totals must equal array-level totals.
	if got, want := a.TotalWrites(), uint64(tr.CellWrites(false)); got != want {
		t.Errorf("total writes %d, want %d", got, want)
	}
	if got, want := a.TotalReads(), uint64(tr.CellReads()); got != want {
		t.Errorf("total reads %d, want %d", got, want)
	}
	if a.MaxWrites() == 0 {
		t.Error("max writes should be positive")
	}
	sum := uint64(0)
	for _, w := range a.WriteCounts() {
		sum += w
	}
	if sum != a.TotalWrites() {
		t.Error("WriteCounts copy inconsistent")
	}
	a.ResetCounters()
	if a.TotalWrites() != 0 || a.TotalReads() != 0 || a.MaxWrites() != 0 {
		t.Error("reset failed")
	}
	if len(a.ReadCounts()) != 63*lanes {
		t.Error("ReadCounts size wrong")
	}
	if a.Config().Lanes != lanes {
		t.Error("config accessor wrong")
	}
}

// With preset on, every gate op contributes exactly 2 writes to its output
// cell; trace-level and array-level accounting must agree.
func TestPresetAccountingAgreement(t *testing.T) {
	const lanes = 3
	tr, _ := buildMult(lanes, 63)
	a := array.New(array.Config{BitsPerLane: 63, Lanes: lanes, PresetOutputs: true})
	r, err := array.NewRunner(a, tr, array.IdentityMapper(63, lanes), multData([][2]uint64{{5, 6}, {7, 8}, {9, 10}}))
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	if got, want := a.TotalWrites(), uint64(tr.CellWrites(true)); got != want {
		t.Errorf("preset total writes %d, want %d", got, want)
	}
}

// The word-block-parallel gate path — a worker budget (SetWorkers) on an
// array at least packedParallelMinWords lane words wide — must be
// bit-identical to inline packed execution and to the scalar reference:
// same computed values and the same per-cell write/read counters, across
// remaps, with and without hardware renaming. Lanes deliberately not a
// multiple of 64 so the last lane word is partial.
func TestWordParallelBatchIdentity(t *testing.T) {
	const lanes, rows = 64*257 + 17, 96
	rng := rand.New(rand.NewSource(7))
	words := make([][2]uint64, lanes)
	for l := range words {
		words[l] = [2]uint64{rng.Uint64() & 15, rng.Uint64() & 15}
	}
	tr, slot := buildMult(lanes, rows-1)

	type outcome struct {
		vals   []uint64
		writes []uint64
		reads  []uint64
	}
	run := func(scalar bool, workers int, useHw bool) outcome {
		prng := rand.New(rand.NewSource(99))
		archRows := rows
		var hw *mapping.HwRenamer
		if useHw {
			hw = mapping.NewHwRenamer(rows)
			archRows = rows - 1
		}
		a := array.New(array.Config{BitsPerLane: rows, Lanes: lanes})
		m := array.Mapper{Within: mapping.RandomPerm(archRows, prng), Between: mapping.RandomPerm(lanes, prng), Hw: hw}
		newRunner := array.NewRunner
		if scalar {
			newRunner = array.NewScalarRunner
		}
		r, err := newRunner(a, tr, m, multData(words))
		if err != nil {
			t.Fatal(err)
		}
		r.SetWorkers(workers)
		var o outcome
		for iter := 0; iter < 3; iter++ {
			r.RunIteration()
			if err := r.Remap(mapping.RandomPerm(archRows, prng), mapping.RandomPerm(lanes, prng)); err != nil {
				t.Fatal(err)
			}
		}
		o.vals = make([]uint64, lanes)
		for l := 0; l < lanes; l++ {
			o.vals[l] = r.OutWord(slot, 8, l)
		}
		o.writes = a.WriteCounts()
		o.reads = a.ReadCounts()
		return o
	}

	for _, useHw := range []bool{false, true} {
		ref := run(true, 1, useHw)
		for l, v := range ref.vals {
			if want := words[l][0] * words[l][1]; v != want {
				t.Fatalf("hw=%v scalar lane %d: got %d, want %d", useHw, l, v, want)
			}
		}
		for _, workers := range []int{1, 3, 8} {
			got := run(false, workers, useHw)
			for l := range ref.vals {
				if got.vals[l] != ref.vals[l] {
					t.Fatalf("hw=%v workers=%d lane %d: value %d, scalar %d", useHw, workers, l, got.vals[l], ref.vals[l])
				}
			}
			for i := range ref.writes {
				if got.writes[i] != ref.writes[i] || got.reads[i] != ref.reads[i] {
					t.Fatalf("hw=%v workers=%d cell %d: writes/reads (%d,%d), scalar (%d,%d)",
						useHw, workers, i, got.writes[i], got.reads[i], ref.writes[i], ref.reads[i])
				}
			}
		}
	}
}
