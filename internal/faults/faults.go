// Package faults models operation of PIM arrays with failed cells (§3.3):
// because parallel lanes must keep operands at identical bit addresses, a
// single failed cell makes its bit address unusable in every lane (Fig.
// 11a), so usable lane capacity collapses rapidly as cells die (Fig. 11b).
// The lane-set partitioning workaround — using subsets of lanes
// sequentially so a failure only poisons its own set — trades latency for
// capacity.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// UsableFractionExpected is the closed form behind Fig. 11b: with a
// fraction f of the array's cells failed uniformly at random, a given bit
// address survives only if none of the `lanes` cells holding it failed, so
// the expected usable fraction of each lane is (1−f)^lanes.
func UsableFractionExpected(lanes int, failedFrac float64) float64 {
	if failedFrac <= 0 {
		return 1
	}
	if failedFrac >= 1 {
		return 0
	}
	return math.Pow(1-failedFrac, float64(lanes))
}

// SimulateUsable places failedCells uniformly at random (without
// replacement) in a rows×lanes array and returns the fraction of bit
// addresses with no failed cell, averaged over trials.
func SimulateUsable(rows, lanes, failedCells, trials int, seed int64) (float64, error) {
	if rows <= 0 || lanes <= 0 {
		return 0, fmt.Errorf("faults: invalid array %dx%d", rows, lanes)
	}
	total := rows * lanes
	if failedCells < 0 || failedCells > total {
		return 0, fmt.Errorf("faults: %d failed cells outside [0, %d]", failedCells, total)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("faults: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	cells := make([]int, total)
	for i := range cells {
		cells[i] = i
	}
	rowHit := make([]bool, rows)
	for tr := 0; tr < trials; tr++ {
		// Partial Fisher-Yates: draw failedCells distinct cells.
		for i := range rowHit {
			rowHit[i] = false
		}
		for k := 0; k < failedCells; k++ {
			j := k + rng.Intn(total-k)
			cells[k], cells[j] = cells[j], cells[k]
			rowHit[cells[k]/lanes] = true
		}
		usable := 0
		for _, hit := range rowHit {
			if !hit {
				usable++
			}
		}
		sum += float64(usable) / float64(rows)
	}
	return sum / float64(trials), nil
}

// CurvePoint is one sample of the Fig. 11b series.
type CurvePoint struct {
	FailedFrac   float64 // fraction of the array's cells failed
	UsableMC     float64 // Monte Carlo usable fraction of each lane
	UsableClosed float64 // (1−f)^lanes
}

// UsableCurve samples usable-vs-failed for an array, reproducing Fig. 11b.
// failedFracs are fractions of the whole array's cells.
func UsableCurve(rows, lanes int, failedFracs []float64, trials int, seed int64) ([]CurvePoint, error) {
	out := make([]CurvePoint, 0, len(failedFracs))
	for i, f := range failedFracs {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("faults: failed fraction %v outside [0,1]", f)
		}
		k := int(math.Round(f * float64(rows*lanes)))
		mc, err := SimulateUsable(rows, lanes, k, trials, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{
			FailedFrac:   f,
			UsableMC:     mc,
			UsableClosed: UsableFractionExpected(lanes, f),
		})
	}
	return out, nil
}

// LaneSetResult quantifies the §3.3 workaround of splitting an array's
// lanes into sets that run sequentially.
type LaneSetResult struct {
	Sets int
	// UsableFrac is the expected usable fraction of bit addresses within
	// one set (averaged over sets and trials): a failure now only
	// poisons lanes of its own set.
	UsableFrac float64
	// LatencyFactor is the serialization cost: sets run one after
	// another.
	LatencyFactor int
	// EffectiveCapacity is UsableFrac / LatencyFactor — usable work per
	// unit time relative to a pristine unpartitioned array.
	EffectiveCapacity float64
}

// LaneSets evaluates splitting the lanes into `sets` equal groups under
// failedCells uniform random failures, by Monte Carlo.
func LaneSets(rows, lanes, sets, failedCells, trials int, seed int64) (LaneSetResult, error) {
	if sets <= 0 || lanes%sets != 0 {
		return LaneSetResult{}, fmt.Errorf("faults: %d lanes not divisible into %d sets", lanes, sets)
	}
	if rows <= 0 {
		return LaneSetResult{}, fmt.Errorf("faults: invalid rows %d", rows)
	}
	total := rows * lanes
	if failedCells < 0 || failedCells > total {
		return LaneSetResult{}, fmt.Errorf("faults: %d failed cells outside [0, %d]", failedCells, total)
	}
	if trials <= 0 {
		return LaneSetResult{}, fmt.Errorf("faults: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	setOf := func(lane int) int { return lane / (lanes / sets) }
	cells := make([]int, total)
	for i := range cells {
		cells[i] = i
	}
	hit := make([]bool, rows*sets) // (row, set) poisoned
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		for i := range hit {
			hit[i] = false
		}
		for k := 0; k < failedCells; k++ {
			j := k + rng.Intn(total-k)
			cells[k], cells[j] = cells[j], cells[k]
			r, l := cells[k]/lanes, cells[k]%lanes
			hit[r*sets+setOf(l)] = true
		}
		usable := 0
		for _, h := range hit {
			if !h {
				usable++
			}
		}
		sum += float64(usable) / float64(rows*sets)
	}
	frac := sum / float64(trials)
	return LaneSetResult{
		Sets:              sets,
		UsableFrac:        frac,
		LatencyFactor:     sets,
		EffectiveCapacity: frac / float64(sets),
	}, nil
}

// GracefulResult summarizes operation past the first cell failure when
// the system remaps dead bit addresses onto spare rows (§3.3 asks to what
// extent arrays remain functional with failed cells; this quantifies the
// remap-on-failure policy the paper's related work [42] applies to plain
// NVM).
type GracefulResult struct {
	// FirstFailureIters is when the first row dies (the paper's Eq. 4
	// array lifetime).
	FirstFailureIters float64
	// UnusableIters is when a row dies with no spare left — the program
	// no longer fits and the array is truly dead.
	UnusableIters float64
	// Remaps is how many row replacements happened in between.
	Remaps int
}

// ExtensionFactor is the lifetime gained by tolerating failures.
func (g GracefulResult) ExtensionFactor() float64 {
	if g.FirstFailureIters <= 0 {
		return math.NaN()
	}
	return g.UnusableIters / g.FirstFailureIters
}

// GracefulLifetime event-simulates remap-on-failure: the program occupies
// len(rowRates) logical rows, each wearing its current physical row at
// rowRates[i] hottest-cell writes per iteration; totalRows − len(rowRates)
// spare rows start unworn; when a physical row's cumulative hottest-cell
// writes reach endurance it dies and its logical row moves to a spare.
// Rows with zero rate never die. The simulation ends when a death finds no
// spare.
func GracefulLifetime(rowRates []float64, totalRows int, endurance float64) (GracefulResult, error) {
	if endurance <= 0 {
		return GracefulResult{}, fmt.Errorf("faults: non-positive endurance %v", endurance)
	}
	if len(rowRates) == 0 || len(rowRates) > totalRows {
		return GracefulResult{}, fmt.Errorf("faults: %d program rows do not fit %d physical rows",
			len(rowRates), totalRows)
	}
	anyWear := false
	for _, r := range rowRates {
		if r < 0 {
			return GracefulResult{}, fmt.Errorf("faults: negative write rate %v", r)
		}
		if r > 0 {
			anyWear = true
		}
	}
	if !anyWear {
		return GracefulResult{}, fmt.Errorf("faults: program writes nothing; lifetime unbounded")
	}

	remaining := make([]float64, len(rowRates))
	for i := range remaining {
		remaining[i] = endurance
	}
	spares := totalRows - len(rowRates)
	var res GracefulResult
	now := 0.0
	for {
		// Next death: argmin remaining/rate over wearing rows.
		next, dt := -1, math.Inf(1)
		for i, r := range rowRates {
			if r <= 0 {
				continue
			}
			if d := remaining[i] / r; d < dt {
				dt, next = d, i
			}
		}
		now += dt
		if res.FirstFailureIters == 0 {
			res.FirstFailureIters = now
		}
		for i, r := range rowRates {
			remaining[i] -= dt * r
		}
		if spares == 0 {
			res.UnusableIters = now
			return res, nil
		}
		spares--
		remaining[next] = endurance
		res.Remaps++
	}
}

// FailureTimeline maps a write distribution to the fraction of cells
// failed as iterations accumulate: cell c fails once iterations ×
// writesPerIteration(c) exceeds the endurance. It returns the failed
// fraction at each multiple of the distribution's accumulated iteration
// count given in `at` (e.g. at = {1e6, 1e7, …} iterations). counts must be
// the accumulated per-cell writes over `iterations` iterations.
func FailureTimeline(counts []uint64, iterations int, endurance float64, at []float64) []float64 {
	out := make([]float64, len(at))
	for i, iters := range at {
		failed := 0
		for _, c := range counts {
			perIter := float64(c) / float64(iterations)
			if perIter > 0 && perIter*iters >= endurance {
				failed++
			}
		}
		out[i] = float64(failed) / float64(len(counts))
	}
	return out
}
