package faults

import (
	"math"
	"testing"
)

func TestUsableFractionExpectedEdges(t *testing.T) {
	if UsableFractionExpected(1024, 0) != 1 {
		t.Error("no failures should leave everything usable")
	}
	if UsableFractionExpected(1024, 1) != 0 {
		t.Error("all failed should leave nothing usable")
	}
	// One failed cell per lane on average (f = 1/lanes) leaves ≈ e⁻¹.
	got := UsableFractionExpected(1024, 1.0/1024)
	if math.Abs(got-math.Exp(-1)) > 0.01 {
		t.Errorf("f=1/lanes: %v, want ≈ 1/e", got)
	}
}

// Fig. 11b's headline: even a tiny failed fraction wipes out most of the
// lane, and larger arrays collapse at least as fast.
func TestUsableCollapsesQuickly(t *testing.T) {
	for _, lanes := range []int{256, 512, 1024} {
		// 1% of cells failed.
		u := UsableFractionExpected(lanes, 0.01)
		if u > 0.08 {
			t.Errorf("lanes=%d: 1%% failures leave %.3f usable, expected collapse", lanes, u)
		}
	}
	if UsableFractionExpected(1024, 0.005) >= UsableFractionExpected(256, 0.005) {
		t.Error("wider arrays should lose at least as much capacity")
	}
}

func TestSimulateUsableMatchesClosedForm(t *testing.T) {
	const rows, lanes = 64, 64
	for _, f := range []float64{0.001, 0.01, 0.03} {
		k := int(f * rows * lanes)
		mc, err := SimulateUsable(rows, lanes, k, 400, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := UsableFractionExpected(lanes, float64(k)/float64(rows*lanes))
		if math.Abs(mc-want) > 0.03 {
			t.Errorf("f=%v: MC %.4f vs closed form %.4f", f, mc, want)
		}
	}
}

func TestSimulateUsableEdges(t *testing.T) {
	if u, err := SimulateUsable(8, 8, 0, 10, 1); err != nil || u != 1 {
		t.Errorf("0 failures: %v, %v", u, err)
	}
	if u, err := SimulateUsable(8, 8, 64, 10, 1); err != nil || u != 0 {
		t.Errorf("all failed: %v, %v", u, err)
	}
	if _, err := SimulateUsable(0, 8, 0, 10, 1); err == nil {
		t.Error("invalid rows accepted")
	}
	if _, err := SimulateUsable(8, 8, 100, 10, 1); err == nil {
		t.Error("too many failures accepted")
	}
	if _, err := SimulateUsable(8, 8, 1, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestUsableCurve(t *testing.T) {
	pts, err := UsableCurve(64, 64, []float64{0, 0.005, 0.01, 0.02}, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].UsableClosed > pts[i-1].UsableClosed {
			t.Error("closed-form curve should be non-increasing")
		}
		if pts[i].UsableMC > pts[i-1].UsableMC+0.05 {
			t.Error("MC curve should be (noisily) non-increasing")
		}
	}
	if _, err := UsableCurve(8, 8, []float64{-0.1}, 10, 1); err == nil {
		t.Error("negative fraction accepted")
	}
}

// §3.3: lane sets raise the usable fraction but pay latency; with a fixed
// failure population, more sets ⇒ more usable rows per set.
func TestLaneSets(t *testing.T) {
	const rows, lanes = 64, 64
	failed := 40
	prev := -1.0
	for _, sets := range []int{1, 2, 4, 8} {
		res, err := LaneSets(rows, lanes, sets, failed, 300, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.LatencyFactor != sets {
			t.Errorf("sets=%d latency factor %d", sets, res.LatencyFactor)
		}
		if res.UsableFrac < prev-0.02 {
			t.Errorf("sets=%d usable %.3f dropped below %d-set value %.3f", sets, res.UsableFrac, sets/2, prev)
		}
		prev = res.UsableFrac
		if math.Abs(res.EffectiveCapacity-res.UsableFrac/float64(sets)) > 1e-12 {
			t.Error("effective capacity inconsistent")
		}
	}
	// One set must agree with the plain simulation.
	one, _ := LaneSets(rows, lanes, 1, failed, 300, 5)
	plain, _ := SimulateUsable(rows, lanes, failed, 300, 5)
	if math.Abs(one.UsableFrac-plain) > 0.03 {
		t.Errorf("1-set %.3f vs plain %.3f", one.UsableFrac, plain)
	}
}

func TestLaneSetsErrors(t *testing.T) {
	if _, err := LaneSets(8, 8, 3, 1, 10, 1); err == nil {
		t.Error("indivisible sets accepted")
	}
	if _, err := LaneSets(8, 8, 0, 1, 10, 1); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := LaneSets(0, 8, 1, 1, 10, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := LaneSets(8, 8, 1, 65, 10, 1); err == nil {
		t.Error("too many failures accepted")
	}
	if _, err := LaneSets(8, 8, 1, 1, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestGracefulLifetimeUniform(t *testing.T) {
	// 4 program rows at rate 10, endurance 100, 6 spares: all four die at
	// t=10, four spares absorb them; at t=20 four more die, two spares
	// left -> one death remapped... sequential processing: deaths are
	// handled one at a time, so the exact schedule is: 4 deaths at t=10
	// (4 spares consumed), 2 deaths at t=20 consume the rest, the next
	// death at t=20 finds none.
	res, err := GracefulLifetime([]float64{10, 10, 10, 10}, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFailureIters != 10 {
		t.Errorf("first failure = %v, want 10", res.FirstFailureIters)
	}
	if res.UnusableIters != 20 {
		t.Errorf("unusable = %v, want 20", res.UnusableIters)
	}
	if res.Remaps != 6 {
		t.Errorf("remaps = %v, want 6", res.Remaps)
	}
	if res.ExtensionFactor() != 2 {
		t.Errorf("extension = %v, want 2", res.ExtensionFactor())
	}
}

func TestGracefulLifetimeSkewed(t *testing.T) {
	// One hot row (rate 100) and one cold (rate 1), 1 spare, endurance
	// 1000: hot dies at 10, remaps to the spare, dies again at 20.
	res, err := GracefulLifetime([]float64{100, 1}, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFailureIters != 10 || res.UnusableIters != 20 || res.Remaps != 1 {
		t.Errorf("got %+v, want first 10 unusable 20 remaps 1", res)
	}
	// Zero-rate rows never die even with huge simulated spans.
	res2, err := GracefulLifetime([]float64{5, 0}, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res2.UnusableIters != 10 || res2.Remaps != 0 {
		t.Errorf("zero-rate handling wrong: %+v", res2)
	}
}

func TestGracefulLifetimeNoSpares(t *testing.T) {
	res, err := GracefulLifetime([]float64{2, 4}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Hotter row dies first at 25; no spares ⇒ unusable immediately.
	if res.FirstFailureIters != 25 || res.UnusableIters != 25 {
		t.Errorf("got %+v, want 25/25", res)
	}
	if res.ExtensionFactor() != 1 {
		t.Errorf("extension = %v, want 1", res.ExtensionFactor())
	}
}

func TestGracefulLifetimeErrors(t *testing.T) {
	if _, err := GracefulLifetime([]float64{1}, 1, 0); err == nil {
		t.Error("zero endurance accepted")
	}
	if _, err := GracefulLifetime(nil, 4, 10); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := GracefulLifetime([]float64{1, 1, 1}, 2, 10); err == nil {
		t.Error("oversized program accepted")
	}
	if _, err := GracefulLifetime([]float64{-1}, 2, 10); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := GracefulLifetime([]float64{0, 0}, 4, 10); err == nil {
		t.Error("never-wearing program accepted")
	}
}

func TestFailureTimeline(t *testing.T) {
	// Two cells: one written 10/iter, one 1/iter, accumulated over 10
	// iterations; endurance 100 ⇒ first fails at 10 iters, second at 100.
	counts := []uint64{100, 10}
	got := FailureTimeline(counts, 10, 100, []float64{5, 10, 50, 100, 1000})
	want := []float64{0, 0.5, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("timeline[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Never-written cells never fail.
	got = FailureTimeline([]uint64{0, 5}, 1, 1, []float64{1e18})
	if got[0] != 0.5 {
		t.Errorf("unwritten cell failed: %v", got[0])
	}
}
