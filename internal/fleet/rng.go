package fleet

import "math"

// The engine's draw stream: a splitmix64 generator, chosen over
// math/rand because a device draw is a handful of uniforms and the
// generator must be (a) cheap enough to disappear next to the erfc/exp
// math around it and (b) seedable per logical batch so the sample
// vector is a pure function of (seed, batch index) — the invariant
// that makes draws bit-identical across worker counts. Statistical
// acceptance is enforced end-to-end by the KS tests against the
// per-cell reference sampler, not assumed from the generator.

// goldenGamma is the splitmix64 increment (odd, ≈2⁶⁴/φ).
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the murmur3 finalizer — a bijective scramble used to spread
// (seed, batch) pairs uniformly over the generator's state orbit, so
// consecutive batch streams start at effectively random, non-adjacent
// orbit positions instead of one increment apart.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// drawRNG is one batch's private splitmix64 stream.
type drawRNG struct{ s uint64 }

// newBatchRNG seeds the stream for one logical device batch. The state
// is a scramble of both inputs, never the raw sum: splitmix64 streams
// seeded one goldenGamma apart are the same sequence shifted by one,
// which would duplicate samples across batches.
func newBatchRNG(seed int64, batch int) drawRNG {
	return drawRNG{s: mix64(uint64(seed) ^ mix64(uint64(batch)*goldenGamma+1))}
}

// next returns the next 64 raw bits.
func (r *drawRNG) next() uint64 {
	r.s += goldenGamma
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a draw strictly inside (0, 1): the top 53 bits plus a
// half-ulp offset, so downstream log/quantile transforms never see an
// exact 0 or 1.
func (r *drawRNG) uniform() float64 {
	return (float64(r.next()>>11) + 0.5) * 0x1p-53
}

// exp returns a standard Exp(1) draw — the renewal gap of the
// screening walk.
func (r *drawRNG) exp() float64 {
	return -math.Log(r.uniform())
}
