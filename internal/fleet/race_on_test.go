//go:build race

package fleet

// raceEnabled shrinks the statistical test sizes under the race
// detector, where a 100k-trial Monte Carlo is ~20× slower.
const raceEnabled = true
