package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// Groups is the order-statistic collapse of a write distribution: cells
// with identical accumulated write counts are interchangeable under the
// iid-endurance model, so a device draw needs one minimum per distinct
// count, not one endurance per cell. Write distributions are highly
// degenerate — a deterministic strategy on the paper-scale 1024×1024
// array produces tens to ~1000 distinct counts across its million
// cells — which is what turns an O(cells) trial into an O(groups) one
// before screening shrinks it further.
//
// The group set is immutable after construction and safe to share
// across concurrent Survive calls; pim caches one per (plan,
// iterations) and replays it across every technology × σ point of a
// fleet sweep. Hazard-inverse tables accumulate lazily per σ under the
// internal mutex, which is why GroupCounts hands out a pointer.
type Groups struct {
	// Iterations is the simulated-iteration count the rates are
	// normalized by.
	Iterations int
	// Cells is the number of written cells (unwritten cells never fail
	// and are dropped).
	Cells int
	// Rate holds each group's per-iteration write rate, sorted
	// descending — Rate[0] is the most-stressed, earliest-failing
	// group, the denominator of the deterministic Eq. 4 lifetime.
	Rate []float64
	// Size holds the number of cells in each group, parallel to Rate.
	Size []float64

	// mu guards the lazily built per-σ hazard-inverse tables.
	mu     sync.Mutex
	tables map[float64]*hazardTable
}

// MaxRate returns the highest per-iteration write rate — the
// denominator of the paper's deterministic Eq. 4 lifetime.
func (g *Groups) MaxRate() float64 {
	if len(g.Rate) == 0 {
		return 0
	}
	return g.Rate[0]
}

// GroupCounts collapses a write-count distribution accumulated over
// `iterations` iterations into its distinct-count groups. Zero counts
// are dropped; an all-zero distribution is an error, as in the
// per-cell variability model it replaces.
func GroupCounts(counts []uint64, iterations int) (*Groups, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("fleet: iterations must be positive, got %d", iterations)
	}
	sizes := make(map[uint64]float64)
	written := 0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		sizes[c]++
		written++
	}
	if written == 0 {
		return nil, fmt.Errorf("fleet: distribution has no written cells")
	}
	uniq := make([]uint64, 0, len(sizes))
	for c := range sizes {
		uniq = append(uniq, c)
	}
	// Descending count = descending rate.
	sort.Slice(uniq, func(i, k int) bool { return uniq[i] > uniq[k] })
	g := &Groups{
		Iterations: iterations,
		Cells:      written,
		Rate:       make([]float64, len(uniq)),
		Size:       make([]float64, len(uniq)),
	}
	for i, c := range uniq {
		g.Rate[i] = float64(c) / float64(iterations)
		g.Size[i] = sizes[c]
	}
	return g, nil
}
