// Package fleet estimates fleet-survival lifetime quantiles — B1/B10/B50,
// the iterations by which 1%/10%/50% of a device population has seen its
// first cell failure — from a finished write distribution, at millions of
// simulated devices per second on a single core.
//
// The naive Monte Carlo (one endurance draw per written cell per device,
// as lifetime.VarModel.FirstFailureReference still does) costs O(cells)
// per device: a million math.Exp calls per draw at paper scale. The
// engine stacks three reductions on top of it:
//
//  1. Order-statistic collapse (Groups): cells with equal write counts
//     are exchangeable, so the minimum lifetime within a count-group of
//     n cells follows the closed-form minimum distribution
//     F_min = 1 − (1 − F)ⁿ. O(cells) becomes O(groups) — and write
//     distributions are highly degenerate (tens to ~1000 distinct
//     counts across the paper-scale array's million cells).
//
//  2. Hazard-sum inversion: a device's lifetime M is the minimum over
//     its groups' minima, and independence multiplies the survival
//     functions: P(M > x) = Πⱼ SF(x·rⱼ)^{nⱼ} = e^{−H(x)} with the
//     cumulative hazard H(x) = Σⱼ −nⱼ·ln SF(x·rⱼ). So M itself has a
//     closed-form distribution, and a device draw is a single Exp(1)
//     variate pushed through H⁻¹ — O(1), independent of both cell and
//     group count. H⁻¹ is tabulated once per (Groups, σ) on a
//     log-spaced lifetime grid spanning the full reachable Exp(1)
//     range and inverted by binary search with log-log interpolation
//     (relative error ~1e−7, orders of magnitude below what the KS
//     acceptance tests could detect); the measure-zero draws outside
//     the grid fall back to exact bisection on H. The table is built
//     for a median of 1 — changing median endurance only shifts ln x —
//     so every technology in a sweep shares one table per σ.
//
//  3. Pool-parallel, allocation-free batching: devices are drawn in
//     fixed 8192-device logical batches sharded over internal/pool,
//     each batch owning a splitmix64 stream seeded from (Seed, batch) —
//     so the sample vector is bit-identical for any worker count — with
//     the sample buffer pooled on a package free list and quantiles
//     extracted by stats.PercentileRadixFloat instead of a full sort.
//
// Correctness is enforced by Kolmogorov–Smirnov acceptance tests against
// the per-cell reference sampler across σ values and distribution
// shapes, a direct H(H⁻¹(E)) = E inversion-accuracy check, and exact
// determinism tests across worker counts.
package fleet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pimendure/internal/obs"
	"pimendure/internal/pool"
	"pimendure/internal/stats"
)

// Engine telemetry (no-ops until obs.Enable): population and work
// counters plus the per-batch draw latency histogram.
var (
	// obsDevices counts simulated devices.
	obsDevices = obs.GetCounter("fleet.devices")
	// obsDraws counts endurance quantile inversions — one per device on
	// the table path; compare against devices × cells for the
	// order-statistic collapse factor.
	obsDraws = obs.GetCounter("fleet.draws")
	// obsGroups counts distinct write-count groups per Survive call.
	obsGroups = obs.GetCounter("fleet.groups")
	// obsFallbacks counts draws that landed outside the hazard table
	// and were solved by exact bisection (expected ≈ never: the grid
	// spans the full reachable Exp(1) range).
	obsFallbacks = obs.GetCounter("fleet.fallbacks")
	// obsDrawHist is the per-8192-device-batch draw latency.
	obsDrawHist = obs.GetDurationHistogram("fleet.draw")
)

// Model is the lognormal endurance population a fleet is drawn from.
type Model struct {
	// MedianEndurance is the nominal writes-to-failure (the lognormal
	// median, exp(µ)).
	MedianEndurance float64
	// Sigma is the lognormal shape parameter (σ of ln endurance); 0
	// collapses every device onto the deterministic Eq. 4 lifetime.
	Sigma float64
}

// DefaultQuantiles are the fleet-survival points reported when Params
// leaves Quantiles nil: B1, B10 and B50.
var DefaultQuantiles = []float64{0.01, 0.10, 0.50}

// Params configures one Survive call.
type Params struct {
	// Devices is the fleet population to simulate (must be positive).
	Devices int
	// Seed fixes the draw streams; a (Seed, Devices) pair reproduces
	// the sample vector exactly, for any Workers value.
	Seed int64
	// Workers bounds the pool fan-out (≤ 0 selects GOMAXPROCS).
	Workers int
	// Quantiles are the survival probabilities to extract, each in
	// [0, 1]; nil selects DefaultQuantiles.
	Quantiles []float64
	// Series, when non-nil, receives one row per finished draw batch
	// with the cumulative device count — the serving layer's progress
	// feed. The series must have exactly one column.
	Series *obs.Series
	// SeriesBase is added to every cumulative count reported on Series,
	// so a multi-point caller (pim.Fleet) can feed one series across a
	// whole strategy × technology × σ sweep and have it count devices
	// fleet-wide instead of restarting at zero each point.
	SeriesBase float64
}

// Result is the fleet-survival summary of one Survive call, in
// benchmark iterations.
type Result struct {
	// Devices is the simulated population size.
	Devices int
	// Groups is the number of distinct write-count groups.
	Groups int
	// Cells is the number of written cells per device.
	Cells int
	// Draws is the number of endurance quantile inversions performed —
	// compare against Devices×Cells for the collapse factor.
	Draws int64
	// Mean is the mean first-failure iteration count.
	Mean float64
	// Quantiles holds the first-failure iteration count at each
	// requested survival probability, parallel to Params.Quantiles
	// (or DefaultQuantiles).
	Quantiles []float64
	// DeterministicIterations is the paper's uniform-endurance Eq. 4
	// value, MedianEndurance / max write rate, for comparison.
	DeterministicIterations float64
}

// drawBatch is the logical batch size: the determinism unit (one RNG
// stream per batch) and the work-stealing granule. 8192 devices is
// well under a millisecond of draw work, small enough to load-balance
// and large enough that the per-batch bookkeeping vanishes.
const drawBatch = 8192

// Survive draws p.Devices iid devices against the grouped write
// distribution and returns mean and quantiles of the first-failure
// iteration count. The sample vector is a pure function of
// (g, m, p.Seed, p.Devices) — bit-identical across worker counts.
func (m Model) Survive(g *Groups, p Params) (Result, error) {
	if m.MedianEndurance <= 0 {
		return Result{}, fmt.Errorf("fleet: non-positive median endurance %v", m.MedianEndurance)
	}
	if m.Sigma < 0 {
		return Result{}, fmt.Errorf("fleet: negative sigma %v", m.Sigma)
	}
	if p.Devices <= 0 {
		return Result{}, fmt.Errorf("fleet: devices must be positive, got %d", p.Devices)
	}
	if g == nil || len(g.Rate) == 0 {
		return Result{}, fmt.Errorf("fleet: empty group set (use GroupCounts)")
	}
	quantiles := p.Quantiles
	if quantiles == nil {
		quantiles = DefaultQuantiles
	}
	res := Result{
		Devices:                 p.Devices,
		Groups:                  len(g.Rate),
		Cells:                   g.Cells,
		Quantiles:               make([]float64, len(quantiles)),
		DeterministicIterations: m.MedianEndurance / g.MaxRate(),
	}
	obsDevices.Add(int64(p.Devices))
	obsGroups.Add(int64(len(g.Rate)))

	if m.Sigma == 0 {
		// Point mass: every device fails at the deterministic lifetime.
		// No RNG is consumed and no sample buffer is needed. The
		// exp(log) round trip mirrors what a zero-σ draw evaluates to,
		// keeping the value consistent with the σ→0 limit of the
		// sampled path.
		v := math.Exp(math.Log(m.MedianEndurance)) / g.MaxRate()
		res.Mean = v
		for i := range res.Quantiles {
			res.Quantiles[i] = v
		}
		if p.Series != nil {
			p.Series.Add(p.SeriesBase + float64(p.Devices))
		}
		return res, nil
	}

	tbl := g.table(m.Sigma)
	n := p.Devices
	nBatches := (n + drawBatch - 1) / drawBatch
	samples := getBuf(n)
	defer putBuf(samples)
	// Per-batch partials, combined in batch order below so the mean is
	// as deterministic as the samples themselves.
	sums := make([]float64, nBatches)
	mins := make([]float64, nBatches)
	maxs := make([]float64, nBatches)
	var fallbacks, done atomic.Int64
	pool.ForEachWorker(p.Workers, nBatches, func(_, b int) {
		t0 := time.Now()
		lo, hi := b*drawBatch, min((b+1)*drawBatch, n)
		rng := newBatchRNG(p.Seed, b)
		bmin, bmax, bsum := math.Inf(1), math.Inf(-1), 0.0
		var bfallbacks int64
		for d := lo; d < hi; d++ {
			life := tbl.draw(&rng, m.MedianEndurance, &bfallbacks)
			samples[d] = life
			bsum += life
			if life < bmin {
				bmin = life
			}
			if life > bmax {
				bmax = life
			}
		}
		sums[b], mins[b], maxs[b] = bsum, bmin, bmax
		fallbacks.Add(bfallbacks)
		obsDraws.Add(int64(hi - lo))
		obsFallbacks.Add(bfallbacks)
		obsDrawHist.ObserveDuration(time.Since(t0))
		if p.Series != nil {
			p.Series.Add(p.SeriesBase + float64(done.Add(int64(hi-lo))))
		}
	})

	var sum float64
	gmin, gmax := math.Inf(1), math.Inf(-1)
	for b := 0; b < nBatches; b++ {
		sum += sums[b]
		gmin = math.Min(gmin, mins[b])
		gmax = math.Max(gmax, maxs[b])
	}
	res.Mean = sum / float64(n)
	res.Draws = int64(n)
	work := getBuf(1024)[:0]
	for i, q := range quantiles {
		res.Quantiles[i], work = stats.PercentileRadixFloat(samples, q, gmin, gmax, work)
	}
	putBuf(work)
	return res, nil
}

// hazardGrid is the number of tabulated points of H⁻¹. 4096 log-spaced
// lifetime points over the reachable Exp(1) range keep the log-log
// interpolation error near 1e−7 relative while the two parallel grid
// arrays stay a cache-friendly 64 KB.
const hazardGrid = 4096

// hazardTable is the precomputed inverse of a grouped distribution's
// cumulative hazard H(x) = Σⱼ −nⱼ·ln SF(x·rⱼ), normalized to median
// endurance 1 (a different median shifts ln x by ln median, applied at
// draw time). lnx is uniform in log-lifetime; lnH is strictly
// increasing, so a draw is a binary search plus one interpolation.
// Read-only after build; shared by every worker and every technology.
type hazardTable struct {
	l     stats.Lognormal // median 1, the table's σ
	g     *Groups
	lnx0  float64 // ln lifetime at grid point 0
	dlnx  float64 // grid spacing in ln lifetime
	lnH   []float64
	lnxHi float64 // ln lifetime at the last grid point
}

// hazardFloor and hazardCeil bound the tabulated hazard range. An
// Exp(1) draw from the engine's strictly-interior uniforms lies in
// [−ln(1 − 2⁻⁵⁴), −ln(2⁻⁵⁴)] ⊂ [5e−17, 37.5], so a table solved out to
// [1e−18, 38] covers every reachable draw and the bisection fallback is
// measure-zero insurance.
const (
	hazardFloor = 1e-18
	hazardCeil  = 38
)

// table returns the per-σ hazard inverse, building and caching it on
// first use. Tables depend only on (Groups, σ): a strategy's groups are
// computed once and replayed across every technology × σ sweep point.
func (g *Groups) table(sigma float64) *hazardTable {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.tables[sigma]; ok {
		return t
	}
	t := buildTable(stats.Lognormal{Mu: 0, Sigma: sigma}, g)
	if g.tables == nil {
		g.tables = map[float64]*hazardTable{}
	}
	g.tables[sigma] = t
	return t
}

// hazardAt evaluates the exact cumulative hazard at normalized
// lifetime x.
func hazardAt(l stats.Lognormal, g *Groups, x float64) float64 {
	var h float64
	for j, r := range g.Rate {
		h += l.MinHazard(x*r, g.Size[j])
	}
	return h
}

// buildTable brackets the lifetime range covering H ∈ [hazardFloor,
// hazardCeil] by doubling/halving from the deterministic lifetime
// (H is monotone in x), then tabulates ln H on a log-spaced lifetime
// grid. Cost is O(hazardGrid × groups) erfc evaluations — paid once
// per (Groups, σ) and amortized over millions of draws.
func buildTable(l stats.Lognormal, g *Groups) *hazardTable {
	det := 1 / g.Rate[0] // deterministic lifetime at median 1
	lo, hi := det, det
	for i := 0; hazardAt(l, g, lo) > hazardFloor && i < 4000; i++ {
		lo /= 2
	}
	for i := 0; hazardAt(l, g, hi) < hazardCeil && i < 4000; i++ {
		hi *= 2
	}
	// Tighten the low end: a power-of-two bracket can waste decades of
	// grid on hazard far below the floor. 40 log-bisections pin the
	// H = hazardFloor crossing to float precision.
	blo, bhi := lo, hi
	for i := 0; i < 40; i++ {
		mid := math.Sqrt(blo * bhi)
		if hazardAt(l, g, mid) > hazardFloor {
			bhi = mid
		} else {
			blo = mid
		}
	}
	lo = blo

	t := &hazardTable{
		l:     l,
		g:     g,
		lnx0:  math.Log(lo),
		lnxHi: math.Log(hi),
		lnH:   make([]float64, hazardGrid),
	}
	t.dlnx = (t.lnxHi - t.lnx0) / (hazardGrid - 1)
	prev := math.Inf(-1)
	for i := range t.lnH {
		h := hazardAt(l, g, math.Exp(t.lnx0+float64(i)*t.dlnx))
		v := math.Log(h)
		// Enforce strict increase so the draw-time binary search stays
		// well-defined even where float rounding flattens the curve.
		if v <= prev {
			v = math.Nextafter(prev, math.Inf(1))
		}
		t.lnH[i] = v
		prev = v
	}
	return t
}

// draw samples one device's first-failure lifetime: E ~ Exp(1), then
// median·H⁻¹(E).
func (t *hazardTable) draw(rng *drawRNG, median float64, fallbacks *int64) float64 {
	return median * t.invert(rng.exp(), fallbacks)
}

// invert returns the normalized (median 1) lifetime H⁻¹(e) via the
// table — binary search plus log-log interpolation — falling back to
// exact bisection for the measure-zero draws outside the tabulated
// range.
func (t *hazardTable) invert(e float64, fallbacks *int64) float64 {
	le := math.Log(e)
	if le < t.lnH[0] || le > t.lnH[len(t.lnH)-1] {
		*fallbacks++
		return t.solveExact(e)
	}
	lo, hi := 0, len(t.lnH)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.lnH[mid] < le {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// le ∈ (lnH[lo−1], lnH[lo]]; lo = 0 only when le equals the first
	// grid value exactly, which resolves to the grid edge.
	if lo == 0 {
		return math.Exp(t.lnx0)
	}
	w := (le - t.lnH[lo-1]) / (t.lnH[lo] - t.lnH[lo-1])
	return math.Exp(t.lnx0 + (float64(lo-1)+w)*t.dlnx)
}

// solveExact inverts the hazard by bisection for draws outside the
// table — exact to float precision, O(groups·log) per call, and
// essentially never taken (see hazardFloor/hazardCeil).
func (t *hazardTable) solveExact(e float64) float64 {
	lo, hi := math.Exp(t.lnx0), math.Exp(t.lnxHi)
	for i := 0; hazardAt(t.l, t.g, lo) > e && i < 4000; i++ {
		lo /= 2
	}
	for i := 0; hazardAt(t.l, t.g, hi) < e && i < 4000; i++ {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if mid <= lo || mid >= hi {
			break
		}
		if hazardAt(t.l, t.g, mid) < e {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// The sample-buffer free list: Survive's only large allocation is the
// per-call device sample vector, pooled here so steady-state fleet
// traffic (serve jobs, benchmarks, sweeps) redraws into warm buffers.
// Buffers are owned exclusively between get and put, as in the engine
// arena (ARCHITECTURE.md "Memory discipline").
var (
	bufMu   sync.Mutex
	bufFree [][]float64
)

// getBuf pops (or allocates) a float buffer with length n. Contents are
// unspecified; callers overwrite every slot.
func getBuf(n int) []float64 {
	bufMu.Lock()
	for i := len(bufFree) - 1; i >= 0; i-- {
		if cap(bufFree[i]) >= n {
			b := bufFree[i]
			bufFree[i] = bufFree[len(bufFree)-1]
			bufFree = bufFree[:len(bufFree)-1]
			bufMu.Unlock()
			return b[:n]
		}
	}
	bufMu.Unlock()
	return make([]float64, n)
}

// putBuf returns a buffer to the free list. The list is bounded so a
// burst of concurrent calls cannot pin an unbounded number of
// multi-megabyte buffers.
func putBuf(b []float64) {
	bufMu.Lock()
	if len(bufFree) < 8 {
		bufFree = append(bufFree, b)
	}
	bufMu.Unlock()
}
