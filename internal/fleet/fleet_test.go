package fleet

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"pimendure/internal/stats"
)

// ksConfigs are the distribution shapes the engine is validated
// against: one group (degenerate), a hot cell over a uniform floor,
// many small groups, and a long-tailed mix with unwritten cells.
var ksConfigs = []struct {
	name   string
	counts []uint64
}{
	{"uniform", repeat(100, 64)},
	{"hot-cell", append(repeat(10, 63), 1000)},
	{"ramp", ramp(64)},
	{"long-tail", longTail()},
}

func repeat(v uint64, n int) []uint64 {
	c := make([]uint64, n)
	for i := range c {
		c[i] = v
	}
	return c
}

func ramp(n int) []uint64 {
	c := make([]uint64, n)
	for i := range c {
		c[i] = uint64(i + 1)
	}
	return c
}

func longTail() []uint64 {
	c := make([]uint64, 96)
	for i := range c {
		switch {
		case i < 16: // unwritten cells must be ignored
			c[i] = 0
		case i < 80:
			c[i] = uint64(5 + i%7)
		default:
			c[i] = uint64(100 * (i - 78))
		}
	}
	return c
}

// referenceSample is the O(cells) per-device sampler the engine must
// match: one endurance draw per written cell, min over cells of
// endurance/rate.
func referenceSample(counts []uint64, iterations, trials int, m Model, seed int64) []float64 {
	l := stats.LognormalMedian(m.MedianEndurance, m.Sigma)
	var rates []float64
	for _, c := range counts {
		if c != 0 {
			rates = append(rates, float64(c)/float64(iterations))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, trials)
	for t := range out {
		first := math.Inf(1)
		for _, r := range rates {
			if life := l.Draw(rng) / r; life < first {
				first = life
			}
		}
		out[t] = first
	}
	return out
}

// ksDistance returns the two-sample Kolmogorov–Smirnov statistic of
// two sorted samples.
func ksDistance(a, b []float64) float64 {
	var d float64
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if a[i] <= b[k] {
			i++
		} else {
			k++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(k)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// engineSample draws trials devices through the hazard table with
// Survive's own batch seeding, returning the raw sample vector for KS.
func engineSample(counts []uint64, iterations, trials int, m Model, seed int64) []float64 {
	g, err := GroupCounts(counts, iterations)
	if err != nil {
		panic(err)
	}
	tbl := g.table(m.Sigma)
	out := make([]float64, trials)
	var fallbacks int64
	for b := 0; b*drawBatch < trials; b++ {
		rng := newBatchRNG(seed, b)
		for d := b * drawBatch; d < min((b+1)*drawBatch, trials); d++ {
			out[d] = tbl.draw(&rng, m.MedianEndurance, &fallbacks)
		}
	}
	return out
}

// TestKSAgainstReference is the statistical acceptance gate: across 3 σ
// values and 4 distribution shapes, the screened order-statistic
// sampler and the per-cell reference must produce samples from the same
// distribution at KS significance α = 0.001.
func TestKSAgainstReference(t *testing.T) {
	trials := 100_000
	if raceEnabled || testing.Short() {
		trials = 10_000
	}
	// c(α=0.001) = 1.949 for the two-sample statistic.
	crit := 1.949 * math.Sqrt(2/float64(trials))
	for _, cfg := range ksConfigs {
		for _, sigma := range []float64{0.15, 0.3, 0.6} {
			m := Model{MedianEndurance: 1e6, Sigma: sigma}
			ref := referenceSample(cfg.counts, 50, trials, m, 11)
			got := engineSample(cfg.counts, 50, trials, m, 23)
			sort.Float64s(ref)
			sort.Float64s(got)
			if d := ksDistance(ref, got); d > crit {
				t.Errorf("%s σ=%v: KS distance %.5f > %.5f", cfg.name, sigma, d, crit)
			}
		}
	}
}

// TestWorkerDeterminism pins the bit-stability invariant: the same
// (seed, devices) must produce identical results for 1 worker, 3
// workers and GOMAXPROCS workers.
func TestWorkerDeterminism(t *testing.T) {
	g, err := GroupCounts(ksConfigs[2].counts, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{MedianEndurance: 1e6, Sigma: 0.4}
	var base Result
	for i, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		res, err := m.Survive(g, Params{Devices: 50_000, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.Mean != base.Mean || res.Draws != base.Draws {
			t.Errorf("workers=%d: mean %v draws %d, want %v / %d",
				workers, res.Mean, res.Draws, base.Mean, base.Draws)
		}
		for k := range res.Quantiles {
			if res.Quantiles[k] != base.Quantiles[k] {
				t.Errorf("workers=%d: quantile[%d] %v != %v",
					workers, k, res.Quantiles[k], base.Quantiles[k])
			}
		}
	}
}

// TestInversionAccuracy drives the table inverse directly: pushing the
// returned lifetime back through the exact hazard must reproduce the
// Exp(1) input to well under any KS-detectable error, across the full
// reachable range including the extreme tails.
func TestInversionAccuracy(t *testing.T) {
	for _, sigma := range []float64{0.1, 0.3, 1.0} {
		g, err := GroupCounts(ksConfigs[3].counts, 50)
		if err != nil {
			t.Fatal(err)
		}
		tbl := g.table(sigma)
		es := []float64{5.5e-17, 1e-12, 1e-6, 1e-3, 0.01, 0.1, 0.5, 1, 2, 5, 10, 20, 30, 37}
		rng := newBatchRNG(1, 0)
		for i := 0; i < 200; i++ {
			es = append(es, rng.exp())
		}
		var fallbacks int64
		for _, e := range es {
			x := tbl.invert(e, &fallbacks)
			back := hazardAt(tbl.l, g, x)
			if math.Abs(back-e) > 1e-4*e {
				t.Errorf("σ=%v: H(H⁻¹(%g)) = %g (rel err %.2e)", sigma, e, back, math.Abs(back-e)/e)
			}
		}
		if fallbacks != 0 {
			t.Errorf("σ=%v: %d in-range draws fell back to bisection", sigma, fallbacks)
		}
	}
}

// TestSolveExact pins the out-of-table fallback against the same
// round-trip invariant.
func TestSolveExact(t *testing.T) {
	g, err := GroupCounts(ksConfigs[2].counts, 50)
	if err != nil {
		t.Fatal(err)
	}
	tbl := g.table(0.3)
	for _, e := range []float64{1e-20, 1e-17, 0.5, 37, 40} {
		x := tbl.solveExact(e)
		back := hazardAt(tbl.l, g, x)
		if math.Abs(back-e) > 1e-9*e {
			t.Errorf("solveExact(%g): H = %g", e, back)
		}
	}
}

// TestSurviveMatchesReferenceMoments cross-checks Survive's mean and
// median against the reference sampler on a mid-size run.
func TestSurviveMatchesReferenceMoments(t *testing.T) {
	trials := 40_000
	if raceEnabled || testing.Short() {
		trials = 8_000
	}
	m := Model{MedianEndurance: 2e6, Sigma: 0.45}
	counts := ksConfigs[1].counts
	g, err := GroupCounts(counts, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Survive(g, Params{Devices: trials, Seed: 5, Quantiles: []float64{0.01, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceSample(counts, 20, trials, m, 9)
	sort.Float64s(ref)
	var refMean float64
	for _, v := range ref {
		refMean += v
	}
	refMean /= float64(len(ref))
	if math.Abs(res.Mean-refMean) > 0.03*refMean {
		t.Errorf("mean %v, reference %v", res.Mean, refMean)
	}
	refMedian := ref[len(ref)/2]
	if math.Abs(res.Quantiles[1]-refMedian) > 0.03*refMedian {
		t.Errorf("median %v, reference %v", res.Quantiles[1], refMedian)
	}
	if res.Quantiles[0] >= res.Quantiles[1] {
		t.Error("B1 should fall below B50")
	}
	if res.DeterministicIterations != 2e6/g.MaxRate() {
		t.Errorf("deterministic = %v", res.DeterministicIterations)
	}
	// The collapse must actually collapse: draws ≪ devices × cells.
	if res.Draws >= int64(trials*g.Cells)/10 {
		t.Errorf("%d draws for %d×%d device-cells: no collapse", res.Draws, trials, g.Cells)
	}
}

func TestSurviveSigmaZero(t *testing.T) {
	g, err := GroupCounts([]uint64{100, 50, 0, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{MedianEndurance: 1e6, Sigma: 0}
	res, err := m.Survive(g, Params{Devices: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 / 10.0
	if math.Abs(res.Mean-want) > 1e-6*want {
		t.Errorf("mean = %v, want %v", res.Mean, want)
	}
	for _, q := range res.Quantiles {
		if q != res.Mean {
			t.Errorf("σ=0 quantile %v != mean %v", q, res.Mean)
		}
	}
	if res.Draws != 0 {
		t.Errorf("σ=0 consumed %d draws", res.Draws)
	}
}

func TestGroupCounts(t *testing.T) {
	g, err := GroupCounts([]uint64{4, 0, 2, 4, 4, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells != 5 || len(g.Rate) != 3 {
		t.Fatalf("cells=%d groups=%d, want 5/3", g.Cells, len(g.Rate))
	}
	wantRate := []float64{2, 1, 0.5}
	wantSize := []float64{3, 1, 1}
	for i := range wantRate {
		if g.Rate[i] != wantRate[i] || g.Size[i] != wantSize[i] {
			t.Errorf("group %d = (%v, %v), want (%v, %v)", i, g.Rate[i], g.Size[i], wantRate[i], wantSize[i])
		}
	}
	if g.MaxRate() != 2 {
		t.Errorf("MaxRate = %v", g.MaxRate())
	}
	if _, err := GroupCounts([]uint64{0, 0}, 10); err == nil {
		t.Error("all-zero distribution should error")
	}
	if _, err := GroupCounts([]uint64{1}, 0); err == nil {
		t.Error("zero iterations should error")
	}
}

func TestSurviveValidation(t *testing.T) {
	g, _ := GroupCounts([]uint64{1}, 1)
	cases := []struct {
		m Model
		p Params
	}{
		{Model{MedianEndurance: 0, Sigma: 0.3}, Params{Devices: 10}},
		{Model{MedianEndurance: 1e6, Sigma: -1}, Params{Devices: 10}},
		{Model{MedianEndurance: 1e6, Sigma: 0.3}, Params{Devices: 0}},
	}
	for i, c := range cases {
		if _, err := c.m.Survive(g, c.p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := (Model{MedianEndurance: 1e6, Sigma: 0.3}).Survive(&Groups{}, Params{Devices: 10}); err == nil {
		t.Error("empty groups should error")
	}
}

// BenchmarkSurvive measures raw device draw throughput on a synthetic
// 1000-group distribution — the degeneracy the paper-scale randomized
// strategies actually produce. The root-level BenchmarkFleet covers the
// end-to-end path on a real simulated distribution.
func BenchmarkSurvive(b *testing.B) {
	counts := make([]uint64, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range counts {
		counts[i] = uint64(1000 + rng.Intn(1000))
	}
	g, err := GroupCounts(counts, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := Model{MedianEndurance: 1e6, Sigma: 0.3}
	const devices = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Survive(g, Params{Devices: devices, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
}

// TestBatchRNGStreamsDisjoint guards the seeding mistake splitmix64
// invites: adjacent batch streams must not be shifted copies of each
// other.
func TestBatchRNGStreamsDisjoint(t *testing.T) {
	a := newBatchRNG(1, 0)
	b := newBatchRNG(1, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.next()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.next()] {
			t.Fatal("batch 0 and batch 1 streams overlap")
		}
	}
}
