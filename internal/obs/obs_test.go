package obs_test

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pimendure/internal/obs"
)

// withObs runs fn with the layer enabled against a clean registry and
// restores the disabled default afterwards. Tests in this package must
// not run in parallel: the registry is process-wide.
func withObs(t *testing.T, fn func()) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fn()
}

// Counters must be exact under concurrent hammering from many
// goroutines — the pool workers of a sweep all add to the same totals.
func TestCounterConcurrentAccuracy(t *testing.T) {
	withObs(t, func() {
		c := obs.GetCounter("test.concurrent")
		const goroutines, perG = 16, 10000
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					c.Add(3)
				}
			}()
		}
		wg.Wait()
		if got, want := c.Value(), int64(goroutines*perG*3); got != want {
			t.Errorf("counter = %d, want %d", got, want)
		}
	})
}

// A gauge keeps the maximum observed value regardless of the order
// observations land in.
func TestGaugeWatermark(t *testing.T) {
	withObs(t, func() {
		g := obs.GetGauge("test.depth")
		var wg sync.WaitGroup
		for v := 1; v <= 100; v++ {
			wg.Add(1)
			go func(v int64) {
				defer wg.Done()
				g.Observe(v)
			}(int64(v))
		}
		wg.Wait()
		if got := g.Value(); got != 100 {
			t.Errorf("gauge watermark = %d, want 100", got)
		}
		g.Observe(5) // lower observation must not regress the watermark
		if got := g.Value(); got != 100 {
			t.Errorf("gauge watermark regressed to %d", got)
		}
	})
}

// GetCounter must hand back the same counter for the same name, so
// independent call sites accumulate into one total.
func TestRegistryIdentity(t *testing.T) {
	withObs(t, func() {
		a := obs.GetCounter("test.same")
		b := obs.GetCounter("test.same")
		if a != b {
			t.Fatal("GetCounter returned distinct counters for one name")
		}
		a.Add(1)
		b.Add(1)
		if got := a.Value(); got != 2 {
			t.Errorf("shared counter = %d, want 2", got)
		}
	})
}

// Spans nest: a child records under "parent/child", both stages appear
// in the capture, and the child's time is bounded by the parent's.
func TestSpanNesting(t *testing.T) {
	withObs(t, func() {
		root := obs.StartSpan("stage")
		child := root.Child("inner")
		time.Sleep(2 * time.Millisecond)
		child.End()
		grand := root.Child("inner") // same name accumulates on one timer
		grand.End()
		root.End()

		s := obs.Capture()
		byName := map[string]obs.Stage{}
		for _, st := range s.Stages {
			byName[st.Name] = st
		}
		parent, ok := byName["stage"]
		if !ok {
			t.Fatal("parent stage not captured")
		}
		inner, ok := byName["stage/inner"]
		if !ok {
			t.Fatal("child stage not captured under parent/child name")
		}
		if inner.Count != 2 {
			t.Errorf("child span count = %d, want 2", inner.Count)
		}
		if parent.Count != 1 {
			t.Errorf("parent span count = %d, want 1", parent.Count)
		}
		if inner.Seconds > parent.Seconds {
			t.Errorf("child time %.6fs exceeds parent %.6fs", inner.Seconds, parent.Seconds)
		}
	})
}

// Concurrent spans on one stage accumulate both count and time.
func TestSpanConcurrent(t *testing.T) {
	withObs(t, func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sp := obs.StartSpan("test.worker")
				time.Sleep(time.Millisecond)
				sp.End()
			}()
		}
		wg.Wait()
		s := obs.Capture()
		for _, st := range s.Stages {
			if st.Name == "test.worker" {
				if st.Count != 8 {
					t.Errorf("span count = %d, want 8", st.Count)
				}
				if st.Seconds <= 0 {
					t.Errorf("span total = %v, want > 0", st.Seconds)
				}
				return
			}
		}
		t.Fatal("stage test.worker not captured")
	})
}

// Disabled (the default), every primitive must record nothing and the
// zero Span must be safe to End and to derive children from.
func TestDisabledNoOp(t *testing.T) {
	obs.Reset()
	obs.Disable()
	c := obs.GetCounter("test.disabled")
	c.Add(42)
	g := obs.GetGauge("test.disabled.gauge")
	g.Observe(7)
	sp := obs.StartSpan("test.disabled.stage")
	child := sp.Child("inner")
	child.End()
	sp.End()

	if got := c.Value(); got != 0 {
		t.Errorf("disabled counter recorded %d", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("disabled gauge recorded %d", got)
	}
	s := obs.Capture()
	if len(s.Stages) != 0 || len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Errorf("disabled capture not empty: %+v", s)
	}
}

// Reset zeroes values but keeps registrations (package-level handles
// stay live).
func TestResetKeepsHandles(t *testing.T) {
	withObs(t, func() {
		c := obs.GetCounter("test.reset")
		c.Add(5)
		obs.Reset()
		if got := c.Value(); got != 0 {
			t.Errorf("counter after Reset = %d", got)
		}
		c.Add(2)
		if got := c.Value(); got != 2 {
			t.Errorf("counter handle dead after Reset: %d", got)
		}
	})
}

// A manifest must round-trip through its JSON file bit-exactly on the
// fields a reader consumes: config, seed, stages, counters.
func TestManifestRoundTrip(t *testing.T) {
	withObs(t, func() {
		obs.GetCounter("test.writes").Add(12345)
		obs.GetGauge("test.depth").Observe(9)
		sp := obs.StartSpan("test.stage")
		sp.End()

		m := obs.NewManifest("unittest")
		m.Config = map[string]any{"iters": 100.0, "bench": "mult"}
		m.Seed = 77
		m.Finish()

		dir := t.TempDir()
		if err := m.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
		path := m.Path(dir)
		if filepath.Base(path) != "manifest_unittest.json" {
			t.Errorf("manifest path = %s", path)
		}
		back, err := obs.ReadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Command != "unittest" || back.Seed != 77 {
			t.Errorf("round-trip lost identity: %+v", back)
		}
		if back.Config["iters"] != 100.0 || back.Config["bench"] != "mult" {
			t.Errorf("round-trip lost config: %+v", back.Config)
		}
		if back.Counters["test.writes"] != 12345 {
			t.Errorf("round-trip lost counters: %+v", back.Counters)
		}
		if back.Gauges["test.depth"] != 9 {
			t.Errorf("round-trip lost gauges: %+v", back.Gauges)
		}
		found := false
		for _, st := range back.Stages {
			if st.Name == "test.stage" && st.Count == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("round-trip lost stages: %+v", back.Stages)
		}
		if back.WallSeconds < 0 {
			t.Errorf("negative wall time %v", back.WallSeconds)
		}
	})
}

// The Run lifecycle must register flags, enable the layer, print the
// -metrics table and write the manifest.
func TestRunLifecycle(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("clitest", fs)
	if err := fs.Parse([]string{"-metrics"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("Start did not enable the layer")
	}
	obs.GetCounter("test.cli").Add(3)

	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run.Finish(dir, map[string]any{"x": 1}, 5, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test.cli") {
		t.Errorf("-metrics table missing counter:\n%s", buf.String())
	}
	m, err := obs.ReadManifest(filepath.Join(dir, "manifest_clitest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["test.cli"] != 3 || m.Seed != 5 {
		t.Errorf("manifest wrong: %+v", m)
	}
}

// WriteTable must render stages and counters in a stable, aligned form.
func TestWriteTable(t *testing.T) {
	withObs(t, func() {
		obs.GetCounter("b.counter").Add(2)
		obs.GetCounter("a.counter").Add(1)
		sp := obs.StartSpan("some.stage")
		sp.End()
		var buf bytes.Buffer
		if err := obs.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{"some.stage", "a.counter", "b.counter"} {
			if !strings.Contains(out, want) {
				t.Errorf("table missing %q:\n%s", want, out)
			}
		}
		if strings.Index(out, "a.counter") > strings.Index(out, "b.counter") {
			t.Errorf("counters not sorted:\n%s", out)
		}
	})
}
