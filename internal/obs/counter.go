package obs

import "sync/atomic"

// Counter is a named monotonic total (writes accumulated, memo hits,
// epochs simulated). Adds are lock-free and safe from any number of
// goroutines; while the layer is disabled an Add is one atomic load.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when the layer is enabled; disabled it
// records nothing.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the accumulated total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named max-watermark level: Observe proposes a value and the
// gauge keeps the highest seen since the last Reset. The wear engine's
// pool reports its queue depth through one — a sweep's manifest then
// shows the deepest backlog the bounded pool ever held.
type Gauge struct {
	name string
	max  atomic.Int64
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Observe raises the watermark to v if v is the highest value seen so
// far. Lock-free; disabled it records nothing.
func (g *Gauge) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the highest observed value.
func (g *Gauge) Value() int64 { return g.max.Load() }
