package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every Histogram: one bucket
// per possible bits.Len64 of a recorded value (0..64), so bucketing is a
// single leading-zero count with no search and no configuration.
const histBuckets = 65

// Histogram is a lock-free log-bucketed distribution: recorded values
// land in powers-of-two buckets (value v goes to bucket bits.Len64(v),
// i.e. bucket i holds 2^(i-1) ≤ v < 2^i, bucket 0 holds v = 0) kept in a
// fixed array of atomics, alongside an exact sum and count. Like Counter
// and Gauge, a disabled Observe is one atomic load; enabled it is three
// atomic adds — cheap enough for request-granularity recording (job
// latency, queue wait, payload sizes), and deliberately never placed in
// the per-op replay loops.
//
// The scale factor converts raw recorded integers into exported units:
// duration histograms record nanoseconds and export seconds (scale 1e-9),
// size histograms record and export raw counts (scale 1). Exposition
// follows the Prometheus histogram convention — cumulative _bucket
// samples with le labels, then _sum and _count.
type Histogram struct {
	name    string
	scale   float64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Observe records one raw value (negative values clamp to 0) when the
// layer is enabled; disabled it records nothing.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

// ObserveDuration records a duration on a nanosecond-scaled histogram.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns how many values have been recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of recorded values in exported units
// (seconds for duration histograms).
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) * h.scale }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in exported units by
// linear interpolation inside the log bucket holding the target rank —
// exact to within one power-of-two bucket, which is the histogram's
// resolution by design. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / n
			return (lo + frac*(hi-lo)) * h.scale
		}
		cum += n
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi * h.scale
}

// bucketBounds returns bucket i's raw value range [lo, hi]: bucket 0 is
// exactly 0, bucket i ≥ 1 covers 2^(i-1) .. 2^i - 1.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, i-1)
	hi = math.Ldexp(1, i) - 1
	return lo, hi
}

// HistogramBucket is one non-empty bucket in a snapshot: the bucket's
// inclusive upper bound in exported units and its (non-cumulative)
// count.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in exported units.
	LE float64 `json:"le"`
	// Count is the number of values recorded in this bucket alone
	// (Prometheus exposition cumulates; snapshots stay per-bucket).
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of one histogram for
// manifests and Capture: exact count and sum plus the non-empty buckets.
type HistogramSnapshot struct {
	// Name is the registry name.
	Name string `json:"name"`
	// Count and Sum are the exact totals (Sum in exported units).
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Count: h.count.Load(), Sum: h.Sum()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			_, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, HistogramBucket{LE: hi * h.scale, Count: n})
		}
	}
	return s
}

// Quantile estimates the q-quantile of a snapshot, mirroring
// Histogram.Quantile — the client-side counterpart used by tools that
// read histograms back from a manifest or the /metrics exposition.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		n := float64(b.Count)
		if cum+n >= rank {
			// The snapshot keeps only the upper bound; approximate the lower
			// bound as half of it (the log-bucket geometry).
			lo := b.LE / 2
			if b.LE == 0 {
				lo = 0
			}
			return lo + (rank-cum)/n*(b.LE-lo)
		}
		cum += n
	}
	return s.Buckets[len(s.Buckets)-1].LE
}

// GetHistogram returns the process-wide raw-value histogram with the
// given name (scale 1: sizes, counts), creating and registering it on
// first use. Registering a name already held by another kind panics.
func GetHistogram(name string) *Histogram { return getHistogram(name, 1) }

// GetDurationHistogram returns the process-wide duration histogram with
// the given name: values are recorded in nanoseconds (ObserveDuration)
// and exported in seconds. The exposition family is "<name>_seconds".
func GetDurationHistogram(name string) *Histogram { return getHistogram(name, 1e-9) }

func getHistogram(name string, scale float64) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	h, ok := registry.histograms[name]
	if !ok {
		claimName(name, "histogram")
		h = &Histogram{name: name, scale: scale}
		registry.histograms[name] = h
	}
	return h
}
