package obs_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"pimendure/internal/obs"
)

// withEvents is withObs plus span-event recording at the given capacity.
func withEvents(t *testing.T, capacity int, fn func()) {
	t.Helper()
	withObs(t, func() {
		obs.EnableEvents(capacity)
		defer obs.DisableEvents()
		fn()
	})
}

// Spans must emit paired begin/end events carrying the stage name and a
// consistent goroutine id, in chronological order.
func TestEventRingRecordsSpans(t *testing.T) {
	withEvents(t, 64, func() {
		sp := obs.StartSpan("ev.stage")
		child := sp.Child("inner")
		child.End()
		sp.End()
		evs := obs.TraceEvents()
		if len(evs) != 4 {
			t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
		}
		wantNames := []string{"ev.stage", "ev.stage/inner", "ev.stage/inner", "ev.stage"}
		wantPh := []byte{obs.EventBegin, obs.EventBegin, obs.EventEnd, obs.EventEnd}
		for i, ev := range evs {
			if ev.Name != wantNames[i] || ev.Ph != wantPh[i] {
				t.Errorf("event %d = {%q %c}, want {%q %c}", i, ev.Name, ev.Ph, wantNames[i], wantPh[i])
			}
			if ev.TID != evs[0].TID {
				t.Errorf("event %d on tid %d, want all on %d (single goroutine)", i, ev.TID, evs[0].TID)
			}
			if i > 0 && ev.TS < evs[i-1].TS {
				t.Errorf("event %d timestamp regresses: %d after %d", i, ev.TS, evs[i-1].TS)
			}
		}
		st := obs.CaptureEventStats()
		if st.Recorded != 4 || st.Dropped != 0 || st.Capacity != 64 {
			t.Errorf("stats = %+v, want recorded 4, dropped 0, capacity 64", st)
		}
	})
}

// The bounded ring drops oldest entries and never grows: overflowing it
// must keep exactly the newest `capacity` events and account the rest as
// dropped.
func TestEventRingDropOldest(t *testing.T) {
	withEvents(t, 8, func() {
		for i := 0; i < 10; i++ {
			obs.StartSpan("ev.overflow").End() // 2 events each
		}
		st := obs.CaptureEventStats()
		if st.Recorded != 20 {
			t.Fatalf("recorded %d, want 20", st.Recorded)
		}
		if st.Dropped != 12 {
			t.Errorf("dropped %d, want 12", st.Dropped)
		}
		evs := obs.TraceEvents()
		if len(evs) != 8 {
			t.Fatalf("ring holds %d events, want capacity 8", len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].TS < evs[i-1].TS {
				t.Errorf("post-wrap snapshot out of order at %d", i)
			}
		}
	})
}

// Concurrent span emission from many goroutines must be safe (this test
// is the heart of the `go test -race ./internal/obs` gate) and lose no
// events while the ring has room.
func TestEventRingConcurrent(t *testing.T) {
	const goroutines, spans = 8, 50
	withEvents(t, 2*goroutines*spans, func() {
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < spans; i++ {
					obs.StartSpan("ev.concurrent").End()
				}
			}()
		}
		wg.Wait()
		st := obs.CaptureEventStats()
		if want := uint64(2 * goroutines * spans); st.Recorded != want || st.Dropped != 0 {
			t.Errorf("stats = %+v, want recorded %d dropped 0", st, want)
		}
		// Each goroutine's events must carry its own id — the trace
		// viewer's per-track invariant.
		tids := map[int64]int{}
		for _, ev := range obs.TraceEvents() {
			tids[ev.TID]++
		}
		if len(tids) != goroutines {
			t.Errorf("events span %d goroutine ids, want %d", len(tids), goroutines)
		}
		for tid, n := range tids {
			if n != 2*spans {
				t.Errorf("tid %d has %d events, want %d", tid, n, 2*spans)
			}
		}
	})
}

// Spans started while the ring is off must stay invisible — including
// their End, even if recording turns on mid-span.
func TestEventsOffNoRecord(t *testing.T) {
	withObs(t, func() {
		sp := obs.StartSpan("ev.dark")
		obs.EnableEvents(16)
		defer obs.DisableEvents()
		sp.End()
		if evs := obs.TraceEvents(); len(evs) != 0 {
			t.Errorf("span started before EnableEvents leaked %d events", len(evs))
		}
	})
}

// WriteTrace must emit the Chrome trace_event JSON Object Format:
// a traceEvents array of {name, ph, ts, pid, tid} objects with
// microsecond timestamps, loadable by Perfetto / chrome://tracing.
func TestWriteTraceSchema(t *testing.T) {
	withEvents(t, 64, func() {
		sp := obs.StartSpan("trace.stage")
		sp.Child("step").End()
		sp.End()
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string   `json:"name"`
				Ph   string   `json:"ph"`
				Ts   *float64 `json:"ts"`
				Pid  *int     `json:"pid"`
				Tid  *int64   `json:"tid"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("trace JSON does not match the trace_event schema: %v\n%s", err, buf.String())
		}
		if doc.DisplayTimeUnit != "ms" {
			t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
		}
		if len(doc.TraceEvents) != 4 {
			t.Fatalf("trace has %d events, want 4", len(doc.TraceEvents))
		}
		opens := 0
		for i, ev := range doc.TraceEvents {
			if ev.Name == "" {
				t.Errorf("event %d: empty name", i)
			}
			switch ev.Ph {
			case "B":
				opens++
			case "E":
				opens--
			default:
				t.Errorf("event %d: ph = %q, want B or E", i, ev.Ph)
			}
			if ev.Ts == nil || *ev.Ts < 0 {
				t.Errorf("event %d: missing or negative ts", i)
			}
			if ev.Pid == nil || ev.Tid == nil {
				t.Errorf("event %d: missing pid/tid", i)
			}
			if opens < 0 {
				t.Errorf("event %d: end before begin on a single-goroutine trace", i)
			}
		}
		if opens != 0 {
			t.Errorf("trace leaves %d slices open", opens)
		}
	})
}

// The registry refuses one name registered as two metric kinds.
func TestRegistryKindGuard(t *testing.T) {
	withObs(t, func() {
		obs.GetCounter("guard.metric")
		defer func() {
			if recover() == nil {
				t.Error("GetGauge on a counter name did not panic")
			}
		}()
		obs.GetGauge("guard.metric")
	})
}

// Timers carry a longest-single-span watermark alongside the totals.
func TestTimerMaxWatermark(t *testing.T) {
	withObs(t, func() {
		for i := 0; i < 3; i++ {
			sp := obs.StartSpan("wm.stage")
			busy := 0
			for j := 0; j < (i+1)*1000; j++ {
				busy += j
			}
			_ = busy
			sp.End()
		}
		var st *obs.Stage
		for _, s := range obs.Capture().Stages {
			if s.Name == "wm.stage" {
				c := s
				st = &c
			}
		}
		if st == nil {
			t.Fatal("stage not captured")
		}
		if st.MaxSeconds <= 0 {
			t.Error("max watermark not recorded")
		}
		if st.MaxSeconds > st.Seconds {
			t.Errorf("max span %v exceeds total %v", st.MaxSeconds, st.Seconds)
		}
		var buf bytes.Buffer
		if err := obs.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf.Bytes(), []byte("max span")) {
			t.Errorf("-metrics table lacks the max span column:\n%s", buf.String())
		}
	})
}
