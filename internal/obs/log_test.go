package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"pimendure/internal/obs"
)

// withLog enables the structured log around fn with a given ring size.
func withLog(t *testing.T, capacity int, fn func()) {
	t.Helper()
	obs.EnableLog(capacity)
	defer func() {
		obs.DisableLog()
		obs.Reset()
	}()
	fn()
}

// Records must come back in order with fields intact, and the JSONL
// export must hold one valid JSON object per line.
func TestLogRecordsAndJSONL(t *testing.T) {
	withLog(t, 16, func() {
		obs.LogEvent("test.first", "t01", map[string]any{"k": "v"})
		obs.LogEvent("test.second", "", nil)
		recs := obs.LogRecords(0)
		if len(recs) != 2 {
			t.Fatalf("LogRecords = %d records, want 2", len(recs))
		}
		if recs[0].Event != "test.first" || recs[0].Trace != "t01" || recs[0].Fields["k"] != "v" {
			t.Errorf("first record = %+v", recs[0])
		}
		if recs[1].Event != "test.second" || recs[1].Trace != "" {
			t.Errorf("second record = %+v", recs[1])
		}
		var buf bytes.Buffer
		if err := obs.WriteLogJSONL(&buf, 0); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(&buf)
		lines := 0
		for sc.Scan() {
			var rec obs.LogRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Errorf("line %d is not JSON: %v", lines, err)
			}
			lines++
		}
		if lines != 2 {
			t.Errorf("JSONL lines = %d, want 2", lines)
		}
	})
}

// The bounded ring drops oldest first and counts what it dropped.
func TestLogDropOldest(t *testing.T) {
	withLog(t, 4, func() {
		for i := 0; i < 10; i++ {
			obs.LogEvent("test.ev", "", map[string]any{"i": i})
		}
		st := obs.CaptureLogStats()
		if st.Recorded != 10 || st.Dropped != 6 || st.Capacity != 4 {
			t.Errorf("stats = %+v, want recorded 10 dropped 6 capacity 4", st)
		}
		recs := obs.LogRecords(0)
		if len(recs) != 4 {
			t.Fatalf("LogRecords = %d, want 4 (ring capacity)", len(recs))
		}
		// Newest four survive: i = 6..9 (fields are held as written, no
		// JSON round-trip, so the ints compare as ints).
		for k, rec := range recs {
			if want := 6 + k; rec.Fields["i"] != want {
				t.Errorf("record %d has i=%v, want %d", k, rec.Fields["i"], want)
			}
		}
		if tail := obs.LogRecords(2); len(tail) != 2 || tail[1].Fields["i"] != 9 {
			t.Errorf("LogRecords(2) = %+v, want the two newest", tail)
		}
	})
}

// Disabled, LogEvent must be a no-op (and must not panic with nil
// fields); re-enabling starts a fresh ring.
func TestLogDisabledNoOp(t *testing.T) {
	obs.DisableLog()
	obs.LogEvent("test.ignored", "", nil)
	if st := obs.CaptureLogStats(); st.Recorded != 0 && len(obs.LogRecords(0)) != 0 {
		// Recorded may be nonzero from a prior ring; the record list of a
		// disabled, unreset log must not grow.
		t.Errorf("disabled log grew: %+v", st)
	}
	withLog(t, 8, func() {
		if st := obs.CaptureLogStats(); st.Recorded != 0 {
			t.Errorf("fresh ring starts at recorded = %d, want 0", st.Recorded)
		}
	})
}

// Concurrent writers must conserve the recorded total.
func TestLogConcurrent(t *testing.T) {
	withLog(t, 1<<12, func() {
		const workers, per = 8, 500
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					obs.LogEvent("test.conc", "", nil)
				}
			}()
		}
		wg.Wait()
		if st := obs.CaptureLogStats(); st.Recorded != workers*per {
			t.Errorf("recorded = %d, want %d", st.Recorded, workers*per)
		}
	})
}

// Trace bindings are per-goroutine, restore correctly when nested, and
// propagate into span events so TraceEventsFor can filter one job out
// of the shared ring.
func TestTraceBinding(t *testing.T) {
	if obs.CurrentTrace() != "" {
		t.Fatal("goroutine starts with a trace bound")
	}
	restore := obs.SetTrace("t-outer")
	if got := obs.CurrentTrace(); got != "t-outer" {
		t.Errorf("CurrentTrace = %q, want t-outer", got)
	}
	inner := obs.SetTrace("t-inner")
	if got := obs.CurrentTrace(); got != "t-inner" {
		t.Errorf("nested CurrentTrace = %q, want t-inner", got)
	}
	inner()
	if got := obs.CurrentTrace(); got != "t-outer" {
		t.Errorf("after restore CurrentTrace = %q, want t-outer", got)
	}
	restore()
	if got := obs.CurrentTrace(); got != "" {
		t.Errorf("after outer restore CurrentTrace = %q, want empty", got)
	}
	if a, b := obs.NewTraceID(), obs.NewTraceID(); a == b || a == "" {
		t.Errorf("NewTraceID not unique: %q %q", a, b)
	}

	withObs(t, func() {
		obs.EnableEvents(256)
		defer obs.DisableEvents()
		done := obs.SetTrace("t-job")
		obs.StartSpan("trace.test.stage").End()
		done()
		obs.StartSpan("trace.test.untraced").End()
		evs := obs.TraceEventsFor("t-job")
		if len(evs) != 2 {
			t.Fatalf("TraceEventsFor = %d events, want 2 (begin+end)", len(evs))
		}
		for _, ev := range evs {
			if ev.Name != "trace.test.stage" || ev.Trace != "t-job" {
				t.Errorf("filtered event = %+v", ev)
			}
		}
		var buf bytes.Buffer
		if err := obs.WriteTraceFor(&buf, "t-job"); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.TraceEvents) != 2 {
			t.Fatalf("trace doc has %d events, want 2", len(doc.TraceEvents))
		}
		for _, te := range doc.TraceEvents {
			if te.Args["trace"] != "t-job" {
				t.Errorf("trace export missing args.trace: %+v", te)
			}
		}
	})
}
