package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLogCapacity is the structured-log ring size Run.Start allocates
// when the log is enabled. At one record per serving-layer event
// (admission, coalesce, rejection, completion) it holds the full history
// of a paper-scale load storm.
const DefaultLogCapacity = 1 << 16

// LogRecord is one structured event: a wall-clock timestamp, an event
// name ("serve.admit", "serve.complete"), the trace id of the job it
// belongs to, and free-form fields (config fingerprint, latency
// breakdown). Records marshal one-per-line into the JSONL artifact
// out/events_<cmd>.jsonl and stream from the -serve /events endpoint.
type LogRecord struct {
	// TimeMS is the record's wall-clock time in Unix milliseconds.
	TimeMS int64 `json:"t_ms"`
	// Event names what happened, dotted like metric names.
	Event string `json:"event"`
	// Trace is the job's trace id ("" for events outside any job).
	Trace string `json:"trace,omitempty"`
	// Fields carries event-specific detail (fingerprint, queue_ms, ...).
	Fields map[string]any `json:"fields,omitempty"`
}

// LogStats summarizes the log ring for manifests and /metrics, mirroring
// EventStats: total records accepted, records the bounded ring dropped
// (oldest first), and the ring capacity.
type LogStats struct {
	// Recorded counts every record ever pushed since EnableLog.
	Recorded uint64 `json:"recorded"`
	// Dropped counts pushes that overwrote a record the ring no longer
	// holds.
	Dropped uint64 `json:"dropped"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
}

// logRing is the process-wide structured-event log — the same bounded
// drop-oldest design as the span-event ring, but carrying wall-clock
// JSONL records at request granularity instead of span marks at stage
// granularity.
var logRing struct {
	mu   sync.Mutex
	on   bool
	buf  []LogRecord
	head uint64 // total records ever pushed
}

// logOn mirrors logRing.on so LogEvent's disabled fast path is one
// atomic load.
var logOn atomic.Bool

// EnableLog turns structured-event recording on with a fresh ring of the
// given capacity (≤ 0 selects DefaultLogCapacity).
func EnableLog(capacity int) {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	logRing.mu.Lock()
	defer logRing.mu.Unlock()
	logRing.on = true
	logRing.buf = make([]LogRecord, capacity)
	logRing.head = 0
	logOn.Store(true)
}

// DisableLog stops recording; ring contents stay readable through
// LogRecords/WriteLogJSONL until the next EnableLog.
func DisableLog() {
	logRing.mu.Lock()
	defer logRing.mu.Unlock()
	logRing.on = false
	logOn.Store(false)
}

// LogEnabled reports whether structured-event recording is on.
func LogEnabled() bool {
	return logOn.Load()
}

// resetLog clears the ring contents and totals, keeping the enabled
// state. Called from Reset so test isolation covers the log too.
func resetLog() {
	logRing.mu.Lock()
	defer logRing.mu.Unlock()
	for i := range logRing.buf {
		logRing.buf[i] = LogRecord{}
	}
	logRing.head = 0
}

// CaptureLogStats returns the log ring's recorded/dropped totals.
func CaptureLogStats() LogStats {
	logRing.mu.Lock()
	defer logRing.mu.Unlock()
	s := LogStats{Recorded: logRing.head, Capacity: len(logRing.buf)}
	if n := uint64(len(logRing.buf)); logRing.head > n {
		s.Dropped = logRing.head - n
	}
	return s
}

// LogEvent records one structured event. Disabled, it is one atomic
// load and returns before evaluating anything else, so call sites can
// build the fields map inline without an enabled-check — but hot paths
// that would allocate the map should gate on LogEnabled themselves.
func LogEvent(event, trace string, fields map[string]any) {
	if !logOn.Load() {
		return
	}
	rec := LogRecord{TimeMS: time.Now().UnixMilli(), Event: event, Trace: trace, Fields: fields}
	logRing.mu.Lock()
	if !logRing.on || len(logRing.buf) == 0 {
		logRing.mu.Unlock()
		return
	}
	logRing.buf[logRing.head%uint64(len(logRing.buf))] = rec
	logRing.head++
	logRing.mu.Unlock()
}

// LogRecords snapshots the newest n records in chronological order
// (oldest first); n ≤ 0 returns everything the ring holds.
func LogRecords(n int) []LogRecord {
	logRing.mu.Lock()
	defer logRing.mu.Unlock()
	size := uint64(len(logRing.buf))
	if size == 0 {
		return nil
	}
	count := logRing.head
	if count > size {
		count = size
	}
	if n > 0 && uint64(n) < count {
		count = uint64(n)
	}
	start := logRing.head - count
	out := make([]LogRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, logRing.buf[(start+i)%size])
	}
	return out
}

// WriteLogJSONL writes the newest n records (n ≤ 0: all held) as JSON
// Lines, one record per line — the format of the out/events_<cmd>.jsonl
// artifact and the -serve /events endpoint.
func WriteLogJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, rec := range LogRecords(n) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
