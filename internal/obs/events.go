package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEventCapacity is the event-ring size Run.Start allocates when
// span-event recording is enabled (-trace). At two events per span and
// job-granularity instrumentation it holds the tail of even a paper-scale
// sweep (~tens of thousands of spans) in a few megabytes.
const DefaultEventCapacity = 1 << 16

// EventBegin and EventEnd are the two phases an event ring entry can
// carry, matching the Chrome trace_event "ph" values they export as.
const (
	EventBegin = 'B'
	EventEnd   = 'E'
)

// Event is one begin/end mark of a named stage on one goroutine: the
// raw material of the Chrome trace export. TS is nanoseconds since the
// ring was enabled; TID is the emitting goroutine's id, so concurrent
// pool workers land on distinct tracks in Perfetto.
type Event struct {
	// Name is the stage name (the span's timer name).
	Name string
	// Ph is EventBegin or EventEnd.
	Ph byte
	// TS is nanoseconds since EnableEvents.
	TS int64
	// TID is the goroutine id the event was emitted from.
	TID int64
	// Trace is the trace id bound to the emitting goroutine at emission
	// time ("" outside any traced job) — the filter key behind
	// TraceEventsFor and the serving layer's /jobs/<id>/trace endpoint.
	Trace string
}

// EventStats summarizes the ring for manifests and /metrics: how many
// events were recorded in total, how many of those the bounded ring had
// to drop (oldest first), and the ring capacity.
type EventStats struct {
	// Recorded counts every event ever pushed since EnableEvents.
	Recorded uint64 `json:"recorded"`
	// Dropped counts pushes that overwrote an event the ring no longer
	// holds — the drop-oldest policy in action.
	Dropped uint64 `json:"dropped"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
}

// events is the process-wide span-event ring. Pushes take the mutex for
// a four-field copy — "lock-light": recording happens at span (epoch /
// job) granularity, never in the per-op replay loops, so contention is
// negligible next to the work a span brackets. The bounded ring
// overwrites its oldest entry when full and never blocks a worker.
var events struct {
	mu    sync.Mutex
	on    bool
	buf   []Event
	head  uint64 // total events ever pushed
	epoch time.Time
}

// eventsOn mirrors events.on (kept in sync under events.mu) so the
// per-span fast path — "are events even being recorded?" — is one atomic
// load instead of a mutex round-trip on the global ring.
var eventsOn atomic.Bool

// EnableEvents turns span-event recording on with a fresh ring of the
// given capacity (≤ 0 selects DefaultEventCapacity). Timestamps are
// relative to this call. Events only record while the layer itself is
// enabled too (Enable), since they are emitted by StartSpan/End.
func EnableEvents(capacity int) {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	events.mu.Lock()
	defer events.mu.Unlock()
	events.on = true
	events.buf = make([]Event, capacity)
	events.head = 0
	events.epoch = time.Now()
	eventsOn.Store(true)
}

// DisableEvents stops recording; the ring contents stay readable through
// TraceEvents/WriteTrace until the next EnableEvents.
func DisableEvents() {
	events.mu.Lock()
	defer events.mu.Unlock()
	events.on = false
	eventsOn.Store(false)
}

// EventsEnabled reports whether span events are being recorded.
func EventsEnabled() bool {
	return eventsOn.Load()
}

// CaptureEventStats returns the ring's recorded/dropped totals.
func CaptureEventStats() EventStats {
	events.mu.Lock()
	defer events.mu.Unlock()
	return eventStatsLocked()
}

func eventStatsLocked() EventStats {
	s := EventStats{Recorded: events.head, Capacity: len(events.buf)}
	if n := uint64(len(events.buf)); events.head > n {
		s.Dropped = events.head - n
	}
	return s
}

// recordEvent pushes one begin/end mark onto the ring (drop-oldest).
// Callers check EventsEnabled-style gating themselves via the tid they
// carry; a zero tid means "events were off when the span started".
func recordEvent(ph byte, name string, tid int64) {
	if !eventsOn.Load() {
		return
	}
	now := time.Now()
	trace := traceFor(tid) // before taking events.mu: keeps the ring's critical section copy-only
	events.mu.Lock()
	if !events.on || len(events.buf) == 0 {
		events.mu.Unlock()
		return
	}
	ts := now.Sub(events.epoch).Nanoseconds()
	events.buf[events.head%uint64(len(events.buf))] = Event{Name: name, Ph: ph, TS: ts, TID: tid, Trace: trace}
	events.head++
	events.mu.Unlock()
}

// eventTID returns the goroutine id to stamp on events, or 0 when the
// ring is off (the zero tid suppresses the matching End emission).
func eventTID() int64 {
	if !eventsOn.Load() {
		return 0
	}
	return goid()
}

// goid parses the current goroutine's id from runtime.Stack. It costs
// about a microsecond — paid only while event recording is on, and only
// at span granularity — and buys per-goroutine tracks in the trace
// export, which is what makes the pool's parallel schedule readable.
func goid() int64 {
	var b [40]byte
	n := runtime.Stack(b[:], false)
	// "goroutine 123 [running]:"
	const prefix = len("goroutine ")
	var id int64
	for i := prefix; i < n && b[i] >= '0' && b[i] <= '9'; i++ {
		id = id*10 + int64(b[i]-'0')
	}
	return id
}

// TraceEvents snapshots the ring in chronological order (oldest first).
func TraceEvents() []Event {
	events.mu.Lock()
	defer events.mu.Unlock()
	n := uint64(len(events.buf))
	if n == 0 {
		return nil
	}
	count := events.head
	start := uint64(0)
	if count > n {
		start = count - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, events.buf[(start+i)%n])
	}
	return out
}

// TraceEventsFor snapshots the ring filtered to one trace id, oldest
// first — the full span history of a single serving-layer job.
func TraceEventsFor(trace string) []Event {
	all := TraceEvents()
	out := make([]Event, 0, 16)
	for _, ev := range all {
		if ev.Trace == trace {
			out = append(out, ev)
		}
	}
	return out
}

// traceEvent is the Chrome trace_event JSON shape of one Event. Ts is in
// microseconds as the format requires; pid is constant (one process).
// Args carries the trace id so a job's events are filterable in
// Perfetto/chrome://tracing ("args.trace" query).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON object WriteTrace emits — the "JSON Object
// Format" of the Chrome trace_event spec, loadable in Perfetto and
// chrome://tracing.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the event ring as Chrome trace_event JSON. Begin
// events whose matching end was emitted after a ring wrap (or vice
// versa) may appear unpaired; trace viewers tolerate this, closing open
// slices at the end of the capture.
func WriteTrace(w io.Writer) error {
	return writeTraceDoc(w, TraceEvents())
}

// WriteTraceFor exports only the events stamped with the given trace id
// — one job's lifecycle as a standalone Chrome trace document, the
// payload behind the serving layer's /jobs/<id>/trace endpoint.
func WriteTraceFor(w io.Writer, trace string) error {
	return writeTraceDoc(w, TraceEventsFor(trace))
}

func writeTraceDoc(w io.Writer, evs []Event) error {
	doc := traceDoc{TraceEvents: make([]traceEvent, len(evs)), DisplayTimeUnit: "ms"}
	for i, ev := range evs {
		te := traceEvent{
			Name: ev.Name,
			Ph:   string(ev.Ph),
			Ts:   float64(ev.TS) / 1e3,
			Pid:  1,
			Tid:  ev.TID,
		}
		if ev.Trace != "" {
			te.Args = map[string]any{"trace": ev.Trace}
		}
		doc.TraceEvents[i] = te
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}
