package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"pimendure/internal/obs"

	// Linking internal/core registers the wear-engine counters
	// (core.hw.replay_iters_saved et al.), which the /metrics contract
	// below asserts are exposed even before any simulation ran.
	_ "pimendure/internal/core"
)

// get fetches a telemetry endpoint and returns status, content type and
// body.
func get(t *testing.T, addr, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// The -serve lifecycle: Start binds the telemetry server, /metrics
// serves Prometheus text naming the wear-engine counters, /healthz,
// /series and /wear.png respond per contract, and Finish tears the
// server down.
func TestTelemetryServer(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.SetWearPNG(nil)
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("servetest", fs)
	if err := fs.Parse([]string{"-serve", "localhost:0", "-trace=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	addr := run.ServeBound()
	if addr == "" {
		t.Fatal("ServeBound empty after Start with -serve")
	}

	code, ctype, body := get(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	text := string(body)
	if !strings.Contains(text, "core.hw.replay_iters_saved") {
		t.Errorf("/metrics does not name core.hw.replay_iters_saved:\n%.400s", text)
	}
	if !strings.Contains(text, "\ncore_hw_replay_iters_saved ") {
		t.Errorf("/metrics lacks the sanitized sample line:\n%.400s", text)
	}

	code, _, body = get(t, addr, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	obs.NewSeries("serve.series", "v").Add(42)
	code, ctype, body = get(t, addr, "/series")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/series = %d %q", code, ctype)
	}
	var series []struct {
		Name    string      `json:"name"`
		Samples [][]float64 `json:"samples"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("/series not JSON: %v", err)
	}
	if len(series) != 1 || series[0].Name != "serve.series" || series[0].Samples[0][0] != 42 {
		t.Errorf("/series payload: %s", body)
	}

	code, _, _ = get(t, addr, "/wear.png")
	if code != http.StatusNotFound {
		t.Errorf("/wear.png before a sampler = %d, want 404", code)
	}
	obs.SetWearPNG(func(w io.Writer) error {
		_, err := fmt.Fprint(w, "\x89PNG fake")
		return err
	})
	code, ctype, body = get(t, addr, "/wear.png")
	if code != http.StatusOK || ctype != "image/png" || !bytes.HasPrefix(body, []byte("\x89PNG")) {
		t.Errorf("/wear.png after SetWearPNG = %d %q %q", code, ctype, body)
	}
	// Named per-series sources coexist with the default and are selected
	// with ?name=.
	obs.RegisterWearPNG("serve.named", func(w io.Writer) error {
		_, err := fmt.Fprint(w, "\x89PNG named")
		return err
	})
	defer obs.RegisterWearPNG("serve.named", nil)
	code, _, body = get(t, addr, "/wear.png?name=serve.named")
	if code != http.StatusOK || !bytes.HasSuffix(body, []byte("named")) {
		t.Errorf("/wear.png?name=serve.named = %d %q", code, body)
	}
	code, _, _ = get(t, addr, "/wear.png?name=no.such.source")
	if code != http.StatusNotFound {
		t.Errorf("/wear.png with unknown name = %d, want 404", code)
	}

	if err := run.Finish(t.TempDir(), nil, 0, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("telemetry server still serving after Finish")
	}
}

// startServer boots a telemetry server on localhost:0 via the Run
// lifecycle and returns its bound address plus the Run for teardown.
func startServer(t *testing.T) (string, *obs.Run) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("servetest", fs)
	if err := fs.Parse([]string{"-serve", "localhost:0", "-trace=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	return run.ServeBound(), run
}

// Stopping the telemetry server must let an in-flight response finish:
// Close now drains via http.Server.Shutdown instead of severing open
// connections mid-body. The handler parks after its first write until
// the test has initiated Close, so the remainder of the body crosses
// the server-stop boundary.
func TestTelemetryServerGracefulClose(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	addr, run := startServer(t)

	started := make(chan struct{})
	release := make(chan struct{})
	obs.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "first-half ")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		close(started)
		<-release
		fmt.Fprint(w, "second-half")
	}))
	defer obs.Handle("/slow", nil)

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()

	<-started
	closed := make(chan error, 1)
	go func() { closed <- run.Finish(t.TempDir(), nil, 0, io.Discard) }()
	// Finish is now blocked in Shutdown waiting on /slow; let the
	// handler complete and require the full body on the client side.
	release <- struct{}{}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across server stop: %v", r.err)
	}
	if r.body != "first-half second-half" {
		t.Errorf("in-flight body truncated: %q", r.body)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}

// A handler still running past the shutdown deadline is severed by the
// Close fallback instead of hanging teardown forever.
func TestTelemetryServerCloseTimeout(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	restore := obs.SetTelemetryShutdownTimeout(50 * time.Millisecond)
	defer restore()
	addr, run := startServer(t)

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	obs.Handle("/hang", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "partial")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		close(started)
		<-release
	}))
	defer obs.Handle("/hang", nil)

	go func() {
		resp, err := http.Get("http://" + addr + "/hang")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	done := make(chan struct{})
	go func() {
		run.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung past the shutdown deadline on a stuck handler")
	}
}

// A failing renderer must surface as a 500, not a 200 with a truncated
// body: the handlers now stage the response in a buffer before writing.
func TestWearPNGHandlerErrorPath(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.SetWearPNG(nil)
		obs.Reset()
	}()
	addr, run := startServer(t)
	defer run.Close()

	obs.SetWearPNG(func(w io.Writer) error {
		fmt.Fprint(w, "\x89PNG partial garbage")
		return fmt.Errorf("render exploded mid-image")
	})
	code, ctype, body := get(t, addr, "/wear.png")
	if code != http.StatusInternalServerError {
		t.Errorf("failing renderer returned %d, want 500", code)
	}
	if strings.HasPrefix(ctype, "image/png") || bytes.Contains(body, []byte("\x89PNG")) {
		t.Errorf("error response leaked partial image bytes: %q (%s)", body, ctype)
	}
	if !strings.Contains(string(body), "render exploded") {
		t.Errorf("error response does not carry the renderer error: %q", body)
	}

	// A successful render advertises its exact length.
	obs.SetWearPNG(func(w io.Writer) error {
		_, err := fmt.Fprint(w, "\x89PNG ok")
		return err
	})
	resp, err := http.Get("http://" + addr + "/wear.png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != int64(len("\x89PNG ok")) {
		t.Errorf("Content-Length = %d, want %d", resp.ContentLength, len("\x89PNG ok"))
	}
}

// The /series endpoint stays well-formed when a series carries NaN
// samples (a live CoV of an all-zero distribution does) — non-finite
// values encode as null instead of aborting the response body.
func TestSeriesHandlerNonFinite(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	addr, run := startServer(t)
	defer run.Close()

	obs.NewSeries("serve.nan", "v", "cov").Add(1, math.NaN())
	code, _, body := get(t, addr, "/series")
	if code != http.StatusOK {
		t.Fatalf("/series with NaN sample = %d: %s", code, body)
	}
	var series []struct {
		Samples [][]*float64 `json:"samples"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("/series with NaN sample not JSON: %v\n%s", err, body)
	}
	if len(series) != 1 || series[0].Samples[0][1] != nil {
		t.Errorf("NaN sample not encoded as null: %s", body)
	}
}

// The dynamic Handle registry: routes can be mounted after the server
// is up, subtree patterns match, built-ins are not shadowed, and
// removal restores 404.
func TestTelemetryServerDynamicHandlers(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	addr, run := startServer(t)
	defer run.Close()

	code, _, _ := get(t, addr, "/jobs/j1")
	if code != http.StatusNotFound {
		t.Fatalf("unmounted route = %d, want 404", code)
	}
	obs.Handle("/jobs/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "job:%s", strings.TrimPrefix(r.URL.Path, "/jobs/"))
	}))
	obs.Handle("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "shadowed")
	}))
	defer obs.Handle("/jobs/", nil)
	defer obs.Handle("/healthz", nil)

	code, _, body := get(t, addr, "/jobs/j1")
	if code != http.StatusOK || string(body) != "job:j1" {
		t.Errorf("subtree handler = %d %q", code, body)
	}
	if code, _, body = get(t, addr, "/healthz"); strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("built-in /healthz was shadowed: %d %q", code, body)
	}
	obs.Handle("/jobs/", nil)
	if code, _, _ = get(t, addr, "/jobs/j1"); code != http.StatusNotFound {
		t.Errorf("removed handler still routed: %d", code)
	}
}

// The wear-PNG registry contract without a server: per-name
// registration and removal, sorted source listing, and deterministic
// default resolution — an explicit SetWearPNG default wins, otherwise
// the lexicographically smallest registered name serves the unnamed
// request regardless of registration order.
func TestWearPNGRegistry(t *testing.T) {
	render := func(tag string) func(io.Writer) error {
		return func(w io.Writer) error {
			_, err := io.WriteString(w, tag)
			return err
		}
	}
	resolve := func(name string) string {
		var buf bytes.Buffer
		if err := obs.WriteWearPNG(&buf, name); err != nil {
			return "ERR"
		}
		return buf.String()
	}
	defer func() {
		obs.SetWearPNG(nil)
		obs.RegisterWearPNG("z.series", nil)
		obs.RegisterWearPNG("a.series", nil)
	}()

	if got := resolve(""); got != "ERR" {
		t.Fatalf("empty registry resolved to %q", got)
	}
	obs.RegisterWearPNG("z.series", render("z"))
	obs.RegisterWearPNG("a.series", render("a"))
	if got := obs.WearPNGSources(); len(got) != 2 || got[0] != "a.series" || got[1] != "z.series" {
		t.Errorf("WearPNGSources = %v, want [a.series z.series]", got)
	}
	if got := resolve("z.series"); got != "z" {
		t.Errorf("named lookup = %q, want z", got)
	}
	if got := resolve(""); got != "a" {
		t.Errorf("unnamed lookup = %q, want a (smallest registered name)", got)
	}
	obs.SetWearPNG(render("default"))
	if got := resolve(""); got != "default" {
		t.Errorf("unnamed lookup with default installed = %q, want default", got)
	}
	obs.SetWearPNG(nil)
	obs.RegisterWearPNG("a.series", nil)
	if got := resolve(""); got != "z" {
		t.Errorf("unnamed lookup after removing a.series = %q, want z", got)
	}
	if got := resolve("a.series"); got != "ERR" {
		t.Errorf("removed name still resolves: %q", got)
	}
}

// The exposition must be well-formed Prometheus text: HELP/TYPE pairs
// preceding each sample, names restricted to the metric alphabet,
// zero-valued metrics included so an early scrape sees the full set, and
// timers exported as _seconds histogram families (cumulative le buckets
// closed by +Inf, then _sum and _count) plus the _max_seconds gauge.
func TestWritePrometheusFormat(t *testing.T) {
	withObs(t, func() {
		obs.GetCounter("prom.test.zero")
		obs.GetCounter("prom.test.some").Add(7)
		obs.GetGauge("prom.test.peak").Observe(9)
		obs.StartSpan("prom.test.stage").End()
		obs.GetHistogram("prom.test.bytes").Observe(100)
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"# HELP prom_test_zero prom.test.zero (counter)",
			"# TYPE prom_test_zero counter",
			"prom_test_zero 0",
			"prom_test_some 7",
			"prom_test_peak 9",
			"# TYPE prom_test_stage_seconds histogram",
			`prom_test_stage_seconds_bucket{le="+Inf"} 1`,
			"prom_test_stage_seconds_count 1",
			"# TYPE prom_test_stage_max_seconds gauge",
			"# TYPE prom_test_bytes histogram",
			`prom_test_bytes_bucket{le="127"} 1`,
			"prom_test_bytes_sum 100",
			"obs_events_recorded_total",
			"obs_log_recorded_total",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}
		seenHelp := map[string]bool{}
		histFamilies := map[string]bool{}
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, "# HELP ") {
				seenHelp[strings.Fields(line)[2]] = true
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				f := strings.Fields(line)
				if !seenHelp[f[2]] {
					t.Errorf("TYPE before HELP: %s", line)
				}
				switch f[3] {
				case "counter", "gauge":
				case "histogram":
					histFamilies[f[2]] = true
				default:
					t.Errorf("bad TYPE: %s", line)
				}
				continue
			}
			f := strings.Fields(line)
			if len(f) != 2 {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			name := f[0]
			if br := strings.IndexByte(name, '{'); br >= 0 {
				// Only histogram buckets carry labels, and only le labels.
				labels := name[br:]
				name = name[:br]
				if !strings.HasSuffix(name, "_bucket") || !histFamilies[strings.TrimSuffix(name, "_bucket")] {
					t.Errorf("labeled sample outside a histogram family: %q", line)
				}
				if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
					t.Errorf("malformed le label block: %q", line)
				}
			}
			for i := 0; i < len(name); i++ {
				c := name[i]
				ok := c == '_' || c == ':' ||
					(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
					(c >= '0' && c <= '9' && i > 0)
				if !ok {
					t.Errorf("metric name %q outside the Prometheus alphabet", name)
					break
				}
			}
		}
	})
}
