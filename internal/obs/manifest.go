package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Manifest is the machine-readable record of one CLI run: what was
// computed (command, config, seed), in what environment (git describe,
// Go version, CPU count), and what it cost (wall time, per-stage
// timings, counter totals). Every CLI writes one to
// <out>/manifest_<cmd>.json so an artifact directory documents the run
// that produced it — the reproducibility practice the simulation-
// infrastructure literature asks of PIM studies.
type Manifest struct {
	// Command is the CLI name; it also names the output file.
	Command string `json:"command"`
	// Args is os.Args[1:] as invoked.
	Args []string `json:"args,omitempty"`
	// Config is the CLI's resolved configuration (flag values after
	// defaulting), keyed by flag name.
	Config map[string]any `json:"config,omitempty"`
	// Seed is the run's random seed (0 when the command has none).
	Seed int64 `json:"seed"`
	// GitDescribe identifies the source tree ("git describe
	// --always --dirty"; empty when git or the repo is unavailable).
	GitDescribe string `json:"git_describe,omitempty"`
	// GoVersion and NumCPU describe the execution environment.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Start and End bound the run; WallSeconds is their difference.
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	WallSeconds float64   `json:"wall_seconds"`
	// Stages, Counters, Gauges and Histograms are the observability
	// snapshot at Finish time: per-stage span timings, counter/watermark
	// totals, and log-bucketed distribution snapshots (request latency,
	// queue wait).
	Stages     []Stage             `json:"stages,omitempty"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// Events summarizes the span-event ring (recorded/dropped/capacity)
	// when event recording was on during the run; Log does the same for
	// the structured JSONL event log.
	Events *EventStats `json:"events,omitempty"`
	Log    *LogStats   `json:"log,omitempty"`
}

// NewManifest starts a manifest for the named command, stamping the
// start time, invocation arguments and environment.
func NewManifest(cmd string) *Manifest {
	return &Manifest{
		Command:     cmd,
		Args:        os.Args[1:],
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Start:       time.Now(),
	}
}

// Finish stamps the end time and folds in the current observability
// snapshot. Call it once, after the run's work is done.
func (m *Manifest) Finish() {
	m.End = time.Now()
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
	s := Capture()
	m.Stages, m.Counters, m.Gauges, m.Histograms = s.Stages, s.Counters, s.Gauges, s.Histograms
	if es := CaptureEventStats(); es.Recorded > 0 {
		m.Events = &es
	}
	if ls := CaptureLogStats(); ls.Recorded > 0 {
		m.Log = &ls
	}
}

// Path returns the file the manifest lands in under dir:
// dir/manifest_<cmd>.json.
func (m *Manifest) Path(dir string) string {
	return filepath.Join(dir, "manifest_"+m.Command+".json")
}

// WriteFile writes the manifest to Path(dir), creating dir if needed.
func (m *Manifest) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(m.Path(dir), append(data, '\n'), 0o644)
}

// ReadManifest reads back a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &m, nil
}

// gitDescribe identifies the working tree, tolerating environments
// without git or outside a repository (empty string).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
