package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// promName sanitizes a registry name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:] ("core.hw.replay_iters_saved" →
// "core_hw_replay_iters_saved"). The original dotted name is preserved
// in the metric's HELP line.
func promName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// promSample is one exposition line inside a family: a name suffix
// ("_bucket", "_sum", "_count"), an optional label block
// (`{le="0.001"}`), and the value.
type promSample struct {
	suffix string
	labels string
	val    float64
}

// promMetric is one exposition family: HELP (carrying the original
// registry name), TYPE, and its samples. Counter and gauge families have
// exactly one unlabeled sample; histogram families carry the cumulative
// le-labeled buckets plus the _sum and _count series.
type promMetric struct {
	name    string // sanitized family name
	help    string // original registry name + kind
	typ     string // "counter" | "gauge" | "histogram"
	samples []promSample
}

func scalar(name, help, typ string, val float64) promMetric {
	return promMetric{name: name, help: help, typ: typ, samples: []promSample{{val: val}}}
}

// promLE formats a histogram bucket bound the way Prometheus clients
// expect: shortest float representation, "+Inf" for the closing bucket.
func promLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histFamily converts a histogram snapshot into its exposition family —
// one HELP/TYPE histogram block covering the cumulative le-labeled
// _bucket series (always closed by le="+Inf" carrying the total count),
// then _sum and _count, per the Prometheus text-format convention.
func histFamily(s HistogramSnapshot, help string) promMetric {
	fam := promMetric{name: promName(s.Name), help: help, typ: "histogram"}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		fam.samples = append(fam.samples, promSample{
			suffix: "_bucket", labels: `{le="` + promLE(b.LE) + `"}`, val: float64(cum),
		})
	}
	fam.samples = append(fam.samples,
		promSample{suffix: "_bucket", labels: `{le="+Inf"}`, val: float64(s.Count)},
		promSample{suffix: "_sum", val: s.Sum},
		promSample{suffix: "_count", val: float64(s.Count)},
	)
	return fam
}

// WritePrometheus renders every registered counter, gauge, timer and
// histogram in the Prometheus text exposition format (version 0.0.4) —
// the payload behind the -serve /metrics endpoint. Unlike Capture it
// includes zero-valued metrics, so a scrape early in a run already shows
// the full metric set. Each timer exports a "<name>_seconds" duration
// histogram (cumulative le buckets, _sum, _count) plus the
// "<name>_max_seconds" outlier gauge; histograms registered through
// GetHistogram/GetDurationHistogram export the same shape under their
// own family name.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	metrics := make([]promMetric, 0,
		len(registry.counters)+len(registry.gauges)+4*len(registry.timers)+3*len(registry.histograms))
	for name, c := range registry.counters {
		metrics = append(metrics, scalar(promName(name), name+" (counter)", "counter", float64(c.v.Load())))
	}
	for name, g := range registry.gauges {
		metrics = append(metrics, scalar(promName(name), name+" (max watermark gauge)", "gauge", float64(g.max.Load())))
	}
	for name, t := range registry.timers {
		metrics = append(metrics,
			histFamily(t.Histogram(), name+" span duration (timer histogram)"),
			scalar(promName(name)+"_max_seconds",
				name+" longest single span (timer)", "gauge", time.Duration(t.maxNS.Load()).Seconds()))
	}
	for name, h := range registry.histograms {
		snap := h.Snapshot()
		if h.scale != 1 {
			snap.Name = name + "_seconds"
		}
		metrics = append(metrics, histFamily(snap, name+" (histogram)"))
	}
	registry.mu.Unlock()

	es := CaptureEventStats()
	ls := CaptureLogStats()
	metrics = append(metrics,
		scalar("obs_events_recorded_total", "span events recorded on the event ring", "counter", float64(es.Recorded)),
		scalar("obs_events_dropped_total", "span events dropped by the bounded ring (drop-oldest)", "counter", float64(es.Dropped)),
		scalar("obs_log_recorded_total", "structured log records accepted by the bounded event log", "counter", float64(ls.Recorded)),
		scalar("obs_log_dropped_total", "structured log records dropped by the bounded event log (drop-oldest)", "counter", float64(ls.Dropped)),
	)
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for _, s := range m.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %g\n", m.name, s.suffix, s.labels, s.val); err != nil {
				return err
			}
		}
	}
	return nil
}
