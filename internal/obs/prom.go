package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// promName sanitizes a registry name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:] ("core.hw.replay_iters_saved" →
// "core_hw_replay_iters_saved"). The original dotted name is preserved
// in the metric's HELP line.
func promName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// promMetric is one exposition family: HELP (carrying the original
// registry name), TYPE, and a single sample.
type promMetric struct {
	name string // sanitized
	help string // original registry name + kind
	typ  string // "counter" | "gauge"
	val  float64
}

// WritePrometheus renders every registered counter, gauge and timer in
// the Prometheus text exposition format (version 0.0.4) — the payload
// behind the -serve /metrics endpoint. Unlike Capture it includes
// zero-valued metrics, so a scrape early in a run already shows the full
// metric set. Each timer exports three families: <name>_seconds_total,
// <name>_spans_total and <name>_max_seconds.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	metrics := make([]promMetric, 0, len(registry.counters)+len(registry.gauges)+3*len(registry.timers))
	for name, c := range registry.counters {
		metrics = append(metrics, promMetric{
			name: promName(name), help: name + " (counter)", typ: "counter", val: float64(c.v.Load()),
		})
	}
	for name, g := range registry.gauges {
		metrics = append(metrics, promMetric{
			name: promName(name), help: name + " (max watermark gauge)", typ: "gauge", val: float64(g.max.Load()),
		})
	}
	for name, t := range registry.timers {
		base := promName(name)
		metrics = append(metrics,
			promMetric{name: base + "_seconds_total", help: name + " summed span wall time (timer)",
				typ: "counter", val: time.Duration(t.ns.Load()).Seconds()},
			promMetric{name: base + "_spans_total", help: name + " completed spans (timer)",
				typ: "counter", val: float64(t.count.Load())},
			promMetric{name: base + "_max_seconds", help: name + " longest single span (timer)",
				typ: "gauge", val: time.Duration(t.maxNS.Load()).Seconds()},
		)
	}
	registry.mu.Unlock()

	es := CaptureEventStats()
	metrics = append(metrics,
		promMetric{name: "obs_events_recorded_total", help: "span events recorded on the event ring",
			typ: "counter", val: float64(es.Recorded)},
		promMetric{name: "obs_events_dropped_total", help: "span events dropped by the bounded ring (drop-oldest)",
			typ: "counter", val: float64(es.Dropped)},
	)
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.val); err != nil {
			return err
		}
	}
	return nil
}
