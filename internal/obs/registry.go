package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// registry is the process-wide home of every counter, gauge and timer.
// Lookup/creation takes the mutex; the recording fast paths touch only
// the returned struct's atomics.
var registry = struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
	kinds      map[string]string // name -> "counter" | "gauge" | "timer" | "histogram"
}{
	counters:   map[string]*Counter{},
	gauges:     map[string]*Gauge{},
	timers:     map[string]*Timer{},
	histograms: map[string]*Histogram{},
	kinds:      map[string]string{},
}

// claimName records a name's kind, panicking when the name is already
// registered as a different kind. Without the guard a counter and a
// gauge sharing one name would silently diverge into two manifest
// entries; the registry refuses instead, loudly, at registration time.
func claimName(name, kind string) {
	if prev, ok := registry.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric name %q already registered as a %s, cannot re-register as a %s", name, prev, kind))
	}
	registry.kinds[name] = kind
}

// GetCounter returns the process-wide counter with the given name,
// creating and registering it on first use. Typically called once at
// package init and kept in a var. Registering a name already held by a
// gauge or timer panics.
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	c, ok := registry.counters[name]
	if !ok {
		claimName(name, "counter")
		c = &Counter{name: name}
		registry.counters[name] = c
	}
	return c
}

// GetGauge returns the process-wide max-watermark gauge with the given
// name, creating it on first use. Registering a name already held by a
// counter or timer panics.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	g, ok := registry.gauges[name]
	if !ok {
		claimName(name, "gauge")
		g = &Gauge{name: name}
		registry.gauges[name] = g
	}
	return g
}

// getTimer returns the stage timer with the given name, creating it on
// first use. Timers are reached through StartSpan rather than directly.
func getTimer(name string) *Timer {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	t, ok := registry.timers[name]
	if !ok {
		claimName(name, "timer")
		t = &Timer{name: name}
		registry.timers[name] = t
	}
	return t
}

// Reset zeroes every registered counter, gauge and timer (the
// registrations themselves survive, so package-level handles stay
// valid). Tests and benchmark harnesses use it to isolate measurement
// regions; CLIs never need it.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.max.Store(0)
	}
	for _, t := range registry.timers {
		t.count.Store(0)
		t.ns.Store(0)
		t.maxNS.Store(0)
		for i := range t.buckets {
			t.buckets[i].Store(0)
		}
	}
	for _, h := range registry.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	resetSeries()
	resetLog()
}

// Stage is one named timer's totals inside a Snapshot or Manifest:
// how many spans completed under the name, their summed wall time, and
// the longest single span (the outlier watermark).
type Stage struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	Seconds    float64 `json:"seconds"`
	MaxSeconds float64 `json:"max_seconds,omitempty"`
}

// Snapshot is a point-in-time copy of the whole registry, safe to use
// after further recording continues.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Stages     []Stage             `json:"stages,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Capture snapshots every registered counter, gauge and stage timer.
// Zero-valued entries are omitted so a snapshot reflects what the run
// actually exercised. Stages are sorted by name, which groups nested
// "parent/child" stages under their parent.
func Capture() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	for name, c := range registry.counters {
		if v := c.v.Load(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range registry.gauges {
		if v := g.max.Load(); v != 0 {
			s.Gauges[name] = v
		}
	}
	for name, t := range registry.timers {
		if n := t.count.Load(); n != 0 {
			s.Stages = append(s.Stages, Stage{
				Name:       name,
				Count:      n,
				Seconds:    time.Duration(t.ns.Load()).Seconds(),
				MaxSeconds: time.Duration(t.maxNS.Load()).Seconds(),
			})
		}
	}
	for _, h := range registry.histograms {
		if h.count.Load() != 0 {
			s.Histograms = append(s.Histograms, h.Snapshot())
		}
	}
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteTable renders the current registry state as an aligned text
// table — the output behind every CLI's -metrics flag.
func WriteTable(w io.Writer) error {
	s := Capture()
	if len(s.Stages) > 0 {
		if _, err := fmt.Fprintf(w, "%-40s %10s %14s %14s\n", "stage", "spans", "total", "max span"); err != nil {
			return err
		}
		for _, st := range s.Stages {
			d := time.Duration(st.Seconds * float64(time.Second)).Round(time.Microsecond)
			m := time.Duration(st.MaxSeconds * float64(time.Second)).Round(time.Microsecond)
			if _, err := fmt.Fprintf(w, "%-40s %10d %14s %14s\n", st.Name, st.Count, d, m); err != nil {
				return err
			}
		}
	}
	if len(s.Histograms) > 0 {
		if _, err := fmt.Fprintf(w, "%-40s %10s %14s %14s %14s\n", "histogram", "count", "sum", "p50", "p99"); err != nil {
			return err
		}
		for _, h := range s.Histograms {
			if _, err := fmt.Fprintf(w, "%-40s %10d %14g %14g %14g\n",
				h.Name, h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.99)); err != nil {
				return err
			}
		}
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name+" (max)")
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "%-40s %10s\n", "counter", "value"); err != nil {
			return err
		}
	}
	for _, name := range names {
		v, ok := s.Counters[name]
		if !ok {
			v = s.Gauges[name[:len(name)-len(" (max)")]]
		}
		if _, err := fmt.Fprintf(w, "%-40s %10d\n", name, v); err != nil {
			return err
		}
	}
	return nil
}
