// Package obs is the zero-dependency observability layer of the
// simulator: cheap atomic counters and max-watermark gauges, stage-scoped
// timing spans, and a machine-readable run manifest. It exists so the
// long 18-configuration sweeps behind the paper's headline figures are
// not a black box — every run can report where wall-clock and cell
// writes went, per stage, without perturbing the engines it observes.
//
// The layer is disabled by default and compiles to near-no-ops in that
// state: Counter.Add, Gauge.Observe and StartSpan check one atomic
// boolean and return, so a disabled build of the wear engine pays well
// under the 2% BenchmarkHwEngine budget (the hot replay loop itself is
// never instrumented — all recording happens at epoch/job granularity).
// CLIs call Enable (via Run.Start) for the duration of a run; libraries
// never toggle the flag themselves.
//
// Three primitives:
//
//   - Counter / Gauge: named monotonic totals (epochs simulated, memo
//     hits, writes accumulated) and max-watermark levels (pool queue
//     depth). Lock-free, safe for concurrent use from pool workers.
//   - Span: a named stage timer. StartSpan("hw-replay") ... End()
//     accumulates count and wall time under the stage name; Child
//     derives "parent/child" names so stages nest across pim.Sweep →
//     core engine → pool workers.
//   - Manifest: a JSON record of one CLI run — command, config, seed,
//     git describe, per-stage timings and counter totals — written to
//     out/manifest_<cmd>.json so every artifact directory is
//     self-describing.
//
// All state lives in one process-wide registry: Capture snapshots it,
// Reset clears it (tests), WriteTable renders it for -metrics.
package obs

import "sync/atomic"

// enabled gates every recording primitive. Manipulated only by
// Enable/Disable; read with a single atomic load on each hot call.
var enabled atomic.Bool

// Enable turns recording on. Until the next Disable every Counter.Add,
// Gauge.Observe and StartSpan records; intended to be called once at CLI
// startup (Run.Start does it) or around a test/benchmark region.
func Enable() { enabled.Store(true) }

// Disable turns recording back off; outstanding Spans started while
// enabled still record on End.
func Disable() { enabled.Store(false) }

// Enabled reports whether the layer is currently recording.
func Enabled() bool { return enabled.Load() }
