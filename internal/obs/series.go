package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Series is a named, append-only time series with fixed columns — the
// telemetry shape behind per-epoch wear trajectories. Unlike counters
// and spans it is not gated on the enabled flag: a series only exists
// because a caller explicitly asked for sampling, so every Add records.
// All methods are safe for concurrent use.
type Series struct {
	name string
	cols []string

	mu      sync.Mutex
	samples [][]float64
}

// seriesRegistry holds every live series so the /series endpoint and
// Run.Finish can export them without threading handles through the CLIs.
var seriesRegistry = struct {
	mu     sync.Mutex
	byName map[string]*Series
}{byName: map[string]*Series{}}

// NewSeries creates and registers a series with the given column names.
// A name already held by a live series is made unique with a "#2",
// "#3", … suffix instead of replacing the registration: the old
// behavior silently clobbered a concurrent run's trajectory (two
// concurrent runs of the same benchmark interleaved one series and
// orphaned the other's handle — exactly what concurrent sweep-server
// requests do). Callers that need the registered name must read it back
// with Name(). Use RemoveSeries to retire a name when its run is done.
func NewSeries(name string, cols ...string) *Series {
	seriesRegistry.mu.Lock()
	defer seriesRegistry.mu.Unlock()
	unique := name
	for n := 2; ; n++ {
		if _, taken := seriesRegistry.byName[unique]; !taken {
			break
		}
		unique = fmt.Sprintf("%s#%d", name, n)
	}
	s := &Series{name: unique, cols: append([]string(nil), cols...)}
	seriesRegistry.byName[unique] = s
	return s
}

// RemoveSeries unregisters the named series, freeing the name for
// reuse. The handle itself stays usable; it is just no longer exported
// by AllSeries (/series, Run.Finish artifacts). Serving layers call it
// when a job's per-request telemetry is folded into the job result.
func RemoveSeries(name string) {
	seriesRegistry.mu.Lock()
	delete(seriesRegistry.byName, name)
	seriesRegistry.mu.Unlock()
}

// FindSeries returns the registered series with the given name, or nil
// when no live series holds it (never registered, or already retired by
// RemoveSeries) — the lookup behind /series?name=, which turns the nil
// into a clean JSON 404 instead of an empty-array 200.
func FindSeries(name string) *Series {
	seriesRegistry.mu.Lock()
	defer seriesRegistry.mu.Unlock()
	return seriesRegistry.byName[name]
}

// AllSeries returns the registered series sorted by name.
func AllSeries() []*Series {
	seriesRegistry.mu.Lock()
	out := make([]*Series, 0, len(seriesRegistry.byName))
	for _, s := range seriesRegistry.byName {
		out = append(out, s)
	}
	seriesRegistry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// resetSeries empties the registry (called from Reset; the Series
// handles themselves stay usable but are no longer exported).
func resetSeries() {
	seriesRegistry.mu.Lock()
	seriesRegistry.byName = map[string]*Series{}
	seriesRegistry.mu.Unlock()
}

// Name returns the series' registry name.
func (s *Series) Name() string { return s.name }

// Columns returns the column names.
func (s *Series) Columns() []string { return append([]string(nil), s.cols...) }

// Add appends one sample. The value count must match the column count.
func (s *Series) Add(vals ...float64) {
	if len(vals) != len(s.cols) {
		panic(fmt.Sprintf("obs: series %q: %d values for %d columns", s.name, len(vals), len(s.cols)))
	}
	row := append([]float64(nil), vals...)
	s.mu.Lock()
	s.samples = append(s.samples, row)
	s.mu.Unlock()
}

// Len returns the number of samples recorded so far.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Last returns a copy of the most recent sample, or nil when empty.
func (s *Series) Last() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return nil
	}
	return append([]float64(nil), s.samples[len(s.samples)-1]...)
}

// Samples returns a copy of all samples in record order.
func (s *Series) Samples() [][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]float64, len(s.samples))
	for i, row := range s.samples {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Column returns a copy of one column's values by name, or nil when the
// column does not exist.
func (s *Series) Column(name string) []float64 {
	idx := -1
	for i, c := range s.cols {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.samples))
	for i, row := range s.samples {
		out[i] = row[idx]
	}
	return out
}

// WriteCSV writes the series as CSV with a header row.
func (s *Series) WriteCSV(w io.Writer) error {
	for i, c := range s.cols {
		sep := ","
		if i == len(s.cols)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", c, sep); err != nil {
			return err
		}
	}
	for _, row := range s.Samples() {
		for i, v := range row {
			sep := ","
			if i == len(row)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%g%s", v, sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonFloat marshals non-finite values as null. Wear trajectories
// legitimately contain NaN (the CoV of an all-zero distribution, a
// projection without an endurance) and encoding/json rejects NaN/Inf
// outright — which used to abort the whole /series response and the
// series_*.json artifact write mid-run.
type jsonFloat float64

// MarshalJSON encodes the value, mapping NaN and ±Inf to null.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// seriesJSON is the exported JSON shape of one series.
type seriesJSON struct {
	Name    string        `json:"name"`
	Columns []string      `json:"columns"`
	Samples [][]jsonFloat `json:"samples"`
}

// MarshalJSON exports the series as {name, columns, samples}, with
// non-finite sample values encoded as null.
func (s *Series) MarshalJSON() ([]byte, error) {
	rows := s.Samples()
	samples := make([][]jsonFloat, len(rows))
	for i, row := range rows {
		conv := make([]jsonFloat, len(row))
		for j, v := range row {
			conv[j] = jsonFloat(v)
		}
		samples[i] = conv
	}
	return json.Marshal(seriesJSON{Name: s.name, Columns: s.Columns(), Samples: samples})
}

// WriteSeriesJSON writes every registered series as one JSON array —
// the /series endpoint's payload and the series_*.json artifact shape.
func WriteSeriesJSON(w io.Writer) error {
	all := AllSeries()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}
