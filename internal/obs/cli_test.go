package obs_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"pimendure/internal/obs"
)

// NewRun registers exactly the shared observability flags, with -trace
// defaulting on.
func TestRunFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	obs.NewRun("flagtest", fs)
	for name, wantDef := range map[string]string{
		"pprof":   "",
		"metrics": "false",
		"serve":   "",
		"trace":   "true",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Errorf("flag -%s not registered", name)
			continue
		}
		if f.DefValue != wantDef {
			t.Errorf("-%s default %q, want %q", name, f.DefValue, wantDef)
		}
	}
}

// -pprof localhost:0 binds a live profiling server for the duration of
// the run and Finish tears it down.
func TestRunPprofServer(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("pprofttest", fs)
	if err := fs.Parse([]string{"-pprof", "localhost:0", "-trace=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	addr := run.PprofBound()
	if addr == "" {
		t.Fatal("PprofBound empty after Start with -pprof")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}
	if err := run.Finish(t.TempDir(), nil, 0, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/debug/pprof/cmdline"); err == nil {
		t.Error("pprof server still serving after Finish")
	}
	if run.PprofBound() != "" {
		t.Error("PprofBound non-empty after Close")
	}
}

// A bad -pprof address must fail Start, not die later in the background.
func TestRunStartBadAddress(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("badaddr", fs)
	if err := fs.Parse([]string{"-serve", "999.999.999.999:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err == nil {
		run.Close()
		t.Fatal("Start accepted an unbindable -serve address")
	}
}

// With -trace (the default), Finish writes the Chrome trace artifact and
// stamps the ring stats into the manifest; registered series land as CSV
// and JSON artifacts next to it.
func TestRunFinishArtifacts(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.DisableEvents()
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("arttest", fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	if !obs.EventsEnabled() {
		t.Fatal("default -trace did not enable the event ring")
	}
	obs.StartSpan("art.stage").End()
	obs.NewSeries("art.series", "v").Add(1)

	dir := t.TempDir()
	if err := run.Finish(dir, nil, 0, io.Discard); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "trace_arttest.json"))
	if err != nil {
		t.Fatalf("trace artifact: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace artifact not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace artifact has no events")
	}
	if run.Manifest().Events == nil || run.Manifest().Events.Recorded == 0 {
		t.Error("manifest lacks event-ring stats")
	}
	if _, err := os.Stat(filepath.Join(dir, "series_art.series.csv")); err != nil {
		t.Errorf("series CSV artifact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "series_art.series.json")); err != nil {
		t.Errorf("series JSON artifact: %v", err)
	}
}

// With -trace=false no event is recorded and no trace artifact appears.
func TestRunTraceOptOut(t *testing.T) {
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	run := obs.NewRun("notrace", fs)
	if err := fs.Parse([]string{"-trace=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	obs.StartSpan("notrace.stage").End()
	dir := t.TempDir()
	if err := run.Finish(dir, nil, 0, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace_notrace.json")); !os.IsNotExist(err) {
		t.Error("trace artifact written despite -trace=false")
	}
}
