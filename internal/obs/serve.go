package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// wearPNG is the pluggable renderer registry behind /wear.png. The
// sampling layer (internal/core's WearSampler, wired by pim.Run)
// registers a closure per series that renders its latest histogram
// snapshot; obs itself stays free of image and stats dependencies.
// Sources are keyed by name so a concurrent sweep's 18 sampled runs
// coexist instead of racing over a single slot.
var wearPNG struct {
	mu      sync.Mutex
	def     func(io.Writer) error
	sources map[string]func(io.Writer) error
}

// SetWearPNG installs the unnamed default renderer behind the /wear.png
// endpoint — the source served when no ?name= selector is given. Pass
// nil to uninstall. Concurrent runs that each own a series should use
// RegisterWearPNG instead.
func SetWearPNG(fn func(io.Writer) error) {
	wearPNG.mu.Lock()
	wearPNG.def = fn
	wearPNG.mu.Unlock()
}

// RegisterWearPNG installs a named renderer served at /wear.png?name=N.
// Each concurrently sampled run registers under its own series name, so
// no run overwrites another's live view. Passing a nil fn removes the
// name.
func RegisterWearPNG(name string, fn func(io.Writer) error) {
	wearPNG.mu.Lock()
	defer wearPNG.mu.Unlock()
	if fn == nil {
		delete(wearPNG.sources, name)
		return
	}
	if wearPNG.sources == nil {
		wearPNG.sources = map[string]func(io.Writer) error{}
	}
	wearPNG.sources[name] = fn
}

// WearPNGSources returns the sorted names of the registered wear-PNG
// renderers (the unnamed SetWearPNG default excluded).
func WearPNGSources() []string {
	wearPNG.mu.Lock()
	defer wearPNG.mu.Unlock()
	names := make([]string, 0, len(wearPNG.sources))
	for n := range wearPNG.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteWearPNG renders a wear-PNG source to w, resolving name exactly
// like a /wear.png?name= request (empty name selects the default; see
// lookupWearPNG). It errors when no source matches.
func WriteWearPNG(w io.Writer, name string) error {
	fn := lookupWearPNG(name)
	if fn == nil {
		return fmt.Errorf("obs: no wear-PNG source registered for %q", name)
	}
	return fn(w)
}

// lookupWearPNG resolves the renderer for a /wear.png request. An empty
// name selects deterministically: the SetWearPNG default if installed,
// else the lexicographically smallest registered name (so a sweep's
// live view doesn't depend on registration order).
func lookupWearPNG(name string) func(io.Writer) error {
	wearPNG.mu.Lock()
	defer wearPNG.mu.Unlock()
	if name != "" {
		return wearPNG.sources[name]
	}
	if wearPNG.def != nil {
		return wearPNG.def
	}
	var first string
	var fn func(io.Writer) error
	for n, f := range wearPNG.sources {
		if fn == nil || n < first {
			first, fn = n, f
		}
	}
	return fn
}

// extraHandlers is the dynamic route registry behind Handle: serving
// layers (internal/serve's job endpoints) mount themselves here and the
// telemetry server consults the registry on every request, so handlers
// may be registered before or after the server starts. Patterns follow
// a reduced http.ServeMux discipline: exact paths ("/sweep") or rooted
// subtrees ("/jobs/").
var extraHandlers = struct {
	mu sync.RWMutex
	m  map[string]http.Handler
}{m: map[string]http.Handler{}}

// Handle registers (or, with a nil handler, removes) a handler on the
// telemetry server under the given pattern — an exact path, or a
// subtree when the pattern ends in "/". The built-in endpoints
// (/metrics, /healthz, /series, /wear.png) cannot be shadowed: the
// registry is consulted only for paths the static mux does not serve.
func Handle(pattern string, h http.Handler) {
	extraHandlers.mu.Lock()
	defer extraHandlers.mu.Unlock()
	if h == nil {
		delete(extraHandlers.m, pattern)
		return
	}
	extraHandlers.m[pattern] = h
}

// lookupHandler resolves a request path against the dynamic registry:
// exact match first, then the longest registered subtree prefix.
func lookupHandler(path string) http.Handler {
	extraHandlers.mu.RLock()
	defer extraHandlers.mu.RUnlock()
	if h, ok := extraHandlers.m[path]; ok {
		return h
	}
	var best string
	var bestH http.Handler
	for pat, h := range extraHandlers.m {
		if len(pat) > 0 && pat[len(pat)-1] == '/' &&
			len(path) >= len(pat) && path[:len(pat)] == pat && len(pat) > len(best) {
			best, bestH = pat, h
		}
	}
	return bestH
}

// telemetryShutdownTimeout bounds how long Close waits for in-flight
// telemetry responses before severing them (a package var so the
// timeout-fallback path is testable).
var telemetryShutdownTimeout = 2 * time.Second

// SetTelemetryShutdownTimeout overrides the graceful-close deadline and
// returns a func restoring the previous value — a test hook for the
// Close-after-timeout fallback path.
func SetTelemetryShutdownTimeout(d time.Duration) func() {
	old := telemetryShutdownTimeout
	telemetryShutdownTimeout = d
	return func() { telemetryShutdownTimeout = old }
}

// telemetryServer is the HTTP server behind -serve: live Prometheus
// exposition, health, series snapshots and the wear heatmap.
type telemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// buffered wraps a renderer so the response is staged in memory first:
// a renderer that fails after a direct write would already have sent a
// 200 header and a truncated body. With the buffer the error path can
// still return a real 500, and success responses carry Content-Length.
func buffered(w http.ResponseWriter, contentType string, render func(io.Writer) error) {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// jsonError writes a JSON error body ({"error": msg}) with the given
// status — keeping machine-readable 404s consistent between the obs
// endpoints and the serving layers mounted via Handle.
func jsonError(w http.ResponseWriter, msg string, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// startTelemetryServer binds addr synchronously (so a bad address fails
// at startup) and serves the telemetry endpoints in the background:
//
//	/metrics    Prometheus text exposition of every registered metric
//	/healthz    liveness probe ("ok")
//	/series     JSON snapshot of every registered Series; ?name=
//	            selects one (JSON 404 when absent or already removed)
//	/events     structured JSONL event-log tail; ?n= bounds the record
//	            count (default 1000, ≤ 0 for everything held)
//	/dashboard  self-contained live HTML dashboard (polls /metrics
//	            and /series; no external assets)
//	/wear.png   latest wear-distribution heatmap; ?name= selects among
//	            RegisterWearPNG sources (404 until a sampled run
//	            registers one via SetWearPNG/RegisterWearPNG)
func startTelemetryServer(addr string) (*telemetryServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("name"); name != "" {
			s := FindSeries(name)
			if s == nil {
				jsonError(w, fmt.Sprintf("no series named %q (never registered, or removed)", name), http.StatusNotFound)
				return
			}
			buffered(w, "application/json", func(out io.Writer) error {
				enc := json.NewEncoder(out)
				enc.SetIndent("", "  ")
				return enc.Encode(s)
			})
			return
		}
		buffered(w, "application/json", WriteSeriesJSON)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 1000
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				jsonError(w, fmt.Sprintf("bad n=%q: %v", q, err), http.StatusBadRequest)
				return
			}
			n = v
		}
		buffered(w, "application/x-ndjson", func(out io.Writer) error {
			return WriteLogJSONL(out, n)
		})
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = io.WriteString(w, dashboardHTML)
	})
	mux.HandleFunc("/wear.png", func(w http.ResponseWriter, r *http.Request) {
		fn := lookupWearPNG(r.URL.Query().Get("name"))
		if fn == nil {
			http.Error(w, "no wear sampler active (run with sampling enabled)", http.StatusNotFound)
			return
		}
		buffered(w, "image/png", fn)
	})
	// Static endpoints win; anything else consults the dynamic Handle
	// registry so serving layers can mount work endpoints at any time.
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pat := mux.Handler(r); pat != "" {
			mux.ServeHTTP(w, r)
			return
		}
		if h := lookupHandler(r.URL.Path); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry server on %s: %w", addr, err)
	}
	ts := &telemetryServer{ln: ln, srv: &http.Server{Handler: root, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ts.srv.Serve(ln) }() // runs until Close
	return ts, nil
}

// Addr returns the server's bound address (useful with ":0").
func (t *telemetryServer) Addr() string { return t.ln.Addr().String() }

// Close stops the server gracefully: the listener closes immediately,
// in-flight responses (a /wear.png render, a long /series snapshot, a
// serving layer's job poll) get telemetryShutdownTimeout to complete,
// and only connections still open after the deadline are severed. The
// old behavior — http.Server.Close unconditionally — cut response
// bodies mid-write.
func (t *telemetryServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), telemetryShutdownTimeout)
	defer cancel()
	if err := t.srv.Shutdown(ctx); err != nil {
		return t.srv.Close()
	}
	return nil
}
