package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// wearPNG is the pluggable renderer behind /wear.png. The sampling layer
// (internal/core's WearSampler, wired by pim.Run) registers a closure
// that renders its latest histogram snapshot; obs itself stays free of
// image and stats dependencies.
var wearPNG struct {
	mu sync.Mutex
	fn func(io.Writer) error
}

// SetWearPNG installs the renderer behind the /wear.png endpoint. The
// most recently registered source wins — in a concurrent sweep every
// sampled run registers, and the live view follows whichever registered
// last. Pass nil to uninstall.
func SetWearPNG(fn func(io.Writer) error) {
	wearPNG.mu.Lock()
	wearPNG.fn = fn
	wearPNG.mu.Unlock()
}

// telemetryServer is the HTTP server behind -serve: live Prometheus
// exposition, health, series snapshots and the wear heatmap.
type telemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// startTelemetryServer binds addr synchronously (so a bad address fails
// at startup) and serves the telemetry endpoints in the background:
//
//	/metrics   Prometheus text exposition of every registered metric
//	/healthz   liveness probe ("ok")
//	/series    JSON snapshot of every registered Series
//	/wear.png  latest wear-distribution heatmap (404 until a sampled
//	           run registers a source via SetWearPNG)
func startTelemetryServer(addr string) (*telemetryServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteSeriesJSON(w)
	})
	mux.HandleFunc("/wear.png", func(w http.ResponseWriter, _ *http.Request) {
		wearPNG.mu.Lock()
		fn := wearPNG.fn
		wearPNG.mu.Unlock()
		if fn == nil {
			http.Error(w, "no wear sampler active (run with sampling enabled)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_ = fn(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry server on %s: %w", addr, err)
	}
	ts := &telemetryServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ts.srv.Serve(ln) }() // runs until Close
	return ts, nil
}

// Addr returns the server's bound address (useful with ":0").
func (t *telemetryServer) Addr() string { return t.ln.Addr().String() }

// Close stops the server and releases its listener.
func (t *telemetryServer) Close() error { return t.srv.Close() }
