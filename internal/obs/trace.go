package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Request-scoped tracing. A trace id names one unit of externally
// visible work — a serving-layer job — and is carried across goroutines
// so every span event the job causes (queue wait, plan build, per-
// strategy simulation, bank fan-out) can be filtered back out of the
// shared event ring. Go has no goroutine-local storage, so the binding
// is an explicit map keyed by goroutine id: SetTrace binds the calling
// goroutine, internal/pool re-binds its workers to the dispatching
// goroutine's trace, and recordEvent stamps the binding onto each event.
//
// The fast path is guarded by one atomic load (activeTraces): while no
// goroutine holds a binding — every non-serving run — CurrentTrace
// returns "" without touching the map or computing a goroutine id.
var traceIDs = struct {
	mu sync.Mutex
	m  map[int64]string
}{m: map[int64]string{}}

// activeTraces mirrors len(traceIDs.m) so the no-traces fast path is a
// single atomic load.
var activeTraces atomic.Int64

// traceSeq feeds NewTraceID.
var traceSeq atomic.Uint64

// NewTraceID returns a fresh process-unique trace id ("t0000000000000001").
// Serving layers assign one per admitted job.
func NewTraceID() string {
	return fmt.Sprintf("t%016x", traceSeq.Add(1))
}

// SetTrace binds the calling goroutine to the given trace id and returns
// a func that restores the previous binding — use it defer-style around
// the traced work. An empty id removes the binding. The binding is
// per-goroutine: work handed to other goroutines is only traced when the
// dispatcher propagates it (internal/pool does).
func SetTrace(id string) func() {
	g := goid()
	traceIDs.mu.Lock()
	prev, had := traceIDs.m[g]
	setTraceLocked(g, id)
	traceIDs.mu.Unlock()
	return func() {
		traceIDs.mu.Lock()
		if had {
			setTraceLocked(g, prev)
		} else {
			setTraceLocked(g, "")
		}
		traceIDs.mu.Unlock()
	}
}

func setTraceLocked(g int64, id string) {
	if id == "" {
		delete(traceIDs.m, g)
	} else {
		traceIDs.m[g] = id
	}
	activeTraces.Store(int64(len(traceIDs.m)))
}

// CurrentTrace returns the trace id bound to the calling goroutine, or
// "" when none is. With no bindings anywhere in the process this is one
// atomic load.
func CurrentTrace() string {
	if activeTraces.Load() == 0 {
		return ""
	}
	return traceFor(goid())
}

// traceFor looks up the binding for a known goroutine id.
func traceFor(g int64) string {
	if activeTraces.Load() == 0 {
		return ""
	}
	traceIDs.mu.Lock()
	id := traceIDs.m[g]
	traceIDs.mu.Unlock()
	return id
}
