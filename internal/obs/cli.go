package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Run bundles the observability lifecycle every CLI shares: the -pprof
// and -metrics flags, enabling the layer for the process, and emitting
// the run manifest. Usage:
//
//	run := obs.NewRun("pimsim", flag.CommandLine)
//	flag.Parse()
//	run.Start()
//	... work ...
//	run.Finish("out", map[string]any{...}, seed, os.Stdout)
type Run struct {
	// PprofAddr, when non-empty, serves net/http/pprof on that address
	// for the duration of the run (set by -pprof).
	PprofAddr string
	// Metrics makes Finish print the counter/stage table (set by
	// -metrics).
	Metrics bool

	manifest *Manifest
}

// NewRun creates the lifecycle for the named command and registers the
// -pprof and -metrics flags on fs (pass flag.CommandLine for
// whole-process CLIs, or a subcommand's FlagSet).
func NewRun(cmd string, fs *flag.FlagSet) *Run {
	r := &Run{manifest: NewManifest(cmd)}
	fs.StringVar(&r.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&r.Metrics, "metrics", false, "print the observability counter/stage table at exit")
	return r
}

// Start enables the observability layer and, if -pprof was given, serves
// the pprof handlers on a dedicated mux in the background. Call it right
// after flag parsing. The listener is bound synchronously so a bad
// address errors here; the server itself runs until the process exits.
func (r *Run) Start() error {
	Enable()
	if r.PprofAddr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", r.PprofAddr)
	if err != nil {
		return fmt.Errorf("obs: pprof server on %s: %w", r.PprofAddr, err)
	}
	go func() { _ = http.Serve(ln, mux) }() // best-effort debug endpoint
	return nil
}

// Finish completes the run: it folds the observability snapshot into the
// manifest, writes manifest_<cmd>.json under outDir, and — when -metrics
// was given — prints the counter/stage table to w. config is the CLI's
// resolved configuration and seed its random seed (0 if none).
func (r *Run) Finish(outDir string, config map[string]any, seed int64, w io.Writer) error {
	r.manifest.Config = config
	r.manifest.Seed = seed
	r.manifest.Finish()
	if r.Metrics {
		if err := WriteTable(w); err != nil {
			return err
		}
	}
	if err := r.manifest.WriteFile(outDir); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// Manifest exposes the run's manifest (tests inspect it; CLIs normally
// only need Finish).
func (r *Run) Manifest() *Manifest { return r.manifest }
