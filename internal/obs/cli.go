package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
)

// Run bundles the observability lifecycle every CLI shares: the -pprof,
// -metrics, -serve, -trace and -events flags, enabling the layer (and
// the span-event ring and structured log) for the process, serving live
// telemetry, and emitting the run manifest plus trace/series/event-log
// artifacts. Usage:
//
//	run := obs.NewRun("pimsim", flag.CommandLine)
//	flag.Parse()
//	run.Start()
//	... work ...
//	run.Finish("out", map[string]any{...}, seed, os.Stdout)
type Run struct {
	// PprofAddr, when non-empty, serves net/http/pprof on that address
	// for the duration of the run (set by -pprof).
	PprofAddr string
	// Metrics makes Finish print the counter/stage table (set by
	// -metrics).
	Metrics bool
	// ServeAddr, when non-empty, serves live telemetry — /metrics
	// (Prometheus text), /healthz, /series, /wear.png — on that address
	// for the duration of the run (set by -serve).
	ServeAddr string
	// Trace enables the span event ring and makes Finish write the
	// Chrome trace_event export to out/trace_<cmd>.json (set by -trace,
	// default on).
	Trace bool
	// Events enables the structured JSONL event log and makes Finish
	// write out/events_<cmd>.jsonl when any records were logged (set by
	// -events, default on). The log feeds the -serve /events endpoint.
	Events bool

	manifest  *Manifest
	pprofLn   net.Listener
	pprofSrv  *http.Server
	telemetry *telemetryServer
}

// NewRun creates the lifecycle for the named command and registers the
// -pprof, -metrics, -serve, -trace and -events flags on fs (pass
// flag.CommandLine for whole-process CLIs, or a subcommand's FlagSet).
func NewRun(cmd string, fs *flag.FlagSet) *Run {
	r := &Run{manifest: NewManifest(cmd)}
	fs.StringVar(&r.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&r.Metrics, "metrics", false, "print the observability counter/stage table at exit")
	fs.StringVar(&r.ServeAddr, "serve", "", "serve live telemetry (/metrics, /healthz, /series, /events, /dashboard, /wear.png) on this address (e.g. localhost:8090)")
	fs.BoolVar(&r.Trace, "trace", true, "record span begin/end events and write out/trace_<cmd>.json (Chrome trace_event format)")
	fs.BoolVar(&r.Events, "events", true, "record structured events and write out/events_<cmd>.jsonl (JSON Lines)")
	return r
}

// Start enables the observability layer (and, with -trace, the span
// event ring), then binds the -pprof and -serve servers. Call it right
// after flag parsing. Listeners are bound synchronously so a bad address
// errors here; the servers run until Finish.
func (r *Run) Start() error {
	Enable()
	if r.Trace {
		EnableEvents(DefaultEventCapacity)
	}
	if r.Events {
		EnableLog(DefaultLogCapacity)
	}
	if r.PprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", r.PprofAddr)
		if err != nil {
			return fmt.Errorf("obs: pprof server on %s: %w", r.PprofAddr, err)
		}
		r.pprofLn = ln
		r.pprofSrv = &http.Server{Handler: mux}
		go func() { _ = r.pprofSrv.Serve(ln) }() // best-effort debug endpoint
	}
	if r.ServeAddr != "" {
		ts, err := startTelemetryServer(r.ServeAddr)
		if err != nil {
			r.Close()
			return err
		}
		r.telemetry = ts
	}
	return nil
}

// PprofBound returns the pprof server's bound address ("" when -pprof
// was not given) — with "-pprof localhost:0" this is where it landed.
func (r *Run) PprofBound() string {
	if r.pprofLn == nil {
		return ""
	}
	return r.pprofLn.Addr().String()
}

// ServeBound returns the telemetry server's bound address ("" when
// -serve was not given).
func (r *Run) ServeBound() string {
	if r.telemetry == nil {
		return ""
	}
	return r.telemetry.Addr()
}

// Close shuts down the pprof and telemetry servers, if running. Finish
// calls it; it is safe to call twice.
func (r *Run) Close() {
	if r.pprofSrv != nil {
		_ = r.pprofSrv.Close()
		r.pprofSrv, r.pprofLn = nil, nil
	}
	if r.telemetry != nil {
		_ = r.telemetry.Close()
		r.telemetry = nil
	}
}

// Finish completes the run: it folds the observability snapshot into the
// manifest, writes manifest_<cmd>.json under outDir, exports the span
// event ring as trace_<cmd>.json and every registered Series as
// series_<name>.{csv,json}, prints the counter/stage table when -metrics
// was given, and shuts the telemetry servers down. config is the CLI's
// resolved configuration and seed its random seed (0 if none).
func (r *Run) Finish(outDir string, config map[string]any, seed int64, w io.Writer) error {
	defer r.Close()
	r.manifest.Config = config
	r.manifest.Seed = seed
	r.manifest.Finish()
	if r.Metrics {
		if err := WriteTable(w); err != nil {
			return err
		}
	}
	if err := r.manifest.WriteFile(outDir); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	if r.Trace && CaptureEventStats().Recorded > 0 {
		path := filepath.Join(outDir, "trace_"+r.manifest.Command+".json")
		if err := writeFileAtomic(path, WriteTrace); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
	}
	if r.Events && CaptureLogStats().Recorded > 0 {
		path := filepath.Join(outDir, "events_"+r.manifest.Command+".jsonl")
		if err := writeFileAtomic(path, func(w io.Writer) error {
			return WriteLogJSONL(w, 0)
		}); err != nil {
			return fmt.Errorf("obs: writing event log: %w", err)
		}
	}
	for _, s := range AllSeries() {
		base := filepath.Join(outDir, "series_"+fsSafe(s.Name()))
		if err := writeFileAtomic(base+".csv", s.WriteCSV); err != nil {
			return fmt.Errorf("obs: writing series: %w", err)
		}
		one := s
		if err := writeFileAtomic(base+".json", func(w io.Writer) error {
			data, err := one.MarshalJSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(data, '\n'))
			return err
		}); err != nil {
			return fmt.Errorf("obs: writing series: %w", err)
		}
	}
	return nil
}

// Manifest exposes the run's manifest (tests inspect it; CLIs normally
// only need Finish).
func (r *Run) Manifest() *Manifest { return r.manifest }

// fsSafe maps a telemetry name onto the filename alphabet: anything
// outside [a-zA-Z0-9._+-] becomes '_' ("wear.mult.RaxBs+Hw" survives).
func fsSafe(name string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '+', c == '-':
			return c
		default:
			return '_'
		}
	}, name)
}

// writeFileAtomic streams fn into path's directory, creating it first.
func writeFileAtomic(path string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
