package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pimendure/internal/obs"
)

// Histograms must be exact under concurrent hammering: count and sum are
// plain atomic adds, and every recorded value must land in exactly one
// bucket, so the bucket totals conserve the count.
func TestHistogramConcurrentAccuracy(t *testing.T) {
	withObs(t, func() {
		h := obs.GetHistogram("hist.test.concurrent")
		workers := runtime.GOMAXPROCS(0)
		const perWorker = 10_000
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					h.Observe(int64(w*perWorker + i))
				}
			}(w)
		}
		wg.Wait()

		n := int64(workers * perWorker)
		if got := h.Count(); got != n {
			t.Errorf("Count = %d, want %d", got, n)
		}
		// Sum of 0..n-1 = n(n-1)/2.
		wantSum := float64(n) * float64(n-1) / 2
		if got := h.Sum(); got != wantSum {
			t.Errorf("Sum = %g, want %g", got, wantSum)
		}
		var bucketTotal int64
		for _, b := range h.Snapshot().Buckets {
			bucketTotal += b.Count
		}
		if bucketTotal != n {
			t.Errorf("bucket totals = %d, want %d (every value in exactly one bucket)", bucketTotal, n)
		}
	})
}

// Disabled, Observe must record nothing — the one-atomic-load fast path
// that keeps histograms free in non-observed runs.
func TestHistogramDisabledNoOp(t *testing.T) {
	obs.Reset()
	obs.Disable()
	t.Cleanup(obs.Reset)
	h := obs.GetHistogram("hist.test.disabled")
	h.Observe(42)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("disabled histogram recorded: count=%d sum=%g", h.Count(), h.Sum())
	}
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(7) }); allocs != 0 {
		t.Errorf("disabled Observe allocates %g times per call", allocs)
	}
}

// Negative values clamp to zero (bucket 0) instead of corrupting the
// sum or indexing out of range.
func TestHistogramNegativeClamp(t *testing.T) {
	withObs(t, func() {
		h := obs.GetHistogram("hist.test.negative")
		h.Observe(-5)
		if got := h.Count(); got != 1 {
			t.Fatalf("Count = %d, want 1", got)
		}
		if got := h.Sum(); got != 0 {
			t.Errorf("Sum = %g, want 0 (negative clamps)", got)
		}
		s := h.Snapshot()
		if len(s.Buckets) != 1 || s.Buckets[0].LE != 0 {
			t.Errorf("buckets = %+v, want one zero bucket", s.Buckets)
		}
	})
}

// Quantile interpolates within log buckets: with values 1..1000 the
// estimates must land within one bucket (a factor of two) of the truth.
func TestHistogramQuantile(t *testing.T) {
	withObs(t, func() {
		h := obs.GetHistogram("hist.test.quantile")
		for v := int64(1); v <= 1000; v++ {
			h.Observe(v)
		}
		for _, tc := range []struct{ q, want float64 }{{0.5, 500}, {0.99, 990}, {1, 1000}} {
			got := h.Quantile(tc.q)
			if got < tc.want/2 || got > tc.want*2 {
				t.Errorf("Quantile(%g) = %g, want within 2x of %g", tc.q, got, tc.want)
			}
		}
		if got := h.Quantile(0); got != 0 {
			// rank 0 resolves inside the first bucket, whose low bound is ≤ 1
			if got > 1 {
				t.Errorf("Quantile(0) = %g, want ≤ 1", got)
			}
		}
	})
}

// A duration histogram records nanoseconds and exports seconds: the
// exposition family carries the _seconds suffix and the sum is scaled.
func TestDurationHistogramExposition(t *testing.T) {
	withObs(t, func() {
		h := obs.GetDurationHistogram("hist.test.lat")
		h.ObserveDuration(2 * time.Second)
		if got := h.Sum(); got != 2 {
			t.Errorf("Sum = %g, want 2 (seconds)", got)
		}
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"# TYPE hist_test_lat_seconds histogram",
			"hist_test_lat_seconds_sum 2",
			"hist_test_lat_seconds_count 1",
			`hist_test_lat_seconds_bucket{le="+Inf"} 1`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}
	})
}

// Exposition buckets must be cumulative and non-decreasing, closing at
// +Inf with the exact count — the contract promlint gates in CI.
func TestHistogramExpositionCumulative(t *testing.T) {
	withObs(t, func() {
		h := obs.GetHistogram("hist.test.cumulative")
		for _, v := range []int64{1, 3, 3, 10, 100, 5000} {
			h.Observe(v)
		}
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		closing := false
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, "hist_test_cumulative_bucket{") {
				continue
			}
			var cum float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &cum); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if cum < prev {
				t.Errorf("bucket counts decrease at %q (prev %g)", line, prev)
			}
			prev = cum
			if strings.Contains(line, `le="+Inf"`) {
				closing = true
				if cum != 6 {
					t.Errorf("+Inf bucket = %g, want 6 (the count)", cum)
				}
			}
		}
		if !closing {
			t.Error("no le=\"+Inf\" closing bucket in the exposition")
		}
	})
}

// Histogram snapshots must round-trip through the manifest JSON with
// count, sum and buckets intact, and timers must surface as stage
// entries alongside them.
func TestHistogramManifestRoundTrip(t *testing.T) {
	withObs(t, func() {
		h := obs.GetHistogram("hist.test.manifest")
		for _, v := range []int64{1, 2, 4, 8, 1000} {
			h.Observe(v)
		}
		m := obs.NewManifest("histtest")
		m.Finish()
		dir := t.TempDir()
		if err := m.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
		back, err := obs.ReadManifest(m.Path(dir))
		if err != nil {
			t.Fatal(err)
		}
		var snap *obs.HistogramSnapshot
		for i := range back.Histograms {
			if back.Histograms[i].Name == "hist.test.manifest" {
				snap = &back.Histograms[i]
			}
		}
		if snap == nil {
			t.Fatalf("manifest lost the histogram: %+v", back.Histograms)
		}
		orig := h.Snapshot()
		if snap.Count != orig.Count || snap.Sum != orig.Sum {
			t.Errorf("round-trip count/sum = %d/%g, want %d/%g", snap.Count, snap.Sum, orig.Count, orig.Sum)
		}
		if len(snap.Buckets) != len(orig.Buckets) {
			t.Fatalf("round-trip buckets = %d, want %d", len(snap.Buckets), len(orig.Buckets))
		}
		for i, b := range snap.Buckets {
			if b != orig.Buckets[i] {
				t.Errorf("bucket %d = %+v, want %+v", i, b, orig.Buckets[i])
			}
		}
		if q := snap.Quantile(0.5); q <= 0 {
			t.Errorf("snapshot Quantile(0.5) = %g, want > 0", q)
		}
	})
}

// Timers now carry the same log-bucket array: a stage with recorded
// spans must export a _seconds histogram whose count matches the span
// count, and Snapshot/manifest JSON must stay well-formed.
func TestTimerHistogram(t *testing.T) {
	withObs(t, func() {
		for i := 0; i < 5; i++ {
			sp := obs.StartSpan("hist.test.stage")
			sp.End()
		}
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "hist_test_stage_seconds_count 5") {
			t.Errorf("timer histogram count missing:\n%s", out)
		}
		// The capture must remain JSON-encodable (buckets included).
		if _, err := json.Marshal(obs.Capture()); err != nil {
			t.Fatal(err)
		}
	})
}
