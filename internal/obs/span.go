package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Timer accumulates completed spans for one stage name: a count, the
// summed wall time, the longest single span (a max watermark, so a
// 10-second outlier epoch stays visible inside an hour-long total), and
// a log-bucketed duration histogram — the same powers-of-two bucket
// array as Histogram, so stage timings export as full distributions
// (p50/p99 of an epoch, not just mean and max). Timers are created
// implicitly by StartSpan and read back through Capture/WriteTable;
// concurrent spans (pool workers timing the same stage) accumulate
// atomically.
type Timer struct {
	name    string
	count   atomic.Int64
	ns      atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the stage name the timer accumulates under.
func (t *Timer) Name() string { return t.name }

// Count returns how many spans have completed on this timer.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the summed wall time of completed spans.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Max returns the longest single completed span.
func (t *Timer) Max() time.Duration { return time.Duration(t.maxNS.Load()) }

// Histogram snapshots the timer's span-duration distribution in seconds
// — count, sum, and the non-empty log buckets, under the exposition
// family name "<name>_seconds".
func (t *Timer) Histogram() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  t.name + "_seconds",
		Count: t.count.Load(),
		Sum:   time.Duration(t.ns.Load()).Seconds(),
	}
	for i := 0; i < histBuckets; i++ {
		if n := t.buckets[i].Load(); n != 0 {
			_, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, HistogramBucket{LE: hi * 1e-9, Count: n})
		}
	}
	return s
}

// Span is one in-flight timing of a named stage. The zero Span (what
// StartSpan returns while the layer is disabled) is valid: End and Child
// on it are no-ops, so call sites need no enabled-checks of their own.
type Span struct {
	t     *Timer
	start time.Time
	tid   int64 // goroutine id for event emission; 0 = events off at start
}

// StartSpan begins timing the named stage. Stage names are hierarchical
// by convention — "pim.sweep", "core.simulate/hw" — and Child derives
// them mechanically. Disabled, it returns the zero Span at the cost of
// one atomic load. While event recording is on (EnableEvents), the span
// additionally emits a begin mark onto the event ring.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	sp := Span{t: getTimer(name), start: time.Now()}
	if tid := eventTID(); tid != 0 {
		sp.tid = tid
		recordEvent(EventBegin, name, tid)
	}
	return sp
}

// End stops the span and accumulates its wall time under the stage name,
// raising the stage's max-single-span watermark when this span is the
// longest seen. End on the zero Span is a no-op; spans started while
// enabled record even if the layer was disabled in between (the run is
// winding down).
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := int64(time.Since(s.start))
	s.t.count.Add(1)
	s.t.ns.Add(d)
	s.t.buckets[bits.Len64(uint64(d))].Add(1)
	for {
		cur := s.t.maxNS.Load()
		if d <= cur || s.t.maxNS.CompareAndSwap(cur, d) {
			break
		}
	}
	if s.tid != 0 {
		recordEvent(EventEnd, s.t.name, s.tid)
	}
}

// Child starts a span nested under this one: the stage name is
// "<parent>/<name>", so captures and manifests sort children under
// their parent stage. Child of the zero Span is the zero Span — a
// disabled parent disables the whole subtree.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	sp := Span{t: getTimer(s.t.name + "/" + name), start: time.Now()}
	if tid := eventTID(); tid != 0 {
		sp.tid = tid
		recordEvent(EventBegin, sp.t.name, tid)
	}
	return sp
}
