package obs

// dashboardHTML is the self-contained live dashboard served at
// /dashboard on the -serve telemetry listener. It carries no external
// assets — inline CSS and vanilla JS on <canvas> — and renders purely
// from the two endpoints the server already exposes: /metrics
// (Prometheus text, parsed client-side) and /series (JSON). Panels:
// stat tiles (queue depth, jobs, cache hit rate, latency quantiles),
// the serve.job_seconds latency histogram as a log-bucket bar chart,
// and one sparkline per registered series column (per-bank wear
// trajectories when a sampled run is live).
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pimendure dashboard</title>
<style>
  body { margin: 0; background: #111418; color: #d8dee4; font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace; }
  h1 { font-size: 15px; margin: 14px 16px 4px; font-weight: 600; }
  h1 small { color: #7d8590; font-weight: 400; }
  h2 { font-size: 12px; margin: 18px 16px 6px; color: #7d8590; text-transform: uppercase; letter-spacing: .08em; }
  .tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 16px; }
  .tile { background: #1b2026; border: 1px solid #2b3138; border-radius: 6px; padding: 8px 14px; min-width: 120px; }
  .tile .v { font-size: 20px; font-weight: 600; color: #e6edf3; }
  .tile .k { color: #7d8590; font-size: 11px; }
  canvas { background: #1b2026; border: 1px solid #2b3138; border-radius: 6px; display: block; margin: 6px 16px; }
  .spark-row { display: flex; align-items: center; gap: 10px; margin: 4px 16px; }
  .spark-row .lbl { width: 340px; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; color: #9da7b1; }
  .spark-row canvas { margin: 0; }
  #err { color: #f85149; margin: 4px 16px; min-height: 1.2em; }
</style>
</head>
<body>
<h1>pimendure <small id="meta">connecting…</small></h1>
<div id="err"></div>
<div class="tiles" id="tiles"></div>
<h2>request latency — serve_job_seconds (log buckets)</h2>
<canvas id="hist" width="960" height="160"></canvas>
<h2>series sparklines (per-bank wear when sampling is live)</h2>
<div id="sparks"></div>
<script>
"use strict";
// parseProm parses Prometheus text exposition into {scalars, hists}.
// Histogram families collect {le, cum} bucket lists plus sum/count.
function parseProm(text) {
  const scalars = {}, hists = {};
  for (const line of text.split("\n")) {
    if (!line || line[0] === "#") continue;
    const sp = line.lastIndexOf(" ");
    if (sp < 0) continue;
    const key = line.slice(0, sp), val = parseFloat(line.slice(sp + 1));
    const br = key.indexOf("{");
    if (br < 0) { scalars[key] = val; continue; }
    const name = key.slice(0, br);
    const m = /le="([^"]+)"/.exec(key.slice(br));
    if (m && name.endsWith("_bucket")) {
      const fam = name.slice(0, -"_bucket".length);
      (hists[fam] = hists[fam] || []).push({ le: m[1] === "+Inf" ? Infinity : parseFloat(m[1]), cum: val });
    }
  }
  return { scalars, hists };
}
// quantile estimates q from a cumulative log-bucket list.
function quantile(buckets, count, q) {
  if (!buckets || !count) return NaN;
  const target = q * count;
  let prevCum = 0, prevLE = 0;
  for (const b of buckets) {
    if (b.cum >= target) {
      const inBucket = b.cum - prevCum;
      const lo = prevLE, hi = b.le === Infinity ? prevLE * 2 || 1 : b.le;
      if (inBucket <= 0) return hi;
      return lo + (hi - lo) * (target - prevCum) / inBucket;
    }
    prevCum = b.cum; prevLE = b.le === Infinity ? prevLE : b.le;
  }
  return prevLE;
}
function fmtDur(s) {
  if (!isFinite(s)) return "–";
  if (s < 1e-3) return (s * 1e6).toFixed(0) + "µs";
  if (s < 1) return (s * 1e3).toFixed(1) + "ms";
  return s.toFixed(2) + "s";
}
function tile(k, v) { return '<div class="tile"><div class="v">' + v + '</div><div class="k">' + k + "</div></div>"; }
function drawHist(buckets) {
  const cv = document.getElementById("hist"), g = cv.getContext("2d");
  g.clearRect(0, 0, cv.width, cv.height);
  if (!buckets || !buckets.length) return;
  // de-cumulate into per-bucket counts
  const bars = []; let prev = 0;
  for (const b of buckets) { bars.push({ le: b.le, n: b.cum - prev }); prev = b.cum; }
  const max = Math.max(...bars.map(b => b.n), 1);
  const bw = Math.min(60, (cv.width - 20) / bars.length);
  bars.forEach((b, i) => {
    const h = Math.round((cv.height - 30) * b.n / max);
    g.fillStyle = "#3fb950";
    g.fillRect(10 + i * bw, cv.height - 18 - h, bw - 3, h);
    g.fillStyle = "#7d8590"; g.font = "9px monospace"; g.textAlign = "center";
    g.fillText(b.le === Infinity ? "+Inf" : fmtDur(b.le), 10 + i * bw + bw / 2, cv.height - 6);
    if (b.n) g.fillText(String(b.n), 10 + i * bw + bw / 2, cv.height - 22 - h);
  });
}
function spark(cv, vals) {
  const g = cv.getContext("2d");
  g.clearRect(0, 0, cv.width, cv.height);
  if (vals.length < 2) return;
  const fin = vals.filter(isFinite);
  const lo = Math.min(...fin), hi = Math.max(...fin), span = hi - lo || 1;
  g.strokeStyle = "#58a6ff"; g.lineWidth = 1.2; g.beginPath();
  vals.forEach((v, i) => {
    const x = 2 + (cv.width - 4) * i / (vals.length - 1);
    const y = cv.height - 3 - (cv.height - 6) * ((isFinite(v) ? v : lo) - lo) / span;
    i ? g.lineTo(x, y) : g.moveTo(x, y);
  });
  g.stroke();
  g.fillStyle = "#7d8590"; g.font = "9px monospace"; g.textAlign = "left";
  g.fillText(hi.toPrecision(3), 2, 9);
}
let sparkCanvases = {};
async function refresh() {
  const err = document.getElementById("err");
  try {
    const [mText, series] = await Promise.all([
      fetch("/metrics").then(r => r.text()),
      fetch("/series").then(r => r.json()),
    ]);
    const { scalars, hists } = parseProm(mText);
    const jb = hists["serve_job_seconds"];
    const jobCount = scalars["serve_job_seconds_count"] || 0;
    const hits = scalars["serve_cache_hits"] || 0, misses = scalars["serve_cache_misses"] || 0;
    const hitRate = hits + misses ? (100 * hits / (hits + misses)).toFixed(1) + "%" : "–";
    document.getElementById("tiles").innerHTML =
      tile("queue depth (max)", scalars["serve_queue_depth"] ?? 0) +
      tile("jobs accepted", scalars["serve_jobs_accepted"] ?? 0) +
      tile("jobs completed", scalars["serve_jobs_completed"] ?? 0) +
      tile("shed (429)", scalars["serve_jobs_shed"] ?? 0) +
      tile("coalesced", scalars["serve_jobs_coalesced"] ?? 0) +
      tile("cache hit rate", hitRate) +
      tile("p50 latency", fmtDur(quantile(jb, jobCount, 0.5))) +
      tile("p99 latency", fmtDur(quantile(jb, jobCount, 0.99)));
    drawHist(jb);
    const sparks = document.getElementById("sparks");
    const seen = new Set();
    for (const s of series.slice(0, 24)) {
      s.columns.forEach((col, ci) => {
        const key = s.name + "·" + col;
        seen.add(key);
        let cv = sparkCanvases[key];
        if (!cv) {
          const row = document.createElement("div");
          row.className = "spark-row";
          row.innerHTML = '<span class="lbl">' + key + "</span>";
          cv = document.createElement("canvas");
          cv.width = 420; cv.height = 34;
          row.appendChild(cv);
          sparks.appendChild(row);
          sparkCanvases[key] = cv;
        }
        spark(cv, s.samples.map(r => r[ci]));
      });
    }
    for (const key in sparkCanvases) {
      if (!seen.has(key)) { sparkCanvases[key].parentNode.remove(); delete sparkCanvases[key]; }
    }
    document.getElementById("meta").textContent =
      "live · " + new Date().toLocaleTimeString() + " · " + series.length + " series";
    err.textContent = "";
  } catch (e) {
    err.textContent = "refresh failed: " + e;
  }
  setTimeout(refresh, 1000);
}
refresh();
</script>
</body>
</html>
`
