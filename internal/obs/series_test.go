package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pimendure/internal/obs"
)

// Series record independently of the enabled flag, export as CSV and
// JSON, and register for process-wide discovery.
func TestSeriesRecordAndExport(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.series.b", "x", "y")
	obs.NewSeries("test.series.a", "v")
	s.Add(1, 2)
	s.Add(3, 4.5)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if last := s.Last(); last[0] != 3 || last[1] != 4.5 {
		t.Errorf("last = %v", last)
	}
	if col := s.Column("y"); len(col) != 2 || col[1] != 4.5 {
		t.Errorf("column y = %v", col)
	}
	if s.Column("nope") != nil {
		t.Error("unknown column should be nil")
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4.5\n"
	if csv.String() != want {
		t.Errorf("CSV = %q, want %q", csv.String(), want)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Name    string      `json:"name"`
		Columns []string    `json:"columns"`
		Samples [][]float64 `json:"samples"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "test.series.b" || len(back.Columns) != 2 || len(back.Samples) != 2 {
		t.Errorf("JSON roundtrip = %+v", back)
	}

	all := obs.AllSeries()
	if len(all) != 2 || all[0].Name() != "test.series.a" || all[1].Name() != "test.series.b" {
		t.Errorf("AllSeries not sorted complete: %v", all)
	}

	var blob bytes.Buffer
	if err := obs.WriteSeriesJSON(&blob); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blob.String(), "test.series.a") || !strings.Contains(blob.String(), "test.series.b") {
		t.Errorf("series JSON missing entries:\n%s", blob.String())
	}

	// Reset empties the registry; the handle survives.
	obs.Reset()
	if len(obs.AllSeries()) != 0 {
		t.Error("Reset did not clear the series registry")
	}
	s.Add(5, 6)
	if s.Len() != 3 {
		t.Error("series handle unusable after Reset")
	}
}

// Arity mismatches are programming errors and must fail loudly.
func TestSeriesArityPanics(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.arity", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity did not panic")
		}
	}()
	s.Add(1)
}

// Registering a live name must not clobber it: the second registration
// gets a unique suffixed name, both trajectories stay exported, and the
// first handle keeps recording into its own registration. (The old
// replace-on-collision semantics interleaved two concurrent runs of the
// same benchmark into one series and orphaned the other's handle.)
func TestSeriesCollisionGetsUniqueName(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	first := obs.NewSeries("test.collide", "v")
	first.Add(1)
	second := obs.NewSeries("test.collide", "v")
	third := obs.NewSeries("test.collide", "v")
	if second == first || second.Len() != 0 {
		t.Fatal("collision did not create a fresh series")
	}
	if second.Name() != "test.collide#2" || third.Name() != "test.collide#3" {
		t.Errorf("suffixed names = %q, %q", second.Name(), third.Name())
	}
	second.Add(2)
	all := obs.AllSeries()
	if len(all) != 3 || all[0] != first || all[1] != second {
		t.Fatalf("registry lost a colliding series: %v", all)
	}
	if first.Len() != 1 || all[0].Last()[0] != 1 || all[1].Last()[0] != 2 {
		t.Error("trajectories interleaved across the collision")
	}
}

// RemoveSeries retires a name: the series stops being exported, the
// handle survives, and the name is free for a fresh unsuffixed
// registration — the scoping a job-serving layer needs to unregister a
// request's telemetry at completion.
func TestRemoveSeries(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.remove", "v")
	s.Add(1)
	obs.RemoveSeries("test.remove")
	if len(obs.AllSeries()) != 0 {
		t.Fatal("RemoveSeries left the series exported")
	}
	s.Add(2)
	if s.Len() != 2 {
		t.Error("series handle unusable after RemoveSeries")
	}
	if fresh := obs.NewSeries("test.remove", "v"); fresh.Name() != "test.remove" {
		t.Errorf("name not freed: re-registered as %q", fresh.Name())
	}
}

// Non-finite samples must not abort the JSON export: NaN and ±Inf
// encode as null (encoding/json rejects them outright, which used to
// truncate /series responses and fail series_*.json artifact writes).
func TestSeriesJSONNonFinite(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.nan", "a", "b", "c")
	s.Add(1, math.NaN(), math.Inf(1))
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal with NaN sample: %v", err)
	}
	var back struct {
		Samples [][]*float64 `json:"samples"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	row := back.Samples[0]
	if *row[0] != 1 || row[1] != nil || row[2] != nil {
		t.Errorf("non-finite encoding = %s", data)
	}
	var blob bytes.Buffer
	if err := obs.WriteSeriesJSON(&blob); err != nil {
		t.Errorf("WriteSeriesJSON with NaN sample: %v", err)
	}
}
