package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pimendure/internal/obs"
)

// Series record independently of the enabled flag, export as CSV and
// JSON, and register for process-wide discovery.
func TestSeriesRecordAndExport(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.series.b", "x", "y")
	obs.NewSeries("test.series.a", "v")
	s.Add(1, 2)
	s.Add(3, 4.5)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if last := s.Last(); last[0] != 3 || last[1] != 4.5 {
		t.Errorf("last = %v", last)
	}
	if col := s.Column("y"); len(col) != 2 || col[1] != 4.5 {
		t.Errorf("column y = %v", col)
	}
	if s.Column("nope") != nil {
		t.Error("unknown column should be nil")
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4.5\n"
	if csv.String() != want {
		t.Errorf("CSV = %q, want %q", csv.String(), want)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Name    string      `json:"name"`
		Columns []string    `json:"columns"`
		Samples [][]float64 `json:"samples"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "test.series.b" || len(back.Columns) != 2 || len(back.Samples) != 2 {
		t.Errorf("JSON roundtrip = %+v", back)
	}

	all := obs.AllSeries()
	if len(all) != 2 || all[0].Name() != "test.series.a" || all[1].Name() != "test.series.b" {
		t.Errorf("AllSeries not sorted complete: %v", all)
	}

	var blob bytes.Buffer
	if err := obs.WriteSeriesJSON(&blob); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blob.String(), "test.series.a") || !strings.Contains(blob.String(), "test.series.b") {
		t.Errorf("series JSON missing entries:\n%s", blob.String())
	}

	// Reset empties the registry; the handle survives.
	obs.Reset()
	if len(obs.AllSeries()) != 0 {
		t.Error("Reset did not clear the series registry")
	}
	s.Add(5, 6)
	if s.Len() != 3 {
		t.Error("series handle unusable after Reset")
	}
}

// Arity mismatches are programming errors and must fail loudly.
func TestSeriesArityPanics(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	s := obs.NewSeries("test.arity", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity did not panic")
		}
	}()
	s.Add(1)
}

// Re-registering a name starts a fresh trajectory (new-run semantics).
func TestSeriesReplaceOnReregister(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	old := obs.NewSeries("test.replace", "v")
	old.Add(1)
	fresh := obs.NewSeries("test.replace", "v")
	if fresh.Len() != 0 {
		t.Error("re-registered series inherited samples")
	}
	all := obs.AllSeries()
	if len(all) != 1 || all[0] != fresh {
		t.Error("registry did not replace the series")
	}
}
