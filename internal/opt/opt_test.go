package opt_test

import (
	"math/rand"
	"testing"

	"pimendure/internal/array"
	"pimendure/internal/gates"
	"pimendure/internal/opt"
	"pimendure/internal/program"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// execute runs a trace on an identity-mapped array and returns all read
// slot outputs.
func execute(t *testing.T, tr *program.Trace, rows int, data array.DataFunc) [][]bool {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	arr := array.New(array.Config{BitsPerLane: rows, Lanes: tr.Lanes})
	r, err := array.NewRunner(arr, tr, array.IdentityMapper(rows, tr.Lanes), data)
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	out := make([][]bool, tr.ReadSlots)
	for s := range out {
		out[s] = make([]bool, tr.Lanes)
		for l := 0; l < tr.Lanes; l++ {
			out[s][l] = r.Out(s, l)
		}
	}
	return out
}

// assertEquivalent optimizes tr and checks identical outputs on random
// data, returning the optimized trace and stats.
func assertEquivalent(t *testing.T, tr *program.Trace, rows int, o opt.Options, seed int64) (*program.Trace, opt.Stats) {
	t.Helper()
	data := func(slot, lane int) bool {
		z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(slot)*2654435761 + uint64(lane)*40503
		z ^= z >> 29
		return z&1 == 1
	}
	want := execute(t, tr, rows, data)
	opted, st := opt.Optimize(tr, o)
	got := execute(t, opted, rows, data)
	if len(got) != len(want) {
		t.Fatalf("read slots changed: %d vs %d", len(got), len(want))
	}
	for s := range want {
		for l := range want[s] {
			if got[s][l] != want[s][l] {
				t.Fatalf("output d%d lane %d changed after optimization", s, l)
			}
		}
	}
	return opted, st
}

func gateCount(tr *program.Trace) int {
	n := 0
	for _, op := range tr.Ops {
		if op.Kind == program.OpGate {
			n++
		}
	}
	return n
}

// The shuffled multiply (Fig. 10) carries 4b COPY gates; copy propagation
// plus dead elimination must strip the 2b input COPYs while preserving the
// exact product (the 2b output COPYs are the interface and must stay).
func TestOptimizeShuffledMult(t *testing.T) {
	const b = 8
	bld := program.NewBuilder(4, 2048)
	x, _ := bld.WriteVector(b)
	y, _ := bld.WriteVector(b)
	out := bld.AllocN(2 * b)
	synth.ShuffledMult(bld, synth.NAND, x, y, out)
	bld.ReadVector(out)
	tr := bld.Trace()

	opted, st := assertEquivalent(t, tr, 2048, opt.All(), 3)
	saved := gateCount(tr) - gateCount(opted)
	if saved < 2*b {
		t.Errorf("expected ≥%d gates removed (input copies), got %d", 2*b, saved)
	}
	if st.RemovedGates != saved {
		t.Errorf("stats removed %d, trace lost %d", st.RemovedGates, saved)
	}
	if st.RewrittenInputs == 0 {
		t.Error("no inputs rewritten")
	}
}

// Benchmarks compiled by the workload compiler are already copy-free and
// fully live: the optimizer must be an exact identity on them.
func TestOptimizerIdentityOnBenchmarks(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 256, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := workloads.DotProduct(cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []*workloads.Benchmark{mult, dot} {
		opted, st := assertEquivalent(t, bench.Trace, 256, opt.All(), 5)
		if len(opted.Ops) != len(bench.Trace.Ops) {
			t.Errorf("%s: op count changed %d -> %d (removed %d)",
				bench.Name, len(bench.Trace.Ops), len(opted.Ops), st.RemovedGates)
		}
	}
}

// A hand-built dead chain: gates feeding nothing must vanish, including
// transitively.
func TestDeadChainElimination(t *testing.T) {
	bld := program.NewBuilder(2, 64)
	in, _ := bld.WriteVector(2)
	live := bld.Gate(gates.AND, in[0], in[1])
	bld.Read(live)
	d1 := bld.Gate(gates.NAND, in[0], in[1]) // dead
	d2 := bld.Gate(gates.NOT, d1, program.NoBit)
	_ = bld.Gate(gates.XOR, d2, d1) // dead chain head
	tr := bld.Trace()

	opted, st := assertEquivalent(t, tr, 64, opt.Options{EliminateDead: true}, 7)
	if gateCount(opted) != 1 {
		t.Errorf("gates left = %d, want 1 (only the read AND)", gateCount(opted))
	}
	if st.RemovedGates != 3 {
		t.Errorf("removed = %d, want 3", st.RemovedGates)
	}
	if st.Passes < 2 {
		t.Errorf("chain removal needs ≥2 passes, got %d", st.Passes)
	}
}

// Copy propagation must respect masks: a COPY executed in half the lanes
// cannot serve a full-lane reader.
func TestCopyPropagationMaskSafety(t *testing.T) {
	bld := program.NewBuilder(4, 64)
	src, _ := bld.WriteVector(1)
	dst := bld.AllocN(1)
	bld.Write(dst[0]) // give dst defined values in all lanes
	bld.SetMask(program.RangeMask(4, 0, 2))
	bld.GateInto(gates.COPY, src[0], program.NoBit, dst[0])
	bld.SetFullMask()
	res := bld.Gate(gates.COPY, dst[0], program.NoBit)
	bld.Read(res)
	tr := bld.Trace()

	opted, _ := assertEquivalent(t, tr, 64, opt.All(), 9)
	// No full-lane reader may have been redirected to src: the copy only
	// executed in lanes 0–1, so src is wrong for lanes 2–3. (Redirecting
	// the reader from the intermediate full-lane COPY to dst is legal and
	// expected.)
	for _, op := range opted.Ops {
		reads := op.Kind == program.OpRead || op.Kind == program.OpGate
		if reads && opted.Masks[op.Mask].Full() && op.In0 == src[0] {
			t.Errorf("full-lane reader redirected to partial-mask copy source: %v", op)
		}
	}
	// The partial-mask COPY itself must survive: its effect is observed.
	kept := false
	for _, op := range opted.Ops {
		if op.Kind == program.OpGate && op.Out == dst[0] {
			kept = true
		}
	}
	if !kept {
		t.Error("partial-mask copy eliminated despite being observed")
	}
}

// Copy propagation must invalidate aliases when the source is overwritten.
func TestCopyPropagationVersioning(t *testing.T) {
	bld := program.NewBuilder(1, 64)
	a, _ := bld.WriteVector(1)
	c := bld.Copy(a[0])
	// Overwrite the source, then read the copy: must NOT see the new a.
	bld.Write(a[0])
	bld.Read(c)
	tr := bld.Trace()
	opted, _ := assertEquivalent(t, tr, 64, opt.All(), 11)
	// The read must still target c (the copy is live and kept).
	last := opted.Ops[len(opted.Ops)-1]
	if last.Kind != program.OpRead || last.In0 != c {
		t.Errorf("read rewritten unsafely: %v", last)
	}
}

// Partial-mask writes must not kill liveness of earlier full values.
func TestPartialWriteKeepsOldValueLive(t *testing.T) {
	bld := program.NewBuilder(4, 64)
	v, _ := bld.WriteVector(1)
	full := bld.Gate(gates.COPY, v[0], program.NoBit) // full-lane producer
	bld.SetMask(program.RangeMask(4, 0, 1))
	bld.GateInto(gates.NOT, v[0], program.NoBit, full) // partial overwrite
	bld.SetFullMask()
	bld.Read(full) // lanes 1..3 still need the original COPY
	tr := bld.Trace()
	opted, st := assertEquivalent(t, tr, 64, opt.Options{EliminateDead: true}, 13)
	if st.RemovedGates != 0 {
		t.Errorf("removed %d gates; the full-lane producer is still live in unmasked lanes", st.RemovedGates)
	}
	if gateCount(opted) != 2 {
		t.Errorf("gates = %d, want 2", gateCount(opted))
	}
}

// Random trace fuzz: build random (valid) gate soups, optimize, compare.
func TestOptimizerRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		bld := program.NewBuilder(4, 256)
		pool, _ := bld.WriteVector(4)
		for i := 0; i < 40; i++ {
			switch rng.Intn(5) {
			case 0:
				pool = append(pool, bld.Copy(pool[rng.Intn(len(pool))]))
			case 1:
				pool = append(pool, bld.Not(pool[rng.Intn(len(pool))]))
			case 2, 3:
				k := []gates.Kind{gates.AND, gates.NAND, gates.OR, gates.XOR}[rng.Intn(4)]
				pool = append(pool, bld.Gate(k, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
			case 4:
				if rng.Intn(2) == 0 {
					bld.SetMask(program.RangeMask(4, 0, 1+rng.Intn(4)))
				} else {
					bld.SetFullMask()
				}
			}
		}
		bld.SetFullMask()
		for i := 0; i < 4; i++ {
			bld.Read(pool[rng.Intn(len(pool))])
		}
		assertEquivalent(t, bld.Trace(), 256, opt.All(), int64(trial))
	}
}
