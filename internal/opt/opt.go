// Package opt optimizes compiled PIM traces. The paper observes that
// within a lane all gates are sequential, so "optimizing both the latency
// and energy of a PIM computation … is simply finding the decomposition
// which requires the fewest logic gates" (§2.2) — every removed gate is
// one time step, one output-cell write (two with presets) and its input
// reads saved, which also directly extends endurance.
//
// Two classical passes are provided, both proven functionality-preserving
// by the test suite (identical read-slot outputs on the bit-accurate
// simulator):
//
//   - copy propagation: reads of a COPY gate's destination are redirected
//     to its source while the source is unchanged and the reader's lane
//     mask is covered;
//   - dead-write elimination: gates whose output is never observed — read
//     by a later gate, readout or move before being fully overwritten —
//     are removed, iterating until a fixed point so whole dead chains
//     (such as COPYs orphaned by propagation) disappear.
package opt

import (
	"pimendure/internal/gates"
	"pimendure/internal/program"
)

// Options selects the passes to run.
type Options struct {
	// PropagateCopies rewrites readers of COPY outputs to read the
	// source directly. Only valid for architectures whose COPY is a
	// pure data movement (all modelled ones).
	PropagateCopies bool
	// EliminateDead removes gates whose outputs are never observed.
	EliminateDead bool
}

// All enables every pass.
func All() Options { return Options{PropagateCopies: true, EliminateDead: true} }

// Stats reports what the optimizer did.
type Stats struct {
	// RewrittenInputs counts gate/read inputs redirected by copy
	// propagation.
	RewrittenInputs int
	// RemovedGates counts gate ops eliminated.
	RemovedGates int
	// Passes is the number of dead-elimination sweeps until fixpoint.
	Passes int
}

// Optimize returns an optimized copy of the trace (the input is not
// modified) together with statistics. Write and read ops — the external
// interface — and moves are always preserved.
func Optimize(tr *program.Trace, o Options) (*program.Trace, Stats) {
	var st Stats
	ops := make([]program.Op, len(tr.Ops))
	copy(ops, tr.Ops)

	if o.PropagateCopies {
		st.RewrittenInputs = propagateCopies(tr, ops)
	}
	removed := make([]bool, len(ops))
	if o.EliminateDead {
		for {
			st.Passes++
			n := eliminateDead(tr, ops, removed)
			st.RemovedGates += n
			if n == 0 {
				break
			}
		}
	}

	// Rebuild a fresh trace, re-interning masks.
	out := program.NewTrace(tr.Lanes)
	out.WriteSlots = tr.WriteSlots
	out.ReadSlots = tr.ReadSlots
	maskMap := make([]program.MaskID, len(tr.Masks))
	for i, m := range tr.Masks {
		maskMap[i] = out.AddMask(m)
	}
	for i, op := range ops {
		if removed[i] {
			continue
		}
		op.Mask = maskMap[op.Mask]
		out.Append(op)
	}
	if out.LaneBits < tr.LaneBits {
		out.LaneBits = tr.LaneBits
	}
	return out, st
}

// aliasEntry records that reads of dst may be served by src while src's
// version is unchanged, for readers whose mask is a subset of mask.
type aliasEntry struct {
	src        program.Bit
	srcVersion int32
	mask       program.MaskID
}

// propagateCopies rewrites reader inputs in place and returns the count.
func propagateCopies(tr *program.Trace, ops []program.Op) int {
	version := make([]int32, tr.LaneBits)
	alias := make(map[program.Bit]aliasEntry)
	rewritten := 0

	// resolve follows at most one alias hop (entries always point at the
	// copy's original source because new aliases resolve at record time).
	resolve := func(b program.Bit, readerMask program.MaskID) program.Bit {
		e, ok := alias[b]
		if !ok {
			return b
		}
		if version[e.src] != e.srcVersion {
			return b
		}
		if readerMask != e.mask && !tr.Masks[readerMask].Subset(tr.Masks[e.mask]) {
			return b
		}
		rewritten++
		return e.src
	}

	for i := range ops {
		op := &ops[i]
		// Rewrite reads first.
		switch op.Kind {
		case program.OpGate:
			op.In0 = resolve(op.In0, op.Mask)
			if op.Gate.Arity() == 2 {
				op.In1 = resolve(op.In1, op.Mask)
			}
		case program.OpRead:
			op.In0 = resolve(op.In0, op.Mask)
			// Moves read in shifted lanes; stay conservative there.
		}
		// Then account the write.
		if op.WritesPerLane(false) == 0 {
			continue
		}
		out := op.Out
		version[out]++
		delete(alias, out)
		if op.Kind == program.OpGate && op.Gate == gates.COPY {
			src := op.In0 // already resolved above
			if src != out {
				alias[out] = aliasEntry{src: src, srcVersion: version[src], mask: op.Mask}
			}
		}
	}
	return rewritten
}

// eliminateDead marks gates whose output is never observed. One backward
// sweep; callers iterate to fixpoint. Mask-partial writes never terminate
// liveness (lanes outside the writer's mask still hold the old value).
func eliminateDead(tr *program.Trace, ops []program.Op, removed []bool) int {
	needed := make([]bool, tr.LaneBits)
	count := 0
	for i := len(ops) - 1; i >= 0; i-- {
		if removed[i] {
			continue
		}
		op := ops[i]
		switch op.Kind {
		case program.OpGate:
			if !needed[op.Out] {
				removed[i] = true
				count++
				continue
			}
			if tr.Masks[op.Mask].Full() {
				needed[op.Out] = false
			}
			needed[op.In0] = true
			if op.Gate.Arity() == 2 {
				needed[op.In1] = true
			}
		case program.OpWrite:
			// External interface: always kept. A full-lane write
			// overwrites the bit entirely.
			if tr.Masks[op.Mask].Full() {
				needed[op.Out] = false
			}
		case program.OpRead:
			needed[op.In0] = true
		case program.OpMove:
			// Kept: inter-lane data movement; conservatively treat
			// the destination as still live below (partial masks).
			needed[op.In0] = true
		}
	}
	return count
}
