// The per-plan buffer arena: reusable engine scratch pooled on the
// WearPlan so steady-state traffic against a cached plan is
// near-allocation-free.
//
// Every simulation against a plan needs the same working set — a
// rows×lanes accumulation buffer per worker, per-row weight and
// per-(mask, row) histogram scratch, renamer/cycle replay state, and a
// permutation-generation kit (two scratch permutation pairs plus a
// reusable rng) — and all of it is sized by plan constants alone
// (rows, lanes, mask count, op count). The arena keeps free lists of
// exactly those shapes, guarded by one mutex: a Simulate/Sweep/serve
// call on a warm plan pops buffers instead of allocating them, and
// pushes them back when it returns. WriteDist results participate too:
// a distribution built by WearPlan.Simulate carries a release hook, so
// callers that are done with the counts (benchmark loops, the serving
// layer after summarizing a job) can hand the 8 MB buffer back with
// WriteDist.Release instead of leaving it to the garbage collector.
//
// Ownership discipline (see ARCHITECTURE.md "Memory discipline"):
// buffers are owned exclusively between get and put; the arena never
// hands the same buffer to two holders. Counts buffers are returned
// zeroed from the arena; histogram and permutation scratch is returned
// dirty and re-initialized by its consumer (replayJobHist zeroes the
// histogram, the permutation fillers overwrite every slot). The
// core.arena_hits / core.arena_misses counters record how often an
// acquisition was served from a free list versus a fresh allocation.
package core

import (
	"math/rand"
	"sync"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
)

// Arena accounting (no-ops until obs.Enable): how many scratch/buffer
// acquisitions were served from a plan's free lists versus freshly
// allocated. On a warm plan hits dominate and misses stay at the
// high-water concurrency mark.
var (
	// obsArenaHits counts arena acquisitions served from a free list.
	obsArenaHits = obs.GetCounter("core.arena_hits")
	// obsArenaMisses counts arena acquisitions that had to allocate.
	obsArenaMisses = obs.GetCounter("core.arena_misses")
)

// arena is the per-WearPlan pool of engine scratch. The zero value is
// ready to use; all methods are safe for concurrent use.
type arena struct {
	mu      sync.Mutex
	scratch []*engineScratch
	counts  [][]uint64 // rows*lanes accumulation buffers, stored zeroed
	hists   [][]uint64 // nMasks*rows histogram buffers, stored dirty
}

// permGen regenerates a schedule's epoch permutations into reusable
// scratch: a primary (within, between) pair for the permutations a
// caller is actively using, a secondary pair for equality checks against
// other epochs (memo-collision resolution), and one re-seedable rng.
// A permGen is single-goroutine state; each worker owns its own.
type permGen struct {
	sched            mapping.Schedule
	rng              *rand.Rand
	within, between  *mapping.Perm
	within2          *mapping.Perm
	between2         *mapping.Perm
}

// reset binds the generator to a schedule. Scratch carries over; only
// the permutation definitions change.
func (g *permGen) reset(sched mapping.Schedule) {
	g.sched = sched
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(1))
	}
}

// withinAt fills the primary within-lane scratch with epoch's
// permutation and returns it. The result is invalidated by the next
// withinAt call.
func (g *permGen) withinAt(epoch int) *mapping.Perm {
	g.within = g.sched.EpochWithinInto(epoch, g.within, g.rng)
	return g.within
}

// betweenAt is withinAt for the between-lane permutation.
func (g *permGen) betweenAt(epoch int) *mapping.Perm {
	g.between = g.sched.EpochBetweenInto(epoch, g.between, g.rng)
	return g.between
}

// within2At fills the secondary within-lane scratch — safe to compare
// against a live withinAt result.
func (g *permGen) within2At(epoch int) *mapping.Perm {
	g.within2 = g.sched.EpochWithinInto(epoch, g.within2, g.rng)
	return g.within2
}

// between2At is within2At for the between-lane permutation.
func (g *permGen) between2At(epoch int) *mapping.Perm {
	g.between2 = g.sched.EpochBetweenInto(epoch, g.between2, g.rng)
	return g.between2
}

// engineScratch bundles one worker's reusable simulation state. Fields
// are created lazily by the ensure* helpers, sized by plan constants, so
// a software-only workload never pays for replay scratch and vice versa.
type engineScratch struct {
	gen     permGen
	rowW    []uint64 // per-physical-row weights (software rank-1 part)
	rowMax  []uint64 // per-physical-row maxima (stepper live tracking)
	touched []int32  // rows whose rowW became nonzero (sampled sw engine)
	hist    []uint64 // [mask*rows+physRow] replay histogram
	arch    []int32  // per-op within-mapped row
	hw      *mapping.HwRenamer
	cyc     *cycleScratch
	bg      betweenScratch
}

// getScratch pops (or allocates) a worker scratch bundle.
func (p *WearPlan) getScratch() *engineScratch {
	p.arena.mu.Lock()
	if n := len(p.arena.scratch); n > 0 {
		s := p.arena.scratch[n-1]
		p.arena.scratch = p.arena.scratch[:n-1]
		p.arena.mu.Unlock()
		obsArenaHits.Add(1)
		return s
	}
	p.arena.mu.Unlock()
	obsArenaMisses.Add(1)
	return &engineScratch{}
}

// putScratch returns a worker scratch bundle to the plan's free list.
// The bundle's buffers may be dirty; acquirers re-initialize what they
// use (ensureRowW zeroes, replayJobHist zeroes the histogram, the
// permutation fillers overwrite every slot).
func (p *WearPlan) putScratch(s *engineScratch) {
	p.arena.mu.Lock()
	p.arena.scratch = append(p.arena.scratch, s)
	p.arena.mu.Unlock()
}

// ensureRowW sizes and zeroes the scratch's per-row weight buffer.
func (p *WearPlan) ensureRowW(s *engineScratch) {
	if len(s.rowW) != p.rows {
		s.rowW = make([]uint64, p.rows)
		return
	}
	for i := range s.rowW {
		s.rowW[i] = 0
	}
}

// ensureRowMax sizes and zeroes the scratch's per-row maximum buffer.
func (p *WearPlan) ensureRowMax(s *engineScratch) {
	if len(s.rowMax) != p.rows {
		s.rowMax = make([]uint64, p.rows)
		return
	}
	for i := range s.rowMax {
		s.rowMax[i] = 0
	}
}

// ensureHw sizes the scratch's +Hw replay state (histogram, per-op rows,
// renamer, cycle decomposition). The histogram is left dirty —
// replayJobHist zeroes it at the start of every job.
func (p *WearPlan) ensureHw(s *engineScratch) {
	if len(s.hist) != len(p.maskLanes)*p.rows {
		s.hist = make([]uint64, len(p.maskLanes)*p.rows)
	}
	if len(s.arch) != len(p.ops) {
		s.arch = make([]int32, len(p.ops))
	}
	if s.hw == nil || s.hw.ArchRows() != p.rows-1 {
		s.hw = mapping.NewHwRenamer(p.rows)
	}
	if s.cyc == nil || len(s.cyc.orbit) != p.rows || len(s.cyc.starts) != len(p.ops) {
		s.cyc = newCycleScratch(p.rows, len(p.ops))
	}
}

// getCounts pops (or allocates) a zeroed rows×lanes accumulation buffer.
func (p *WearPlan) getCounts() []uint64 {
	n := p.rows * p.trace.Lanes
	p.arena.mu.Lock()
	if k := len(p.arena.counts); k > 0 {
		buf := p.arena.counts[k-1]
		p.arena.counts = p.arena.counts[:k-1]
		p.arena.mu.Unlock()
		obsArenaHits.Add(1)
		return buf
	}
	p.arena.mu.Unlock()
	obsArenaMisses.Add(1)
	return make([]uint64, n)
}

// putCounts zeroes a counts buffer and returns it to the free list.
// Buffers of the wrong length (never handed out by this plan) are
// dropped rather than poisoning the pool.
func (p *WearPlan) putCounts(buf []uint64) {
	if len(buf) != p.rows*p.trace.Lanes {
		return
	}
	for i := range buf {
		buf[i] = 0
	}
	p.arena.mu.Lock()
	p.arena.counts = append(p.arena.counts, buf)
	p.arena.mu.Unlock()
}

// getHist pops (or allocates) a nMasks×rows histogram buffer. Contents
// are unspecified; every consumer zeroes or overwrites before reading.
func (p *WearPlan) getHist() []uint64 {
	p.arena.mu.Lock()
	if k := len(p.arena.hists); k > 0 {
		buf := p.arena.hists[k-1]
		p.arena.hists = p.arena.hists[:k-1]
		p.arena.mu.Unlock()
		obsArenaHits.Add(1)
		return buf
	}
	p.arena.mu.Unlock()
	obsArenaMisses.Add(1)
	return make([]uint64, len(p.maskLanes)*p.rows)
}

// putHist returns a histogram buffer (dirty) to the free list.
func (p *WearPlan) putHist(buf []uint64) {
	if len(buf) != len(p.maskLanes)*p.rows {
		return
	}
	p.arena.mu.Lock()
	p.arena.hists = append(p.arena.hists, buf)
	p.arena.mu.Unlock()
}

// newDist builds a WriteDist whose counts buffer is drawn from the
// plan's arena and whose Release hook returns it there.
func (p *WearPlan) newDist() *WriteDist {
	d := &WriteDist{Rows: p.rows, Lanes: p.trace.Lanes, Counts: p.getCounts()}
	d.release = p.putCounts
	return d
}
