// The sampled +Hw wear engine: bit-identical to simulateHw, but
// accumulation proceeds in epoch order so a WearSampler can observe the
// true prefix distribution after every recompile epoch.
//
// The parallel engine (hw_engine.go) drains unique replay jobs in
// arbitrary worker order, so the distribution never passes through
// per-epoch prefix states. This variant splits the two concerns: job
// histograms are still replayed in parallel — in batches, prefetched
// just ahead of the serial epoch walk — while the walk itself
// accumulates through the between-lane permutations one inter-sample
// segment at a time, collapsing each job's segment epochs by
// permutation equality exactly as simulateHw does across whole jobs.
// Memoization, closed-cycle replay and bounded parallelism are all
// preserved; because job histograms land via commutative uint64
// addition, the final distribution is bit-identical to simulateHw (and
// SimulateReference) for every worker count and sampling cadence.
//
// Memory stays bounded: at most one prefetch batch of histograms is live
// beyond those still awaiting later member epochs, and a job's histogram
// is recycled — through a segment-local free list backed by the plan's
// arena — as soon as its last member epoch has been accumulated, so the
// walk reuses a small ring of buffers instead of allocating one per job.
package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
)

// hwPrefetchBatches sizes the job prefetch window in units of the worker
// count: enough look-ahead to keep the pool busy while the epoch walk
// drains, small enough to bound live histogram memory.
const hwPrefetchBatches = 4

// simulateHwSampled is simulateHw with epoch-ordered accumulation,
// feeding cfg.Sampler the prefix distribution after each sampled epoch.
// Only Simulate calls it, and only when a sampler is attached.
func simulateHwSampled(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/hw-replay")
	defer sp.End()
	sampler := cfg.Sampler
	lanes := p.trace.Lanes
	rows := cfg.Rows
	ops, maskLanes := p.ops, p.maskLanes
	period := p.cycle.Period
	planScr := p.getScratch()
	planScr.gen.reset(sched)
	plan := sp.Child("plan")
	jobs := planHwEpochs(cfg, &planScr.gen)
	plan.End()

	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	// Per-epoch job index, and per-job use count so histograms are freed
	// once their last member epoch is accumulated.
	jobOf := make([]int, totalEpochs)
	remaining := make([]int, len(jobs))
	for j, job := range jobs {
		remaining[j] = len(job.epochs)
		for _, e := range job.epochs {
			jobOf[e] = j
		}
	}
	obsEpochs.Add(int64(totalEpochs))
	obsHwReplays.Add(int64(len(jobs)))
	obsHwMemoHits.Add(int64(totalEpochs - len(jobs)))
	obsHwCycleLen.Add(int64(period))

	workers := pool.Size(cfg.workers(), len(jobs))
	// Worker replay scratch comes from the plan's arena. The serial epoch
	// walk shares slot 0's bundle (planScr): prefetch runs synchronously —
	// the walk is paused while the pool drains a batch — so the two uses
	// never overlap.
	scratches := make([]*engineScratch, workers)
	scratches[0] = planScr
	for w := 1; w < workers; w++ {
		scratches[w] = p.getScratch()
		scratches[w].gen.reset(sched)
	}
	for _, s := range scratches {
		p.ensureHw(s)
	}

	// Job histograms live across segments (until the job's last member
	// epoch lands), so they cannot share the per-worker scratch. They are
	// recycled through a local free list backed by the plan's arena:
	// a histogram freed by one job is reused — dirty; replayJobHist zeroes
	// it — by a later prefetch instead of being reallocated.
	var freeHists [][]uint64
	getJobHist := func() []uint64 {
		if n := len(freeHists); n > 0 {
			h := freeHists[n-1]
			freeHists = freeHists[:n-1]
			return h
		}
		return p.getHist()
	}

	// Jobs are indexed in first-seen epoch order, so prefetching a
	// contiguous prefix is exactly the look-ahead the epoch walk needs:
	// when epoch e first references job j, every job first seen earlier
	// has a smaller index and is already replayed.
	hists := make([][]uint64, len(jobs))
	nextJob := 0
	prefetch := func(upTo int) {
		if upTo > len(jobs) {
			upTo = len(jobs)
		}
		if upTo <= nextJob {
			return
		}
		lo := nextJob
		for j := lo; j < upTo; j++ {
			hists[j] = getJobHist()
		}
		pool.ForEachWorker(workers, upTo-lo, func(slot, i int) {
			j := lo + i
			s := scratches[slot]
			replayJobHist(ops, &s.gen, jobs[j], period, rows, s.arch, s.hw, s.cyc, hists[j])
		})
		nextJob = upTo
	}

	// The walk advances one inter-sample segment at a time: the sampler
	// only observes the distribution at segment boundaries, so epochs
	// inside a segment may accumulate in any order (uint64 adds commute).
	// That freedom restores simulateHw's grouping — each job's segment
	// epochs collapse by between-lane permutation into one multiplied
	// addHist — so the serial accumulation cost scales with the sampling
	// cadence, not the epoch count. At Every ≤ 1 every segment is a
	// single epoch and the walk degenerates to per-epoch accumulation.
	segEpochs := make([][]int, len(jobs))
	var segJobs []int
	for start := 0; start < totalEpochs; {
		end := start
		for sampler != nil && !sampler.due(end, totalEpochs-1) {
			end++
		}
		segJobs = segJobs[:0]
		for e := start; e <= end; e++ {
			j := jobOf[e]
			if len(segEpochs[j]) == 0 {
				segJobs = append(segJobs, j)
			}
			segEpochs[j] = append(segEpochs[j], e)
		}
		// segJobs is in first-touch order, which restricted to not-yet-
		// replayed jobs is job-index order — the prefetch invariant above.
		for _, j := range segJobs {
			if hists[j] == nil {
				prefetch(nextJob + workers*hwPrefetchBatches)
			}
			for _, g := range groupByBetween(&planScr.gen, segEpochs[j], &planScr.bg) {
				addHist(hists[j], maskLanes, rows, lanes, planScr.gen.betweenAt(g.epoch0), uint64(g.count), dist.Counts)
			}
			remaining[j] -= len(segEpochs[j])
			if remaining[j] == 0 {
				freeHists = append(freeHists, hists[j])
				hists[j] = nil
			}
			segEpochs[j] = segEpochs[j][:0]
		}
		itersSoFar := (end + 1) * every
		if itersSoFar > cfg.Iterations {
			itersSoFar = cfg.Iterations
		}
		if sampler != nil {
			sampler.Sample(end, itersSoFar, dist)
		}
		start = end + 1
	}
	for _, h := range freeHists {
		p.putHist(h)
	}
	for _, h := range hists {
		if h != nil {
			p.putHist(h)
		}
	}
	for _, s := range scratches {
		p.putScratch(s)
	}
}
