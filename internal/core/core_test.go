package core_test

import (
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/mapping"
	"pimendure/internal/program"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

func TestStrategyConfigNames(t *testing.T) {
	if core.Static.Name() != "StxSt" {
		t.Errorf("static name = %q", core.Static.Name())
	}
	c := core.StrategyConfig{Within: mapping.Random, Between: mapping.ByteShift, Hw: true}
	if c.Name() != "RaxBs+Hw" {
		t.Errorf("name = %q, want RaxBs+Hw", c.Name())
	}
}

func TestAllConfigsEnumeration(t *testing.T) {
	all := core.AllConfigs()
	if len(all) != 18 {
		t.Fatalf("len = %d, want 18", len(all))
	}
	seen := map[string]bool{}
	hwCount := 0
	for _, c := range all {
		if seen[c.Name()] {
			t.Errorf("duplicate config %s", c.Name())
		}
		seen[c.Name()] = true
		if c.Hw {
			hwCount++
		}
	}
	if hwCount != 9 {
		t.Errorf("hw configs = %d, want 9", hwCount)
	}
	if sw := core.SoftwareConfigs(); len(sw) != 9 {
		t.Errorf("software configs = %d, want 9", len(sw))
	}
	if all[0] != core.Static {
		t.Errorf("first config should be StxSt, got %s", all[0].Name())
	}
}

func TestWriteDistBasics(t *testing.T) {
	d := core.NewWriteDist(4, 3)
	d.Counts[1*3+2] = 7
	d.Counts[0] = 3
	d.Iterations = 2
	if d.At(1, 2) != 7 {
		t.Error("At wrong")
	}
	if d.Max() != 7 || d.Total() != 10 {
		t.Errorf("max %d total %d", d.Max(), d.Total())
	}
	if d.MaxPerIteration() != 3.5 {
		t.Errorf("max/iter = %v", d.MaxPerIteration())
	}
	o := core.NewWriteDist(4, 3)
	if d.Equal(o) {
		t.Error("distinct dists reported equal")
	}
	o.Counts[5] = 7
	o.Counts[0] = 3
	if !d.Equal(o) {
		t.Error("equal dists reported unequal")
	}
	if d.Equal(core.NewWriteDist(3, 4)) {
		t.Error("different shapes reported equal")
	}
}

func smallBenches(t *testing.T) map[string]*program.Trace {
	t.Helper()
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	out := map[string]*program.Trace{}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	out["mult"] = mult.Trace
	dot, err := workloads.DotProduct(cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["dot"] = dot.Trace
	conv, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 4, MultsPerLane: 2, Bits: 3})
	if err != nil {
		t.Fatal(err)
	}
	out["conv"] = conv.Trace
	return out
}

// The load-bearing test of the whole reproduction: the factorized fast
// engine must agree cell for cell with brute-force functional execution,
// for every benchmark shape and all 18 strategy configurations, with and
// without output presetting.
func TestSimulateMatchesBruteForce(t *testing.T) {
	benches := smallBenches(t)
	for name, tr := range benches {
		for _, preset := range []bool{false, true} {
			cfg := core.SimConfig{
				Rows:           96,
				PresetOutputs:  preset,
				Iterations:     23,
				RecompileEvery: 7, // deliberately not dividing 23
				Seed:           42,
			}
			for _, strat := range core.AllConfigs() {
				fast, err := core.Simulate(tr, cfg, strat)
				if err != nil {
					t.Fatalf("%s %s: %v", name, strat.Name(), err)
				}
				slow, _, err := core.BruteForce(tr, cfg, strat, nil)
				if err != nil {
					t.Fatalf("%s %s: %v", name, strat.Name(), err)
				}
				if !fast.Equal(slow) {
					t.Errorf("%s %s preset=%v: engines disagree (fast max %d total %d, brute max %d total %d)",
						name, strat.Name(), preset, fast.Max(), fast.Total(), slow.Max(), slow.Total())
				}
			}
		}
	}
}

// Total writes are conserved: every configuration distributes exactly
// Iterations × CellWrites writes, whatever the permutations do.
func TestTotalWritesInvariant(t *testing.T) {
	tr := smallBenches(t)["dot"]
	cfg := core.SimConfig{Rows: 96, Iterations: 50, RecompileEvery: 10, Seed: 3}
	want := uint64(tr.CellWrites(false)) * 50
	for _, strat := range core.AllConfigs() {
		d, err := core.Simulate(tr, cfg, strat)
		if err != nil {
			t.Fatal(err)
		}
		if d.Total() != want {
			t.Errorf("%s: total = %d, want %d", strat.Name(), d.Total(), want)
		}
	}
}

// Balancing strategies must not increase the hottest cell's count, and
// random shuffling must strictly reduce it for the workspace-imbalanced
// multiply (compiled with the adversarial allocator so the static layout
// is strongly concentrated).
func TestBalancingReducesMax(t *testing.T) {
	wcfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND, Alloc: program.LowestFirst}
	mult, err := workloads.ParallelMult(wcfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	cfg := core.SimConfig{Rows: 96, Iterations: 200, RecompileEvery: 10, Seed: 5}
	static, err := core.Simulate(tr, cfg, core.Static)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := core.Simulate(tr, cfg, core.StrategyConfig{Within: mapping.Random, Between: mapping.Static})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Max() >= static.Max() {
		t.Errorf("RaxSt max %d should beat StxSt max %d", ra.Max(), static.Max())
	}
	hw, err := core.Simulate(tr, cfg, core.StrategyConfig{Within: mapping.Random, Between: mapping.Static, Hw: true})
	if err != nil {
		t.Fatal(err)
	}
	if hw.Max() > ra.Max() {
		t.Errorf("adding Hw should not hurt: %d > %d", hw.Max(), ra.Max())
	}
}

// Between-lane balancing alone cannot help the all-lanes-equal multiply
// (§5: "St × Ra and St × Bs do not provide any benefit").
func TestBetweenLaneUselessForMult(t *testing.T) {
	tr := smallBenches(t)["mult"]
	cfg := core.SimConfig{Rows: 96, Iterations: 100, RecompileEvery: 10, Seed: 6}
	static, _ := core.Simulate(tr, cfg, core.Static)
	for _, between := range []mapping.Strategy{mapping.Random, mapping.ByteShift} {
		d, err := core.Simulate(tr, cfg, core.StrategyConfig{Within: mapping.Static, Between: between})
		if err != nil {
			t.Fatal(err)
		}
		if d.Max() != static.Max() {
			t.Errorf("Stx%v max = %d, want %d (no benefit possible)", between, d.Max(), static.Max())
		}
	}
}

// Workspace cells are written many more times than operand cells in
// producing a single result (Fig. 5's shape) — dramatically so under the
// adversarial lowest-first allocator.
func TestLaneProfileShape(t *testing.T) {
	cfg := workloads.Config{Lanes: 4, Rows: 96, Basis: synth.NAND, Alloc: program.LowestFirst}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	writes, reads := core.LaneProfile(tr, false, 0)
	if len(writes) != tr.LaneBits || len(reads) != tr.LaneBits {
		t.Fatal("profile length wrong")
	}
	// Operand bits (addresses 0..7 for 4-bit mult) are written exactly
	// once; workspace cells many more times.
	for b := 0; b < 8; b++ {
		if writes[b] <= 1 {
			continue
		}
		// operand rows may be reused as workspace after being freed —
		// but only after the product is read; for this trace operands
		// stay live to the end, so exactly 1 write.
		t.Errorf("operand bit %d written %d times, want 1", b, writes[b])
	}
	var maxW int64
	for _, w := range writes[8:] {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 3 {
		t.Errorf("workspace max writes = %d, expected heavy reuse", maxW)
	}
	// Total writes/reads must match the trace totals for one lane.
	var wSum, rSum int64
	for i := range writes {
		wSum += writes[i]
		rSum += reads[i]
	}
	if wSum*int64(tr.Lanes) != tr.CellWrites(false) {
		t.Errorf("profile writes %d×%d lanes != trace %d", wSum, tr.Lanes, tr.CellWrites(false))
	}
	if rSum*int64(tr.Lanes) != tr.CellReads() {
		t.Errorf("profile reads %d×%d lanes != trace %d", rSum, tr.Lanes, tr.CellReads())
	}
}

// LaneProfile must attribute move reads to source lanes: in the
// dot-product, the highest active lane is read by moves but never written
// by them.
func TestLaneProfileMoveAttribution(t *testing.T) {
	tr := smallBenches(t)["dot"]
	// Lane 7 is a source in the first reduction level (lanes 0..3
	// receive from 4..7) and never a destination.
	_, reads7 := core.LaneProfile(tr, false, 7)
	var total int64
	for _, r := range reads7 {
		total += r
	}
	if total == 0 {
		t.Error("source lane shows no reads")
	}
	w0, _ := core.LaneProfile(tr, false, 0)
	w7, _ := core.LaneProfile(tr, false, 7)
	var s0, s7 int64
	for i := range w0 {
		s0 += w0[i]
		s7 += w7[i]
	}
	if s0 <= s7 {
		t.Errorf("reduction lane 0 (%d writes) should out-write lane 7 (%d)", s0, s7)
	}
}

func TestSimConfigValidation(t *testing.T) {
	tr := smallBenches(t)["mult"]
	if _, err := core.Simulate(tr, core.SimConfig{Rows: 1, Iterations: 1}, core.Static); err == nil {
		t.Error("1-row config accepted")
	}
	if _, err := core.Simulate(tr, core.SimConfig{Rows: 96, Iterations: 0}, core.Static); err == nil {
		t.Error("0 iterations accepted")
	}
	// Trace exactly filling rows leaves no spare for Hw.
	tight := core.SimConfig{Rows: tr.LaneBits, Iterations: 1}
	if _, err := core.Simulate(tr, tight, core.StrategyConfig{Hw: true}); err == nil {
		t.Error("Hw with no spare row accepted")
	}
	if _, err := core.Simulate(tr, tight, core.Static); err != nil {
		t.Errorf("exact fit without Hw should work: %v", err)
	}
}

// RecompileEvery ≤ 0 means a single epoch: identical to recompiling every
// Iterations.
func TestNoRecompileEquivalence(t *testing.T) {
	tr := smallBenches(t)["conv"]
	a, err := core.Simulate(tr, core.SimConfig{Rows: 96, Iterations: 30, RecompileEvery: 0, Seed: 9},
		core.StrategyConfig{Within: mapping.Random, Between: mapping.Random})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Simulate(tr, core.SimConfig{Rows: 96, Iterations: 30, RecompileEvery: 30, Seed: 9},
		core.StrategyConfig{Within: mapping.Random, Between: mapping.Random})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("single-epoch runs disagree")
	}
}

// Functional correctness holds across the whole brute-force simulation:
// the benchmark check passes on the final iteration of every config.
func TestBruteForceFunctional(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	bench, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := func(slot, lane int) bool { return (slot+lane)%3 == 0 }
	sim := core.SimConfig{Rows: 96, Iterations: 15, RecompileEvery: 4, Seed: 11}
	for _, strat := range []core.StrategyConfig{
		core.Static,
		{Within: mapping.Random, Between: mapping.Random},
		{Within: mapping.ByteShift, Between: mapping.ByteShift, Hw: true},
	} {
		_, runner, err := core.BruteForce(bench.Trace, sim, strat, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := bench.Check(data, runner.Out); err != nil {
			t.Errorf("%s: %v", strat.Name(), err)
		}
	}
}
