// Wear telemetry sampling: the per-epoch hook that turns a wear
// simulation from an end-of-run aggregate into a trajectory. The paper's
// argument is exactly such a trajectory — per-cell writes accumulate
// epoch by epoch until the hottest cell crosses endurance (§5) — and the
// sampler records it live: distribution statistics per sample into an
// obs.Series, plus a downsampled heatmap snapshot for the -serve
// /wear.png endpoint.
package core

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"pimendure/internal/lifetime"
	"pimendure/internal/obs"
	"pimendure/internal/render"
	"pimendure/internal/stats"
)

// WearSeriesColumns are the columns every wear series records, in order:
// the epoch index, iterations completed, hottest/mean/p99 cell writes,
// the write-distribution coefficient of variation, the number of cells
// whose end-of-run projection crosses the endurance threshold, and the
// live Eq. 4 iterations-to-failure projection.
var WearSeriesColumns = []string{
	"epoch", "iterations", "max_writes", "mean_writes", "p99_writes",
	"cov", "projected_dead_cells", "projected_iters_to_failure",
}

// wearSnapshotDim caps the /wear.png snapshot resolution per axis.
const wearSnapshotDim = 128

// WearSampler observes a running simulation at recompile-epoch
// granularity. Attach one via SimConfig.Sampler; the engines call Sample
// after accumulating each due epoch, in epoch order, with the
// distribution as accumulated so far. A sampler must not be shared
// between concurrent simulations (each records one trajectory), but
// Sample itself is safe to call concurrently with the HTTP handlers
// reading the sampler.
type WearSampler struct {
	// Every is the sampling cadence in recompile epochs: epochs 0,
	// Every, 2·Every, … are sampled, plus always the final epoch (so the
	// last sample reproduces the finished distribution). Values ≤ 1
	// sample every epoch.
	Every int
	// Endurance is the cell endurance (writes to failure) behind the
	// projected_dead_cells and projected_iters_to_failure columns; 0
	// records NaN projections.
	Endurance float64

	series *obs.Series

	// Percentile state, reused across samples. Cell counts grow close to
	// linearly in iterations, so the previous sample's p99 scaled by the
	// iteration ratio predicts the next one well; Sample builds an exact
	// per-value histogram over a window around that prediction inside the
	// fused statistics pass, alongside a radix histogram that resolves a
	// window miss exactly (stats.PercentileFromHist) without a second
	// scan over the counts.
	// The engines call Sample serially, so no lock is needed; mu only
	// guards the handoff of the published grid and totalIts to concurrent
	// readers.
	work      []uint64
	prevP99   uint64
	prevMax   uint64
	prevIters int

	// snapWanted demand-paces the heatmap rebuild: WritePNG sets it, and
	// the next Sample refreshes the snapshot only if it is set (or no
	// snapshot exists yet). A run nobody is watching through /wear.png
	// pays for the statistics row but not for heatmap rebuilds.
	snapWanted atomic.Bool

	mu       sync.Mutex
	grid     *stats.Grid // latest normalized heatmap snapshot
	totalIts int         // the run's configured iteration count
}

// NewWearSampler creates a sampler recording into a fresh obs.Series of
// the given name (registered process-wide, so -serve's /series endpoint
// and Run.Finish's series_<name>.{csv,json} artifacts see it).
func NewWearSampler(name string, every int, endurance float64) *WearSampler {
	return &WearSampler{
		Every:     every,
		Endurance: endurance,
		series:    obs.NewSeries(name, WearSeriesColumns...),
	}
}

// Series returns the trajectory recorded so far.
func (s *WearSampler) Series() *obs.Series { return s.series }

// due reports whether the given epoch should be sampled; lastEpoch is
// the run's final epoch index, which is always sampled.
func (s *WearSampler) due(epoch, lastEpoch int) bool {
	if epoch == lastEpoch {
		return true
	}
	every := s.Every
	if every <= 1 {
		return true
	}
	return epoch%every == 0
}

// Sample records one trajectory point: epoch (0-based), the iterations
// accumulated so far, and the distribution as accumulated up to and
// including that epoch. The engines call it — in epoch order — so dist
// is a true prefix of the final distribution; the last sample's
// max_writes equals the finished WriteDist's Max.
func (s *WearSampler) Sample(epoch, iterations int, dist *WriteDist) {
	counts := dist.Counts
	n := len(counts)
	s.mu.Lock()
	total := s.totalIts
	s.mu.Unlock()
	countDead := s.Endurance > 0 && iterations > 0
	scale := 1.0
	if countDead && total > iterations {
		scale = float64(total) / float64(iterations)
	}
	// Sampling runs on the engine's epoch path, so max, mean, variance,
	// the dead-cell projection, the p99 window histogram AND the radix
	// fallback histogram are all fused into a single pass — a window miss
	// resolves the exact p99 from the already-built radix histogram
	// (stats.PercentileFromHist) instead of rescanning the counts.
	// Variance comes from E[x²]−µ², which can lose precision when σ ≪ µ —
	// fine for a live CoV readout; the end-of-run report uses
	// stats.Summarize's Welford form.
	const p99Window = 4096
	var pred uint64
	if s.prevIters > 0 {
		pred = uint64(float64(s.prevP99) * float64(iterations) / float64(s.prevIters))
	}
	var vlo uint64
	if pred > p99Window/2 {
		vlo = pred - p99Window/2
	}
	// The radix shift comes from the predicted maximum (previous sample's
	// max scaled by the iteration ratio). An understated prediction only
	// clamps overshooting values into the top bucket — PercentileFromHist
	// still resolves the quantile exactly (see stats.RadixShift).
	var shift uint
	if s.prevIters > 0 {
		shift = stats.RadixShift(uint64(float64(s.prevMax) * float64(iterations) / float64(s.prevIters)))
	}
	var win [p99Window]uint32
	var rhist [stats.RadixBuckets]uint32
	below := 0
	var maxC uint64
	var sum, sumsq, dead float64
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		if c >= vlo {
			if off := c - vlo; off < p99Window {
				win[off]++
			}
		} else {
			below++
		}
		if b := c >> shift; b < stats.RadixBuckets {
			rhist[b]++
		} else {
			rhist[stats.RadixBuckets-1]++
		}
		f := float64(c)
		sum += f
		sumsq += f * f
		if countDead && f*scale >= s.Endurance {
			dead++
		}
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}
	cov := math.NaN()
	if mean > 0 {
		variance := sumsq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		cov = math.Sqrt(variance) / mean
	}
	p99 := math.NaN()
	if n > 0 {
		k := int(0.99 * float64(n-1)) // stats' nearest-rank convention
		hit := false
		if rem := k - below; rem >= 0 {
			for i := 0; i < p99Window; i++ {
				if rem -= int(win[i]); rem < 0 {
					p99 = float64(vlo + uint64(i))
					hit = true
					break
				}
			}
		}
		if !hit {
			p99, s.work = stats.PercentileFromHist(counts, 0.99, &rhist, shift, s.work)
		}
		s.prevP99 = uint64(p99)
		s.prevMax = maxC
		s.prevIters = iterations
	}
	proj := lifetime.ProjectIterations(float64(maxC), int64(iterations), s.Endurance)

	if s.series.Len() == 0 || s.snapWanted.Swap(false) {
		s.snapshot(dist)
	}
	s.series.Add(float64(epoch), float64(iterations), float64(maxC), mean, p99, cov, dead, proj)
}

// snapshot rebuilds the published /wear.png grid from the current
// distribution: mean-pooled straight from the count matrix down to the
// snapshot cap (same block boundaries as stats.Downsample, without
// staging a full-resolution float grid first), normalized in place, and
// published under the lock. A fresh grid is built each time so readers
// holding the previous snapshot never see it mutate.
func (s *WearSampler) snapshot(dist *WriteDist) {
	rows, cols := dist.Rows, dist.Lanes
	if rows <= 0 || cols <= 0 || rows*cols != len(dist.Counts) {
		return
	}
	outR, outC := rows, cols
	if outR > wearSnapshotDim {
		outR = wearSnapshotDim
	}
	if outC > wearSnapshotDim {
		outC = wearSnapshotDim
	}
	out := stats.NewGrid(outR, outC)
	var max float64
	for or := 0; or < outR; or++ {
		r0, r1 := or*rows/outR, (or+1)*rows/outR
		for oc := 0; oc < outC; oc++ {
			c0, c1 := oc*cols/outC, (oc+1)*cols/outC
			var sum uint64
			for r := r0; r < r1; r++ {
				for _, v := range dist.Counts[r*cols+c0 : r*cols+c1] {
					sum += v
				}
			}
			v := float64(sum) / float64((r1-r0)*(c1-c0))
			out.Data[or*outC+oc] = v
			if v > max {
				max = v
			}
		}
	}
	if max > 0 {
		for i := range out.Data {
			out.Data[i] /= max
		}
	}
	s.mu.Lock()
	s.grid = out
	s.mu.Unlock()
}

// bind stamps the run's configured iteration total (for the end-of-run
// dead-cell projection). The engines call it before the first sample.
func (s *WearSampler) bind(totalIterations int) {
	s.mu.Lock()
	s.totalIts = totalIterations
	s.mu.Unlock()
}

// WritePNG renders the latest heatmap snapshot — the -serve /wear.png
// payload. It errors until the first sample has been recorded. Each call
// also requests a refresh: the snapshot is rebuilt on the next sample
// after a request, so repeated polling tracks the live run while an
// unwatched run never pays for rebuilds past the first.
func (s *WearSampler) WritePNG(w io.Writer) error {
	s.snapWanted.Store(true)
	s.mu.Lock()
	g := s.grid
	s.mu.Unlock()
	if g == nil {
		return fmt.Errorf("core: wear sampler has no samples yet")
	}
	return render.HeatmapPNG(w, g, 4)
}
