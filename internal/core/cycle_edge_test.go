package core_test

import (
	"runtime"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/gates"
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/program"
)

// periodTwoTrace emits one full-mask gate write per iteration into a fixed
// bit: the iteration permutation is a single transposition (row, free), so
// the analytic renamer period is exactly 2.
func periodTwoTrace(lanes int) *program.Trace {
	bld := program.NewBuilder(lanes, 8)
	x := bld.Alloc()
	bld.GateInto(gates.NOT, x, program.NoBit, x)
	return bld.Trace()
}

// partialOnlyTrace emits gate writes only under a partial mask: no
// RenameOnWrite ever fires and the renamer period is 1.
func partialOnlyTrace(lanes int) *program.Trace {
	bld := program.NewBuilder(lanes, 8)
	x := bld.Alloc()
	y := bld.Alloc()
	bld.SetMask(program.RangeMask(lanes, 0, lanes-1))
	bld.GateInto(gates.NOT, x, program.NoBit, y)
	bld.GateInto(gates.NAND, x, y, x)
	return bld.Trace()
}

// checkEnginesAgree runs the fast engine against the serial reference and
// brute force on every +Hw configuration and fails on any divergence.
func checkEnginesAgree(t *testing.T, tr *program.Trace, sim core.SimConfig) {
	t.Helper()
	for _, strat := range core.AllConfigs() {
		if !strat.Hw {
			continue
		}
		fast, err := core.Simulate(tr, sim, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		ref, err := core.SimulateReference(tr, sim, strat)
		if err != nil {
			t.Fatalf("%s reference: %v", strat.Name(), err)
		}
		if !fast.Equal(ref) {
			t.Errorf("%s iters=%d every=%d: cycle-accelerated engine diverges from reference",
				strat.Name(), sim.Iterations, sim.RecompileEvery)
		}
		brute, _, err := core.BruteForce(tr, sim, strat, nil)
		if err != nil {
			t.Fatalf("%s brute: %v", strat.Name(), err)
		}
		if !fast.Equal(brute) {
			t.Errorf("%s iters=%d every=%d: engine diverges from brute force",
				strat.Name(), sim.Iterations, sim.RecompileEvery)
		}
	}
}

// Epochs shorter than the renamer period: closed-cycle accumulation must
// truncate each op's orbit walk at the epoch length, not assume a full
// cycle. An epoch of 1 iteration is the extreme case.
func TestCycleEpochShorterThanPeriod(t *testing.T) {
	tr := periodTwoTrace(4)
	// Sanity: the trace's analytic period really exceeds 1.
	if c := mapping.AnalyzeRenamerCycle(16, []int32{0}); c.Period != 2 {
		t.Fatalf("setup: expected period 2, got %d", c.Period)
	}
	for _, every := range []int{1, 3} { // 1 < period; 3 not a multiple of 2
		sim := core.SimConfig{Rows: 16, PresetOutputs: true, Iterations: 7, RecompileEvery: every, Seed: 5}
		checkEnginesAgree(t, tr, sim)
	}
}

// A period that exactly divides the epoch length: every orbit is walked a
// whole number of times and the truncation branch never fires.
func TestCyclePeriodDividesEpoch(t *testing.T) {
	tr := periodTwoTrace(4)
	sim := core.SimConfig{Rows: 16, PresetOutputs: true, Iterations: 8, RecompileEvery: 4, Seed: 5}
	checkEnginesAgree(t, tr, sim)
}

// A trace with no full-mask writes leaves the renamer static: the analytic
// period is 1, the engine must still match, and the cycle_len counter must
// record exactly 1 per +Hw simulation.
func TestCycleNoFullMaskWrites(t *testing.T) {
	tr := partialOnlyTrace(4)
	sim := core.SimConfig{Rows: 16, PresetOutputs: true, Iterations: 6, RecompileEvery: 2, Seed: 5}
	checkEnginesAgree(t, tr, sim)

	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	strat := core.StrategyConfig{Within: mapping.Random, Between: mapping.Random, Hw: true}
	if _, err := core.Simulate(tr, sim, strat); err != nil {
		t.Fatal(err)
	}
	if got := obs.GetCounter("core.hw.cycle_len").Value(); got != 1 {
		t.Errorf("cycle_len = %d for a trace without full-mask writes, want 1", got)
	}
}

// Worker sharding must stay bit-identical when epoch boundaries interact
// with period boundaries every possible way: epochs shorter than, equal
// to, and longer than the period, with and without an uneven tail.
func TestCycleWorkerIdentityAtPeriodBoundaries(t *testing.T) {
	tr := periodTwoTrace(4)
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, shape := range []struct{ iters, every int }{
		{7, 1},  // epoch < period
		{8, 2},  // epoch == period
		{10, 4}, // period divides epoch, uneven tail (10 % 4 != 0)
		{9, 3},  // epoch not a multiple of the period
	} {
		for _, strat := range core.AllConfigs() {
			if !strat.Hw {
				continue
			}
			var first *core.WriteDist
			for _, w := range workers {
				sim := core.SimConfig{
					Rows: 16, PresetOutputs: true,
					Iterations: shape.iters, RecompileEvery: shape.every,
					Seed: 11, Workers: w,
				}
				d, err := core.Simulate(tr, sim, strat)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", strat.Name(), w, err)
				}
				if first == nil {
					first = d
				} else if !d.Equal(first) {
					t.Errorf("%s shape %+v: workers=%d distribution differs from workers=%d",
						strat.Name(), shape, w, workers[0])
				}
			}
		}
	}
}
