// The epoch-memoized, pool-parallel software wear engine.
//
// Without hardware renaming, an epoch of n iterations contributes
// n · P_w M0 P_b to the distribution: the one-iteration write matrix M0
// permuted by the epoch's within-lane (rows) and between-lane (columns)
// maps. The contribution is linear in n and depends on the epoch only
// through its permutation pair, which the engine exploits three ways —
// the same memoize-then-shard discipline as the +Hw engine:
//
//   - Epoch grouping: epochs are grouped by (within-permutation,
//     between-permutation), fingerprint-bucketed and resolved to exact
//     equality on collision, with each group accumulating its members'
//     summed iteration count. St×St collapses to a single accumulation
//     for the whole run; Bs families collapse to their rotation period
//     (rows/gcd(step·8, rows) distinct shifts per axis); only Ra epochs
//     stay unique. core.sw.groups counts surviving groups and
//     core.sw.memo_hits the epochs folded into an existing group.
//
//   - Rank-1 full-mask accumulation: a full lane mask is invariant under
//     every between-lane permutation, so the full-mask part of M0 (one
//     weight per row; see WearPlan.FullRowWrites) contributes
//     weight·iters to every lane of one physical row. The engine
//     accumulates those as a per-physical-row weight — O(full rows) per
//     group, no lane dimension at all — and expands the weights to whole
//     rows once at the end. Only the CSR-packed partial-mask remainder
//     pays a per-lane walk per group.
//
//   - Bounded parallelism: groups are sharded over a pool of
//     SimConfig.Workers goroutines, each accumulating into a private
//     counts buffer and a private row-weight buffer; the buffers merge
//     by uint64 addition, which commutes, so the result is bit-identical
//     to the serial reference for every worker count.
//
// When a sampler is attached the engine switches to an epoch-ordered
// variant (simulateSoftwareSampled) that accumulates one inter-sample
// segment at a time — grouping epochs within each segment — so every
// sample observes a true prefix of the final distribution, exactly like
// the sampled +Hw engine.
package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
)

// Software-engine memoization accounting (no-ops until obs.Enable).
var (
	// obsSwGroups counts unique (within, between) permutation-pair groups
	// the software engine actually accumulated.
	obsSwGroups = obs.GetCounter("core.sw.groups")
	// obsSwMemoHits counts software epochs folded into an already-seen
	// permutation-pair group; groups + memo_hits equals the software
	// epochs simulated.
	obsSwMemoHits = obs.GetCounter("core.sw.memo_hits")
)

// swJob is one unique (within-permutation, between-permutation) group of
// software epochs and the iteration mass it accumulates.
type swJob struct {
	epoch0 int    // representative epoch (regenerates both perms)
	iters  uint64 // summed iterations of all member epochs
	epochs int    // member epoch count (memoization accounting)
}

// planSwEpochs walks an epoch range [first, last] once and groups epochs
// whose accumulations would be identical: equal within AND between
// permutations (fingerprint buckets resolved by exact comparison).
// Permutations are regenerated from the schedule on demand, so jobs hold
// only integers. iterLen returns an epoch's iteration count.
func planSwEpochs(sched mapping.Schedule, first, last int, iterLen func(epoch int) int) []swJob {
	type key struct{ wfp, bfp uint64 }
	var jobs []swJob
	index := map[key][]int{} // fingerprint bucket -> job ids (collision list)
	for epoch := first; epoch <= last; epoch++ {
		within := sched.EpochWithin(epoch)
		between := sched.EpochBetween(epoch)
		k := key{within.Fingerprint(), between.Fingerprint()}
		jobID := -1
		for _, cand := range index[k] {
			e0 := jobs[cand].epoch0
			if sched.EpochWithin(e0).Equal(within) && sched.EpochBetween(e0).Equal(between) {
				jobID = cand
				break
			}
		}
		if jobID < 0 {
			jobID = len(jobs)
			jobs = append(jobs, swJob{epoch0: epoch})
			index[k] = append(index[k], jobID)
		}
		jobs[jobID].iters += uint64(iterLen(epoch))
		jobs[jobID].epochs++
	}
	return jobs
}

// epochLen returns the per-epoch iteration count function for a config:
// every epoch runs recompileEvery iterations except a short final one.
func (c SimConfig) epochLen() func(epoch int) int {
	every := c.recompileEvery()
	return func(epoch int) int {
		n := every
		if start := epoch * every; start+n > c.Iterations {
			n = c.Iterations - start
		}
		return n
	}
}

// accumulateSwJob adds one group's contribution: the full-mask row
// weights into rowW (between-invariant, expanded to whole rows later by
// expandRowWeights) and the CSR partial-mask entries straight into
// counts through the group's between permutation. touched, when non-nil,
// records physical rows whose rowW entry became nonzero (the sampled
// engine resets only those between segments).
func accumulateSwJob(p *WearPlan, sched mapping.Schedule, job swJob,
	rowW []uint64, touched *[]int32, counts []uint64) {
	within := sched.EpochWithin(job.epoch0)
	between := sched.EpochBetween(job.epoch0)
	for i, r := range p.fullRowIdx {
		pr := within.Apply(int(r))
		if touched != nil && rowW[pr] == 0 {
			*touched = append(*touched, int32(pr))
		}
		rowW[pr] += uint64(p.fullRowW[i]) * job.iters
	}
	lanes := p.trace.Lanes
	for i, r := range p.csrRows {
		dst := counts[within.Apply(int(r))*lanes:]
		for e := p.csrPtr[i]; e < p.csrPtr[i+1]; e++ {
			dst[between.Apply(int(p.csrLane[e]))] += uint64(p.csrCnt[e]) * job.iters
		}
	}
}

// expandRowWeights adds each nonzero per-physical-row weight to every
// lane of its row — the deferred rank-1 completion of the full-mask
// accumulation.
func expandRowWeights(rowW []uint64, lanes int, counts []uint64) {
	for pr, c := range rowW {
		if c == 0 {
			continue
		}
		row := counts[pr*lanes : pr*lanes+lanes]
		for l := range row {
			row[l] += c
		}
	}
}

// simulateSoftware is the fast software path: group epochs by
// permutation pair, shard the surviving groups over the bounded worker
// pool, merge per-worker buffers by addition. Bit-identical to
// simulateSoftwareReference for every worker count.
func simulateSoftware(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/sw-accumulate")
	defer sp.End()
	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	jobs := planSwEpochs(sched, 0, totalEpochs-1, cfg.epochLen())
	obsEpochs.Add(int64(totalEpochs))
	obsSwGroups.Add(int64(len(jobs)))
	obsSwMemoHits.Add(int64(totalEpochs - len(jobs)))

	lanes := p.trace.Lanes
	workers := pool.Size(cfg.workers(), len(jobs))
	parts := make([][]uint64, workers)
	rowWs := make([][]uint64, workers)
	parts[0] = dist.Counts
	for w := 0; w < workers; w++ {
		if w > 0 {
			parts[w] = make([]uint64, len(dist.Counts))
		}
		rowWs[w] = make([]uint64, cfg.Rows)
	}
	pool.ForEachWorker(workers, len(jobs), func(slot, j int) {
		accumulateSwJob(p, sched, jobs[j], rowWs[slot], nil, parts[slot])
	})
	for w := 1; w < workers; w++ {
		for i, c := range parts[w] {
			if c != 0 {
				dist.Counts[i] += c
			}
		}
		for pr, c := range rowWs[w] {
			rowWs[0][pr] += c
		}
	}
	expandRowWeights(rowWs[0], lanes, dist.Counts)
}

// simulateSoftwareSampled is simulateSoftware with epoch-ordered
// accumulation: the walk advances one inter-sample segment at a time,
// grouping the segment's epochs by permutation pair (uint64 adds
// commute, so intra-segment order is free), and feeds cfg.Sampler the
// prefix distribution at each segment boundary. The final distribution
// is bit-identical to the unsampled engine.
func simulateSoftwareSampled(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/sw-accumulate")
	defer sp.End()
	sampler := cfg.Sampler
	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	iterLen := cfg.epochLen()
	lanes := p.trace.Lanes
	rowW := make([]uint64, cfg.Rows)
	var touched []int32
	groups := 0
	for start := 0; start < totalEpochs; {
		end := start
		for !sampler.due(end, totalEpochs-1) {
			end++
		}
		jobs := planSwEpochs(sched, start, end, iterLen)
		groups += len(jobs)
		for _, job := range jobs {
			accumulateSwJob(p, sched, job, rowW, &touched, dist.Counts)
		}
		// Segment boundary: complete the rank-1 full-mask part so the
		// sampler sees the true prefix distribution, then reset only the
		// touched weights.
		for _, pr := range touched {
			c := rowW[pr]
			rowW[pr] = 0
			row := dist.Counts[int(pr)*lanes : (int(pr)+1)*lanes]
			for l := range row {
				row[l] += c
			}
		}
		touched = touched[:0]
		itersSoFar := (end + 1) * every
		if itersSoFar > cfg.Iterations {
			itersSoFar = cfg.Iterations
		}
		sampler.Sample(end, itersSoFar, dist)
		start = end + 1
	}
	obsEpochs.Add(int64(totalEpochs))
	obsSwGroups.Add(int64(groups))
	obsSwMemoHits.Add(int64(totalEpochs - groups))
}
