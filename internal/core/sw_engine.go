// The epoch-memoized, pool-parallel software wear engine.
//
// Without hardware renaming, an epoch of n iterations contributes
// n · P_w M0 P_b to the distribution: the one-iteration write matrix M0
// permuted by the epoch's within-lane (rows) and between-lane (columns)
// maps. The contribution is linear in n and depends on the epoch only
// through its permutation pair, which the engine exploits three ways —
// the same memoize-then-shard discipline as the +Hw engine:
//
//   - Epoch grouping: epochs are grouped by (within-permutation,
//     between-permutation), fingerprint-bucketed and resolved to exact
//     equality on collision, with each group accumulating its members'
//     summed iteration count. St×St collapses to a single accumulation
//     for the whole run; Bs families collapse to their rotation period
//     (rows/gcd(step·8, rows) distinct shifts per axis); only Ra epochs
//     stay unique. core.sw.groups counts surviving groups and
//     core.sw.memo_hits the epochs folded into an existing group.
//
//   - Rank-1 full-mask accumulation: a full lane mask is invariant under
//     every between-lane permutation, so the full-mask part of M0 (one
//     weight per row; see WearPlan.FullRowWrites) contributes
//     weight·iters to every lane of one physical row. The engine
//     accumulates those as a per-physical-row weight — O(full rows) per
//     group, no lane dimension at all — and expands the weights to whole
//     rows once at the end. Only the CSR-packed partial-mask remainder
//     pays a per-lane walk per group.
//
//   - Bounded parallelism: groups are sharded over a pool of
//     SimConfig.Workers goroutines, each accumulating into a private
//     counts buffer and a private row-weight buffer; the buffers merge
//     by uint64 addition, which commutes, so the result is bit-identical
//     to the serial reference for every worker count.
//
// When a sampler is attached the engine switches to an epoch-ordered
// variant (simulateSoftwareSampled) that accumulates one inter-sample
// segment at a time — grouping epochs within each segment — so every
// sample observes a true prefix of the final distribution, exactly like
// the sampled +Hw engine.
package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
)

// Software-engine memoization accounting (no-ops until obs.Enable).
var (
	// obsSwGroups counts unique (within, between) permutation-pair groups
	// the software engine actually accumulated.
	obsSwGroups = obs.GetCounter("core.sw.groups")
	// obsSwMemoHits counts software epochs folded into an already-seen
	// permutation-pair group; groups + memo_hits equals the software
	// epochs simulated.
	obsSwMemoHits = obs.GetCounter("core.sw.memo_hits")
)

// swJob is one unique (within-permutation, between-permutation) group of
// software epochs and the iteration mass it accumulates.
type swJob struct {
	epoch0 int    // representative epoch (regenerates both perms)
	iters  uint64 // summed iterations of all member epochs
	epochs int    // member epoch count (memoization accounting)
	next   int32  // next job in the same fingerprint bucket (-1 ends)
}

// planSwEpochs walks an epoch range [first, last] once and groups epochs
// whose accumulations would be identical: equal within AND between
// permutations (fingerprint buckets resolved by exact comparison).
// Permutations are regenerated into gen's scratch on demand, so jobs
// hold only integers and planning an epoch range allocates only the job
// slice and the fingerprint index — not a permutation pair per epoch.
// Fingerprint collisions chain through swJob.next instead of per-bucket
// slices. iterLen returns an epoch's iteration count.
func planSwEpochs(gen *permGen, first, last int, iterLen func(epoch int) int) []swJob {
	type key struct{ wfp, bfp uint64 }
	jobs := make([]swJob, 0, last-first+1)
	index := make(map[key]int32, last-first+1) // fingerprint bucket -> chain head
	for epoch := first; epoch <= last; epoch++ {
		within := gen.withinAt(epoch)
		between := gen.betweenAt(epoch)
		k := key{within.Fingerprint(), between.Fingerprint()}
		var jobID int32
		if head, ok := index[k]; ok {
			for cand := head; ; {
				e0 := jobs[cand].epoch0
				if gen.within2At(e0).Equal(within) && gen.between2At(e0).Equal(between) {
					jobID = cand
					break
				}
				if next := jobs[cand].next; next >= 0 {
					cand = next
					continue
				}
				// True fingerprint collision: new job at the chain's end.
				jobID = int32(len(jobs))
				jobs = append(jobs, swJob{epoch0: epoch, next: -1})
				jobs[cand].next = jobID
				break
			}
		} else {
			jobID = int32(len(jobs))
			jobs = append(jobs, swJob{epoch0: epoch, next: -1})
			index[k] = jobID
		}
		jobs[jobID].iters += uint64(iterLen(epoch))
		jobs[jobID].epochs++
	}
	return jobs
}

// epochLen returns the per-epoch iteration count function for a config:
// every epoch runs recompileEvery iterations except a short final one.
func (c SimConfig) epochLen() func(epoch int) int {
	every := c.recompileEvery()
	return func(epoch int) int {
		n := every
		if start := epoch * every; start+n > c.Iterations {
			n = c.Iterations - start
		}
		return n
	}
}

// accumulateSwJob adds one group's contribution: the full-mask row
// weights into rowW (between-invariant, expanded to whole rows later by
// expandRowWeights) and the CSR partial-mask entries straight into
// counts through the group's between permutation. touched, when non-nil,
// records physical rows whose rowW entry became nonzero (the sampled
// engine resets only those between segments).
func accumulateSwJob(p *WearPlan, gen *permGen, job swJob,
	rowW []uint64, touched *[]int32, counts []uint64) {
	within := gen.withinAt(job.epoch0)
	between := gen.betweenAt(job.epoch0)
	for i, r := range p.fullRowIdx {
		pr := within.Apply(int(r))
		if touched != nil && rowW[pr] == 0 {
			*touched = append(*touched, int32(pr))
		}
		rowW[pr] += uint64(p.fullRowW[i]) * job.iters
	}
	lanes := p.trace.Lanes
	for i, r := range p.csrRows {
		dst := counts[within.Apply(int(r))*lanes:]
		for e := p.csrPtr[i]; e < p.csrPtr[i+1]; e++ {
			dst[between.Apply(int(p.csrLane[e]))] += uint64(p.csrCnt[e]) * job.iters
		}
	}
}

// expandRowWeights adds each nonzero per-physical-row weight to every
// lane of its row — the deferred rank-1 completion of the full-mask
// accumulation.
func expandRowWeights(rowW []uint64, lanes int, counts []uint64) {
	for pr, c := range rowW {
		if c == 0 {
			continue
		}
		row := counts[pr*lanes : pr*lanes+lanes]
		for l := range row {
			row[l] += c
		}
	}
}

// simulateSoftware is the fast software path: group epochs by
// permutation pair, shard the surviving groups over the bounded worker
// pool, merge per-worker buffers by addition. All working state — the
// per-worker scratch bundles and partial-counts buffers — is drawn from
// the plan's arena, so a warm plan simulates without touching the
// allocator. Bit-identical to simulateSoftwareReference for every
// worker count.
func simulateSoftware(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/sw-accumulate")
	defer sp.End()
	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	planScr := p.getScratch()
	planScr.gen.reset(sched)
	jobs := planSwEpochs(&planScr.gen, 0, totalEpochs-1, cfg.epochLen())
	obsEpochs.Add(int64(totalEpochs))
	obsSwGroups.Add(int64(len(jobs)))
	obsSwMemoHits.Add(int64(totalEpochs - len(jobs)))

	lanes := p.trace.Lanes
	workers := pool.Size(cfg.workers(), len(jobs))
	scratches := make([]*engineScratch, workers)
	parts := make([][]uint64, workers)
	scratches[0] = planScr
	parts[0] = dist.Counts
	for w := 1; w < workers; w++ {
		scratches[w] = p.getScratch()
		scratches[w].gen.reset(sched)
		parts[w] = p.getCounts()
	}
	for _, s := range scratches {
		p.ensureRowW(s)
	}
	pool.ForEachWorker(workers, len(jobs), func(slot, j int) {
		s := scratches[slot]
		accumulateSwJob(p, &s.gen, jobs[j], s.rowW, nil, parts[slot])
	})
	for w := 1; w < workers; w++ {
		for i, c := range parts[w] {
			if c != 0 {
				dist.Counts[i] += c
			}
		}
		for pr, c := range scratches[w].rowW {
			planScr.rowW[pr] += c
		}
		p.putCounts(parts[w])
		p.putScratch(scratches[w])
	}
	expandRowWeights(planScr.rowW, lanes, dist.Counts)
	p.putScratch(planScr)
}

// simulateSoftwareSampled is simulateSoftware with epoch-ordered
// accumulation: the walk advances one inter-sample segment at a time,
// grouping the segment's epochs by permutation pair (uint64 adds
// commute, so intra-segment order is free), and feeds cfg.Sampler the
// prefix distribution at each segment boundary. The final distribution
// is bit-identical to the unsampled engine.
func simulateSoftwareSampled(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/sw-accumulate")
	defer sp.End()
	sampler := cfg.Sampler
	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	iterLen := cfg.epochLen()
	lanes := p.trace.Lanes
	scr := p.getScratch()
	scr.gen.reset(sched)
	p.ensureRowW(scr)
	rowW := scr.rowW
	touched := scr.touched[:0]
	groups := 0
	for start := 0; start < totalEpochs; {
		end := start
		for !sampler.due(end, totalEpochs-1) {
			end++
		}
		jobs := planSwEpochs(&scr.gen, start, end, iterLen)
		groups += len(jobs)
		for _, job := range jobs {
			accumulateSwJob(p, &scr.gen, job, rowW, &touched, dist.Counts)
		}
		// Segment boundary: complete the rank-1 full-mask part so the
		// sampler sees the true prefix distribution, then reset only the
		// touched weights.
		for _, pr := range touched {
			c := rowW[pr]
			rowW[pr] = 0
			row := dist.Counts[int(pr)*lanes : (int(pr)+1)*lanes]
			for l := range row {
				row[l] += c
			}
		}
		touched = touched[:0]
		itersSoFar := (end + 1) * every
		if itersSoFar > cfg.Iterations {
			itersSoFar = cfg.Iterations
		}
		sampler.Sample(end, itersSoFar, dist)
		start = end + 1
	}
	scr.touched = touched[:0]
	p.putScratch(scr)
	obsEpochs.Add(int64(totalEpochs))
	obsSwGroups.Add(int64(groups))
	obsSwMemoHits.Add(int64(totalEpochs - groups))
}
