package core

import (
	"testing"

	"pimendure/internal/stats"
)

// syntheticDist builds a rows×lanes WriteDist whose counts come from
// gen(i) — a hand-shaped distribution for driving Sample directly,
// outside any engine.
func syntheticDist(rows, lanes int, gen func(i int) uint64) *WriteDist {
	d := &WriteDist{Rows: rows, Lanes: lanes, Counts: make([]uint64, rows*lanes)}
	for i := range d.Counts {
		d.Counts[i] = gen(i)
	}
	return d
}

func p99Of(t *testing.T, s *WearSampler) float64 {
	t.Helper()
	last := s.Series().Last()
	if last == nil {
		t.Fatal("sampler recorded no samples")
	}
	for i, c := range WearSeriesColumns {
		if c == "p99_writes" {
			return last[i]
		}
	}
	t.Fatal("series lacks p99_writes")
	return 0
}

func freshRadix(counts []uint64) float64 {
	var max uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	p, _ := stats.PercentileRadix(counts, 0.99, max, nil)
	return p
}

// When the counts grow much faster than the previous epoch predicted,
// the true p99 lands entirely above the fused pass's window and the
// exhausted window scan must fall back to the exact radix scan.
func TestSampleP99FallbackAboveWindow(t *testing.T) {
	s := NewWearSampler("test.p99.above", 1, 0)
	const rows, lanes = 100, 100

	// Epoch 0: flat counts of 10 seed the predictor (prevP99 = 10).
	s.Sample(0, 1, syntheticDist(rows, lanes, func(int) uint64 { return 10 }))
	if got := p99Of(t, s); got != 10 {
		t.Fatalf("seed sample p99 = %v, want 10", got)
	}
	if s.prevP99 != 10 || s.prevIters != 1 {
		t.Fatalf("predictor state = (%d, %d), want (10, 1)", s.prevP99, s.prevIters)
	}

	// Epoch 1: prediction 10×(2/1) = 20 puts the window at [0, 4096),
	// but every count jumped to ≥ 6000 — no count falls in the window,
	// none falls below it, so the scan exhausts without locating rank k.
	d := syntheticDist(rows, lanes, func(i int) uint64 { return uint64(6000 + (i*7)%1000) })
	s.Sample(1, 2, d)
	want := freshRadix(d.Counts)
	if want < 6000 {
		t.Fatalf("degenerate fixture: fresh-scan p99 = %v, want ≥ 6000", want)
	}
	if got := p99Of(t, s); got != want {
		t.Errorf("fallback p99 = %v, want fresh PercentileRadix %v", got, want)
	}
	if s.prevP99 != uint64(want) {
		t.Errorf("predictor not updated from fallback: prevP99 = %d, want %d", s.prevP99, uint64(want))
	}
}

// When the counts collapse far below the prediction, every cell sits
// under the window's floor, rank k is below the window, and the sampler
// must fall back rather than report the window edge.
func TestSampleP99FallbackBelowWindow(t *testing.T) {
	s := NewWearSampler("test.p99.below", 1, 0)
	const rows, lanes = 100, 100

	// Epoch 0: flat 100 000 (itself resolved by fallback — the first
	// sample has no prediction, so its window is [0, 4096)).
	s.Sample(0, 1, syntheticDist(rows, lanes, func(int) uint64 { return 100000 }))
	if got := p99Of(t, s); got != 100000 {
		t.Fatalf("seed sample p99 = %v, want 100000", got)
	}

	// Epoch 1: prediction 100000×(2/1) = 200000 puts the window at
	// [197952, 202048); the true counts are ~50, all below it.
	d := syntheticDist(rows, lanes, func(i int) uint64 { return uint64(40 + i%20) })
	s.Sample(1, 2, d)
	want := freshRadix(d.Counts)
	if got := p99Of(t, s); got != want {
		t.Errorf("fallback p99 = %v, want fresh PercentileRadix %v", got, want)
	}

	// Epoch 2: the predictor recovered from the fallback value, so a
	// same-scale distribution now resolves inside the window — and must
	// agree with the exact scan just the same.
	d2 := syntheticDist(rows, lanes, func(i int) uint64 { return uint64(80 + i%40) })
	s.Sample(2, 4, d2)
	if got, want := p99Of(t, s), freshRadix(d2.Counts); got != want {
		t.Errorf("windowed p99 = %v, want %v", got, want)
	}
}

// A sampler whose bind was never called (no engine attached) must not
// scale the dead-cell projection: with totalIts unset the counts are
// taken as final, not extrapolated.
func TestSampleDeadCellsWithoutBind(t *testing.T) {
	deadOf := func(s *WearSampler) float64 {
		last := s.Series().Last()
		for i, c := range WearSeriesColumns {
			if c == "projected_dead_cells" {
				return last[i]
			}
		}
		return -1
	}
	// 100 hot cells at 150 writes, the rest at 1; endurance 1000.
	gen := func(i int) uint64 {
		if i < 100 {
			return 150
		}
		return 1
	}

	unbound := NewWearSampler("test.bind.none", 1, 1000)
	unbound.Sample(0, 10, syntheticDist(100, 100, gen))
	if got := deadOf(unbound); got != 0 {
		t.Errorf("unbound sampler projected %v dead cells, want 0 (scale must stay 1)", got)
	}

	// The same distribution bound to a 100-iteration run extrapolates
	// 10× — the hot cells project to 1500 ≥ endurance.
	bound := NewWearSampler("test.bind.total", 1, 1000)
	bound.bind(100)
	bound.Sample(0, 10, syntheticDist(100, 100, gen))
	if got := deadOf(bound); got != 100 {
		t.Errorf("bound sampler projected %v dead cells, want 100", got)
	}

	// bind with a total at or below the accumulated iterations must not
	// shrink the projection (scale only ever extrapolates forward).
	capped := NewWearSampler("test.bind.capped", 1, 1000)
	capped.bind(5)
	capped.Sample(0, 10, syntheticDist(100, 100, gen))
	if got := deadOf(capped); got != 0 {
		t.Errorf("capped sampler projected %v dead cells, want 0", got)
	}
}
