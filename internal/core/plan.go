// The shared per-benchmark sweep plan.
//
// Every strategy of a sweep simulates the same trace on the same array:
// the one-iteration write matrix, the flattened write-op list, the mask
// lane sets, the renamer cycle analysis and the trace statistics are all
// properties of (trace, rows, preset) alone — none depend on the mapping
// strategy, the seed, or the iteration count. Before this plan existed,
// each of the 18 pim.Run calls inside pim.Sweep recomputed all of them;
// now pim.Sweep builds one WearPlan and every strategy consumes it
// (pim.Run builds one on demand when called alone).
//
// The plan stores the write matrix M0 factorized the way the engines
// consume it:
//
//   - The full-mask part as one weight per logical row (FullRowWrites).
//     A full lane mask is invariant under every between-lane permutation
//     — B(all lanes) = all lanes — so this part of an epoch's
//     contribution never needs a per-lane scan at all: the software
//     engine accumulates a per-physical-row weight and expands it to
//     whole rows once, at the end.
//   - The partial-mask remainder CSR-packed: per hot row, the nonzero
//     (lane, count) list instead of a dense Lanes-wide scan, so sparse
//     masks cost what they touch.
//
// M0[r][l] equals FullRowWrites[r] + the CSR row entries for (r, l); the
// two parts sum to exactly the dense matrix the pre-plan engine built per
// run (see planMatchesDense in plan_test.go).
package core

import (
	"fmt"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/program"
)

// WearPlan is the immutable per-benchmark precomputation shared by every
// strategy in a sweep: the factorized one-iteration write matrix, the
// flattened write-op list with mask lane sets (the +Hw replay inputs),
// the analytic renamer cycle, and the trace statistics. Build one with
// NewWearPlan and run any number of simulations against it concurrently
// — the precomputed inputs are never written after construction, and the
// only mutable state is the lock-guarded scratch arena (see arena.go)
// that recycles engine buffers across simulations.
type WearPlan struct {
	trace  *program.Trace
	rows   int
	preset bool
	stats  program.Stats

	// Software engine inputs: the one-iteration write matrix M0, split
	// into its between-permutation-invariant full-mask part (a weight per
	// logical row) and the CSR-packed partial-mask remainder.
	fullRowIdx []int32  // logical rows with full-mask writes
	fullRowW   []uint32 // summed writes per such row

	csrRows []int32  // logical rows with partial-mask writes
	csrPtr  []int32  // CSR offsets: row csrRows[i] owns entries [csrPtr[i], csrPtr[i+1])
	csrLane []int32  // lane of each entry
	csrCnt  []uint32 // writes of each entry

	// +Hw replay inputs: flattened write ops, per-mask lane sets, the
	// full-mask row sequence, and the analytic renamer cycle (valid only
	// when the trace fits the renamer; see hwCycleValid).
	ops          []wop
	maskLanes    [][]int
	fullRows     []int32
	cycle        mapping.RenamerCycle
	hwCycleValid bool

	// Reusable engine scratch pooled on the plan (see arena.go); the one
	// field with interior mutability, guarded by its own mutex.
	arena arena
}

// NewWearPlan precomputes the shared simulation plan for one trace on a
// rows-deep array with the given output-preset policy. The work is
// O(trace size) and is recorded under the "core.simulate/plan" stage;
// pim.Sweep amortizes one plan over all 18 strategies.
func NewWearPlan(tr *program.Trace, rows int, preset bool) *WearPlan {
	sp := obs.StartSpan("core.simulate/plan")
	defer sp.End()
	p := &WearPlan{trace: tr, rows: rows, preset: preset}
	p.stats = tr.ComputeStats(preset)
	p.ops, p.maskLanes = flattenOps(tr, preset)

	// Factorized M0: dense staging over the trace's (small) logical row
	// footprint, compressed once.
	lanes := tr.Lanes
	fullW := make([]uint32, tr.LaneBits)
	partial := make([]uint32, tr.LaneBits*lanes)
	for _, op := range p.ops {
		if op.full {
			fullW[op.row] += uint32(op.w)
			p.fullRows = append(p.fullRows, op.row)
			continue
		}
		base := int(op.row) * lanes
		for _, l := range p.maskLanes[op.mask] {
			partial[base+l] += uint32(op.w)
		}
	}
	for r := 0; r < tr.LaneBits; r++ {
		if fullW[r] != 0 {
			p.fullRowIdx = append(p.fullRowIdx, int32(r))
			p.fullRowW = append(p.fullRowW, fullW[r])
		}
		hot := false
		for l := 0; l < lanes; l++ {
			if c := partial[r*lanes+l]; c != 0 {
				if !hot {
					hot = true
					p.csrRows = append(p.csrRows, int32(r))
					p.csrPtr = append(p.csrPtr, int32(len(p.csrLane)))
				}
				p.csrLane = append(p.csrLane, int32(l))
				p.csrCnt = append(p.csrCnt, c)
			}
		}
	}
	p.csrPtr = append(p.csrPtr, int32(len(p.csrLane)))

	// The renamer period is conjugation-invariant, so one trace-level
	// analysis serves every +Hw epoch of every strategy. It only makes
	// sense when the trace fits the renamer's architectural rows
	// (LaneBits ≤ rows−1); otherwise +Hw validation rejects the run
	// before the cycle is ever consulted.
	if rows >= 2 && tr.LaneBits <= rows-1 {
		p.cycle = mapping.AnalyzeRenamerCycle(rows, p.fullRows)
		p.hwCycleValid = true
	}
	return p
}

// Trace returns the trace the plan was built for.
func (p *WearPlan) Trace() *program.Trace { return p.trace }

// Rows returns the physical bit-address count the plan was built for.
func (p *WearPlan) Rows() int { return p.rows }

// PresetOutputs reports the output-preset policy the plan was built for.
func (p *WearPlan) PresetOutputs() bool { return p.preset }

// Stats returns the trace statistics (steps, utilization, cell traffic)
// computed once at plan-build time.
func (p *WearPlan) Stats() program.Stats { return p.stats }

// Cycle returns the analytic renamer cycle of one trace iteration, and
// whether it is valid for this plan's row count (false when the trace
// does not fit the renamer's architectural rows).
func (p *WearPlan) Cycle() (mapping.RenamerCycle, bool) { return p.cycle, p.hwCycleValid }

// FullRowWrites returns the between-invariant part of the one-iteration
// write matrix: parallel slices of logical rows receiving full-mask
// writes and the summed per-lane write count of each.
func (p *WearPlan) FullRowWrites() (rows []int32, writes []uint32) {
	return p.fullRowIdx, p.fullRowW
}

// PartialEntries returns the number of nonzero (row, lane) entries in the
// CSR-packed partial-mask part of the write matrix.
func (p *WearPlan) PartialEntries() int { return len(p.csrLane) }

// M0 materializes the dense one-iteration write matrix [row*Lanes+lane]
// from the factorized plan — the matrix the pre-plan software engine
// rebuilt on every run. It is exported for cross-validation; the engines
// never call it.
func (p *WearPlan) M0() []uint32 {
	lanes := p.trace.Lanes
	m0 := make([]uint32, p.trace.LaneBits*lanes)
	for i, r := range p.fullRowIdx {
		base := int(r) * lanes
		for l := 0; l < lanes; l++ {
			m0[base+l] += p.fullRowW[i]
		}
	}
	for i, r := range p.csrRows {
		base := int(r) * lanes
		for e := p.csrPtr[i]; e < p.csrPtr[i+1]; e++ {
			m0[base+int(p.csrLane[e])] += p.csrCnt[e]
		}
	}
	return m0
}

// check verifies a simulation config is compatible with the plan's
// build parameters.
func (p *WearPlan) check(tr *program.Trace, cfg SimConfig) error {
	if tr != p.trace {
		return fmt.Errorf("core: wear plan was built for a different trace")
	}
	if cfg.Rows != p.rows || cfg.PresetOutputs != p.preset {
		return fmt.Errorf("core: wear plan built for rows=%d preset=%v, config has rows=%d preset=%v",
			p.rows, p.preset, cfg.Rows, cfg.PresetOutputs)
	}
	return nil
}

// Simulate runs one load-balancing configuration against the shared
// plan — core.Simulate with the per-benchmark precomputation factored
// out, so a sweep pays for it once. Results are bit-identical to
// Simulate (and SimulateReference) for every worker count and sampling
// cadence. The returned distribution's counts buffer is drawn from the
// plan's arena; callers that are done with it may hand it back with
// WriteDist.Release to make the next simulation allocation-free.
func (p *WearPlan) Simulate(cfg SimConfig, strat StrategyConfig) (*WriteDist, error) {
	if err := cfg.Validate(p.trace, strat.Hw); err != nil {
		return nil, err
	}
	if err := p.check(p.trace, cfg); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("core.simulate")
	defer sp.End()
	tr := p.trace
	dist := p.newDist()
	dist.Iterations = cfg.Iterations
	dist.StepsPerIteration = p.stats.Steps

	arch := cfg.Rows
	if strat.Hw {
		arch--
	}
	sched := mapping.Schedule{
		Rows: arch, Lanes: tr.Lanes,
		Within: strat.Within, Between: strat.Between,
		Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
	}
	if cfg.Sampler != nil {
		cfg.Sampler.bind(cfg.Iterations)
	}
	switch {
	case strat.Hw && cfg.Sampler != nil:
		simulateHwSampled(p, cfg, sched, dist)
	case strat.Hw:
		simulateHw(p, cfg, sched, dist)
	case cfg.Sampler != nil:
		simulateSoftwareSampled(p, cfg, sched, dist)
	default:
		simulateSoftware(p, cfg, sched, dist)
	}
	if obs.Enabled() {
		obsWrites.Add(int64(dist.Total()))
	}
	return dist, nil
}
