// Package core is the endurance characterization engine — the paper's
// primary contribution. It accumulates per-cell write distributions for a
// PIM workload executed for many iterations under each of the 18
// load-balancing configurations of §4 (3 within-lane × 3 between-lane
// software strategies × hardware re-mapping on/off), from which array
// lifetime is estimated (Eq. 4).
//
// Two engines are provided:
//
//   - Simulate — the fast path, built on a shared per-benchmark WearPlan
//     (plan.go). Writes of one iteration factorize as a sum of rank-1
//     terms Σ_phases rowHist ⊗ laneMask (ops sharing a lane mask form a
//     phase); software permutations only relabel indices, so epochs group
//     by their (within, between) permutation pair and each unique group
//     contributes one accumulation weighted by its summed iterations,
//     sharded over a bounded worker pool; see sw_engine.go. Hardware
//     renaming evolves per gate and is replayed exactly, O(1) per op —
//     but epochs are independent (the renamer resets at recompile
//     boundaries), so the +Hw engine memoizes per-epoch histograms by
//     within-lane permutation and shards the unique replays over the same
//     pool (SimConfig.Workers); see hw_engine.go. Results are
//     bit-identical for every worker count.
//   - BruteForce — the functional array simulator executing every single
//     iteration cell by cell. It is mathematically identical and is used
//     to cross-validate Simulate in the test suite.
//
// SimulateReference preserves the pre-memoization serial engine as a
// third cross-validation point and benchmark baseline.
package core

import (
	"fmt"
	"runtime"

	"pimendure/internal/array"
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/program"
)

// Observability handles (no-ops until obs.Enable). Recording happens at
// run/epoch/job granularity only — never inside the per-op replay loop —
// so a disabled build stays within BenchmarkHwEngine's <2% budget.
var (
	// obsEpochs counts recompile epochs simulated (software and +Hw).
	obsEpochs = obs.GetCounter("core.epochs")
	// obsHwReplays counts unique (within-permutation, length) replay
	// jobs the memoized +Hw engine actually executed.
	obsHwReplays = obs.GetCounter("core.hw.replays")
	// obsHwMemoHits counts epochs served from an already-replayed job.
	obsHwMemoHits = obs.GetCounter("core.hw.memo_hits")
	// obsHwReplayIters counts iterations actually replayed op-by-op
	// after memoization and cycle acceleration.
	obsHwReplayIters = obs.GetCounter("core.hw.replay_iters")
	// obsHwReplayItersSaved counts epoch-iterations NOT replayed thanks
	// to memoization and cycle acceleration; replay_iters + this equals
	// the total +Hw epoch-iterations simulated.
	obsHwReplayItersSaved = obs.GetCounter("core.hw.replay_iters_saved")
	// obsHwCycleLen accumulates the analytic renamer period of each +Hw
	// simulation (mapping.AnalyzeRenamerCycle) — the per-run cycle
	// length a manifest surfaces next to replay_iters_saved.
	obsHwCycleLen = obs.GetCounter("core.hw.cycle_len")
	// obsWrites totals cell writes accumulated into distributions; a
	// run's manifest entry equals the sum of its WriteDist.Total()s.
	obsWrites = obs.GetCounter("core.writes")
)

// StrategyConfig is one of the paper's load-balancing configurations,
// labelled "within×between[+Hw]" (e.g. RaxBs+Hw).
type StrategyConfig struct {
	// Within re-maps bit addresses inside lanes (rows, §3.2 "within
	// lanes"); Between re-maps lanes (columns, "between lanes").
	Within, Between mapping.Strategy
	// Hw enables hardware free-bit renaming on every full-lane write.
	Hw bool
}

// Name returns the paper's label for the configuration, e.g. "StxRa" or
// "BsxBs+Hw".
func (c StrategyConfig) Name() string {
	n := c.Within.String() + "x" + c.Between.String()
	if c.Hw {
		n += "+Hw"
	}
	return n
}

// Static is the no-balancing baseline St×St.
var Static = StrategyConfig{Within: mapping.Static, Between: mapping.Static}

// AllConfigs enumerates the full 18-configuration space in the paper's
// presentation order (Figs. 14–16: row strategy × column strategy, then
// the same nine with +Hw).
func AllConfigs() []StrategyConfig {
	var out []StrategyConfig
	for _, hw := range []bool{false, true} {
		for _, between := range mapping.Strategies() {
			for _, within := range mapping.Strategies() {
				out = append(out, StrategyConfig{Within: within, Between: between, Hw: hw})
			}
		}
	}
	return out
}

// SoftwareConfigs enumerates the nine software-only configurations. The
// returned slice is a fresh copy: it never aliases AllConfigs' backing
// array, so callers may append to it freely.
func SoftwareConfigs() []StrategyConfig {
	all := AllConfigs()
	out := make([]StrategyConfig, 9)
	copy(out, all[:9])
	return out
}

// SimConfig controls a wear simulation.
type SimConfig struct {
	// Rows is the physical bit-address count per lane (1024 in §4).
	Rows int
	// PresetOutputs charges the CRAM-style output preset write (§4).
	PresetOutputs bool
	// Iterations is how many times the benchmark repeats (§4: 100 000).
	Iterations int
	// RecompileEvery is the software re-mapping period in iterations
	// (§4 sweeps 10…10 000; the headline figures use 100). Values ≤ 0
	// disable software re-mapping (a single epoch).
	RecompileEvery int
	// Seed drives the Ra permutation sequence.
	Seed int64
	// ShiftStep overrides the Bs rotation per epoch (0 = one byte);
	// negative steps are rejected by Validate.
	ShiftStep int
	// Workers bounds the goroutines the +Hw engine shards epochs over;
	// ≤ 0 selects runtime.GOMAXPROCS(0). The accumulated distribution is
	// bit-identical for every worker count.
	Workers int
	// Sampler, when non-nil, observes the accumulating distribution after
	// each sampled recompile epoch (wear telemetry). The engines then
	// accumulate in epoch order — the +Hw path switches to the sampled
	// engine, which prefetches replay jobs in parallel but lands them
	// serially — so every sample is a true prefix of the final
	// distribution. Results stay bit-identical to the unsampled engines.
	Sampler *WearSampler
}

func (c SimConfig) recompileEvery() int {
	if c.RecompileEvery <= 0 {
		return c.Iterations
	}
	return c.RecompileEvery
}

func (c SimConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Validate checks the simulation parameters against a trace.
func (c SimConfig) Validate(tr *program.Trace, hw bool) error {
	if c.Rows <= 1 {
		return fmt.Errorf("core: need at least 2 rows, got %d", c.Rows)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("core: iterations must be positive, got %d", c.Iterations)
	}
	if c.ShiftStep < 0 {
		return fmt.Errorf("core: shift step must be non-negative (0 = one byte), got %d", c.ShiftStep)
	}
	arch := c.Rows
	if hw {
		arch--
	}
	if tr.LaneBits > arch {
		return fmt.Errorf("core: trace needs %d bit addresses, only %d available (rows=%d, hw=%v)",
			tr.LaneBits, arch, c.Rows, hw)
	}
	return nil
}

// WriteDist is an accumulated per-cell write-count distribution over a
// whole simulation — the quantity behind the paper's heatmaps (Figs.
// 14–16) and lifetime estimates.
type WriteDist struct {
	Rows, Lanes int
	// Counts is indexed [row*Lanes+lane].
	Counts []uint64
	// Iterations the distribution was accumulated over.
	Iterations int
	// StepsPerIteration is the benchmark's sequential latency (Eq. 4's
	// Application Latency in device steps).
	StepsPerIteration int

	// release, when non-nil, returns Counts to the arena of the WearPlan
	// that produced this distribution (see WriteDist.Release).
	release func([]uint64)
}

// NewWriteDist allocates a zeroed distribution.
func NewWriteDist(rows, lanes int) *WriteDist {
	return &WriteDist{Rows: rows, Lanes: lanes, Counts: make([]uint64, rows*lanes)}
}

// Release hands the distribution's counts buffer back to the arena of
// the WearPlan that produced it, making the buffer available to the next
// simulation against that plan. After Release the distribution must not
// be read again — Counts is nil. Calling Release on a distribution that
// did not come from a plan (or twice) is a safe no-op; it is always
// optional, as an unreleased buffer is simply collected by the GC.
func (d *WriteDist) Release() {
	if d == nil || d.release == nil || d.Counts == nil {
		return
	}
	rel, buf := d.release, d.Counts
	d.release, d.Counts = nil, nil
	rel(buf)
}

// At returns the write count of cell (row, lane).
func (d *WriteDist) At(row, lane int) uint64 { return d.Counts[row*d.Lanes+lane] }

// Max returns the hottest cell's count — Eq. 4's max(WriteCount).
func (d *WriteDist) Max() uint64 {
	var m uint64
	for _, c := range d.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Total sums all cell counts.
func (d *WriteDist) Total() uint64 {
	var t uint64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// MaxPerIteration returns the hottest cell's writes per benchmark
// iteration. A distribution with no recorded iterations (a fresh
// NewWriteDist, or a zero-iteration file read back through traceio)
// reports 0 rather than +Inf/NaN.
func (d *WriteDist) MaxPerIteration() float64 {
	if d.Iterations <= 0 {
		return 0
	}
	return float64(d.Max()) / float64(d.Iterations)
}

// Equal reports whether two distributions are cell-for-cell identical
// (cross-validation of the two engines).
func (d *WriteDist) Equal(o *WriteDist) bool {
	if d.Rows != o.Rows || d.Lanes != o.Lanes {
		return false
	}
	for i := range d.Counts {
		if d.Counts[i] != o.Counts[i] {
			return false
		}
	}
	return true
}

// Simulate accumulates the write distribution of running tr for
// cfg.Iterations under one load-balancing configuration, using the
// factorized fast engine. It builds a fresh WearPlan per call; callers
// simulating several strategies over the same trace (a sweep) should
// build one plan with NewWearPlan and call its Simulate method so the
// per-benchmark precomputation is paid once.
func Simulate(tr *program.Trace, cfg SimConfig, strat StrategyConfig) (*WriteDist, error) {
	return NewWearPlan(tr, cfg.Rows, cfg.PresetOutputs).Simulate(cfg, strat)
}

// BruteForce accumulates the same distribution by executing every
// iteration on the functional array simulator under the identical mapping
// schedule. data supplies operand values (nil for all-zero). It is slow
// relative to Simulate — it computes real Boolean values — and exists to
// validate Simulate and to drive functional checks. It uses the array
// package's word-parallel runner (64 lanes per machine word);
// BruteForceReference is the cell-at-a-time variant.
func BruteForce(tr *program.Trace, cfg SimConfig, strat StrategyConfig, data array.DataFunc) (*WriteDist, *array.Runner, error) {
	return bruteForce(tr, cfg, strat, data, array.NewRunner)
}

// BruteForceReference is BruteForce on the scalar cell-at-a-time runner
// (array.NewScalarRunner). Results are bit-identical to BruteForce; it
// exists as the ground truth for the word-parallel path's identity tests
// and as the baseline its speedup is benchmarked against.
func BruteForceReference(tr *program.Trace, cfg SimConfig, strat StrategyConfig, data array.DataFunc) (*WriteDist, *array.Runner, error) {
	return bruteForce(tr, cfg, strat, data, array.NewScalarRunner)
}

func bruteForce(tr *program.Trace, cfg SimConfig, strat StrategyConfig, data array.DataFunc,
	newRunner func(*array.Array, *program.Trace, array.Mapper, array.DataFunc) (*array.Runner, error)) (*WriteDist, *array.Runner, error) {
	if err := cfg.Validate(tr, strat.Hw); err != nil {
		return nil, nil, err
	}
	arch := cfg.Rows
	var hw *mapping.HwRenamer
	if strat.Hw {
		arch--
		hw = mapping.NewHwRenamer(cfg.Rows)
	}
	sched := mapping.Schedule{
		Rows: arch, Lanes: tr.Lanes,
		Within: strat.Within, Between: strat.Between,
		Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
	}
	arr := array.New(array.Config{BitsPerLane: cfg.Rows, Lanes: tr.Lanes, PresetOutputs: cfg.PresetOutputs})
	m := array.Mapper{Within: sched.EpochWithin(0), Between: sched.EpochBetween(0), Hw: hw}
	runner, err := newRunner(arr, tr, m, data)
	if err != nil {
		return nil, nil, err
	}
	// The word-parallel runner may shard fused gate batches into word
	// blocks on arrays wide enough to amortize dispatch; the scalar
	// reference ignores the budget.
	runner.SetWorkers(cfg.Workers)

	every := cfg.recompileEvery()
	epoch := 0
	for it := 0; it < cfg.Iterations; it++ {
		if e := it / every; e != epoch {
			epoch = e
			if err := runner.Remap(sched.EpochWithin(epoch), sched.EpochBetween(epoch)); err != nil {
				return nil, nil, err
			}
		}
		runner.RunIteration()
	}

	dist := NewWriteDist(cfg.Rows, tr.Lanes)
	dist.Iterations = cfg.Iterations
	dist.StepsPerIteration = tr.Steps(cfg.PresetOutputs)
	arr.WriteCountsInto(dist.Counts)
	return dist, runner, nil
}

// LaneProfile returns the per-bit-address write and read counts that one
// iteration of the trace induces in a single lane under the as-compiled
// (identity) layout — the paper's Fig. 5. Entries are indexed by logical
// bit address, 0..LaneBits-1.
func LaneProfile(tr *program.Trace, preset bool, lane int) (writes, reads []int64) {
	writes = make([]int64, tr.LaneBits)
	reads = make([]int64, tr.LaneBits)
	for _, op := range tr.Ops {
		mask := tr.Mask(op.Mask)
		inMask := mask.Get(lane)
		switch op.Kind {
		case program.OpGate:
			if !inMask {
				continue
			}
			writes[op.Out] += int64(op.WritesPerLane(preset))
			reads[op.In0]++
			if op.Gate.Arity() == 2 {
				reads[op.In1]++
			}
		case program.OpWrite:
			if inMask {
				writes[op.Out]++
			}
		case program.OpRead:
			if inMask {
				reads[op.In0]++
			}
		case program.OpMove:
			if inMask {
				writes[op.Out]++
			}
			// The read happens in the shifted source lane: this lane
			// is read iff the destination lane it would feed,
			// lane − shift, is in the (destination) mask.
			dstLane := lane - int(op.LaneShift)
			if dstLane >= 0 && dstLane < tr.Lanes && mask.Get(dstLane) {
				reads[op.In0]++
			}
		}
	}
	return writes, reads
}
