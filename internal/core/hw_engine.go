// The bounded parallel + memoized +Hw wear engine.
//
// Epochs of a +Hw simulation are independent: the hardware renamer is
// Reset() at every recompile boundary, so the per-epoch physical-row
// histogram hist[mask][physRow] depends only on (a) the epoch's
// within-lane permutation restricted to the trace's logical rows and
// (b) the epoch length in iterations. The between-lane permutation only
// relabels columns when the histogram lands in the distribution.
//
// The engine exploits this three ways:
//
//   - Memoization: epochs are grouped by (within-permutation
//     fingerprint, length), resolved to exact permutation equality on
//     collision. Under St-within every full-length epoch shares one
//     group (one replay for the whole run); under Bs-within the rotation
//     family cycles with period archRows/gcd(step, archRows), so groups
//     recur whenever the period divides into the epoch count; Ra-within
//     epochs are (almost always) distinct. Each group is replayed once
//     and multiply-accumulated into every member epoch through that
//     epoch's own between-lane permutation.
//
//   - Closed-cycle replay: each iteration applies a fixed permutation σ
//     to the renamer state (every full-mask write is a transposition of
//     state slots sharing the free slot), so the physical row an op
//     touches at iteration t is σ^t(u) for a fixed orbit start u. A job
//     of n iterations replays exactly one iteration (recording each
//     op's u and σ itself) and reconstructs the full histogram from
//     per-op cycle counts — O(Σ_ops min(cycleLen, n)) instead of
//     O(n × ops). This is the win that makes long recompile epochs (the
//     paper's RecompileEvery=10 000 sweeps) cheap even under Ra-within,
//     where memoization cannot group anything. The analytic period of σ
//     (mapping.AnalyzeRenamerCycle) cross-checks every job's detected
//     permutation at runtime.
//
//   - Bounded parallelism: groups are sharded over a pool of
//     SimConfig.Workers goroutines. Each worker accumulates into a
//     private copy of the distribution; the copies are merged by uint64
//     addition, which is commutative and associative, so the result is
//     bit-identical to the serial engine for every worker count.
package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
	"pimendure/internal/program"
)

// wop is a flattened write-inducing op for the replay hot loop.
type wop struct {
	row  int32 // logical out row
	mask int32
	w    uint8
	full bool
}

// flattenOps projects the trace onto its write-inducing ops and
// pre-resolves each mask's lane set.
func flattenOps(tr *program.Trace, preset bool) (ops []wop, maskLanes [][]int) {
	for _, op := range tr.Ops {
		if w := op.WritesPerLane(preset); w > 0 {
			ops = append(ops, wop{
				row:  int32(op.Out),
				mask: int32(op.Mask),
				w:    uint8(w),
				full: tr.Mask(op.Mask).Full(),
			})
		}
	}
	maskLanes = make([][]int, len(tr.Masks))
	for i, m := range tr.Masks {
		maskLanes[i] = m.Lanes()
	}
	return ops, maskLanes
}

// hwJob is one unique (within-permutation, epoch length) replay unit and
// the epochs that share its histogram.
type hwJob struct {
	epoch0  int    // representative epoch (regenerates the within perm)
	fp      uint64 // within-permutation fingerprint
	n       int    // iterations in each member epoch
	epochs  []int  // member epoch numbers (for their between perms)
	members int32  // member count (sizes the epochs subslice)
	next    int32  // next job in the same fingerprint bucket (-1 ends)
}

// planHwEpochs walks the epoch sequence once and groups epochs whose
// replays would be identical. Permutations are regenerated into gen's
// scratch on demand, so the plan holds only integers; member epoch lists
// are subslices of one flat backing array filled by a second bucketing
// pass, and fingerprint collisions chain through hwJob.next — planning
// allocates a handful of slices regardless of epoch count.
func planHwEpochs(cfg SimConfig, gen *permGen) []hwJob {
	type key struct {
		fp uint64
		n  int
	}
	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	jobs := make([]hwJob, 0, totalEpochs)
	index := make(map[key]int32, totalEpochs) // fingerprint bucket -> chain head
	jobOf := make([]int32, totalEpochs)
	for epoch := 0; epoch < totalEpochs; epoch++ {
		n := every
		if start := epoch * every; start+n > cfg.Iterations {
			n = cfg.Iterations - start
		}
		within := gen.withinAt(epoch)
		k := key{within.Fingerprint(), n}
		var jobID int32
		if head, ok := index[k]; ok {
			for cand := head; ; {
				if gen.within2At(jobs[cand].epoch0).Equal(within) {
					jobID = cand
					break
				}
				if next := jobs[cand].next; next >= 0 {
					cand = next
					continue
				}
				// True fingerprint collision: new job at the chain's end.
				jobID = int32(len(jobs))
				jobs = append(jobs, hwJob{epoch0: epoch, fp: k.fp, n: n, next: -1})
				jobs[cand].next = jobID
				break
			}
		} else {
			jobID = int32(len(jobs))
			jobs = append(jobs, hwJob{epoch0: epoch, fp: k.fp, n: n, next: -1})
			index[k] = jobID
		}
		jobs[jobID].members++
		jobOf[epoch] = jobID
	}
	// Second pass: bucket member epochs into one flat backing array, each
	// job owning a capacity-bounded subslice.
	flat := make([]int, totalEpochs)
	off := 0
	for j := range jobs {
		end := off + int(jobs[j].members)
		jobs[j].epochs = flat[off:off:end]
		off = end
	}
	for epoch, j := range jobOf {
		jobs[j].epochs = append(jobs[j].epochs, epoch)
	}
	return jobs
}

// betweenGroup is a set of epochs sharing one between-lane permutation.
type betweenGroup struct {
	epoch0 int // representative epoch (regenerates the between perm)
	count  int
	next   int32 // next group in the same fingerprint bucket (-1 ends)
}

// betweenScratch is reusable per-worker state for groupByBetween: the
// group list and the fingerprint index survive across jobs so steady-
// state grouping is allocation-free.
type betweenScratch struct {
	groups []betweenGroup
	index  map[uint64]int32 // fingerprint -> chain head
}

// groupByBetween collapses a job's member epochs by between-lane
// permutation equality (fingerprint first, exact comparison on
// collision), preserving first-seen order. The returned slice aliases
// scr's storage and is valid until the next call with the same scratch.
func groupByBetween(gen *permGen, epochs []int, scr *betweenScratch) []betweenGroup {
	if len(epochs) == 1 {
		scr.groups = append(scr.groups[:0], betweenGroup{epoch0: epochs[0], count: 1, next: -1})
		return scr.groups
	}
	if scr.index == nil {
		scr.index = make(map[uint64]int32, len(epochs))
	} else {
		clear(scr.index)
	}
	groups := scr.groups[:0]
	for _, epoch := range epochs {
		between := gen.betweenAt(epoch)
		fp := between.Fingerprint()
		var id int32
		if head, ok := scr.index[fp]; ok {
			for cand := head; ; {
				if gen.between2At(groups[cand].epoch0).Equal(between) {
					id = cand
					break
				}
				if next := groups[cand].next; next >= 0 {
					cand = next
					continue
				}
				id = int32(len(groups))
				groups = append(groups, betweenGroup{epoch0: epoch, next: -1})
				groups[cand].next = id
				break
			}
		} else {
			id = int32(len(groups))
			groups = append(groups, betweenGroup{epoch0: epoch, next: -1})
			scr.index[fp] = id
		}
		groups[id].count++
	}
	scr.groups = groups
	return groups
}

// simulateHw replays the hardware renamer exactly, once per unique
// (within-permutation, epoch length) group, sharded over the bounded
// worker pool. Within each group the replay is closed in cycle form:
// one recorded iteration plus a per-op orbit walk replaces the
// op-by-op replay of all n iterations (see the comment on
// accumulateClosedCycle).
func simulateHw(p *WearPlan, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/hw-replay")
	defer sp.End()
	lanes := p.trace.Lanes
	rows := cfg.Rows
	// Flattened ops, mask lane sets and the analytic cycle come from the
	// shared plan: the iteration period is a property of the full-mask
	// write sequence alone (software within-lane permutations only
	// conjugate the state permutation), so one trace-level analysis serves
	// every job of every strategy.
	ops, maskLanes := p.ops, p.maskLanes
	period := p.cycle.Period
	planScr := p.getScratch()
	planScr.gen.reset(sched)
	plan := sp.Child("plan")
	jobs := planHwEpochs(cfg, &planScr.gen)
	plan.End()
	// Memoization accounting: every epoch beyond a job's representative
	// is a replay the grouping saved; the closed-cycle form additionally
	// truncates each representative's replay to a single iteration.
	epochs := 0
	for _, job := range jobs {
		epochs += len(job.epochs)
	}
	obsEpochs.Add(int64(epochs))
	obsHwReplays.Add(int64(len(jobs)))
	obsHwMemoHits.Add(int64(epochs - len(jobs)))
	obsHwCycleLen.Add(int64(period))
	workers := pool.Size(cfg.workers(), len(jobs))

	// Per-worker state, reused across the jobs a worker drains and drawn
	// from the plan's arena so a warm plan replays without allocating.
	// Worker 0 accumulates straight into the final distribution; the
	// other buffers are merged below.
	scratches := make([]*engineScratch, workers)
	parts := make([][]uint64, workers)
	scratches[0] = planScr
	parts[0] = dist.Counts
	for w := 1; w < workers; w++ {
		scratches[w] = p.getScratch()
		scratches[w].gen.reset(sched)
		parts[w] = p.getCounts()
	}
	for _, s := range scratches {
		p.ensureHw(s)
	}

	pool.ForEachWorker(workers, len(jobs), func(slot, j int) {
		job := jobs[j]
		s := scratches[slot]
		replayJobHist(ops, &s.gen, job, period, rows, s.arch, s.hw, s.cyc, s.hist)
		// Multiply-accumulate the shared histogram into the member
		// epochs. Epochs whose between-lane permutations also coincide
		// (St always, Bs once its rotation cycles) collapse into a
		// single accumulation scaled by their multiplicity.
		counts := parts[slot]
		for _, g := range groupByBetween(&s.gen, job.epochs, &s.bg) {
			addHist(s.hist, maskLanes, rows, lanes, s.gen.betweenAt(g.epoch0), uint64(g.count), counts)
		}
	})

	for w := 1; w < workers; w++ {
		for i, c := range parts[w] {
			if c != 0 {
				dist.Counts[i] += c
			}
		}
		p.putCounts(parts[w])
		p.putScratch(scratches[w])
	}
	p.putScratch(planScr)
}

// replayJobHist fills hist[mask*rows+physRow] with the exact histogram of
// one member epoch of job, in closed-cycle form: one op-by-op iteration is
// replayed to record the orbit starts (the remaining n−1 iterations are
// reconstructed by accumulateClosedCycle), so the per-job work is
// O(ops × min(cycleLen, n)) regardless of epoch length. arch, hw and cyc
// are caller-owned scratch, reusable across jobs; hist is zeroed here.
// period is the analytic renamer period every job must reproduce.
func replayJobHist(ops []wop, gen *permGen, job hwJob, period, rows int,
	arch []int32, hw *mapping.HwRenamer, cyc *cycleScratch, hist []uint64) {
	sp := obs.StartSpan("core.hw.job")
	defer sp.End()
	obsHwReplayIters.Add(1)
	obsHwReplayItersSaved.Add(int64(len(job.epochs))*int64(job.n) - 1)
	for i := range hist {
		hist[i] = 0
	}
	// The within permutation is loop-invariant across the epoch's
	// iterations: resolve each op's architectural row once.
	within := gen.withinAt(job.epoch0)
	for i, op := range ops {
		arch[i] = int32(within.Apply(int(op.row)))
	}
	hw.Reset()
	// Recording pass — iteration 0. Each op's physical row in this
	// iteration is its orbit start u; the renamer then holds the
	// iteration permutation σ.
	for i, op := range ops {
		if op.full {
			cyc.starts[i] = int32(hw.RenameOnWrite(int(arch[i])))
		} else {
			cyc.starts[i] = int32(hw.Lookup(int(arch[i])))
		}
	}
	cyc.decompose(hw)
	// The job's permutation is the trace-level one conjugated by the
	// within map, so its order must match the analytic period; a
	// mismatch means the closed form would be wrong.
	if cyc.period != period {
		panic("core: +Hw job cycle period diverges from the analytic trace period")
	}
	accumulateClosedCycle(ops, cyc, uint64(job.n), rows, hist)
}

// addHist accumulates a per-(mask, physical row) histogram into a
// distribution's counts through one between-lane permutation, scaled by
// mult (the number of epochs sharing both the histogram and the
// permutation).
func addHist(hist []uint64, maskLanes [][]int, rows, lanes int, between *mapping.Perm, mult uint64, counts []uint64) {
	nMasks := len(maskLanes)
	for m := 0; m < nMasks; m++ {
		lanesOf := maskLanes[m]
		for r := 0; r < rows; r++ {
			c := hist[m*rows+r]
			if c == 0 {
				continue
			}
			c *= mult
			dst := counts[r*lanes:]
			for _, l := range lanesOf {
				dst[between.Apply(l)] += c
			}
		}
	}
}

// cycleScratch is per-worker scratch for the closed-cycle reconstruction:
// the per-op orbit starts recorded during iteration 0 and the cycle
// decomposition of the iteration permutation σ.
//
// Why this is exact: every full-mask RenameOnWrite is a transposition of
// renamer state slots (the written architectural slot and the free slot),
// so one whole iteration applies a fixed slot permutation σ to the state,
// and the state at iteration t is S_t = S_0 ∘ σ^t. The physical row op j
// touches at iteration t is the content of one fixed slot — free for
// renamed writes, the looked-up slot for the rest — under the state σ has
// partially advanced within the iteration, which is S_t(u_j) = σ^t(u_j)
// for a constant u_j (with S_0 the identity after Reset, u_j is simply
// the physical row op j touched at iteration 0). Each op therefore walks
// its own σ-orbit, one step per iteration: over n iterations it touches
// each of the L rows on that cycle ⌈(n−r)/L⌉ times (r = offset along the
// cycle). Summing those closed forms replaces the op-by-op replay of all
// n iterations — O(Σ_ops min(L, n)) instead of O(n × ops) — and, unlike
// scaling a whole-iteration period, never pays the lcm blow-up workspace
// reuse causes when σ splits into many coprime cycles.
type cycleScratch struct {
	starts []int32 // per-op orbit start u (phys row touched at iteration 0)
	orbit  []int32 // σ's cycles, concatenated
	start  []int32 // per phys row: index in orbit where its cycle begins
	length []int32 // per phys row: its cycle length
	pos    []int32 // per phys row: offset within its cycle
	seen   []bool
	period int // order of σ (lcm of cycle lengths)
}

func newCycleScratch(rows, ops int) *cycleScratch {
	return &cycleScratch{
		starts: make([]int32, ops),
		orbit:  make([]int32, rows),
		start:  make([]int32, rows),
		length: make([]int32, rows),
		pos:    make([]int32, rows),
		seen:   make([]bool, rows),
	}
}

// decompose reads the iteration permutation σ off a renamer that has run
// exactly one iteration from Reset (slot s now holds σ(s); the free slot
// is identified with the top physical row) and rebuilds the cycle index.
func (c *cycleScratch) decompose(hw *mapping.HwRenamer) {
	rows := len(c.orbit)
	for i := range c.seen {
		c.seen[i] = false
	}
	sigma := func(s int) int {
		if s == rows-1 {
			return hw.FreeRow()
		}
		return hw.Lookup(s)
	}
	c.period = 1
	idx := 0
	for s := 0; s < rows; s++ {
		if c.seen[s] {
			continue
		}
		first := idx
		for v := s; !c.seen[v]; v = sigma(v) {
			c.seen[v] = true
			c.orbit[idx] = int32(v)
			c.pos[v] = int32(idx - first)
			idx++
		}
		n := idx - first
		for i := first; i < idx; i++ {
			v := c.orbit[i]
			c.start[v] = int32(first)
			c.length[v] = int32(n)
		}
		if n > 1 {
			c.period = lcm(c.period, n)
		}
	}
}

// accumulateClosedCycle adds the exact n-iteration histogram of one epoch
// to hist[mask*rows+physRow]: op j touching orbit start u contributes its
// weight to row σ^t(u) for t = 0..n−1, which visits the L rows of u's
// cycle round-robin starting at u.
func accumulateClosedCycle(ops []wop, cyc *cycleScratch, n uint64, rows int, hist []uint64) {
	for i, op := range ops {
		u := cyc.starts[i]
		w := uint64(op.w)
		base := int(op.mask) * rows
		cs := int(cyc.start[u])
		L := uint64(cyc.length[u])
		steps := L
		if n < steps {
			steps = n
		}
		idx := int(cyc.pos[u])
		for r := uint64(0); r < steps; r++ {
			v := cyc.orbit[cs+idx]
			hist[base+int(v)] += w * ((n-1-r)/L + 1)
			idx++
			if idx == int(L) {
				idx = 0
			}
		}
	}
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
