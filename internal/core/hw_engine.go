// The bounded parallel + memoized +Hw wear engine.
//
// Epochs of a +Hw simulation are independent: the hardware renamer is
// Reset() at every recompile boundary, so the per-epoch physical-row
// histogram hist[mask][physRow] depends only on (a) the epoch's
// within-lane permutation restricted to the trace's logical rows and
// (b) the epoch length in iterations. The between-lane permutation only
// relabels columns when the histogram lands in the distribution.
//
// The engine exploits this twice:
//
//   - Memoization: epochs are grouped by (within-permutation
//     fingerprint, length), resolved to exact permutation equality on
//     collision. Under St-within every full-length epoch shares one
//     group (one replay for the whole run); under Bs-within the rotation
//     family cycles with period archRows/gcd(step, archRows), so groups
//     recur whenever the period divides into the epoch count; Ra-within
//     epochs are (almost always) distinct. Each group is replayed once
//     and multiply-accumulated into every member epoch through that
//     epoch's own between-lane permutation.
//
//   - Bounded parallelism: groups are sharded over a pool of
//     SimConfig.Workers goroutines. Each worker accumulates into a
//     private copy of the distribution; the copies are merged by uint64
//     addition, which is commutative and associative, so the result is
//     bit-identical to the serial engine for every worker count.
package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/pool"
	"pimendure/internal/program"
)

// wop is a flattened write-inducing op for the replay hot loop.
type wop struct {
	row  int32 // logical out row
	mask int32
	w    uint8
	full bool
}

// flattenOps projects the trace onto its write-inducing ops and
// pre-resolves each mask's lane set.
func flattenOps(tr *program.Trace, preset bool) (ops []wop, maskLanes [][]int) {
	for _, op := range tr.Ops {
		if w := op.WritesPerLane(preset); w > 0 {
			ops = append(ops, wop{
				row:  int32(op.Out),
				mask: int32(op.Mask),
				w:    uint8(w),
				full: tr.Mask(op.Mask).Full(),
			})
		}
	}
	maskLanes = make([][]int, len(tr.Masks))
	for i, m := range tr.Masks {
		maskLanes[i] = m.Lanes()
	}
	return ops, maskLanes
}

// hwJob is one unique (within-permutation, epoch length) replay unit and
// the epochs that share its histogram.
type hwJob struct {
	epoch0 int    // representative epoch (regenerates the within perm)
	fp     uint64 // within-permutation fingerprint
	n      int    // iterations in each member epoch
	epochs []int  // member epoch numbers (for their between perms)
}

// planHwEpochs walks the epoch sequence once and groups epochs whose
// replays would be identical. Permutations are regenerated from the
// schedule on demand, so the plan holds only integers.
func planHwEpochs(cfg SimConfig, sched mapping.Schedule) []hwJob {
	type key struct {
		fp uint64
		n  int
	}
	var jobs []hwJob
	index := map[key][]int{} // fingerprint bucket -> job ids (collision list)
	every := cfg.recompileEvery()
	for start, epoch := 0, 0; start < cfg.Iterations; start, epoch = start+every, epoch+1 {
		n := every
		if start+n > cfg.Iterations {
			n = cfg.Iterations - start
		}
		within := sched.EpochWithin(epoch)
		k := key{within.Fingerprint(), n}
		jobID := -1
		for _, cand := range index[k] {
			if sched.EpochWithin(jobs[cand].epoch0).Equal(within) {
				jobID = cand
				break
			}
		}
		if jobID < 0 {
			jobID = len(jobs)
			jobs = append(jobs, hwJob{epoch0: epoch, fp: k.fp, n: n})
			index[k] = append(index[k], jobID)
		}
		jobs[jobID].epochs = append(jobs[jobID].epochs, epoch)
	}
	return jobs
}

// betweenGroup is a set of epochs sharing one between-lane permutation.
type betweenGroup struct {
	epoch0 int // representative epoch (regenerates the between perm)
	count  int
}

// groupByBetween collapses a job's member epochs by between-lane
// permutation equality (fingerprint first, exact comparison on
// collision), preserving first-seen order.
func groupByBetween(sched mapping.Schedule, epochs []int) []betweenGroup {
	if len(epochs) == 1 {
		return []betweenGroup{{epoch0: epochs[0], count: 1}}
	}
	var groups []betweenGroup
	index := map[uint64][]int{} // fingerprint -> group ids
	for _, epoch := range epochs {
		between := sched.EpochBetween(epoch)
		fp := between.Fingerprint()
		id := -1
		for _, cand := range index[fp] {
			if sched.EpochBetween(groups[cand].epoch0).Equal(between) {
				id = cand
				break
			}
		}
		if id < 0 {
			id = len(groups)
			groups = append(groups, betweenGroup{epoch0: epoch})
			index[fp] = append(index[fp], id)
		}
		groups[id].count++
	}
	return groups
}

// simulateHw replays the hardware renamer exactly, once per unique
// (within-permutation, epoch length) group, sharded over the bounded
// worker pool.
func simulateHw(tr *program.Trace, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	sp := obs.StartSpan("core.simulate/hw-replay")
	defer sp.End()
	lanes := tr.Lanes
	rows := cfg.Rows
	ops, maskLanes := flattenOps(tr, cfg.PresetOutputs)
	nMasks := len(tr.Masks)
	plan := sp.Child("plan")
	jobs := planHwEpochs(cfg, sched)
	plan.End()
	// Memoization accounting: every epoch beyond a job's representative
	// is a replay the grouping saved.
	epochs := 0
	for _, job := range jobs {
		epochs += len(job.epochs)
	}
	obsEpochs.Add(int64(epochs))
	obsHwReplays.Add(int64(len(jobs)))
	obsHwMemoHits.Add(int64(epochs - len(jobs)))
	workers := pool.Size(cfg.workers(), len(jobs))

	// Per-worker state, reused across the jobs a worker drains. Worker 0
	// accumulates straight into the final distribution; the other
	// buffers are merged below.
	parts := make([][]uint64, workers)
	parts[0] = dist.Counts
	hists := make([][]uint64, workers)   // hist[mask*rows+physRow], zeroed per job
	archRows := make([][]int32, workers) // per-op within-mapped row, constant per job
	renamers := make([]*mapping.HwRenamer, workers)
	for w := 0; w < workers; w++ {
		if w > 0 {
			parts[w] = make([]uint64, len(dist.Counts))
		}
		hists[w] = make([]uint64, nMasks*rows)
		archRows[w] = make([]int32, len(ops))
		renamers[w] = mapping.NewHwRenamer(rows)
	}

	pool.ForEachWorker(workers, len(jobs), func(slot, j int) {
		job := jobs[j]
		obsHwReplayIters.Add(int64(job.n))
		hist := hists[slot]
		for i := range hist {
			hist[i] = 0
		}
		// The within permutation is loop-invariant across the epoch's
		// iterations: resolve each op's architectural row once.
		within := sched.EpochWithin(job.epoch0)
		arch := archRows[slot]
		for i, op := range ops {
			arch[i] = int32(within.Apply(int(op.row)))
		}
		hw := renamers[slot]
		hw.Reset()
		for it := 0; it < job.n; it++ {
			for i, op := range ops {
				var phys int
				if op.full {
					phys = hw.RenameOnWrite(int(arch[i]))
				} else {
					phys = hw.Lookup(int(arch[i]))
				}
				hist[int(op.mask)*rows+phys] += uint64(op.w)
			}
		}
		// Multiply-accumulate the shared histogram into the member
		// epochs. Epochs whose between-lane permutations also coincide
		// (St always, Bs once its rotation cycles) collapse into a
		// single accumulation scaled by their multiplicity.
		counts := parts[slot]
		for _, g := range groupByBetween(sched, job.epochs) {
			between := sched.EpochBetween(g.epoch0)
			mult := uint64(g.count)
			for m := 0; m < nMasks; m++ {
				lanesOf := maskLanes[m]
				for r := 0; r < rows; r++ {
					c := hist[m*rows+r]
					if c == 0 {
						continue
					}
					c *= mult
					dst := counts[r*lanes:]
					for _, l := range lanesOf {
						dst[between.Apply(l)] += c
					}
				}
			}
		}
	})

	for w := 1; w < workers; w++ {
		for i, c := range parts[w] {
			if c != 0 {
				dist.Counts[i] += c
			}
		}
	}
}
