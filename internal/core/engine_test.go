package core_test

import (
	"bytes"
	"runtime"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/mapping"
	"pimendure/internal/synth"
	"pimendure/internal/traceio"
	"pimendure/internal/workloads"
)

// The parallel + memoized engine must stay bit-identical to both ground
// truths — the retained pre-memoization serial engine and brute-force
// functional execution — for all 18 configurations, including an uneven
// final epoch (Iterations % RecompileEvery != 0).
func TestParallelEngineMatchesReferenceAndBruteForce(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	sim := core.SimConfig{
		Rows:           96,
		PresetOutputs:  true,
		Iterations:     23,
		RecompileEvery: 7, // 23 % 7 != 0: final epoch is short
		Seed:           42,
	}
	for _, workers := range []int{1, 4} {
		sim.Workers = workers
		for _, strat := range core.AllConfigs() {
			fast, err := core.Simulate(tr, sim, strat)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat.Name(), workers, err)
			}
			ref, err := core.SimulateReference(tr, sim, strat)
			if err != nil {
				t.Fatalf("%s reference: %v", strat.Name(), err)
			}
			if !fast.Equal(ref) {
				t.Errorf("%s workers=%d: parallel engine diverges from serial reference (fast max %d total %d, ref max %d total %d)",
					strat.Name(), workers, fast.Max(), fast.Total(), ref.Max(), ref.Total())
			}
			brute, _, err := core.BruteForce(tr, sim, strat, nil)
			if err != nil {
				t.Fatalf("%s brute force: %v", strat.Name(), err)
			}
			if !fast.Equal(brute) {
				t.Errorf("%s workers=%d: parallel engine diverges from brute force", strat.Name(), workers)
			}
		}
	}
}

// The distribution must be bit-identical across worker counts; the merge
// is commutative uint64 addition, so scheduling must not leak into the
// result.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, strat := range core.AllConfigs() {
		var first *core.WriteDist
		for _, w := range counts {
			sim := core.SimConfig{
				Rows: 96, PresetOutputs: true,
				Iterations: 37, RecompileEvery: 5, Seed: 7,
				Workers: w,
			}
			d, err := core.Simulate(tr, sim, strat)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat.Name(), w, err)
			}
			if first == nil {
				first = d
			} else if !d.Equal(first) {
				t.Errorf("%s: Workers=%d produced a different distribution than Workers=%d",
					strat.Name(), w, counts[0])
			}
		}
	}
}

// Epoch memoization groups identical within-lane permutations: a Bs
// rotation whose period divides the epoch count must recur, and the
// grouped replay must still match the exhaustive reference.
func TestEngineMemoizesCyclicShifts(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 65, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	// Hw leaves 64 architectural rows; step 8 cycles with period 8, so 24
	// epochs hit each unique rotation 3 times.
	sim := core.SimConfig{
		Rows: 65, PresetOutputs: true,
		Iterations: 24, RecompileEvery: 1, Seed: 3,
	}
	strat := core.StrategyConfig{Within: mapping.ByteShift, Between: mapping.Random, Hw: true}
	fast, err := core.Simulate(tr, sim, strat)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.SimulateReference(tr, sim, strat)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(ref) {
		t.Error("memoized cyclic-shift run diverges from reference")
	}
}

// MaxPerIteration on a distribution with no iterations must report 0,
// not +Inf or NaN — reachable via NewWriteDist and via zero-iteration
// traceio round-trips.
func TestMaxPerIterationZeroIterations(t *testing.T) {
	d := core.NewWriteDist(4, 4)
	if got := d.MaxPerIteration(); got != 0 {
		t.Errorf("fresh dist MaxPerIteration = %v, want 0", got)
	}
	d.Counts[3] = 12 // counts but still zero iterations
	if got := d.MaxPerIteration(); got != 0 {
		t.Errorf("zero-iteration dist MaxPerIteration = %v, want 0", got)
	}
	d.Iterations = 4
	if got := d.MaxPerIteration(); got != 3 {
		t.Errorf("MaxPerIteration = %v, want 3", got)
	}
}

// SoftwareConfigs must return a copy: appending to it must not corrupt
// the +Hw entries of AllConfigs' backing array.
func TestSoftwareConfigsIsCopy(t *testing.T) {
	sw := core.SoftwareConfigs()
	if len(sw) != 9 {
		t.Fatalf("len = %d, want 9", len(sw))
	}
	sw = append(sw, core.StrategyConfig{Hw: true, Within: mapping.Random, Between: mapping.Random})
	if !sw[9].Hw {
		t.Error("append lost")
	}
	for i, c := range core.SoftwareConfigs() {
		if c.Hw {
			t.Fatalf("config %d gained Hw after caller append", i)
		}
	}
	all := core.AllConfigs()
	if !all[9].Hw {
		t.Error("AllConfigs()[9] lost its Hw flag: SoftwareConfigs aliases the backing array")
	}
}

// Negative shift steps rotate backwards, diverging from the paper's Bs
// definition; Validate must reject them.
func TestNegativeShiftStepRejected(t *testing.T) {
	tr := smallBenches(t)["mult"]
	sim := core.SimConfig{Rows: 96, Iterations: 5, ShiftStep: -8}
	if _, err := core.Simulate(tr, sim, core.Static); err == nil {
		t.Error("negative ShiftStep accepted by Simulate")
	}
	if _, _, err := core.BruteForce(tr, sim, core.Static, nil); err == nil {
		t.Error("negative ShiftStep accepted by BruteForce")
	}
	sim.ShiftStep = 8
	if _, err := core.Simulate(tr, sim, core.Static); err != nil {
		t.Errorf("positive ShiftStep rejected: %v", err)
	}
}

// A zero-iteration distribution that round-trips through traceio must
// keep reporting a finite MaxPerIteration.
func TestZeroIterationDistRoundTrip(t *testing.T) {
	d := core.NewWriteDist(3, 5)
	d.Counts[7] = 9
	var buf bytes.Buffer
	if err := traceio.WriteDist(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := traceio.ReadDist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.MaxPerIteration(); got != 0 {
		t.Errorf("round-tripped zero-iteration dist MaxPerIteration = %v, want 0", got)
	}
}
