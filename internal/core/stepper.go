// The incremental, epoch-granular wear engine.
//
// Simulate needs the whole iteration count up front; a scheduler that
// routes work by *live* wear (internal/system's wear-aware bank policy)
// needs the opposite — accumulate one recompile epoch at a time and ask
// "how hot is the hottest cell right now?" between epochs. Stepper is
// that engine: a serial walk over a shared WearPlan that reuses the same
// accumulation primitives as the batch engines, so a stepped run is
// bit-identical to Simulate (and SimulateReference) over the same epoch
// sequence.
//
//   - Software path: each Step is one permutation-pair accumulation
//     (accumulateSwJob) with the rank-1 full-mask part kept as pending
//     per-row weights until Finish — exactly the sampled software
//     engine's discipline.
//   - +Hw path: each Step replays one epoch in closed-cycle form
//     (replayJobHist) and lands the histogram through the epoch's
//     between-lane permutation. Consecutive epochs sharing a within-lane
//     permutation (St always, Bs at its rotation period) reuse the last
//     replayed histogram — a one-entry memo of the batch engine's
//     grouping.
//
// MaxWrites is O(1): the stepper maintains a per-physical-row running
// maximum as it accumulates. Cell counts only grow and the pending
// full-mask weight adds uniformly across a row, so the row maximum is
// (max CSR/hist cell in the row) + (pending row weight) — both tracked
// incrementally, no distribution scan per query.
package core

import (
	"fmt"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
)

// Stepper accumulates a wear simulation one recompile epoch at a time
// over a shared WearPlan, exposing the live hottest-cell count between
// epochs. Create one with WearPlan.NewStepper, advance it with Step —
// epoch e of the equivalent batch run is the (e+1)-th Step call — and
// close it with Finish. A Stepper is serial and not safe for concurrent
// use; run independent Steppers (one per bank) concurrently instead —
// the plan itself is immutable and shared.
type Stepper struct {
	plan  *WearPlan
	strat StrategyConfig
	sched mapping.Schedule
	dist  *WriteDist

	epoch int // next epoch index
	iters int // iterations accumulated so far

	// scr is the stepper's arena-drawn working state, held from NewStepper
	// until Finish returns it to the plan: the pending software row
	// weights (scr.rowW, expanded into whole rows by Finish), the +Hw
	// replay scratch and memoized histogram (scr.hist), and the live
	// per-physical-row maxima (scr.rowMax — hottest materialized cell per
	// row: CSR adds and +Hw histogram landings; excludes the pending rowW,
	// which Step folds in when it updates curMax).
	scr *engineScratch

	// One-entry +Hw histogram memo key: scr.hist holds the histogram of
	// epoch histEpoch run for histN iterations (-1 = no entry).
	histEpoch int
	histN     int

	selfEpoch [1]int // reusable single-epoch member list for replay jobs
	curMax    uint64
}

// NewStepper prepares an incremental simulation of one load-balancing
// configuration against the plan. Only cfg's Rows, PresetOutputs, Seed
// and ShiftStep are consulted: the iteration count is whatever the Step
// calls add up to, and Workers/Sampler/Iterations are ignored (the
// stepper is serial; sample by reading MaxWrites between steps).
func (p *WearPlan) NewStepper(cfg SimConfig, strat StrategyConfig) (*Stepper, error) {
	probe := cfg
	probe.Iterations = 1 // Validate demands a positive count; steps supply the real one
	if err := probe.Validate(p.trace, strat.Hw); err != nil {
		return nil, err
	}
	if err := p.check(p.trace, probe); err != nil {
		return nil, err
	}
	tr := p.trace
	arch := cfg.Rows
	if strat.Hw {
		arch--
	}
	s := &Stepper{
		plan:  p,
		strat: strat,
		sched: mapping.Schedule{
			Rows: arch, Lanes: tr.Lanes,
			Within: strat.Within, Between: strat.Between,
			Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
		},
		dist:      p.newDist(),
		histEpoch: -1,
	}
	s.dist.StepsPerIteration = p.stats.Steps
	s.scr = p.getScratch()
	s.scr.gen.reset(s.sched)
	p.ensureRowMax(s.scr)
	if strat.Hw {
		p.ensureHw(s.scr)
		obsHwCycleLen.Add(int64(p.cycle.Period))
	} else {
		p.ensureRowW(s.scr)
	}
	return s, nil
}

// Epoch returns the next epoch index — the number of Step calls so far.
func (s *Stepper) Epoch() int { return s.epoch }

// Iterations returns the iterations accumulated so far.
func (s *Stepper) Iterations() int { return s.iters }

// MaxWrites returns the hottest cell's accumulated write count — Eq. 4's
// max(WriteCount) over the iterations stepped so far. O(1): the maximum
// is maintained during accumulation.
func (s *Stepper) MaxWrites() uint64 { return s.curMax }

// Step accumulates the next recompile epoch with the given iteration
// count (an equivalent batch run's epoch lengths: RecompileEvery per
// epoch, short final epoch allowed). Calls with iters ≤ 0 are no-ops
// that do not advance the epoch index.
func (s *Stepper) Step(iters int) {
	if iters <= 0 {
		return
	}
	if s.strat.Hw {
		s.stepHw(iters)
	} else {
		s.stepSoftware(iters)
	}
	obsEpochs.Add(1)
	s.epoch++
	s.iters += iters
}

// stepSoftware lands one epoch through the shared software accumulation
// primitive, then refreshes the per-row maxima the epoch touched.
func (s *Stepper) stepSoftware(iters int) {
	p := s.plan
	job := swJob{epoch0: s.epoch, iters: uint64(iters), epochs: 1, next: -1}
	rowW := s.scr.rowW
	accumulateSwJob(p, &s.scr.gen, job, rowW, nil, s.dist.Counts)
	obsSwGroups.Add(1)

	lanes := p.trace.Lanes
	within := s.scr.gen.withinAt(s.epoch)
	// CSR rows gained materialized cell writes: rescan each touched row.
	for _, r := range p.csrRows {
		pr := within.Apply(int(r))
		row := s.dist.Counts[pr*lanes : pr*lanes+lanes]
		var m uint64
		for _, c := range row {
			if c > m {
				m = c
			}
		}
		s.scr.rowMax[pr] = m
		if cand := m + rowW[pr]; cand > s.curMax {
			s.curMax = cand
		}
	}
	// Full-mask rows only grew their pending uniform weight.
	for _, r := range p.fullRowIdx {
		pr := within.Apply(int(r))
		if cand := s.scr.rowMax[pr] + rowW[pr]; cand > s.curMax {
			s.curMax = cand
		}
	}
}

// stepHw replays (or reuses) the epoch's closed-cycle histogram and
// lands it through the epoch's between-lane permutation, tracking row
// maxima cell by cell.
func (s *Stepper) stepHw(iters int) {
	p := s.plan
	within := s.scr.gen.withinAt(s.epoch)
	if s.histEpoch >= 0 && s.histN == iters && s.scr.gen.within2At(s.histEpoch).Equal(within) {
		// One-entry memo hit: same within permutation and length means the
		// identical histogram (the renamer resets every epoch).
		obsHwMemoHits.Add(1)
		obsHwReplayItersSaved.Add(int64(iters))
	} else {
		s.selfEpoch[0] = s.epoch
		job := hwJob{epoch0: s.epoch, fp: within.Fingerprint(), n: iters, epochs: s.selfEpoch[:], next: -1}
		replayJobHist(p.ops, &s.scr.gen, job, p.cycle.Period, s.dist.Rows, s.scr.arch, s.scr.hw, s.scr.cyc, s.scr.hist)
		obsHwReplays.Add(1)
		s.histEpoch, s.histN = s.epoch, iters
	}

	rows, lanes := s.dist.Rows, s.dist.Lanes
	between := s.scr.gen.betweenAt(s.epoch)
	counts := s.dist.Counts
	for m := range p.maskLanes {
		lanesOf := p.maskLanes[m]
		rowMax := s.scr.rowMax
		for r := 0; r < rows; r++ {
			c := s.scr.hist[m*rows+r]
			if c == 0 {
				continue
			}
			dst := counts[r*lanes:]
			rm := rowMax[r]
			for _, l := range lanesOf {
				bl := between.Apply(l)
				v := dst[bl] + c
				dst[bl] = v
				if v > rm {
					rm = v
				}
			}
			rowMax[r] = rm
			if rm > s.curMax {
				s.curMax = rm
			}
		}
	}
}

// Finish completes the accumulation (expanding the pending full-mask row
// weights, on the software path), returns the stepper's working scratch
// to the plan's arena, and returns the distribution — cell-for-cell
// identical to Simulate over the same epoch sequence. The stepper must
// not be stepped again after Finish.
func (s *Stepper) Finish() (*WriteDist, error) {
	if s.iters <= 0 {
		return nil, fmt.Errorf("core: stepper finished with no iterations stepped")
	}
	if s.scr != nil {
		if !s.strat.Hw {
			expandRowWeights(s.scr.rowW, s.dist.Lanes, s.dist.Counts)
		}
		s.plan.putScratch(s.scr)
		s.scr = nil
	}
	s.dist.Iterations = s.iters
	if obs.Enabled() {
		obsWrites.Add(int64(s.dist.Total()))
	}
	return s.dist, nil
}
