// The incremental, epoch-granular wear engine.
//
// Simulate needs the whole iteration count up front; a scheduler that
// routes work by *live* wear (internal/system's wear-aware bank policy)
// needs the opposite — accumulate one recompile epoch at a time and ask
// "how hot is the hottest cell right now?" between epochs. Stepper is
// that engine: a serial walk over a shared WearPlan that reuses the same
// accumulation primitives as the batch engines, so a stepped run is
// bit-identical to Simulate (and SimulateReference) over the same epoch
// sequence.
//
//   - Software path: each Step is one permutation-pair accumulation
//     (accumulateSwJob) with the rank-1 full-mask part kept as pending
//     per-row weights until Finish — exactly the sampled software
//     engine's discipline.
//   - +Hw path: each Step replays one epoch in closed-cycle form
//     (replayJobHist) and lands the histogram through the epoch's
//     between-lane permutation. Consecutive epochs sharing a within-lane
//     permutation (St always, Bs at its rotation period) reuse the last
//     replayed histogram — a one-entry memo of the batch engine's
//     grouping.
//
// MaxWrites is O(1): the stepper maintains a per-physical-row running
// maximum as it accumulates. Cell counts only grow and the pending
// full-mask weight adds uniformly across a row, so the row maximum is
// (max CSR/hist cell in the row) + (pending row weight) — both tracked
// incrementally, no distribution scan per query.
package core

import (
	"fmt"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
)

// Stepper accumulates a wear simulation one recompile epoch at a time
// over a shared WearPlan, exposing the live hottest-cell count between
// epochs. Create one with WearPlan.NewStepper, advance it with Step —
// epoch e of the equivalent batch run is the (e+1)-th Step call — and
// close it with Finish. A Stepper is serial and not safe for concurrent
// use; run independent Steppers (one per bank) concurrently instead —
// the plan itself is immutable and shared.
type Stepper struct {
	plan  *WearPlan
	strat StrategyConfig
	sched mapping.Schedule
	dist  *WriteDist

	epoch int // next epoch index
	iters int // iterations accumulated so far

	// Software path: pending between-invariant full-mask row weights,
	// expanded into whole rows by Finish.
	rowW []uint64

	// +Hw path: per-worker-style scratch plus a one-entry histogram memo
	// keyed by (within permutation of histEpoch, histN iterations).
	arch      []int32
	hw        *mapping.HwRenamer
	cyc       *cycleScratch
	hist      []uint64
	histEpoch int
	histN     int

	// Live maximum tracking: rowMax is the hottest materialized cell per
	// physical row (CSR adds and +Hw histogram landings; excludes the
	// pending rowW, which Step folds in when it updates curMax).
	rowMax []uint64
	curMax uint64
}

// NewStepper prepares an incremental simulation of one load-balancing
// configuration against the plan. Only cfg's Rows, PresetOutputs, Seed
// and ShiftStep are consulted: the iteration count is whatever the Step
// calls add up to, and Workers/Sampler/Iterations are ignored (the
// stepper is serial; sample by reading MaxWrites between steps).
func (p *WearPlan) NewStepper(cfg SimConfig, strat StrategyConfig) (*Stepper, error) {
	probe := cfg
	probe.Iterations = 1 // Validate demands a positive count; steps supply the real one
	if err := probe.Validate(p.trace, strat.Hw); err != nil {
		return nil, err
	}
	if err := p.check(p.trace, probe); err != nil {
		return nil, err
	}
	tr := p.trace
	arch := cfg.Rows
	if strat.Hw {
		arch--
	}
	s := &Stepper{
		plan:  p,
		strat: strat,
		sched: mapping.Schedule{
			Rows: arch, Lanes: tr.Lanes,
			Within: strat.Within, Between: strat.Between,
			Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
		},
		dist:      NewWriteDist(cfg.Rows, tr.Lanes),
		rowMax:    make([]uint64, cfg.Rows),
		histEpoch: -1,
	}
	s.dist.StepsPerIteration = p.stats.Steps
	if strat.Hw {
		s.arch = make([]int32, len(p.ops))
		s.hw = mapping.NewHwRenamer(cfg.Rows)
		s.cyc = newCycleScratch(cfg.Rows, len(p.ops))
		s.hist = make([]uint64, len(p.maskLanes)*cfg.Rows)
		obsHwCycleLen.Add(int64(p.cycle.Period))
	} else {
		s.rowW = make([]uint64, cfg.Rows)
	}
	return s, nil
}

// Epoch returns the next epoch index — the number of Step calls so far.
func (s *Stepper) Epoch() int { return s.epoch }

// Iterations returns the iterations accumulated so far.
func (s *Stepper) Iterations() int { return s.iters }

// MaxWrites returns the hottest cell's accumulated write count — Eq. 4's
// max(WriteCount) over the iterations stepped so far. O(1): the maximum
// is maintained during accumulation.
func (s *Stepper) MaxWrites() uint64 { return s.curMax }

// Step accumulates the next recompile epoch with the given iteration
// count (an equivalent batch run's epoch lengths: RecompileEvery per
// epoch, short final epoch allowed). Calls with iters ≤ 0 are no-ops
// that do not advance the epoch index.
func (s *Stepper) Step(iters int) {
	if iters <= 0 {
		return
	}
	if s.strat.Hw {
		s.stepHw(iters)
	} else {
		s.stepSoftware(iters)
	}
	obsEpochs.Add(1)
	s.epoch++
	s.iters += iters
}

// stepSoftware lands one epoch through the shared software accumulation
// primitive, then refreshes the per-row maxima the epoch touched.
func (s *Stepper) stepSoftware(iters int) {
	p := s.plan
	job := swJob{epoch0: s.epoch, iters: uint64(iters), epochs: 1}
	accumulateSwJob(p, s.sched, job, s.rowW, nil, s.dist.Counts)
	obsSwGroups.Add(1)

	lanes := p.trace.Lanes
	within := s.sched.EpochWithin(s.epoch)
	// CSR rows gained materialized cell writes: rescan each touched row.
	for _, r := range p.csrRows {
		pr := within.Apply(int(r))
		row := s.dist.Counts[pr*lanes : pr*lanes+lanes]
		var m uint64
		for _, c := range row {
			if c > m {
				m = c
			}
		}
		s.rowMax[pr] = m
		if cand := m + s.rowW[pr]; cand > s.curMax {
			s.curMax = cand
		}
	}
	// Full-mask rows only grew their pending uniform weight.
	for _, r := range p.fullRowIdx {
		pr := within.Apply(int(r))
		if cand := s.rowMax[pr] + s.rowW[pr]; cand > s.curMax {
			s.curMax = cand
		}
	}
}

// stepHw replays (or reuses) the epoch's closed-cycle histogram and
// lands it through the epoch's between-lane permutation, tracking row
// maxima cell by cell.
func (s *Stepper) stepHw(iters int) {
	p := s.plan
	within := s.sched.EpochWithin(s.epoch)
	if s.histEpoch >= 0 && s.histN == iters && s.sched.EpochWithin(s.histEpoch).Equal(within) {
		// One-entry memo hit: same within permutation and length means the
		// identical histogram (the renamer resets every epoch).
		obsHwMemoHits.Add(1)
		obsHwReplayItersSaved.Add(int64(iters))
	} else {
		job := hwJob{epoch0: s.epoch, fp: within.Fingerprint(), n: iters, epochs: []int{s.epoch}}
		replayJobHist(p.ops, s.sched, job, p.cycle.Period, s.dist.Rows, s.arch, s.hw, s.cyc, s.hist)
		obsHwReplays.Add(1)
		s.histEpoch, s.histN = s.epoch, iters
	}

	rows, lanes := s.dist.Rows, s.dist.Lanes
	between := s.sched.EpochBetween(s.epoch)
	counts := s.dist.Counts
	for m := range p.maskLanes {
		lanesOf := p.maskLanes[m]
		for r := 0; r < rows; r++ {
			c := s.hist[m*rows+r]
			if c == 0 {
				continue
			}
			dst := counts[r*lanes:]
			rm := s.rowMax[r]
			for _, l := range lanesOf {
				bl := between.Apply(l)
				v := dst[bl] + c
				dst[bl] = v
				if v > rm {
					rm = v
				}
			}
			s.rowMax[r] = rm
			if rm > s.curMax {
				s.curMax = rm
			}
		}
	}
}

// Finish completes the accumulation (expanding the pending full-mask row
// weights, on the software path) and returns the distribution — cell-
// for-cell identical to Simulate over the same epoch sequence. The
// stepper must not be stepped again after Finish.
func (s *Stepper) Finish() (*WriteDist, error) {
	if s.iters <= 0 {
		return nil, fmt.Errorf("core: stepper finished with no iterations stepped")
	}
	if s.rowW != nil {
		expandRowWeights(s.rowW, s.dist.Lanes, s.dist.Counts)
		s.rowW = nil
	}
	s.dist.Iterations = s.iters
	if obs.Enabled() {
		obsWrites.Add(int64(s.dist.Total()))
	}
	return s.dist, nil
}
