package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/program"
)

// SimulateReference is the pre-memoization serial wear engine: every
// epoch of a +Hw run replays every op of every iteration, with no epoch
// grouping and no worker pool. It is retained as the ground truth the
// parallel engine must match bit for bit (alongside BruteForce) and as
// the baseline for the speedup benchmarks; production callers should use
// Simulate.
func SimulateReference(tr *program.Trace, cfg SimConfig, strat StrategyConfig) (*WriteDist, error) {
	if err := cfg.Validate(tr, strat.Hw); err != nil {
		return nil, err
	}
	dist := NewWriteDist(cfg.Rows, tr.Lanes)
	dist.Iterations = cfg.Iterations
	dist.StepsPerIteration = tr.Steps(cfg.PresetOutputs)

	arch := cfg.Rows
	if strat.Hw {
		arch--
	}
	sched := mapping.Schedule{
		Rows: arch, Lanes: tr.Lanes,
		Within: strat.Within, Between: strat.Between,
		Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
	}
	if cfg.Sampler != nil {
		cfg.Sampler.bind(cfg.Iterations)
	}
	if strat.Hw {
		simulateHwReference(tr, cfg, sched, dist)
	} else {
		simulateSoftwareReference(tr, cfg, sched, dist)
	}
	return dist, nil
}

// simulateSoftwareReference is the pre-plan software engine: a dense
// per-epoch accumulation pass with no epoch grouping, no full-mask
// factorization and no worker pool. Each epoch adds epochLen·M0 permuted
// by that epoch's maps, rebuilding M0 from the trace on every call.
func simulateSoftwareReference(tr *program.Trace, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	lanes := tr.Lanes
	// One-iteration logical write matrix, factorized by mask then
	// materialized once over the trace's (small) logical row footprint.
	m0 := make([]uint32, tr.LaneBits*lanes)
	for _, op := range tr.Ops {
		w := op.WritesPerLane(cfg.PresetOutputs)
		if w == 0 {
			continue
		}
		row := int(op.Out)
		tr.Mask(op.Mask).ForEach(func(l int) {
			m0[row*lanes+l] += uint32(w)
		})
	}
	// Rows with any writes, to skip cold rows in the per-epoch pass.
	var hotRows []int
	for r := 0; r < tr.LaneBits; r++ {
		hot := false
		for l := 0; l < lanes; l++ {
			if m0[r*lanes+l] != 0 {
				hot = true
				break
			}
		}
		if hot {
			hotRows = append(hotRows, r)
		}
	}

	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	for start, epoch := 0, 0; start < cfg.Iterations; start, epoch = start+every, epoch+1 {
		n := every
		if start+n > cfg.Iterations {
			n = cfg.Iterations - start
		}
		within := sched.EpochWithin(epoch)
		between := sched.EpochBetween(epoch)
		for _, r := range hotRows {
			pr := within.Apply(r)
			src := m0[r*lanes:]
			dst := dist.Counts[pr*lanes:]
			for l := 0; l < lanes; l++ {
				if c := src[l]; c != 0 {
					dst[between.Apply(l)] += uint64(c) * uint64(n)
				}
			}
		}
		if cfg.Sampler != nil && cfg.Sampler.due(epoch, totalEpochs-1) {
			cfg.Sampler.Sample(epoch, start+n, dist)
		}
	}
}

// simulateHwReference replays the hardware renamer exactly, epoch by
// epoch, with a fresh full replay per epoch.
func simulateHwReference(tr *program.Trace, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	lanes := tr.Lanes
	ops, maskLanes := flattenOps(tr, cfg.PresetOutputs)

	hw := mapping.NewHwRenamer(cfg.Rows)
	// hist[mask][physRow] accumulated over one epoch.
	hist := make([][]uint64, len(tr.Masks))
	for i := range hist {
		hist[i] = make([]uint64, cfg.Rows)
	}

	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	for start, epoch := 0, 0; start < cfg.Iterations; start, epoch = start+every, epoch+1 {
		n := every
		if start+n > cfg.Iterations {
			n = cfg.Iterations - start
		}
		within := sched.EpochWithin(epoch)
		between := sched.EpochBetween(epoch)
		hw.Reset()
		for i := range hist {
			for r := range hist[i] {
				hist[i][r] = 0
			}
		}
		for it := 0; it < n; it++ {
			for _, op := range ops {
				arch := within.Apply(int(op.row))
				var phys int
				if op.full {
					phys = hw.RenameOnWrite(arch)
				} else {
					phys = hw.Lookup(arch)
				}
				hist[op.mask][phys] += uint64(op.w)
			}
		}
		for m := range hist {
			lanesOf := maskLanes[m]
			for r := 0; r < cfg.Rows; r++ {
				c := hist[m][r]
				if c == 0 {
					continue
				}
				dst := dist.Counts[r*lanes:]
				for _, l := range lanesOf {
					dst[between.Apply(l)] += c
				}
			}
		}
		if cfg.Sampler != nil && cfg.Sampler.due(epoch, totalEpochs-1) {
			cfg.Sampler.Sample(epoch, start+n, dist)
		}
	}
}
