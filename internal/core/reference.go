package core

import (
	"pimendure/internal/mapping"
	"pimendure/internal/program"
)

// SimulateReference is the pre-memoization serial wear engine: every
// epoch of a +Hw run replays every op of every iteration, with no epoch
// grouping and no worker pool. It is retained as the ground truth the
// parallel engine must match bit for bit (alongside BruteForce) and as
// the baseline for the speedup benchmarks; production callers should use
// Simulate.
func SimulateReference(tr *program.Trace, cfg SimConfig, strat StrategyConfig) (*WriteDist, error) {
	if err := cfg.Validate(tr, strat.Hw); err != nil {
		return nil, err
	}
	dist := NewWriteDist(cfg.Rows, tr.Lanes)
	dist.Iterations = cfg.Iterations
	dist.StepsPerIteration = tr.Steps(cfg.PresetOutputs)

	arch := cfg.Rows
	if strat.Hw {
		arch--
	}
	sched := mapping.Schedule{
		Rows: arch, Lanes: tr.Lanes,
		Within: strat.Within, Between: strat.Between,
		Seed: cfg.Seed, ShiftStep: cfg.ShiftStep,
	}
	if cfg.Sampler != nil {
		cfg.Sampler.bind(cfg.Iterations)
	}
	if strat.Hw {
		simulateHwReference(tr, cfg, sched, dist)
	} else {
		simulateSoftware(tr, cfg, sched, dist)
	}
	return dist, nil
}

// simulateHwReference replays the hardware renamer exactly, epoch by
// epoch, with a fresh full replay per epoch.
func simulateHwReference(tr *program.Trace, cfg SimConfig, sched mapping.Schedule, dist *WriteDist) {
	lanes := tr.Lanes
	ops, maskLanes := flattenOps(tr, cfg.PresetOutputs)

	hw := mapping.NewHwRenamer(cfg.Rows)
	// hist[mask][physRow] accumulated over one epoch.
	hist := make([][]uint64, len(tr.Masks))
	for i := range hist {
		hist[i] = make([]uint64, cfg.Rows)
	}

	every := cfg.recompileEvery()
	totalEpochs := (cfg.Iterations + every - 1) / every
	for start, epoch := 0, 0; start < cfg.Iterations; start, epoch = start+every, epoch+1 {
		n := every
		if start+n > cfg.Iterations {
			n = cfg.Iterations - start
		}
		within := sched.EpochWithin(epoch)
		between := sched.EpochBetween(epoch)
		hw.Reset()
		for i := range hist {
			for r := range hist[i] {
				hist[i][r] = 0
			}
		}
		for it := 0; it < n; it++ {
			for _, op := range ops {
				arch := within.Apply(int(op.row))
				var phys int
				if op.full {
					phys = hw.RenameOnWrite(arch)
				} else {
					phys = hw.Lookup(arch)
				}
				hist[op.mask][phys] += uint64(op.w)
			}
		}
		for m := range hist {
			lanesOf := maskLanes[m]
			for r := 0; r < cfg.Rows; r++ {
				c := hist[m][r]
				if c == 0 {
					continue
				}
				dst := dist.Counts[r*lanes:]
				for _, l := range lanesOf {
					dst[between.Apply(l)] += c
				}
			}
		}
		if cfg.Sampler != nil && cfg.Sampler.due(epoch, totalEpochs-1) {
			cfg.Sampler.Sample(epoch, start+n, dist)
		}
	}
}
