package core_test

import (
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// packedData is a deterministic pseudo-random operand stream so the packed
// and scalar runners chew on non-trivial Boolean values.
func packedData(slot, lane int) bool {
	z := uint64(slot)*0xBF58476D1CE4E5B9 + uint64(lane)*0x94D049BB133111EB + 0x9E3779B97F4A7C15
	z ^= z >> 29
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 32
	return z&1 == 1
}

// The word-parallel runner must be indistinguishable from the scalar
// reference runner — write counts, read counts, final cell state and
// read-slot outputs — for all 18 configurations, on a trace that
// exercises every op kind including lane-shifted moves, across remap
// epochs with an uneven tail.
func TestPackedRunnerMatchesScalar(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	dot, err := workloads.DotProduct(cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := dot.Trace
	sim := core.SimConfig{
		Rows:           96,
		PresetOutputs:  true,
		Iterations:     11,
		RecompileEvery: 4, // two remaps plus a short final epoch
		Seed:           99,
	}
	for _, strat := range core.AllConfigs() {
		packed, pr, err := core.BruteForce(tr, sim, strat, packedData)
		if err != nil {
			t.Fatalf("%s packed: %v", strat.Name(), err)
		}
		scalar, sr, err := core.BruteForceReference(tr, sim, strat, packedData)
		if err != nil {
			t.Fatalf("%s scalar: %v", strat.Name(), err)
		}
		if !packed.Equal(scalar) {
			t.Errorf("%s: packed write distribution diverges from scalar (packed max %d total %d, scalar max %d total %d)",
				strat.Name(), packed.Max(), packed.Total(), scalar.Max(), scalar.Total())
		}
		pa, sa := pr.Array(), sr.Array()
		pw, sw := pa.WriteCounts(), sa.WriteCounts()
		prd, srd := pa.ReadCounts(), sa.ReadCounts()
		for i := range pw {
			if pw[i] != sw[i] {
				t.Errorf("%s: write count of cell %d: packed %d, scalar %d", strat.Name(), i, pw[i], sw[i])
				break
			}
		}
		for i := range prd {
			if prd[i] != srd[i] {
				t.Errorf("%s: read count of cell %d: packed %d, scalar %d", strat.Name(), i, prd[i], srd[i])
				break
			}
		}
	state:
		for bit := 0; bit < sim.Rows; bit++ {
			for lane := 0; lane < tr.Lanes; lane++ {
				if pa.Peek(bit, lane) != sa.Peek(bit, lane) {
					t.Errorf("%s: cell state (%d,%d): packed %v, scalar %v",
						strat.Name(), bit, lane, pa.Peek(bit, lane), sa.Peek(bit, lane))
					break state
				}
			}
		}
		for slot := 0; slot < tr.ReadSlots; slot++ {
			for lane := 0; lane < tr.Lanes; lane++ {
				if pr.Out(slot, lane) != sr.Out(slot, lane) {
					t.Errorf("%s: out slot %d lane %d: packed %v, scalar %v",
						strat.Name(), slot, lane, pr.Out(slot, lane), sr.Out(slot, lane))
				}
			}
		}
	}
}

// LaneProfile's static per-lane profile must agree with what the
// functional simulator actually counts: under the identity layout, one
// iteration's per-cell counters at (logical bit, lane) are exactly the
// profile — including the OpMove branch, whose read lands in the shifted
// source lane. The dot-product trace drives that branch with nonzero
// LaneShift through its reduction tree. Both runner flavours are checked.
func TestLaneProfileMatchesBruteForceCounters(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	dot, err := workloads.DotProduct(cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := dot.Trace
	moves := 0
	for _, op := range tr.Ops {
		if op.Kind.String() == "move" && op.LaneShift != 0 {
			moves++
		}
	}
	if moves == 0 {
		t.Fatal("dot-product trace has no lane-shifted moves; the profile's move branch is untested")
	}
	sim := core.SimConfig{Rows: 96, PresetOutputs: true, Iterations: 1, Seed: 1}
	brutes := map[string]func() (*core.WriteDist, interface {
		Writes(bit, lane int) uint64
		Reads(bit, lane int) uint64
	}, error){
		"packed": func() (*core.WriteDist, interface {
			Writes(bit, lane int) uint64
			Reads(bit, lane int) uint64
		}, error) {
			d, r, err := core.BruteForce(tr, sim, core.Static, packedData)
			if err != nil {
				return nil, nil, err
			}
			return d, r.Array(), nil
		},
		"scalar": func() (*core.WriteDist, interface {
			Writes(bit, lane int) uint64
			Reads(bit, lane int) uint64
		}, error) {
			d, r, err := core.BruteForceReference(tr, sim, core.Static, packedData)
			if err != nil {
				return nil, nil, err
			}
			return d, r.Array(), nil
		},
	}
	for name, run := range brutes {
		_, arr, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for lane := 0; lane < tr.Lanes; lane++ {
			writes, reads := core.LaneProfile(tr, sim.PresetOutputs, lane)
			for bit := 0; bit < tr.LaneBits; bit++ {
				if got := arr.Writes(bit, lane); got != uint64(writes[bit]) {
					t.Errorf("%s lane %d bit %d: counted %d writes, profile says %d", name, lane, bit, got, writes[bit])
				}
				if got := arr.Reads(bit, lane); got != uint64(reads[bit]) {
					t.Errorf("%s lane %d bit %d: counted %d reads, profile says %d", name, lane, bit, got, reads[bit])
				}
			}
		}
	}
}
