package core_test

import (
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/mapping"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// stepperFixture builds the shared small workload and its plan.
func stepperFixture(t *testing.T) *core.WearPlan {
	t.Helper()
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewWearPlan(mult.Trace, 96, true)
}

// epochLengths splits iters into batch-engine epoch lengths: recompile
// per epoch with a short final epoch.
func epochLengths(iters, recompile int) []int {
	var out []int
	for iters > 0 {
		n := recompile
		if n > iters {
			n = iters
		}
		out = append(out, n)
		iters -= n
	}
	return out
}

// A stepped run must be bit-identical to the batch engine over the same
// epoch sequence, for every strategy configuration — including an uneven
// final epoch — and its live MaxWrites must equal the batch maximum of
// every iteration prefix at an epoch boundary.
func TestStepperMatchesSimulate(t *testing.T) {
	plan := stepperFixture(t)
	sim := core.SimConfig{
		Rows:           96,
		PresetOutputs:  true,
		Iterations:     23,
		RecompileEvery: 7, // 23 % 7 != 0: final epoch is short
		Seed:           42,
	}
	for _, strat := range core.AllConfigs() {
		st, err := plan.NewStepper(sim, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		prefix := 0
		for _, n := range epochLengths(sim.Iterations, sim.RecompileEvery) {
			st.Step(n)
			prefix += n

			ps := sim
			ps.Iterations = prefix
			want, err := plan.Simulate(ps, strat)
			if err != nil {
				t.Fatalf("%s prefix %d: %v", strat.Name(), prefix, err)
			}
			if got := st.MaxWrites(); got != want.Max() {
				t.Errorf("%s: live MaxWrites after %d iterations = %d, batch max = %d",
					strat.Name(), prefix, got, want.Max())
			}
		}
		if st.Epoch() != 4 || st.Iterations() != sim.Iterations {
			t.Fatalf("%s: stepper at epoch %d / %d iterations, want 4 / %d",
				strat.Name(), st.Epoch(), st.Iterations(), sim.Iterations)
		}
		got, err := st.Finish()
		if err != nil {
			t.Fatalf("%s finish: %v", strat.Name(), err)
		}
		want, err := plan.Simulate(sim, strat)
		if err != nil {
			t.Fatalf("%s batch: %v", strat.Name(), err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: stepped distribution diverges from batch engine (stepped max %d total %d, batch max %d total %d)",
				strat.Name(), got.Max(), got.Total(), want.Max(), want.Total())
		}
		if got.Iterations != sim.Iterations || got.StepsPerIteration != want.StepsPerIteration {
			t.Errorf("%s: stepped metadata %d/%d, batch %d/%d",
				strat.Name(), got.Iterations, got.StepsPerIteration, want.Iterations, want.StepsPerIteration)
		}
	}
}

// The stepper must also agree with the retained serial reference engine
// (not just the parallel engine) for one software and one +Hw strategy.
func TestStepperMatchesReference(t *testing.T) {
	plan := stepperFixture(t)
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 23, RecompileEvery: 7, Seed: 42,
	}
	for _, strat := range []core.StrategyConfig{
		{Within: mapping.Random, Between: mapping.Static},
		{Within: mapping.Random, Between: mapping.Static, Hw: true},
	} {
		st, err := plan.NewStepper(sim, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		for _, n := range epochLengths(sim.Iterations, sim.RecompileEvery) {
			st.Step(n)
		}
		got, err := st.Finish()
		if err != nil {
			t.Fatalf("%s finish: %v", strat.Name(), err)
		}
		ref, err := core.SimulateReference(plan.Trace(), sim, strat)
		if err != nil {
			t.Fatalf("%s reference: %v", strat.Name(), err)
		}
		if !got.Equal(ref) {
			t.Errorf("%s: stepped distribution diverges from serial reference", strat.Name())
		}
	}
}

// Steps of zero or negative length are no-ops that must not advance the
// epoch counter, and a stepper finished without any iterations errors.
func TestStepperEdgeCases(t *testing.T) {
	plan := stepperFixture(t)
	sim := core.SimConfig{Rows: 96, PresetOutputs: true, Iterations: 1, Seed: 1}
	st, err := plan.NewStepper(sim, core.StrategyConfig{Within: mapping.Static, Between: mapping.Static})
	if err != nil {
		t.Fatal(err)
	}
	st.Step(0)
	st.Step(-3)
	if st.Epoch() != 0 || st.Iterations() != 0 || st.MaxWrites() != 0 {
		t.Fatalf("no-op steps advanced the stepper: epoch %d iters %d max %d",
			st.Epoch(), st.Iterations(), st.MaxWrites())
	}
	if _, err := st.Finish(); err == nil {
		t.Fatal("Finish with zero stepped iterations must error")
	}
}
