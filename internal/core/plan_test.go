package core_test

import (
	"runtime"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/program"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// planMatchesDense cross-checks the plan's factorized write matrix
// (full-mask row weights + CSR partial entries) against a dense M0 built
// straight from the trace the way the pre-plan engine did.
func planMatchesDense(t *testing.T, tr *program.Trace, rows int, preset bool) {
	t.Helper()
	p := core.NewWearPlan(tr, rows, preset)
	lanes := tr.Lanes
	dense := make([]uint32, tr.LaneBits*lanes)
	for _, op := range tr.Ops {
		w := op.WritesPerLane(preset)
		if w == 0 {
			continue
		}
		row := int(op.Out)
		tr.Mask(op.Mask).ForEach(func(l int) {
			dense[row*lanes+l] += uint32(w)
		})
	}
	got := p.M0()
	if len(got) != len(dense) {
		t.Fatalf("M0 length %d, want %d", len(got), len(dense))
	}
	for i := range dense {
		if got[i] != dense[i] {
			t.Fatalf("M0[row=%d lane=%d] = %d, dense build = %d",
				i/lanes, i%lanes, got[i], dense[i])
		}
	}
	if st := p.Stats(); st != tr.ComputeStats(preset) {
		t.Errorf("plan stats %+v diverge from trace stats %+v", st, tr.ComputeStats(preset))
	}
}

// The factorized plan must reproduce the dense one-iteration write
// matrix exactly, on both a fully utilized benchmark (all-full masks,
// pure rank-1 part) and a partially utilized one (nonempty CSR part).
func TestPlanMatchesDense(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := workloads.DotProduct(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range []bool{true, false} {
		planMatchesDense(t, mult.Trace, 96, preset)
		planMatchesDense(t, dot.Trace, 96, preset)
	}
	// The parallel multiplication runs at utilization 1: every mask is
	// full, so the whole matrix lives in the rank-1 part and the CSR
	// remainder must be empty — the case the software engine's full-mask
	// factorization is built around.
	p := core.NewWearPlan(mult.Trace, 96, true)
	fullRows, _ := p.FullRowWrites()
	if len(fullRows) == 0 {
		t.Error("parallel mult plan has no full-mask rows")
	}
	if n := p.PartialEntries(); n != 0 {
		t.Errorf("parallel mult plan has %d partial entries, want 0 (all masks full)", n)
	}
	// The dot product reduces across lanes: its plan must carry partial
	// entries, or the CSR path would be untested dead code.
	if n := core.NewWearPlan(dot.Trace, 96, true).PartialEntries(); n == 0 {
		t.Error("dot product plan has no partial entries; expected masked writes")
	}
}

// One shared plan must serve every strategy and stay bit-identical to
// the serial reference for worker counts {1, 3, GOMAXPROCS}, with and
// without a sampler attached — the tentpole's correctness contract.
func TestPlannedEngineWorkerAndSamplerIdentity(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	base := core.SimConfig{
		Rows:           96,
		PresetOutputs:  true,
		Iterations:     23,
		RecompileEvery: 7, // short final epoch
		Seed:           42,
	}
	plan := core.NewWearPlan(tr, base.Rows, base.PresetOutputs)
	for _, strat := range core.AllConfigs() {
		ref, err := core.SimulateReference(tr, base, strat)
		if err != nil {
			t.Fatalf("%s reference: %v", strat.Name(), err)
		}
		for _, w := range []int{1, 3, runtime.GOMAXPROCS(0)} {
			sim := base
			sim.Workers = w
			d, err := plan.Simulate(sim, strat)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat.Name(), w, err)
			}
			if !d.Equal(ref) {
				t.Errorf("%s workers=%d: planned engine diverges from reference", strat.Name(), w)
			}
			sim.Sampler = core.NewWearSampler("test.plan.wear", 2, 1e6)
			ds, err := plan.Simulate(sim, strat)
			if err != nil {
				t.Fatalf("%s workers=%d sampled: %v", strat.Name(), w, err)
			}
			if !ds.Equal(ref) {
				t.Errorf("%s workers=%d: sampled planned engine diverges from reference", strat.Name(), w)
			}
		}
	}
}

// A plan is bound to its build inputs: simulating a mismatched row
// count, preset policy or foreign trace must fail loudly instead of
// accumulating over the wrong precomputation.
func TestPlanRejectsMismatchedConfig(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewWearPlan(mult.Trace, 96, true)
	sim := core.SimConfig{Rows: 128, PresetOutputs: true, Iterations: 5}
	if _, err := plan.Simulate(sim, core.Static); err == nil {
		t.Error("plan accepted a mismatched row count")
	}
	sim = core.SimConfig{Rows: 96, PresetOutputs: false, Iterations: 5}
	if _, err := plan.Simulate(sim, core.Static); err == nil {
		t.Error("plan accepted a mismatched preset policy")
	}
}

// swCounters runs one planned software simulation under an enabled obs
// registry and returns the (groups, memo_hits) counters it recorded.
func swCounters(t *testing.T, tr *program.Trace, sim core.SimConfig, strat core.StrategyConfig) (groups, hits int64) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	d, err := core.Simulate(tr, sim, strat)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.SimulateReference(tr, sim, strat)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(ref) {
		t.Errorf("%s: grouped engine diverges from reference", strat.Name())
	}
	s := obs.Capture()
	return s.Counters["core.sw.groups"], s.Counters["core.sw.memo_hits"]
}

// Bs epoch grouping edge cases: with 96 software rows and the default
// byte step the rotation period is 96/gcd(8,96) = 12 epochs.
// Fewer epochs than the period must produce no memoization hits; an
// epoch count the period does not divide must still collapse to exactly
// `period` groups. (Not parallel: the obs registry is process-wide.)
func TestSwEngineBsGroupingEdgeCases(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	strat := core.StrategyConfig{Within: mapping.ByteShift, Between: mapping.Static}

	// 4 epochs < period 12: every rotation is fresh.
	sim := core.SimConfig{Rows: 96, PresetOutputs: true, Iterations: 4, RecompileEvery: 1, Seed: 5}
	groups, hits := swCounters(t, tr, sim, strat)
	if groups != 4 || hits != 0 {
		t.Errorf("epochs<period: groups=%d hits=%d, want 4/0", groups, hits)
	}

	// 30 epochs, period 12 does not divide 30: shifts revisit rotations
	// 0..11, so exactly 12 unique groups absorb 18 repeat epochs.
	sim.Iterations = 30
	groups, hits = swCounters(t, tr, sim, strat)
	if groups != 12 || hits != 18 {
		t.Errorf("period∤epochs: groups=%d hits=%d, want 12/18", groups, hits)
	}

	// St×St is the degenerate family: one group absorbs everything.
	sim.Iterations = 30
	groups, hits = swCounters(t, tr, sim, core.Static)
	if groups != 1 || hits != 29 {
		t.Errorf("StxSt: groups=%d hits=%d, want 1/29", groups, hits)
	}
}
