package core_test

import (
	"bytes"
	"math"
	"testing"

	"pimendure/internal/core"
	"pimendure/internal/stats"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// Attaching a sampler must not change the simulation: for all 18
// configurations the sampled engines (epoch-ordered +Hw path included)
// must reproduce the unsampled distribution bit for bit, and the last
// recorded sample must describe exactly the final distribution.
func TestSampledEngineBitIdentical(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := mult.Trace
	sim := core.SimConfig{
		Rows:           96,
		PresetOutputs:  true,
		Iterations:     23,
		RecompileEvery: 7, // 23 % 7 != 0: final epoch is short
		Seed:           42,
		Workers:        4,
	}
	// One shared plan for every config and run: from the second simulation
	// on, scratch bundles, counts buffers and +Hw job histograms come back
	// dirty from the plan's arena instead of fresh from the allocator, so
	// this loop doubles as the proof that buffer recycling never leaks one
	// run's state into the next.
	plan := core.NewWearPlan(tr, sim.Rows, sim.PresetOutputs)
	for _, strat := range core.AllConfigs() {
		plain, err := plan.Simulate(sim, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		sampled := sim
		sampled.Sampler = core.NewWearSampler("test.wear."+strat.Name(), 2, 1e6)
		d, err := plan.Simulate(sampled, strat)
		if err != nil {
			t.Fatalf("%s sampled: %v", strat.Name(), err)
		}
		if !d.Equal(plain) {
			t.Errorf("%s: sampled engine diverges from unsampled (sampled max %d total %d, plain max %d total %d)",
				strat.Name(), d.Max(), d.Total(), plain.Max(), plain.Total())
		}
		// A second sampled run on the now-warm arena accumulates through
		// recycled job histograms and scratch; bit-identity proves the
		// recycling discipline (histograms returned dirty, zeroed at reuse).
		warm := sim
		warm.Sampler = core.NewWearSampler("test.wear.warm."+strat.Name(), 2, 1e6)
		d2, err := plan.Simulate(warm, strat)
		if err != nil {
			t.Fatalf("%s warm sampled: %v", strat.Name(), err)
		}
		if !d2.Equal(plain) {
			t.Errorf("%s: warm-arena sampled run diverges from cold run", strat.Name())
		}
		d2.Release()
		s := sampled.Sampler.Series()
		if s.Len() == 0 {
			t.Fatalf("%s: no samples recorded", strat.Name())
		}
		last := s.Last()
		cols := s.Columns()
		get := func(name string) float64 {
			for i, c := range cols {
				if c == name {
					return last[i]
				}
			}
			t.Fatalf("%s: series lacks column %q", strat.Name(), name)
			return 0
		}
		if got, want := get("max_writes"), float64(d.Max()); got != want {
			t.Errorf("%s: last sample max_writes = %v, final dist max = %v", strat.Name(), got, want)
		}
		if got, want := get("iterations"), float64(sim.Iterations); got != want {
			t.Errorf("%s: last sample iterations = %v, want %v", strat.Name(), got, want)
		}
		// The fused/windowed fast paths must reproduce the reference
		// statistics on the final distribution exactly (p99's predicted
		// window falls back to an exact scan on a miss; mean is the same
		// summation), and CoV to within the E[x²]−µ² form's precision.
		if got, want := get("p99_writes"), stats.Percentile(d.Counts, 0.99); got != want {
			t.Errorf("%s: last sample p99_writes = %v, want %v", strat.Name(), got, want)
		}
		if got, want := get("mean_writes"), stats.Mean(d.Counts); got != want {
			t.Errorf("%s: last sample mean_writes = %v, want %v", strat.Name(), got, want)
		}
		if got, want := get("cov"), stats.CoV(d.Counts); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: last sample cov = %v, want %v", strat.Name(), got, want)
		}
		// max_writes is a prefix statistic of a monotone accumulation.
		maxCol := s.Column("max_writes")
		epochCol := s.Column("epoch")
		for i := 1; i < len(maxCol); i++ {
			if maxCol[i] < maxCol[i-1] {
				t.Errorf("%s: max_writes decreases at sample %d (%v -> %v)",
					strat.Name(), i, maxCol[i-1], maxCol[i])
			}
			if epochCol[i] <= epochCol[i-1] {
				t.Errorf("%s: epoch column not strictly increasing at sample %d", strat.Name(), i)
			}
		}
	}
}

// The serial reference engine accepts the same sampler hook, with the
// same last-sample contract, for both software and +Hw strategies.
func TestSamplerOnReferenceEngine(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []core.StrategyConfig{
		core.Static,
		{Within: core.Static.Within, Between: core.Static.Between, Hw: true},
	} {
		sim := core.SimConfig{
			Rows: 96, PresetOutputs: true,
			Iterations: 12, RecompileEvery: 5, Seed: 1,
			Sampler: core.NewWearSampler("test.ref."+strat.Name(), 1, 0),
		}
		d, err := core.SimulateReference(mult.Trace, sim, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		s := sim.Sampler.Series()
		// Every=1 samples every epoch: ceil(12/5) = 3.
		if s.Len() != 3 {
			t.Fatalf("%s: got %d samples, want 3", strat.Name(), s.Len())
		}
		if got, want := s.Last()[2], float64(d.Max()); got != want {
			t.Errorf("%s: last max_writes = %v, want %v", strat.Name(), got, want)
		}
		// Endurance 0: projections are NaN, dead-cell count zero.
		if !math.IsNaN(s.Last()[7]) {
			t.Errorf("%s: projected iterations without endurance = %v, want NaN", strat.Name(), s.Last()[7])
		}
	}
}

// The sampling cadence is every Every-th epoch plus always the final
// epoch, so a live observer sees the trajectory end exactly at the
// final distribution.
func TestSamplerCadence(t *testing.T) {
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 60, RecompileEvery: 5, Seed: 1, // 12 epochs
		Sampler: core.NewWearSampler("test.cadence", 5, 1e6),
	}
	if _, err := core.Simulate(mult.Trace, sim, core.Static); err != nil {
		t.Fatal(err)
	}
	got := sim.Sampler.Series().Column("epoch")
	want := []float64{0, 5, 10, 11} // 0, Every, 2·Every, final
	if len(got) != len(want) {
		t.Fatalf("sampled epochs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled epochs %v, want %v", got, want)
		}
	}
}

// The heatmap snapshot follows the samples: WritePNG errors before the
// first sample and produces a PNG afterwards.
func TestSamplerWritePNG(t *testing.T) {
	s := core.NewWearSampler("test.png", 1, 1e6)
	var buf bytes.Buffer
	if err := s.WritePNG(&buf); err == nil {
		t.Fatal("WritePNG before any sample should error")
	}
	cfg := workloads.Config{Lanes: 8, Rows: 96, Basis: synth.NAND}
	mult, err := workloads.ParallelMult(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := core.SimConfig{
		Rows: 96, PresetOutputs: true,
		Iterations: 4, RecompileEvery: 2, Seed: 1,
		Sampler: s,
	}
	if _, err := core.Simulate(mult.Trace, sim, core.Static); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePNG(&buf); err != nil {
		t.Fatalf("WritePNG after sampling: %v", err)
	}
	if buf.Len() < 8 || string(buf.Bytes()[1:4]) != "PNG" {
		t.Error("WritePNG output is not a PNG")
	}
}
