// Package workloads compiles the paper's three benchmark kernels (§4) into
// PIM traces:
//
//   - embarrassingly parallel multiplication — the ideal case: every lane
//     computes independently, no communication;
//   - vector dot-product — the non-ideal case: a reduction funnels all
//     partial results into one lane, over-using low-address lanes;
//   - neural-network convolution — the middle ground: small groups of
//     lanes combine partial sums, one lane in each group doing extra work.
//
// Each benchmark carries a functional reference model so that the compiled
// trace can be verified end to end on the array simulator, under any
// load-balancing configuration.
package workloads

import (
	"fmt"
	"math/big"

	"pimendure/internal/program"
	"pimendure/internal/synth"
)

// Config sizes a benchmark. The paper's evaluation uses 1024 lanes × 1024
// rows, 32-bit operands for multiplication and dot-product, 8-bit for
// convolution, in the NAND basis on a column-parallel array.
type Config struct {
	// Lanes is the number of PIM lanes (columns).
	Lanes int
	// Rows is the number of physical bit addresses per lane. Programs may
	// use at most Rows−1 of them, reserving the spare row hardware
	// renaming needs.
	Rows int
	// Basis selects the gate decomposition; nil means synth.NAND.
	Basis synth.Basis
	// Alloc selects the workspace reuse policy. The zero value, NextFit,
	// matches the paper's simulator; LowestFirst is the adversarial
	// allocator used in the ablation study.
	Alloc program.AllocPolicy
}

// Default returns the paper's evaluation configuration (§4).
func Default() Config {
	return Config{Lanes: 1024, Rows: 1024, Basis: synth.NAND}
}

func (c Config) basis() synth.Basis {
	if c.Basis == nil {
		return synth.NAND
	}
	return c.Basis
}

func (c Config) validate() error {
	if c.Lanes <= 0 || c.Rows <= 1 {
		return fmt.Errorf("workloads: invalid dimensions %dx%d", c.Lanes, c.Rows)
	}
	return nil
}

// DataFunc supplies the external value written into a write slot of a
// logical lane (matches array.DataFunc).
type DataFunc func(slot, lane int) bool

// OutFunc reads back what landed in a read slot of a logical lane
// (matches the array runner's Out accessor).
type OutFunc func(slot, lane int) bool

// Benchmark is a compiled workload plus its functional reference model.
type Benchmark struct {
	// Name is the label used throughout the paper: "multiplication",
	// "convolution", "dot-product".
	Name string
	// Description summarizes the kernel and its §4 parameters.
	Description string
	// Trace is the compiled per-iteration program. The paper assumes the
	// array runs it back to back: "as soon as it computes the final
	// results a new set of inputs is loaded and the process repeats".
	Trace *program.Trace
	// Check verifies one executed iteration: it recomputes the kernel
	// from the data the trace consumed and compares against what the
	// readout ops observed. It returns the first mismatch.
	Check func(data DataFunc, out OutFunc) error
}

// slotWord assembles a little-endian word from consecutive data slots.
func slotWord(data DataFunc, first, width, lane int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if data(first+i, lane) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// outWord assembles a little-endian word from consecutive read slots.
func outWord(out OutFunc, first, width, lane int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if out(first+i, lane) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// ParallelMult compiles the embarrassingly parallel multiplication
// benchmark: every lane loads two fresh bits-wide operands, multiplies them
// with a Dadda multiplier, and reads the 2·bits product out (§4: 32-bit
// operands, one multiplication per lane, all lanes utilized).
func ParallelMult(cfg Config, bits int) (bench *Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("workloads: %v (increase Rows?)", r)
		}
	}()

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bits < 2 {
		return nil, fmt.Errorf("workloads: multiplication needs ≥2-bit operands, got %d", bits)
	}
	basis := cfg.basis()
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)
	a, aSlot := bld.WriteVector(bits)
	b, bSlot := bld.WriteVector(bits)
	prod := synth.Dadda(bld, basis, a, b)
	pSlot := bld.ReadVector(prod)
	bld.Free(a...)
	bld.Free(b...)
	bld.Free(prod...)

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	return &Benchmark{
		Name: "multiplication",
		Description: fmt.Sprintf("embarrassingly parallel %d-bit multiplication, %d lanes, %s basis",
			bits, lanes, basis.Name()),
		Trace: tr,
		Check: func(data DataFunc, out OutFunc) error {
			for l := 0; l < lanes; l++ {
				x := slotWord(data, aSlot, bits, l)
				y := slotWord(data, bSlot, bits, l)
				got := outWord(out, pSlot, 2*bits, l)
				if got != x*y {
					return fmt.Errorf("lane %d: %d×%d read back %d, want %d", l, x, y, got, x*y)
				}
			}
			return nil
		},
	}, nil
}

// DotProduct compiles the vector dot-product benchmark: n element pairs
// multiply in parallel (one per lane), then a log₂(n)-level reduction
// repeatedly moves partial sums into lower-numbered lanes and adds them,
// leaving the scalar result in lane 0 (§4: 1024-element vectors of 32-bit
// operands). n must be a power of two no larger than the lane count.
func DotProduct(cfg Config, n, bits int) (bench *Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("workloads: %v (increase Rows?)", r)
		}
	}()

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workloads: dot-product length %d must be a power of two ≥ 2", n)
	}
	if n > cfg.Lanes {
		return nil, fmt.Errorf("workloads: dot-product length %d exceeds %d lanes", n, cfg.Lanes)
	}
	if bits < 2 {
		return nil, fmt.Errorf("workloads: dot-product needs ≥2-bit operands, got %d", bits)
	}
	basis := cfg.basis()
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)
	active := program.RangeMask(cfg.Lanes, 0, n)
	bld.SetMask(active)
	a, aSlot := bld.WriteVector(bits)
	b, bSlot := bld.WriteVector(bits)
	cur := synth.Dadda(bld, basis, a, b)
	bld.Free(a...)
	bld.Free(b...)

	// Reduction: partial sums migrate toward lane 0 (§5: "dot-product
	// heavily uses columns at low addresses, as partial sums are
	// repeatedly moved to lower addresses").
	for stride := n / 2; stride >= 1; stride /= 2 {
		bld.SetMask(program.RangeMask(cfg.Lanes, 0, stride))
		moved := bld.MoveVector(cur, nil, stride)
		sum := synth.RippleCarryAdd(bld, basis, cur, moved)
		bld.Free(cur...)
		bld.Free(moved...)
		cur = sum
	}

	bld.SetMask(program.RangeMask(cfg.Lanes, 0, 1))
	width := len(cur) // 2·bits + log₂(n)
	sSlot := bld.ReadVector(cur)
	bld.Free(cur...)

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &Benchmark{
		Name: "dot-product",
		Description: fmt.Sprintf("%d-element dot-product of %d-bit operands, %d lanes, %s basis",
			n, bits, cfg.Lanes, basis.Name()),
		Trace: tr,
		Check: func(data DataFunc, out OutFunc) error {
			want := new(big.Int)
			tmp := new(big.Int)
			for l := 0; l < n; l++ {
				x := slotWord(data, aSlot, bits, l)
				y := slotWord(data, bSlot, bits, l)
				tmp.SetUint64(x)
				want.Add(want, tmp.Mul(tmp, new(big.Int).SetUint64(y)))
			}
			got := new(big.Int)
			for i := 0; i < width; i++ {
				if out(sSlot+i, 0) {
					got.SetBit(got, i, 1)
				}
			}
			if got.Cmp(want) != 0 {
				return fmt.Errorf("dot-product read back %v, want %v", got, want)
			}
			return nil
		},
	}, nil
}

// ConvConfig parameterizes the convolution benchmark. The paper's instance
// (§4) applies a 4×3 filter to 16×16 neurons at 8-bit precision: each
// filter position occupies GroupLanes=4 lanes, each lane multiplying
// MultsPerLane=3 neuron/weight pairs sequentially and accumulating them;
// the partial sums of a group then collapse into its first lane, where the
// total is thresholded into a single binary output (the BNN-style
// comparison of [31]).
type ConvConfig struct {
	GroupLanes   int // filter rows: lanes per filter position
	MultsPerLane int // filter columns: sequential multiplications per lane
	Bits         int // operand precision
}

// DefaultConv returns the paper's 4×3 filter at 8-bit precision.
func DefaultConv() ConvConfig {
	return ConvConfig{GroupLanes: 4, MultsPerLane: 3, Bits: 8}
}

// Convolution compiles the convolution benchmark. cfg.Lanes must be a
// multiple of cc.GroupLanes.
func Convolution(cfg Config, cc ConvConfig) (bench *Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("workloads: %v (increase Rows?)", r)
		}
	}()

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cc.GroupLanes < 2 || cc.MultsPerLane < 1 || cc.Bits < 2 {
		return nil, fmt.Errorf("workloads: invalid convolution shape %+v", cc)
	}
	if cfg.Lanes%cc.GroupLanes != 0 {
		return nil, fmt.Errorf("workloads: %d lanes not divisible into groups of %d", cfg.Lanes, cc.GroupLanes)
	}
	basis := cfg.basis()
	bits := cc.Bits
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)

	// Per lane: load MultsPerLane neuron/weight pairs, multiply-and-
	// accumulate them sequentially.
	type operand struct{ n, w []program.Bit }
	ops := make([]operand, cc.MultsPerLane)
	nSlots := make([]int, cc.MultsPerLane)
	wSlots := make([]int, cc.MultsPerLane)
	for j := range ops {
		ops[j].n, nSlots[j] = bld.WriteVector(bits)
		ops[j].w, wSlots[j] = bld.WriteVector(bits)
	}
	acc := synth.Dadda(bld, basis, ops[0].n, ops[0].w)
	bld.Free(ops[0].n...)
	bld.Free(ops[0].w...)
	for j := 1; j < cc.MultsPerLane; j++ {
		p := synth.Dadda(bld, basis, ops[j].n, ops[j].w)
		bld.Free(ops[j].n...)
		bld.Free(ops[j].w...)
		sum := synth.AddUneven(bld, basis, acc, p)
		bld.Free(acc...)
		bld.Free(p...)
		acc = sum
	}

	// Collapse each group's partial sums into its first lane. Moves must
	// source the original per-lane partial-sum addresses: non-head lanes
	// never execute the accumulation gates below, so only those addresses
	// hold their data.
	heads := program.StrideMask(cfg.Lanes, cc.GroupLanes, 0)
	partial := acc
	run := partial
	for g := 1; g < cc.GroupLanes; g++ {
		bld.SetMask(heads)
		moved := bld.MoveVector(partial, nil, g)
		sum := synth.AddUneven(bld, basis, run, moved)
		if g > 1 { // run == partial on the first pass; partial is freed after the loop
			bld.Free(run...)
		}
		bld.Free(moved...)
		run = sum
	}
	bld.Free(partial...)
	acc = run

	// Threshold comparison in the head lanes (binary NN output, §4).
	width := len(acc)
	bld.SetMask(heads)
	thr, tSlot := bld.WriteVector(width)
	ge := synth.GreaterEqual(bld, basis, acc, thr)
	oSlot := bld.Read(ge)
	bld.Free(acc...)
	bld.Free(thr...)
	bld.Free(ge)

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	return &Benchmark{
		Name: "convolution",
		Description: fmt.Sprintf("convolution, %d×%d filter positions per group, %d-bit, %d lanes, %s basis",
			cc.GroupLanes, cc.MultsPerLane, bits, lanes, basis.Name()),
		Trace: tr,
		Check: func(data DataFunc, out OutFunc) error {
			for head := 0; head < lanes; head += cc.GroupLanes {
				var total uint64
				for g := 0; g < cc.GroupLanes; g++ {
					l := head + g
					for j := 0; j < cc.MultsPerLane; j++ {
						total += slotWord(data, nSlots[j], bits, l) * slotWord(data, wSlots[j], bits, l)
					}
				}
				threshold := slotWord(data, tSlot, width, head)
				want := total >= threshold
				if got := out(oSlot, head); got != want {
					return fmt.Errorf("group at lane %d: sum %d vs threshold %d read %v, want %v",
						head, total, threshold, got, want)
				}
			}
			return nil
		},
	}, nil
}

// VectorAdd compiles an embarrassingly parallel addition benchmark (an
// extension beyond the paper's three kernels, exercising the operation
// Table 2 shows has the worst shuffle overhead): every lane adds two fresh
// bits-wide operands.
func VectorAdd(cfg Config, bits int) (bench *Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("workloads: %v (increase Rows?)", r)
		}
	}()

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bits < 1 {
		return nil, fmt.Errorf("workloads: addition needs ≥1-bit operands, got %d", bits)
	}
	basis := cfg.basis()
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)
	a, aSlot := bld.WriteVector(bits)
	b, bSlot := bld.WriteVector(bits)
	sum := synth.RippleCarryAdd(bld, basis, a, b)
	sSlot := bld.ReadVector(sum)
	bld.Free(a...)
	bld.Free(b...)
	bld.Free(sum...)

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	return &Benchmark{
		Name:        "vector-add",
		Description: fmt.Sprintf("parallel %d-bit addition, %d lanes, %s basis", bits, lanes, basis.Name()),
		Trace:       tr,
		Check: func(data DataFunc, out OutFunc) error {
			for l := 0; l < lanes; l++ {
				x := slotWord(data, aSlot, bits, l)
				y := slotWord(data, bSlot, bits, l)
				if got := outWord(out, sSlot, bits+1, l); got != x+y {
					return fmt.Errorf("lane %d: %d+%d read back %d", l, x, y, got)
				}
			}
			return nil
		},
	}, nil
}

// PaperSuite compiles the paper's three benchmarks at their §4 parameters
// under the given array configuration: 32-bit parallel multiplication,
// convolution (4 lanes × 3 mults, 8-bit), and a dot-product sized to the
// lane count (1024 elements at the default configuration) of 32-bit
// operands.
func PaperSuite(cfg Config) ([]*Benchmark, error) {
	mult, err := ParallelMult(cfg, 32)
	if err != nil {
		return nil, err
	}
	conv, err := Convolution(cfg, DefaultConv())
	if err != nil {
		return nil, err
	}
	n := 1
	for n*2 <= cfg.Lanes {
		n *= 2
	}
	dot, err := DotProduct(cfg, n, 32)
	if err != nil {
		return nil, err
	}
	return []*Benchmark{mult, conv, dot}, nil
}
