package workloads_test

import (
	"math/rand"
	"testing"

	"pimendure/internal/array"
	"pimendure/internal/mapping"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// smallCfg is a reduced array for fast functional tests.
func smallCfg(lanes, rows int) workloads.Config {
	return workloads.Config{Lanes: lanes, Rows: rows, Basis: synth.NAND}
}

// randomData returns a deterministic pseudo-random data function.
func randomData(seed int64) workloads.DataFunc {
	return func(slot, lane int) bool {
		z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(slot)*0xBF58476D1CE4E5B9 + uint64(lane)*0x94D049BB133111EB
		z ^= z >> 29
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 32
		return z&1 == 1
	}
}

// runBench executes one iteration of a benchmark functionally and applies
// its reference check.
func runBench(t *testing.T, b *workloads.Benchmark, rows int, m array.Mapper, data workloads.DataFunc) {
	t.Helper()
	arr := array.New(array.Config{BitsPerLane: rows, Lanes: b.Trace.Lanes})
	r, err := array.NewRunner(arr, b.Trace, m, array.DataFunc(data))
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	if err := b.Check(data, r.Out); err != nil {
		t.Errorf("%s: %v", b.Name, err)
	}
}

func TestParallelMultFunctional(t *testing.T) {
	cfg := smallCfg(8, 512)
	b, err := workloads.ParallelMult(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(1))
}

func TestParallelMult32BitSingleIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("32-bit multiply on 64 lanes is slow in -short mode")
	}
	cfg := smallCfg(64, 1024)
	b, err := workloads.ParallelMult(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Trace.ComputeStats(false)
	// §3.1: the 32-bit multiply itself is 9 824 gates; the benchmark adds
	// 64 operand writes and 64 result reads.
	if st.Gates != 9824 {
		t.Errorf("gates = %d, want 9824", st.Gates)
	}
	if st.Writes != 64 || st.Reads != 64 {
		t.Errorf("io ops = %d writes %d reads, want 64/64", st.Writes, st.Reads)
	}
	if st.Utilization != 1.0 {
		t.Errorf("utilization = %v, want 1.0 (all lanes always active)", st.Utilization)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(2))
}

func TestDotProductFunctional(t *testing.T) {
	cfg := smallCfg(16, 768)
	b, err := workloads.DotProduct(cfg, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(3))
}

func TestDotProductShorterThanLanes(t *testing.T) {
	cfg := smallCfg(16, 768)
	b, err := workloads.DotProduct(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(4))
	// Lanes 8..15 never participate.
	st := b.Trace.ComputeStats(false)
	if st.Utilization >= 0.5 {
		t.Errorf("utilization = %v, should be < 0.5 with half the lanes idle", st.Utilization)
	}
}

func TestDotProductRejectsBadShapes(t *testing.T) {
	cfg := smallCfg(16, 512)
	if _, err := workloads.DotProduct(cfg, 12, 4); err == nil {
		t.Error("non-power-of-two length accepted")
	}
	if _, err := workloads.DotProduct(cfg, 32, 4); err == nil {
		t.Error("length beyond lanes accepted")
	}
	if _, err := workloads.DotProduct(cfg, 8, 1); err == nil {
		t.Error("1-bit operands accepted")
	}
}

func TestConvolutionFunctional(t *testing.T) {
	cfg := smallCfg(16, 1024)
	b, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 4, MultsPerLane: 3, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(5))
}

func TestConvolutionTwoLaneGroups(t *testing.T) {
	cfg := smallCfg(8, 512)
	b, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 2, MultsPerLane: 2, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(6))
}

func TestConvolutionRejectsBadShapes(t *testing.T) {
	cfg := smallCfg(15, 512)
	if _, err := workloads.Convolution(cfg, workloads.DefaultConv()); err == nil {
		t.Error("lanes not divisible by group accepted")
	}
	cfg = smallCfg(16, 512)
	if _, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 1, MultsPerLane: 3, Bits: 8}); err == nil {
		t.Error("single-lane group accepted")
	}
}

func TestVectorAddFunctional(t *testing.T) {
	cfg := smallCfg(8, 256)
	b, err := workloads.VectorAdd(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(7))
	st := b.Trace.ComputeStats(false)
	if st.Gates != synth.RippleCarryGates(synth.NAND, 12) {
		t.Errorf("vector-add gates = %d, want %d", st.Gates, synth.RippleCarryGates(synth.NAND, 12))
	}
}

// Every benchmark stays functionally correct under arbitrary mapping
// configurations — the invariant that §3.2's PIM-aware strategies must
// preserve (and NVM-style remapping breaks).
func TestBenchmarksInvariantUnderMapping(t *testing.T) {
	cfg := smallCfg(16, 640)
	benches := []*workloads.Benchmark{}
	if b, err := workloads.ParallelMult(cfg, 6); err == nil {
		benches = append(benches, b)
	} else {
		t.Fatal(err)
	}
	if b, err := workloads.DotProduct(cfg, 16, 4); err == nil {
		benches = append(benches, b)
	} else {
		t.Fatal(err)
	}
	if b, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 4, MultsPerLane: 2, Bits: 4}); err == nil {
		benches = append(benches, b)
	} else {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for _, b := range benches {
		for _, useHw := range []bool{false, true} {
			rows := cfg.Rows
			arch := rows
			m := array.Mapper{}
			if useHw {
				m.Hw = mapping.NewHwRenamer(rows)
				arch = rows - 1
			}
			m.Within = mapping.RandomPerm(arch, rng)
			m.Between = mapping.RandomPerm(cfg.Lanes, rng)

			arr := array.New(array.Config{BitsPerLane: rows, Lanes: cfg.Lanes, PresetOutputs: true})
			data := randomData(int64(len(b.Name)) * 17)
			r, err := array.NewRunner(arr, b.Trace, m, array.DataFunc(data))
			if err != nil {
				t.Fatalf("%s hw=%v: %v", b.Name, useHw, err)
			}
			for iter := 0; iter < 3; iter++ {
				r.RunIteration()
				if err := b.Check(data, r.Out); err != nil {
					t.Fatalf("%s hw=%v iter %d: %v", b.Name, useHw, iter, err)
				}
				if err := r.Remap(mapping.RandomPerm(arch, rng), mapping.RandomPerm(cfg.Lanes, rng)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestBNNLayerFunctional(t *testing.T) {
	cfg := smallCfg(8, 256)
	b, err := workloads.BNNLayer(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(8))
}

// The BNN popcount must stay logarithmic in width: a 64-synapse neuron
// needs a 7-bit counter, not a 64-bit one, so the threshold slots tell us
// the trimming worked.
func TestBNNLayerCounterWidth(t *testing.T) {
	cfg := smallCfg(4, 512)
	b, err := workloads.BNNLayer(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 64 activations + 64 weights + 7 threshold bits.
	if got, want := b.Trace.WriteSlots, 64+64+7; got != want {
		t.Errorf("write slots = %d, want %d (counter not trimmed?)", got, want)
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), randomData(9))
}

func TestBNNLayerEdgeThresholds(t *testing.T) {
	cfg := smallCfg(2, 256)
	b, err := workloads.BNNLayer(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// All-match inputs with threshold 8 (fires) on lane 0, and threshold
	// 9 (doesn't, 9 > max count) encoded via per-lane data.
	data := func(slot, lane int) bool {
		switch {
		case slot < 16: // activations == weights
			return slot%2 == 0
		default: // threshold bits: lane 0 -> 8 (bit 3), lane 1 -> 9 (bits 0,3)
			tb := slot - 16
			if lane == 0 {
				return tb == 3
			}
			return tb == 3 || tb == 0
		}
	}
	runBench(t, b, cfg.Rows, array.IdentityMapper(cfg.Rows, cfg.Lanes), data)
}

func TestBNNLayerRejectsBadShapes(t *testing.T) {
	if _, err := workloads.BNNLayer(smallCfg(4, 256), 1); err == nil {
		t.Error("single-synapse layer accepted")
	}
	if _, err := workloads.BNNLayer(workloads.Config{Lanes: 0, Rows: 8}, 8); err == nil {
		t.Error("invalid config accepted")
	}
	// Capacity exhaustion surfaces as an error, not a panic.
	if _, err := workloads.BNNLayer(smallCfg(4, 20), 64); err == nil {
		t.Error("impossible capacity accepted")
	}
}

// Utilization ordering across the three paper benchmarks (Table 3):
// multiplication 100% > convolution > dot-product.
func TestUtilizationOrdering(t *testing.T) {
	cfg := smallCfg(64, 1024)
	mult, err := workloads.ParallelMult(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 4, MultsPerLane: 3, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	dot, err := workloads.DotProduct(cfg, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	um := mult.Trace.ComputeStats(true).Utilization
	uc := conv.Trace.ComputeStats(true).Utilization
	ud := dot.Trace.ComputeStats(true).Utilization
	if um != 1.0 {
		t.Errorf("mult utilization = %v, want 1.0", um)
	}
	if !(uc < um) || !(ud < uc) {
		t.Errorf("utilization ordering violated: mult %v > conv %v > dot %v expected", um, uc, ud)
	}
}

func TestPaperSuiteSmall(t *testing.T) {
	cfg := smallCfg(8, 900)
	benches, err := workloads.PaperSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("suite has %d benchmarks", len(benches))
	}
	names := map[string]bool{}
	for _, b := range benches {
		names[b.Name] = true
		if b.Description == "" {
			t.Errorf("%s: empty description", b.Name)
		}
		if err := b.Trace.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	for _, want := range []string{"multiplication", "convolution", "dot-product"} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := workloads.ParallelMult(workloads.Config{Lanes: 0, Rows: 8}, 4); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := workloads.ParallelMult(smallCfg(4, 256), 1); err == nil {
		t.Error("1-bit multiply accepted")
	}
	if _, err := workloads.VectorAdd(smallCfg(4, 256), 0); err == nil {
		t.Error("0-bit add accepted")
	}
	d := workloads.Default()
	if d.Lanes != 1024 || d.Rows != 1024 {
		t.Errorf("default config %+v, want 1024x1024", d)
	}
}
