package workloads

import (
	"fmt"
	"math/bits"

	"pimendure/internal/gates"
	"pimendure/internal/program"
	"pimendure/internal/synth"
)

// BNNLayer compiles a binarized-neural-network neuron per lane — the
// workload class the paper's convolution benchmark abstracts (§4, [9, 31]):
// activations and weights are ±1, encoded as bits, so a neuron is an
// n-bit XNOR followed by a popcount and a threshold comparison producing a
// single output bit.
//
// Every lane loads an n-bit activation vector and an n-bit weight vector,
// XNORs them (n gates), reduces the match bits with an in-lane adder tree
// (popcount), compares against a ⌈log₂(n+1)⌉-bit threshold, and reads the
// single-bit activation out. This is an extension benchmark beyond the
// paper's three kernels.
func BNNLayer(cfg Config, n int) (bench *Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("workloads: %v (increase Rows?)", r)
		}
	}()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("workloads: BNN layer needs ≥2 synapses, got %d", n)
	}
	basis := cfg.basis()
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)

	act, aSlot := bld.WriteVector(n)
	wgt, wSlot := bld.WriteVector(n)

	// XNOR per synapse: 1 on agreement (±1 product = +1).
	match := make([]program.Bit, n)
	for i := 0; i < n; i++ {
		x := basis.Xor(bld, act[i], wgt[i])
		match[i] = bld.Gate(gates.NOT, x, program.NoBit)
		bld.Free(x)
	}
	bld.Free(act...)
	bld.Free(wgt...)

	// Popcount: fold the match bits into a growing binary counter,
	// trimming top bits that are provably zero (the running sum after i
	// synapses is at most i, so ⌈log₂(i+1)⌉ bits suffice).
	count := []program.Bit{match[0]}
	for i := 1; i < n; i++ {
		next := synth.AddUneven(bld, basis, count, match[i:i+1])
		bld.Free(count...)
		bld.Free(match[i])
		if needed := popcountWidth(i + 1); len(next) > needed {
			bld.Free(next[needed:]...)
			next = next[:needed]
		}
		count = next
	}
	width := len(count)

	thr, tSlot := bld.WriteVector(width)
	out := synth.GreaterEqual(bld, basis, count, thr)
	oSlot := bld.Read(out)
	bld.Free(count...)
	bld.Free(thr...)
	bld.Free(out)

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	return &Benchmark{
		Name: "bnn-layer",
		Description: fmt.Sprintf("binarized NN neuron, %d synapses (XNOR+popcount+threshold), %d lanes, %s basis",
			n, lanes, basis.Name()),
		Trace: tr,
		Check: func(data DataFunc, out OutFunc) error {
			for l := 0; l < lanes; l++ {
				var agree uint64
				for i := 0; i < n; i++ {
					if data(aSlot+i, l) == data(wSlot+i, l) {
						agree++
					}
				}
				threshold := slotWord(data, tSlot, width, l)
				want := agree >= threshold
				if got := out(oSlot, l); got != want {
					return fmt.Errorf("lane %d: %d matches vs threshold %d read %v, want %v",
						l, agree, threshold, got, want)
				}
			}
			return nil
		},
	}, nil
}

// popcountWidth returns ⌈log₂(n+1)⌉, the counter width an n-input
// popcount needs.
func popcountWidth(n int) int {
	return bits.Len(uint(n))
}
