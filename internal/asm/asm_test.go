package asm

import (
	"bytes"
	"strings"
	"testing"

	"pimendure/internal/array"
	"pimendure/internal/core"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

func benchTraces(t *testing.T) map[string]*workloads.Benchmark {
	t.Helper()
	cfg := workloads.Config{Lanes: 8, Rows: 128, Basis: synth.NAND}
	out := map[string]*workloads.Benchmark{}
	var err error
	if out["mult"], err = workloads.ParallelMult(cfg, 4); err != nil {
		t.Fatal(err)
	}
	if out["dot"], err = workloads.DotProduct(cfg, 8, 3); err != nil {
		t.Fatal(err)
	}
	if out["conv"], err = workloads.Convolution(cfg, workloads.ConvConfig{GroupLanes: 4, MultsPerLane: 2, Bits: 3}); err != nil {
		t.Fatal(err)
	}
	if out["bnn"], err = workloads.BNNLayer(cfg, 8); err != nil {
		t.Fatal(err)
	}
	return out
}

// Every compiled benchmark must survive a print/parse round trip with
// identical ops, masks and slots.
func TestRoundTripAllBenchmarks(t *testing.T) {
	for name, b := range benchTraces(t) {
		var buf bytes.Buffer
		if err := Print(&buf, b.Trace); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr := b.Trace
		if back.Lanes != tr.Lanes || back.WriteSlots != tr.WriteSlots || back.ReadSlots != tr.ReadSlots {
			t.Fatalf("%s: header mismatch", name)
		}
		if len(back.Ops) != len(tr.Ops) {
			t.Fatalf("%s: %d ops, want %d", name, len(back.Ops), len(tr.Ops))
		}
		for i := range tr.Ops {
			if back.Ops[i] != tr.Ops[i] {
				t.Fatalf("%s op %d: %v vs %v", name, i, back.Ops[i], tr.Ops[i])
			}
		}
		for i := range tr.Masks {
			if !back.Masks[i].Equal(tr.Masks[i]) {
				t.Fatalf("%s: mask %d differs", name, i)
			}
		}
	}
}

// A round-tripped trace must simulate identically.
func TestRoundTripSimulatesIdentically(t *testing.T) {
	b := benchTraces(t)["dot"]
	var buf bytes.Buffer
	if err := Print(&buf, b.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SimConfig{Rows: 128, PresetOutputs: true, Iterations: 12, RecompileEvery: 4, Seed: 5}
	strat := core.StrategyConfig{Within: 1, Between: 1, Hw: true}
	a, err := core.Simulate(b.Trace, cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := core.Simulate(back, cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(bb) {
		t.Error("round-tripped trace wears differently")
	}
}

// A hand-written program (the paper's Algorithm 1: z = x & y) parses and
// executes correctly on the functional simulator.
func TestHandWrittenProgram(t *testing.T) {
	src := `
# Algorithm 1: z = x & y, bitwise, 8 lanes (one bit per lane)
lanes 8
mask m0 all
write d0 -> b0 @m0   # x
write d1 -> b1 @m0   # y
gate AND b0, b1 -> b2 @m0
read b2 -> d0 @m0
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	arr := array.New(array.Config{BitsPerLane: 8, Lanes: 8})
	x, y := uint8(0xA5), uint8(0x3C)
	r, err := array.NewRunner(arr, tr, array.IdentityMapper(8, 8), func(slot, lane int) bool {
		if slot == 0 {
			return x>>uint(lane)&1 == 1
		}
		return y>>uint(lane)&1 == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	var z uint8
	for l := 0; l < 8; l++ {
		if r.Out(0, l) {
			z |= 1 << uint(l)
		}
	}
	if z != x&y {
		t.Errorf("z = %#x, want %#x", z, x&y)
	}
}

// The canonical output format is stable: tools and diffs depend on it.
func TestPrintGoldenFormat(t *testing.T) {
	src := "lanes 4\nmask m0 all\nmask m1 1..2\nmask m2 {0,3}\n" +
		"write d0 -> b0 @m0\nwrite d1 -> b1 @m0\n" +
		"gate NAND b0, b1 -> b2 @m0\ngate NOT b2 -> b3 @m1\n" +
		"move b2 l+1 -> b3 @m1\nread b3 -> d0 @m2\n"
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Print(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := "# pimendure assembly\n" + src
	if buf.String() != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no lanes":          "mask m0 all\n",
		"bad lanes":         "lanes zero\n",
		"dup lanes":         "lanes 4\nlanes 4\n",
		"mask order":        "lanes 4\nmask m1 all\n",
		"bad mask range":    "lanes 4\nmask m0 2..9\n",
		"bad mask lane":     "lanes 4\nmask m0 {5}\n",
		"bad mask spec":     "lanes 4\nmask m0 everything\n",
		"unknown gate":      "lanes 4\nmask m0 all\ngate FROB b0 -> b1 @m0\n",
		"missing mask":      "lanes 4\nmask m0 all\ngate NOT b0 -> b1\n",
		"unknown mask":      "lanes 4\nmask m0 all\ngate NOT b0 -> b1 @m7\n",
		"arity mismatch":    "lanes 4\nmask m0 all\ngate NAND b0 -> b1 @m0\n",
		"bad bit":           "lanes 4\nmask m0 all\ngate NOT x0 -> b1 @m0\n",
		"bad write":         "lanes 4\nmask m0 all\nwrite b0 -> d0 @m0\n",
		"bad read":          "lanes 4\nmask m0 all\nread d0 -> b0 @m0\n",
		"bad move shift":    "lanes 4\nmask m0 all\nmove b0 q+1 -> b1 @m0\n",
		"move off array":    "lanes 4\nmask m0 all\nmove b0 l+9 -> b1 @m0\n",
		"unknown directive": "lanes 4\nfrobnicate\n",
		"op before lanes":   "gate NOT b0 -> b1 @m0\n",
		"empty":             "",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseCommentsAndNegativeShift(t *testing.T) {
	src := `
lanes 8
mask m0 4..7   # upper half
move b0 l-4 -> b1 @m0   # pull from lower half
`
	// b0/b1 must exist: declare via a write first.
	src = strings.Replace(src, "mask m0 4..7   # upper half\n",
		"mask m0 4..7   # upper half\nmask m1 all\nwrite d0 -> b0 @m1\nwrite d1 -> b1 @m1\n", 1)
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Ops[len(tr.Ops)-1]
	if last.LaneShift != -4 {
		t.Errorf("shift = %d, want -4", last.LaneShift)
	}
}
