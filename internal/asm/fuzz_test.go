package asm

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the parser: it must never panic, and
// anything it accepts must survive a print/parse round trip unchanged.
func FuzzParse(f *testing.F) {
	f.Add("lanes 4\nmask m0 all\nwrite d0 -> b0 @m0\nread b0 -> d0 @m0\n")
	f.Add("lanes 8\nmask m0 0..3\nmask m1 {0,4}\n")
	f.Add("lanes 2\nmask m0 all\nwrite d0 -> b0 @m0\nwrite d1 -> b1 @m0\ngate NAND b0, b1 -> b2 @m0\n")
	f.Add("lanes 4\nmask m0 all\nwrite d0 -> b0 @m0\nwrite d9 -> b1 @m0\nmove b0 l+1 -> b1 @m0\n")
	f.Add("# only comments\n\n")
	f.Add("lanes -1\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Print(&buf, tr); err != nil {
			t.Fatalf("printing an accepted trace failed: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, buf.String())
		}
		if len(back.Ops) != len(tr.Ops) || back.Lanes != tr.Lanes {
			t.Fatalf("round trip changed the trace")
		}
		for i := range tr.Ops {
			if back.Ops[i] != tr.Ops[i] {
				t.Fatalf("op %d changed: %v vs %v", i, back.Ops[i], tr.Ops[i])
			}
		}
	})
}
