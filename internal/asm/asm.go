// Package asm prints and parses a human-readable assembly format for
// compiled PIM traces, so programs can be inspected, diffed, hand-written
// and reloaded. One line per operation, plus a small header:
//
//	# pimendure assembly
//	lanes 8
//	mask m0 all
//	mask m1 0..3
//	mask m2 {0,4}
//	write d0 -> b0 @m0
//	gate NAND b0, b1 -> b2 @m0
//	gate NOT b2 -> b3 @m0
//	move b2 l+4 -> b5 @m1
//	read b5 -> d0 @m1
//
// Bits are b<addr>, data slots d<slot>, masks @m<id>; `move` reads its
// source from lane l+shift of every destination lane l. Comments run from
// '#' to end of line; blank lines are ignored.
package asm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pimendure/internal/gates"
	"pimendure/internal/program"
)

// Print writes the canonical assembly form of a trace.
func Print(w io.Writer, tr *program.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# pimendure assembly")
	fmt.Fprintf(bw, "lanes %d\n", tr.Lanes)
	for i, m := range tr.Masks {
		fmt.Fprintf(bw, "mask m%d %s\n", i, maskSpec(m))
	}
	for _, op := range tr.Ops {
		switch op.Kind {
		case program.OpGate:
			if op.Gate.Arity() == 1 {
				fmt.Fprintf(bw, "gate %s b%d -> b%d @m%d\n", op.Gate, op.In0, op.Out, op.Mask)
			} else {
				fmt.Fprintf(bw, "gate %s b%d, b%d -> b%d @m%d\n", op.Gate, op.In0, op.In1, op.Out, op.Mask)
			}
		case program.OpWrite:
			fmt.Fprintf(bw, "write d%d -> b%d @m%d\n", op.Data, op.Out, op.Mask)
		case program.OpRead:
			fmt.Fprintf(bw, "read b%d -> d%d @m%d\n", op.In0, op.Data, op.Mask)
		case program.OpMove:
			fmt.Fprintf(bw, "move b%d l%+d -> b%d @m%d\n", op.In0, op.LaneShift, op.Out, op.Mask)
		default:
			return fmt.Errorf("asm: unknown op kind %d", op.Kind)
		}
	}
	return bw.Flush()
}

// maskSpec renders a mask as "all", a contiguous "lo..hi" range, or an
// explicit "{a,b,c}" list.
func maskSpec(m *program.Mask) string {
	if m.Full() {
		return "all"
	}
	lanes := m.Lanes()
	if len(lanes) > 0 {
		contiguous := true
		for i := 1; i < len(lanes); i++ {
			if lanes[i] != lanes[i-1]+1 {
				contiguous = false
				break
			}
		}
		if contiguous {
			return fmt.Sprintf("%d..%d", lanes[0], lanes[len(lanes)-1])
		}
	}
	parts := make([]string, len(lanes))
	for i, l := range lanes {
		parts[i] = strconv.Itoa(l)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Parse reads assembly back into a validated trace.
func Parse(r io.Reader) (*program.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tr *program.Trace
	var maskIDs []program.MaskID
	lineNo := 0
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("asm: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		raw := strings.Fields(line)
		if len(raw) == 0 {
			continue
		}
		fields := raw
		switch raw[0] {
		case "gate", "write", "read", "move":
			// Op lines use commas and arrows as punctuation; mask
			// directives must keep their {a,b,c} literals intact.
			fields = strings.Fields(strings.NewReplacer(",", " ", "->", " -> ").Replace(line))
		}
		switch fields[0] {
		case "lanes":
			if tr != nil {
				return nil, fail("duplicate lanes directive")
			}
			n, err := strconv.Atoi(atLeast(fields, 1))
			if err != nil || n <= 0 {
				return nil, fail("bad lane count %q", atLeast(fields, 1))
			}
			tr = program.NewTrace(n)
		case "mask":
			if tr == nil {
				return nil, fail("mask before lanes")
			}
			if len(fields) < 3 || !strings.HasPrefix(fields[1], "m") {
				return nil, fail("malformed mask directive")
			}
			idx, err := strconv.Atoi(fields[1][1:])
			if err != nil || idx != len(maskIDs) {
				return nil, fail("masks must be declared in order m0, m1, …")
			}
			m, err := parseMaskSpec(strings.Join(fields[2:], ""), tr.Lanes)
			if err != nil {
				return nil, fail("%v", err)
			}
			maskIDs = append(maskIDs, tr.AddMask(m))
		case "gate", "write", "read", "move":
			if tr == nil {
				return nil, fail("op before lanes")
			}
			op, err := parseOp(fields, maskIDs)
			if err != nil {
				return nil, fail("%v", err)
			}
			if op.Kind == program.OpWrite && int(op.Data) >= tr.WriteSlots {
				tr.WriteSlots = int(op.Data) + 1
			}
			if op.Kind == program.OpRead && int(op.Data) >= tr.ReadSlots {
				tr.ReadSlots = int(op.Data) + 1
			}
			tr.Append(op)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	if tr == nil {
		return nil, fmt.Errorf("asm: no lanes directive")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return tr, nil
}

func atLeast(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

func parseMaskSpec(spec string, lanes int) (*program.Mask, error) {
	switch {
	case spec == "all":
		return program.FullMask(lanes), nil
	case strings.HasPrefix(spec, "{") && strings.HasSuffix(spec, "}"):
		m := program.NewMask(lanes)
		body := strings.Trim(spec, "{}")
		if body == "" {
			return m, nil
		}
		for _, part := range strings.Split(body, ",") {
			l, err := strconv.Atoi(part)
			if err != nil || l < 0 || l >= lanes {
				return nil, fmt.Errorf("bad mask lane %q", part)
			}
			m.Set(l)
		}
		return m, nil
	case strings.Contains(spec, ".."):
		parts := strings.SplitN(spec, "..", 2)
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || lo < 0 || hi < lo || hi >= lanes {
			return nil, fmt.Errorf("bad mask range %q", spec)
		}
		return program.RangeMask(lanes, lo, hi+1), nil
	}
	return nil, fmt.Errorf("bad mask spec %q", spec)
}

// parseOp decodes one op line. fields have commas stripped and "->"
// isolated.
func parseOp(fields []string, masks []program.MaskID) (program.Op, error) {
	var op program.Op
	// Split off the trailing @m<id>.
	last := fields[len(fields)-1]
	if !strings.HasPrefix(last, "@m") {
		return op, fmt.Errorf("missing @mask on %q op", fields[0])
	}
	mi, err := strconv.Atoi(last[2:])
	if err != nil || mi < 0 || mi >= len(masks) {
		return op, fmt.Errorf("unknown mask %q", last)
	}
	op.Mask = masks[mi]
	fields = fields[:len(fields)-1]
	op.Out, op.In0, op.In1 = program.NoBit, program.NoBit, program.NoBit

	bit := func(tok string) (program.Bit, error) {
		if !strings.HasPrefix(tok, "b") {
			return 0, fmt.Errorf("expected bit, got %q", tok)
		}
		v, err := strconv.Atoi(tok[1:])
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad bit %q", tok)
		}
		return program.Bit(v), nil
	}
	slot := func(tok string) (int32, error) {
		if !strings.HasPrefix(tok, "d") {
			return 0, fmt.Errorf("expected data slot, got %q", tok)
		}
		v, err := strconv.Atoi(tok[1:])
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad data slot %q", tok)
		}
		return int32(v), nil
	}

	switch fields[0] {
	case "gate":
		op.Kind = program.OpGate
		kind, ok := gateByName(atLeast(fields, 1))
		if !ok {
			return op, fmt.Errorf("unknown gate %q", atLeast(fields, 1))
		}
		op.Gate = kind
		want := 5 + kind.Arity() // gate NAME in0 [in1] -> out
		if len(fields) != want-1 {
			return op, fmt.Errorf("%s takes %d input(s)", kind, kind.Arity())
		}
		if op.In0, err = bit(fields[2]); err != nil {
			return op, err
		}
		rest := fields[3:]
		if kind.Arity() == 2 {
			if op.In1, err = bit(fields[3]); err != nil {
				return op, err
			}
			rest = fields[4:]
		}
		if len(rest) != 2 || rest[0] != "->" {
			return op, fmt.Errorf("malformed gate line")
		}
		if op.Out, err = bit(rest[1]); err != nil {
			return op, err
		}
	case "write": // write d0 -> b3
		op.Kind = program.OpWrite
		if len(fields) != 4 || fields[2] != "->" {
			return op, fmt.Errorf("malformed write line")
		}
		if op.Data, err = slot(fields[1]); err != nil {
			return op, err
		}
		if op.Out, err = bit(fields[3]); err != nil {
			return op, err
		}
	case "read": // read b3 -> d0
		op.Kind = program.OpRead
		if len(fields) != 4 || fields[2] != "->" {
			return op, fmt.Errorf("malformed read line")
		}
		if op.In0, err = bit(fields[1]); err != nil {
			return op, err
		}
		if op.Data, err = slot(fields[3]); err != nil {
			return op, err
		}
	case "move": // move b2 l+4 -> b5
		op.Kind = program.OpMove
		if len(fields) != 5 || fields[3] != "->" {
			return op, fmt.Errorf("malformed move line")
		}
		if op.In0, err = bit(fields[1]); err != nil {
			return op, err
		}
		if !strings.HasPrefix(fields[2], "l") {
			return op, fmt.Errorf("expected lane shift, got %q", fields[2])
		}
		shift, err := strconv.Atoi(fields[2][1:])
		if err != nil {
			return op, fmt.Errorf("bad lane shift %q", fields[2])
		}
		op.LaneShift = int32(shift)
		if op.Out, err = bit(fields[4]); err != nil {
			return op, err
		}
	}
	return op, nil
}

// gateByName resolves a gate mnemonic.
func gateByName(name string) (gates.Kind, bool) {
	for _, k := range gates.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
