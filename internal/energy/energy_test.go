package energy

import (
	"math"
	"testing"

	"pimendure/internal/program"
	"pimendure/internal/synth"
)

func mult32Trace(t *testing.T) *program.Trace {
	t.Helper()
	bld := program.NewBuilder(1, 1023)
	x := bld.AllocN(32)
	y := bld.AllocN(32)
	synth.Dadda(bld, synth.NAND, x, y)
	return bld.Trace()
}

func TestModelsValid(t *testing.T) {
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if err := (Model{Name: "bad"}).Validate(); err == nil {
		t.Error("zero model accepted")
	}
	// Write dominates read in every NVM technology.
	for _, m := range Models() {
		if m.WriteJ <= m.ReadJ {
			t.Errorf("%s: write energy should dominate", m.Name)
		}
	}
	// PCM writes are the most expensive, MRAM the cheapest.
	if !(PCM().WriteJ > RRAM().WriteJ && RRAM().WriteJ > MRAM().WriteJ) {
		t.Error("technology write-energy ordering wrong")
	}
}

// One 32-bit in-memory multiply on a single lane: 9 824 writes and 19 616
// reads priced exactly.
func TestOfTraceMatchesCounts(t *testing.T) {
	tr := mult32Trace(t)
	m := MRAM()
	b, err := OfTrace(tr, false, m)
	if err != nil {
		t.Fatal(err)
	}
	wantW := 9824 * m.WriteJ
	wantR := 19616 * m.ReadJ
	if math.Abs(b.WriteJ-wantW) > 1e-18 || math.Abs(b.ReadJ-wantR) > 1e-18 {
		t.Errorf("breakdown %+v, want writes %g reads %g", b, wantW, wantR)
	}
	// Preset doubles write energy exactly.
	bp, err := OfTrace(tr, true, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bp.WriteJ-2*wantW) > 1e-18 {
		t.Errorf("preset writes %g, want %g", bp.WriteJ, 2*wantW)
	}
	if b.Total() != b.ReadJ+b.WriteJ {
		t.Error("total inconsistent")
	}
	if _, err := OfTrace(tr, false, Model{Name: "bad"}); err == nil {
		t.Error("invalid model accepted")
	}
}

// The PIM-vs-conventional energy comparison the paper's motivation rests
// on: with fJ-class MTJ writes, avoiding off-chip movement keeps an MRAM
// PIM multiply in the same energy class as a CPU multiply despite its
// 150× write amplification — while pJ-class PCM writes lose that parity.
func TestPIMVersusConventional(t *testing.T) {
	tr := mult32Trace(t)
	conv := DefaultConv().MultiplyJ(32)
	mram, _ := OfTrace(tr, true, MRAM())
	ratio := mram.Total() / conv
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("MRAM PIM/conventional ratio %.2f outside the same energy class", ratio)
	}
	pcm, _ := OfTrace(tr, true, PCM())
	if pcm.Total() < 10*mram.Total() {
		t.Error("PCM writes should cost well over 10x MRAM")
	}
	if pcm.Total() < 10*conv {
		t.Error("PCM-class writes should lose energy parity with the CPU")
	}
}

func TestEnergyDelayProduct(t *testing.T) {
	b := Breakdown{ReadJ: 1e-9, WriteJ: 3e-9}
	got := EnergyDelayProduct(b, 1000, 3e-9)
	want := 4e-9 * 1000 * 3e-9
	if math.Abs(got-want) > 1e-24 {
		t.Errorf("EDP = %g, want %g", got, want)
	}
}

func TestToFailure(t *testing.T) {
	b := Breakdown{WriteJ: 2e-9}
	if got := ToFailure(b, 1e6); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("energy to failure = %g, want 2e-3", got)
	}
}

func TestConvMultiplyJ(t *testing.T) {
	c := ConvModel{BitMoveJ: 1e-12, OpJ: 10e-12}
	// 128 bits moved + ALU.
	if got, want := c.MultiplyJ(32), 128e-12+10e-12; math.Abs(got-want) > 1e-18 {
		t.Errorf("conv multiply = %g, want %g", got, want)
	}
}
