// Package energy models the energy cost of PIM execution. The paper's
// motivation for nonvolatile PIM is extreme energy efficiency (§1, §2.2);
// its evaluation accounts for "architecture specific latency and energy
// efficiency overheads" (§4), and Table 2's shuffle overhead "corresponds
// directly to extra latency and energy" because all gates are sequential.
// This package makes those statements computable: per-cell read/write
// energies per technology, trace-level totals, the conventional
// (data-movement) comparison, and energy-to-failure.
package energy

import (
	"fmt"

	"pimendure/internal/program"
)

// Model carries per-access energies in joules.
type Model struct {
	// Name labels the model in reports.
	Name string
	// ReadJ is the energy of sensing one cell.
	ReadJ float64
	// WriteJ is the energy of programming one cell (the dominant cost in
	// every NVM technology).
	WriteJ float64
}

// Validate reports malformed parameters.
func (m Model) Validate() error {
	if m.ReadJ <= 0 || m.WriteJ <= 0 {
		return fmt.Errorf("energy: non-positive access energies in %q", m.Name)
	}
	return nil
}

// Representative per-cell access energies from the PIM literature the
// paper builds on (orders of magnitude only — sub-pJ STT-MTJ switching,
// pJ-class RRAM/PCM programming; all models are user-overridable).
func MRAM() Model { return Model{Name: "MRAM", ReadJ: 10e-15, WriteJ: 100e-15} }
func RRAM() Model { return Model{Name: "RRAM", ReadJ: 25e-15, WriteJ: 1e-12} }
func PCM() Model  { return Model{Name: "PCM", ReadJ: 50e-15, WriteJ: 5e-12} }

// Models lists the built-in device energy models.
func Models() []Model { return []Model{MRAM(), RRAM(), PCM()} }

// Breakdown is the energy of one trace execution split by access type.
type Breakdown struct {
	ReadJ  float64
	WriteJ float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.ReadJ + b.WriteJ }

// OfTrace integrates the model over one execution of a trace: every cell
// read and write of every op, across all active lanes, including the
// CRAM output-preset writes when presetOutputs is set.
func OfTrace(tr *program.Trace, presetOutputs bool, m Model) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	return Breakdown{
		ReadJ:  float64(tr.CellReads()) * m.ReadJ,
		WriteJ: float64(tr.CellWrites(presetOutputs)) * m.WriteJ,
	}, nil
}

// ConvModel is the conventional-architecture energy reference: operands
// cross a memory bus to a CPU, so the dominant terms are per-bit data
// movement and the core's per-operation energy (pipeline, register file,
// caches — far more than the bare ALU).
type ConvModel struct {
	// BitMoveJ is the energy to move one bit between memory and the CPU
	// (off-chip DRAM-class movement is ~1–10 pJ/bit).
	BitMoveJ float64
	// OpJ is the whole-core energy of executing one arithmetic
	// operation (hundreds of pJ on a server-class core).
	OpJ float64
}

// DefaultConv returns a representative conventional reference
// (10 pJ/bit off-chip movement, 500 pJ per core operation).
func DefaultConv() ConvModel { return ConvModel{BitMoveJ: 10e-12, OpJ: 500e-12} }

// MultiplyJ returns the conventional energy of one b-bit multiply: 2b bits
// in, 2b bits out, one core op (§3.1's traffic model).
func (c ConvModel) MultiplyJ(bits int) float64 {
	return float64(4*bits)*c.BitMoveJ + c.OpJ
}

// EnergyDelayProduct combines a trace's energy with its latency.
func EnergyDelayProduct(b Breakdown, steps int, stepSeconds float64) float64 {
	return b.Total() * float64(steps) * stepSeconds
}

// ToFailure returns the total energy an array dissipates before its first
// cell fails: energy per iteration × iterations-to-failure.
func ToFailure(perIteration Breakdown, iterationsToFailure float64) float64 {
	return perIteration.Total() * iterationsToFailure
}
