package gates

import (
	"testing"
	"testing/quick"
)

func TestArity(t *testing.T) {
	for _, k := range Kinds() {
		want := 2
		if k == NOT || k == COPY {
			want = 1
		}
		if got := k.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", k, got, want)
		}
	}
}

func TestTruthTables(t *testing.T) {
	cases := []struct {
		k    Kind
		out  [4]bool // indexed by a*2+b for two-input; [a*2] for one-input
		name string
	}{
		{NOT, [4]bool{true, true, false, false}, "NOT"},
		{COPY, [4]bool{false, false, true, true}, "COPY"},
		{AND, [4]bool{false, false, false, true}, "AND"},
		{NAND, [4]bool{true, true, true, false}, "NAND"},
		{OR, [4]bool{false, true, true, true}, "OR"},
		{NOR, [4]bool{true, false, false, false}, "NOR"},
		{XOR, [4]bool{false, true, true, false}, "XOR"},
		{XNOR, [4]bool{true, false, false, true}, "XNOR"},
	}
	for _, c := range cases {
		for i := 0; i < 4; i++ {
			a, b := i/2 == 1, i%2 == 1
			if got := c.k.Eval(a, b); got != c.out[i] {
				t.Errorf("%s.Eval(%v,%v) = %v, want %v", c.name, a, b, got, c.out[i])
			}
		}
	}
}

func TestStringAndValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	bad := Kind(200)
	if bad.Valid() {
		t.Error("Kind(200) should be invalid")
	}
	if bad.String() != "Kind(200)" {
		t.Errorf("bad.String() = %q", bad.String())
	}
}

func TestEvalPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on invalid kind should panic")
		}
	}()
	Kind(99).Eval(true, false)
}

func TestCellCosts(t *testing.T) {
	for _, k := range Kinds() {
		if k.CellWrites() != 1 {
			t.Errorf("%v.CellWrites() = %d, want 1", k, k.CellWrites())
		}
		if k.CellReads() != k.Arity() {
			t.Errorf("%v.CellReads() = %d, want arity %d", k, k.CellReads(), k.Arity())
		}
	}
}

// NAND and NOR must each be self-sufficient universal sets; AND alone, or
// NOT alone, must not be.
func TestIsUniversal(t *testing.T) {
	cases := []struct {
		set  []Kind
		want bool
	}{
		{[]Kind{NAND}, true},
		{[]Kind{NOR}, true},
		{[]Kind{NOT, AND}, true},
		{[]Kind{NOT, OR}, true},
		{[]Kind{AND, OR}, false},
		{[]Kind{NOT}, false},
		{[]Kind{COPY, XOR}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsUniversal(c.set); got != c.want {
			t.Errorf("IsUniversal(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

// Property: NAND(a,b) == NOT(AND(a,b)) and the De Morgan dual holds, for
// all inputs. This pins the truth tables against each other.
func TestGateAlgebraProperties(t *testing.T) {
	f := func(a, b bool) bool {
		if NAND.Eval(a, b) != NOT.Eval(AND.Eval(a, b), false) {
			return false
		}
		if NOR.Eval(a, b) != NOT.Eval(OR.Eval(a, b), false) {
			return false
		}
		if XOR.Eval(a, b) != OR.Eval(AND.Eval(a, NOT.Eval(b, false)), AND.Eval(NOT.Eval(a, false), b)) {
			return false
		}
		if XNOR.Eval(a, b) != NOT.Eval(XOR.Eval(a, b), false) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
