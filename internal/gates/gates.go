// Package gates defines the Boolean logic gates that digital
// processing-in-memory (PIM) architectures execute directly inside a memory
// array.
//
// The paper (Resch et al., ISCA 2023, §2.2) abstracts all representative
// PIM designs (Pinatubo, MAGIC, Felix, CRAM) into a single operating
// semantic: a gate reads one or two input memory cells and writes one
// output memory cell. This package captures that semantic: every gate kind
// knows its arity, its truth table, and its cell read/write cost, which is
// what the endurance analysis is built on.
package gates

import "fmt"

// Kind identifies a logic gate type.
type Kind uint8

// The gate kinds supported by the simulated PIM architectures. COPY and NOT
// are single-input; the rest take two inputs. All produce one output bit
// written to a memory cell.
const (
	NOT Kind = iota
	COPY
	AND
	NAND
	OR
	NOR
	XOR
	XNOR
	numKinds
)

var kindNames = [numKinds]string{
	NOT:  "NOT",
	COPY: "COPY",
	AND:  "AND",
	NAND: "NAND",
	OR:   "OR",
	NOR:  "NOR",
	XOR:  "XOR",
	XNOR: "XNOR",
}

// String returns the conventional gate name.
func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Valid reports whether k is a defined gate kind.
func (k Kind) Valid() bool { return k < numKinds }

// Arity returns the number of input cells the gate reads (1 or 2).
func (k Kind) Arity() int {
	switch k {
	case NOT, COPY:
		return 1
	default:
		return 2
	}
}

// Eval computes the gate's output for the given inputs. Single-input gates
// ignore b. Eval panics on an invalid kind so that a corrupted trace is
// caught immediately rather than silently miscounted.
func (k Kind) Eval(a, b bool) bool {
	switch k {
	case NOT:
		return !a
	case COPY:
		return a
	case AND:
		return a && b
	case NAND:
		return !(a && b)
	case OR:
		return a || b
	case NOR:
		return !(a || b)
	case XOR:
		return a != b
	case XNOR:
		return a == b
	}
	panic(fmt.Sprintf("gates: invalid kind %d", uint8(k)))
}

// EvalWord computes the gate's output for 64 lanes at once, one lane per
// bit (the bit-packed array simulator's kernel). Single-input gates
// ignore b. Inactive-lane bits produce garbage the caller masks off.
// Like Eval, it panics on an invalid kind.
func (k Kind) EvalWord(a, b uint64) uint64 {
	switch k {
	case NOT:
		return ^a
	case COPY:
		return a
	case AND:
		return a & b
	case NAND:
		return ^(a & b)
	case OR:
		return a | b
	case NOR:
		return ^(a | b)
	case XOR:
		return a ^ b
	case XNOR:
		return ^(a ^ b)
	}
	panic(fmt.Sprintf("gates: invalid kind %d", uint8(k)))
}

// EvalWords is the bulk form of EvalWord: it evaluates the gate over
// parallel word slices and merges each result into dst under the
// corresponding lane-mask word — dst[i] keeps its bits where mask[i] is
// 0, takes the gate's where it is 1, and all-ones words are stored
// directly. The gate-kind dispatch is hoisted out of the per-word loop
// (every kind reduces to one of four base word ops plus an optional
// inversion), so a whole row evaluates with one switch instead of one
// per word. Zero-mask words are skipped. Single-input gates ignore b;
// slices must share a length. Like Eval, it panics on an invalid kind.
func (k Kind) EvalWords(dst, a, b, mask []uint64) {
	var inv uint64
	switch k {
	case NOT, NAND, NOR, XNOR:
		inv = ^uint64(0)
	}
	switch k {
	case NOT, COPY:
		for i, m := range mask {
			if m != 0 {
				mergeWord(dst, i, a[i]^inv, m)
			}
		}
	case AND, NAND:
		for i, m := range mask {
			if m != 0 {
				mergeWord(dst, i, (a[i]&b[i])^inv, m)
			}
		}
	case OR, NOR:
		for i, m := range mask {
			if m != 0 {
				mergeWord(dst, i, (a[i]|b[i])^inv, m)
			}
		}
	case XOR, XNOR:
		for i, m := range mask {
			if m != 0 {
				mergeWord(dst, i, (a[i]^b[i])^inv, m)
			}
		}
	default:
		panic(fmt.Sprintf("gates: invalid kind %d", uint8(k)))
	}
}

// mergeWord lands a gate result word into dst[i] under a lane mask.
func mergeWord(dst []uint64, i int, v, m uint64) {
	if m == ^uint64(0) {
		dst[i] = v
		return
	}
	dst[i] = (dst[i] &^ m) | (v & m)
}

// CellReads returns the number of memory-cell read operations a single
// execution of the gate induces: one per input cell (§2.2 — current is
// passed through every input device).
func (k Kind) CellReads() int { return k.Arity() }

// CellWrites returns the number of memory-cell write operations a single
// execution of the gate induces on the output cell, excluding any
// architecture-specific output preset (see array.Config.PresetOutputs).
func (k Kind) CellWrites() int { return 1 }

// Kinds returns all defined gate kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// IsUniversal reports whether the given set of gate kinds is functionally
// complete (can synthesize any Boolean function). It checks the classical
// criteria: the set must contain a gate that is not monotone-preserving in
// a way that allows inversion, which for this small catalogue reduces to
// containing NAND or NOR, or containing NOT (or an inverting two-input
// gate) together with AND or OR.
func IsUniversal(set []Kind) bool {
	have := map[Kind]bool{}
	for _, k := range set {
		have[k] = true
	}
	if have[NAND] || have[NOR] {
		return true
	}
	return have[NOT] && (have[AND] || have[OR])
}
