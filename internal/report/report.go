// Package report formats experiment results as Markdown and CSV tables,
// mirroring the tables and figure series of the paper's evaluation.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteMarkdown renders the table as GitHub-flavored Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (no quoting: cells must not contain
// commas or newlines, which experiment outputs here never do).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for _, cell := range row {
			if strings.ContainsAny(cell, ",\n") {
				return fmt.Errorf("report: cell %q needs quoting, refusing", cell)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown returns the Markdown rendering as a string.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if err := t.WriteMarkdown(&sb); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		panic(err)
	}
	return sb.String()
}

// Fixed formats a float with the given number of decimals.
func Fixed(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Sci formats a float in scientific notation with 3 significant digits.
func Sci(v float64) string {
	return fmt.Sprintf("%.3g", v)
}

// Pct formats a ratio as a percentage with the given decimals.
func Pct(v float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, v*100)
}

// Times formats an improvement factor like the paper's "2.22×".
func Times(v float64) string {
	return fmt.Sprintf("%.2f×", v)
}
