package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Table 3", "Benchmark", "Lifetime")
	tb.AddRow("mult", "1.59×")
	tb.AddRow("conv", "2.22×")
	md := tb.Markdown()
	for _, want := range []string{"### Table 3", "| Benchmark | Lifetime |", "| --- | --- |", "| conv | 2.22× |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableMarkdownNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	if strings.Contains(tb.Markdown(), "###") {
		t.Error("untitled table should not emit a heading")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("csv = %q", buf.String())
	}
	tb.AddRow("with,comma", "x")
	if err := tb.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("comma cell accepted")
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong arity should panic")
		}
	}()
	tb.AddRow("only-one")
}

// failAfter errors once n bytes have been written — exercising every
// error-propagation branch of the writers.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFull
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errFull
	}
	f.n -= len(p)
	return len(p), nil
}

var errFull = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestWriterErrorsPropagate(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var md, csv bytes.Buffer
	if err := tb.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for budget := 0; budget < md.Len(); budget++ {
		if err := tb.WriteMarkdown(&failAfter{n: budget}); err == nil {
			t.Fatalf("markdown with %d-byte budget should fail", budget)
		}
	}
	for budget := 0; budget < csv.Len(); budget++ {
		if err := tb.WriteCSV(&failAfter{n: budget}); err == nil {
			t.Fatalf("csv with %d-byte budget should fail", budget)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Fixed(3.14159, 2) != "3.14" {
		t.Error("Fixed wrong")
	}
	if Sci(1.07e14) != "1.07e+14" {
		t.Errorf("Sci = %q", Sci(1.07e14))
	}
	if Pct(0.6178, 2) != "61.78%" {
		t.Errorf("Pct = %q", Pct(0.6178, 2))
	}
	if Times(2.217) != "2.22×" {
		t.Errorf("Times = %q", Times(2.217))
	}
}
