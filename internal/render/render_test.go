package render

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"pimendure/internal/stats"
)

func rampGrid() *stats.Grid {
	g := stats.NewGrid(2, 3)
	copy(g.Data, []float64{0, 0.2, 0.4, 0.6, 0.8, 1})
	return g
}

func TestHeatColorEndpointsAndClamp(t *testing.T) {
	cold := HeatColor(0)
	hot := HeatColor(1)
	if cold == hot {
		t.Fatal("ramp endpoints identical")
	}
	if HeatColor(-5) != cold || HeatColor(7) != hot {
		t.Error("clamping broken")
	}
	mid := HeatColor(0.5)
	if mid == cold || mid == hot {
		t.Error("midpoint should be distinct from the endpoints")
	}
	// Monotone brightness proxy: hot end should be brighter than cold.
	bright := func(c [4]uint8) int { return int(c[0]) + int(c[1]) + int(c[2]) }
	cC := cold
	cH := hot
	if bright([4]uint8{cH.R, cH.G, cH.B, 0}) <= bright([4]uint8{cC.R, cC.G, cC.B, 0}) {
		t.Error("hot end should be brighter")
	}
}

func TestHeatmapPNG(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapPNG(&buf, rampGrid(), 4); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 12 || b.Dy() != 8 {
		t.Errorf("image %dx%d, want 12x8", b.Dx(), b.Dy())
	}
	if err := HeatmapPNG(&bytes.Buffer{}, rampGrid(), 0); err == nil {
		t.Error("zero scale accepted")
	}
	if err := HeatmapPNG(&bytes.Buffer{}, stats.NewGrid(0, 0), 1); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestHeatmapPGM(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapPGM(&buf, rampGrid()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P2\n3 2\n255\n") {
		t.Errorf("bad PGM header: %q", s[:20])
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // header 3 + 2 data rows
		t.Errorf("PGM has %d lines", len(lines))
	}
	last := strings.Fields(lines[4])
	if last[len(last)-1] != "255" {
		t.Errorf("max cell should render 255, got %s", last[len(last)-1])
	}
	first := strings.Fields(lines[3])
	if first[0] != "0" {
		t.Errorf("zero cell should render 0, got %s", first[0])
	}
}

func TestGridCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := GridCSV(&buf, rampGrid()); err != nil {
		t.Fatal(err)
	}
	want := "0,0.2,0.4\n0.6,0.8,1\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

// failAfter errors once its byte budget is exhausted.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFull
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errFull
	}
	f.n -= len(p)
	return len(p), nil
}

var errFull = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestWriterErrorsPropagate(t *testing.T) {
	g := rampGrid()
	size := func(fn func(w *bytes.Buffer) error) int {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	pgmLen := size(func(w *bytes.Buffer) error { return HeatmapPGM(w, g) })
	csvLen := size(func(w *bytes.Buffer) error { return GridCSV(w, g) })
	serLen := size(func(w *bytes.Buffer) error { return SeriesCSV(w, []string{"x"}, []float64{1, 2, 3}) })
	for budget := 0; budget < pgmLen; budget += 3 {
		if err := HeatmapPGM(&failAfter{n: budget}, g); err == nil {
			t.Fatalf("PGM with %d-byte budget should fail", budget)
		}
	}
	for budget := 0; budget < csvLen; budget += 3 {
		if err := GridCSV(&failAfter{n: budget}, g); err == nil {
			t.Fatalf("CSV with %d-byte budget should fail", budget)
		}
	}
	for budget := 0; budget < serLen; budget++ {
		if err := SeriesCSV(&failAfter{n: budget}, []string{"x"}, []float64{1, 2, 3}); err == nil {
			t.Fatalf("series CSV with %d-byte budget should fail", budget)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := SeriesCSV(&buf, []string{"x", "y"}, []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,3\n2,4\n" {
		t.Errorf("csv = %q", buf.String())
	}
	if err := SeriesCSV(&buf, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := SeriesCSV(&buf, []string{"x", "y"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns accepted")
	}
	if err := SeriesCSV(&buf, nil); err == nil {
		t.Error("no columns accepted")
	}
}
