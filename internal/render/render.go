// Package render emits the paper's heatmaps (Figs. 14–16) and series data
// as PNG, PGM and CSV using only the standard library. Grids are expected
// normalized to [0, 1] (1 = maximum utilization, as in the paper's color
// scale); out-of-range values are clamped.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"pimendure/internal/stats"
)

// heatStop is one anchor of the color ramp.
type heatStop struct {
	v       float64
	r, g, b uint8
}

// heatRamp approximates the dark-blue → green → yellow ramp used for
// write-density heatmaps: cold cells dark, hot cells bright.
var heatRamp = []heatStop{
	{0.00, 13, 8, 135},
	{0.25, 84, 2, 163},
	{0.50, 186, 55, 107},
	{0.75, 251, 140, 41},
	{1.00, 240, 249, 33},
}

// HeatColor maps a normalized value to the ramp, clamping to [0, 1].
func HeatColor(v float64) color.RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	for i := 1; i < len(heatRamp); i++ {
		lo, hi := heatRamp[i-1], heatRamp[i]
		if v <= hi.v {
			t := (v - lo.v) / (hi.v - lo.v)
			lerp := func(a, b uint8) uint8 { return uint8(float64(a) + t*(float64(b)-float64(a)) + 0.5) }
			return color.RGBA{R: lerp(lo.r, hi.r), G: lerp(lo.g, hi.g), B: lerp(lo.b, hi.b), A: 255}
		}
	}
	last := heatRamp[len(heatRamp)-1]
	return color.RGBA{R: last.r, G: last.g, B: last.b, A: 255}
}

// HeatmapPNG writes the grid as a PNG, each cell scaled to scale×scale
// pixels.
func HeatmapPNG(w io.Writer, g *stats.Grid, scale int) error {
	if scale < 1 {
		return fmt.Errorf("render: scale must be ≥ 1, got %d", scale)
	}
	if g.Rows == 0 || g.Cols == 0 {
		return fmt.Errorf("render: empty grid")
	}
	img := image.NewRGBA(image.Rect(0, 0, g.Cols*scale, g.Rows*scale))
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			col := HeatColor(g.At(r, c))
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.SetRGBA(c*scale+dx, r*scale+dy, col)
				}
			}
		}
	}
	return png.Encode(w, img)
}

// HeatmapPGM writes the grid as a plain-text (P2) PGM grayscale image —
// easily diffable and viewable without tooling.
func HeatmapPGM(w io.Writer, g *stats.Grid) error {
	if g.Rows == 0 || g.Cols == 0 {
		return fmt.Errorf("render: empty grid")
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", g.Cols, g.Rows); err != nil {
		return err
	}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			v := g.At(r, c)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			sep := " "
			if c == g.Cols-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%d%s", int(v*255+0.5), sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// GridCSV writes the grid as comma-separated rows.
func GridCSV(w io.Writer, g *stats.Grid) error {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			sep := ","
			if c == g.Cols-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%g%s", g.At(r, c), sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesCSV writes aligned series as a CSV with a header row. All columns
// must have equal length.
func SeriesCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("render: %d headers for %d columns", len(headers), len(cols))
	}
	if len(cols) == 0 {
		return fmt.Errorf("render: no columns")
	}
	n := len(cols[0])
	for _, c := range cols {
		if len(c) != n {
			return fmt.Errorf("render: ragged columns")
		}
	}
	for i, h := range headers {
		sep := ","
		if i == len(headers)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", h, sep); err != nil {
			return err
		}
	}
	for r := 0; r < n; r++ {
		for i := range cols {
			sep := ","
			if i == len(cols)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%g%s", cols[i][r], sep); err != nil {
				return err
			}
		}
	}
	return nil
}
