// Package pimendure is a from-scratch Go reproduction of "On Endurance of
// Processing in (Nonvolatile) Memory" (Resch et al., ISCA 2023): an
// instruction-level-accurate simulator and analysis toolkit for the write
// endurance of digital processing-in-memory on nonvolatile arrays.
//
// The public API lives in package pimendure/pim; the runnable Example in
// this package walks the whole pipeline (compile → verify → sweep → rank)
// in a dozen lines. The flow mirrors the paper's evaluation:
//
//	workload kernel  (internal/workloads, pim/kernel)
//	    │ gate-level synthesis (internal/synth)
//	    ▼
//	program trace    (internal/program — logical-bit IR)
//	    │ logical→physical mapping (internal/mapping: St/Ra/Bs ± Hw renamer)
//	    ▼
//	wear engines     (internal/core — factorized fast path, memoized
//	    │             parallel +Hw replay, brute-force cross-validation)
//	    ▼
//	write dists      (core.WriteDist) → lifetime (internal/lifetime, Eq. 4)
//	    │
//	    ▼
//	stats & render   (internal/stats, internal/render, internal/report)
//
// Every run is observable through internal/obs: stage-scoped timers,
// atomic counters (epochs, memoization hits, cell writes accumulated)
// and a JSON run manifest that each CLI writes next to its artifacts —
// see docs/ARCHITECTURE.md for the layer-by-layer walk and
// docs/ARTIFACTS.md for the out/-file ↔ paper-figure map.
//
// Executables under cmd/ regenerate every table and figure of the
// paper's evaluation; runnable examples live under examples/. See
// README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The root package anchors the module-level documentation, the overview
// Example, and the benchmark harness in bench_test.go.
package pimendure
