// Package pimendure is a from-scratch Go reproduction of "On Endurance of
// Processing in (Nonvolatile) Memory" (Resch et al., ISCA 2023): an
// instruction-level-accurate simulator and analysis toolkit for the write
// endurance of digital processing-in-memory on nonvolatile arrays.
//
// The public API lives in package pimendure/pim. Executables under cmd/
// regenerate every table and figure of the paper's evaluation; runnable
// examples live under examples/. See README.md for a tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package only anchors the module-level documentation and the
// benchmark harness in bench_test.go.
package pimendure
