// Arena concurrency stress: one WearPlan — and therefore one scratch
// arena (internal/core/arena.go) — shared simultaneously by pim.Sweep,
// serve jobs and system.Stripe (via pim.BankStripe), all drawing counts
// buffers, engine scratch and job histograms from the same lock-guarded
// free lists. Every result is checksummed against a cold serial run on a
// private plan: a buffer handed to two jobs at once, or returned dirty
// where a zeroed buffer is expected, shows up as a checksum mismatch
// here (and as a data race under `make race`, which runs this file too).
package pimendure

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"pimendure/internal/serve"
	"pimendure/pim"
)

// countsFNV mirrors the serving layer's dist_fnv checksum (FNV-64a over
// little-endian cells), so serve results compare against local ones.
func countsFNV(counts []uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range counts {
		for i := range buf {
			buf[i] = byte(c >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestArenaSharedAcrossSubsystems(t *testing.T) {
	opt := pim.Options{Lanes: 64, Rows: 256, PresetOutputs: true, NANDBasis: true}
	const bits = 16
	bench, err := pim.NewParallelMult(opt, bits)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 60, RecompileEvery: 7, Seed: 3}
	tech := pim.MRAM()
	bankCfg := pim.BankConfig{Org: pim.FlatOrganization(4), Policy: pim.RoundRobinBanks}

	// Cold references on private plans, computed serially.
	coldSweep, err := pim.Sweep(bench, opt, rc, nil, tech)
	if err != nil {
		t.Fatal(err)
	}
	sweepWant := map[string]string{}
	for _, r := range coldSweep {
		sweepWant[r.Strategy.Name()] = countsFNV(r.Dist.Counts)
	}
	coldStripe, err := pim.BankStripe(bench, opt, rc, pim.StaticStrategy, tech, bankCfg)
	if err != nil {
		t.Fatal(err)
	}
	stripeWant := make([]string, len(coldStripe.Banks))
	for i, br := range coldStripe.Banks {
		if br.Dist != nil {
			stripeWant[i] = countsFNV(br.Dist.Counts)
		}
	}

	// The shared plan: one cache feeds direct sweeps, bank stripes AND
	// the job server, so every leg below recycles the same arena.
	cache := pim.NewPlanCache(4)
	srv := serve.New(serve.Config{Workers: 2, Cache: cache})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	serveBody, err := json.Marshal(map[string]any{
		"benchmark": "mult", "bits": bits,
		"lanes": opt.Lanes, "rows": opt.Rows,
		"iterations": rc.Iterations, "recompile_every": rc.RecompileEvery,
		"seed": rc.Seed, "strategies": []string{"StxSt", "RaxRa", "RaxRa+Hw"},
	})
	if err != nil {
		t.Fatal(err)
	}

	runServeJob := func() error {
		resp, err := client.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(serveBody))
		if err != nil {
			return err
		}
		var accepted struct {
			Job string `json:"job"`
		}
		err = json.NewDecoder(resp.Body).Decode(&accepted)
		resp.Body.Close()
		if err != nil || accepted.Job == "" {
			return fmt.Errorf("submit: status %d err %v", resp.StatusCode, err)
		}
		for {
			resp, err := client.Get(ts.URL + "/jobs/" + accepted.Job)
			if err != nil {
				return err
			}
			var st struct {
				State  string           `json:"state"`
				Error  string           `json:"error"`
				Result *serve.JobResult `json:"result"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			switch st.State {
			case "done":
				for _, sr := range st.Result.Strategies {
					if want := sweepWant[sr.Strategy]; sr.DistFNV != want {
						return fmt.Errorf("serve %s: dist fnv %s, cold run %s", sr.Strategy, sr.DistFNV, want)
					}
				}
				return nil
			case "failed", "canceled":
				return fmt.Errorf("job %s: %s", st.State, st.Error)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		// Force interleaving even on small machines: the arena lock and
		// the checksums are what is under test, not raw parallelism.
		workers = 4
	}
	const rounds = 3
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				switch w % 3 {
				case 0: // direct sweep on the shared plan
					results, _, err := cache.Sweep(bench, opt, rc, nil, tech)
					if err != nil {
						errs[w] = err
						return
					}
					for _, r := range results {
						if got, want := countsFNV(r.Dist.Counts), sweepWant[r.Strategy.Name()]; got != want {
							errs[w] = fmt.Errorf("sweep %s: dist fnv %s, cold run %s", r.Strategy.Name(), got, want)
							return
						}
						// Return the buffer mid-flight: reuse by a
						// concurrent job is exactly the churn under test.
						r.Dist.Release()
					}
				case 1: // bank striping on the shared plan
					res, _, err := cache.BankStripe(bench, opt, rc, pim.StaticStrategy, tech, bankCfg)
					if err != nil {
						errs[w] = err
						return
					}
					for i, br := range res.Banks {
						if br.Dist == nil {
							continue
						}
						if got := countsFNV(br.Dist.Counts); got != stripeWant[i] {
							errs[w] = fmt.Errorf("stripe bank %d: dist fnv %s, cold run %s", i, got, stripeWant[i])
							return
						}
						br.Dist.Release()
					}
				case 2: // serve jobs against the same cache
					if err := runServeJob(); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}
