// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, on arrays reduced enough to keep `go test -bench=.`
// fast while preserving every qualitative result. Custom metrics report
// the headline number of each experiment (improvement factors, lifetimes,
// overhead percentages) so a bench run doubles as a miniature reproduction:
//
//	go test -bench=. -benchmem
//
// Full-fidelity reproduction (1024×1024, 100 000 iterations) is
// cmd/endurance-report's job.
package pimendure

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pimendure/internal/baseline"
	"pimendure/internal/core"
	"pimendure/internal/faults"
	"pimendure/internal/fleet"
	"pimendure/internal/lifetime"
	"pimendure/internal/obs"
	"pimendure/internal/program"
	"pimendure/internal/serve"
	"pimendure/internal/stats"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
	"pimendure/pim"
)

// benchOptions is the reduced array every wear benchmark runs on.
func benchOptions() pim.Options {
	return pim.Options{Lanes: 128, Rows: 1024, PresetOutputs: true, NANDBasis: true}
}

func benchRun() pim.RunConfig {
	return pim.RunConfig{Iterations: 500, RecompileEvery: 100, Seed: 1}
}

func mustMult(b *testing.B, opt pim.Options, bits int) *pim.Benchmark {
	b.Helper()
	m, err := pim.NewParallelMult(opt, bits)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkE1MultSynthesis regenerates §3.1's cost numbers: synthesizing
// the 32-bit in-memory multiply and counting its cell traffic.
func BenchmarkE1MultSynthesis(b *testing.B) {
	var writes, reads int64
	for i := 0; i < b.N; i++ {
		bld := program.NewBuilder(1, 1023)
		x := bld.AllocN(32)
		y := bld.AllocN(32)
		synth.Dadda(bld, synth.NAND, x, y)
		tr := bld.Trace()
		writes = tr.CellWrites(false)
		reads = tr.CellReads()
	}
	if writes != 9824 || reads != 19616 {
		b.Fatalf("§3.1 calibration broken: %d writes, %d reads", writes, reads)
	}
	b.ReportMetric(float64(writes), "writes/mult")
	b.ReportMetric(baseline.WriteAmplification(synth.NAND, 32), "amplification")
}

// BenchmarkE2UpperBounds evaluates Eq. 1 and Eq. 2 across the technology
// catalogue.
func BenchmarkE2UpperBounds(b *testing.B) {
	var days float64
	for i := 0; i < b.N; i++ {
		for _, tech := range pim.Technologies() {
			_ = pim.UpperBoundOps(1024, 1024, tech, 9824)
			days = pim.UpperBoundSeconds(1024, 1024, pim.MRAM()) / 86400
		}
	}
	b.ReportMetric(days, "eq2_days")
}

// BenchmarkFig5LaneProfile computes the per-cell read/write profile of one
// multiplication within a lane.
func BenchmarkFig5LaneProfile(b *testing.B) {
	m := mustMult(b, benchOptions(), 32)
	b.ResetTimer()
	var hottest int64
	for i := 0; i < b.N; i++ {
		w, _ := core.LaneProfile(m.Trace, true, 0)
		for _, c := range w {
			if c > hottest {
				hottest = c
			}
		}
	}
	b.ReportMetric(float64(hottest), "max_writes_cell")
}

// BenchmarkTable2Overhead synthesizes the Mixed2 circuits behind Table 2
// and reports the 32-bit addition overhead (the table's worst case).
func BenchmarkTable2Overhead(b *testing.B) {
	var add32 float64
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{4, 8, 16, 32, 64} {
			_ = synth.ShuffleOverhead(synth.ShuffleMult, bits)
			add32 = synth.ShuffleOverhead(synth.ShuffleAdd, 32)
		}
	}
	b.ReportMetric(add32*100, "add32_overhead_%")
}

// BenchmarkFig11FaultCurve Monte-Carlo samples the usable-bits collapse.
func BenchmarkFig11FaultCurve(b *testing.B) {
	var usable float64
	for i := 0; i < b.N; i++ {
		pts, err := faults.UsableCurve(128, 1024, []float64{0.001, 0.01}, 20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		usable = pts[1].UsableMC
	}
	b.ReportMetric(usable, "usable_at_1%")
}

// benchWear runs a full wear simulation for one strategy and reports the
// lifetime improvement over St×St as a custom metric.
func benchWear(b *testing.B, bench *pim.Benchmark, s pim.Strategy) {
	b.Helper()
	opt := benchOptions()
	rc := benchRun()
	static, err := pim.Run(bench, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var r *pim.Result
	for i := 0; i < b.N; i++ {
		r, err = pim.Run(bench, opt, rc, s, pim.MRAM())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(static.MaxWritesPerIteration/r.MaxWritesPerIteration, "improvement_x")
	b.ReportMetric(r.Lifetime.Days(), "days_mram")
}

// BenchmarkFig14Multiplication: the multiplication write distribution
// under the static baseline and the paper's best within-lane strategies.
func BenchmarkFig14Multiplication(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	b.Run("StxSt", func(b *testing.B) { benchWear(b, bench, pim.StaticStrategy) })
	b.Run("RaxSt", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Static})
	})
	b.Run("RaxSt+Hw", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Static, Hw: true})
	})
}

// BenchmarkFig15Convolution: the convolution distribution; between-lane
// random shuffling is what helps here.
func BenchmarkFig15Convolution(b *testing.B) {
	bench, err := pim.NewConvolution(benchOptions(), 4, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("StxSt", func(b *testing.B) { benchWear(b, bench, pim.StaticStrategy) })
	b.Run("RaxRa", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Random})
	})
	b.Run("RaxRa+Hw", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true})
	})
}

// BenchmarkFig16DotProduct: the dot-product distribution, imbalanced in
// both dimensions.
func BenchmarkFig16DotProduct(b *testing.B) {
	opt := benchOptions()
	bench, err := pim.NewDotProduct(opt, opt.Lanes, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("StxSt", func(b *testing.B) { benchWear(b, bench, pim.StaticStrategy) })
	b.Run("RaxRa", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Random})
	})
	b.Run("RaxRa+Hw", func(b *testing.B) {
		benchWear(b, bench, pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true})
	})
}

// BenchmarkFig17Sweep runs the full 18-configuration sweep and reports the
// best improvement factor (one bar chart of Fig. 17 per iteration).
func BenchmarkFig17Sweep(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	opt := benchOptions()
	rc := benchRun()
	var best float64
	for i := 0; i < b.N; i++ {
		results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
		if err != nil {
			b.Fatal(err)
		}
		imps, err := pim.Improvements(results)
		if err != nil {
			b.Fatal(err)
		}
		best = imps[0].Factor
	}
	b.ReportMetric(best, "best_improvement_x")
}

// BenchmarkTable3Utilization computes the lane-utilization figures of
// Table 3 from the compiled traces.
func BenchmarkTable3Utilization(b *testing.B) {
	opt := benchOptions()
	mult := mustMult(b, opt, 32)
	conv, err := pim.NewConvolution(opt, 4, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	dot, err := pim.NewDotProduct(opt, opt.Lanes, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var um, uc, ud float64
	for i := 0; i < b.N; i++ {
		um = mult.Trace.ComputeStats(true).Utilization
		uc = conv.Trace.ComputeStats(true).Utilization
		ud = dot.Trace.ComputeStats(true).Utilization
	}
	if !(um == 1 && uc < um && ud < uc) {
		b.Fatalf("Table 3 utilization ordering broken: %v %v %v", um, uc, ud)
	}
	b.ReportMetric(uc*100, "conv_util_%")
	b.ReportMetric(ud*100, "dot_util_%")
}

// BenchmarkE11RecompilePeriod measures the cost of one wear run at each
// §5 re-mapping period (more epochs = more permutation work).
func BenchmarkE11RecompilePeriod(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	opt := benchOptions()
	for _, period := range []int{500, 100, 50, 10} {
		b.Run(map[int]string{500: "every500", 100: "every100", 50: "every50", 10: "every10"}[period],
			func(b *testing.B) {
				ra := pim.Strategy{Within: pim.Random, Between: pim.Random}
				var r *pim.Result
				var err error
				for i := 0; i < b.N; i++ {
					r, err = pim.Run(bench, opt,
						pim.RunConfig{Iterations: 500, RecompileEvery: period, Seed: 1}, ra, pim.MRAM())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.MaxWritesPerIteration, "max_writes_iter")
			})
	}
}

// BenchmarkE12Misalignment exercises the Fig. 6 corruption demonstration.
func BenchmarkE12Misalignment(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = baseline.CorruptionRate(1)
	}
	b.ReportMetric(rate*100, "corrupted_%")
}

// BenchmarkE12StartGap measures the standard-memory wear-leveling baseline
// under the adversarial hot-line workload.
func BenchmarkE12StartGap(b *testing.B) {
	var imb float64
	for i := 0; i < b.N; i++ {
		var err error
		imb, err = baseline.HotLineImbalance(256, 2, 100000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(imb, "max_over_mean")
}

// BenchmarkE13LaneSets evaluates §3.3's partitioning workaround.
func BenchmarkE13LaneSets(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		res, err := faults.LaneSets(128, 128, 4, 80, 50, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		eff = res.EffectiveCapacity
	}
	b.ReportMetric(eff, "effective_capacity")
}

// BenchmarkE14Technology sweeps the Eq. 4 estimate across technologies for
// a fixed distribution.
func BenchmarkE14Technology(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	res, err := pim.Run(bench, benchOptions(), benchRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		b.Fatal(err)
	}
	st := bench.Trace.ComputeStats(true)
	b.ResetTimer()
	var days float64
	for i := 0; i < b.N; i++ {
		for _, tech := range pim.Technologies() {
			m := lifetime.Model{Endurance: tech.Endurance, StepSeconds: tech.SwitchSeconds}
			r, err := m.Estimate(res.MaxWritesPerIteration, st.Steps)
			if err != nil {
				b.Fatal(err)
			}
			days = r.Days()
		}
	}
	b.ReportMetric(days, "projected_days")
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationAllocPolicy quantifies how the workspace allocator
// shapes static imbalance: the paper-like rotating next-fit versus the
// adversarial lowest-first reuse.
func BenchmarkAblationAllocPolicy(b *testing.B) {
	for _, lowest := range []bool{false, true} {
		name := "next-fit"
		if lowest {
			name = "lowest-first"
		}
		b.Run(name, func(b *testing.B) {
			opt := benchOptions()
			opt.LowestFirstAlloc = lowest
			bench := mustMult(b, opt, 32)
			var r *pim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = pim.Run(bench, opt, benchRun(), pim.StaticStrategy, pim.MRAM())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Imbalance, "max_over_mean")
		})
	}
}

// BenchmarkAblationPreset quantifies the CRAM output-preset write cost.
func BenchmarkAblationPreset(b *testing.B) {
	for _, preset := range []bool{false, true} {
		name := "sense-amp"
		if preset {
			name = "preset"
		}
		b.Run(name, func(b *testing.B) {
			opt := benchOptions()
			opt.PresetOutputs = preset
			bench := mustMult(b, opt, 32)
			var r *pim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = pim.Run(bench, opt, benchRun(), pim.StaticStrategy, pim.MRAM())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MaxWritesPerIteration, "max_writes_iter")
		})
	}
}

// BenchmarkAblationBasis compares the NAND and minimum-2-input gate bases.
func BenchmarkAblationBasis(b *testing.B) {
	for _, nand := range []bool{true, false} {
		name := "mixed2"
		if nand {
			name = "nand"
		}
		b.Run(name, func(b *testing.B) {
			opt := benchOptions()
			opt.NANDBasis = nand
			bench := mustMult(b, opt, 32)
			var r *pim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = pim.Run(bench, opt, benchRun(), pim.StaticStrategy, pim.MRAM())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Lifetime.Days(), "days_mram")
		})
	}
}

// BenchmarkAblationEngine compares the factorized wear engine against
// brute-force functional execution on identical inputs.
func BenchmarkAblationEngine(b *testing.B) {
	cfg := workloads.Config{Lanes: 16, Rows: 128, Basis: synth.NAND}
	bench, err := workloads.ParallelMult(cfg, 8)
	if err != nil {
		b.Fatal(err)
	}
	sim := core.SimConfig{Rows: 128, PresetOutputs: true, Iterations: 50, RecompileEvery: 10, Seed: 1}
	strat := core.StrategyConfig{Within: pim.Random, Between: pim.Random, Hw: true}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Simulate(bench.Trace, sim, strat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BruteForce(bench.Trace, sim, strat, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHwEngine compares the bounded parallel + memoized +Hw wear
// engine against the retained serial reference on the +Hw half of the
// strategy sweep (the wall-clock-dominating part of Figs. 14–17). The
// "speedup" sub-benchmark times both paths on identical inputs and
// reports the ratio; the engine's epoch memoization alone (St-within
// epochs collapse to one replay, Bs-within rotations cycle with period
// archRows/gcd(step, archRows)) delivers the win even at GOMAXPROCS=1,
// and the worker pool multiplies it on real cores.
func BenchmarkHwEngine(b *testing.B) {
	cfg := workloads.Config{Lanes: 128, Rows: 257, Basis: synth.NAND}
	bench, err := workloads.ParallelMult(cfg, 16)
	if err != nil {
		b.Fatal(err)
	}
	// 256 architectural rows under Hw: the Bs step of 8 cycles after 32
	// epochs, so 128 epochs reuse each rotation 4 times; St-within
	// epochs all collapse into one replay.
	sim := core.SimConfig{Rows: 257, PresetOutputs: true, Iterations: 12800, RecompileEvery: 100, Seed: 1}
	var hwConfigs []core.StrategyConfig
	for _, c := range core.AllConfigs() {
		if c.Hw {
			hwConfigs = append(hwConfigs, c)
		}
	}
	sweep := func(b *testing.B, sim core.SimConfig,
		engine func(*program.Trace, core.SimConfig, core.StrategyConfig) (*core.WriteDist, error)) {
		b.Helper()
		for _, s := range hwConfigs {
			if _, err := engine(bench.Trace, sim, s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, sim, core.SimulateReference)
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, sim, core.Simulate)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		var ref, eng time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			sweep(b, sim, core.SimulateReference)
			ref += time.Since(t0)
			t0 = time.Now()
			sweep(b, sim, core.Simulate)
			eng += time.Since(t0)
		}
		b.ReportMetric(float64(ref)/float64(eng), "speedup_x")
	})
	// A single 10 000-iteration epoch (software re-mapping disabled within
	// it): the regime where closed-cycle replay dominates, because every
	// op's per-row visit counts over the whole epoch are computed from one
	// walk of its σ-orbit (length ≤ rows) instead of 10 000 op replays.
	b.Run("long-epoch", func(b *testing.B) {
		longSim := sim
		longSim.Iterations = 10000
		longSim.RecompileEvery = 10000
		var ref, eng time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			sweep(b, longSim, core.SimulateReference)
			ref += time.Since(t0)
			t0 = time.Now()
			sweep(b, longSim, core.Simulate)
			eng += time.Since(t0)
		}
		b.ReportMetric(float64(ref)/float64(eng), "speedup_x")
	})
	// The same sweep with the observability layer recording — what a CLI
	// run pays for its manifest. Disabled-mode cost (the "engine" run
	// above) is the hot path and must stay within the <2% budget; this
	// sub-benchmark quantifies the enabled-mode delta as obs_overhead_x.
	b.Run("engine-obs", func(b *testing.B) {
		obs.Reset()
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
		for i := 0; i < b.N; i++ {
			sweep(b, sim, core.Simulate)
		}
	})
	b.Run("obs-overhead", func(b *testing.B) {
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
		var off, on time.Duration
		for i := 0; i < b.N; i++ {
			obs.Disable()
			t0 := time.Now()
			sweep(b, sim, core.Simulate)
			off += time.Since(t0)
			obs.Enable()
			t0 = time.Now()
			sweep(b, sim, core.Simulate)
			on += time.Since(t0)
		}
		b.ReportMetric(float64(on)/float64(off), "obs_overhead_x")
	})
	// Full live telemetry — counters, span events on the ring, and a
	// per-epoch wear sampler — against the disabled baseline. The sampler
	// switches +Hw runs onto the epoch-ordered engine, so this is the
	// honest price of watching a run live; the ISSUE budget is ≤10%.
	b.Run("engine-telemetry", func(b *testing.B) {
		defer func() {
			obs.Disable()
			obs.DisableEvents()
			obs.Reset()
		}()
		sampled := func(tr *program.Trace, sim core.SimConfig, s core.StrategyConfig) (*core.WriteDist, error) {
			sim.Sampler = core.NewWearSampler("bench.telemetry."+s.Name(), 10, 1e12)
			return core.Simulate(tr, sim, s)
		}
		var off, on time.Duration
		for i := 0; i < b.N; i++ {
			obs.Disable()
			obs.DisableEvents()
			t0 := time.Now()
			sweep(b, sim, core.Simulate)
			off += time.Since(t0)
			obs.Enable()
			obs.EnableEvents(obs.DefaultEventCapacity)
			t0 = time.Now()
			sweep(b, sim, sampled)
			on += time.Since(t0)
		}
		b.ReportMetric(float64(on)/float64(off), "telemetry_overhead_x")
	})
	// Cross-check on the benchmark's own inputs: the two engines must be
	// bit-identical here too, or the speedup numbers are meaningless.
	for _, s := range hwConfigs {
		fast, err := core.Simulate(bench.Trace, sim, s)
		if err != nil {
			b.Fatal(err)
		}
		slow, err := core.SimulateReference(bench.Trace, sim, s)
		if err != nil {
			b.Fatal(err)
		}
		if !fast.Equal(slow) {
			b.Fatalf("%s: engines disagree on benchmark inputs", s.Name())
		}
	}
}

// BenchmarkSweep measures pim.Sweep end to end on the shared WearPlan.
// "full18" is the paper-shaped sweep (all 18 configurations,
// RecompileEvery=100) on the reduced bench array; "software-paper" runs
// the 9 software-only configurations at the paper's full §4 scale
// (1024×1024, 100 000 iterations, RecompileEvery=100) on the grouped
// engine alone, and "software-paper-speedup" times that same sweep
// against the retained pre-plan serial engine (core.SimulateReference's
// software path — the engine every software config ran on before the
// WearPlan existed) and reports the ratio as `speedup_x`.
func BenchmarkSweep(b *testing.B) {
	b.Run("full18", func(b *testing.B) {
		bench := mustMult(b, benchOptions(), 32)
		rc := pim.RunConfig{Iterations: 2000, RecompileEvery: 100, Seed: 1}
		for i := 0; i < b.N; i++ {
			if _, err := pim.Sweep(bench, benchOptions(), rc, nil, pim.MRAM()); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Paper scale: DefaultOptions' 1024×1024 array, §4's headline run
	// length. The grouped engine pays per unique permutation pair (1000
	// Ra epochs at most) instead of per epoch × hot row × lane.
	paperSim := core.SimConfig{
		Rows: 1024, PresetOutputs: true,
		Iterations: 100000, RecompileEvery: 100, Seed: 1,
	}
	paperMult := func(b *testing.B) *pim.Benchmark {
		b.Helper()
		m, err := pim.NewParallelMult(pim.DefaultOptions(), 32)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	swConfigs := core.SoftwareConfigs()
	b.Run("software-paper", func(b *testing.B) {
		bench := paperMult(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan := core.NewWearPlan(bench.Trace, paperSim.Rows, paperSim.PresetOutputs)
			for _, s := range swConfigs {
				dist, err := plan.Simulate(paperSim, s)
				if err != nil {
					b.Fatal(err)
				}
				// Steady-state discipline: the distribution goes back to
				// the plan's arena, so strategies after the first reuse its
				// counts buffer instead of allocating 8 MB each.
				dist.Release()
			}
		}
	})
	b.Run("software-paper-speedup", func(b *testing.B) {
		bench := paperMult(b)
		b.ResetTimer()
		var ref, eng time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			for _, s := range swConfigs {
				if _, err := core.SimulateReference(bench.Trace, paperSim, s); err != nil {
					b.Fatal(err)
				}
			}
			ref += time.Since(t0)
			t0 = time.Now()
			plan := core.NewWearPlan(bench.Trace, paperSim.Rows, paperSim.PresetOutputs)
			for _, s := range swConfigs {
				dist, err := plan.Simulate(paperSim, s)
				if err != nil {
					b.Fatal(err)
				}
				dist.Release()
			}
			eng += time.Since(t0)
		}
		b.ReportMetric(float64(ref)/float64(eng), "speedup_x")
	})
}

// BenchmarkSweepWorkers measures the full 18-configuration sweep at
// explicit worker budgets (the pim.Sweep bounded pool).
func BenchmarkSweepWorkers(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	opt := benchOptions()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rc := benchRun()
			rc.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArrayIteration measures the bit-accurate simulator's throughput
// on one full 32-bit multiply iteration across 128 lanes: the scalar
// cell-at-a-time reference runner against the word-parallel packed runner
// (64 lanes per uint64, deferred rank-1 access counting). "speedup" times
// both on identical inputs and reports the ratio.
func BenchmarkArrayIteration(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	sim := core.SimConfig{Rows: 1024, PresetOutputs: true, Iterations: 1}
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BruteForceReference(bench.Trace, sim, pim.StaticStrategy, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BruteForce(bench.Trace, sim, pim.StaticStrategy, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		var scalar, packed time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, _, err := core.BruteForceReference(bench.Trace, sim, pim.StaticStrategy, nil); err != nil {
				b.Fatal(err)
			}
			scalar += time.Since(t0)
			t0 = time.Now()
			if _, _, err := core.BruteForce(bench.Trace, sim, pim.StaticStrategy, nil); err != nil {
				b.Fatal(err)
			}
			packed += time.Since(t0)
		}
		b.ReportMetric(float64(scalar)/float64(packed), "speedup_x")
	})
	// The speedup must not buy divergence: spot-check distributions on the
	// benchmark's own inputs.
	fast, _, err := core.BruteForce(bench.Trace, sim, pim.StaticStrategy, nil)
	if err != nil {
		b.Fatal(err)
	}
	slow, _, err := core.BruteForceReference(bench.Trace, sim, pim.StaticStrategy, nil)
	if err != nil {
		b.Fatal(err)
	}
	if !fast.Equal(slow) {
		b.Fatal("packed and scalar runners disagree on benchmark inputs")
	}
}

// BenchmarkHeatmap measures distribution-to-heatmap conversion.
func BenchmarkHeatmap(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	res, err := pim.Run(bench, benchOptions(), benchRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pim.Heatmap(res.Dist, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGiniCoV measures the distribution statistics used in summaries.
func BenchmarkGiniCoV(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	res, err := pim.Run(bench, benchOptions(), benchRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var g float64
	for i := 0; i < b.N; i++ {
		g = stats.Gini(res.Dist.Counts)
	}
	b.ReportMetric(g, "gini")
}

// BenchmarkBankSweep stripes the multiplication across the 16-bank DDR4
// organization under each scheduling policy, sharing one WearPlan via
// the PlanCache. Each sub-benchmark reports the lifetime scaling over
// the single-bank baseline (scaling_x) and the across-bank wear
// imbalance the mean hides (bank_cov).
func BenchmarkBankSweep(b *testing.B) {
	bench := mustMult(b, benchOptions(), 32)
	opt := benchOptions()
	rc := pim.RunConfig{Iterations: 2000, RecompileEvery: 100, Seed: 1}
	strat := pim.Strategy{Within: pim.Random, Between: pim.Static}
	cache := pim.NewPlanCache(2)
	single, _, err := cache.BankStripe(bench, opt, rc, strat, pim.MRAM(), pim.BankConfig{
		Org: pim.SingleBank(), Policy: pim.RoundRobinBanks,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range pim.BankPolicies() {
		b.Run(policy.String(), func(b *testing.B) {
			var res *pim.StripeResult
			for i := 0; i < b.N; i++ {
				var err error
				res, _, err = cache.BankStripe(bench, opt, rc, strat, pim.MRAM(), pim.BankConfig{
					Org: pim.DDR4Organization(), Policy: policy,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SystemIterationsToFailure/single.SystemIterationsToFailure, "scaling_x")
			b.ReportMetric(res.BankCoV, "bank_cov")
		})
	}
}

// BenchmarkFleet measures the fleet-survival engine at paper scale: one
// million simulated devices over the 1024×1024 32-bit multiplication
// write distribution. "draws" is the hot path alone — plan, simulation
// and order-statistic collapse built outside the timer — on a single
// worker; it gates the engine's floor of one million device draws per
// second per core and its allocation budget (a fixed handful of
// bookkeeping allocations per sweep point, no per-device or per-batch
// churn). "cold" vs "cached" run the same study through pim.PlanCache —
// a cache miss rebuilds the WearPlan from the trace, a hit pays only
// simulation and draws. "speedup" compares lifetime.VarModel on the
// fleet engine against the retained per-cell FirstFailureReference at
// 100 000 trials and gates the ≥20× win the order-statistic collapse
// must deliver.
func BenchmarkFleet(b *testing.B) {
	bench, err := pim.NewParallelMult(pim.DefaultOptions(), 32)
	if err != nil {
		b.Fatal(err)
	}
	paperSim := core.SimConfig{
		Rows: 1024, PresetOutputs: true,
		Iterations: 100000, RecompileEvery: 100, Seed: 1,
	}
	plan := core.NewWearPlan(bench.Trace, paperSim.Rows, paperSim.PresetOutputs)
	dist, err := plan.Simulate(paperSim, pim.StaticStrategy)
	if err != nil {
		b.Fatal(err)
	}
	groups, err := fleet.GroupCounts(dist.Counts, dist.Iterations)
	if err != nil {
		b.Fatal(err)
	}
	model := fleet.Model{MedianEndurance: pim.MRAM().Endurance, Sigma: 0.3}

	b.Run("draws", func(b *testing.B) {
		p := fleet.Params{Devices: 1_000_000, Seed: 1, Workers: 1}
		// Steady state must not allocate per device or per batch: the
		// sample buffer is pooled and the hazard table is cached on the
		// Groups, so a whole sweep point costs a fixed handful of
		// bookkeeping allocations.
		if allocs := testing.AllocsPerRun(3, func() {
			if _, err := model.Survive(groups, fleet.Params{Devices: 100_000, Seed: 1, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}); allocs > 32 {
			b.Fatalf("fleet draw hot path allocates: %v allocs per sweep point, want ≤32", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		t0 := time.Now()
		var res fleet.Result
		for i := 0; i < b.N; i++ {
			res, err = model.Survive(groups, p)
			if err != nil {
				b.Fatal(err)
			}
		}
		rate := float64(p.Devices) * float64(b.N) / time.Since(t0).Seconds()
		if rate < 1e6 {
			b.Fatalf("fleet engine below the 1M devices/sec single-core floor: %.0f devices/sec", rate)
		}
		b.ReportMetric(rate, "devices/sec")
		b.ReportMetric(res.Quantiles[0], "b1_iterations")
	})

	rc := pim.RunConfig{Iterations: 2000, RecompileEvery: 100, Seed: 1, Workers: 1}
	fc := pim.FleetConfig{Devices: 1_000_000, Sigmas: []float64{0.3}, Seed: 1}
	strategies := []pim.Strategy{pim.StaticStrategy}
	techs := []pim.Technology{pim.MRAM()}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := pim.NewPlanCache(1)
			if _, _, err := cache.Fleet(bench, pim.DefaultOptions(), rc, strategies, techs, fc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := pim.NewPlanCache(1)
		if _, _, err := cache.Fleet(bench, pim.DefaultOptions(), rc, strategies, techs, fc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, hit, err := cache.Fleet(bench, pim.DefaultOptions(), rc, strategies, techs, fc)
			if err != nil {
				b.Fatal(err)
			}
			if !hit {
				b.Fatal("warmed PlanCache missed on an identical fleet study")
			}
		}
	})

	// The order-statistic win over the per-cell sampler, on a reduced
	// array the reference can still finish: 2048 cells × 100 000 trials
	// is ~2×10⁸ lognormal draws for the reference and 100 000 table
	// inversions for the engine.
	b.Run("speedup", func(b *testing.B) {
		cfg := workloads.Config{Lanes: 16, Rows: 128, Basis: synth.NAND}
		small, err := workloads.ParallelMult(cfg, 8)
		if err != nil {
			b.Fatal(err)
		}
		sim := core.SimConfig{Rows: 128, PresetOutputs: true, Iterations: 200, RecompileEvery: 50, Seed: 1}
		sd, err := core.Simulate(small.Trace, sim, pim.StaticStrategy)
		if err != nil {
			b.Fatal(err)
		}
		vm := lifetime.VarModel{MedianEndurance: 1e12, Sigma: 0.5, StepSeconds: 1e-9}
		const trials = 100_000
		b.ResetTimer()
		var ref, eng time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := vm.FirstFailureReference(sd.Counts, sim.Iterations, trials, 1); err != nil {
				b.Fatal(err)
			}
			ref += time.Since(t0)
			t0 = time.Now()
			if _, err := vm.FirstFailure(sd.Counts, sim.Iterations, trials, 1); err != nil {
				b.Fatal(err)
			}
			eng += time.Since(t0)
		}
		speedup := float64(ref) / float64(eng)
		if speedup < 20 {
			b.Fatalf("fleet engine only %.1f× over FirstFailureReference, want ≥20×", speedup)
		}
		b.ReportMetric(speedup, "speedup_x")
	})
}

// BenchmarkServeSweep measures the serving layer end to end over HTTP:
// submit one sweep to internal/serve, poll the job to completion.
// "cached" answers repeat requests from the WearPlan LRU (the first
// iteration misses, the rest hit); "cold" runs the same requests
// against a disabled cache, rebuilding the plan every time — the gap
// between the two is what the cache buys a fleet of identical clients.
func BenchmarkServeSweep(b *testing.B) {
	body := []byte(`{"benchmark":"mult","bits":16,"lanes":64,"rows":1024,` +
		`"iterations":100,"recompile_every":50,"seed":1,"strategies":["StxSt"]}`)
	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"cached", 32},
		{"cold", -1}, // negative capacity disables the PlanCache
	} {
		b.Run(mode.name, func(b *testing.B) {
			obs.Reset()
			obs.Enable()
			defer func() {
				obs.Disable()
				obs.Reset()
			}()
			srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64, CacheSize: mode.cacheSize})
			defer srv.Close()
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				var accepted struct {
					Job string `json:"job"`
				}
				err = json.NewDecoder(resp.Body).Decode(&accepted)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 202 {
					b.Fatalf("submit: status %d err %v", resp.StatusCode, err)
				}
				for {
					resp, err := client.Get(ts.URL + "/jobs/" + accepted.Job)
					if err != nil {
						b.Fatal(err)
					}
					var st struct {
						State string `json:"state"`
						Error string `json:"error"`
					}
					err = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil {
						b.Fatal(err)
					}
					if st.State == "done" {
						break
					}
					if st.State == "failed" || st.State == "canceled" {
						b.Fatalf("job finished %s: %s", st.State, st.Error)
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
			b.StopTimer()
			hits := obs.GetCounter("serve.cache_hits").Value()
			b.ReportMetric(float64(hits)/float64(b.N), "cache_hit_rate")
			// Tail latency of the serving path itself, from the server's
			// serve.job histogram — this lands in BENCH_engine.json so
			// benchdiff gates p99 alongside throughput.
			if h := obs.GetDurationHistogram("serve.job"); h.Count() > 0 {
				b.ReportMetric(h.Quantile(0.99)*1000, "p99_ms")
			}
		})
	}
}
