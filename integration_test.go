package pimendure

// End-to-end integration test: a miniature run of the paper's entire
// evaluation pipeline on a reduced array, asserting every qualitative
// claim the full-scale reproduction (cmd/endurance-report) reports:
//
//   - §5: St×Ra and St×Bs give the multiplication nothing; St×Bs gives the
//     convolution nothing (byte shifts map hot columns onto hot columns);
//     the dot-product benefits in both dimensions;
//   - §5: more frequent recompilation monotonically improves lifetime;
//   - §4: the fast wear engine equals brute force cell for cell;
//   - §3.2: no strategy ever changes a computed value;
//   - Table 3: utilization ordering mult > conv > dot.

import (
	"bytes"
	"testing"

	"pimendure/internal/asm"
	"pimendure/internal/core"
	"pimendure/pim"
)

func integOptions() pim.Options {
	return pim.Options{Lanes: 64, Rows: 1024, PresetOutputs: true, NANDBasis: true}
}

func integSuite(t *testing.T) (mult, conv, dot *pim.Benchmark) {
	t.Helper()
	opt := integOptions()
	var err error
	if mult, err = pim.NewParallelMult(opt, 32); err != nil {
		t.Fatal(err)
	}
	if conv, err = pim.NewConvolution(opt, 4, 3, 8); err != nil {
		t.Fatal(err)
	}
	if dot, err = pim.NewDotProduct(opt, 64, 32); err != nil {
		t.Fatal(err)
	}
	return
}

func factors(t *testing.T, b *pim.Benchmark) map[string]float64 {
	t.Helper()
	rc := pim.RunConfig{Iterations: 600, RecompileEvery: 100, Seed: 1}
	results, err := pim.Sweep(b, integOptions(), rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	imps, err := pim.Improvements(results)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, im := range imps {
		out[im.Strategy.Name()] = im.Factor
	}
	return out
}

func TestPaperClaimsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow in -short mode")
	}
	mult, conv, dot := integSuite(t)

	t.Run("mult: between-lane strategies useless", func(t *testing.T) {
		f := factors(t, mult)
		for _, cfg := range []string{"StxRa", "StxBs"} {
			if f[cfg] != 1.0 {
				t.Errorf("%s = %.3f, want exactly 1.0", cfg, f[cfg])
			}
		}
		if f["RaxSt"] <= 1.05 {
			t.Errorf("RaxSt = %.3f, want a real improvement", f["RaxSt"])
		}
		if f["RaxSt+Hw"] < f["RaxSt"] {
			t.Errorf("Hw should not hurt: %.3f vs %.3f", f["RaxSt+Hw"], f["RaxSt"])
		}
	})

	t.Run("conv: byte-shifted columns useless, random columns help", func(t *testing.T) {
		f := factors(t, conv)
		if f["StxBs"] > 1.02 {
			t.Errorf("StxBs = %.3f; byte shifts land hot columns on hot columns", f["StxBs"])
		}
		if f["StxRa"] <= 1.02 {
			t.Errorf("StxRa = %.3f, want a real improvement from column shuffling", f["StxRa"])
		}
	})

	t.Run("dot: both dimensions help, combined best", func(t *testing.T) {
		f := factors(t, dot)
		if f["RaxSt"] <= 1.02 || f["StxRa"] <= 1.02 {
			t.Errorf("single-dimension gains missing: RaxSt %.3f StxRa %.3f", f["RaxSt"], f["StxRa"])
		}
		if f["RaxRa"] < f["RaxSt"] || f["RaxRa"] < f["StxRa"] {
			t.Errorf("RaxRa %.3f should dominate single dimensions", f["RaxRa"])
		}
	})

	t.Run("utilization ordering", func(t *testing.T) {
		um := mult.Trace.ComputeStats(true).Utilization
		uc := conv.Trace.ComputeStats(true).Utilization
		ud := dot.Trace.ComputeStats(true).Utilization
		if !(um == 1 && um > uc && uc > ud) {
			t.Errorf("utilization ordering broken: %v %v %v", um, uc, ud)
		}
	})

	t.Run("recompile frequency monotone", func(t *testing.T) {
		opt := integOptions()
		ra := pim.Strategy{Within: pim.Random, Between: pim.Random}
		prev := -1.0
		for _, period := range []int{600, 200, 50} {
			r, err := pim.Run(mult, opt, pim.RunConfig{Iterations: 600, RecompileEvery: period, Seed: 1}, ra, pim.MRAM())
			if err != nil {
				t.Fatal(err)
			}
			if prev > 0 && r.MaxWritesPerIteration > prev+1e-9 {
				t.Errorf("period %d worsened max writes: %v > %v", period, r.MaxWritesPerIteration, prev)
			}
			prev = r.MaxWritesPerIteration
		}
	})
}

// The two engines agree at integration scale too (the unit tests cover
// small shapes; this covers a 64×1024 slice of the real thing).
func TestEnginesAgreeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("brute force at this size is slow in -short mode")
	}
	opt := integOptions()
	conv, err := pim.NewConvolution(opt, 4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := core.SimConfig{Rows: opt.Rows, PresetOutputs: true, Iterations: 7, RecompileEvery: 3, Seed: 2}
	strat := core.StrategyConfig{Within: pim.Random, Between: pim.ByteShift, Hw: true}
	fast, err := core.Simulate(conv.Trace, sim, strat)
	if err != nil {
		t.Fatal(err)
	}
	slow, runner, err := core.BruteForce(conv.Trace, sim, strat, func(slot, lane int) bool {
		return (slot*3+lane)%7 < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(slow) {
		t.Error("engines disagree at integration scale")
	}
	if err := conv.Check(func(slot, lane int) bool { return (slot*3+lane)%7 < 3 }, runner.Out); err != nil {
		t.Errorf("functional check after full run: %v", err)
	}
}

// The whole artifact chain holds together: compile → assembly round trip →
// optimize → verify → wear → serialize → render.
func TestArtifactChain(t *testing.T) {
	opt := pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewBNNLayer(opt, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Assembly round trip.
	var src bytes.Buffer
	if err := asm.Print(&src, bench.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := asm.Parse(&src)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(bench.Trace.Ops) {
		t.Fatal("assembly round trip changed the program")
	}

	// Optimizer keeps it exact.
	opted, _ := pim.Optimize(bench)
	data := func(slot, lane int) bool { return (slot^lane)%3 == 0 }
	if err := pim.Verify(opted, opt, pim.Strategy{Within: pim.Random, Hw: true}, data); err != nil {
		t.Fatal(err)
	}

	// Wear → serialize → reload → render.
	res, err := pim.Run(opted, opt, pim.RunConfig{Iterations: 50, RecompileEvery: 10, Seed: 3},
		pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := pim.SaveDist(&blob, res.Dist); err != nil {
		t.Fatal(err)
	}
	reloaded, err := pim.LoadDist(&blob)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := pim.Heatmap(reloaded, 64)
	if err != nil {
		t.Fatal(err)
	}
	var png bytes.Buffer
	if err := pim.WriteHeatmapPNG(&png, grid, 2); err != nil {
		t.Fatal(err)
	}
	if png.Len() == 0 {
		t.Fatal("empty heatmap")
	}
}
