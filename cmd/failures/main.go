// Command failures regenerates Fig. 11b (usable bits per lane versus
// failed cells in the array) and the §3.3 lane-set partitioning analysis.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pimendure/internal/faults"
	"pimendure/internal/obs"
	"pimendure/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("failures: ")

	run := obs.NewRun("failures", flag.CommandLine)
	lanes := flag.Int("lanes", 1024, "array lanes (the dimension a failure poisons)")
	rows := flag.Int("rows", 256, "array rows for the Monte Carlo")
	trials := flag.Int("trials", 500, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "random seed")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(fmt.Sprintf("Fig. 11b — usable fraction of each lane, %d-lane array", *lanes),
		"failed cells (%)", "usable (Monte Carlo)", "usable (closed form)")
	fracs := []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05}
	pts, err := faults.UsableCurve(*rows, *lanes, fracs, *trials, *seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		t.AddRow(report.Pct(p.FailedFrac, 2), report.Fixed(p.UsableMC, 4), report.Fixed(p.UsableClosed, 4))
	}
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ls := report.NewTable("§3.3 — lane-set partitioning (0.5% of cells failed)",
		"sets", "usable fraction", "latency factor", "effective capacity")
	failed := *rows * *lanes / 200
	for _, sets := range []int{1, 2, 4, 8} {
		res, err := faults.LaneSets(*rows, *lanes, sets, failed, *trials, *seed)
		if err != nil {
			log.Fatal(err)
		}
		ls.AddRow(fmt.Sprint(sets), report.Fixed(res.UsableFrac, 4),
			fmt.Sprint(res.LatencyFactor), report.Fixed(res.EffectiveCapacity, 4))
	}
	if err := ls.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if err := run.Finish(*manifestDir, map[string]any{
		"lanes": *lanes, "rows": *rows, "trials": *trials,
	}, *seed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
