// Command loadgen drives a pimserve instance with a configurable storm
// of concurrent sweep requests and reports what came back: clean 202s,
// coalesced submissions, shed 429s, dropped connections, client-side
// submit-latency percentiles (p50/p95/p99/max), the server-reported
// queue-wait vs compute breakdown of every finished job, sustained
// request throughput, and the server's WearPlan cache-hit delta scraped
// from /metrics. When the server exposes the structured event log
// (/events), loadgen additionally cross-checks the server's admission
// arithmetic — admit, coalesce and reject record deltas — against its
// own client-side tallies, exactly. It is the acceptance harness for
// the serving layer: "N concurrent requests, zero dropped connections,
// shed requests get clean 429s, server log balances the client's counts"
// is checked here against a live server.
//
// With -fleet the storm posts fleet-survival jobs (POST /fleet, with
// -devices and -sigmas shaping each request) instead of sweeps, and a
// finished job must carry fleet rows to count as done — so the same
// ledger cross-check exercises the fleet path of the admission pipeline.
//
// Example (against `pimserve -serve localhost:8090`):
//
//	loadgen -target http://localhost:8090 -requests 2000 -concurrency 1000
//	loadgen -target http://localhost:8090 -fleet -requests 200 -devices 20000
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	target := flag.String("target", "http://localhost:8090", "pimserve base URL")
	requests := flag.Int("requests", 2000, "total requests to send")
	concurrency := flag.Int("concurrency", 1000, "concurrent in-flight requests")
	benchmark := flag.String("benchmark", "mult", "benchmark to request")
	bits := flag.Int("bits", 4, "operand precision")
	lanes := flag.Int("lanes", 16, "array lanes")
	rows := flag.Int("rows", 256, "array rows")
	iterations := flag.Int("iterations", 60, "iterations per job")
	recompile := flag.Int("recompile", 20, "recompile period")
	strategies := flag.String("strategies", "StxSt", "comma-separated strategy labels (empty = all 18)")
	distinct := flag.Int("distinct", 32, "distinct request shapes (seeds); 1 = maximal coalescing")
	wait := flag.Bool("wait", true, "poll accepted jobs to completion before reporting")
	fleet := flag.Bool("fleet", false, "storm POST /fleet instead of /sweep (fleet-survival jobs)")
	devices := flag.Int("devices", 20000, "fleet population per sweep point (with -fleet)")
	sigmas := flag.String("sigmas", "0.3", "comma-separated endurance sigmas (with -fleet)")
	flag.Parse()

	var strats []string
	if *strategies != "" {
		strats = strings.Split(*strategies, ",")
	}
	client := &http.Client{
		Timeout: 2 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *concurrency,
			MaxIdleConnsPerHost: 2 * *concurrency,
		},
	}

	hitsBefore, _ := scrapeMetric(client, *target, "serve_cache_hits")
	missesBefore, _ := scrapeMetric(client, *target, "serve_cache_misses")
	logDroppedBefore, _ := scrapeMetric(client, *target, "obs_log_dropped_total")
	eventsBefore, eventsErr := eventCounts(client, *target)

	var accepted, coalesced, shed, other, dropped atomic.Int64
	latencies := make([]time.Duration, *requests)
	jobs := make(chan string, *requests)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			body := map[string]any{
				"benchmark":       *benchmark,
				"bits":            *bits,
				"lanes":           *lanes,
				"rows":            *rows,
				"iterations":      *iterations,
				"recompile_every": *recompile,
				"seed":            i % max(*distinct, 1),
			}
			if len(strats) > 0 {
				body["strategies"] = strats
			}
			endpoint := "/sweep"
			if *fleet {
				endpoint = "/fleet"
				body["devices"] = *devices
				var sl []float64
				for _, f := range strings.Split(*sigmas, ",") {
					if v, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err == nil {
						sl = append(sl, v)
					}
				}
				if len(sl) > 0 {
					body["sigmas"] = sl
				}
			}
			data, _ := json.Marshal(body)
			t0 := time.Now()
			resp, err := client.Post(*target+endpoint, "application/json", bytes.NewReader(data))
			latencies[i] = time.Since(t0)
			if err != nil {
				dropped.Add(1)
				return
			}
			var out map[string]any
			decErr := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			switch {
			case decErr != nil:
				dropped.Add(1)
			case resp.StatusCode == http.StatusAccepted:
				accepted.Add(1)
				if out["coalesced"] == true {
					coalesced.Add(1)
				}
				if id, _ := out["job"].(string); id != "" {
					jobs <- id
				}
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	submitWall := time.Since(start)
	close(jobs)

	unique := map[string]bool{}
	for id := range jobs {
		unique[id] = true
	}
	var breakdowns []jobBreakdown
	if *wait {
		for id := range unique {
			bd, err := pollDone(client, *target, id, *fleet)
			if err != nil {
				log.Printf("job %s: %v", id, err)
				other.Add(1)
				continue
			}
			breakdowns = append(breakdowns, bd)
		}
	}
	totalWall := time.Since(start)

	hitsAfter, hitsErr := scrapeMetric(client, *target, "serve_cache_hits")
	missesAfter, _ := scrapeMetric(client, *target, "serve_cache_misses")
	logDroppedAfter, _ := scrapeMetric(client, *target, "obs_log_dropped_total")

	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	pct := func(q float64) time.Duration {
		return latencies[int(q*float64(len(latencies)-1))]
	}
	fmt.Printf("requests            %d (concurrency %d, %d distinct shapes)\n", *requests, *concurrency, *distinct)
	fmt.Printf("accepted            %d (%d coalesced onto in-flight jobs, %d unique jobs)\n",
		accepted.Load(), coalesced.Load(), len(unique))
	fmt.Printf("shed (429)          %d\n", shed.Load())
	fmt.Printf("dropped/errors      %d / %d\n", dropped.Load(), other.Load())
	fmt.Printf("submit throughput   %.0f req/s (%.2fs wall)\n",
		float64(*requests)/submitWall.Seconds(), submitWall.Seconds())
	if *wait {
		fmt.Printf("end-to-end wall     %.2fs (all accepted jobs finished)\n", totalWall.Seconds())
	}
	fmt.Printf("submit latency      p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50), pct(0.95), pct(0.99), pct(1))
	if len(breakdowns) > 0 {
		printBreakdown(breakdowns)
	}
	if hitsErr == nil {
		fmt.Printf("plan cache          +%d hits, +%d misses during the storm\n",
			hitsAfter-hitsBefore, missesAfter-missesBefore)
	}

	failed := dropped.Load() > 0 || other.Load() > 0
	if eventsErr == nil {
		eventsAfter, err := eventCounts(client, *target)
		switch {
		case err != nil:
			log.Printf("event log recheck failed: %v", err)
		case logDroppedAfter > logDroppedBefore:
			fmt.Printf("event log           skipped the balance check (%d records dropped by the bounded ring)\n",
				logDroppedAfter-logDroppedBefore)
		default:
			admits := eventsAfter["serve.admit"] - eventsBefore["serve.admit"]
			coals := eventsAfter["serve.coalesce"] - eventsBefore["serve.coalesce"]
			rejects := eventsAfter["serve.reject"] - eventsBefore["serve.reject"]
			fmt.Printf("event log           +%d admit, +%d coalesce, +%d reject records\n", admits, coals, rejects)
			if admits != accepted.Load()-coalesced.Load() || coals != coalesced.Load() || rejects != shed.Load() {
				log.Printf("FAIL: server event log does not balance the client tallies "+
					"(want admit %d, coalesce %d, reject %d)",
					accepted.Load()-coalesced.Load(), coalesced.Load(), shed.Load())
				failed = true
			}
		}
	}

	if failed {
		log.Fatalf("FAIL: %d dropped connections, %d unexpected statuses", dropped.Load(), other.Load())
	}
	fmt.Println("PASS: every request got a clean 202 or 429")
}

// jobBreakdown is one finished job's server-reported latency split.
type jobBreakdown struct {
	queue, compute, total time.Duration
}

// printBreakdown reports percentiles of the server-side queue-wait vs
// compute split across the storm's unique jobs.
func printBreakdown(bds []jobBreakdown) {
	pick := func(sel func(jobBreakdown) time.Duration) []time.Duration {
		out := make([]time.Duration, len(bds))
		for i, bd := range bds {
			out[i] = sel(bd)
		}
		sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
		return out
	}
	pct := func(s []time.Duration, q float64) time.Duration {
		return s[int(q*float64(len(s)-1))]
	}
	for _, row := range []struct {
		name string
		sel  func(jobBreakdown) time.Duration
	}{
		{"job queue wait", func(b jobBreakdown) time.Duration { return b.queue }},
		{"job compute", func(b jobBreakdown) time.Duration { return b.compute }},
		{"job total", func(b jobBreakdown) time.Duration { return b.total }},
	} {
		s := pick(row.sel)
		fmt.Printf("%-19s p50 %v  p95 %v  p99 %v  max %v\n",
			row.name, pct(s, 0.50), pct(s, 0.95), pct(s, 0.99), pct(s, 1))
	}
}

// pollDone waits for one job to reach a terminal state and returns its
// server-reported latency breakdown. In fleet mode a done job must also
// carry fleet-survival rows — an empty result is a failure.
func pollDone(client *http.Client, base, id string, wantFleet bool) (jobBreakdown, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			return jobBreakdown{}, err
		}
		var st struct {
			State     string `json:"state"`
			Error     string `json:"error"`
			QueueMS   int64  `json:"queue_ms"`
			ComputeMS int64  `json:"compute_ms"`
			TotalMS   int64  `json:"total_ms"`
			Result    *struct {
				Fleet []json.RawMessage `json:"fleet"`
			} `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobBreakdown{}, err
		}
		switch st.State {
		case "done":
			if wantFleet && (st.Result == nil || len(st.Result.Fleet) == 0) {
				return jobBreakdown{}, fmt.Errorf("done without fleet rows")
			}
			return jobBreakdown{
				queue:   time.Duration(st.QueueMS) * time.Millisecond,
				compute: time.Duration(st.ComputeMS) * time.Millisecond,
				total:   time.Duration(st.TotalMS) * time.Millisecond,
			}, nil
		case "failed", "canceled":
			return jobBreakdown{}, fmt.Errorf("finished %s: %s", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return jobBreakdown{}, fmt.Errorf("timed out")
}

// scrapeMetric pulls one counter value from the server's Prometheus
// exposition.
func scrapeMetric(client *http.Client, base, name string) (int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// eventCounts tallies the server's structured event log by event name
// (GET /events?n=0 returns everything the ring holds as JSON Lines).
// An error means the endpoint is absent or the log is off — the caller
// then skips the balance check.
func eventCounts(client *http.Client, base string) (map[string]int64, error) {
	resp, err := client.Get(base + "/events?n=0")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/events returned %d", resp.StatusCode)
	}
	counts := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("/events line not JSON: %w", err)
		}
		counts[rec.Event]++
	}
	return counts, sc.Err()
}
