// Command loadgen drives a pimserve instance with a configurable storm
// of concurrent sweep requests and reports what came back: clean 202s,
// coalesced submissions, shed 429s, dropped connections, end-to-end
// latency percentiles, sustained request throughput, and the server's
// WearPlan cache-hit delta scraped from /metrics. It is the acceptance
// harness for the serving layer — "N concurrent requests, zero dropped
// connections, shed requests get clean 429s" is checked here against a
// live server.
//
// Example (against `pimserve -serve localhost:8090`):
//
//	loadgen -target http://localhost:8090 -requests 2000 -concurrency 1000
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	target := flag.String("target", "http://localhost:8090", "pimserve base URL")
	requests := flag.Int("requests", 2000, "total requests to send")
	concurrency := flag.Int("concurrency", 1000, "concurrent in-flight requests")
	benchmark := flag.String("benchmark", "mult", "benchmark to request")
	bits := flag.Int("bits", 4, "operand precision")
	lanes := flag.Int("lanes", 16, "array lanes")
	rows := flag.Int("rows", 256, "array rows")
	iterations := flag.Int("iterations", 60, "iterations per job")
	recompile := flag.Int("recompile", 20, "recompile period")
	strategies := flag.String("strategies", "StxSt", "comma-separated strategy labels (empty = all 18)")
	distinct := flag.Int("distinct", 32, "distinct request shapes (seeds); 1 = maximal coalescing")
	wait := flag.Bool("wait", true, "poll accepted jobs to completion before reporting")
	flag.Parse()

	var strats []string
	if *strategies != "" {
		strats = strings.Split(*strategies, ",")
	}
	client := &http.Client{
		Timeout: 2 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *concurrency,
			MaxIdleConnsPerHost: 2 * *concurrency,
		},
	}

	hitsBefore, _ := scrapeMetric(client, *target, "serve_cache_hits")
	missesBefore, _ := scrapeMetric(client, *target, "serve_cache_misses")

	var accepted, coalesced, shed, other, dropped atomic.Int64
	latencies := make([]time.Duration, *requests)
	jobs := make(chan string, *requests)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			body := map[string]any{
				"benchmark":       *benchmark,
				"bits":            *bits,
				"lanes":           *lanes,
				"rows":            *rows,
				"iterations":      *iterations,
				"recompile_every": *recompile,
				"seed":            i % max(*distinct, 1),
			}
			if len(strats) > 0 {
				body["strategies"] = strats
			}
			data, _ := json.Marshal(body)
			t0 := time.Now()
			resp, err := client.Post(*target+"/sweep", "application/json", bytes.NewReader(data))
			latencies[i] = time.Since(t0)
			if err != nil {
				dropped.Add(1)
				return
			}
			var out map[string]any
			decErr := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			switch {
			case decErr != nil:
				dropped.Add(1)
			case resp.StatusCode == http.StatusAccepted:
				accepted.Add(1)
				if out["coalesced"] == true {
					coalesced.Add(1)
				}
				if id, _ := out["job"].(string); id != "" {
					jobs <- id
				}
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	submitWall := time.Since(start)
	close(jobs)

	unique := map[string]bool{}
	for id := range jobs {
		unique[id] = true
	}
	if *wait {
		for id := range unique {
			if err := pollDone(client, *target, id); err != nil {
				log.Printf("job %s: %v", id, err)
				other.Add(1)
			}
		}
	}
	totalWall := time.Since(start)

	hitsAfter, hitsErr := scrapeMetric(client, *target, "serve_cache_hits")
	missesAfter, _ := scrapeMetric(client, *target, "serve_cache_misses")

	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	pct := func(q float64) time.Duration {
		return latencies[int(q*float64(len(latencies)-1))]
	}
	fmt.Printf("requests            %d (concurrency %d, %d distinct shapes)\n", *requests, *concurrency, *distinct)
	fmt.Printf("accepted            %d (%d coalesced onto in-flight jobs, %d unique jobs)\n",
		accepted.Load(), coalesced.Load(), len(unique))
	fmt.Printf("shed (429)          %d\n", shed.Load())
	fmt.Printf("dropped/errors      %d / %d\n", dropped.Load(), other.Load())
	fmt.Printf("submit throughput   %.0f req/s (%.2fs wall)\n",
		float64(*requests)/submitWall.Seconds(), submitWall.Seconds())
	if *wait {
		fmt.Printf("end-to-end wall     %.2fs (all accepted jobs finished)\n", totalWall.Seconds())
	}
	fmt.Printf("submit latency      p50 %v  p99 %v  max %v\n", pct(0.50), pct(0.99), pct(1))
	if hitsErr == nil {
		fmt.Printf("plan cache          +%d hits, +%d misses during the storm\n",
			hitsAfter-hitsBefore, missesAfter-missesBefore)
	}
	if dropped.Load() > 0 || other.Load() > 0 {
		log.Fatalf("FAIL: %d dropped connections, %d unexpected statuses", dropped.Load(), other.Load())
	}
	fmt.Println("PASS: every request got a clean 202 or 429")
}

// pollDone waits for one job to reach a terminal state.
func pollDone(client *http.Client, base, id string) error {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("finished %s: %s", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out")
}

// scrapeMetric pulls one counter value from the server's Prometheus
// exposition.
func scrapeMetric(client *http.Client, base, name string) (int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found", name)
}
