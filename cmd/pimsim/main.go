// Command pimsim runs one benchmark under one load-balancing configuration
// and reports the resulting write distribution, imbalance, and expected
// array lifetime (Eq. 4). Optionally it writes the distribution heatmap.
//
//	pimsim -bench dot -within Ra -between Bs -hw -iters 10000 -png dot.png
//
// With -sample N it records a per-epoch wear trajectory (exported as
// series_*.{csv,json} on exit), and with -serve addr the run is
// observable live: /metrics (Prometheus text), /series (JSON), and
// /wear.png (the current write-distribution heatmap).
//
//	pimsim -bench mult -iters 100000 -sample 10 -serve localhost:6060
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/stats"
	"pimendure/pim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pimsim: ")

	run := obs.NewRun("pimsim", flag.CommandLine)
	benchName := flag.String("bench", "mult", "benchmark: mult, dot, conv, add")
	bits := flag.Int("bits", 32, "operand precision (8 for conv by default)")
	lanes := flag.Int("lanes", 1024, "array lanes")
	rows := flag.Int("rows", 1024, "array rows")
	within := flag.String("within", "St", "within-lane strategy: St, Ra, Bs")
	between := flag.String("between", "St", "between-lane strategy: St, Ra, Bs")
	hw := flag.Bool("hw", false, "enable hardware free-bit renaming")
	iters := flag.Int("iters", 10000, "benchmark iterations")
	recompile := flag.Int("recompile", 100, "software re-mapping period")
	sample := flag.Int("sample", 0, "record wear telemetry every N recompile epochs (0 disables; series exported on exit, live at -serve /series and /wear.png)")
	seed := flag.Int64("seed", 1, "random seed")
	tech := flag.String("tech", "MRAM", "technology: MRAM, RRAM, PCM, MRAM-projected")
	pngPath := flag.String("png", "", "write distribution heatmap PNG to this path")
	distPath := flag.String("dumpdist", "", "save the raw write distribution (JSON) to this path")
	verify := flag.Bool("verify", false, "also run one bit-accurate iteration and check results")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	opt := pim.Options{Lanes: *lanes, Rows: *rows, PresetOutputs: true, NANDBasis: true}
	bench, err := makeBench(opt, *benchName, *bits)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mapping.ParseStrategy(*within)
	if err != nil {
		log.Fatal(err)
	}
	b, err := mapping.ParseStrategy(*between)
	if err != nil {
		log.Fatal(err)
	}
	strat := pim.Strategy{Within: w, Between: b, Hw: *hw}

	var technology pim.Technology
	for _, t := range pim.Technologies() {
		if strings.EqualFold(t.Name, *tech) {
			technology = t
		}
	}
	if technology.Name == "" {
		log.Fatalf("unknown technology %q", *tech)
	}

	res, err := pim.Run(bench, opt,
		pim.RunConfig{Iterations: *iters, RecompileEvery: *recompile, Seed: *seed, SampleEvery: *sample},
		strat, technology)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark:        %s\n", bench.Description)
	fmt.Printf("strategy:         %s\n", strat.Name())
	fmt.Printf("iterations:       %d (recompile every %d)\n", *iters, *recompile)
	fmt.Printf("lane utilization: %.2f%%\n", res.Utilization*100)
	fmt.Printf("max writes/iter:  %.3f\n", res.MaxWritesPerIteration)
	fmt.Printf("max/mean:         %.3f   CoV: %.3f   Gini: %.3f\n",
		res.Imbalance, stats.Summarize(res.Dist.Counts).CoV, stats.Gini(res.Dist.Counts))
	fmt.Printf("lifetime (%s): %.4g iterations, %.2f days\n",
		technology.Name, res.Lifetime.IterationsToFailure, res.Lifetime.Days())

	if *pngPath != "" {
		grid, err := pim.Heatmap(res.Dist, 256)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*pngPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pim.WriteHeatmapPNG(f, grid, 2); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heatmap:          %s\n", *pngPath)
	}

	if *distPath != "" {
		f, err := os.Create(*distPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pim.SaveDist(f, res.Dist); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distribution:     %s (render with: heatmap -load %s)\n", *distPath, *distPath)
	}

	if *verify {
		data := func(slot, lane int) bool { return (slot*13+lane*7)%3 == 0 }
		if err := pim.Verify(bench, opt, strat, data); err != nil {
			log.Fatalf("functional verification FAILED: %v", err)
		}
		fmt.Println("functional check: exact")
	}

	if err := run.Finish(*manifestDir, map[string]any{
		"bench": *benchName, "bits": *bits, "lanes": *lanes, "rows": *rows,
		"within": *within, "between": *between, "hw": *hw,
		"iters": *iters, "recompile": *recompile, "sample": *sample, "tech": *tech,
	}, *seed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func makeBench(opt pim.Options, name string, bits int) (*pim.Benchmark, error) {
	switch name {
	case "mult":
		return pim.NewParallelMult(opt, bits)
	case "dot":
		n := 1
		for n*2 <= opt.Lanes {
			n *= 2
		}
		return pim.NewDotProduct(opt, n, bits)
	case "conv":
		if bits == 32 {
			bits = 8 // the paper's convolution precision
		}
		return pim.NewConvolution(opt, 4, 3, bits)
	case "add":
		return pim.NewVectorAdd(opt, bits)
	}
	return nil, fmt.Errorf("unknown benchmark %q (want mult, dot, conv, add)", name)
}
