package main

import (
	"strings"
	"testing"

	"pimendure/pim"
)

func TestMakeBench(t *testing.T) {
	opt := pim.Options{Lanes: 16, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	for _, name := range []string{"mult", "dot", "conv", "add"} {
		b, err := makeBench(opt, name, 32)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := b.Trace.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := makeBench(opt, "nope", 32); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// conv defaults to the paper's 8-bit precision when the generic 32-bit
// default is passed.
func TestMakeBenchConvPrecision(t *testing.T) {
	opt := pim.Options{Lanes: 16, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	b, err := makeBench(opt, "conv", 32)
	if err != nil {
		t.Fatal(err)
	}
	if want := "8-bit"; !strings.Contains(b.Description, want) {
		t.Errorf("description %q should mention %s", b.Description, want)
	}
}
