// Command pimserve runs the endurance-as-a-service job server: the obs
// telemetry listener (-serve) extended with POST /sweep, POST /run,
// POST /fleet and GET /jobs/<id> from internal/serve. Clients submit
// named benchmarks with a pim.RunConfig as JSON (plus devices/sigmas/
// technologies for fleet-survival studies), poll job ids for progress,
// and repeated or identical requests are answered from the WearPlan
// cache and coalesced onto one execution. Every accepted job carries a
// trace id: GET /jobs/<id>/trace returns that job's Chrome trace slice,
// GET /events tails the structured admission log as JSON Lines, and
// GET /dashboard serves a self-refreshing HTML view of queue depth,
// latency histograms and counter sparklines. The process serves until
// SIGINT/SIGTERM, then drains gracefully and writes the usual manifest
// and metrics artifacts (including the event log as events_pimserve.jsonl).
//
// Example:
//
//	pimserve -serve localhost:8090 -workers 8 -queue 64 &
//	curl -s -X POST localhost:8090/sweep -d '{"benchmark":"mult","bits":8}'
//	curl -s localhost:8090/jobs/j000001
//	curl -s localhost:8090/jobs/j000001/trace
//	curl -s 'localhost:8090/events?n=100'
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimendure/internal/obs"
	"pimendure/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pimserve: ")

	run := obs.NewRun("pimserve", flag.CommandLine)
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max queued jobs before shedding with 429")
	cacheSize := flag.Int("cache", 32, "WearPlan LRU capacity (negative disables caching)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed requests")
	maxLanes := flag.Int("max-lanes", 4096, "largest lane count a request may ask for")
	maxRows := flag.Int("max-rows", 4096, "largest row count a request may ask for")
	maxIters := flag.Int("max-iterations", 10_000_000, "largest iteration count a request may ask for")
	maxDevices := flag.Int("max-devices", 10_000_000, "largest fleet population a request may ask for")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()

	if run.ServeAddr == "" {
		run.ServeAddr = "localhost:8090"
	}
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		RetryAfter:    *retryAfter,
		MaxLanes:      *maxLanes,
		MaxRows:       *maxRows,
		MaxIterations: *maxIters,
		MaxDevices:    *maxDevices,
	})
	srv.Mount(obs.Handle)
	log.Printf("serving on http://%s (POST /sweep, POST /run, POST /fleet, GET /jobs/<id>[/trace], GET /metrics, GET /events, GET /dashboard)", run.ServeBound())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down: draining running jobs")
	srv.Close()
	srv.Unmount(obs.Handle)

	config := map[string]any{
		"workers": *workers, "queue": *queue, "cache": *cacheSize,
		"max_lanes": *maxLanes, "max_rows": *maxRows, "max_iterations": *maxIters,
		"max_devices": *maxDevices,
	}
	if err := run.Finish(*manifestDir, config, 0, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
