// Command heatmap runs a benchmark under a strategy configuration and
// renders its write-distribution heatmap (one panel of Figs. 14–16) to a
// PNG and/or PGM file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/pim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatmap: ")

	run := obs.NewRun("heatmap", flag.CommandLine)
	benchName := flag.String("bench", "mult", "benchmark: mult, dot, conv")
	lanes := flag.Int("lanes", 1024, "array lanes")
	rows := flag.Int("rows", 1024, "array rows")
	within := flag.String("within", "St", "within-lane strategy: St, Ra, Bs")
	between := flag.String("between", "St", "between-lane strategy: St, Ra, Bs")
	hw := flag.Bool("hw", false, "hardware renaming")
	iters := flag.Int("iters", 10000, "iterations")
	recompile := flag.Int("recompile", 100, "software re-mapping period")
	dim := flag.Int("dim", 128, "heatmap resolution cap")
	scale := flag.Int("scale", 4, "PNG pixels per cell")
	pngPath := flag.String("png", "heatmap.png", "PNG output path (empty to skip)")
	pgmPath := flag.String("pgm", "", "PGM output path (empty to skip)")
	load := flag.String("load", "", "render a saved distribution (pimsim -dumpdist) instead of simulating")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}
	finish := func() {
		if err := run.Finish(*manifestDir, map[string]any{
			"bench": *benchName, "lanes": *lanes, "rows": *rows,
			"within": *within, "between": *between, "hw": *hw,
			"iters": *iters, "recompile": *recompile,
			"dim": *dim, "scale": *scale, "load": *load,
		}, 1, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := pim.LoadDist(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		grid, err := pim.Heatmap(dist, *dim)
		if err != nil {
			log.Fatal(err)
		}
		emit(grid, *pngPath, *pgmPath, *scale)
		finish()
		return
	}

	opt := pim.Options{Lanes: *lanes, Rows: *rows, PresetOutputs: true, NANDBasis: true}
	var bench *pim.Benchmark
	var err error
	switch *benchName {
	case "mult":
		bench, err = pim.NewParallelMult(opt, 32)
	case "conv":
		bench, err = pim.NewConvolution(opt, 4, 3, 8)
	case "dot":
		n := 1
		for n*2 <= opt.Lanes {
			n *= 2
		}
		bench, err = pim.NewDotProduct(opt, n, 32)
	default:
		err = fmt.Errorf("unknown benchmark %q", *benchName)
	}
	if err != nil {
		log.Fatal(err)
	}

	w, err := mapping.ParseStrategy(*within)
	if err != nil {
		log.Fatal(err)
	}
	b, err := mapping.ParseStrategy(*between)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pim.Run(bench, opt,
		pim.RunConfig{Iterations: *iters, RecompileEvery: *recompile, Seed: 1},
		pim.Strategy{Within: w, Between: b, Hw: *hw}, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := pim.Heatmap(res.Dist, *dim)
	if err != nil {
		log.Fatal(err)
	}
	emit(grid, *pngPath, *pgmPath, *scale)
	finish()
}

// emit renders a normalized grid to the requested files.
func emit(grid *pim.Grid, pngPath, pgmPath string, scale int) {
	write := func(path string, fn func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write(pngPath, func(f *os.File) error { return pim.WriteHeatmapPNG(f, grid, scale) })
	write(pgmPath, func(f *os.File) error { return pim.WriteHeatmapPGM(f, grid) })
}
