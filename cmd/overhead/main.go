// Command overhead regenerates Table 2: the relative cost of
// memory-access-aware randomized shuffling (§3.2) — extra COPY gates over
// computation gates — for multiplication and addition across precisions,
// cross-checked against circuits actually synthesized by the library.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pimendure/internal/obs"
	"pimendure/internal/program"
	"pimendure/internal/report"
	"pimendure/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overhead: ")

	run := obs.NewRun("overhead", flag.CommandLine)
	precisions := flag.String("bits", "4,8,16,32,64", "comma-separated precisions")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	var bits []int
	for _, s := range strings.Split(*precisions, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || b < 2 {
			log.Fatalf("bad precision %q", s)
		}
		bits = append(bits, b)
	}

	t := report.NewTable("Table 2 — extra COPY gates for memory-access-aware shuffling",
		"bit precision", "mult overhead", "add overhead", "mult gates (analytic)",
		"mult gates (synthesized)", "add gates (analytic)", "add gates (synthesized)")
	for _, b := range bits {
		t.AddRow(fmt.Sprint(b),
			report.Pct(synth.ShuffleOverhead(synth.ShuffleMult, b), 2),
			report.Pct(synth.ShuffleOverhead(synth.ShuffleAdd, b), 2),
			fmt.Sprint(synth.ComputeGates(synth.ShuffleMult, b)),
			fmt.Sprint(synthesizedGates(b, true)),
			fmt.Sprint(synth.ComputeGates(synth.ShuffleAdd, b)),
			fmt.Sprint(synthesizedGates(b, false)))
	}
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if err := run.Finish(*manifestDir, map[string]any{"bits": *precisions}, 0, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// synthesizedGates counts gates in an actually-built Mixed2 circuit.
func synthesizedGates(b int, mult bool) int {
	bld := program.NewBuilder(1, 64*b*b+256)
	x := bld.AllocN(b)
	y := bld.AllocN(b)
	if mult {
		synth.Dadda(bld, synth.Mixed2, x, y)
	} else {
		synth.RippleCarryAdd(bld, synth.Mixed2, x, y)
	}
	n := 0
	for _, op := range bld.Trace().Ops {
		if op.Kind == program.OpGate {
			n++
		}
	}
	return n
}
