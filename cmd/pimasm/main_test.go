package main

import (
	"testing"

	"pimendure/internal/mapping"
)

func TestParseStrategy(t *testing.T) {
	s, err := parseStrategy("Ra", "Bs", true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Within != mapping.Random || s.Between != mapping.ByteShift || !s.Hw {
		t.Errorf("parsed %+v", s)
	}
	if s.Name() != "RaxBs+Hw" {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := parseStrategy("zz", "St", false); err == nil {
		t.Error("bad within accepted")
	}
	if _, err := parseStrategy("St", "zz", false); err == nil {
		t.Error("bad between accepted")
	}
}
