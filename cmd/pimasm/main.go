// Command pimasm works with the textual PIM assembly format:
//
//	pimasm dump  -bench mult -bits 8 -lanes 16 -rows 512    # compile a kernel to assembly
//	pimasm check prog.asm                                   # parse + validate
//	pimasm stats prog.asm                                   # gate/latency/traffic summary
//	pimasm run   -pattern 3 prog.asm                        # execute one iteration, print read slots
//	pimasm wear  -rows 512 -iters 1000 prog.asm             # wear-simulate, print imbalance
//
// Flags come before the file argument (standard flag-package order).
//
// Assembly is the format of internal/asm: one op per line, bits b<n>,
// data slots d<n>, lane masks @m<n>.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pimendure/internal/array"
	"pimendure/internal/asm"
	"pimendure/internal/core"
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/opt"
	"pimendure/internal/program"
	"pimendure/internal/stats"
	"pimendure/pim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pimasm: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: pimasm <dump|check|opt|stats|run|wear> [flags] [file]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "dump":
		err = cmdDump(args)
	case "check":
		err = cmdCheck(args)
	case "opt":
		err = cmdOpt(args)
	case "stats":
		err = cmdStats(args)
	case "run":
		err = cmdRun(args)
	case "wear":
		err = cmdWear(args)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// finishObs completes a subcommand's observability lifecycle: when the
// subcommand succeeded it writes the run manifest (and the -metrics
// table) under out/, like every other CLI.
func finishObs(run *obs.Run, sub string, err error) error {
	if err != nil {
		return err
	}
	return run.Finish("out", map[string]any{"subcommand": sub}, 0, os.Stdout)
}

func loadTrace(fs *flag.FlagSet) (*program.Trace, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected one assembly file argument (flags go before the file)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return asm.Parse(f)
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	benchName := fs.String("bench", "mult", "kernel: mult, dot, conv, add, bnn")
	bits := fs.Int("bits", 8, "operand precision")
	lanes := fs.Int("lanes", 16, "lanes")
	rows := fs.Int("rows", 512, "rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	opt := pim.Options{Lanes: *lanes, Rows: *rows, PresetOutputs: true, NANDBasis: true}
	var bench *pim.Benchmark
	var err error
	switch *benchName {
	case "mult":
		bench, err = pim.NewParallelMult(opt, *bits)
	case "add":
		bench, err = pim.NewVectorAdd(opt, *bits)
	case "bnn":
		bench, err = pim.NewBNNLayer(opt, *bits)
	case "conv":
		bench, err = pim.NewConvolution(opt, 4, 3, *bits)
	case "dot":
		n := 1
		for n*2 <= *lanes {
			n *= 2
		}
		bench, err = pim.NewDotProduct(opt, n, *bits)
	default:
		err = fmt.Errorf("unknown kernel %q", *benchName)
	}
	if err != nil {
		return err
	}
	return finishObs(run, "dump", asm.Print(os.Stdout, bench.Trace))
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %d lanes, %d bit addresses, %d ops, %d masks\n",
		tr.Lanes, tr.LaneBits, len(tr.Ops), len(tr.Masks))
	return finishObs(run, "check", nil)
}

func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	opted, st := opt.Optimize(tr, opt.All())
	log.Printf("removed %d gates, rewrote %d inputs (%d passes)",
		st.RemovedGates, st.RewrittenInputs, st.Passes)
	return finishObs(run, "opt", asm.Print(os.Stdout, opted))
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	preset := fs.Bool("preset", true, "charge CRAM output presets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	st := tr.ComputeStats(*preset)
	fmt.Printf("lanes:            %d\n", tr.Lanes)
	fmt.Printf("bit addresses:    %d\n", st.LaneBits)
	fmt.Printf("ops:              %d (%d gates, %d writes, %d reads, %d moves)\n",
		st.Ops, st.Gates, st.Writes, st.Reads, st.Moves)
	fmt.Printf("latency:          %d steps (%.2f µs at 3 ns/step)\n", st.Steps, float64(st.Steps)*3e-3)
	fmt.Printf("cell writes:      %d\n", st.CellWrites)
	fmt.Printf("cell reads:       %d\n", st.CellReads)
	fmt.Printf("lane utilization: %.2f%%\n", st.Utilization*100)
	return finishObs(run, "stats", nil)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	rows := fs.Int("rows", 0, "physical rows (0 = trace footprint + 1)")
	pattern := fs.Int64("pattern", 0, "data pattern seed (slot values are pseudorandom bits)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	r := *rows
	if r == 0 {
		r = tr.LaneBits + 1
	}
	arr := array.New(array.Config{BitsPerLane: r, Lanes: tr.Lanes})
	data := func(slot, lane int) bool {
		z := uint64(*pattern)*0x9E3779B97F4A7C15 + uint64(slot)*0xBF58476D1CE4E5B9 + uint64(lane)*0x94D049BB133111EB
		z ^= z >> 31
		return z&1 == 1
	}
	runner, err := array.NewRunner(arr, tr, array.IdentityMapper(r, tr.Lanes), data)
	if err != nil {
		return err
	}
	runner.RunIteration()
	for slot := 0; slot < tr.ReadSlots; slot++ {
		fmt.Printf("d%d:", slot)
		for lane := 0; lane < tr.Lanes; lane++ {
			v := 0
			if runner.Out(slot, lane) {
				v = 1
			}
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
	return finishObs(run, "run", nil)
}

func cmdWear(args []string) error {
	fs := flag.NewFlagSet("wear", flag.ExitOnError)
	run := obs.NewRun("pimasm", fs)
	rows := fs.Int("rows", 0, "physical rows (0 = trace footprint + 1)")
	iters := fs.Int("iters", 1000, "iterations")
	within := fs.String("within", "St", "within-lane strategy")
	between := fs.String("between", "St", "between-lane strategy")
	hw := fs.Bool("hw", false, "hardware renaming")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := run.Start(); err != nil {
		return err
	}
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	r := *rows
	if r == 0 {
		r = tr.LaneBits + 1
	}
	strat, err := parseStrategy(*within, *between, *hw)
	if err != nil {
		return err
	}
	dist, err := core.Simulate(tr, core.SimConfig{
		Rows: r, PresetOutputs: true, Iterations: *iters, RecompileEvery: 100, Seed: 1,
	}, strat)
	if err != nil {
		return err
	}
	sum := stats.Summarize(dist.Counts)
	maxPerIter := 0.0
	if dist.Iterations > 0 {
		maxPerIter = float64(sum.Max) / float64(dist.Iterations)
	}
	fmt.Printf("strategy:        %s\n", strat.Name())
	fmt.Printf("max writes/iter: %.3f\n", maxPerIter)
	fmt.Printf("max/mean:        %.3f\n", sum.MaxOverMean())
	fmt.Printf("Gini:            %.3f\n", stats.Gini(dist.Counts))
	return finishObs(run, "wear", nil)
}

func parseStrategy(within, between string, hw bool) (core.StrategyConfig, error) {
	var s core.StrategyConfig
	var err error
	if s.Within, err = mapping.ParseStrategy(within); err != nil {
		return s, err
	}
	if s.Between, err = mapping.ParseStrategy(between); err != nil {
		return s, err
	}
	s.Hw = hw
	return s, nil
}
