// Command lifetime is the analytic calculator behind §3.1: Eq. 1 (total
// operations before complete break-down under perfect balancing), Eq. 2
// (wall-clock time to break-down at full utilization), and Eq. 4 applied
// to a user-supplied hottest-cell write rate — swept across the device
// technologies of §2.1.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pimendure/internal/device"
	"pimendure/internal/lifetime"
	"pimendure/internal/obs"
	"pimendure/internal/report"
	"pimendure/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lifetime: ")

	run := obs.NewRun("lifetime", flag.CommandLine)
	rows := flag.Int("rows", 1024, "array rows")
	lanes := flag.Int("lanes", 1024, "array lanes")
	bits := flag.Int("bits", 32, "multiply precision for the Eq. 1 write cost")
	maxWrites := flag.Float64("maxwrites", 0, "Eq. 4: hottest cell's writes per iteration (0 = skip)")
	steps := flag.Int("steps", 0, "Eq. 4: sequential steps per iteration")
	manifestDir := flag.String("out", "out", "directory for the run manifest")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	writesPerMult := float64(synth.MultiplierGates(synth.NAND, *bits))
	t := report.NewTable(
		fmt.Sprintf("Perfectly-balanced bounds for a %d×%d array (%d-bit multiply = %.0f writes)",
			*rows, *lanes, *bits, writesPerMult),
		"technology", "endurance", "Eq.1 total mults", "Eq.2 time to break-down")
	for _, tech := range device.Technologies() {
		secs := lifetime.UpperBoundSeconds(*rows, *lanes, tech.Endurance, tech.SwitchSeconds)
		t.AddRow(tech.Name, report.Sci(tech.Endurance),
			report.Sci(lifetime.UpperBoundOps(*rows, *lanes, tech.Endurance, writesPerMult)),
			humanTime(secs))
	}
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *maxWrites > 0 && *steps > 0 {
		t4 := report.NewTable("Eq. 4 lifetime for the supplied write distribution",
			"technology", "iterations to first failure", "lifetime")
		for _, tech := range device.Technologies() {
			m := lifetime.Model{Endurance: tech.Endurance, StepSeconds: tech.SwitchSeconds}
			r, err := m.Estimate(*maxWrites, *steps)
			if err != nil {
				log.Fatal(err)
			}
			t4.AddRow(tech.Name, report.Sci(r.IterationsToFailure), humanTime(r.Seconds))
		}
		if err := t4.WriteMarkdown(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if err := run.Finish(*manifestDir, map[string]any{
		"rows": *rows, "lanes": *lanes, "bits": *bits,
		"maxwrites": *maxWrites, "steps": *steps,
	}, 0, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// humanTime renders seconds in the most readable unit.
func humanTime(secs float64) string {
	switch {
	case secs < 120:
		return fmt.Sprintf("%.1f s", secs)
	case secs < 2*3600:
		return fmt.Sprintf("%.1f min", secs/60)
	case secs < 2*86400:
		return fmt.Sprintf("%.1f h", secs/3600)
	case secs < 2*365*86400:
		return fmt.Sprintf("%.2f days", secs/86400)
	default:
		return fmt.Sprintf("%.2f years", secs/(365*86400))
	}
}
