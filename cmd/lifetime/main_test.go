package main

import (
	"strings"
	"testing"
)

func TestHumanTime(t *testing.T) {
	cases := []struct {
		secs float64
		want string
	}{
		{30, "30.0 s"},
		{307, "5.1 min"},
		{3 * 3600, "3.0 h"},
		{3072000, "35.56 days"},
		{10 * 365 * 86400, "10.00 years"},
	}
	for _, c := range cases {
		if got := humanTime(c.secs); got != c.want {
			t.Errorf("humanTime(%v) = %q, want %q", c.secs, got, c.want)
		}
	}
}

func TestHumanTimeUnitsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, secs := range []float64{5, 300, 10000, 200000, 1e8} {
		unit := humanTime(secs)
		unit = unit[strings.LastIndexByte(unit, ' ')+1:]
		if seen[unit] {
			t.Errorf("unit %q reused across magnitudes", unit)
		}
		seen[unit] = true
	}
}
