package main

import (
	"fmt"
	"io"
	"math"

	"pimendure/internal/faults"
	"pimendure/internal/mapping"
	"pimendure/internal/render"
	"pimendure/internal/report"
	"pimendure/pim"
)

// runFailureTimeline extends the paper's first-cell-failure lifetime
// (Eq. 4) into a full failure trajectory: the fraction of cells dead as
// iterations accumulate, for the static layout versus random balancing.
// Balancing trades a later first failure for a sharper collapse — every
// cell dies at nearly the same time.
func runFailureTimeline(cfg config) error {
	opt := pimOptions(cfg)
	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		return err
	}
	rc := pim.RunConfig{Iterations: cfg.iters, RecompileEvery: cfg.recompile, Seed: cfg.seed, Workers: cfg.workers}
	static, err := pim.Run(bench, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		return err
	}
	ra, err := pim.Run(bench, opt, rc, pim.Strategy{Within: pim.Random, Between: pim.Random}, pim.MRAM())
	if err != nil {
		return err
	}

	endurance := pim.MRAM().Endurance
	// Sample around the interesting region: from half the static first
	// failure to past the balanced collapse.
	first := endurance / static.MaxWritesPerIteration
	points := make([]float64, 0, 40)
	for f := 0.5; f <= 4.0; f *= 1.12 {
		points = append(points, first*f)
	}
	fs := faults.FailureTimeline(static.Dist.Counts, static.Dist.Iterations, endurance, points)
	fr := faults.FailureTimeline(ra.Dist.Counts, ra.Dist.Iterations, endurance, points)

	return writeFile(cfg, "e15_failure_timeline.csv", func(w io.Writer) error {
		return render.SeriesCSV(w, []string{"iterations", "failed_frac_StxSt", "failed_frac_RaxRa"},
			points, fs, fr)
	})
}

// runAccessCost reproduces Fig. 8's argument quantitatively: the cost of a
// standard byte-addressable access to a 32-bit operand after within-lane
// re-mapping, per strategy. Byte-shifting preserves byte count and bit
// order; random shuffling scatters the operand across the lane.
func runAccessCost(cfg config) error {
	operand := make([]int, 32) // a byte-aligned 32-bit variable at addresses 64..95
	for i := range operand {
		operand[i] = 64 + i
	}
	t := report.NewTable("E16 — Fig. 8: byte-access cost of a 32-bit operand after within-lane re-mapping",
		"strategy", "bytes touched (min/avg/max over 100 epochs)", "epochs with bit order preserved")
	for _, s := range mapping.Strategies() {
		sched := mapping.Schedule{Rows: cfg.rows, Lanes: cfg.lanes, Within: s, Between: mapping.Static, Seed: cfg.seed}
		minB, maxB, sum, orderedN := math.MaxInt32, 0, 0, 0
		for epoch := 1; epoch <= 100; epoch++ {
			bytes, ordered := mapping.ByteAccessCost(sched.EpochWithin(epoch), operand)
			if bytes < minB {
				minB = bytes
			}
			if bytes > maxB {
				maxB = bytes
			}
			sum += bytes
			if ordered {
				orderedN++
			}
		}
		t.AddRow(s.String(), fmt.Sprintf("%d / %.1f / %d", minB, float64(sum)/100, maxB),
			fmt.Sprintf("%d/100", orderedN))
	}
	return emitTable(cfg, "e16_access_cost", t)
}
