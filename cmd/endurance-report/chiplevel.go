package main

import (
	"fmt"

	"pimendure/internal/energy"
	"pimendure/internal/lifetime"
	"pimendure/internal/report"
	"pimendure/internal/system"
	"pimendure/pim"
)

// runEnergy prices the three kernels on each device energy model and
// contrasts the in-memory multiply with the conventional data-movement
// reference (§1's energy-efficiency motivation, made quantitative).
func runEnergy(cfg config) error {
	benches, order, err := benchSet(cfg)
	if err != nil {
		return err
	}
	opt := pimOptions(cfg)
	t := report.NewTable("E17 — energy per benchmark iteration (preset-inclusive)",
		"benchmark", "technology", "reads (J)", "writes (J)", "total (J)", "EDP (J·s)")
	for _, fig := range order {
		b := benches[fig]
		steps := b.Trace.ComputeStats(opt.PresetOutputs).Steps
		for _, m := range energy.Models() {
			br, err := pim.EnergyPerIteration(b, opt, m)
			if err != nil {
				return err
			}
			t.AddRow(b.Name, m.Name, report.Sci(br.ReadJ), report.Sci(br.WriteJ),
				report.Sci(br.Total()), report.Sci(energy.EnergyDelayProduct(br, steps, 3e-9)))
		}
	}

	cmp := report.NewTable("E17 — one 32-bit multiply: in-memory vs conventional",
		"path", "energy (J)", "vs conventional")
	conv := energy.DefaultConv().MultiplyJ(32)
	cmp.AddRow("conventional (move 128 bits + core op)", report.Sci(conv), "1.00×")
	opt1 := pimOptions(cfg)
	opt1.Lanes = 1
	mult1, err := pim.NewParallelMult(opt1, 32)
	if err != nil {
		return err
	}
	for _, m := range energy.Models() {
		br, err := pim.EnergyPerIteration(mult1, opt1, m)
		if err != nil {
			return err
		}
		cmp.AddRow("PIM "+m.Name, report.Sci(br.Total()), report.Times(br.Total()/conv))
	}
	if err := emitTable(cfg, "e17_energy", t); err != nil {
		return err
	}
	return emitTable(cfg, "e17_mult_vs_cpu", cmp)
}

// runVariability quantifies the §4 uniform-endurance caveat: first-failure
// iterations under lognormal per-cell endurance, against the Eq. 4 value.
func runVariability(cfg config) error {
	opt := pimOptions(cfg)
	// A reduced array keeps the Monte Carlo (trials × written cells)
	// tractable while preserving the distribution's shape.
	opt.Lanes = 128
	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		return err
	}
	rc := pim.RunConfig{Iterations: 2000, RecompileEvery: cfg.recompile, Seed: cfg.seed, Workers: cfg.workers}
	t := report.NewTable("E18 — first failure under lognormal endurance variability (32-bit multiply, MRAM median 10¹²)",
		"strategy", "sigma", "Eq.4 iterations", "MC mean", "MC p5", "MC p95")
	for _, s := range []pim.Strategy{pim.StaticStrategy, {Within: pim.Random, Between: pim.Random}} {
		res, err := pim.Run(bench, opt, rc, s, pim.MRAM())
		if err != nil {
			return err
		}
		for _, sigma := range []float64{0.25, 0.5, 1.0} {
			vr, err := pim.LifetimeUnderVariability(res, pim.MRAM(), sigma, 60, cfg.seed)
			if err != nil {
				return err
			}
			t.AddRow(s.Name(), report.Fixed(sigma, 2), report.Sci(vr.DeterministicIterations),
				report.Sci(vr.MeanIterations), report.Sci(vr.P05), report.Sci(vr.P95))
		}
	}
	return emitTable(cfg, "e18_variability", t)
}

// runChip lifts Eq. 4 to the accelerator level (§4's replacement
// scenario): when must a many-array chip be replaced, with and without
// spare arrays, at server (100%) and embedded (1%) duty cycles.
func runChip(cfg config) error {
	opt := pimOptions(cfg)
	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		return err
	}
	rc := pim.RunConfig{Iterations: cfg.iters, RecompileEvery: cfg.recompile, Seed: cfg.seed, Workers: cfg.workers}
	res, err := pim.Run(bench, opt, rc,
		pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}, pim.MRAM())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("E19 — accelerator replacement time (1024 arrays, per-array life %.1f days, σ=0.3)", res.Lifetime.Days()),
		"spare arrays", "duty cycle", "mean (days)", "p5 (days)", "p95 (days)")
	for _, spare := range []float64{0, 0.1} {
		for _, duty := range []float64{1.0, 0.01} {
			sc := system.Config{Arrays: 1024, SpareFraction: spare, DutyCycle: duty, Sigma: 0.3}
			est, err := system.ChipLifetime(res.Lifetime.Seconds, sc, 400, cfg.seed)
			if err != nil {
				return err
			}
			t.AddRow(report.Pct(spare, 0), report.Pct(duty, 0),
				report.Fixed(est.MeanSeconds/lifetime.SecondsPerDay, 1),
				report.Fixed(est.P05/lifetime.SecondsPerDay, 1),
				report.Fixed(est.P95/lifetime.SecondsPerDay, 1))
		}
	}
	return emitTable(cfg, "e19_chip_lifetime", t)
}
