// Command endurance-report regenerates every table and figure of the
// paper's evaluation into an output directory:
//
//	e1_writes_per_op.{md,csv}    §3.1 conventional-vs-PIM cost table
//	e2_upper_bounds.{md,csv}     Eq. 1 / Eq. 2 perfectly-balanced bounds
//	fig5_lane_profile.csv        Fig. 5 per-cell read/write counts in a lane
//	table2_overhead.{md,csv}     Table 2 COPY-shuffle overhead vs precision
//	fig11b_usable.csv            Fig. 11b usable bits vs failed cells
//	e13_lane_sets.{md,csv}       §3.3 lane-set partitioning trade-off
//	fig14/15/16_<cfg>.{png,pgm}  write-distribution heatmaps, 18 configs each
//	fig14/15/16_summary.{md,csv} per-config distribution statistics
//	fig17_<bench>.{md,csv}       lifetime improvement per configuration
//	table3.{md,csv}              lane utilization + best improvement
//	e11_recompile_sweep.{md,csv} §5 re-mapping frequency sweep
//	e12_correctness.{md,csv}     Fig. 6 misalignment + Start-Gap demos
//	e14_technology.{md,csv}      lifetime across MRAM/RRAM/PCM/projected
//
// Run with -quick for a fast low-fidelity pass; defaults reproduce the
// paper's 100 000-iteration, recompile-every-100 setup on a 1024×1024
// array.
//
// The run is observable while it executes: -sample N records per-epoch
// wear trajectories (exported as series_*.{csv,json}), -serve addr
// exposes /metrics, /series and the live /wear.png heatmap, and -trace
// (on by default) writes a Chrome trace_event timeline of the run's
// stages. See docs/ARCHITECTURE.md, "Telemetry".
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"pimendure/internal/obs"
)

type config struct {
	out       string
	lanes     int
	rows      int
	iters     int
	recompile int
	seed      int64
	trials    int
	heatDim   int
	heatScale int
	workers   int
	sample    int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("endurance-report: ")

	var cfg config
	run := obs.NewRun("endurance-report", flag.CommandLine)
	quick := flag.Bool("quick", false, "low-fidelity pass (2 000 iterations, 100 Monte Carlo trials)")
	flag.StringVar(&cfg.out, "out", "out", "output directory")
	flag.IntVar(&cfg.lanes, "lanes", 1024, "array lanes (columns)")
	flag.IntVar(&cfg.rows, "rows", 1024, "array rows (bit addresses per lane)")
	flag.IntVar(&cfg.iters, "iters", 100000, "benchmark iterations per configuration")
	flag.IntVar(&cfg.recompile, "recompile", 100, "software re-mapping period in iterations")
	flag.Int64Var(&cfg.seed, "seed", 1, "random-shuffle seed")
	flag.IntVar(&cfg.trials, "trials", 1000, "Monte Carlo trials for fault experiments")
	flag.IntVar(&cfg.heatDim, "heatdim", 128, "heatmap resolution cap per axis")
	flag.IntVar(&cfg.heatScale, "heatscale", 4, "heatmap PNG pixels per cell")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines for sweeps and the +Hw engine (0 = GOMAXPROCS); results are identical for any value")
	flag.IntVar(&cfg.sample, "sample", 0, "record wear telemetry every N recompile epochs during the sweeps (0 disables; series exported on exit, live at -serve /series and /wear.png)")
	flag.Parse()
	if *quick {
		cfg.iters = 2000
		cfg.trials = 100
	}
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	steps := []struct {
		key  string // manifest stage name (under "report/")
		name string
		fn   func(config) error
	}{
		{"e1", "E1  writes per operation", runE1},
		{"e2", "E2  upper bounds", runE2},
		{"fig5", "E3  Fig 5 lane profile", runFig5},
		{"table2", "E4  Table 2 shuffle overhead", runTable2},
		{"fig11", "E5  Fig 11b failed cells", runFig11},
		{"e13", "E13 lane sets", runLaneSets},
		{"sweeps", "E6-E10 strategy sweeps (Figs 14-17, Table 3, E14)", runSweeps},
		{"e11", "E11 recompile-frequency sweep", runRecompileSweep},
		{"e12", "E12 correctness demos", runE12},
		{"e15", "E15 failure timeline", runFailureTimeline},
		{"e16", "E16 Fig 8 byte-access cost", runAccessCost},
		{"e17", "E17 energy analysis", runEnergy},
		{"e18", "E18 endurance variability", runVariability},
		{"e19", "E19 chip-level lifetime", runChip},
		{"e20", "E20 graceful degradation", runGraceful},
	}
	report := obs.StartSpan("report")
	for _, s := range steps {
		t := time.Now()
		sp := report.Child(s.key)
		if err := s.fn(cfg); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		sp.End()
		log.Printf("%-52s %s", s.name, time.Since(t).Round(time.Millisecond))
	}
	report.End()
	log.Printf("done in %s, results in %s/", time.Since(start).Round(time.Millisecond), cfg.out)
	if err := run.Finish(cfg.out, map[string]any{
		"out": cfg.out, "lanes": cfg.lanes, "rows": cfg.rows,
		"iters": cfg.iters, "recompile": cfg.recompile, "trials": cfg.trials,
		"heatdim": cfg.heatDim, "heatscale": cfg.heatScale, "workers": cfg.workers,
		"sample": cfg.sample,
		"quick":  *quick,
	}, cfg.seed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeFile creates a file under the output directory and streams fn to it.
func writeFile(cfg config, name string, fn func(io.Writer) error) error {
	path := filepath.Join(cfg.out, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
