package main

import (
	"fmt"
	"io"

	"pimendure/internal/baseline"
	"pimendure/internal/core"
	"pimendure/internal/device"
	"pimendure/internal/faults"
	"pimendure/internal/lifetime"
	"pimendure/internal/program"
	"pimendure/internal/render"
	"pimendure/internal/report"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
)

// emitTable writes a table as both Markdown and CSV.
func emitTable(cfg config, base string, t *report.Table) error {
	if err := writeFile(cfg, base+".md", t.WriteMarkdown); err != nil {
		return err
	}
	return writeFile(cfg, base+".csv", t.WriteCSV)
}

// runE1 reproduces §3.1's cost comparison: a 32-bit multiply on a
// conventional architecture versus in-memory, with the per-cell averages
// over 1024 facilitating cells and the write-amplification headline.
func runE1(cfg config) error {
	t := report.NewTable("E1 — cell accesses per 32-bit multiplication (§3.1)",
		"architecture", "cell reads", "cell writes", "reads/cell @1024", "writes/cell @1024", "write amplification")
	conv := baseline.ConvMultiply(32)
	cr, cw, err := baseline.PerCellAverages(conv, 1024)
	if err != nil {
		return err
	}
	t.AddRow("conventional (CPU+ALU)", fmt.Sprint(conv.CellReads), fmt.Sprint(conv.CellWrites),
		report.Fixed(cr, 4), report.Fixed(cw, 4), "1.00×")
	for _, basis := range synth.Bases() {
		pimCost := baseline.PIMMultiply(basis, 32)
		pr, pw, err := baseline.PerCellAverages(pimCost, 1024)
		if err != nil {
			return err
		}
		t.AddRow("PIM ("+basis.Name()+" basis)", fmt.Sprint(pimCost.CellReads), fmt.Sprint(pimCost.CellWrites),
			report.Fixed(pr, 2), report.Fixed(pw, 2),
			report.Times(baseline.WriteAmplification(basis, 32)))
	}
	return emitTable(cfg, "e1_writes_per_op", t)
}

// runE2 reproduces the Eq. 1 / Eq. 2 upper bounds for each device
// technology: total operations and wall-clock time to complete array
// break-down under perfect balancing.
func runE2(cfg config) error {
	t := report.NewTable(
		fmt.Sprintf("E2 — perfectly-balanced upper bounds, %d×%d array (Eqs. 1 and 2)", cfg.rows, cfg.lanes),
		"technology", "endurance", "Eq.1 32-bit mults", "Eq.2 seconds", "Eq.2 days")
	for _, tech := range device.Technologies() {
		ops := lifetime.UpperBoundOps(cfg.rows, cfg.lanes, tech.Endurance, 9824)
		secs := lifetime.UpperBoundSeconds(cfg.rows, cfg.lanes, tech.Endurance, tech.SwitchSeconds)
		t.AddRow(tech.Name, report.Sci(tech.Endurance), report.Sci(ops),
			report.Sci(secs), report.Fixed(secs/lifetime.SecondsPerDay, 2))
	}
	return emitTable(cfg, "e2_upper_bounds", t)
}

// runFig5 emits the per-cell read and write counts one 32-bit multiply
// induces across a lane (Fig. 5), under both allocation policies.
func runFig5(cfg config) error {
	profiles := map[program.AllocPolicy]struct{ w, r []int64 }{}
	var maxLen int
	for _, pol := range []program.AllocPolicy{program.NextFit, program.LowestFirst} {
		wcfg := workloads.Config{Lanes: 1, Rows: cfg.rows, Basis: synth.NAND, Alloc: pol}
		bench, err := workloads.ParallelMult(wcfg, 32)
		if err != nil {
			return err
		}
		w, r := core.LaneProfile(bench.Trace, true, 0)
		profiles[pol] = struct{ w, r []int64 }{w, r}
		if len(w) > maxLen {
			maxLen = len(w)
		}
	}
	return writeFile(cfg, "fig5_lane_profile.csv", func(w io.Writer) error {
		cols := make([][]float64, 5)
		for i := range cols {
			cols[i] = make([]float64, maxLen)
		}
		for i := 0; i < maxLen; i++ {
			cols[0][i] = float64(i)
			nf := profiles[program.NextFit]
			lf := profiles[program.LowestFirst]
			if i < len(nf.w) {
				cols[1][i] = float64(nf.w[i])
				cols[2][i] = float64(nf.r[i])
			}
			if i < len(lf.w) {
				cols[3][i] = float64(lf.w[i])
				cols[4][i] = float64(lf.r[i])
			}
		}
		return render.SeriesCSV(w,
			[]string{"bit_address", "writes_nextfit", "reads_nextfit", "writes_lowestfirst", "reads_lowestfirst"},
			cols...)
	})
}

// runTable2 reproduces Table 2: the extra COPY gates memory-access-aware
// shuffling costs, relative to the computation itself, for multiplication
// and addition across precisions — verified against synthesized circuits.
func runTable2(cfg config) error {
	t := report.NewTable("Table 2 — shuffle overhead of memory-access-aware re-mapping (%)",
		"bit precision", "multiplication overhead", "addition overhead",
		"mult gates (synth)", "add gates (synth)")
	for _, b := range []int{4, 8, 16, 32, 64} {
		multGates := synth.ComputeGates(synth.ShuffleMult, b)
		addGates := synth.ComputeGates(synth.ShuffleAdd, b)
		t.AddRow(fmt.Sprint(b),
			report.Pct(synth.ShuffleOverhead(synth.ShuffleMult, b), 2),
			report.Pct(synth.ShuffleOverhead(synth.ShuffleAdd, b), 2),
			fmt.Sprint(multGates), fmt.Sprint(addGates))
	}
	return emitTable(cfg, "table2_overhead", t)
}

// runFig11 samples Fig. 11b: the usable fraction of each lane versus the
// fraction of failed cells, Monte Carlo against the closed form, for three
// array widths.
func runFig11(cfg config) error {
	fracs := []float64{0, 0.0005, 0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.05}
	widths := []int{256, 512, 1024}
	cols := make([][]float64, 1+2*len(widths))
	headers := make([]string, 1+2*len(widths))
	headers[0] = "failed_frac"
	cols[0] = fracs
	for i, n := range widths {
		// Monte Carlo cost grows with the array; shrink rows, which the
		// closed form is independent of, keeping lane width faithful.
		rows := n
		if rows > 256 {
			rows = 256
		}
		pts, err := faults.UsableCurve(rows, n, fracs, cfg.trials, cfg.seed+int64(i))
		if err != nil {
			return err
		}
		mc := make([]float64, len(pts))
		cf := make([]float64, len(pts))
		for j, p := range pts {
			mc[j] = p.UsableMC
			cf[j] = p.UsableClosed
		}
		headers[1+2*i] = fmt.Sprintf("usable_mc_%d", n)
		headers[2+2*i] = fmt.Sprintf("usable_closed_%d", n)
		cols[1+2*i] = mc
		cols[2+2*i] = cf
	}
	return writeFile(cfg, "fig11b_usable.csv", func(w io.Writer) error {
		return render.SeriesCSV(w, headers, cols...)
	})
}

// runLaneSets evaluates §3.3's partitioning workaround: usable capacity and
// effective throughput for 1–8 lane sets at several failure levels.
func runLaneSets(cfg config) error {
	t := report.NewTable("E13 — lane-set partitioning under failed cells (§3.3)",
		"failed cells", "sets", "usable fraction", "latency factor", "effective capacity")
	const rows, lanes = 256, 256
	for _, failed := range []int{64, 256, 1024} {
		for _, sets := range []int{1, 2, 4, 8} {
			res, err := faults.LaneSets(rows, lanes, sets, failed, cfg.trials, cfg.seed)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprint(failed), fmt.Sprint(sets),
				report.Fixed(res.UsableFrac, 4), fmt.Sprint(res.LatencyFactor),
				report.Fixed(res.EffectiveCapacity, 4))
		}
	}
	return emitTable(cfg, "e13_lane_sets", t)
}
