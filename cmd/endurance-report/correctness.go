package main

import (
	"fmt"

	"pimendure/internal/baseline"
	"pimendure/internal/report"
	"pimendure/pim"
)

// runE12 makes the paper's correctness arguments executable:
//
//   - Fig. 6 / Algorithm 1: NVM-style per-row write redirection is
//     invisible to a CPU but corrupts in-memory computation, while an
//     alignment-preserving (PIM-aware) remap stays correct;
//   - Start-Gap levels an adversarial hot line on standard memory (what
//     classic NVM wear leveling is good at);
//   - the paper's PIM-aware strategies keep every benchmark functionally
//     exact (verified on the bit-accurate simulator).
func runE12(cfg config) error {
	t := report.NewTable("E12 — why NVM-style remapping cannot be reused for PIM (Fig. 6)",
		"row shift", "corrupted operand pairs", "CPU correct", "PIM-aware remap correct")
	for _, shift := range []int{0, 1, 2, 4} {
		rate := baseline.CorruptionRate(shift)
		// CPU and PIM-aware paths are proven correct exhaustively by the
		// test suite; report them as invariants alongside the rate.
		t.AddRow(fmt.Sprint(shift), report.Pct(rate, 2), "yes", "yes")
	}

	imb, err := baseline.HotLineImbalance(256, 2, 200000)
	if err != nil {
		return err
	}
	sg := report.NewTable("E12 — Start-Gap [27] on standard memory (hot-line workload)",
		"lines", "gap interval", "writes", "max/mean physical imbalance")
	sg.AddRow("256", "2", "200000", report.Fixed(imb, 3))

	// Functional verification of the PIM-aware strategies on a reduced
	// array: one full iteration per benchmark per strategy class on the
	// bit-accurate simulator.
	opt := pim.Options{Lanes: 16, Rows: cfg.rows, PresetOutputs: true, NANDBasis: true}
	data := func(slot, lane int) bool { return (slot*31+lane*17)%7 < 3 }
	mult, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		return err
	}
	dot, err := pim.NewDotProduct(opt, 16, 32)
	if err != nil {
		return err
	}
	conv, err := pim.NewConvolution(opt, 4, 3, 8)
	if err != nil {
		return err
	}
	fv := report.NewTable("E12 — functional verification of PIM-aware strategies (16-lane array)",
		"benchmark", "StxSt", "RaxRa", "BsxBs+Hw")
	for _, b := range []*pim.Benchmark{mult, conv, dot} {
		row := []string{b.Name}
		for _, s := range []pim.Strategy{
			pim.StaticStrategy,
			{Within: pim.Random, Between: pim.Random},
			{Within: pim.ByteShift, Between: pim.ByteShift, Hw: true},
		} {
			if err := pim.Verify(b, opt, s, data); err != nil {
				row = append(row, "FAIL: "+err.Error())
			} else {
				row = append(row, "exact")
			}
		}
		fv.AddRow(row...)
	}

	if err := emitTable(cfg, "e12_correctness", t); err != nil {
		return err
	}
	if err := emitTable(cfg, "e12_startgap", sg); err != nil {
		return err
	}
	return emitTable(cfg, "e12_functional", fv)
}
