package main

import (
	"pimendure/internal/faults"
	"pimendure/internal/report"
	"pimendure/pim"
)

// runGraceful extends §3.3: instead of declaring the array dead at the
// first cell failure, dead bit addresses remap onto spare rows until the
// program no longer fits. The allocation policy sets the trade-off: the
// rotating next-fit allocator (paper-like) occupies every row — balanced
// wear but no spares — while the compact lowest-first allocator leaves
// hundreds of spare rows to degrade into at the cost of a far hotter
// static distribution.
func runGraceful(cfg config) error {
	t := report.NewTable("E20 — remap-on-failure lifetime (32-bit multiply, StxSt, MRAM)",
		"allocator", "rows used", "spare rows", "first failure (iters)", "unusable (iters)", "extension", "remaps")
	for _, lowest := range []bool{false, true} {
		opt := pimOptions(cfg)
		opt.LowestFirstAlloc = lowest
		bench, err := pim.NewParallelMult(opt, 32)
		if err != nil {
			return err
		}
		iters := cfg.iters
		if iters > 5000 {
			iters = 5000 // the rate vector converges quickly under StxSt
		}
		res, err := pim.Run(bench, opt,
			pim.RunConfig{Iterations: iters, RecompileEvery: cfg.recompile, Seed: cfg.seed, Workers: cfg.workers},
			pim.StaticStrategy, pim.MRAM())
		if err != nil {
			return err
		}
		// Per-logical-row hottest-cell write rates.
		rates := make([]float64, bench.Trace.LaneBits)
		for r := 0; r < bench.Trace.LaneBits; r++ {
			var maxC uint64
			for l := 0; l < res.Dist.Lanes; l++ {
				if c := res.Dist.At(r, l); c > maxC {
					maxC = c
				}
			}
			rates[r] = float64(maxC) / float64(iters)
		}
		gr, err := faults.GracefulLifetime(rates, cfg.rows, pim.MRAM().Endurance)
		if err != nil {
			return err
		}
		name := "next-fit"
		if lowest {
			name = "lowest-first"
		}
		t.AddRow(name,
			report.Fixed(float64(bench.Trace.LaneBits), 0),
			report.Fixed(float64(cfg.rows-bench.Trace.LaneBits), 0),
			report.Sci(gr.FirstFailureIters),
			report.Sci(gr.UnusableIters),
			report.Times(gr.ExtensionFactor()),
			report.Fixed(float64(gr.Remaps), 0))
	}
	return emitTable(cfg, "e20_graceful", t)
}
