package main

import (
	"fmt"
	"io"

	"pimendure/internal/device"
	"pimendure/internal/lifetime"
	"pimendure/internal/report"
	"pimendure/internal/stats"
	"pimendure/pim"
)

// benchSet compiles the paper's three kernels at the report's array size.
func benchSet(cfg config) (map[string]*pim.Benchmark, []string, error) {
	opt := pimOptions(cfg)
	mult, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		return nil, nil, err
	}
	conv, err := pim.NewConvolution(opt, 4, 3, 8)
	if err != nil {
		return nil, nil, err
	}
	n := 1
	for n*2 <= cfg.lanes {
		n *= 2
	}
	dot, err := pim.NewDotProduct(opt, n, 32)
	if err != nil {
		return nil, nil, err
	}
	return map[string]*pim.Benchmark{
		"fig14": mult, "fig15": conv, "fig16": dot,
	}, []string{"fig14", "fig15", "fig16"}, nil
}

func pimOptions(cfg config) pim.Options {
	return pim.Options{Lanes: cfg.lanes, Rows: cfg.rows, PresetOutputs: true, NANDBasis: true}
}

// runSweeps produces the heart of the evaluation: per benchmark, the 18
// write-distribution heatmaps (Figs. 14–16), the lifetime-improvement
// ranking (Fig. 17), Table 3's utilization/improvement summary, and the
// E14 technology sweep.
func runSweeps(cfg config) error {
	benches, order, err := benchSet(cfg)
	if err != nil {
		return err
	}
	opt := pimOptions(cfg)
	rc := pim.RunConfig{Iterations: cfg.iters, RecompileEvery: cfg.recompile, Seed: cfg.seed,
		Workers: cfg.workers, SampleEvery: cfg.sample}

	table3 := report.NewTable("Table 3 — lane utilization and best lifetime improvement",
		"benchmark", "avg lane utilization", "lifetime improvement", "best config",
		"StxSt days (MRAM)", "best days (MRAM)")
	e14 := report.NewTable("E14 — lifetime in days across device technologies",
		"benchmark", "technology", "endurance", "StxSt days", "best-balanced days")

	for _, fig := range order {
		b := benches[fig]
		results, err := pim.Sweep(b, opt, rc, nil, pim.MRAM())
		if err != nil {
			return err
		}
		imps, err := pim.Improvements(results)
		if err != nil {
			return err
		}

		// Heatmaps + per-config distribution statistics.
		summary := report.NewTable(
			fmt.Sprintf("%s — %s write distribution statistics (%d iterations, recompile every %d)",
				fig, b.Name, cfg.iters, cfg.recompile),
			"config", "max/iter", "max/mean", "CoV", "Gini")
		var giniWork []float64
		for _, r := range results {
			grid, err := pim.Heatmap(r.Dist, cfg.heatDim)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("%s_%s", fig, r.Strategy.Name())
			if err := writeFile(cfg, name+".png", func(w io.Writer) error {
				return pim.WriteHeatmapPNG(w, grid, cfg.heatScale)
			}); err != nil {
				return err
			}
			if err := writeFile(cfg, name+".pgm", func(w io.Writer) error {
				return pim.WriteHeatmapPGM(w, grid)
			}); err != nil {
				return err
			}
			// Summarize fuses the CoV scan; GiniReuse sorts all 18 configs'
			// distributions in one reused scratch buffer.
			var gini float64
			gini, giniWork = stats.GiniReuse(r.Dist.Counts, giniWork)
			summary.AddRow(r.Strategy.Name(),
				report.Fixed(r.MaxWritesPerIteration, 2),
				report.Fixed(r.Imbalance, 3),
				report.Fixed(stats.Summarize(r.Dist.Counts).CoV, 3),
				report.Fixed(gini, 3))
		}
		if err := emitTable(cfg, fig+"_summary", summary); err != nil {
			return err
		}

		// Fig. 17: improvement factors relative to St×St.
		figNum := map[string]string{"fig14": "fig17a", "fig15": "fig17b", "fig16": "fig17c"}[fig]
		f17 := report.NewTable(fmt.Sprintf("%s — %s lifetime improvement over StxSt", figNum, b.Name),
			"config", "improvement", "days (MRAM)")
		for _, im := range imps {
			f17.AddRow(im.Strategy.Name(), report.Times(im.Factor), report.Fixed(im.Result.Lifetime.Days(), 2))
		}
		if err := emitTable(cfg, figNum+"_"+b.Name, f17); err != nil {
			return err
		}

		// Table 3 row.
		var static *pim.Result
		for _, r := range results {
			if r.Strategy == pim.StaticStrategy {
				static = r
			}
		}
		best := imps[0]
		table3.AddRow(b.Name,
			report.Pct(static.Utilization, 2),
			report.Times(best.Factor),
			best.Strategy.Name(),
			report.Fixed(static.Lifetime.Days(), 2),
			report.Fixed(best.Result.Lifetime.Days(), 2))

		// E14: rescale the MRAM lifetimes to every technology (lifetime
		// is linear in endurance and per-op time, so no re-simulation).
		st := b.Trace.ComputeStats(true)
		for _, tech := range device.Technologies() {
			model := lifetime.Model{Endurance: tech.Endurance, StepSeconds: tech.SwitchSeconds}
			sd, err := model.Estimate(static.MaxWritesPerIteration, st.Steps)
			if err != nil {
				return err
			}
			bd, err := model.Estimate(best.Result.MaxWritesPerIteration, st.Steps)
			if err != nil {
				return err
			}
			e14.AddRow(b.Name, tech.Name, report.Sci(tech.Endurance),
				report.Fixed(sd.Days(), 3), report.Fixed(bd.Days(), 3))
		}
	}
	if err := emitTable(cfg, "table3", table3); err != nil {
		return err
	}
	return emitTable(cfg, "e14_technology", e14)
}

// runRecompileSweep reproduces §5's re-mapping frequency study: the
// Ra×Ra lifetime improvement as the recompile period varies from every
// 10 000 iterations down to every 10, showing saturation around every 50.
func runRecompileSweep(cfg config) error {
	benches, order, err := benchSet(cfg)
	if err != nil {
		return err
	}
	opt := pimOptions(cfg)
	periods := []int{10000, 1000, 500, 100, 50, 10}
	ra := pim.Strategy{Within: pim.Random, Between: pim.Random}

	t := report.NewTable("E11 — lifetime improvement vs recompile period (RaxRa, §5)",
		"benchmark", "recompile every", "improvement over StxSt", "max writes/iter")
	for _, fig := range order {
		b := benches[fig]
		static, err := pim.Run(b, opt,
			pim.RunConfig{Iterations: cfg.iters, RecompileEvery: cfg.recompile, Seed: cfg.seed, Workers: cfg.workers},
			pim.StaticStrategy, pim.MRAM())
		if err != nil {
			return err
		}
		for _, p := range periods {
			if p > cfg.iters {
				continue
			}
			r, err := pim.Run(b, opt,
				pim.RunConfig{Iterations: cfg.iters, RecompileEvery: p, Seed: cfg.seed, Workers: cfg.workers}, ra, pim.MRAM())
			if err != nil {
				return err
			}
			t.AddRow(b.Name, fmt.Sprint(p),
				report.Times(lifetime.Improvement(static.MaxWritesPerIteration, r.MaxWritesPerIteration)),
				report.Fixed(r.MaxWritesPerIteration, 3))
		}
	}
	return emitTable(cfg, "e11_recompile_sweep", t)
}
